module lightzone

go 1.22
