// Command quickstart is the paper's Listing 1 as a runnable example: a
// process enters LightZone, splits itself into two mutually distrusting
// TTBR domains, and shares a PAN-protected cryptographic key between them.
package main

import (
	"fmt"
	"log"

	"lightzone"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		data0 = uint64(0x4100_0000)
		data1 = uint64(0x4200_0000)
		key   = uint64(0x4300_0000)
	)
	sys, err := lightzone.NewSystem(lightzone.WithProfile("cortexa55"))
	if err != nil {
		return err
	}
	fmt.Printf("booted %s\n", sys.Platform())

	// Listing 1, line by line.
	p := lightzone.NewProgram("listing1").
		EnterLightZone(true, lightzone.SanTTBR). // lz_enter(true, 1)
		MMap(data0, lightzone.PageSize, lightzone.ProtRead|lightzone.ProtWrite).
		MMap(data1, lightzone.PageSize, lightzone.ProtRead|lightzone.ProtWrite).
		MMap(key, lightzone.PageSize, lightzone.ProtRead|lightzone.ProtWrite).
		AllocPageTable(). // pgt0 = lz_alloc() -> 1
		AllocPageTable(). // pgt1 = lz_alloc() -> 2
		MapGatePgt(1, 0). // call_gate0 -> pgt0
		MapGatePgt(2, 1). // call_gate1 -> pgt1
		Protect(data0, lightzone.PageSize, 1, lightzone.PermRead|lightzone.PermWrite).
		Protect(data1, lightzone.PageSize, 2, lightzone.PermRead|lightzone.PermWrite).
		Protect(key, lightzone.PageSize, 0, lightzone.PermRead|lightzone.PermUser).
		// Part 0: switch through gate 0, write data0, read the key with
		// PAN dropped ("data0 = enc(data0, key)").
		SwitchToGate(0).
		LoadImm(1, data0).LoadImm(2, 100).Store(2, 1, 0).
		SetPAN(false).
		LoadImm(3, key).Load(4, 3, 0).Add(2, 2, 4).Store(2, 1, 0).
		SetPAN(true).
		// Part 1: switch through gate 1, write data1.
		SwitchToGate(1).
		LoadImm(1, data1).LoadImm(2, 200).Store(2, 1, 0).
		SetPAN(false).
		LoadImm(3, key).Load(4, 3, 0).Add(2, 2, 4).Store(2, 1, 0).
		SetPAN(true).
		Load(19, 1, 0).
		Exit(0)

	res, err := sys.Run(p)
	if err != nil {
		return err
	}
	if res.Killed {
		return fmt.Errorf("unexpected violation: %s", res.KillMsg)
	}
	fmt.Printf("part 1 wrote data1 = %d (enc stand-in with key=0)\n", res.Registers[19])
	fmt.Println("both domains ran isolated; the key was reachable only with PAN dropped")

	// Now the attack: part 0 touching part 1's data.
	atk := lightzone.NewProgram("crossdomain").
		EnterLightZone(true, lightzone.SanTTBR).
		MMap(data0, lightzone.PageSize, lightzone.ProtRead|lightzone.ProtWrite).
		MMap(data1, lightzone.PageSize, lightzone.ProtRead|lightzone.ProtWrite).
		AllocPageTable().
		AllocPageTable().
		MapGatePgt(1, 0).
		Protect(data0, lightzone.PageSize, 1, lightzone.PermRead|lightzone.PermWrite).
		Protect(data1, lightzone.PageSize, 2, lightzone.PermRead|lightzone.PermWrite).
		SwitchToGate(0). // enter part 0's domain
		LoadImm(1, data1).
		Load(0, 1, 0). // illegal: part 1's data
		Exit(0)
	res, err = sys.Run(atk)
	if err != nil {
		return err
	}
	if !res.Killed {
		return fmt.Errorf("cross-domain access was not blocked")
	}
	fmt.Printf("cross-domain access terminated: %s\n", res.KillMsg)
	return nil
}
