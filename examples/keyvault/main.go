// Command keyvault models the paper's §9.1 scenario: an OpenSSL-style
// server holding many per-connection AES keys, each isolated in its own
// TTBR domain so that a Heartbleed-class memory disclosure in one
// connection's handler cannot leak any other connection's key.
package main

import (
	"fmt"
	"log"

	"lightzone"
)

const (
	nKeys    = 16
	keysBase = uint64(0x6000_0000)
	keyStep  = uint64(0x1_0000)
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sys, err := lightzone.NewSystem(lightzone.WithProfile("carmel"))
	if err != nil {
		return err
	}
	fmt.Printf("keyvault on %s: %d per-connection key domains\n", sys.Platform(), nKeys)

	// The vault: each key page in its own page table, one call gate per
	// key, bound at initialization (the paper's function-grained
	// isolation of AES_KEY instances).
	p := lightzone.NewProgram("keyvault").
		EnterLightZone(true, lightzone.SanTTBR)
	for k := 0; k < nKeys; k++ {
		addr := keysBase + uint64(k)*keyStep
		p.MMap(addr, lightzone.PageSize, lightzone.ProtRead|lightzone.ProtWrite).
			AllocPageTable().   // key k -> page table k+1
			MapGatePgt(k+1, k). // gate k switches to it
			Protect(addr, lightzone.PageSize, k+1, lightzone.PermRead|lightzone.PermWrite)
	}
	// Provision each key: switch into its domain and write key material.
	for k := 0; k < nKeys; k++ {
		addr := keysBase + uint64(k)*keyStep
		p.SwitchToGate(k).
			LoadImm(1, addr).
			LoadImm(2, 0xA0+uint64(k)).
			Store(2, 1, 0)
	}
	// Serve "requests": each request uses exactly one key. Each call
	// site gets its own gate (§6.2: one gate per entry), bound to the
	// same per-key page table as the provisioning gate.
	for k := 0; k < nKeys; k += 3 {
		addr := keysBase + uint64(k)*keyStep
		serveGate := nKeys + k
		p.MapGatePgt(k+1, serveGate).
			SwitchToGate(serveGate).
			LoadImm(1, addr).
			Load(9, 1, 0) // use the key
	}
	p.Exit(0)
	res, err := sys.Run(p)
	if err != nil {
		return err
	}
	if res.Killed {
		return fmt.Errorf("vault run failed: %s", res.KillMsg)
	}
	fmt.Println("provisioned and used all keys through their gates")

	// The disclosure attempt: the handler for key 0 walks other key
	// pages (a buffer over-read). LightZone terminates it at the first
	// cross-domain touch.
	atk := lightzone.NewProgram("heartbleed").
		EnterLightZone(true, lightzone.SanTTBR)
	for k := 0; k < 2; k++ {
		addr := keysBase + uint64(k)*keyStep
		atk.MMap(addr, lightzone.PageSize, lightzone.ProtRead|lightzone.ProtWrite).
			AllocPageTable().
			MapGatePgt(k+1, k).
			Protect(addr, lightzone.PageSize, k+1, lightzone.PermRead|lightzone.PermWrite)
	}
	atk.SwitchToGate(0).
		LoadImm(1, keysBase).
		Load(9, 1, 0). // legal: own key
		LoadImm(1, keysBase+keyStep).
		Load(10, 1, 0). // over-read into key 1's domain
		Exit(0)
	res, err = sys.Run(atk)
	if err != nil {
		return err
	}
	if !res.Killed {
		return fmt.Errorf("over-read was not blocked")
	}
	fmt.Printf("memory disclosure stopped: %s\n", res.KillMsg)

	// Performance: what a key-domain switch costs on this platform.
	plat, _ := lightzone.PlatformFor("carmel", false)
	avg, err := lightzone.DomainSwitchBench(plat, lightzone.VariantLZTTBR, nKeys, 2000)
	if err != nil {
		return err
	}
	fmt.Printf("gate switch with %d key domains: %.0f cycles\n", nKeys, avg)
	return nil
}
