// Command nvmstore models the paper's §9.3 scenario (after MERR):
// persistent-memory objects in 2MB buffers, each isolated in its own
// domain so a stray write in one object's code path cannot corrupt another
// persistent object. The example compares the exposure window of the PAN
// and TTBR mechanisms and prints the measured switch costs.
package main

import (
	"fmt"
	"log"

	"lightzone"
)

const (
	nObjects = 8
	objBase  = uint64(0x8000_0000)
	objStep  = uint64(0x20_0000) // one 2MB region per persistent object
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sys, err := lightzone.NewSystem(lightzone.WithProfile("cortexa55"))
	if err != nil {
		return err
	}
	fmt.Printf("nvmstore on %s: %d persistent objects\n", sys.Platform(), nObjects)

	// Scalable variant: one domain per persistent object.
	p := lightzone.NewProgram("nvmstore").
		EnterLightZone(true, lightzone.SanTTBR)
	for o := 0; o < nObjects; o++ {
		addr := objBase + uint64(o)*objStep
		p.MMap(addr, lightzone.PageSize, lightzone.ProtRead|lightzone.ProtWrite).
			AllocPageTable().
			MapGatePgt(o+1, o).
			Protect(addr, lightzone.PageSize, o+1, lightzone.PermRead|lightzone.PermWrite)
	}
	// Update each object inside its own exposure window.
	for o := 0; o < nObjects; o++ {
		addr := objBase + uint64(o)*objStep
		p.SwitchToGate(o).
			LoadImm(1, addr).
			LoadImm(2, uint64(0x5AFE_0000+o)).
			Store(2, 1, 0)
	}
	p.Exit(0)
	res, err := sys.Run(p)
	if err != nil {
		return err
	}
	if res.Killed {
		return fmt.Errorf("store run failed: %s", res.KillMsg)
	}
	fmt.Println("all objects updated inside their own domains")

	// Stray-write corruption attempt: while object 3 is open, a bug
	// writes to object 5's buffer. The write never reaches memory.
	atk := lightzone.NewProgram("straywrite").
		EnterLightZone(true, lightzone.SanTTBR)
	for o := 0; o < nObjects; o++ {
		addr := objBase + uint64(o)*objStep
		atk.MMap(addr, lightzone.PageSize, lightzone.ProtRead|lightzone.ProtWrite).
			AllocPageTable().
			MapGatePgt(o+1, o).
			Protect(addr, lightzone.PageSize, o+1, lightzone.PermRead|lightzone.PermWrite)
	}
	atk.SwitchToGate(3).
		LoadImm(1, objBase+5*objStep).
		LoadImm(2, 0xDEAD).
		Store(2, 1, 0).
		Exit(0)
	res, err = sys.Run(atk)
	if err != nil {
		return err
	}
	if !res.Killed {
		return fmt.Errorf("stray write was not blocked")
	}
	fmt.Printf("persistent corruption prevented: %s\n", res.KillMsg)

	// Cost of the two mechanisms on this platform (Figure 5's tradeoff).
	plat, _ := lightzone.PlatformFor("cortexa55", false)
	pan, err := lightzone.DomainSwitchBench(plat, lightzone.VariantLZPAN, 1, 2000)
	if err != nil {
		return err
	}
	ttbr, err := lightzone.DomainSwitchBench(plat, lightzone.VariantLZTTBR, nObjects, 2000)
	if err != nil {
		return err
	}
	fmt.Printf("exposure-window switch cost: PAN %.0f cycles, TTBR (%d domains) %.0f cycles\n",
		pan, nObjects, ttbr)
	fmt.Println("PAN: cheapest, one shared exposure domain; TTBR: per-object isolation")
	return nil
}
