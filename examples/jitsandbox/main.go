// Command jitsandbox demonstrates LightZone's W-xor-X enforcement (§6.3)
// on a JIT-style workload: code pages flip between writable and executable
// through break-before-make with re-sanitization on every transition, so
// benign generated code runs while injected sensitive instructions are
// caught even when written after the page was first checked (the TOCTTOU
// defence).
package main

import (
	"fmt"
	"log"

	"lightzone"
)

const jitPage = uint64(0x4600_0000)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// movz x0, #imm ; ret — a tiny generated function.
func genFunc(imm uint16) (uint32, uint32) {
	return 0xD2800000 | uint32(imm)<<5, 0xD65F03C0
}

func run() error {
	sys, err := lightzone.NewSystem()
	if err != nil {
		return err
	}
	fmt.Printf("jit sandbox on %s\n", sys.Platform())

	// Three benign generations: write, call, rewrite, call, ...
	w1a, w1b := genFunc(11)
	w2a, w2b := genFunc(22)
	p := lightzone.NewProgram("jit").
		EnterLightZone(true, lightzone.SanTTBR).
		MMap(jitPage, lightzone.PageSize, lightzone.ProtRead|lightzone.ProtWrite|lightzone.ProtExec).
		LoadImm(1, jitPage).
		LoadImm(2, uint64(w1a)).StoreWord32(2, 1, 0).
		LoadImm(2, uint64(w1b)).StoreWord32(2, 1, 4).
		CallReg(1).
		Mov(19, 0). // 11
		LoadImm(1, jitPage).
		LoadImm(2, uint64(w2a)).StoreWord32(2, 1, 0).
		LoadImm(2, uint64(w2b)).StoreWord32(2, 1, 4).
		CallReg(1).
		Mov(20, 0). // 22
		Exit(0)
	res, err := sys.Run(p)
	if err != nil {
		return err
	}
	if res.Killed {
		return fmt.Errorf("benign jit killed: %s", res.KillMsg)
	}
	fmt.Printf("generation 1 returned %d, generation 2 returned %d\n",
		res.Registers[19], res.Registers[20])
	st := sys.Stats()
	fmt.Printf("stats: %d simulated cycles, %d instructions, %d page faults (incl. W^X flips)\n",
		st.Cycles, st.Instructions, st.PageFaults)

	// The attack generation: a TLBI instruction written after the page
	// was sanitized. Break-before-make forces re-sanitization; the
	// process dies before the injected instruction can execute.
	atk := lightzone.NewProgram("jit-attack").
		EnterLightZone(true, lightzone.SanTTBR).
		MMap(jitPage, lightzone.PageSize, lightzone.ProtRead|lightzone.ProtWrite|lightzone.ProtExec).
		LoadImm(1, jitPage).
		LoadImm(2, uint64(w1a)).StoreWord32(2, 1, 0).
		LoadImm(2, uint64(w1b)).StoreWord32(2, 1, 4).
		CallReg(1). // sanitized, executed
		LoadImm(1, jitPage).
		LoadImm(2, 0xD508871F). // TLBI VMALLE1: sensitive
		StoreWord32(2, 1, 0).
		CallReg(1). // must die here
		Exit(0)
	res, err = sys.Run(atk)
	if err != nil {
		return err
	}
	if !res.Killed {
		return fmt.Errorf("injected sensitive instruction executed")
	}
	fmt.Printf("injection stopped: %s\n", res.KillMsg)
	return nil
}
