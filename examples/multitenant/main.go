// Command multitenant models the paper's §9.2 scenario: a multi-threaded
// server (MySQL-style) whose per-connection thread stacks live in separate
// TTBR domains while shared in-memory engine data (HP_PTRS) is
// PAN-protected — both mechanisms concurrently in one process.
package main

import (
	"fmt"
	"log"

	"lightzone"
)

const (
	nTenants  = 8
	stackBase = uint64(0x6000_0000)
	stackStep = uint64(0x10_0000)
	heapData  = uint64(0x7000_0000)
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sys, err := lightzone.NewSystem(lightzone.WithProfile("cortexa55"))
	if err != nil {
		return err
	}
	fmt.Printf("multitenant server on %s: %d tenant stack domains + PAN heap\n",
		sys.Platform(), nTenants)

	p := lightzone.NewProgram("tenants").
		EnterLightZone(true, lightzone.SanTTBR).
		MMap(heapData, lightzone.PageSize, lightzone.ProtRead|lightzone.ProtWrite).
		// The storage engine's in-memory data: PAN-protected, visible
		// in every stack domain when PAN is dropped.
		Protect(heapData, lightzone.PageSize, 0, lightzone.PermRead|lightzone.PermWrite|lightzone.PermUser)
	for tenant := 0; tenant < nTenants; tenant++ {
		addr := stackBase + uint64(tenant)*stackStep
		p.MMap(addr, lightzone.PageSize, lightzone.ProtRead|lightzone.ProtWrite).
			AllocPageTable().
			MapGatePgt(tenant+1, tenant).
			Protect(addr, lightzone.PageSize, tenant+1, lightzone.PermRead|lightzone.PermWrite)
	}
	// Serve each tenant: enter its stack domain, work on the stack, then
	// touch the shared engine data under PAN.
	for tenant := 0; tenant < nTenants; tenant++ {
		addr := stackBase + uint64(tenant)*stackStep
		p.SwitchToGate(tenant).
			LoadImm(1, addr).
			LoadImm(2, uint64(1000+tenant)).
			Store(2, 1, 0). // private per-tenant state
			SetPAN(false).
			LoadImm(3, heapData).
			Load(4, 3, 0).
			Add(4, 4, 2).
			Store(4, 3, 0). // engine data update
			SetPAN(true)
	}
	p.SetPAN(false).
		LoadImm(3, heapData).
		Load(19, 3, 0). // final engine counter
		SetPAN(true).
		Exit(0)
	res, err := sys.Run(p)
	if err != nil {
		return err
	}
	if res.Killed {
		return fmt.Errorf("server run failed: %s", res.KillMsg)
	}
	want := uint64(0)
	for t := 0; t < nTenants; t++ {
		want += uint64(1000 + t)
	}
	fmt.Printf("engine counter after %d tenants: %d (want %d)\n", nTenants, res.Registers[19], want)

	// A compromised tenant handler reads another tenant's stack.
	atk := lightzone.NewProgram("rogue-tenant").
		EnterLightZone(true, lightzone.SanTTBR)
	for tenant := 0; tenant < 2; tenant++ {
		addr := stackBase + uint64(tenant)*stackStep
		atk.MMap(addr, lightzone.PageSize, lightzone.ProtRead|lightzone.ProtWrite).
			AllocPageTable().
			MapGatePgt(tenant+1, tenant).
			Protect(addr, lightzone.PageSize, tenant+1, lightzone.PermRead|lightzone.PermWrite)
	}
	atk.SwitchToGate(0).
		LoadImm(1, stackBase+stackStep). // tenant 1's stack
		Load(0, 1, 0).
		Exit(0)
	res, err = sys.Run(atk)
	if err != nil {
		return err
	}
	if !res.Killed {
		return fmt.Errorf("cross-tenant stack read was not blocked")
	}
	fmt.Printf("cross-tenant stack read stopped: %s\n", res.KillMsg)

	// An engine bug touching PAN data without dropping PAN.
	atk2 := lightzone.NewProgram("rogue-engine").
		EnterLightZone(false, lightzone.SanPAN).
		MMap(heapData, lightzone.PageSize, lightzone.ProtRead|lightzone.ProtWrite).
		Protect(heapData, lightzone.PageSize, 0, lightzone.PermRead|lightzone.PermWrite|lightzone.PermUser).
		SetPAN(true).
		LoadImm(1, heapData).
		Load(0, 1, 0).
		Exit(0)
	res, err = sys.Run(atk2)
	if err != nil {
		return err
	}
	if !res.Killed {
		return fmt.Errorf("PAN bypass was not blocked")
	}
	fmt.Printf("unguarded engine-data access stopped: %s\n", res.KillMsg)
	return nil
}
