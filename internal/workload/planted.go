package workload

import (
	"encoding/binary"
	"fmt"

	"lightzone/internal/arm64"
	"lightzone/internal/core"
	"lightzone/internal/kernel"
	"lightzone/internal/mem"
)

// PlantedResult is one static-detection cell: a machine with a deliberately
// planted security violation, and whether the matching verifier checker
// reported it at the expected guest VA. Every planted attack is constructed
// so that the dynamic path never observes it — tampering happens after the
// benchmark process has exited, or the violating instructions are placed
// behind a branch the program never takes — so a Caught result means the
// violation was found statically, before any dynamic trap could fire.
type PlantedResult struct {
	Name    string `json:"name"`
	Checker string `json:"checker"`
	VA      uint64 `json:"va"`
	Caught  bool   `json:"caught"`
	Total   int    `json:"total_findings"`
	Detail  string `json:"detail,omitempty"`
}

// plantedAttack builds a tampered machine and names the checker + VA that
// must appear in its verification report. absent, when non-zero, is a VA
// that must NOT be flagged (the literal-pool / unreachable-word control).
type plantedAttack struct {
	name    string
	checker string
	build   func(plat Platform) (env *Env, va uint64, absent uint64, err error)
}

// plantedCleanTTBR runs a small scalable-TTBR benchmark to completion and
// hands back the machine with its LightZone process state intact. The
// process has exited cleanly: everything done to the machine afterwards is
// invisible to the dynamic enforcement paths by construction.
func plantedCleanTTBR(plat Platform) (*Env, *core.LZProc, error) {
	cfg := DomainSwitchConfig{Platform: plat, Variant: VariantLZTTBR, Domains: 8, Iters: 64, Seed: Table5Seed}
	_, env, err := runDomainSwitch(cfg, nil)
	if err != nil {
		return nil, nil, err
	}
	procs := env.LZ.Procs()
	if len(procs) == 0 {
		return nil, nil, fmt.Errorf("no LightZone process survived the run")
	}
	return env, procs[0], nil
}

// plantedExecPage picks a sanitizer-admitted executable page of the process
// and resolves the real frame behind its base-table mapping.
func plantedExecPage(lp *core.LZProc) (mem.VA, mem.PA, error) {
	pages := lp.ExecCleanPages()
	if len(pages) == 0 {
		return 0, 0, fmt.Errorf("no exec-clean pages")
	}
	va := pages[0]
	d0, ok := lp.PageTable(0)
	if !ok {
		return 0, 0, fmt.Errorf("base page table missing")
	}
	res, err := d0.S1.Walk(va)
	if err != nil || !res.Found {
		return 0, 0, fmt.Errorf("exec-clean page %v not mapped in base table", va)
	}
	if res.BlockShift != mem.PageShift {
		return 0, 0, fmt.Errorf("exec-clean page %v unexpectedly block-mapped", va)
	}
	real, ok := lp.Fake().RealOf(mem.IPA(res.Desc & mem.OAMask))
	if !ok {
		return 0, 0, fmt.Errorf("no real frame behind exec-clean page %v", va)
	}
	return va, real, nil
}

// plantedCFGMachine assembles a SanNone process whose text contains a TLBI
// and a raw TTBR0_EL1 write hidden behind a branch that is always taken at
// run time, plus a TLBI-encoded data word behind an unconditional back-edge
// (a literal pool). The process runs to completion untrapped — only the CFG
// checker, which walks static reachability rather than executed paths, can
// tell the first two from the third.
func plantedCFGMachine(plat Platform) (*Env, map[string]uint64, error) {
	a := arm64.NewAsm()
	svcCall(a, core.SysLZEnter, 0, uint64(core.SanNone))
	a.MovImm(0, 0)
	a.CBZ(0, "clean") // always taken: the attack body never executes
	a.Label("tlbi")
	a.Emit(arm64.TLBIVMALLE1())
	a.Label("msr")
	a.Emit(arm64.MSR(arm64.TTBR0EL1, 9)) // TTBR0 write outside any call gate
	a.Label("clean")
	hvcCall(a, kernel.SysExit, 0)
	a.B("clean") // statically closes the walk; the pool below is unreachable
	a.Label("pool")
	a.Emit(arm64.TLBIVMALLE1()) // same encoding as a data word: must not be flagged

	env, err := NewEnv(plat)
	if err != nil {
		return nil, nil, err
	}
	p, err := env.NewProcess("planted-cfg", a, nil, nil)
	if err != nil {
		return nil, nil, err
	}
	if err := env.Run(p, 100_000); err != nil {
		return nil, nil, err
	}
	if p.Killed {
		return nil, nil, fmt.Errorf("planted CFG process was killed dynamically: %s", p.KillMsg)
	}
	labels := make(map[string]uint64)
	for _, l := range []string{"tlbi", "msr", "pool"} {
		off, err := a.Offset(l)
		if err != nil {
			return nil, nil, err
		}
		labels[l] = uint64(kernel.TextBase) + uint64(off)
	}
	return env, labels, nil
}

// buildSemanticGate mirrors core's generated gate for gate 0 with one
// byte-plausible semantic mutation — every instruction is individually
// legal in a gate (the structural audit accepts it) and the dynamic path
// never misbehaves, so only the gate-semantics proof can reject it. It
// returns the assembled words and the VA where the proof must report.
func buildSemanticGate(variant string) ([]uint32, uint64, error) {
	a := arm64.NewAsm()
	base := core.GateCodeBase() // gate 0
	adrTo := func(rd uint8, target uint64) {
		a.Emit(arm64.ADR(rd, int64(target)-int64(base)-int64(a.Len())))
	}
	gateTabEntry := core.GateTabBase() // GateTab[0]
	ttbrTab := core.TTBRTabBase()

	// ① switch phase (identical to the generated gate).
	adrTo(16, gateTabEntry)
	a.Emit(arm64.LDRImm(17, 16, 8, 3))
	adrTo(18, ttbrTab)
	a.Emit(arm64.ADDShifted(18, 18, 17, 3))
	a.Emit(arm64.LDRImm(17, 18, 0, 3))
	a.Label("msr")
	a.Emit(arm64.MSR(arm64.TTBR0EL1, 17))
	a.Emit(arm64.WordISB)
	// ② check phase.
	adrTo(16, gateTabEntry)
	a.Emit(arm64.LDRImm(19, 16, 0, 3))
	a.Emit(arm64.CMPReg(30, 19))
	a.BCond(arm64.CondNE, "fail")
	a.Emit(arm64.LDRImm(17, 16, 8, 3))
	adrTo(18, ttbrTab)
	a.Emit(arm64.ADDShifted(18, 18, 17, 3))
	a.Emit(arm64.MRS(19, arm64.TTBR0EL1))
	if variant == "ttbr-unproven" {
		// The re-read of TTBRTab[PGTID] becomes a copy of the in-register
		// TTBR0: the compare below degenerates to x19 == x19. Dynamically
		// the check "passes" with the honest value every time; statically
		// the installed table is no longer derived from the TTBRTab.
		a.Emit(arm64.MOVReg(20, 19))
	} else {
		a.Emit(arm64.LDRImm(20, 18, 0, 3))
	}
	a.Emit(arm64.CMPReg(19, 20))
	a.BCond(arm64.CondNE, "fail")
	switch variant {
	case "pan-elide":
		// Cold path: x19 holds the live TTBR0 here, which is never zero,
		// so the CBNZ always skips the PAN clear at run time — but an
		// attacker entering at the compare above arrives with x19 free.
		a.CBNZ(19, "ret")
		a.Label("pan")
		core.EmitSetPAN(a, 0)
		a.Label("ret")
		a.Emit(arm64.RET(30))
	case "exit-redirect":
		// Exit through x17 (the PGTID scratch register) instead of the
		// validated link register: a computed exit the check phase never
		// re-validates. rets==1 still holds structurally.
		a.Label("ret")
		a.Emit(arm64.RET(17))
	default:
		a.Label("ret")
		a.Emit(arm64.RET(30))
	}
	a.Label("fail")
	a.Emit(arm64.HVC(core.HVCViolation))

	words, err := a.Assemble()
	if err != nil {
		return nil, 0, err
	}
	if len(words)*arm64.InsnBytes > core.GateSlotLen {
		return nil, 0, fmt.Errorf("variant gate exceeds slot: %d bytes", len(words)*arm64.InsnBytes)
	}
	flagLabel := map[string]string{
		"pan-elide":     "pan", // the elidable PAN write
		"ttbr-unproven": "msr", // the switch whose value is unproven
		"exit-redirect": "ret", // the computed exit
	}[variant]
	off, err := a.Offset(flagLabel)
	if err != nil {
		return nil, 0, err
	}
	return words, base + uint64(off), nil
}

// plantedSemanticGate rebuilds gate 0's slot with a semantic variant and
// installs it. The slot write is followed by a decode-cache invalidation —
// the same host-side hook a legitimate gate (re)install performs — so the
// cache-coherence checker stays quiet and the catch is attributable to
// gate-semantics alone.
func plantedSemanticGate(plat Platform, variant string) (*Env, uint64, error) {
	env, lp, err := plantedCleanTTBR(plat)
	if err != nil {
		return nil, 0, err
	}
	if len(lp.Gates()) == 0 {
		return nil, 0, fmt.Errorf("no gates registered")
	}
	words, flagVA, err := buildSemanticGate(variant)
	if err != nil {
		return nil, 0, err
	}
	slotVA := core.GateCodeBase()
	res, err := lp.TTBR1Table().Walk(mem.VA(slotVA))
	if err != nil || !res.Found {
		return nil, 0, fmt.Errorf("gate slot not mapped: %v", err)
	}
	real, ok := lp.Fake().RealOf(mem.IPA(res.Desc & mem.OAMask))
	if !ok {
		return nil, 0, fmt.Errorf("no real frame behind gate slot")
	}
	buf := make([]byte, core.GateSlotLen) // zero tail clears the old gate
	copy(buf, arm64.WordsToBytes(words))
	if err := env.M.PM.Write(real+mem.PA(slotVA&mem.PageMask), buf); err != nil {
		return nil, 0, err
	}
	env.M.CPU.InvalidateCode(mem.VA(slotVA))
	return env, flagVA, nil
}

// attackSemanticGate wraps one buildSemanticGate variant as a battery cell.
func attackSemanticGate(name, variant string) plantedAttack {
	return plantedAttack{
		name: name, checker: "gate-semantics",
		build: func(plat Platform) (*Env, uint64, uint64, error) {
			env, va, err := plantedSemanticGate(plat, variant)
			if err != nil {
				return nil, 0, 0, err
			}
			return env, va, 0, nil
		},
	}
}

// plantedAttacks is the battery: one cell per attack from the paper's threat
// model, each paired with the checker that must catch it.
func plantedAttacks() []plantedAttack {
	return []plantedAttack{
		{
			// Flip a sanitizer-admitted executable page writable, as a
			// kernel-write primitive would after admission.
			name: "wx-flip", checker: "wx-audit",
			build: func(plat Platform) (*Env, uint64, uint64, error) {
				env, lp, err := plantedCleanTTBR(plat)
				if err != nil {
					return nil, 0, 0, err
				}
				va, _, err := plantedExecPage(lp)
				if err != nil {
					return nil, 0, 0, err
				}
				d0, _ := lp.PageTable(0)
				found, err := d0.S1.UpdateLeaf(va, func(d uint64) uint64 {
					return d &^ (mem.AttrPXN | mem.AttrAPRO)
				})
				if err != nil || !found {
					return nil, 0, 0, fmt.Errorf("flip leaf %v: found=%v err=%v", va, found, err)
				}
				return env, uint64(va), 0, nil
			},
		},
		{
			// Redirect gate 0's registered entry point in the GateTab.
			name: "gatetab-tamper", checker: "gate-integrity",
			build: func(plat Platform) (*Env, uint64, uint64, error) {
				env, lp, err := plantedCleanTTBR(plat)
				if err != nil {
					return nil, 0, 0, err
				}
				if len(lp.Gates()) == 0 {
					return nil, 0, 0, fmt.Errorf("no gates registered")
				}
				if err := env.M.PM.WriteU64(lp.GateTabPA(), 0xdead_0000); err != nil {
					return nil, 0, 0, err
				}
				return env, core.GateTabBase(), 0, nil
			},
		},
		{
			// Smuggle a sensitive word into an already-admitted executable
			// page by writing the frame directly (a DMA-style store the
			// emulated W-xor-X fault path never sees).
			name: "smuggled-word", checker: "sanitizer-sweep",
			build: func(plat Platform) (*Env, uint64, uint64, error) {
				env, lp, err := plantedCleanTTBR(plat)
				if err != nil {
					return nil, 0, 0, err
				}
				va, real, err := plantedExecPage(lp)
				if err != nil {
					return nil, 0, 0, err
				}
				const off = 0x40
				var buf [4]byte
				binary.LittleEndian.PutUint32(buf[:], arm64.TLBIVMALLE1())
				if err := env.M.PM.Write(real+off, buf[:]); err != nil {
					return nil, 0, 0, err
				}
				return env, uint64(va) + off, 0, nil
			},
		},
		{
			// Raw TTBR0_EL1 write outside a gate, hidden from execution but
			// not from the CFG.
			name: "ttbr0-write-outside-gate", checker: "cfg-reachability",
			build: func(plat Platform) (*Env, uint64, uint64, error) {
				env, labels, err := plantedCFGMachine(plat)
				if err != nil {
					return nil, 0, 0, err
				}
				return env, labels["msr"], labels["pool"], nil
			},
		},
		{
			// Reachable-but-never-executed TLBI under the SanNone ablation:
			// the sweep is off, only the CFG checker can see it — and it must
			// still leave the identical word in the literal pool alone.
			name: "reachable-tlbi", checker: "cfg-reachability",
			build: func(plat Platform) (*Env, uint64, uint64, error) {
				env, labels, err := plantedCFGMachine(plat)
				if err != nil {
					return nil, 0, 0, err
				}
				return env, labels["tlbi"], labels["pool"], nil
			},
		},
		{
			// Overwrite the first instruction of gate 0's code slot.
			name: "gate-code-tamper", checker: "gate-integrity",
			build: func(plat Platform) (*Env, uint64, uint64, error) {
				env, lp, err := plantedCleanTTBR(plat)
				if err != nil {
					return nil, 0, 0, err
				}
				slotVA := core.GateCodeBase()
				res, err := lp.TTBR1Table().Walk(mem.VA(slotVA))
				if err != nil || !res.Found {
					return nil, 0, 0, fmt.Errorf("gate slot not mapped: %v", err)
				}
				real, ok := lp.Fake().RealOf(mem.IPA(res.Desc & mem.OAMask))
				if !ok {
					return nil, 0, 0, fmt.Errorf("no real frame behind gate slot")
				}
				var buf [4]byte
				binary.LittleEndian.PutUint32(buf[:], arm64.SVC(0))
				if err := env.M.PM.Write(real+mem.PA(slotVA&mem.PageMask), buf[:]); err != nil {
					return nil, 0, 0, err
				}
				return env, slotVA, 0, nil
			},
		},
		{
			// Forge a TLB entry whose output frame differs from what the
			// page tables derive — a TOCTTOU-style stale translation.
			name: "tlb-tamper", checker: "cache-coherence",
			build: func(plat Platform) (*Env, uint64, uint64, error) {
				env, lp, err := plantedCleanTTBR(plat)
				if err != nil {
					return nil, 0, 0, err
				}
				va, real, err := plantedExecPage(lp)
				if err != nil {
					return nil, 0, 0, err
				}
				d0, _ := lp.PageTable(0)
				res, err := d0.S1.Walk(va)
				if err != nil || !res.Found {
					return nil, 0, 0, fmt.Errorf("walk %v: %v", va, err)
				}
				env.M.CPU.TLB.Insert(lp.VM().VMID, 0, va, mem.TLBEntry{
					PABase:     real + mem.PageSize, // wrong frame
					S1Desc:     res.Desc,
					BlockShift: mem.PageShift,
				})
				return env, uint64(va), 0, nil
			},
		},
		attackSemanticGate("gate-pan-elide", "pan-elide"),
		attackSemanticGate("gate-ttbr-unproven", "ttbr-unproven"),
		attackSemanticGate("gate-exit-redirect", "exit-redirect"),
		{
			// Point the GateTab frame's slot at the storage backing an
			// executable page — a cross-domain frame share no page table
			// connects, so every translation audit walks clean; only the
			// COW frame audit can see it, and it must report the exact PA.
			name: "cow-cross-domain-share", checker: "cow-aliasing",
			build: func(plat Platform) (*Env, uint64, uint64, error) {
				env, lp, err := plantedCleanTTBR(plat)
				if err != nil {
					return nil, 0, 0, err
				}
				_, real, err := plantedExecPage(lp)
				if err != nil {
					return nil, 0, 0, err
				}
				dst := lp.GateTabPA()
				if err := env.M.PM.PlantCOWAlias(real, dst); err != nil {
					return nil, 0, 0, err
				}
				return env, uint64(dst), 0, nil
			},
		},
	}
}

// PlantedSweep runs the planted-attack battery, one fleet cell per attack.
// Each cell must be caught by its designated checker at the exact planted
// VA, and the literal-pool control word must never be flagged. Missing
// either is an error, not a result row.
func (f *Fleet) PlantedSweep(plat Platform) ([]PlantedResult, error) {
	return f.plantedSweep(plat, plantedAttacks())
}
