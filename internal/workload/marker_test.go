package workload

import (
	"strings"
	"testing"

	"lightzone/internal/arm64"
	"lightzone/internal/kernel"
)

// TestMarkerResetAndAbortDetection is the regression for the stale-marker
// bug: a run killed between SysMarkBegin and SysMarkEnd must surface as a
// measurement error, not silently report the previous run's interval, and
// a fresh process must start with both marks unset.
func TestMarkerResetAndAbortDetection(t *testing.T) {
	env, err := NewEnv(carmelHost())
	if err != nil {
		t.Fatal(err)
	}

	// Run 1: a complete measured window.
	a := arm64.NewAsm()
	svcCall(a, SysMarkBegin)
	a.Emit(arm64.ADDImm(9, 9, 1, false))
	svcCall(a, SysMarkEnd)
	svcCall(a, kernel.SysExit, 0)
	p, err := env.NewProcess("measured", a, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := env.Run(p, 100_000); err != nil {
		t.Fatal(err)
	}
	if p.Killed {
		t.Fatalf("killed: %s", p.KillMsg)
	}
	full, err := env.Measured()
	if err != nil {
		t.Fatal(err)
	}
	if full <= 0 {
		t.Fatalf("complete window measured %d cycles, want > 0", full)
	}

	// Run 2: killed inside the window (SIGSEGV on an unmapped page before
	// SysMarkEnd). Pre-fix code returned run 1's interval here.
	a = arm64.NewAsm()
	svcCall(a, SysMarkBegin)
	a.MovImm(10, 0x10)
	a.Emit(arm64.LDRImm(11, 10, 0, 3))
	svcCall(a, SysMarkEnd)
	svcCall(a, kernel.SysExit, 0)
	p, err = env.NewProcess("aborted", a, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := env.Run(p, 100_000); err != nil {
		t.Fatal(err)
	}
	if !p.Killed {
		t.Fatal("unmapped read survived")
	}
	if _, err := env.Measured(); err == nil {
		t.Fatal("aborted window reported a measurement (stale-marker bug)")
	} else if !strings.Contains(err.Error(), "never closed") {
		t.Fatalf("aborted window error = %q, want the never-closed diagnosis", err)
	}

	// Run 3: no markers at all. Both marks must have been reset by
	// NewProcess — zero cycles, no error, nothing inherited from run 1 or 2.
	a = arm64.NewAsm()
	a.Emit(arm64.ADDImm(9, 9, 1, false))
	svcCall(a, kernel.SysExit, 0)
	p, err = env.NewProcess("unmeasured", a, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := env.Run(p, 100_000); err != nil {
		t.Fatal(err)
	}
	got, err := env.Measured()
	if err != nil {
		t.Fatalf("marker state leaked across NewProcess: %v", err)
	}
	if got != 0 {
		t.Fatalf("unmeasured run reports %d cycles, want 0", got)
	}
}
