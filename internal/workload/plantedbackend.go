package workload

import (
	"encoding/binary"
	"fmt"

	"lightzone/internal/arm64"
	"lightzone/internal/core"
	"lightzone/internal/kernel"
	"lightzone/internal/mem"
	"lightzone/internal/verify"
)

// Per-backend planted-attack batteries. The substrate-invariant attacks
// (W-xor-X flip, smuggled word, TLB forgery, CFG smuggling) are re-planted
// on machines running each backend — the catching checker is the same, but
// the machine it must catch it on is not. The substrate-specific attacks
// target each backend's own bookkeeping: overlay-key retags where lightzone
// has gate tampering, granule-delegation violations where lightzone has
// TTBRTab tampering.

// plantedCleanBackend runs a small clean benchmark under a backend and
// hands back the machine with its process state intact (the backend
// analogue of plantedCleanTTBR, which it delegates to for lightzone).
func plantedCleanBackend(plat Platform, backend string) (*Env, *core.LZProc, error) {
	if backend == "lightzone" {
		return plantedCleanTTBR(plat)
	}
	_, env, err := runBackendSwitch(BackendSwitchConfig{
		Platform: plat, Backend: backend, Domains: 8, Iters: 64, Seed: Table5Seed,
	})
	if err != nil {
		return nil, nil, err
	}
	procs := env.LZ.Procs()
	if len(procs) == 0 {
		return nil, nil, fmt.Errorf("no LightZone process survived the run")
	}
	return env, procs[0], nil
}

// plantedCFGMachineBackend is plantedCFGMachine on a backend environment:
// the same always-skipped attack body and literal-pool control, entered
// under the named isolation backend.
func plantedCFGMachineBackend(plat Platform, backend string) (*Env, map[string]uint64, error) {
	a := arm64.NewAsm()
	svcCall(a, core.SysLZEnter, 0, uint64(core.SanNone))
	a.MovImm(0, 0)
	a.CBZ(0, "clean")
	a.Label("tlbi")
	a.Emit(arm64.TLBIVMALLE1())
	a.Label("msr")
	a.Emit(arm64.MSR(arm64.TTBR0EL1, 9))
	a.Label("clean")
	hvcCall(a, kernel.SysExit, 0)
	a.B("clean")
	a.Label("pool")
	a.Emit(arm64.TLBIVMALLE1())

	env, err := NewEnvBackend(plat, backend)
	if err != nil {
		return nil, nil, err
	}
	p, err := env.NewProcess("planted-cfg", a, nil, nil)
	if err != nil {
		return nil, nil, err
	}
	if err := env.Run(p, 100_000); err != nil {
		return nil, nil, err
	}
	if p.Killed {
		return nil, nil, fmt.Errorf("planted CFG process was killed dynamically: %s", p.KillMsg)
	}
	labels := make(map[string]uint64)
	for _, l := range []string{"tlbi", "msr", "pool"} {
		off, err := a.Offset(l)
		if err != nil {
			return nil, nil, err
		}
		labels[l] = uint64(kernel.TextBase) + uint64(off)
	}
	return env, labels, nil
}

// Substrate-invariant attacks, parameterized by the backend whose clean
// machine they are planted on.

func attackWXFlip(backend string) plantedAttack {
	return plantedAttack{
		name: "wx-flip", checker: "wx-audit",
		build: func(plat Platform) (*Env, uint64, uint64, error) {
			env, lp, err := plantedCleanBackend(plat, backend)
			if err != nil {
				return nil, 0, 0, err
			}
			va, _, err := plantedExecPage(lp)
			if err != nil {
				return nil, 0, 0, err
			}
			d0, _ := lp.PageTable(0)
			found, err := d0.S1.UpdateLeaf(va, func(d uint64) uint64 {
				return d &^ (mem.AttrPXN | mem.AttrAPRO)
			})
			if err != nil || !found {
				return nil, 0, 0, fmt.Errorf("flip leaf %v: found=%v err=%v", va, found, err)
			}
			return env, uint64(va), 0, nil
		},
	}
}

func attackSmuggledWord(backend string) plantedAttack {
	return plantedAttack{
		name: "smuggled-word", checker: "sanitizer-sweep",
		build: func(plat Platform) (*Env, uint64, uint64, error) {
			env, lp, err := plantedCleanBackend(plat, backend)
			if err != nil {
				return nil, 0, 0, err
			}
			va, real, err := plantedExecPage(lp)
			if err != nil {
				return nil, 0, 0, err
			}
			const off = 0x40
			var buf [4]byte
			binary.LittleEndian.PutUint32(buf[:], arm64.TLBIVMALLE1())
			if err := env.M.PM.Write(real+off, buf[:]); err != nil {
				return nil, 0, 0, err
			}
			return env, uint64(va) + off, 0, nil
		},
	}
}

func attackTLBTamper(backend string) plantedAttack {
	return plantedAttack{
		name: "tlb-tamper", checker: "cache-coherence",
		build: func(plat Platform) (*Env, uint64, uint64, error) {
			env, lp, err := plantedCleanBackend(plat, backend)
			if err != nil {
				return nil, 0, 0, err
			}
			va, real, err := plantedExecPage(lp)
			if err != nil {
				return nil, 0, 0, err
			}
			d0, _ := lp.PageTable(0)
			res, err := d0.S1.Walk(va)
			if err != nil || !res.Found {
				return nil, 0, 0, fmt.Errorf("walk %v: %v", va, err)
			}
			env.M.CPU.TLB.Insert(lp.VM().VMID, 0, va, mem.TLBEntry{
				PABase:     real + mem.PageSize,
				S1Desc:     res.Desc,
				BlockShift: mem.PageShift,
			})
			return env, uint64(va), 0, nil
		},
	}
}

func attackReachableTLBI(backend string) plantedAttack {
	return plantedAttack{
		name: "reachable-tlbi", checker: "cfg-reachability",
		build: func(plat Platform) (*Env, uint64, uint64, error) {
			env, labels, err := plantedCFGMachineBackend(plat, backend)
			if err != nil {
				return nil, 0, 0, err
			}
			return env, labels["tlbi"], labels["pool"], nil
		},
	}
}

func attackTTBR0Write(backend string) plantedAttack {
	return plantedAttack{
		// Under overlay and granule there is no gate for a TTBR0 write to
		// be legal in: the raw write is forbidden everywhere, and still
		// only the CFG can see the never-executed instance.
		name: "ttbr0-write", checker: "cfg-reachability",
		build: func(plat Platform) (*Env, uint64, uint64, error) {
			env, labels, err := plantedCFGMachineBackend(plat, backend)
			if err != nil {
				return nil, 0, 0, err
			}
			return env, labels["msr"], labels["pool"], nil
		},
	}
}

// overlayVictim picks the lowest-addressed keyed page of the process (the
// battery's deterministic tamper target) and returns its base table.
func overlayVictim(lp *core.LZProc) (mem.VA, int, *core.DomainPGT, error) {
	keys := lp.OverlayPageKeys()
	if len(keys) == 0 {
		return 0, 0, nil, fmt.Errorf("no overlay-keyed pages")
	}
	var va mem.VA
	first := true
	for v := range keys {
		if first || v < va {
			va, first = v, false
		}
	}
	d0, ok := lp.PageTable(0)
	if !ok {
		return 0, 0, nil, fmt.Errorf("base page table missing")
	}
	return va, keys[va], d0, nil
}

const overlayKeyAttrMask = uint64(mem.OverlayKeyMax) << mem.OverlayKeyShift

// plantedOverlayAttacks is the overlay-backend battery: the three
// key-discipline attacks plus the substrate-invariant four.
func plantedOverlayAttacks() []plantedAttack {
	retag := func(name string, newKey func(old int, granted []int) int) plantedAttack {
		return plantedAttack{
			name: name, checker: "overlay-keys",
			build: func(plat Platform) (*Env, uint64, uint64, error) {
				env, lp, err := plantedCleanBackend(plat, "overlay")
				if err != nil {
					return nil, 0, 0, err
				}
				va, key, d0, err := overlayVictim(lp)
				if err != nil {
					return nil, 0, 0, err
				}
				k := newKey(key, lp.OverlayGranted())
				found, err := d0.S1.UpdateLeaf(va, func(d uint64) uint64 {
					return d&^overlayKeyAttrMask | mem.OverlayKeyAttr(k)
				})
				if err != nil || !found {
					return nil, 0, 0, fmt.Errorf("retag %v: found=%v err=%v", va, found, err)
				}
				return env, uint64(va), 0, nil
			},
		}
	}
	return []plantedAttack{
		// Retag a keyed page to another domain's granted key — the overlay
		// form of handing one domain's memory to another.
		retag("key-retag", func(old int, granted []int) int {
			for _, g := range granted {
				if g != old {
					return g
				}
			}
			return old + 1
		}),
		// Retag to a key lz_alloc never granted.
		retag("ungranted-key", func(int, []int) int { return 200 }),
		{
			// Strip the protected marker while keeping the key: the module's
			// fault classification would no longer recognize the page.
			name: "marker-strip", checker: "overlay-keys",
			build: func(plat Platform) (*Env, uint64, uint64, error) {
				env, lp, err := plantedCleanBackend(plat, "overlay")
				if err != nil {
					return nil, 0, 0, err
				}
				va, _, d0, err := overlayVictim(lp)
				if err != nil {
					return nil, 0, 0, err
				}
				found, err := d0.S1.UpdateLeaf(va, func(d uint64) uint64 {
					return d &^ mem.AttrSWLZProt
				})
				if err != nil || !found {
					return nil, 0, 0, fmt.Errorf("strip %v: found=%v err=%v", va, found, err)
				}
				return env, uint64(va), 0, nil
			},
		},
		attackWXFlip("overlay"),
		attackSmuggledWord("overlay"),
		attackTTBR0Write("overlay"),
		attackReachableTLBI("overlay"),
		attackTLBTamper("overlay"),
	}
}

// plantedGranuleAttacks is the granule-backend battery: the three
// delegation-discipline attacks plus the substrate-invariant four.
func plantedGranuleAttacks() []plantedAttack {
	return []plantedAttack{
		{
			// Map zone 1's delegated granule into zone 2's table with the
			// protected marker — a cross-zone alias of delegated memory.
			name: "cross-zone-alias", checker: "granule-state",
			build: func(plat Platform) (*Env, uint64, uint64, error) {
				env, lp, err := plantedCleanBackend(plat, "granule")
				if err != nil {
					return nil, 0, 0, err
				}
				va := DomainVA(0) // protected by zone 1 in the clean run
				d1, ok1 := lp.PageTable(1)
				d2, ok2 := lp.PageTable(2)
				if !ok1 || !ok2 {
					return nil, 0, 0, fmt.Errorf("zone tables missing")
				}
				res, err := d1.S1.Walk(va)
				if err != nil || !res.Found {
					return nil, 0, 0, fmt.Errorf("victim %v not mapped in zone 1: %v", va, err)
				}
				attrs := res.Desc &^ (mem.OAMask | mem.DescValid | mem.DescTable | mem.AttrAF)
				if err := d2.S1.Map(va, mem.PA(res.Desc&mem.OAMask), attrs); err != nil {
					return nil, 0, 0, err
				}
				return env, uint64(va), 0, nil
			},
		},
		{
			// Tag an ordinary shared page zone-protected without any
			// delegation backing it.
			name: "undelegated-tag", checker: "granule-state",
			build: func(plat Platform) (*Env, uint64, uint64, error) {
				env, lp, err := plantedCleanBackend(plat, "granule")
				if err != nil {
					return nil, 0, 0, err
				}
				d1, ok := lp.PageTable(1)
				if !ok {
					return nil, 0, 0, fmt.Errorf("zone 1 table missing")
				}
				va := mem.VA(kernel.DataBase)
				found, err := d1.S1.UpdateLeaf(va, func(d uint64) uint64 {
					return d | mem.AttrSWLZProt
				})
				if err != nil || !found {
					return nil, 0, 0, fmt.Errorf("tag %v: found=%v err=%v", va, found, err)
				}
				return env, uint64(va), 0, nil
			},
		},
		{
			// Strip the protection and ASID tagging from a delegated
			// granule's own mapping: delegated memory becomes reachable
			// through an unprotected global mapping.
			name: "unprotected-alias", checker: "granule-state",
			build: func(plat Platform) (*Env, uint64, uint64, error) {
				env, lp, err := plantedCleanBackend(plat, "granule")
				if err != nil {
					return nil, 0, 0, err
				}
				va := DomainVA(0)
				d1, ok := lp.PageTable(1)
				if !ok {
					return nil, 0, 0, fmt.Errorf("zone 1 table missing")
				}
				found, err := d1.S1.UpdateLeaf(va, func(d uint64) uint64 {
					return d &^ (mem.AttrSWLZProt | mem.AttrNG)
				})
				if err != nil || !found {
					return nil, 0, 0, fmt.Errorf("strip %v: found=%v err=%v", va, found, err)
				}
				return env, uint64(va), 0, nil
			},
		},
		attackWXFlip("granule"),
		attackSmuggledWord("granule"),
		attackTTBR0Write("granule"),
		attackReachableTLBI("granule"),
		attackTLBTamper("granule"),
	}
}

// plantedAttacksFor returns the battery of one backend.
func plantedAttacksFor(backend string) ([]plantedAttack, error) {
	switch backend {
	case "lightzone":
		return plantedAttacks(), nil
	case "overlay":
		return plantedOverlayAttacks(), nil
	case "granule":
		return plantedGranuleAttacks(), nil
	}
	return nil, fmt.Errorf("no planted battery for backend %q", backend)
}

// PlantedSweepBackend runs a backend's planted battery, one fleet cell per
// attack, with the same must-catch discipline as PlantedSweep (which is the
// lightzone instance of this sweep).
func (f *Fleet) PlantedSweepBackend(plat Platform, backend string) ([]PlantedResult, error) {
	attacks, err := plantedAttacksFor(backend)
	if err != nil {
		return nil, err
	}
	return f.plantedSweep(plat, attacks)
}

// plantedSweep runs one battery; every attack must be caught by its
// designated checker at the planted VA and the control word never flagged.
func (f *Fleet) plantedSweep(plat Platform, attacks []plantedAttack) ([]PlantedResult, error) {
	out := make([]PlantedResult, len(attacks))
	err := f.Run(len(attacks), func(i int) error {
		pa := attacks[i]
		env, va, absent, err := pa.build(plat)
		if err != nil {
			return fmt.Errorf("%s: %w", pa.name, err)
		}
		rep, err := verify.RunMachine(env.M, env.LZ)
		if err != nil {
			return fmt.Errorf("%s: %w", pa.name, err)
		}
		res := PlantedResult{Name: pa.name, Checker: pa.checker, VA: va, Total: len(rep.Findings)}
		for _, fd := range rep.Findings {
			if absent != 0 && fd.VA == absent {
				return findingsf("%s: unreachable word at %#x falsely flagged: %s", pa.name, absent, fd.Detail)
			}
			if !res.Caught && fd.Checker == pa.checker && fd.VA == va {
				res.Caught, res.Detail = true, fd.Detail
			}
		}
		if !res.Caught {
			return findingsf("%s: expected %s finding at %#x; verifier reported %d findings",
				pa.name, pa.checker, va, len(rep.Findings))
		}
		out[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
