package workload

import (
	"testing"

	"lightzone/internal/arm64"
)

// Every §5.2 optimization must be load-bearing: ablating it has to make
// the path it protects measurably slower (and never faster).
func TestAblationsAreLoadBearing(t *testing.T) {
	for _, prof := range arm64.Profiles() {
		t.Run(prof.Name, func(t *testing.T) {
			results, err := RunAblations(prof)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range results {
				t.Logf("%-30s %s: optimized %.0f, ablated %.0f (%.2fx)",
					r.Name, r.Metric, r.Optimized, r.Ablated, r.Factor())
				if r.Ablated < r.Optimized {
					t.Errorf("%s: ablation made the path faster (%.0f < %.0f)",
						r.Name, r.Ablated, r.Optimized)
				}
			}
			// The retain optimization is the headline on Carmel: its
			// ablation must add roughly the measured HCR+VTTBR write
			// costs per trap (Table 4: ~2,700 cycles on Carmel).
			retain := results[0]
			wantDelta := float64(2 * (prof.SysRegWriteCost(arm64.HCREL2) + prof.SysRegWriteCost(arm64.VTTBREL2)))
			delta := retain.Ablated - retain.Optimized
			if delta < wantDelta*0.8 || delta > wantDelta*1.3 {
				t.Errorf("retain ablation delta = %.0f, want about %.0f", delta, wantDelta)
			}
			// The eager stage-2 ablation must produce the back-to-back
			// fault pattern: a cold-page touch costs at least one extra
			// trap roundtrip.
			eager := results[3]
			if eager.Ablated-eager.Optimized < float64(prof.ExcEntryTo[2]) {
				t.Errorf("eager-s2 ablation too cheap: %.0f vs %.0f", eager.Ablated, eager.Optimized)
			}
		})
	}
}
