package workload

import (
	"math"
	"testing"
)

// paperFig holds the paper's quoted overhead percentages per platform and
// variant for a figure, with tolerance in absolute percentage points.
type figCell struct {
	guest   bool
	carmel  bool
	variant Variant
	paper   float64
	tolPP   float64
}

func primsFor(t *testing.T, carmel, guest bool) *Primitives {
	t.Helper()
	var plat Platform
	for _, p := range AllPlatforms() {
		if (p.Prof.Name == "Carmel") == carmel && p.Guest == guest {
			plat = p
		}
	}
	pr, err := MeasurePrimitives(plat)
	if err != nil {
		t.Fatal(err)
	}
	return pr
}

func TestFigure3NginxOverheadsMatchPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweep is slow")
	}
	cells := []figCell{
		// §9.1 quoted losses.
		{false, true, VariantLZPAN, 1.35, 1.5},
		{false, true, VariantLZTTBR, 5.65, 3},
		{false, true, VariantWatchpoint, 45.46, 6},
		{false, true, VariantLwC, 59.03, 6},
		{true, true, VariantLZPAN, 25.24, 6},
		{true, true, VariantLZTTBR, 26.91, 6},
		{true, true, VariantWatchpoint, 23.58, 6},
		{true, true, VariantLwC, 26.65, 7},
		{false, false, VariantLZPAN, 0.91, 1},
		{false, false, VariantLZTTBR, 3.01, 2},
		{false, false, VariantWatchpoint, 6.14, 2},
		{false, false, VariantLwC, 13.71, 3},
		{true, false, VariantLZPAN, 1.98, 1.5},
		{true, false, VariantLZTTBR, 2.03, 1.5},
		{true, false, VariantWatchpoint, 6.04, 2},
		{true, false, VariantLwC, 21.24, 5},
	}
	checkFigureCells(t, cells, func(pr *Primitives) (map[Variant]float64, error) {
		series, err := NginxFigure(pr)
		if err != nil {
			return nil, err
		}
		out := map[Variant]float64{}
		for _, s := range series {
			out[s.Variant] = s.OverheadPct
		}
		return out, nil
	})
}

func TestFigure5NVMOverheadsMatchPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweep is slow")
	}
	cells := []figCell{
		// §9.3 quoted average overheads.
		{false, true, VariantLZPAN, 1.75, 1.5},
		{false, true, VariantLZTTBR, 12.92, 4},
		{true, true, VariantLZPAN, 4.39, 3.5},
		{true, true, VariantLZTTBR, 16.64, 5},
		{false, false, VariantLZPAN, 0.26, 1},
		{false, false, VariantLZTTBR, 1.81, 1.5},
		{true, false, VariantLZPAN, 0.20, 1},
		{true, false, VariantLZTTBR, 3.76, 1.5},
	}
	checkFigureCells(t, cells, func(pr *Primitives) (map[Variant]float64, error) {
		series, err := NVMFigure(pr)
		if err != nil {
			return nil, err
		}
		out := map[Variant]float64{}
		for _, s := range series {
			var sum float64
			for _, v := range s.OverheadPct {
				sum += v
			}
			out[s.Variant] = sum / float64(len(s.OverheadPct))
		}
		return out, nil
	})
}

func checkFigureCells(t *testing.T, cells []figCell, eval func(*Primitives) (map[Variant]float64, error)) {
	t.Helper()
	type key struct{ carmel, guest bool }
	cache := map[key]map[Variant]float64{}
	for _, c := range cells {
		k := key{c.carmel, c.guest}
		got, ok := cache[k]
		if !ok {
			pr := primsFor(t, c.carmel, c.guest)
			var err error
			got, err = eval(pr)
			if err != nil {
				t.Fatal(err)
			}
			cache[k] = got
		}
		if math.Abs(got[c.variant]-c.paper) > c.tolPP {
			t.Errorf("carmel=%v guest=%v %v: %.2f%%, paper %.2f%% (tol ±%.1fpp)",
				c.carmel, c.guest, c.variant, got[c.variant], c.paper, c.tolPP)
		}
	}
}

// Figure 4's headline structural claims (§9.2): LightZone PAN is near
// free, TTBR stays in single digits at high thread counts on hosts, and
// LightZone's saturated TTBR loss on Carmel hosts lands in the paper's
// 5.26-6.23%-ish stabilization band.
func TestFigure4MySQLStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweep is slow")
	}
	for _, carmel := range []bool{true, false} {
		pr := primsFor(t, carmel, false)
		series, err := MySQLFigure(pr)
		if err != nil {
			t.Fatal(err)
		}
		loss := map[Variant]float64{}
		for _, s := range series {
			loss[s.Variant] = s.OverheadPct
		}
		if loss[VariantLZPAN] > 2 {
			t.Errorf("carmel=%v: PAN loss %.2f%% exceeds the paper's <1-ish bound", carmel, loss[VariantLZPAN])
		}
		if loss[VariantLZTTBR] < loss[VariantLZPAN] {
			t.Errorf("carmel=%v: TTBR (%.2f%%) cheaper than PAN (%.2f%%)", carmel, loss[VariantLZTTBR], loss[VariantLZPAN])
		}
		if loss[VariantLZTTBR] > 8 {
			t.Errorf("carmel=%v: TTBR loss %.2f%% far above the 5.26-6.23%% stabilization band", carmel, loss[VariantLZTTBR])
		}
		if carmel && loss[VariantWatchpoint] < loss[VariantLZTTBR] {
			t.Errorf("watchpoint (%.2f%%) beat TTBR (%.2f%%) on Carmel host", loss[VariantWatchpoint], loss[VariantLZTTBR])
		}
		// Throughput must scale up with threads to the core count.
		for _, s := range series {
			if s.Points[0].Tput >= s.Points[3].Tput {
				t.Errorf("carmel=%v %v: no thread scaling (%f >= %f)", carmel, s.Variant, s.Points[0].Tput, s.Points[3].Tput)
			}
		}
	}
}

// The Carmel-guest anomaly of Figure 3 (§9.1): on Carmel hosts Watchpoint
// and lwC collapse (trap-bound), while on Carmel guests all protections
// land in the same ~25% band and Watchpoint actually edges out LightZone —
// the crossover the paper explains by guest traps being cheaper than host
// traps on Carmel.
func TestFigure3CarmelCrossover(t *testing.T) {
	host := primsFor(t, true, false)
	guest := primsFor(t, true, true)
	hostSeries, err := NginxFigure(host)
	if err != nil {
		t.Fatal(err)
	}
	guestSeries, err := NginxFigure(guest)
	if err != nil {
		t.Fatal(err)
	}
	get := func(series []FigureSeries, v Variant) float64 {
		for _, s := range series {
			if s.Variant == v {
				return s.OverheadPct
			}
		}
		return math.NaN()
	}
	if wp, lz := get(hostSeries, VariantWatchpoint), get(hostSeries, VariantLZTTBR); wp < 4*lz {
		t.Errorf("host: watchpoint (%.1f%%) does not collapse against TTBR (%.1f%%)", wp, lz)
	}
	if wp, lz := get(guestSeries, VariantWatchpoint), get(guestSeries, VariantLZPAN); wp > lz {
		t.Errorf("guest: watchpoint (%.1f%%) should edge out LightZone PAN (%.1f%%)", wp, lz)
	}
}
