package workload

import "testing"

// Memory overheads (§9.1-§9.3). These are *measured* from the real page
// tables the module builds, not modelled; the assertions encode the
// paper's reported values with bands wide enough for the layout
// simplifications documented in DESIGN.md.
func TestNginxMemoryOverheads(t *testing.T) {
	if testing.Short() {
		t.Skip("memory layout construction is slow")
	}
	m, err := NginxMemory(AllPlatforms()[2])
	if err != nil {
		t.Fatal(err)
	}
	if m.FragPct < 1.0 || m.FragPct > 2.2 {
		t.Errorf("fragmentation = %.2f%%, paper 1.6%%", m.FragPct)
	}
	if m.PANPTPct > 2.0 {
		t.Errorf("PAN page-table overhead = %.2f%%, paper 1.2%%", m.PANPTPct)
	}
	if m.TTBRPTPct < 15 || m.TTBRPTPct > 30 {
		t.Errorf("TTBR page-table overhead = %.2f%%, paper 22.2%%", m.TTBRPTPct)
	}
}

func TestMySQLMemoryOverheads(t *testing.T) {
	if testing.Short() {
		t.Skip("memory layout construction is slow")
	}
	m, err := MySQLMemory(AllPlatforms()[2])
	if err != nil {
		t.Fatal(err)
	}
	if m.FragPct < 8 || m.FragPct > 18 {
		t.Errorf("application overhead = %.2f%%, paper 13.3%%", m.FragPct)
	}
	if m.PANPTPct > 1.5 {
		t.Errorf("PAN page-table overhead = %.2f%%, paper 0.2%%", m.PANPTPct)
	}
	if m.TTBRPTPct < 4 || m.TTBRPTPct > 14 {
		t.Errorf("TTBR page-table overhead = %.2f%%, paper 9.8%%", m.TTBRPTPct)
	}
}

func TestNVMMemoryOverheads(t *testing.T) {
	if testing.Short() {
		t.Skip("memory layout construction is slow")
	}
	m, err := NVMMemory(AllPlatforms()[2])
	if err != nil {
		t.Fatal(err)
	}
	if m.FragPct != 0 {
		t.Errorf("fragmentation = %.2f%%, paper reports none", m.FragPct)
	}
	if m.PANPTPct > 1 {
		t.Errorf("PAN page-table overhead = %.2f%%, paper negligible", m.PANPTPct)
	}
	if m.TTBRPTPct < 3 || m.TTBRPTPct > 15 {
		t.Errorf("TTBR page-table overhead = %.2f%%, paper 12.1%%", m.TTBRPTPct)
	}
}
