package workload

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"lightzone/internal/arm64"
	"lightzone/internal/core"
	"lightzone/internal/hyp"
)

// Fleet shards independent measurement cells across worker goroutines.
// Every cell boots its own Env — machine, vCPU, TLB, decoded-block cache,
// kernel — so cells share no mutable state; the only package-level state
// they touch (the instruction handler table, system-register encodings,
// cost-profile constructors) is immutable after init. Results are written
// into caller-indexed slots and sweeps enumerate their cells in the same
// order the sequential code did, so a fleet of any width produces
// bit-identical output: the per-cell RNGs are seeded from the cell's own
// config, never from shared or scheduling-dependent state.
type Fleet struct {
	// Workers is the maximum number of cells in flight. 1 runs cells
	// sequentially in index order (the pre-fleet behavior, byte for byte).
	Workers int

	// slots is the shared extra-worker pool (capacity Workers-1; the
	// calling goroutine is always the remaining worker). Nested Run calls
	// — a sweep cell warming caches through the same fleet — draw from
	// this one pool, so total concurrency stays bounded by Workers instead
	// of multiplying per nesting level. Acquisition is non-blocking: a Run
	// that finds the pool drained just executes its cells on the calling
	// goroutine, which also makes nesting deadlock-free.
	slots chan struct{}
}

// NewFleet returns a fleet with the given width; workers <= 0 selects
// runtime.NumCPU().
func NewFleet(workers int) *Fleet {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	f := &Fleet{Workers: workers}
	if workers > 1 {
		f.slots = make(chan struct{}, workers-1)
		for i := 0; i < workers-1; i++ {
			f.slots <- struct{}{}
		}
	}
	return f
}

// width is the effective worker count (a zero-value Fleet is sequential).
func (f *Fleet) width() int {
	if f == nil || f.Workers <= 0 {
		return 1
	}
	return f.Workers
}

// Run executes cells 0..n-1, each exactly once. Sequentially (width 1) the
// first error stops the sweep immediately; in parallel every cell runs and
// the error of the lowest-indexed failing cell is returned, so the
// reported failure is the same one the sequential sweep would have hit,
// independent of scheduling.
func (f *Fleet) Run(n int, cell func(i int) error) error {
	if n <= 0 {
		return nil
	}
	w := f.width()
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			if err := cell(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			errs[i] = cell(i)
		}
	}
	// The calling goroutine is always one worker; up to w-1 extras are
	// spawned, each backed by a slot from the shared pool when one exists
	// (a zero-value or literal Fleet has no pool and spawns unpooled).
	var wg sync.WaitGroup
spawn:
	for k := 0; k < w-1; k++ {
		if f.slots != nil {
			select {
			case <-f.slots:
			default:
				break spawn // pool drained by enclosing Run calls
			}
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if f.slots != nil {
				defer func() { f.slots <- struct{}{} }()
			}
			work()
		}()
	}
	work()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// fleetMap runs one cell per index and collects the results by index.
func fleetMap[T any](f *Fleet, n int, cell func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := f.Run(n, func(i int) error {
		v, err := cell(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	return out, err
}

// Table5Seed is the fixed RNG seed of every Table 5 cell (each cell builds
// its own rand.Source from it, so cells are independent and reproducible).
const Table5Seed = 42

// Table5Domains is the domain-count column set of Table 5.
var Table5Domains = []int{1, 2, 3, 32, 64, 128}

// Table5PlatformRow is one printed platform row of Table 5.
type Table5PlatformRow struct {
	Name string
	Plat Platform
}

// Table5Platforms returns the three platform rows in presentation order.
func Table5Platforms() []Table5PlatformRow {
	return []Table5PlatformRow{
		{"Carmel Host", Platform{Prof: arm64.ProfileCarmel()}},
		{"Carmel Guest", Platform{Prof: arm64.ProfileCarmel(), Guest: true}},
		{"Cortex", Platform{Prof: arm64.ProfileCortexA55()}},
	}
}

// Table5Cell is one measurement of the Table 5 matrix.
type Table5Cell struct {
	PlatformName string
	Platform     Platform
	Variant      Variant
	Domains      int
	Iters        int
	Result       DomainSwitchResult
}

// Table5Cells enumerates the full matrix in presentation order: per
// platform row, per domain count, the Watchpoint baseline cell (where the
// baseline can express the count) followed by the LightZone cell (PAN for
// the single-domain column, TTBR beyond).
func Table5Cells(iters int) []Table5Cell {
	var cells []Table5Cell
	for _, row := range Table5Platforms() {
		for i, d := range Table5Domains {
			if d <= 16 && i < 3 {
				cells = append(cells, Table5Cell{
					PlatformName: row.Name, Platform: row.Plat,
					Variant: VariantWatchpoint, Domains: d, Iters: iters,
				})
			}
			v := VariantLZTTBR
			if i == 0 {
				v = VariantLZPAN
			}
			cells = append(cells, Table5Cell{
				PlatformName: row.Name, Platform: row.Plat,
				Variant: v, Domains: d, Iters: iters,
			})
		}
	}
	return cells
}

// Table5Sweep measures the full Table 5 matrix across the fleet.
func (f *Fleet) Table5Sweep(iters int) ([]Table5Cell, error) {
	cells := Table5Cells(iters)
	err := f.Run(len(cells), func(i int) error {
		c := &cells[i]
		res, err := RunDomainSwitch(DomainSwitchConfig{
			Platform: c.Platform, Variant: c.Variant,
			Domains: c.Domains, Iters: c.Iters, Seed: Table5Seed,
		})
		if err != nil {
			return err
		}
		c.Result = res
		return nil
	})
	return cells, err
}

// Table4Sweep runs the Table 4 trap-roundtrip measurements, one cell per
// cost profile, returned in arm64.Profiles() order.
func (f *Fleet) Table4Sweep() ([][]Table4Row, error) {
	profs := arm64.Profiles()
	return fleetMap(f, len(profs), func(i int) ([]Table4Row, error) {
		return RunTable4(profs[i])
	})
}

// FigureCell is one platform's measurements of a figure sweep: the
// primitives measured on that platform's private machines, plus the series
// of the requested figure (Series for figures 3 and 4, NVM for figure 5).
type FigureCell struct {
	Platform Platform
	Prims    *Primitives
	Series   []FigureSeries
	NVM      []NVMSeries
}

// figureDomainCounts lists the live-domain counts a figure evaluates, so
// the per-domain primitive caches can be warmed through the fleet.
func figureDomainCounts(figure int) []int {
	switch figure {
	case 3:
		return []int{nginxParams.Domains}
	case 4:
		out := make([]int, len(MySQLThreads))
		for i, t := range MySQLThreads {
			out[i] = t + 1 // one stack domain per thread + base
		}
		return out
	case 5:
		return NVMDomainCounts
	}
	return nil
}

// FigureSweep evaluates figure 3, 4 or 5 on every platform, one fleet cell
// per platform (in AllPlatforms order). Within a cell, the per-domain
// switch primitives are themselves warmed through the fleet before the
// series is composed.
func (f *Fleet) FigureSweep(figure int) ([]FigureCell, error) {
	plats := AllPlatforms()
	return fleetMap(f, len(plats), func(i int) (FigureCell, error) {
		cell := FigureCell{Platform: plats[i]}
		pr, err := MeasurePrimitives(plats[i])
		if err != nil {
			return cell, err
		}
		if err := pr.PrewarmGates(f, figureDomainCounts(figure)); err != nil {
			return cell, err
		}
		cell.Prims = pr
		switch figure {
		case 3:
			cell.Series, err = NginxFigure(pr)
		case 4:
			cell.Series, err = MySQLFigure(pr)
		case 5:
			cell.NVM, err = NVMFigure(pr)
		default:
			err = fmt.Errorf("no figure %d", figure)
		}
		return cell, err
	})
}

// AblationSweep measures every §5.2/§5.1.2 ablation on one cost profile,
// one fleet cell per independent measurement, and assembles the result
// rows in the fixed presentation order.
func (f *Fleet) AblationSweep(prof *arm64.Profile) ([]AblationResult, error) {
	meas := []struct {
		label string
		run   func() (float64, error)
	}{
		{"retain base", func() (float64, error) { return measureLZSyscallOpts(prof, hyp.Opts{}, core.Opts{}) }},
		{"retain ablated", func() (float64, error) {
			return measureLZSyscallOpts(prof, hyp.Opts{DisableRetainRegs: true}, core.Opts{})
		}},
		{"shared-ptregs base", func() (float64, error) { return measureLZGuestSyscallOpts(prof, hyp.Opts{}) }},
		{"shared-ptregs ablated", func() (float64, error) {
			return measureLZGuestSyscallOpts(prof, hyp.Opts{DisableSharedPtRegs: true})
		}},
		{"partial-switch ablated", func() (float64, error) {
			return measureLZGuestSyscallOpts(prof, hyp.Opts{DisablePartialSwitch: true})
		}},
		{"eager-s2 base", func() (float64, error) { return measureFaultStorm(prof, core.Opts{}) }},
		{"eager-s2 ablated", func() (float64, error) { return measureFaultStorm(prof, core.Opts{DisableEagerS2: true}) }},
		{"identity-phys", func() (float64, error) {
			return measureLZSyscallOpts(prof, hyp.Opts{}, core.Opts{IdentityPhys: true})
		}},
	}
	v, err := fleetMap(f, len(meas), func(i int) (float64, error) {
		x, err := meas[i].run()
		if err != nil {
			return 0, fmt.Errorf("%s: %w", meas[i].label, err)
		}
		return x, nil
	})
	if err != nil {
		return nil, err
	}
	return []AblationResult{
		{Name: "retain-hcr-vttbr (5.2.1)", Metric: "lz-host-syscall cycles", Optimized: v[0], Ablated: v[1]},
		{Name: "shared-pt-regs (5.2.2)", Metric: "lz-guest-syscall cycles", Optimized: v[2], Ablated: v[3]},
		{Name: "partial-el1-switch (5.2.2)", Metric: "lz-guest-syscall cycles", Optimized: v[2], Ablated: v[4]},
		{Name: "eager-stage2-mapping (5.2)", Metric: "cold-page touch cycles", Optimized: v[5], Ablated: v[6]},
		// §5.1.2: identity is the "intuitive" baseline — its ablation is
		// cheaper but leaks real physical addresses through PTEs.
		{Name: "fake-physical-layer (5.1.2)", Metric: "lz-host-syscall cycles", Optimized: v[7], Ablated: v[0]},
	}, nil
}

// PentestSweep runs the §7.2 attack battery, one fleet cell per attack;
// every attack boots its own machine, so the battery shards cleanly.
func (f *Fleet) PentestSweep(plat Platform) ([]PentestResult, error) {
	out := make([]PentestResult, len(pentestAttacks))
	err := f.Run(len(pentestAttacks), func(i int) error {
		atk := pentestAttacks[i]
		p, err := atk.run(plat)
		if err != nil {
			return fmt.Errorf("%s: %w", atk.name, err)
		}
		res := PentestResult{Attack: atk.name, Blocked: p.Killed, Detail: p.KillMsg}
		if atk.expect == "" {
			if p.Killed {
				return fmt.Errorf("%s: legitimate run killed: %s", atk.name, p.KillMsg)
			}
			res.Detail = "completed normally"
		} else if !p.Killed || !strings.Contains(p.KillMsg, atk.expect) {
			return fmt.Errorf("%s: attack not blocked as expected (killed=%v, msg=%q)", atk.name, p.Killed, p.KillMsg)
		}
		out[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// PipelineSweep runs the pipeline-inspection probe on every cost profile
// (host placement), one fleet cell per profile. Each report carries its
// machine's private trace recorder; callers wanting one timeline merge
// them in report order with trace.Merge, which is deterministic because
// the recorders come back indexed by profile, not by completion order.
func (f *Fleet) PipelineSweep(domains, iters int) ([]PipelineReport, error) {
	profs := arm64.Profiles()
	return fleetMap(f, len(profs), func(i int) (PipelineReport, error) {
		return RunPipelineInspection(Platform{Prof: profs[i]}, domains, iters)
	})
}
