package workload

import (
	"fmt"

	"lightzone/internal/arm64"
	"lightzone/internal/core"
	"lightzone/internal/cpu"
	"lightzone/internal/hyp"
	"lightzone/internal/kernel"
	"lightzone/internal/mem"
)

// Table 4 (§8.1): cycles spent on empty trap-and-return roundtrips. Every
// row is measured by running the corresponding emulated roundtrip, not by
// reading profile constants (the HCR/VTTBR rows charge real register
// writes through the hypervisor's accessors).

// Table4Row is one measured row for one platform.
type Table4Row struct {
	Name string
	// Lo == Hi for rows without fluctuation.
	Lo, Hi int64
}

// RunTable4 measures all seven rows on one cost profile.
func RunTable4(prof *arm64.Profile) ([]Table4Row, error) {
	rows := make([]Table4Row, 0, 7)

	host, err := measureEmptySyscall(Platform{prof, false}, false)
	if err != nil {
		return nil, fmt.Errorf("host syscall: %w", err)
	}
	rows = append(rows, Table4Row{"host user mode to host hypervisor mode", host, host})

	guest, err := measureEmptySyscall(Platform{prof, true}, false)
	if err != nil {
		return nil, fmt.Errorf("guest syscall: %w", err)
	}
	rows = append(rows, Table4Row{"guest user mode to guest kernel mode", guest, guest})

	lzHost, err := measureEmptySyscall(Platform{prof, false}, true)
	if err != nil {
		return nil, fmt.Errorf("lz host syscall: %w", err)
	}
	rows = append(rows, Table4Row{"LightZone kernel mode to host hypervisor mode", lzHost, lzHost})

	lo, hi, err := measureLZGuestSyscallBand(prof)
	if err != nil {
		return nil, fmt.Errorf("lz guest syscall: %w", err)
	}
	rows = append(rows, Table4Row{"LightZone kernel mode to guest kernel mode", lo, hi})

	hvc, err := measureKVMHypercall(prof)
	if err != nil {
		return nil, fmt.Errorf("kvm hypercall: %w", err)
	}
	rows = append(rows, Table4Row{"KVM Virtualization Host Extensions hypercall", hvc, hvc})

	m := hyp.NewMachine(prof, 64<<20)
	before := m.CPU.Cycles
	m.CPU.WriteSysReg(arm64.HCREL2, 0x1234)
	hcr := m.CPU.Cycles - before
	rows = append(rows, Table4Row{"update HCR_EL2", hcr, hcr})
	before = m.CPU.Cycles
	m.CPU.WriteSysReg(arm64.VTTBREL2, 0x5678)
	vttbr := m.CPU.Cycles - before
	rows = append(rows, Table4Row{"update VTTBR_EL2", vttbr, vttbr})
	return rows, nil
}

// measureEmptySyscall measures one warm empty-syscall roundtrip.
func measureEmptySyscall(plat Platform, lz bool) (int64, error) {
	cost, err := measureSyscall(plat, lz)
	if err != nil {
		return 0, err
	}
	// measureSyscall averages over a marker window that includes the
	// per-call argument setup (3 cheap instructions); strip them.
	return int64(cost) - 4*plat.Prof.InsnCost, nil
}

// measureLZGuestSyscallBand samples many guest LightZone syscalls across
// scheduling quanta, capturing the fluctuation band the shared pt_regs
// pointer relookup produces (§8.1).
func measureLZGuestSyscallBand(prof *arm64.Profile) (int64, int64, error) {
	plat := Platform{prof, true}
	env, err := NewEnv(plat)
	if err != nil {
		return 0, 0, err
	}
	const iters = 40
	a := arm64.NewAsm()
	svcCall(a, core.SysLZEnter, 1, uint64(core.SanTTBR))
	for i := 0; i < iters; i++ {
		hvcCall(a, kernel.SysGetpid)
	}
	hvcCall(a, kernel.SysExit, 0)
	p, err := env.NewProcess("band-probe", a, nil, nil)
	if err != nil {
		return 0, 0, err
	}
	k := env.K
	th := p.MainThread()
	k.SwitchTo(th, &kernel.World{EL: arm64.EL0, HCR: cpu.HCRVM, VTTBR: env.VM.VTTBR(), SCTLR: cpu.SCTLRM})
	lo, hi := int64(1<<62), int64(0)
	seen := 0
	for !p.Exited {
		exit, err := env.M.CPU.Run(1 << 20)
		if err != nil {
			return 0, 0, err
		}
		measuring := false
		var before int64
		if exit.Syndrome.Class == cpu.ECHVC && exit.Syndrome.Imm == core.HVCSyscall {
			seen++
			if seen%prof.SchedQuantumTraps == 0 {
				// Another thread ran: the guest kernel's scheduler
				// fired, so the Lowvisor's cached pt_regs pointer for
				// this thread is stale and must be relocated on the
				// next trap (§8.1) — the source of the row's band.
				k.SchedEvents++
			}
			if seen > 4 && seen < iters { // skip cold start and exit
				before = env.M.CPU.Cycles - prof.ExcEntryTo[arm64.EL2]
				measuring = true
			}
		}
		if err := k.HandleExit(th, exit); err != nil {
			return 0, 0, err
		}
		if measuring {
			cost := env.M.CPU.Cycles - before
			if cost < lo {
				lo = cost
			}
			if cost > hi {
				hi = cost
			}
		}
	}
	if p.Killed {
		return 0, 0, fmt.Errorf("probe killed: %s", p.KillMsg)
	}
	return lo, hi, nil
}

// measureKVMHypercall measures a conventional full-world-switch hypercall.
func measureKVMHypercall(prof *arm64.Profile) (int64, error) {
	m := hyp.NewMachine(prof, 64<<20)
	vm, err := m.Hyp.NewVM("hvcguest", true)
	if err != nil {
		return 0, err
	}
	code := arm64.NewAsm()
	for i := 0; i < 3; i++ {
		code.Emit(arm64.HVC(0))
	}
	code.Label("spin")
	code.B("spin")
	words, err := code.Assemble()
	if err != nil {
		return 0, err
	}
	codePA := mem.PA(0x100000)
	if err := m.PM.Write(codePA, arm64.WordsToBytes(words)); err != nil {
		return 0, err
	}
	for off := mem.IPA(0); off < 0x4000; off += mem.PageSize {
		if err := vm.S2.Map(mem.IPA(codePA)+off, codePA+mem.PA(off), mem.S2APRead|mem.S2APWrite); err != nil {
			return 0, err
		}
	}
	c := m.CPU
	c.SetSys(arm64.SCTLREL1, 0)
	c.SetSys(arm64.HCREL2, cpu.HCRVM)
	c.SetSys(arm64.VTTBREL2, vm.VTTBR())
	c.SetEL(arm64.EL1)
	c.PC = uint64(codePA)

	var cost int64
	for seen := 0; seen < 3; {
		exit, err := c.Run(1 << 20)
		if err != nil {
			return 0, err
		}
		if exit.Syndrome.Class != cpu.ECHVC {
			return 0, fmt.Errorf("unexpected exit %v", exit.Syndrome.Class)
		}
		seen++
		var before int64
		measuring := seen == 3
		if measuring {
			before = c.Cycles - prof.ExcEntryTo[arm64.EL2]
		}
		m.Hyp.HandleEmptyHypercall()
		if err := c.ERET(); err != nil {
			return 0, err
		}
		if measuring {
			cost = c.Cycles - before
		}
	}
	return cost, nil
}
