package workload

import (
	"errors"
	"fmt"
)

// ErrFindings classifies verification verdicts: a checker reported a
// finding on a machine that must be clean, a planted attack went uncaught,
// or an unreachable control word was falsely flagged. Callers (lzverify)
// separate these — the analysis ran and delivered a verdict — from
// analysis failures (snapshot capture errors, machine construction
// errors), which mean no verdict exists at all.
var ErrFindings = errors.New("verification findings")

// findingsError carries a verdict message while matching ErrFindings under
// errors.Is, keeping the message free of sentinel boilerplate.
type findingsError struct{ msg string }

func (e *findingsError) Error() string { return e.msg }

func (e *findingsError) Is(target error) bool { return target == ErrFindings }

// findingsf builds a verdict-class error.
func findingsf(format string, args ...any) error {
	return &findingsError{msg: fmt.Sprintf(format, args...)}
}
