package workload

import (
	"fmt"
	"math/rand"

	"lightzone/internal/arm64"
	"lightzone/internal/core"
	"lightzone/internal/kernel"
	"lightzone/internal/mem"
)

// Backend comparison matrix: the same isolation lifecycle measured under
// every registered backend. The lightzone cells reuse the Table 5 gate
// machinery verbatim; overlay and granule run their own switch loops built
// on the shared emitSwitchLoop skeleton, so the random domain sequence,
// warm-up discipline and marker placement are identical across backends —
// only the switch instruction sequence and the lz_prot cost model differ.

// BackendOrder lists the backends in presentation order (the default
// substrate first, then the two alternate models).
func BackendOrder() []string { return []string{"lightzone", "overlay", "granule"} }

// ResolveBackends maps a CLI backend selector onto the backends to run:
// "all" means every registered backend, anything else must name one.
func ResolveBackends(sel string) ([]string, error) {
	if sel == "all" {
		return BackendOrder(), nil
	}
	for _, b := range BackendOrder() {
		if b == sel {
			return []string{b}, nil
		}
	}
	return nil, fmt.Errorf("unknown backend %q (have %v, or \"all\")", sel, BackendOrder())
}

// backendProtPages is the region size (in pages) of the mprotect cell.
const backendProtPages = 32

// BackendSwitchConfig parameterizes one backend switch measurement.
type BackendSwitchConfig struct {
	Platform Platform
	Backend  string
	Domains  int
	Iters    int
	Seed     int64
}

// BackendCell is one cell of the cross-backend comparison matrix.
type BackendCell struct {
	Backend string  `json:"backend"`
	Metric  string  `json:"metric"` // "switch", "mprotect-page" or "syscall"
	Domains int     `json:"domains,omitempty"`
	Cycles  float64 `json:"cycles"`
}

// BackendMatrix is the full comparison matrix of one platform.
type BackendMatrix struct {
	Machine string        `json:"machine"`
	Cells   []BackendCell `json:"cells"`
}

// backendEnter returns the lz_enter arguments a backend's benchmark
// processes use: overlay domains are data-only and never switch page
// tables, so they enter unscalable under the POR-admitting policy; the
// other backends enter scalable under the TTBR policy.
func backendEnter(backend string) (scalable uint64, pol core.SanPolicy) {
	if backend == "overlay" {
		return 0, core.SanOverlay
	}
	return 1, core.SanTTBR
}

// buildOverlaySwitchProgram builds the overlay-backend benchmark: one
// overlay key per domain, all domain pages tagged in the single base table.
// A domain switch is one untrapped POR_EL1 write — no gate, no table
// switch, no TLB effect.
func buildOverlaySwitchProgram(a *arm64.Asm, cfg DomainSwitchConfig) {
	svcCall(a, core.SysLZEnter, 0, uint64(core.SanOverlay))
	for d := 0; d < cfg.Domains; d++ {
		hvcCall(a, core.SysLZAlloc) // keys are sequential from 1: domain d gets d+1
		addr := domainRegionBase + uint64(d)*domainRegionStride
		hvcCall(a, core.SysLZProt, addr, mem.PageSize, uint64(d+1), core.PermRead|core.PermWrite)
	}
	emitSwitchLoop(a, cfg, true, func() {
		a.Emit(arm64.ADDImm(14, 12, 1, false)) // x14 = key = domain + 1
		core.EmitOverlaySwitch(a, 14)
		emitDomainAccess(a)
	})
}

// buildGranuleSwitchProgram builds the granule-backend benchmark: one zone
// per domain, each domain page delegated and assigned to its zone. A domain
// switch is the realm-enter hypercall, which swaps the zone table under
// hypervisor mediation — no gate code, but a trap per switch.
func buildGranuleSwitchProgram(a *arm64.Asm, cfg DomainSwitchConfig) {
	svcCall(a, core.SysLZEnter, 1, uint64(core.SanTTBR))
	for d := 0; d < cfg.Domains; d++ {
		hvcCall(a, core.SysLZAlloc) // zone ids are sequential from 1: domain d gets d+1
		addr := domainRegionBase + uint64(d)*domainRegionStride
		hvcCall(a, core.SysLZProt, addr, mem.PageSize, uint64(d+1), core.PermRead|core.PermWrite)
	}
	emitSwitchLoop(a, cfg, true, func() {
		a.Emit(arm64.ADDImm(0, 12, 1, false)) // x0 = zone = domain + 1
		core.EmitGranuleEnter(a)
		emitDomainAccess(a)
	})
}

// prepareBackendSwitch boots a backend environment and assembles its switch
// benchmark without running it (the overlay/granule analogue of
// prepareDomainSwitch; lightzone callers go through the Table 5 path).
// PrepareBackendSwitch boots a backend environment and assembles the
// switch benchmark without running it, for external drivers (the
// fork-identity suite forks the prepared machine and proves the child
// digest-identical to this cold boot).
func PrepareBackendSwitch(cfg BackendSwitchConfig) (*Env, *kernel.Process, error) {
	return prepareBackendSwitch(cfg)
}

func prepareBackendSwitch(cfg BackendSwitchConfig) (*Env, *kernel.Process, error) {
	if cfg.Domains <= 0 || cfg.Iters <= 0 {
		return nil, nil, fmt.Errorf("bad config %+v", cfg)
	}
	env, err := NewEnvBackend(cfg.Platform, cfg.Backend)
	if err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	seq := make([]byte, cfg.Iters)
	for i := range seq {
		seq[i] = byte(rng.Intn(cfg.Domains))
	}
	dcfg := DomainSwitchConfig{Platform: cfg.Platform, Domains: cfg.Domains, Iters: cfg.Iters, Seed: cfg.Seed}
	a := arm64.NewAsm()
	switch cfg.Backend {
	case "overlay":
		buildOverlaySwitchProgram(a, dcfg)
	case "granule":
		buildGranuleSwitchProgram(a, dcfg)
	default:
		return nil, nil, fmt.Errorf("backend %q has no dedicated switch program", cfg.Backend)
	}
	p, err := env.NewProcess("backend-switch", a, seq, nil, kernel.VMA{
		Start: mem.VA(domainRegionBase),
		End:   mem.VA(domainRegionBase + uint64(cfg.Domains)*domainRegionStride),
		Prot:  kernel.ProtRead | kernel.ProtWrite,
		Name:  "domains",
	})
	if err != nil {
		return nil, nil, err
	}
	return env, p, nil
}

// runBackendSwitch measures one backend's average switch-and-access cost.
// The lightzone cell is the Table 5 scalable-TTBR cell, byte for byte.
func runBackendSwitch(cfg BackendSwitchConfig) (float64, *Env, error) {
	if cfg.Backend == "lightzone" {
		res, env, err := runDomainSwitch(DomainSwitchConfig{
			Platform: cfg.Platform, Variant: VariantLZTTBR,
			Domains: cfg.Domains, Iters: cfg.Iters, Seed: cfg.Seed,
		}, nil)
		return res.AvgCycles, env, err
	}
	env, p, err := prepareBackendSwitch(cfg)
	if err != nil {
		return 0, nil, err
	}
	if err := env.Run(p, domainSwitchBudget(DomainSwitchConfig{Iters: cfg.Iters})); err != nil {
		return 0, nil, err
	}
	if p.Killed {
		return 0, nil, fmt.Errorf("benchmark killed: %s", p.KillMsg)
	}
	m, err := env.Measured()
	if err != nil {
		return 0, nil, err
	}
	return float64(m) / float64(cfg.Iters), env, nil
}

// RunBackendSwitch measures one backend's switch cost (exported for the
// conformance tests and lzbench).
func RunBackendSwitch(cfg BackendSwitchConfig) (float64, error) {
	v, _, err := runBackendSwitch(cfg)
	return v, err
}

// measureBackendProt measures a backend's per-page lz_prot cost by marking
// around one call covering backendProtPages pages: lightzone remaps into a
// domain table under break-before-make, overlay retags descriptors in
// place, granule delegates and assigns each granule through the hypervisor.
func measureBackendProt(plat Platform, backend string) (float64, error) {
	env, err := NewEnvBackend(plat, backend)
	if err != nil {
		return 0, err
	}
	scalable, pol := backendEnter(backend)
	a := arm64.NewAsm()
	svcCall(a, core.SysLZEnter, scalable, uint64(pol))
	hvcCall(a, core.SysLZAlloc) // domain 1 under every backend
	hvcCall(a, SysMarkBegin)
	hvcCall(a, core.SysLZProt, domainRegionBase, backendProtPages*mem.PageSize, 1, core.PermRead|core.PermWrite)
	hvcCall(a, SysMarkEnd)
	hvcCall(a, kernel.SysExit, 0)
	p, err := env.NewProcess("backend-prot", a, nil, nil, kernel.VMA{
		Start: mem.VA(domainRegionBase),
		End:   mem.VA(domainRegionBase + backendProtPages*mem.PageSize),
		Prot:  kernel.ProtRead | kernel.ProtWrite,
		Name:  "prot-region",
	})
	if err != nil {
		return 0, err
	}
	if err := env.Run(p, 100_000); err != nil {
		return 0, err
	}
	if p.Killed {
		return 0, fmt.Errorf("prot probe killed: %s", p.KillMsg)
	}
	m, err := env.Measured()
	if err != nil {
		return 0, err
	}
	return float64(m) / backendProtPages, nil
}

// measureBackendSyscall measures the Table 4 lz-syscall roundtrip under a
// backend (the kernel-crossing path is substrate-invariant; equal numbers
// across backends are the expected result, and the matrix proves it).
func measureBackendSyscall(plat Platform, backend string) (float64, error) {
	env, err := NewEnvBackend(plat, backend)
	if err != nil {
		return 0, err
	}
	const iters = 64
	scalable, pol := backendEnter(backend)
	a := arm64.NewAsm()
	svcCall(a, core.SysLZEnter, scalable, uint64(pol))
	hvcCall(a, SysMarkBegin)
	for i := 0; i < iters; i++ {
		hvcCall(a, 172) // getpid
	}
	hvcCall(a, SysMarkEnd)
	hvcCall(a, kernel.SysExit, 0)
	p, err := env.NewProcess("backend-syscall", a, nil, nil)
	if err != nil {
		return 0, err
	}
	if err := env.Run(p, 1_000_000); err != nil {
		return 0, err
	}
	if p.Killed {
		return 0, fmt.Errorf("syscall probe killed: %s", p.KillMsg)
	}
	m, err := env.Measured()
	if err != nil {
		return 0, err
	}
	return float64(m) / iters, nil
}

// BackendSweep measures the comparison matrix on one platform: per listed
// backend, the switch cost at every Table 5 domain count, the per-page
// lz_prot cost, and the lz-syscall roundtrip. One fleet cell per
// measurement; cells boot private machines and share nothing.
func (f *Fleet) BackendSweep(plat Platform, backends []string, iters int) (BackendMatrix, error) {
	type job struct {
		backend string
		metric  string
		domains int
	}
	var jobs []job
	for _, b := range backends {
		for _, d := range Table5Domains {
			jobs = append(jobs, job{b, "switch", d})
		}
		jobs = append(jobs, job{b, "mprotect-page", 0})
		jobs = append(jobs, job{b, "syscall", 0})
	}
	cells := make([]BackendCell, len(jobs))
	err := f.Run(len(jobs), func(i int) error {
		j := jobs[i]
		var v float64
		var err error
		switch j.metric {
		case "switch":
			v, err = RunBackendSwitch(BackendSwitchConfig{
				Platform: plat, Backend: j.backend,
				Domains: j.domains, Iters: iters, Seed: Table5Seed,
			})
		case "mprotect-page":
			v, err = measureBackendProt(plat, j.backend)
		case "syscall":
			v, err = measureBackendSyscall(plat, j.backend)
		}
		if err != nil {
			return fmt.Errorf("%s/%s/domains=%d: %w", j.backend, j.metric, j.domains, err)
		}
		cells[i] = BackendCell{Backend: j.backend, Metric: j.metric, Domains: j.domains, Cycles: v}
		return nil
	})
	if err != nil {
		return BackendMatrix{}, err
	}
	return BackendMatrix{Machine: plat.String(), Cells: cells}, nil
}
