package workload

import (
	"encoding/json"
	"testing"

	"lightzone/internal/trace"
	"lightzone/internal/verify"
)

func verifyTestPlatform(t *testing.T) Platform {
	t.Helper()
	plats := AllPlatforms()
	if len(plats) == 0 {
		t.Fatal("no platforms")
	}
	return plats[0]
}

// The clean Table 5 configurations must verify with zero findings at every
// mutation chokepoint and after the run.
func TestVerifySweepClean(t *testing.T) {
	results, err := NewFleet(0).VerifySweep(verifyTestPlatform(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no verification cells")
	}
	for _, r := range results {
		if r.Findings != 0 {
			t.Errorf("%s: %d findings on a clean machine", r.Name, r.Findings)
		}
		if r.InvariantRuns == 0 {
			t.Errorf("%s: invariant monitor never fired", r.Name)
		}
		if !r.Final.Clean() {
			t.Errorf("%s: final report not clean", r.Name)
		}
	}
}

// Every planted attack must be caught by its designated checker at the
// planted VA; PlantedSweep errors otherwise, so success is mostly asserted
// inside the sweep. The test re-checks the result rows and that all five
// checkers are exercised by the battery.
func TestPlantedSweep(t *testing.T) {
	results, err := NewFleet(0).PlantedSweep(verifyTestPlatform(t))
	if err != nil {
		t.Fatal(err)
	}
	checkers := make(map[string]bool)
	for _, r := range results {
		if !r.Caught {
			t.Errorf("%s: not caught", r.Name)
		}
		if r.VA == 0 {
			t.Errorf("%s: no planted VA recorded", r.Name)
		}
		checkers[r.Checker] = true
	}
	for _, c := range verify.Checkers() {
		if !checkers[c.Name] {
			t.Errorf("battery exercises no attack for checker %s", c.Name)
		}
	}
}

// EnableInvariants must record one KindInvariant trace event per verifier
// run and must not change measured benchmark results: the monitor is
// observation-only.
func TestInvariantMonitorTraceAndNeutrality(t *testing.T) {
	plat := verifyTestPlatform(t)
	cfg := DomainSwitchConfig{Platform: plat, Variant: VariantLZTTBR, Domains: 4, Iters: 100, Seed: Table5Seed}

	base, err := RunDomainSwitch(cfg)
	if err != nil {
		t.Fatal(err)
	}

	env, err := NewEnv(plat)
	if err != nil {
		t.Fatal(err)
	}
	rec := env.EnableTrace(4096)
	mon := env.EnableInvariants()
	res, _, err := runDomainSwitch(cfg, env)
	if err != nil {
		t.Fatal(err)
	}
	if mon.Err != nil {
		t.Fatal(mon.Err)
	}
	if mon.Runs == 0 {
		t.Fatal("invariant monitor never fired")
	}
	if mon.Findings != 0 {
		t.Fatalf("%d findings on a clean machine (last report: %+v)", mon.Findings, mon.Last.Findings)
	}
	if res.TotalCycles != base.TotalCycles {
		t.Errorf("invariant monitoring changed measured cycles: %d vs %d", res.TotalCycles, base.TotalCycles)
	}
	events := 0
	for _, ev := range rec.Events() {
		if ev.Kind == trace.KindInvariant {
			events++
		}
	}
	if events != mon.Runs {
		t.Errorf("%d KindInvariant trace events, monitor ran %d times", events, mon.Runs)
	}
}

// The verification report must round-trip through JSON with its identifying
// fields intact — the schema lzverify -json and lzinspect -invariants emit.
func TestVerifyReportJSON(t *testing.T) {
	env, _, err := plantedCleanTTBR(verifyTestPlatform(t))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := verify.RunMachine(env.M, env.LZ)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("clean machine reported findings: %+v", rep.Findings)
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var decoded verify.Report
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Machine != rep.Machine {
		t.Errorf("machine lost in round trip: %q vs %q", decoded.Machine, rep.Machine)
	}
	if len(decoded.Checkers) != len(verify.Checkers()) {
		t.Errorf("report lists %d checkers, registry has %d", len(decoded.Checkers), len(verify.Checkers()))
	}
	if decoded.Procs != len(env.LZ.Procs()) {
		t.Errorf("report covers %d procs, machine has %d", decoded.Procs, len(env.LZ.Procs()))
	}
}
