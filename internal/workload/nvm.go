package workload

import (
	"fmt"

	"lightzone/internal/core"
	"lightzone/internal/kernel"
	"lightzone/internal/mem"
)

// Figure 5 — NVM data isolation (§9.3), after MERR: multiple 2MB buffers
// filled with strings; each operation performs a substring search over a
// randomly selected string (7,000-8,500 cycles per search on both SoCs),
// bracketed by a switch into and out of the buffer's domain. DRAM emulates
// the NVM. The buffers are mapped with 2MB huge pages.
//
// Model parameters: one search = the per-platform search cost; the TTBR
// configuration pays two gate passes per search (grant + revoke), the PAN
// configuration one toggle pair, the baselines one kernel-mediated switch.
var nvmParams = AppParams{
	Name: "nvm",
	WorkCycles: map[string]float64{
		"Carmel":    7_800,
		"CortexA55": 7_400,
	},
	SyscallsPerReq:    0,
	GatePassesPerReq:  2,
	PanPairsPerReq:    1,
	WPSwitchesPerReq:  1,
	LwCSwitchesPerReq: 1,
	Domains:           64,
	S2MissesPerReq: map[string]float64{
		"Carmel":    1.0,
		"CortexA55": 0.2,
	},
	TTBRS1MissesPerReq: 0.5,
}

// NVMDomainCounts is the buffer-count sweep of Figure 5.
var NVMDomainCounts = []int{2, 4, 8, 16, 32, 64, 128}

// NVMSeries is one variant's Figure 5 curve: time overhead (%) versus the
// number of 2MB buffers.
type NVMSeries struct {
	Variant Variant
	// OverheadPct is indexed like NVMDomainCounts.
	OverheadPct []float64
}

// NVMFigure computes the Figure 5 series for one platform.
func NVMFigure(pr *Primitives) ([]NVMSeries, error) {
	out := make([]NVMSeries, 0, 4)
	for _, v := range []Variant{VariantLZPAN, VariantLZTTBR, VariantWatchpoint, VariantLwC} {
		s := NVMSeries{Variant: v}
		for _, d := range NVMDomainCounts {
			p := nvmParams
			p.Domains = d
			pct, err := pr.OverheadPct(p, v)
			if err != nil {
				return nil, err
			}
			s.OverheadPct = append(s.OverheadPct, pct)
		}
		out = append(out, s)
	}
	return out, nil
}

// NVMMemory measures the §9.3 memory overheads on the paper's full layout
// (309MB: 128 x 2MB huge-page buffers plus 53MB of 4KB application
// memory): huge pages mean no fragmentation; the page-table overhead of
// scalable protection comes from each per-buffer table duplicating the
// application's 4KB mappings.
func NVMMemory(plat Platform) (MemoryOverheads, error) {
	const (
		nBuffers = 128 // the paper's full sweep: 128 x 2MB buffers
		bufBase  = mem.VA(0x8000_0000)
		appBase  = mem.VA(0x4000_0000)
		appBytes = 53 << 20 // 309MB total = 256MB buffers + 53MB app
	)
	var out MemoryOverheads
	total := uint64(nBuffers*mem.HugePageSize + appBytes)
	out.BaselineBytes = total
	out.FragPct = 0 // huge pages: "no memory fragmentation issue" (§9.3)

	measure := func(scalable bool) (float64, error) {
		env, err := NewEnv(plat)
		if err != nil {
			return 0, err
		}
		extra := []kernel.VMA{
			{Start: appBase, End: appBase + appBytes, Prot: kernel.ProtRead | kernel.ProtWrite, Name: "app"},
			{Start: bufBase, End: bufBase + mem.VA(nBuffers*mem.HugePageSize), Prot: kernel.ProtRead | kernel.ProtWrite, Name: "nvm", Huge: true},
		}
		p, err := env.K.CreateProcess("nvm-mem", kernel.Program{Extra: extra})
		if err != nil {
			return 0, err
		}
		if err := p.AS.EnsureMapped(appBase, appBytes); err != nil {
			return 0, err
		}
		if err := p.AS.EnsureMapped(bufBase, nBuffers*mem.HugePageSize); err != nil {
			return 0, err
		}
		policy := core.SanPAN
		if scalable {
			policy = core.SanTTBR
		}
		lp, err := env.LZ.EnterProcess(env.K, p, scalable, policy)
		if err != nil {
			return 0, err
		}
		if scalable {
			for i := 0; i < nBuffers; i++ {
				id, err := lp.Alloc()
				if err != nil {
					return 0, err
				}
				addr := bufBase + mem.VA(i*mem.HugePageSize)
				if err := lp.Prot(addr, mem.HugePageSize, id, core.PermRead|core.PermWrite); err != nil {
					return 0, err
				}
			}
		} else {
			if err := lp.Prot(bufBase, nBuffers*mem.HugePageSize, 0, core.PermRead|core.PermWrite|core.PermUser); err != nil {
				return 0, err
			}
		}
		return float64(lp.PageTableBytes()) / float64(total) * 100, nil
	}

	var err error
	if out.PANPTPct, err = measure(false); err != nil {
		return out, fmt.Errorf("pan layout: %w", err)
	}
	if out.TTBRPTPct, err = measure(true); err != nil {
		return out, fmt.Errorf("ttbr layout: %w", err)
	}
	return out, nil
}
