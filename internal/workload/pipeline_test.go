package workload

import (
	"testing"

	"lightzone/internal/arm64"
)

// TestTable5CycleIdentityCacheOnOff runs Table 5 configurations through the
// full {host fastpaths, decode cache} matrix and requires the measured
// emulated cycles to be bit-identical in every cell: both layers elide
// host-side work only.
func TestTable5CycleIdentityCacheOnOff(t *testing.T) {
	cases := []struct {
		variant Variant
		domains int
	}{
		{VariantLZPAN, 1},
		{VariantLZTTBR, 2},
		{VariantLZTTBR, 8},
		{VariantWatchpoint, 2},
	}
	modes := []struct {
		name             string
		noDecode, noFast bool
	}{
		{"nodecode", true, false},
		{"nofastpath", false, true},
		{"neither", true, true},
	}
	for _, plat := range []Platform{
		{Prof: arm64.ProfileCarmel()},
		{Prof: arm64.ProfileCarmel(), Guest: true},
	} {
		for _, tc := range cases {
			cfg := DomainSwitchConfig{
				Platform: plat, Variant: tc.variant, Domains: tc.domains,
				Iters: 300, Seed: 42,
			}
			base, err := RunDomainSwitch(cfg)
			if err != nil {
				t.Fatalf("%v %v/%d baseline: %v", plat, tc.variant, tc.domains, err)
			}
			for _, m := range modes {
				c := cfg
				c.DisableDecodeCache = m.noDecode
				c.DisableHostFastpaths = m.noFast
				got, err := RunDomainSwitch(c)
				if err != nil {
					t.Fatalf("%v %v/%d %s: %v", plat, tc.variant, tc.domains, m.name, err)
				}
				if got.TotalCycles != base.TotalCycles {
					t.Errorf("%v %v/%d: cycles differ with %s (%d) vs all-on (%d)",
						plat, tc.variant, tc.domains, m.name, got.TotalCycles, base.TotalCycles)
				}
			}
		}
	}
}

// TestPipelineInspectionCounters checks the lzinspect probe: a hot
// domain-switch run must be overwhelmingly served from the decode cache and
// record the invalidations the module performed.
func TestPipelineInspectionCounters(t *testing.T) {
	rep, err := RunPipelineInspection(Platform{Prof: arm64.ProfileCarmel()}, 4, 500)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.CacheEnabled {
		t.Error("decode cache unexpectedly disabled")
	}
	s := rep.Stats
	if s.CodeHits == 0 || s.CodeMisses == 0 || rep.CachedBlocks == 0 {
		t.Errorf("implausible decode-cache counters: %+v, %d blocks", s, rep.CachedBlocks)
	}
	if s.CodeHits < 10*s.CodeMisses {
		t.Errorf("hot run should hit the decode cache >90%%: %d hits / %d misses",
			s.CodeHits, s.CodeMisses)
	}
	if s.TLBHits == 0 {
		t.Error("no TLB hits recorded in shared stats")
	}
	if s.CodeInvalidations == 0 {
		t.Error("sanitizer/lz_prot flows recorded no code invalidations")
	}
	if rep.TraceSummary == "" {
		t.Error("empty trace summary")
	}
}

// BenchmarkGateSwitchHost measures the host wall-clock of the full TTBR
// call-gate microbenchmark with the decoded-block cache on and off.
func BenchmarkGateSwitchHost(b *testing.B) {
	for _, mode := range []struct {
		name string
		off  bool
	}{{"cache-on", false}, {"cache-off", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := RunDomainSwitch(DomainSwitchConfig{
					Platform: Platform{Prof: arm64.ProfileCarmel()},
					Variant:  VariantLZTTBR, Domains: 8, Iters: 500, Seed: 42,
					DisableDecodeCache: mode.off,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
