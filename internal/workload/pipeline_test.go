package workload

import (
	"testing"

	"lightzone/internal/arm64"
)

// TestTable5CycleIdentityCacheOnOff runs Table 5 configurations with the
// decoded-block cache on and off and requires the measured emulated cycles
// to be bit-identical: the cache elides host-side fetch work only.
func TestTable5CycleIdentityCacheOnOff(t *testing.T) {
	cases := []struct {
		variant Variant
		domains int
	}{
		{VariantLZPAN, 1},
		{VariantLZTTBR, 2},
		{VariantLZTTBR, 8},
		{VariantWatchpoint, 2},
	}
	for _, plat := range []Platform{
		{Prof: arm64.ProfileCarmel()},
		{Prof: arm64.ProfileCarmel(), Guest: true},
	} {
		for _, tc := range cases {
			cfg := DomainSwitchConfig{
				Platform: plat, Variant: tc.variant, Domains: tc.domains,
				Iters: 300, Seed: 42,
			}
			on, err := RunDomainSwitch(cfg)
			if err != nil {
				t.Fatalf("%v %v/%d cache on: %v", plat, tc.variant, tc.domains, err)
			}
			cfg.DisableDecodeCache = true
			off, err := RunDomainSwitch(cfg)
			if err != nil {
				t.Fatalf("%v %v/%d cache off: %v", plat, tc.variant, tc.domains, err)
			}
			if on.TotalCycles != off.TotalCycles {
				t.Errorf("%v %v/%d: cycles differ with cache on (%d) vs off (%d)",
					plat, tc.variant, tc.domains, on.TotalCycles, off.TotalCycles)
			}
		}
	}
}

// TestPipelineInspectionCounters checks the lzinspect probe: a hot
// domain-switch run must be overwhelmingly served from the decode cache and
// record the invalidations the module performed.
func TestPipelineInspectionCounters(t *testing.T) {
	rep, err := RunPipelineInspection(Platform{Prof: arm64.ProfileCarmel()}, 4, 500)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.CacheEnabled {
		t.Error("decode cache unexpectedly disabled")
	}
	s := rep.Stats
	if s.CodeHits == 0 || s.CodeMisses == 0 || rep.CachedBlocks == 0 {
		t.Errorf("implausible decode-cache counters: %+v, %d blocks", s, rep.CachedBlocks)
	}
	if s.CodeHits < 10*s.CodeMisses {
		t.Errorf("hot run should hit the decode cache >90%%: %d hits / %d misses",
			s.CodeHits, s.CodeMisses)
	}
	if s.TLBHits == 0 {
		t.Error("no TLB hits recorded in shared stats")
	}
	if s.CodeInvalidations == 0 {
		t.Error("sanitizer/lz_prot flows recorded no code invalidations")
	}
	if rep.TraceSummary == "" {
		t.Error("empty trace summary")
	}
}

// BenchmarkGateSwitchHost measures the host wall-clock of the full TTBR
// call-gate microbenchmark with the decoded-block cache on and off.
func BenchmarkGateSwitchHost(b *testing.B) {
	for _, mode := range []struct {
		name string
		off  bool
	}{{"cache-on", false}, {"cache-off", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := RunDomainSwitch(DomainSwitchConfig{
					Platform: Platform{Prof: arm64.ProfileCarmel()},
					Variant:  VariantLZTTBR, Domains: 8, Iters: 500, Seed: 42,
					DisableDecodeCache: mode.off,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
