package workload

import (
	"fmt"
	"strings"
	"testing"

	"lightzone/internal/arm64"
	"lightzone/internal/core"
	"lightzone/internal/kernel"
	"lightzone/internal/mem"
	"lightzone/internal/verify"
)

// churnIters is the conformance churn depth: enough alloc/free cycles to
// blow through the 16-bit id and ASID spaces many times over on pre-fix
// code, with a single-digit live-zone count throughout.
const churnIters = 100_000

// buildChurn assembles the churn conformance script: enter, then iters
// alloc→prot→free cycles in a tight guest loop — asserting in-guest that
// every allocation returns the recycled id 1 — followed by the lifecycle
// epilogue (two live domains, one protected page each, switch into domain
// 1, touch domain 2's page) so the run still ends in the backend's
// documented fault class. A reuse failure branches to "fail", which
// executes an undefined instruction: the SIGILL kill message is
// distinguishable from every backend fault class.
func buildChurn(a *arm64.Asm, backend string, iters int) []core.GateEntry {
	page0 := domainRegionBase
	page1 := domainRegionBase + domainRegionStride
	scalable, pol := backendEnter(backend)
	svcCall(a, core.SysLZEnter, scalable, uint64(pol))

	a.MovImm(19, uint64(iters))
	a.Label("churn")
	// id = lz_alloc()
	a.MovImm(8, core.SysLZAlloc)
	a.Emit(arm64.HVC(core.HVCSyscall))
	a.Emit(arm64.MOVReg(20, 0))
	// The freed id/key must be recycled: every iteration sees 1.
	a.Emit(arm64.CMPImm(20, 1))
	a.BCond(arm64.CondNE, "fail")
	// lz_prot(page0, PageSize, id, RW)
	a.MovImm(0, page0)
	a.MovImm(1, uint64(mem.PageSize))
	a.Emit(arm64.MOVReg(2, 20))
	a.MovImm(3, uint64(core.PermRead|core.PermWrite))
	a.MovImm(8, core.SysLZProt)
	a.Emit(arm64.HVC(core.HVCSyscall))
	// lz_free(id)
	a.Emit(arm64.MOVReg(0, 20))
	a.MovImm(8, core.SysLZFree)
	a.Emit(arm64.HVC(core.HVCSyscall))
	a.Emit(arm64.SUBImm(19, 19, 1, false))
	a.CBNZ(19, "churn")

	// Lifecycle epilogue: the machine must still behave post-churn.
	hvcCall(a, core.SysLZAlloc) // recycled id 1
	hvcCall(a, core.SysLZAlloc) // fresh id 2
	if backend == "lightzone" {
		hvcCall(a, core.SysLZMapGatePgt, 1, 0)
	}
	hvcCall(a, core.SysLZProt, page0, uint64(mem.PageSize), 1, core.PermRead|core.PermWrite)
	hvcCall(a, core.SysLZProt, page1, uint64(mem.PageSize), 2, core.PermRead|core.PermWrite)
	switch backend {
	case "lightzone":
		a.MovImm(13, core.GateCodeBase())
		a.ADR(30, "in1")
		a.Emit(arm64.BR(13))
		a.Label("in1")
	case "overlay":
		a.MovImm(14, 1)
		core.EmitOverlaySwitch(a, 14)
	case "granule":
		a.MovImm(0, 1)
		core.EmitGranuleEnter(a)
	}
	// Legal read of domain 1's own page, then the cross-domain violation.
	a.MovImm(13, page0)
	a.Emit(arm64.LDRImm(9, 13, 0, 3))
	a.MovImm(13, page1)
	a.Emit(arm64.LDRImm(9, 13, 0, 3))
	hvcCall(a, kernel.SysExit, 0)

	a.Label("fail")
	a.Emit(0) // UDF: id-reuse assertion failed in-guest -> SIGILL

	if backend == "lightzone" {
		off, err := a.Offset("in1")
		if err != nil {
			return nil
		}
		return []core.GateEntry{{GateID: 0, Entry: uint64(off)}}
	}
	return nil
}

// churnEventAt is the expected observer event at stream position i for an
// iters-deep churn run: lz_enter, then iters (alloc, prot, free) triples,
// then the epilogue's two allocs and two prots. Computing the expectation
// per position keeps the test from materialising a 300k-element slice.
func churnEventAt(i, iters int) string {
	if i == 0 {
		return "lz_enter"
	}
	i--
	if i < 3*iters {
		return []string{"lz_alloc", "lz_prot", "lz_free"}[i%3]
	}
	tail := []string{"lz_alloc", "lz_alloc", "lz_prot", "lz_prot"}
	if i -= 3 * iters; i < len(tail) {
		return tail[i]
	}
	return ""
}

// TestBackendChurnConformance extends the lifecycle conformance suite with
// sustained alloc/free churn: 10^5 cycles per backend with a single-digit
// live-zone count. Pre-fix code fails loudly — monotonic ids break the
// in-guest id==1 assertion on the second iteration, and 10^5 allocations
// wrap the uint16 ASID allocator silently. Post-fix, every backend must
// recycle ids/keys identically, keep its id high-water bounded, land the
// epilogue violation in its documented fault class, and emit exactly the
// expected observer-event sequence.
func TestBackendChurnConformance(t *testing.T) {
	wantKill := map[string]string{
		"lightzone": "not mapped by current page table",
		"overlay":   "overlay key mismatch",
		"granule":   "granule protection fault",
	}
	lifecycle := map[string]bool{
		"lz_enter": true, "lz_alloc": true, "lz_prot": true, "lz_free": true,
	}
	wantCount := 1 + 3*churnIters + 4
	for _, backend := range core.Backends() {
		t.Run(backend, func(t *testing.T) {
			env, err := NewEnvBackend(carmelHost(), backend)
			if err != nil {
				t.Fatal(err)
			}
			// Streaming order check: comparing each event against its
			// computed expectation as it arrives.
			seen := 0
			var seqErr error
			env.LZ.Observer = func(event string, lp *core.LZProc) {
				if !lifecycle[event] {
					return
				}
				if want := churnEventAt(seen, churnIters); event != want && seqErr == nil {
					seqErr = fmt.Errorf("observer event %d is %q, want %q", seen, event, want)
				}
				seen++
			}
			a := arm64.NewAsm()
			entries := buildChurn(a, backend, churnIters)
			p, err := env.NewProcess("churn", a, nil, entries, kernel.VMA{
				Start: mem.VA(domainRegionBase),
				End:   mem.VA(domainRegionBase + 2*domainRegionStride),
				Prot:  kernel.ProtRead | kernel.ProtWrite,
				Name:  "domains",
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := env.Run(p, 4*churnIters+100_000); err != nil {
				t.Fatal(err)
			}
			if !p.Killed {
				t.Fatalf("cross-domain access survived under %s after churn", backend)
			}
			if !strings.Contains(p.KillMsg, wantKill[backend]) {
				t.Fatalf("kill message %q does not carry the %s fault class %q (SIGILL here means the in-guest id-reuse assertion fired)",
					p.KillMsg, backend, wantKill[backend])
			}
			if seqErr != nil {
				t.Fatal(seqErr)
			}
			if seen != wantCount {
				t.Fatalf("observer saw %d lifecycle events, want %d", seen, wantCount)
			}

			procs := env.LZ.Procs()
			if len(procs) != 1 {
				t.Fatalf("want one LZ process, got %d", len(procs))
			}
			lp := procs[0]
			switch backend {
			case "lightzone", "granule":
				// ids 0 (base), 1 (recycled throughout), 2 (epilogue).
				if hw := lp.PGTIDHighWater(); hw != 3 {
					t.Fatalf("PGT id high-water = %d after %d alloc/free cycles, want 3", hw, churnIters)
				}
				if rec := env.K.ASIDRecycles; rec < int64(churnIters)-1 {
					t.Fatalf("ASIDRecycles = %d, want >= %d", rec, churnIters-1)
				}
				if env.K.ASIDRolls != 0 {
					t.Fatalf("ASID generation rolled %d times with a working free list", env.K.ASIDRolls)
				}
			case "overlay":
				if hw := lp.OverlayKeyHighWater(); hw != 2 {
					t.Fatalf("overlay key high-water = %d after %d alloc/free cycles, want 2", hw, churnIters)
				}
			}
			if backend == "lightzone" {
				if pages := len(lp.TTBRTabPages()); pages != 1 {
					t.Fatalf("TTBRTab grew to %d pages under churn, want 1", pages)
				}
			}

			rep, err := verify.RunMachine(env.M, env.LZ)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Clean() {
				t.Fatalf("post-churn machine not clean under %s registry: %v", backend, rep.Findings)
			}
		})
	}
}

// TestChurnIDAndASIDRecyclingGoAPI is the direct regression for the PGT-id
// and ASID exhaustion bugs, driven through the module Go API so it crosses
// the 2^16 boundary quickly: 70_000 alloc/prot/free cycles (more ids and
// ASIDs than either 16-bit space holds) with at most 8 zones live. Pre-fix
// code walks nextPGT past 65536, grows TTBRTab without bound, and wraps
// nextASID into live ids; post-fix everything stays bounded.
func TestChurnIDAndASIDRecyclingGoAPI(t *testing.T) {
	const (
		iters      = 70_000
		liveTarget = 8
	)
	env, err := NewEnv(carmelHost())
	if err != nil {
		t.Fatal(err)
	}
	region := kernel.VMA{
		Start: mem.VA(domainRegionBase),
		End:   mem.VA(domainRegionBase + uint64(liveTarget+1)*uint64(mem.PageSize)),
		Prot:  kernel.ProtRead | kernel.ProtWrite,
		Name:  "zones",
	}
	p, err := env.K.CreateProcess("churn-api", kernel.Program{Extra: []kernel.VMA{region}})
	if err != nil {
		t.Fatal(err)
	}
	lp, err := env.LZ.EnterProcess(env.K, p, true, core.SanTTBR)
	if err != nil {
		t.Fatal(err)
	}
	if err := lp.SetDomainLimit(128); err != nil {
		t.Fatal(err)
	}

	type zone struct {
		id   int
		page mem.VA
	}
	var live []zone
	slot := 0
	for i := 0; i < iters; i++ {
		if len(live) >= liveTarget {
			if err := lp.Free(live[0].id); err != nil {
				t.Fatalf("iteration %d: free zone %d: %v", i, live[0].id, err)
			}
			live = live[1:]
		}
		id, err := lp.Alloc()
		if err != nil {
			t.Fatalf("iteration %d: alloc: %v", i, err)
		}
		if id >= 128 {
			t.Fatalf("iteration %d: alloc returned id %d beyond the 128-id regime", i, id)
		}
		page := mem.VA(domainRegionBase + uint64(slot)*uint64(mem.PageSize))
		slot = (slot + 1) % liveTarget
		if err := lp.Prot(page, uint64(mem.PageSize), id, core.PermRead|core.PermWrite); err != nil {
			t.Fatalf("iteration %d: prot zone %d: %v", i, id, err)
		}
		live = append(live, zone{id: id, page: page})
	}

	if hw := lp.PGTIDHighWater(); hw > liveTarget+1 {
		t.Fatalf("PGT id high-water = %d after %d cycles, want <= %d", hw, iters, liveTarget+1)
	}
	if pages := len(lp.TTBRTabPages()); pages != 1 {
		t.Fatalf("TTBRTab spans %d pages, want 1 (the pre-fix bug grew it one page per 512 churn cycles)", pages)
	}
	if rec := env.K.ASIDRecycles; rec < int64(iters)-int64(liveTarget)-1 {
		t.Fatalf("ASIDRecycles = %d, want >= %d", rec, iters-liveTarget-1)
	}
	if env.K.ASIDRolls != 0 {
		t.Fatalf("ASID generation rolled %d times despite recycling", env.K.ASIDRolls)
	}
	if got := lp.NumPageTables(); got != liveTarget+1 {
		t.Fatalf("live page tables = %d, want %d (base + %d zones)", got, liveTarget+1, liveTarget)
	}
}

// TestDomainLimitRegime pins the NR_LZID=128 regime semantics: the limit
// rejects the allocation that would exceed it, frees reopen headroom, and
// the limit cannot be set below the live count.
func TestDomainLimitRegime(t *testing.T) {
	env, err := NewEnv(carmelHost())
	if err != nil {
		t.Fatal(err)
	}
	p, err := env.K.CreateProcess("limit", kernel.Program{})
	if err != nil {
		t.Fatal(err)
	}
	lp, err := env.LZ.EnterProcess(env.K, p, true, core.SanTTBR)
	if err != nil {
		t.Fatal(err)
	}
	if err := lp.SetDomainLimit(4); err != nil {
		t.Fatal(err)
	}
	var ids []int
	for i := 0; i < 3; i++ { // base table + 3 = the limit
		id, err := lp.Alloc()
		if err != nil {
			t.Fatalf("alloc %d under limit: %v", i, err)
		}
		ids = append(ids, id)
	}
	if _, err := lp.Alloc(); err == nil {
		t.Fatal("allocation beyond the domain limit succeeded")
	}
	if err := lp.SetDomainLimit(2); err == nil {
		t.Fatal("limit below the live count accepted")
	}
	if err := lp.Free(ids[len(ids)-1]); err != nil {
		t.Fatal(err)
	}
	if _, err := lp.Alloc(); err != nil {
		t.Fatalf("alloc after free under limit: %v", err)
	}
}
