package workload

import (
	"fmt"

	"lightzone/internal/arm64"
	"lightzone/internal/core"
	"lightzone/internal/kernel"
	"lightzone/internal/mem"
)

// Serve-mode application models: the figure workloads recast as long-lived
// services under continuous load. Each carries its request model (the same
// AppParams the figures use), a steady-state resident zone count, and the
// expected lz_alloc/lz_free churn per request — connection-lifetime key
// domains for nginx, per-connection stack domains for MySQL, object-buffer
// domains for NVM. The serve harness (internal/serve) composes these with
// measured primitives.

// ServeApp is one service the always-on harness can drive.
type ServeApp struct {
	Name string
	// Params is the request-level cost model (see AppParams); the harness
	// overrides Domains with the regime-capped live zone count.
	Params AppParams
	// ServeZones is the steady-state resident zone count of the service:
	// the domain population a long-lived process holds between requests.
	ServeZones int
	// ZoneChurnPerReq is the expected lz_alloc+lz_free pairs per request
	// (connection setup/teardown amortized over keep-alive requests).
	ZoneChurnPerReq float64
}

// ServeApps returns the services in presentation order. The zone counts are
// the long-lived-service analogues of the figure workloads: nginx holds two
// AES_KEY domains per live connection (93 connections), MySQL two stack
// domains per connection thread (33 threads), NVM one domain per resident
// buffer at the largest figure-5 count.
func ServeApps() []ServeApp {
	return []ServeApp{
		{Name: "nginx", Params: nginxParams, ServeZones: 186, ZoneChurnPerReq: 0.1},
		{Name: "mysql", Params: mysqlParams, ServeZones: 66, ZoneChurnPerReq: 0.02},
		{Name: "nvm", Params: nvmParams, ServeZones: 128, ZoneChurnPerReq: 0.01},
	}
}

// churnMeasurePairs is the iteration count of the churn-pair probe.
const churnMeasurePairs = 32

// MeasureChurnPair measures the cycle cost of one zone churn pair —
// lz_alloc, lz_prot of one page, lz_free — on a process already holding
// liveZones resident zones, with the real machinery: the guest program
// builds the resident set, then the marker window brackets
// churnMeasurePairs recycled alloc/prot/free cycles. The resident set
// matters because lz_alloc clones the base table and lz_free scrubs, so
// the pair cost scales with live state.
func MeasureChurnPair(plat Platform, liveZones int) (float64, error) {
	if liveZones < 1 || liveZones > 500 {
		return 0, fmt.Errorf("churn probe: %d live zones outside the one-TTBRTab-page regime", liveZones)
	}
	env, err := NewEnv(plat)
	if err != nil {
		return 0, err
	}
	a := arm64.NewAsm()
	svcCall(a, core.SysLZEnter, 1, uint64(core.SanTTBR))
	// Resident set: zone d protects page d-1, ids are sequential from 1.
	a.MovImm(21, 1)
	a.MovImm(22, domainRegionBase)
	a.Label("setup")
	a.MovImm(8, core.SysLZAlloc)
	a.Emit(arm64.HVC(core.HVCSyscall))
	a.Emit(arm64.MOVReg(0, 22))
	a.MovImm(1, uint64(mem.PageSize))
	a.Emit(arm64.MOVReg(2, 21))
	a.MovImm(3, uint64(core.PermRead|core.PermWrite))
	a.MovImm(8, core.SysLZProt)
	a.Emit(arm64.HVC(core.HVCSyscall))
	a.Emit(arm64.ADDImm(22, 22, 2048, false))
	a.Emit(arm64.ADDImm(22, 22, 2048, false))
	a.Emit(arm64.ADDImm(21, 21, 1, false))
	a.Emit(arm64.CMPImm(21, uint16(liveZones+1)))
	a.BCond(arm64.CondNE, "setup")
	// Measured churn: the free list recycles id liveZones+1 every pair, so
	// the pair body is position-independent of the iteration count.
	churnID := uint64(liveZones + 1)
	sparePage := domainRegionBase + uint64(liveZones)*uint64(mem.PageSize)
	hvcCall(a, SysMarkBegin)
	a.MovImm(19, churnMeasurePairs)
	a.Label("pair")
	a.MovImm(8, core.SysLZAlloc)
	a.Emit(arm64.HVC(core.HVCSyscall))
	a.MovImm(0, sparePage)
	a.MovImm(1, uint64(mem.PageSize))
	a.MovImm(2, churnID)
	a.MovImm(3, uint64(core.PermRead|core.PermWrite))
	a.MovImm(8, core.SysLZProt)
	a.Emit(arm64.HVC(core.HVCSyscall))
	a.MovImm(0, churnID)
	a.MovImm(8, core.SysLZFree)
	a.Emit(arm64.HVC(core.HVCSyscall))
	a.Emit(arm64.SUBImm(19, 19, 1, false))
	a.CBNZ(19, "pair")
	hvcCall(a, SysMarkEnd)
	hvcCall(a, kernel.SysExit, 0)

	p, err := env.NewProcess("churn-probe", a, nil, nil, kernel.VMA{
		Start: mem.VA(domainRegionBase),
		End:   mem.VA(domainRegionBase + uint64(liveZones+2)*uint64(mem.PageSize)),
		Prot:  kernel.ProtRead | kernel.ProtWrite,
		Name:  "zones",
	})
	if err != nil {
		return 0, err
	}
	if err := env.Run(p, int64(10*liveZones+20*churnMeasurePairs+10_000)); err != nil {
		return 0, err
	}
	if p.Killed {
		return 0, fmt.Errorf("churn probe killed: %s", p.KillMsg)
	}
	m, err := env.Measured()
	if err != nil {
		return 0, err
	}
	return float64(m) / churnMeasurePairs, nil
}
