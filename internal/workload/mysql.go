package workload

import (
	"fmt"

	"lightzone/internal/core"
	"lightzone/internal/kernel"
	"lightzone/internal/mem"
)

// Figure 4 — multi-threaded database protection in MySQL 8.0 (§9.2).
//
// Workload: sysbench OLTP read-write over 10 tables x 10,000 records; each
// connection thread's stack is isolated in its own TTBR domain, and the
// MEMORY storage engine's HP_PTRS heap objects are PAN-protected in every
// configuration that can express it.
//
// Model parameters: each transaction is ~20 queries; the TTBR
// configuration crosses a stack-domain gate on query entry/exit (40 gate
// passes), both LightZone configurations toggle PAN around HP_PTRS
// accesses (200 pairs: 20 queries x ~10 row touches), the Watchpoint
// prototype protects the heap at query granularity (it cannot afford
// per-row switches and cannot isolate stacks at all), and lwC switches
// contexts per query batch.
var mysqlParams = AppParams{
	Name: "mysql",
	WorkCycles: map[string]float64{
		"Carmel":    450_000,
		"CortexA55": 650_000,
	},
	SyscallsPerReq:    2,
	GatePassesPerReq:  40,
	PanPairsPerReq:    200,
	WPSwitchesPerReq:  10,
	LwCSwitchesPerReq: 8,
	Domains:           33, // 32 connection stacks + base
	S2MissesPerReq: map[string]float64{
		"Carmel":    15,
		"CortexA55": 15,
	},
	TTBRS1MissesPerReq: 10,
}

// MySQLThreads is the sysbench thread sweep of Figure 4.
var MySQLThreads = []int{1, 2, 4, 8, 16, 32, 64}

// MySQLFigure computes the Figure 4 series for one platform: throughput
// versus client thread count. Threads beyond the core count contend, and
// TTBR-protected configurations additionally suffer TLB pressure from the
// per-thread stack domains ("when there are >=16 concurrent threads, the
// loss of TTBR-based LightZone stabilizes at 5.26% to 6.23% due to
// considerable memory footprint and limited TLB coverage", §9.2).
func MySQLFigure(pr *Primitives) ([]FigureSeries, error) {
	cores := 8 // Jetson AGX Xavier
	if pr.Plat.Prof.Name == "CortexA55" {
		cores = 4 // Banana Pi BPI-M5
	}
	base, err := pr.CyclesPerRequest(mysqlParams, VariantNone)
	if err != nil {
		return nil, err
	}
	freq := float64(pr.Plat.Prof.CPUFreqMHz) * 1e6
	out := make([]FigureSeries, 0, len(Variants()))
	for _, v := range Variants() {
		s := FigureSeries{Variant: v}
		var satBase, satCur float64
		for _, threads := range MySQLThreads {
			p := mysqlParams
			p.Domains = threads + 1
			cyc, err := pr.CyclesPerRequest(p, v)
			if err != nil {
				return nil, err
			}
			// TLB pressure from per-thread stack domains: each
			// additional running domain displaces entries; the term
			// saturates once every thread owns a resident stack set.
			if v == VariantLZTTBR && threads >= 16 {
				cyc += float64(minInt(threads, 48)) * 1.4 * pr.S1MissCost
			}
			scale := float64(minInt(threads, cores))
			if threads > cores {
				scale *= 1 - 0.05*float64(threads-cores)/float64(threads)
			}
			tput := freq / cyc * scale
			s.Points = append(s.Points, FigurePoint{X: threads, Tput: tput})
			if threads >= 16 {
				satCur += cyc
				satBase += base
			}
		}
		s.OverheadPct = (satCur - satBase) / satCur * 100
		out = append(out, s)
	}
	return out, nil
}

// MySQLMemory measures the §9.2 memory overheads: the application overhead
// of guard-paged per-thread stacks plus key padding, and the page-table
// overhead of the PAN and scalable configurations. The buffer pool is
// scaled to 64MB (the paper's 512.9MB instance is linear in pool size; see
// EXPERIMENTS.md).
func MySQLMemory(plat Platform) (MemoryOverheads, error) {
	const (
		poolBytes = 64 << 20
		nThreads  = 32
		stackSize = 256 * 1024
		poolBase  = mem.VA(0x4000_0000)
		stackBase = mem.VA(0x6000_0000)
	)
	var out MemoryOverheads
	appBytes := uint64(poolBytes + nThreads*stackSize)
	out.BaselineBytes = appBytes
	// Application overhead: stack guard pages, HP_PTRS page rounding, and
	// per-domain alignment — one page per stack boundary plus the padded
	// heap objects (the paper reports 13.3%).
	out.FragPct = float64(nThreads*2*mem.PageSize+poolBytes/8) / float64(appBytes) * 100

	measure := func(scalable bool) (float64, error) {
		env, err := NewEnv(plat)
		if err != nil {
			return 0, err
		}
		poolVMA := kernel.VMA{Start: poolBase, End: poolBase + poolBytes, Prot: kernel.ProtRead | kernel.ProtWrite, Name: "bufferpool"}
		extra := []kernel.VMA{poolVMA}
		for i := 0; i < nThreads; i++ {
			base := stackBase + mem.VA(i*2*stackSize)
			extra = append(extra, kernel.VMA{Start: base, End: base + stackSize, Prot: kernel.ProtRead | kernel.ProtWrite, Name: "tstack"})
		}
		p, err := env.K.CreateProcess("mysql-mem", kernel.Program{Extra: extra})
		if err != nil {
			return 0, err
		}
		if err := p.AS.EnsureMapped(poolVMA.Start, poolBytes); err != nil {
			return 0, err
		}
		for i := 0; i < nThreads; i++ {
			base := stackBase + mem.VA(i*2*stackSize)
			if err := p.AS.EnsureMapped(base, stackSize); err != nil {
				return 0, err
			}
		}
		policy := core.SanPAN
		if scalable {
			policy = core.SanTTBR
		}
		lp, err := env.LZ.EnterProcess(env.K, p, scalable, policy)
		if err != nil {
			return 0, err
		}
		// HP_PTRS heap data: PAN-protected in both configurations.
		if err := lp.Prot(poolBase, 8<<20, 0, core.PermRead|core.PermWrite|core.PermUser); err != nil {
			return 0, err
		}
		if scalable {
			for i := 0; i < nThreads; i++ {
				id, err := lp.Alloc()
				if err != nil {
					return 0, err
				}
				base := stackBase + mem.VA(i*2*stackSize)
				if err := lp.Prot(base, stackSize, id, core.PermRead|core.PermWrite); err != nil {
					return 0, err
				}
			}
		}
		return float64(lp.PageTableBytes()) / float64(appBytes) * 100, nil
	}

	var err error
	if out.PANPTPct, err = measure(false); err != nil {
		return out, fmt.Errorf("pan layout: %w", err)
	}
	if out.TTBRPTPct, err = measure(true); err != nil {
		return out, fmt.Errorf("ttbr layout: %w", err)
	}
	return out, nil
}
