package workload

import (
	"fmt"

	"lightzone/internal/core"
	"lightzone/internal/kernel"
	"lightzone/internal/mem"
)

// Figure 3 — cryptographic key protection in Nginx (§9.1).
//
// Workload: ab issues 10,000 HTTPS requests for a 1KB file against a
// single-worker Nginx 1.12.1 whose OpenSSL AES keys are isolated: one
// domain per AES_KEY instance with function-grained call gates (TTBR), or
// all keys in one PAN domain. The model parameters below encode the
// per-request structure; the measured primitives supply every cycle cost.
//
// Model parameters (see EXPERIMENTS.md for the derivation):
//   - Work cycles: steady-state request processing (TLS record decrypt/
//     encrypt of 1KB, HTTP parsing, buffer management) excluding kernel
//     crossings.
//   - 1 blocking kernel crossing per keep-alive request on the epoll
//     critical path (other syscalls overlap with interrupt processing).
//   - 10 gate passes per request: 5 key uses x (acquire + release).
//   - 4 PAN toggle pairs per request in the PAN configuration (key
//     accesses batched per TLS record).
//   - ~93 live key domains (one per connection's AES_KEY) — the domain
//     count that also drives the §9.1 memory overheads.
var nginxParams = AppParams{
	Name: "nginx",
	WorkCycles: map[string]float64{
		"Carmel":    81_000,
		"CortexA55": 139_000,
	},
	SyscallsPerReq:    1,
	GatePassesPerReq:  10,
	PanPairsPerReq:    4,
	WPSwitchesPerReq:  10,
	LwCSwitchesPerReq: 10,
	Domains:           93,
	S2MissesPerReq: map[string]float64{
		"Carmel":    17,
		"CortexA55": 17,
	},
	TTBRS1MissesPerReq: 6,
}

// NginxConcurrencies is the ab -c sweep of Figure 3.
var NginxConcurrencies = []int{1, 2, 4, 8, 16, 24, 32}

// FigurePoint is one (x, throughput) sample of a figure series.
type FigurePoint struct {
	X    int
	Tput float64 // requests (or transactions) per second
}

// FigureSeries is one variant's curve.
type FigureSeries struct {
	Variant Variant
	Points  []FigurePoint
	// OverheadPct is the saturated relative loss against the
	// unprotected configuration (the number the paper quotes in §9).
	OverheadPct float64
}

// NginxFigure computes the Figure 3 series for one platform.
func NginxFigure(pr *Primitives) ([]FigureSeries, error) {
	return requestFigure(pr, nginxParams, NginxConcurrencies, saturate)
}

// saturate models a single-worker server under c concurrent clients:
// throughput ramps to the service capacity as the client pool hides
// network round-trips.
func saturate(capacity float64, c int) float64 {
	return capacity * float64(c) / (float64(c) + 0.35)
}

// requestFigure evaluates all variants of a request workload.
func requestFigure(pr *Primitives, p AppParams, xs []int, curve func(float64, int) float64) ([]FigureSeries, error) {
	base, err := pr.CyclesPerRequest(p, VariantNone)
	if err != nil {
		return nil, err
	}
	freq := float64(pr.Plat.Prof.CPUFreqMHz) * 1e6
	out := make([]FigureSeries, 0, len(Variants()))
	for _, v := range Variants() {
		cyc, err := pr.CyclesPerRequest(p, v)
		if err != nil {
			return nil, err
		}
		s := FigureSeries{
			Variant:     v,
			OverheadPct: (cyc - base) / cyc * 100,
		}
		capacity := freq / cyc
		for _, x := range xs {
			s.Points = append(s.Points, FigurePoint{X: x, Tput: curve(capacity, x)})
		}
		out = append(out, s)
	}
	return out, nil
}

// NginxMemory measures the §9.1 memory overheads by building the protected
// process layout for real and reading the page-table state: baseline
// application memory, per-key page fragmentation, and the page-table
// overhead of the PAN and scalable configurations.
type MemoryOverheads struct {
	BaselineBytes uint64
	FragPct       float64
	PANPTPct      float64
	TTBRPTPct     float64
}

// NginxMemory builds the Nginx protection layout (§9.1: 21.7MB baseline,
// one 4KB page per AES_KEY).
func NginxMemory(plat Platform) (MemoryOverheads, error) {
	const (
		appBytes = 21_700 * 1024 // 21.7MB baseline consumption
		nKeys    = 93
		keySize  = 280 // AES_KEY structure bytes
		keysBase = mem.VA(0x6000_0000)
	)
	var out MemoryOverheads
	out.BaselineBytes = appBytes
	out.FragPct = float64(nKeys*(mem.PageSize-keySize)) / float64(appBytes) * 100

	measure := func(scalable bool) (float64, error) {
		env, err := NewEnv(plat)
		if err != nil {
			return 0, err
		}
		appVMA := kernel.VMA{Start: 0x4000_0000, End: 0x4000_0000 + mem.VA(appBytes-nKeys*mem.PageSize), Prot: kernel.ProtRead | kernel.ProtWrite, Name: "app"}
		keysVMA := kernel.VMA{Start: keysBase, End: keysBase + mem.VA(nKeys*mem.PageSize), Prot: kernel.ProtRead | kernel.ProtWrite, Name: "keys"}
		p, err := env.K.CreateProcess("nginx-mem", kernel.Program{Extra: []kernel.VMA{appVMA, keysVMA}})
		if err != nil {
			return 0, err
		}
		if err := p.AS.EnsureMapped(appVMA.Start, uint64(appVMA.End-appVMA.Start)); err != nil {
			return 0, err
		}
		if err := p.AS.EnsureMapped(keysVMA.Start, uint64(keysVMA.End-keysVMA.Start)); err != nil {
			return 0, err
		}
		policy := core.SanPAN
		if scalable {
			policy = core.SanTTBR
		}
		lp, err := env.LZ.EnterProcess(env.K, p, scalable, policy)
		if err != nil {
			return 0, err
		}
		if scalable {
			for k := 0; k < nKeys; k++ {
				id, err := lp.Alloc()
				if err != nil {
					return 0, err
				}
				addr := keysBase + mem.VA(k*mem.PageSize)
				if err := lp.Prot(addr, mem.PageSize, id, core.PermRead|core.PermWrite); err != nil {
					return 0, err
				}
			}
		} else {
			if err := lp.Prot(keysBase, nKeys*mem.PageSize, 0, core.PermRead|core.PermWrite|core.PermUser); err != nil {
				return 0, err
			}
		}
		return float64(lp.PageTableBytes()) / float64(appBytes) * 100, nil
	}

	var err error
	if out.PANPTPct, err = measure(false); err != nil {
		return out, fmt.Errorf("pan layout: %w", err)
	}
	if out.TTBRPTPct, err = measure(true); err != nil {
		return out, fmt.Errorf("ttbr layout: %w", err)
	}
	return out, nil
}
