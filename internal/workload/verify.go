package workload

import (
	"fmt"

	"lightzone/internal/core"
	"lightzone/internal/trace"
	"lightzone/internal/verify"
)

// InvariantMonitor accumulates static-verifier runs triggered at the
// LightZone module's mutation chokepoints (-invariants mode). Each run
// captures a fresh snapshot of the whole machine and executes the full
// checker registry; a clean machine must stay clean at every chokepoint,
// not just at the end of a run.
type InvariantMonitor struct {
	env *Env

	// Runs counts verifier executions; Findings sums their findings.
	Runs     int
	Findings int
	// Last is the most recent report (useful when Findings > 0).
	Last verify.Report
	// Err records the first capture failure (a simulator bug, not a
	// security finding).
	Err error

	// memo caches the content-keyed checkers (sanitizer sweep, CFG) across
	// chokepoints whose executable content did not change; memoised reports
	// are byte-identical to fresh ones.
	memo *verify.Memo
}

// EnableInvariants attaches the static verifier to every security-state
// mutation chokepoint of the module (lz_enter, lz_prot, lz_alloc, lz_free,
// lz_map_gate_pgt, sanitizer admissions, W-xor-X flips). Verification is
// observation-only — emulated cycles, TLB statistics and benchmark results
// are byte-identical with the monitor attached — and each run is recorded
// on the module's trace as a KindInvariant event.
func (e *Env) EnableInvariants() *InvariantMonitor {
	mon := &InvariantMonitor{env: e, memo: verify.NewMemo()}
	e.LZ.Observer = func(event string, lp *core.LZProc) {
		rep, err := verify.RunMachineMemo(e.M, e.LZ, mon.memo)
		if err != nil {
			if mon.Err == nil {
				mon.Err = fmt.Errorf("invariant capture at %s: %w", event, err)
			}
			return
		}
		mon.Runs++
		mon.Findings += len(rep.Findings)
		mon.Last = rep
		e.LZ.Trace.Record(e.M.CPU.Cycles, trace.KindInvariant, lp.PID(),
			"%s: %d checkers, %d findings", event, len(rep.Checkers), len(rep.Findings))
	}
	return mon
}

// VerifyResult is one clean-machine verification cell: a benchmark
// configuration run to completion with the invariant monitor attached,
// plus a final whole-machine report.
type VerifyResult struct {
	Name          string        `json:"name"`
	Machine       string        `json:"machine"`
	InvariantRuns int           `json:"invariant_runs"`
	Findings      int           `json:"findings"`
	Final         verify.Report `json:"final"`
}

// verifyConfigs are the clean machines the sweep proves invariant-free:
// scalable TTBR isolation at two domain counts and PAN-based isolation,
// matching the Table 5 configurations.
func verifyConfigs(plat Platform) []struct {
	name string
	cfg  DomainSwitchConfig
} {
	return []struct {
		name string
		cfg  DomainSwitchConfig
	}{
		{"ttbr-8", DomainSwitchConfig{Platform: plat, Variant: VariantLZTTBR, Domains: 8, Iters: 200, Seed: Table5Seed}},
		{"ttbr-32", DomainSwitchConfig{Platform: plat, Variant: VariantLZTTBR, Domains: 32, Iters: 100, Seed: Table5Seed}},
		{"pan-8", DomainSwitchConfig{Platform: plat, Variant: VariantLZPAN, Domains: 8, Iters: 200, Seed: Table5Seed}},
	}
}

// VerifyProbe runs one chokepoint-monitored domain-switch probe with a
// trace recorder attached — the machine behind lzinspect -invariants. The
// returned result carries the final whole-machine report; the recorder holds
// one KindInvariant event per verifier run.
func VerifyProbe(plat Platform) (VerifyResult, *trace.Recorder, error) {
	env, err := NewEnv(plat)
	if err != nil {
		return VerifyResult{}, nil, err
	}
	rec := env.EnableTrace(4096)
	mon := env.EnableInvariants()
	cfg := DomainSwitchConfig{Platform: plat, Variant: VariantLZTTBR, Domains: 8, Iters: 200, Seed: Table5Seed}
	if _, _, err := runDomainSwitch(cfg, env); err != nil {
		return VerifyResult{}, nil, err
	}
	if mon.Err != nil {
		return VerifyResult{}, nil, mon.Err
	}
	final, err := verify.RunMachine(env.M, env.LZ)
	if err != nil {
		return VerifyResult{}, nil, err
	}
	res := VerifyResult{
		Name:          "ttbr-8",
		Machine:       final.Machine,
		InvariantRuns: mon.Runs,
		Findings:      mon.Findings + len(final.Findings),
		Final:         final,
	}
	return res, rec, nil
}

// VerifySweep runs every clean configuration with chokepoint verification
// enabled and a final post-run verification, one fleet cell per
// configuration. Any finding on these machines is an error: the verifier
// must hold exactly on the states the runtime constructs.
func (f *Fleet) VerifySweep(plat Platform) ([]VerifyResult, error) {
	cfgs := verifyConfigs(plat)
	out := make([]VerifyResult, len(cfgs))
	err := f.Run(len(cfgs), func(i int) error {
		c := cfgs[i]
		env, err := NewEnv(c.cfg.Platform)
		if err != nil {
			return fmt.Errorf("%s: %w", c.name, err)
		}
		env.EnableTrace(256)
		mon := env.EnableInvariants()
		if _, _, err := runDomainSwitch(c.cfg, env); err != nil {
			return fmt.Errorf("%s: %w", c.name, err)
		}
		if mon.Err != nil {
			return fmt.Errorf("%s: %w", c.name, mon.Err)
		}
		final, err := verify.RunMachine(env.M, env.LZ)
		if err != nil {
			return fmt.Errorf("%s: final verification: %w", c.name, err)
		}
		res := VerifyResult{
			Name:          c.name,
			Machine:       final.Machine,
			InvariantRuns: mon.Runs,
			Findings:      mon.Findings + len(final.Findings),
			Final:         final,
		}
		if mon.Runs == 0 {
			return fmt.Errorf("%s: invariant monitor never fired", c.name)
		}
		if res.Findings > 0 {
			for _, fd := range append(mon.Last.Findings, final.Findings...) {
				return findingsf("%s: clean machine reported finding: %s", c.name, fd)
			}
		}
		out[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
