package workload

import (
	"fmt"

	"lightzone/internal/arm64"
	"lightzone/internal/core"
	"lightzone/internal/kernel"
	"lightzone/internal/mem"
)

// EmulatedTxnConfig describes a fully-emulated transaction worker: instead
// of composing measured primitives analytically (AppParams), the worker
// program executes every transaction on the emulator — PAN toggles around
// heap touches, gate switches into the stack domain, kernel crossings, and
// the bulk work charged through a nanosleep-modelled compute kernel. It
// validates the analytic request model against end-to-end emulation.
type EmulatedTxnConfig struct {
	Platform   Platform
	Variant    Variant // VariantNone, VariantLZPAN or VariantLZTTBR
	Txns       int
	WorkCycles int64 // bulk compute per transaction
	PanPairs   int   // HP_PTRS-style protected touches per transaction
	GatePairs  int   // stack-domain gate passes per transaction (TTBR, max 2)
	Syscalls   int   // kernel crossings per transaction
}

// RunEmulatedTxnWorker executes the worker and returns average cycles per
// transaction.
func RunEmulatedTxnWorker(cfg EmulatedTxnConfig) (float64, error) {
	if cfg.Txns <= 0 {
		return 0, fmt.Errorf("bad txn count")
	}
	if cfg.GatePairs > 2 {
		return 0, fmt.Errorf("the worker models at most 2 gate passes per transaction")
	}
	env, err := NewEnv(cfg.Platform)
	if err != nil {
		return 0, err
	}
	const (
		heap  = uint64(0x7000_0000)
		stack = uint64(0x7100_0000)
	)
	lz := cfg.Variant == VariantLZPAN || cfg.Variant == VariantLZTTBR
	ttbr := cfg.Variant == VariantLZTTBR

	a := arm64.NewAsm()
	call := func(num uint64, args ...uint64) {
		for i, arg := range args {
			a.MovImm(uint8(i), arg)
		}
		a.MovImm(8, num)
		if lz {
			a.Emit(arm64.HVC(core.HVCSyscall))
		} else {
			a.Emit(arm64.SVC(0))
		}
	}

	// Setup.
	switch cfg.Variant {
	case VariantLZPAN:
		svcCall(a, core.SysLZEnter, 0, uint64(core.SanPAN))
	case VariantLZTTBR:
		svcCall(a, core.SysLZEnter, 1, uint64(core.SanTTBR))
	case VariantNone:
	default:
		return 0, fmt.Errorf("variant %q not supported by the emulated worker", cfg.Variant)
	}
	call(kernel.SysMmap, heap, mem.PageSize, uint64(kernel.ProtRead|kernel.ProtWrite))
	call(kernel.SysMmap, stack, mem.PageSize, uint64(kernel.ProtRead|kernel.ProtWrite))
	if lz {
		call(core.SysLZProt, heap, mem.PageSize, 0, core.PermRead|core.PermWrite|core.PermUser)
	}
	if ttbr {
		call(core.SysLZAlloc) // table 1: the stack domain
		call(core.SysLZMapGatePgt, 1, 0)
		call(core.SysLZMapGatePgt, 1, 1)
		call(core.SysLZProt, stack, mem.PageSize, 1, core.PermRead|core.PermWrite)
	}
	// Warm the heap page (and its PAN path) outside the measured loop.
	a.MovImm(5, heap)
	if lz {
		core.EmitSetPAN(a, 0)
		a.Emit(arm64.LDRImm(9, 5, 0, 3))
		core.EmitSetPAN(a, 1)
	} else {
		a.Emit(arm64.LDRImm(9, 5, 0, 3))
	}

	// Measured transaction loop. Gate call sites are fixed inside the
	// loop (one gate per site, §6.2), so they warm on the first
	// iteration and steady-state dominates over cfg.Txns iterations.
	call(SysMarkBegin)
	var entries []core.GateEntry
	a.MovImm(11, uint64(cfg.Txns))
	a.Label("txn")
	for i := 0; i < cfg.Syscalls; i++ {
		call(kernel.SysGetpid)
	}
	call(kernel.SysNanosleep, uint64(cfg.WorkCycles))
	if ttbr && cfg.GatePairs >= 1 {
		entry := core.EmitGateSwitch(a, 0, "site_a")
		off, err := a.Offset(entry)
		if err != nil {
			return 0, err
		}
		entries = append(entries, core.GateEntry{GateID: 0, Entry: uint64(off)})
		a.MovImm(13, stack)
		a.Emit(arm64.LDRImm(9, 13, 0, 3))
	}
	if ttbr && cfg.GatePairs >= 2 {
		entry := core.EmitGateSwitch(a, 1, "site_b")
		off, err := a.Offset(entry)
		if err != nil {
			return 0, err
		}
		entries = append(entries, core.GateEntry{GateID: 1, Entry: uint64(off)})
		a.MovImm(13, stack)
		a.Emit(arm64.LDRImm(9, 13, 0, 3))
	}
	a.MovImm(5, heap)
	if lz {
		for i := 0; i < cfg.PanPairs; i++ {
			core.EmitSetPAN(a, 0)
			a.Emit(arm64.LDRImm(9, 5, 0, 3))
			core.EmitSetPAN(a, 1)
		}
	} else {
		for i := 0; i < cfg.PanPairs; i++ {
			a.Emit(arm64.LDRImm(9, 5, 0, 3))
		}
	}
	a.Emit(arm64.SUBSImm(11, 11, 1))
	a.BCond(arm64.CondNE, "txn")
	call(SysMarkEnd)
	call(kernel.SysExit, 0)

	p, err := env.NewProcess("emulated-txn", a, nil, entries)
	if err != nil {
		return 0, err
	}
	budget := int64(cfg.Txns)*int64(cfg.Syscalls+cfg.GatePairs+6)*4 + 1_000_000
	if err := env.Run(p, budget); err != nil {
		return 0, err
	}
	if p.Killed {
		return 0, fmt.Errorf("worker killed: %s", p.KillMsg)
	}
	m, err := env.Measured()
	if err != nil {
		return 0, err
	}
	return float64(m) / float64(cfg.Txns), nil
}
