package workload

import (
	"fmt"
	"math/rand"

	"lightzone/internal/arm64"
	"lightzone/internal/baseline"
	"lightzone/internal/core"
	"lightzone/internal/kernel"
	"lightzone/internal/mem"
)

// Table 5 microbenchmark (§8.2): the evaluation program creates many 4KB
// memory domains, attaches each to a unique page table (or marks them all
// as one PAN domain, or registers them as watchpoint domains), then
// randomly switches between domains and accesses 8 bytes of the current
// domain, repeated iters times. The switching loop runs fully emulated:
// the measured cycles are produced by the real call gates, PAN toggles, or
// trap-based ioctls, plus the genuine TLB behaviour of ASID-tagged domain
// mappings.

// domainRegionBase is where the benchmark places its domains (one 4KB page
// per domain, 64KB stride so addresses are computable by a shift).
const (
	domainRegionBase   = uint64(0x5000_0000)
	domainRegionStride = uint64(0x1_0000)
)

// DomainSwitchConfig parameterizes the microbenchmark.
type DomainSwitchConfig struct {
	Platform Platform
	Variant  Variant // LZPAN, LZTTBR or Watchpoint
	Domains  int
	Iters    int
	Seed     int64
	// DisableDecodeCache runs the benchmark with the decoded-block cache
	// off (the seed fetch/decode pipeline) — for the cycle-identity tests
	// and host-speed benchmarks; emulated cycles must not change.
	DisableDecodeCache bool
	// DisableHostFastpaths runs with the micro-TLBs, block-resident Run
	// loop and batched cycle accounting off (the per-Step pipeline) — for
	// the identity tests; emulated cycles must not change.
	DisableHostFastpaths bool
}

// DomainSwitchResult is one Table 5 cell.
type DomainSwitchResult struct {
	Config      DomainSwitchConfig
	AvgCycles   float64
	TotalCycles int64 // exact measured cycles (for cycle-identity checks)
}

// RunDomainSwitch executes the microbenchmark and returns the average
// cycles per switch-and-access.
func RunDomainSwitch(cfg DomainSwitchConfig) (DomainSwitchResult, error) {
	res, _, err := runDomainSwitch(cfg, nil)
	return res, err
}

// runDomainSwitch is RunDomainSwitch with the environment exposed; env may
// be pre-booted (pipeline inspection attaches a trace recorder first) or
// nil to boot a fresh one.
func runDomainSwitch(cfg DomainSwitchConfig, env *Env) (DomainSwitchResult, *Env, error) {
	res := DomainSwitchResult{Config: cfg}
	env, p, err := prepareDomainSwitch(cfg, env)
	if err != nil {
		return res, nil, err
	}
	if err := env.Run(p, domainSwitchBudget(cfg)); err != nil {
		return res, nil, err
	}
	if p.Killed {
		return res, nil, fmt.Errorf("benchmark killed: %s", p.KillMsg)
	}
	if res.TotalCycles, err = env.Measured(); err != nil {
		return res, nil, err
	}
	res.AvgCycles = float64(res.TotalCycles) / float64(cfg.Iters)
	return res, env, nil
}

// domainSwitchBudget is the trap budget of one benchmark run.
func domainSwitchBudget(cfg DomainSwitchConfig) int64 {
	return int64(cfg.Iters)*4 + 100_000
}

// DomainSwitchBudget exposes the run's trap budget for callers that drive
// the process in slices (the record/replay chaos engine).
func DomainSwitchBudget(cfg DomainSwitchConfig) int64 { return domainSwitchBudget(cfg) }

// DomainVA returns the virtual address of domain d's page, for callers that
// perturb specific domain translations (the chaos engine's targeted TLBI).
func DomainVA(d int) mem.VA {
	return mem.VA(domainRegionBase + uint64(d)*domainRegionStride)
}

// PrepareDomainSwitch boots an environment and assembles the benchmark
// process without running it, so external drivers (the chaos engine in
// internal/replay) can run the process in trap-budget slices — Env.Run
// returns kernel.ErrTrapBudget at each slice boundary, a clean
// architectural point for fault injection — instead of to completion.
func PrepareDomainSwitch(cfg DomainSwitchConfig) (*Env, *kernel.Process, error) {
	return prepareDomainSwitch(cfg, nil)
}

// prepareDomainSwitch boots the environment (unless one is supplied) and
// assembles the benchmark process without running it. Callers other than
// runDomainSwitch drive the process in trap-budget slices (Env.Run returns
// kernel.ErrTrapBudget until the program exits) — the cross-machine
// isolation tests interleave two machines this way. When zygote forking is
// enabled (SetZygoteDefault) and no environment is supplied, the prepared
// machine is a copy-on-write fork of a pooled zygote instead of a cold
// boot — bit-identical under replay.Digest, O(dirty pages) instead of
// O(boot).
func prepareDomainSwitch(cfg DomainSwitchConfig, env *Env) (*Env, *kernel.Process, error) {
	if env == nil && ZygoteDefault() {
		return ForkDomainSwitch(cfg)
	}
	return prepareDomainSwitchCold(cfg, env)
}

// prepareDomainSwitchCold is the boot-and-assemble path (also the zygote
// pool's first-use preparation).
func prepareDomainSwitchCold(cfg DomainSwitchConfig, env *Env) (*Env, *kernel.Process, error) {
	if cfg.Domains <= 0 || cfg.Iters <= 0 {
		return nil, nil, fmt.Errorf("bad config %+v", cfg)
	}
	if cfg.Variant == VariantWatchpoint && cfg.Domains > baseline.MaxWatchpointDomains {
		return nil, nil, baseline.ErrTooManyDomains
	}
	if cfg.Variant == VariantNone {
		return nil, nil, fmt.Errorf("the unprotected variant has no domain switches")
	}
	if env == nil {
		var err error
		env, err = NewEnv(cfg.Platform)
		if err != nil {
			return nil, nil, err
		}
	}
	if cfg.DisableDecodeCache {
		env.M.CPU.SetDecodeCache(false)
	}
	if cfg.DisableHostFastpaths {
		env.M.CPU.SetHostFastpaths(false)
	}

	// Pre-computed random domain sequence, one byte per iteration.
	rng := rand.New(rand.NewSource(cfg.Seed))
	seq := make([]byte, cfg.Iters)
	for i := range seq {
		seq[i] = byte(rng.Intn(cfg.Domains))
	}

	a := arm64.NewAsm()
	var entries []core.GateEntry
	regionLen := uint64(cfg.Domains) * domainRegionStride

	switch cfg.Variant {
	case VariantLZTTBR:
		entries = buildTTBRSwitchProgram(a, cfg)
	case VariantLZPAN:
		buildPANSwitchProgram(a, cfg)
	case VariantWatchpoint:
		buildWatchpointSwitchProgram(a, cfg)
	case VariantLwC:
		buildLwCSwitchProgram(a, cfg)
	default:
		return nil, nil, fmt.Errorf("variant %q has no domain-switch mechanism", cfg.Variant)
	}

	p, err := env.NewProcess("table5", a, seq, entries, kernel.VMA{
		Start: mem.VA(domainRegionBase),
		End:   mem.VA(domainRegionBase + regionLen),
		Prot:  kernel.ProtRead | kernel.ProtWrite,
		Name:  "domains",
	})
	if err != nil {
		return nil, nil, err
	}
	return env, p, nil
}

// emitSwitchLoop emits the shared measurement loop skeleton. perIter emits
// the body given (x12 = domain index). Register allocation keeps clear of
// the call gate's scratch registers (x16-x20, x30): x10 sequence pointer,
// x11 remaining iterations, x12 current domain, x13/x14 scratch.
func emitSwitchLoop(a *arm64.Asm, cfg DomainSwitchConfig, hvc bool, perIter func()) {
	mark := func(num uint64) {
		a.MovImm(8, num)
		if hvc {
			a.Emit(arm64.HVC(core.HVCSyscall))
		} else {
			a.Emit(arm64.SVC(0))
		}
	}
	// Warm the sequence pages and domain pages deterministically before
	// measurement (the paper measures steady state after warm-up).
	a.MovImm(1, uint64(kernel.DataBase))
	a.MovImm(2, uint64(cfg.Iters))
	a.MovImm(4, mem.PageSize) // page stride (too wide for imm12)
	a.Label("warm_seq")
	a.Emit(arm64.LDRImm(3, 1, 0, 0))
	a.Emit(arm64.ADDReg(1, 1, 4))
	a.Emit(arm64.SUBSReg(2, 2, 4))
	a.BCond(arm64.CondGT, "warm_seq")

	// Loop-invariant bases live in x5 (domain region) and x6 (set by the
	// variant body builder when needed).
	a.MovImm(5, domainRegionBase)
	mark(SysMarkBegin)
	a.MovImm(10, uint64(kernel.DataBase))
	a.MovImm(11, uint64(cfg.Iters))
	a.Label("loop")
	a.Emit(arm64.LDRImm(12, 10, 0, 0)) // x12 = seq[j] (byte)
	a.Emit(arm64.ADDImm(10, 10, 1, false))
	perIter()
	a.Emit(arm64.SUBSImm(11, 11, 1))
	a.BCond(arm64.CondNE, "loop")
	mark(SysMarkEnd)
	if hvc {
		a.MovImm(0, 0)
		a.MovImm(8, kernel.SysExit)
		a.Emit(arm64.HVC(core.HVCSyscall))
	} else {
		a.MovImm(0, 0)
		a.MovImm(8, kernel.SysExit)
		a.Emit(arm64.SVC(0))
	}
}

// emitDomainAccess emits the 8-byte access to the current domain:
// x13 = x5 (domain region base) + (x12 << 16).
func emitDomainAccess(a *arm64.Asm) {
	a.Emit(arm64.ADDShifted(13, 5, 12, 16))
	a.Emit(arm64.LDRImm(9, 13, 0, 3))
}

// buildTTBRSwitchProgram builds the scalable-isolation benchmark: one page
// table and one call gate per domain; the loop jumps through the gate of
// the randomly selected domain. All gates share one registered entry (the
// loop's resume point).
func buildTTBRSwitchProgram(a *arm64.Asm, cfg DomainSwitchConfig) []core.GateEntry {
	svcCall(a, core.SysLZEnter, 1, uint64(core.SanTTBR))
	// Setup: per-domain page table, gate binding, and protection.
	for d := 0; d < cfg.Domains; d++ {
		hvcCall(a, core.SysLZAlloc)
		// Page-table ids are sequential (base is 0): domain d gets d+1.
		hvcCall(a, core.SysLZMapGatePgt, uint64(d+1), uint64(d))
		addr := domainRegionBase + uint64(d)*domainRegionStride
		hvcCall(a, core.SysLZProt, addr, mem.PageSize, uint64(d+1), core.PermRead|core.PermWrite)
	}
	a.MovImm(6, core.GateCodeBase()) // loop-invariant gate base
	emitSwitchLoop(a, cfg, true, func() {
		// Gate address: gateCodeVA + d*slot; slot is 128 bytes.
		a.Emit(arm64.ADDShifted(13, 6, 12, 7))
		a.ADR(30, "resume")
		a.Emit(arm64.BR(13))
		a.Label("resume")
		emitDomainAccess(a)
	})
	// Every gate validates the same entry: the loop's resume label.
	off, err := a.Offset("resume")
	if err != nil {
		return nil
	}
	entries := make([]core.GateEntry, cfg.Domains)
	for d := range entries {
		entries[d] = core.GateEntry{GateID: d, Entry: uint64(off)}
	}
	return entries
}

// buildPANSwitchProgram builds the efficient-isolation benchmark: all
// domains live in one PAN-protected region; a switch is a PAN toggle pair.
func buildPANSwitchProgram(a *arm64.Asm, cfg DomainSwitchConfig) {
	svcCall(a, core.SysLZEnter, 0, uint64(core.SanPAN))
	regionLen := uint64(cfg.Domains) * domainRegionStride
	hvcCall(a, core.SysLZProt, domainRegionBase, regionLen, 0, core.PermRead|core.PermWrite|core.PermUser)
	core.EmitSetPAN(a, 1)
	emitSwitchLoop(a, cfg, true, func() {
		core.EmitSetPAN(a, 0) // grant
		emitDomainAccess(a)
		core.EmitSetPAN(a, 1) // revoke
	})
}

// buildWatchpointSwitchProgram builds the Watchpoint baseline benchmark:
// every switch is an ioctl-style syscall reprogramming the watchpoint
// register pairs.
func buildWatchpointSwitchProgram(a *arm64.Asm, cfg DomainSwitchConfig) {
	for d := 0; d < cfg.Domains; d++ {
		addr := domainRegionBase + uint64(d)*domainRegionStride
		svcCall(a, baseline.SysWPProtect, addr, mem.PageSize, uint64(d))
	}
	// Touch each domain page once so demand faults stay out of the
	// measured loop.
	for d := 0; d < cfg.Domains; d++ {
		addr := domainRegionBase + uint64(d)*domainRegionStride
		a.MovImm(1, addr)
		a.Emit(arm64.LDRImm(2, 1, 0, 3))
	}
	emitSwitchLoop(a, cfg, false, func() {
		a.Emit(arm64.MOVReg(0, 12))
		a.MovImm(8, baseline.SysWPSwitch)
		a.Emit(arm64.SVC(0))
		emitDomainAccess(a)
	})
}

// buildLwCSwitchProgram builds the simulated-lwC baseline benchmark: one
// light-weight context per domain, each switch a kernel-mediated context
// switch.
func buildLwCSwitchProgram(a *arm64.Asm, cfg DomainSwitchConfig) {
	for d := 0; d < cfg.Domains; d++ {
		svcCall(a, baseline.SysLwCCreate)
	}
	for d := 0; d < cfg.Domains; d++ {
		addr := domainRegionBase + uint64(d)*domainRegionStride
		a.MovImm(1, addr)
		a.Emit(arm64.LDRImm(2, 1, 0, 3))
	}
	emitSwitchLoop(a, cfg, false, func() {
		a.Emit(arm64.MOVReg(0, 12))
		a.MovImm(8, baseline.SysLwCSwitch)
		a.Emit(arm64.SVC(0))
		emitDomainAccess(a)
	})
}

// svcCall emits a pre-enter syscall (SVC path), clobbering x0..x5 and x8.
func svcCall(a *arm64.Asm, num uint64, args ...uint64) {
	for i, arg := range args {
		a.MovImm(uint8(i), arg)
	}
	a.MovImm(8, num)
	a.Emit(arm64.SVC(0))
}

// hvcCall emits a post-enter syscall through the HVC fast path.
func hvcCall(a *arm64.Asm, num uint64, args ...uint64) {
	for i, arg := range args {
		a.MovImm(uint8(i), arg)
	}
	a.MovImm(8, num)
	a.Emit(arm64.HVC(core.HVCSyscall))
}
