package workload

import (
	"fmt"
	"sync"
	"sync/atomic"

	"lightzone/internal/core"
	"lightzone/internal/kernel"
)

// Fork clones a booted environment in O(dirty pages): physical memory forks
// copy-on-write, the machine layers (vCPU, hypervisor, kernels) transfer
// their architectural state exactly, and the module chain — LightZone, both
// baselines, the measurement marker — is re-cloned and re-attached so the
// child's kernel dispatches into the child's modules. The parent must be
// quiescent (between Run invocations); the child is a full environment,
// indistinguishable by replay.Digest from a cold boot driven to the same
// point.
func (e *Env) Fork() *Env {
	m2 := e.M.Fork()
	e2 := &Env{Platform: e.Platform, M: m2}
	if e.Platform.Guest {
		vm2, ok := m2.Hyp.VMByID(e.VM.VMID)
		if !ok || vm2.Kernel == nil {
			panic("workload: forked machine lost the guest VM")
		}
		e2.VM = vm2
		e2.K = vm2.Kernel
	} else {
		e2.K = m2.Host
	}
	e2.LZ = e.LZ.Fork(m2.Hyp, e2.K)
	e2.WP = e.WP.Fork()
	e2.LWC = e.LWC.Fork()
	e2.Marks = &Marker{c: m2.CPU, Begin: e.Marks.Begin, End: e.Marks.End}
	e2.K.Module = kernel.ModuleMux{e2.LZ, e2.WP, e2.LWC, e2.Marks}
	if e.Platform.Guest {
		core.InstallLowvisor(m2.Hyp, e2.LZ)
	}
	return e2
}

// zygote is one warmed, never-run environment with its benchmark process
// already created: boot + module setup + assemble + CreateProcess paid once,
// then every consumer forks a child instead of cold-booting. The mutex
// serializes forks — PhysMem.Fork lazily creates share cells on the parent,
// so two concurrent forks of one zygote must not interleave.
type zygote struct {
	mu  sync.Mutex
	env *Env
	pid int
	err error
}

var (
	zygoteMu sync.Mutex
	zygotes  = make(map[zkey]*zygote)
	zygoteOn atomic.Bool
	// ZygoteForks counts children handed out across all pools (bench/CI
	// telemetry; not digest-visible).
	zygoteForks atomic.Int64
)

// SetZygoteDefault switches prepareDomainSwitch (and with it every
// fleet/chaos/calibration consumer that boots through it) between cold
// boots and zygote forking. Returns the previous setting.
func SetZygoteDefault(on bool) bool { return zygoteOn.Swap(on) }

// ZygoteDefault reports whether domain-switch environments fork from
// zygotes by default.
func ZygoteDefault() bool { return zygoteOn.Load() }

// ZygoteForkCount returns the number of children forked from zygote pools.
func ZygoteForkCount() int64 { return zygoteForks.Load() }

// ResetZygotes drops every pooled zygote (tests use this to force fresh
// cold preparations).
func ResetZygotes() {
	zygoteMu.Lock()
	defer zygoteMu.Unlock()
	zygotes = make(map[zkey]*zygote)
}

// zkey is the pool key: every DomainSwitchConfig field, with the profile
// reduced to its name (profiles arrive as distinct pointers to identical
// values). A comparable struct keeps the per-fork lookup allocation-free —
// forks are on the measured path of the zygote benchmark.
type zkey struct {
	prof                 string
	guest                bool
	variant              Variant
	domains, iters       int
	seed                 int64
	noDecode, noFastpath bool
}

// zygoteKey covers every DomainSwitchConfig field: two configs that differ
// anywhere get distinct zygotes.
func zygoteKey(cfg DomainSwitchConfig) zkey {
	return zkey{
		prof: cfg.Platform.Prof.Name, guest: cfg.Platform.Guest,
		variant: cfg.Variant, domains: cfg.Domains, iters: cfg.Iters,
		seed: cfg.Seed, noDecode: cfg.DisableDecodeCache,
		noFastpath: cfg.DisableHostFastpaths,
	}
}

// ForkDomainSwitch returns a forked child of the config's zygote,
// cold-preparing the zygote on first use. The child is ready to Run exactly
// as a PrepareDomainSwitch result would be.
func ForkDomainSwitch(cfg DomainSwitchConfig) (*Env, *kernel.Process, error) {
	zygoteMu.Lock()
	z, ok := zygotes[zygoteKey(cfg)]
	if !ok {
		z = &zygote{}
		zygotes[zygoteKey(cfg)] = z
	}
	zygoteMu.Unlock()

	z.mu.Lock()
	defer z.mu.Unlock()
	if z.err != nil {
		return nil, nil, z.err
	}
	if z.env == nil {
		env, p, err := prepareDomainSwitchCold(cfg, nil)
		if err != nil {
			z.err = err
			return nil, nil, err
		}
		z.env, z.pid = env, p.PID
	}
	env2 := z.env.Fork()
	p2, ok := env2.K.Process(z.pid)
	if !ok {
		return nil, nil, fmt.Errorf("zygote fork lost process %d", z.pid)
	}
	zygoteForks.Add(1)
	return env2, p2, nil
}
