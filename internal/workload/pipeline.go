package workload

import (
	"lightzone/internal/mem"
	"lightzone/internal/trace"
)

// PipelineReport aggregates the execution-pipeline counters — TLB and
// decoded-block cache hits/misses, block and invalidation counts — after a
// representative domain-switching run, together with the module's trace
// summary. lzinspect renders it.
type PipelineReport struct {
	Result       DomainSwitchResult
	Stats        mem.Stats
	CachedBlocks int
	CacheEnabled bool
	TraceSummary string
	// Trace is the run's private event recorder. Fleet.PipelineSweep
	// returns one per machine; trace.Merge combines them deterministically.
	Trace *trace.Recorder
}

// RunPipelineInspection executes the Table 5 TTBR-gate microbenchmark on a
// fresh environment with tracing enabled and returns the pipeline counters
// the run accumulated.
func RunPipelineInspection(plat Platform, domains, iters int) (PipelineReport, error) {
	env, err := NewEnv(plat)
	if err != nil {
		return PipelineReport{}, err
	}
	rec := env.EnableTrace(4096)
	res, env, err := runDomainSwitch(DomainSwitchConfig{
		Platform: plat, Variant: VariantLZTTBR, Domains: domains, Iters: iters, Seed: 42,
	}, env)
	if err != nil {
		return PipelineReport{}, err
	}
	c := env.M.CPU
	return PipelineReport{
		Result:       res,
		Stats:        *c.Stats,
		CachedBlocks: c.DecodeCacheLen(),
		CacheEnabled: c.DecodeCacheEnabled(),
		TraceSummary: rec.Summary(),
		Trace:        rec,
	}, nil
}
