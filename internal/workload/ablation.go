package workload

import (
	"fmt"

	"lightzone/internal/arm64"
	"lightzone/internal/core"
	"lightzone/internal/hyp"
	"lightzone/internal/kernel"
	"lightzone/internal/mem"
)

// Ablations of the paper's §5.2 trap optimizations and §5.1.2 design
// choices: each ablation disables exactly one mechanism and measures the
// resulting cost on the path it protects, making every optimization's
// contribution causal and quantified.

// AblationResult is one ablation measurement.
type AblationResult struct {
	Name      string
	Metric    string
	Optimized float64
	Ablated   float64
}

// Factor returns the slowdown the ablation causes.
func (r AblationResult) Factor() float64 {
	if r.Optimized == 0 {
		return 0
	}
	return r.Ablated / r.Optimized
}

// RunAblations measures every ablation on one cost profile. The eight
// underlying measurements are independent (each boots a private machine),
// so they are sharded across a default-width fleet; see
// Fleet.AblationSweep for the row assembly.
func RunAblations(prof *arm64.Profile) ([]AblationResult, error) {
	return NewFleet(0).AblationSweep(prof)
}

// measureLZSyscallOpts measures a warm LightZone host syscall under the
// given optimization switches.
func measureLZSyscallOpts(prof *arm64.Profile, hopts hyp.Opts, copts core.Opts) (float64, error) {
	plat := Platform{prof, false}
	env, err := NewEnv(plat)
	if err != nil {
		return 0, err
	}
	env.M.Hyp.Opts = hopts
	env.K.DisableRetainOpt = hopts.DisableRetainRegs
	env.LZ.Opts = copts
	return measureSyscallInEnv(env, true)
}

// measureLZGuestSyscallOpts measures a warm guest LightZone syscall.
func measureLZGuestSyscallOpts(prof *arm64.Profile, hopts hyp.Opts) (float64, error) {
	plat := Platform{prof, true}
	env, err := NewEnv(plat)
	if err != nil {
		return 0, err
	}
	env.M.Hyp.Opts = hopts
	return measureSyscallInEnv(env, true)
}

// measureSyscallInEnv is measureSyscall against a pre-configured env.
func measureSyscallInEnv(env *Env, lz bool) (float64, error) {
	const iters = 64
	a := arm64.NewAsm()
	if lz {
		svcCall(a, core.SysLZEnter, 1, uint64(core.SanTTBR))
		hvcCall(a, SysMarkBegin)
		for i := 0; i < iters; i++ {
			hvcCall(a, kernel.SysGetpid)
		}
		hvcCall(a, SysMarkEnd)
		hvcCall(a, kernel.SysExit, 0)
	} else {
		svcCall(a, SysMarkBegin)
		for i := 0; i < iters; i++ {
			svcCall(a, kernel.SysGetpid)
		}
		svcCall(a, SysMarkEnd)
		svcCall(a, kernel.SysExit, 0)
	}
	p, err := env.NewProcess("ablation-probe", a, nil, nil)
	if err != nil {
		return 0, err
	}
	if err := env.Run(p, 1_000_000); err != nil {
		return 0, err
	}
	if p.Killed {
		return 0, fmt.Errorf("probe killed: %s", p.KillMsg)
	}
	m, err := env.Measured()
	if err != nil {
		return 0, err
	}
	return float64(m) / iters, nil
}

// measureFaultStorm touches many cold pages from inside LightZone; with
// eager stage-2 mapping each touch costs one forwarded stage-1 fault, with
// the ablation the first access after the stage-1 fix faults again at
// stage 2 (the paper's "back-to-back page faults").
func measureFaultStorm(prof *arm64.Profile, copts core.Opts) (float64, error) {
	const (
		pages = 64
		base  = uint64(0x5200_0000)
	)
	plat := Platform{prof, false}
	env, err := NewEnv(plat)
	if err != nil {
		return 0, err
	}
	env.LZ.Opts = copts
	a := arm64.NewAsm()
	svcCall(a, core.SysLZEnter, 1, uint64(core.SanTTBR))
	hvcCall(a, kernel.SysMmap, base, pages*mem.PageSize, uint64(kernel.ProtRead|kernel.ProtWrite))
	hvcCall(a, SysMarkBegin)
	a.MovImm(10, base)
	a.MovImm(11, pages)
	a.MovImm(12, mem.PageSize)
	a.Label("touch")
	a.Emit(arm64.STRImm(11, 10, 0, 3))
	a.Emit(arm64.ADDReg(10, 10, 12))
	a.Emit(arm64.SUBSImm(11, 11, 1))
	a.BCond(arm64.CondNE, "touch")
	hvcCall(a, SysMarkEnd)
	hvcCall(a, kernel.SysExit, 0)
	p, err := env.NewProcess("fault-probe", a, nil, nil)
	if err != nil {
		return 0, err
	}
	if err := env.Run(p, 1_000_000); err != nil {
		return 0, err
	}
	if p.Killed {
		return 0, fmt.Errorf("probe killed: %s", p.KillMsg)
	}
	m, err := env.Measured()
	if err != nil {
		return 0, err
	}
	return float64(m) / pages, nil
}
