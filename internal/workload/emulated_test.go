package workload

import (
	"math"
	"testing"

	"lightzone/internal/arm64"
)

// TestEmulatedTxnMatchesAnalyticModel cross-validates the two evaluation
// paths: the analytic request model (measured primitives composed per
// AppParams) and the end-to-end emulated transaction worker must agree on
// cycles per transaction for the same per-transaction structure.
func TestEmulatedTxnMatchesAnalyticModel(t *testing.T) {
	for _, profName := range []string{"CortexA55", "Carmel"} {
		t.Run(profName, func(t *testing.T) {
			prof, _ := arm64.ProfileByName(profName)
			plat := Platform{prof, false}
			pr, err := MeasurePrimitives(plat)
			if err != nil {
				t.Fatal(err)
			}
			params := AppParams{
				Name:           "cross-check",
				WorkCycles:     map[string]float64{profName: 50_000},
				SyscallsPerReq: 3,
				PanPairsPerReq: 8,
				// Analytic gate passes measured at 2 domains include one
				// access each, like the worker's.
				GatePassesPerReq: 2,
				Domains:          2,
				S2MissesPerReq:   map[string]float64{profName: 0},
			}
			for _, variant := range []Variant{VariantNone, VariantLZPAN, VariantLZTTBR} {
				analytic, err := pr.CyclesPerRequest(params, variant)
				if err != nil {
					t.Fatal(err)
				}
				emulated, err := RunEmulatedTxnWorker(EmulatedTxnConfig{
					Platform:   plat,
					Variant:    variant,
					Txns:       200,
					WorkCycles: 50_000,
					PanPairs:   8,
					GatePairs:  2,
					Syscalls:   3,
				})
				if err != nil {
					t.Fatal(err)
				}
				drift := math.Abs(emulated-analytic) / analytic
				t.Logf("%s %-14s analytic %.0f, emulated %.0f (drift %.1f%%)",
					profName, variant, analytic, emulated, drift*100)
				if drift > 0.12 {
					t.Errorf("%s: analytic model and emulation disagree by %.1f%%", variant, drift*100)
				}
			}
		})
	}
}
