package workload

import (
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"lightzone/internal/arm64"
	"lightzone/internal/kernel"
)

func TestFleetRunSequentialStopsAtFirstError(t *testing.T) {
	var visited []int
	err := NewFleet(1).Run(5, func(i int) error {
		visited = append(visited, i)
		if i == 2 {
			return fmt.Errorf("cell %d failed", i)
		}
		return nil
	})
	if err == nil || err.Error() != "cell 2 failed" {
		t.Fatalf("err = %v", err)
	}
	if !reflect.DeepEqual(visited, []int{0, 1, 2}) {
		t.Errorf("sequential sweep visited %v", visited)
	}
}

func TestFleetRunParallelCoversAllCellsAndReportsLowestError(t *testing.T) {
	const n = 37
	var counts [n]atomic.Int64
	err := NewFleet(8).Run(n, func(i int) error {
		counts[i].Add(1)
		if i == 30 || i == 11 {
			return fmt.Errorf("cell %d failed", i)
		}
		return nil
	})
	// The lowest-indexed failure wins regardless of which worker hit it
	// first — the same error the sequential sweep would have returned.
	if err == nil || err.Error() != "cell 11 failed" {
		t.Fatalf("err = %v", err)
	}
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Errorf("cell %d ran %d times", i, c)
		}
	}
}

// TestFleetNestedRunSharesWorkerBudget checks that a cell running an inner
// sweep through the same fleet (the FigureSweep -> PrewarmGates shape)
// draws extra workers from the shared slot pool: peak concurrency stays
// bounded by Workers instead of multiplying per nesting level, and nesting
// cannot deadlock because slot acquisition is non-blocking.
func TestFleetNestedRunSharesWorkerBudget(t *testing.T) {
	const workers = 4
	f := NewFleet(workers)
	var inFlight, peak atomic.Int64
	err := f.Run(workers, func(int) error {
		// The outer cell does no work of its own beyond the inner sweep, so
		// only the inner cells count as busy workers.
		return f.Run(workers, func(int) error {
			n := inFlight.Add(1)
			defer inFlight.Add(-1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond)
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("peak concurrency %d exceeded the %d-worker budget", p, workers)
	}
}

func TestFleetRunZeroCells(t *testing.T) {
	if err := NewFleet(4).Run(0, func(int) error { return errors.New("must not run") }); err != nil {
		t.Fatal(err)
	}
}

// fleetTestConfigs is a small cross-variant slice of the Table 5 matrix,
// cheap enough to measure twice in one test.
func fleetTestConfigs() []DomainSwitchConfig {
	cortex := Platform{Prof: arm64.ProfileCortexA55()}
	carmelGuest := Platform{Prof: arm64.ProfileCarmel(), Guest: true}
	return []DomainSwitchConfig{
		{Platform: cortex, Variant: VariantLZPAN, Domains: 1, Iters: 300, Seed: Table5Seed},
		{Platform: cortex, Variant: VariantLZTTBR, Domains: 8, Iters: 300, Seed: Table5Seed},
		{Platform: cortex, Variant: VariantWatchpoint, Domains: 3, Iters: 300, Seed: Table5Seed},
		{Platform: carmelGuest, Variant: VariantLZTTBR, Domains: 4, Iters: 300, Seed: Table5Seed},
		{Platform: cortex, Variant: VariantLwC, Domains: 4, Iters: 300, Seed: Table5Seed},
		{Platform: cortex, Variant: VariantLZTTBR, Domains: 32, Iters: 300, Seed: Table5Seed},
	}
}

// TestFleetSweepBitIdenticalToSequential is the fleet's core contract:
// sharding measurement cells across workers must not change a single
// measured value, TotalCycles included.
func TestFleetSweepBitIdenticalToSequential(t *testing.T) {
	cfgs := fleetTestConfigs()
	measure := func(f *Fleet) []DomainSwitchResult {
		out, err := fleetMap(f, len(cfgs), func(i int) (DomainSwitchResult, error) {
			return RunDomainSwitch(cfgs[i])
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	seq := measure(NewFleet(1))
	for _, workers := range []int{4, 8} {
		par := measure(NewFleet(workers))
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("workers=%d: results diverged from sequential\nseq: %+v\npar: %+v", workers, seq, par)
		}
	}
}

// TestCrossMachineIsolationInterleaved runs two machines' benchmark
// processes in alternating trap-budget slices on one goroutine and checks
// that every per-machine observable — emulated cycles, pipeline stats, TLB
// contents and intern tables, decode cache — matches an undisturbed solo
// run exactly. Any cross-machine state would skew at least one counter.
func TestCrossMachineIsolationInterleaved(t *testing.T) {
	cfg := DomainSwitchConfig{
		Platform: Platform{Prof: arm64.ProfileCortexA55()},
		Variant:  VariantLZTTBR, Domains: 8, Iters: 300, Seed: Table5Seed,
	}
	soloRes, soloEnv, err := runDomainSwitch(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}

	envA, pA, err := prepareDomainSwitch(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	envB, pB, err := prepareDomainSwitch(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	step := func(env *Env, p *kernel.Process, done *bool) {
		if *done {
			return
		}
		switch err := env.Run(p, 50); {
		case err == nil:
			*done = true
		case !errors.Is(err, kernel.ErrTrapBudget):
			t.Fatal(err)
		}
	}
	var doneA, doneB bool
	for i := 0; i < 1_000_000 && !(doneA && doneB); i++ {
		step(envA, pA, &doneA)
		step(envB, pB, &doneB)
	}
	if !doneA || !doneB {
		t.Fatal("interleaved runs did not finish")
	}
	for name, pair := range map[string]struct {
		env *Env
		p   *kernel.Process
	}{"A": {envA, pA}, "B": {envB, pB}} {
		env := pair.env
		if pair.p.Killed {
			t.Fatalf("machine %s: killed: %s", name, pair.p.KillMsg)
		}
		got, err := env.Measured()
		if err != nil {
			t.Fatalf("machine %s: %v", name, err)
		}
		if got != soloRes.TotalCycles {
			t.Errorf("machine %s: measured %d cycles, solo %d", name, got, soloRes.TotalCycles)
		}
		c, solo := env.M.CPU, soloEnv.M.CPU
		if *c.Stats != *solo.Stats {
			t.Errorf("machine %s: stats %+v, solo %+v", name, *c.Stats, *solo.Stats)
		}
		if c.TLB.Len() != solo.TLB.Len() || c.TLB.Hits != solo.TLB.Hits ||
			c.TLB.Misses != solo.TLB.Misses || c.TLB.ContextCount() != solo.TLB.ContextCount() {
			t.Errorf("machine %s: TLB (len=%d hits=%d misses=%d ctx=%d), solo (len=%d hits=%d misses=%d ctx=%d)",
				name, c.TLB.Len(), c.TLB.Hits, c.TLB.Misses, c.TLB.ContextCount(),
				solo.TLB.Len(), solo.TLB.Hits, solo.TLB.Misses, solo.TLB.ContextCount())
		}
		if c.DecodeCacheLen() != solo.DecodeCacheLen() {
			t.Errorf("machine %s: %d cached blocks, solo %d", name, c.DecodeCacheLen(), solo.DecodeCacheLen())
		}
		if c.Cycles != solo.Cycles || c.Insns != solo.Insns {
			t.Errorf("machine %s: total %d cycles / %d insns, solo %d / %d",
				name, c.Cycles, c.Insns, solo.Cycles, solo.Insns)
		}
	}
}

// TestCrossMachineIsolationConcurrent runs the same cell on four machines
// simultaneously (meaningful under -race: any shared mutable state in the
// emulator would trip the detector) and checks all results and pipeline
// counters against a solo run.
func TestCrossMachineIsolationConcurrent(t *testing.T) {
	cfg := DomainSwitchConfig{
		Platform: Platform{Prof: arm64.ProfileCortexA55()},
		Variant:  VariantLZTTBR, Domains: 8, Iters: 300, Seed: Table5Seed,
	}
	soloRes, soloEnv, err := runDomainSwitch(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	type cell struct {
		res DomainSwitchResult
		env *Env
	}
	cells, err := fleetMap(NewFleet(4), 4, func(int) (cell, error) {
		res, env, err := runDomainSwitch(cfg, nil)
		return cell{res, env}, err
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range cells {
		if c.res.TotalCycles != soloRes.TotalCycles || c.res.AvgCycles != soloRes.AvgCycles {
			t.Errorf("machine %d: %d cycles (avg %.2f), solo %d (avg %.2f)",
				i, c.res.TotalCycles, c.res.AvgCycles, soloRes.TotalCycles, soloRes.AvgCycles)
		}
		if *c.env.M.CPU.Stats != *soloEnv.M.CPU.Stats {
			t.Errorf("machine %d: stats %+v, solo %+v", i, *c.env.M.CPU.Stats, *soloEnv.M.CPU.Stats)
		}
		if c.env.M.CPU.TLB.Len() != soloEnv.M.CPU.TLB.Len() {
			t.Errorf("machine %d: TLB len %d, solo %d", i, c.env.M.CPU.TLB.Len(), soloEnv.M.CPU.TLB.Len())
		}
		if c.env.M.CPU.DecodeCacheLen() != soloEnv.M.CPU.DecodeCacheLen() {
			t.Errorf("machine %d: %d cached blocks, solo %d",
				i, c.env.M.CPU.DecodeCacheLen(), soloEnv.M.CPU.DecodeCacheLen())
		}
	}
}

// TestFleetTable5CellEnumeration pins the sweep's cell order to the
// historical sequential emission order lzbench prints.
func TestFleetTable5CellEnumeration(t *testing.T) {
	cells := Table5Cells(100)
	// 3 platforms x (6 LightZone cells + 3 watchpoint cells for d in {1,2,3}).
	if len(cells) != 3*9 {
		t.Fatalf("got %d cells", len(cells))
	}
	first := []struct {
		variant Variant
		domains int
	}{
		{VariantWatchpoint, 1}, {VariantLZPAN, 1},
		{VariantWatchpoint, 2}, {VariantLZTTBR, 2},
		{VariantWatchpoint, 3}, {VariantLZTTBR, 3},
		{VariantLZTTBR, 32}, {VariantLZTTBR, 64}, {VariantLZTTBR, 128},
	}
	for i, want := range first {
		if cells[i].PlatformName != "Carmel Host" || cells[i].Variant != want.variant || cells[i].Domains != want.domains {
			t.Errorf("cell %d = %s/%s/%d, want Carmel Host/%s/%d",
				i, cells[i].PlatformName, cells[i].Variant, cells[i].Domains, want.variant, want.domains)
		}
	}
	if cells[9].PlatformName != "Carmel Guest" || cells[18].PlatformName != "Cortex" {
		t.Errorf("platform grouping wrong: %s / %s", cells[9].PlatformName, cells[18].PlatformName)
	}
}

// TestPrewarmGatesMatchesLazyPath checks the fleet prewarm fills the caches
// with exactly the values the lazy path would have measured.
func TestPrewarmGatesMatchesLazyPath(t *testing.T) {
	plat := Platform{Prof: arm64.ProfileCortexA55()}
	lazy, err := MeasurePrimitives(plat)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := MeasurePrimitives(plat)
	if err != nil {
		t.Fatal(err)
	}
	const domains = 5
	if err := warm.PrewarmGates(NewFleet(4), []int{domains}); err != nil {
		t.Fatal(err)
	}
	if len(warm.gateCache) != 1 || len(warm.wpCache) != 1 || len(warm.lwcCache) != 1 {
		t.Fatalf("prewarm filled %d/%d/%d cache entries", len(warm.gateCache), len(warm.wpCache), len(warm.lwcCache))
	}
	for name, get := range map[string]func(*Primitives) (float64, error){
		"gate": func(pr *Primitives) (float64, error) { return pr.GatePass(domains) },
		"wp":   func(pr *Primitives) (float64, error) { return pr.WPSwitch(domains) },
		"lwc":  func(pr *Primitives) (float64, error) { return pr.LwCSwitch(domains) },
	} {
		want, err := get(lazy)
		if err != nil {
			t.Fatal(err)
		}
		got, err := get(warm)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("%s: prewarmed %v, lazy %v", name, got, want)
		}
	}
}
