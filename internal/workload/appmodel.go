package workload

import (
	"fmt"

	"lightzone/internal/arm64"
)

// Primitives are the per-operation cycle costs of one platform, measured
// by running the real emulated machinery (not table lookups): empty
// syscall roundtrips, call-gate passes at a given domain count, PAN toggle
// pairs, and the baseline switches. Application benchmarks compose these
// with workload-model parameters (see AppParams).
type Primitives struct {
	Plat Platform

	SyscallNormal float64 // ordinary EL0 process -> its kernel
	SyscallLZ     float64 // LightZone process -> its kernel

	PANPair float64 // set_pan(0) ... set_pan(1) plus one access

	gateCache map[int]float64
	wpCache   map[int]float64
	lwcCache  map[int]float64

	S1MissCost float64 // one stage-1 TLB refill
	S2MissCost float64 // one stage-2 TLB refill
}

// Per-domain-count primitives are measured with a fixed iteration count
// and seed so the lazy cache fills (GatePass et al.) and the fleet prewarm
// path (PrewarmGates) produce bit-identical values.
const (
	primitivesIters = 800
	primitivesSeed  = 11
)

// MeasurePrimitives boots environments for the platform and measures every
// primitive with the Table 4/5 machinery.
func MeasurePrimitives(plat Platform) (*Primitives, error) {
	pr := &Primitives{
		Plat:       plat,
		gateCache:  make(map[int]float64),
		wpCache:    make(map[int]float64),
		lwcCache:   make(map[int]float64),
		S1MissCost: float64(4 * plat.Prof.TLBWalkPerLevel),
		S2MissCost: float64(3 * plat.Prof.TLBWalkPerLevel),
	}
	var err error
	if pr.SyscallNormal, err = measureSyscall(plat, false); err != nil {
		return nil, fmt.Errorf("syscall: %w", err)
	}
	if pr.SyscallLZ, err = measureSyscall(plat, true); err != nil {
		return nil, fmt.Errorf("lz syscall: %w", err)
	}
	pan, err := RunDomainSwitch(DomainSwitchConfig{Platform: plat, Variant: VariantLZPAN, Domains: 1, Iters: primitivesIters, Seed: primitivesSeed})
	if err != nil {
		return nil, fmt.Errorf("pan pair: %w", err)
	}
	pr.PANPair = pan.AvgCycles
	return pr, nil
}

// measurePrimitive runs the domain-switch microbenchmark that backs every
// per-domain-count primitive, with the shared iteration count and seed.
func (pr *Primitives) measurePrimitive(v Variant, domains int) (float64, error) {
	res, err := RunDomainSwitch(DomainSwitchConfig{
		Platform: pr.Plat, Variant: v,
		Domains: domains, Iters: primitivesIters, Seed: primitivesSeed,
	})
	if err != nil {
		return 0, err
	}
	return res.AvgCycles, nil
}

// GatePass returns the measured cost of one secure-call-gate domain switch
// (plus one 8-byte access) with the given number of live domains.
func (pr *Primitives) GatePass(domains int) (float64, error) {
	if domains < 1 {
		domains = 1
	}
	if v, ok := pr.gateCache[domains]; ok {
		return v, nil
	}
	v, err := pr.measurePrimitive(VariantLZTTBR, domains)
	if err != nil {
		return 0, err
	}
	pr.gateCache[domains] = v
	return v, nil
}

// WPSwitch returns the measured cost of one watchpoint domain switch
// (trap inclusive). Domain counts above 16 are unsupported by the
// baseline; callers asking anyway get the 16-domain cost (the baseline
// simply cannot protect the rest).
func (pr *Primitives) WPSwitch(domains int) (float64, error) {
	if domains < 1 {
		domains = 1
	}
	if domains > 16 {
		domains = 16
	}
	if v, ok := pr.wpCache[domains]; ok {
		return v, nil
	}
	v, err := pr.measurePrimitive(VariantWatchpoint, domains)
	if err != nil {
		return 0, err
	}
	pr.wpCache[domains] = v
	return v, nil
}

// LwCSwitch returns the measured cost of one simulated-lwC switch.
func (pr *Primitives) LwCSwitch(domains int) (float64, error) {
	if domains < 1 {
		domains = 1
	}
	if v, ok := pr.lwcCache[domains]; ok {
		return v, nil
	}
	v, err := pr.measurePrimitive(VariantLwC, domains)
	if err != nil {
		return 0, err
	}
	pr.lwcCache[domains] = v
	return v, nil
}

// PrewarmGates measures the per-domain-count switch primitives (gate,
// watchpoint and lwC) for every given live-domain count through the fleet
// and fills the lazy caches. The caches are plain maps with no locking —
// their single-goroutine fill here, before any reader, is what lets one
// Primitives value serve a whole figure evaluation; the measured values
// are bit-identical to the lazy path because both share measurePrimitive.
func (pr *Primitives) PrewarmGates(f *Fleet, domains []int) error {
	type warmCell struct {
		cache   map[int]float64
		variant Variant
		domains int
	}
	var cells []warmCell
	add := func(cache map[int]float64, v Variant, d int) {
		if d < 1 {
			d = 1
		}
		if _, ok := cache[d]; ok {
			return
		}
		for _, c := range cells {
			if c.variant == v && c.domains == d {
				return
			}
		}
		cells = append(cells, warmCell{cache, v, d})
	}
	for _, d := range domains {
		add(pr.gateCache, VariantLZTTBR, d)
		// The baselines clamp their domain counts (see WPSwitch/LwCSwitch);
		// warm the clamped key the lazy path would consult.
		add(pr.wpCache, VariantWatchpoint, minInt(d, 16))
		add(pr.lwcCache, VariantLwC, minInt(d, 64))
	}
	vals, err := fleetMap(f, len(cells), func(i int) (float64, error) {
		return pr.measurePrimitive(cells[i].variant, cells[i].domains)
	})
	if err != nil {
		return err
	}
	for i, c := range cells {
		c.cache[c.domains] = vals[i]
	}
	return nil
}

// AppParams is a request-level workload model: how much bulk work a
// request performs and how many isolation operations of each kind it
// triggers. The counts come from the workload's structure (documented per
// workload); the per-platform work cycles and stage-2 miss counts are the
// calibrated constants of the reproduction (EXPERIMENTS.md lists them
// against the paper's reported overheads).
type AppParams struct {
	Name string

	// WorkCycles is the vanilla request's compute+memory cost, keyed by
	// profile name.
	WorkCycles map[string]float64

	// SyscallsPerReq is the number of kernel crossings per request.
	SyscallsPerReq float64

	// Isolation operation counts per request, per mechanism.
	GatePassesPerReq  float64
	PanPairsPerReq    float64
	WPSwitchesPerReq  float64
	LwCSwitchesPerReq float64

	// Domains is the live domain count (drives gate TLB pressure).
	Domains int

	// S2MissesPerReq models the stage-2 paging overhead of running in a
	// LightZone VM (extra TLB refill work), keyed by profile name.
	S2MissesPerReq map[string]float64

	// TTBRS1MissesPerReq models the extra stage-1 refills caused by
	// non-global (ASID-tagged) domain mappings under TTBR isolation.
	TTBRS1MissesPerReq float64
}

// CyclesPerRequest composes the measured primitives with the workload
// model for one variant.
func (pr *Primitives) CyclesPerRequest(p AppParams, v Variant) (float64, error) {
	prof := pr.Plat.Prof.Name
	w := p.WorkCycles[prof]
	if w == 0 {
		return 0, fmt.Errorf("workload %s has no work-cycle calibration for %s", p.Name, prof)
	}
	s2 := p.S2MissesPerReq[prof]
	switch v {
	case VariantNone:
		return w + p.SyscallsPerReq*pr.SyscallNormal, nil
	case VariantLZPAN:
		return w + p.SyscallsPerReq*pr.SyscallLZ +
			p.PanPairsPerReq*pr.PANPair +
			s2*pr.S2MissCost, nil
	case VariantLZTTBR:
		gate, err := pr.GatePass(p.Domains)
		if err != nil {
			return 0, err
		}
		return w + p.SyscallsPerReq*pr.SyscallLZ +
			p.GatePassesPerReq*gate +
			p.TTBRS1MissesPerReq*pr.S1MissCost +
			s2*pr.S2MissCost, nil
	case VariantWatchpoint:
		wp, err := pr.WPSwitch(p.Domains)
		if err != nil {
			return 0, err
		}
		return w + p.SyscallsPerReq*pr.SyscallNormal +
			p.WPSwitchesPerReq*wp, nil
	case VariantLwC:
		lwc, err := pr.LwCSwitch(minInt(p.Domains, 64))
		if err != nil {
			return 0, err
		}
		return w + p.SyscallsPerReq*pr.SyscallNormal +
			p.LwCSwitchesPerReq*lwc, nil
	}
	return 0, fmt.Errorf("unknown variant %q", v)
}

// OverheadPct returns the relative throughput/time overhead of a variant
// against the unprotected configuration.
func (pr *Primitives) OverheadPct(p AppParams, v Variant) (float64, error) {
	base, err := pr.CyclesPerRequest(p, VariantNone)
	if err != nil {
		return 0, err
	}
	cur, err := pr.CyclesPerRequest(p, v)
	if err != nil {
		return 0, err
	}
	return (cur - base) / cur * 100, nil
}

// measureSyscall measures an empty getpid roundtrip using the marker
// machinery, for ordinary and LightZone processes.
func measureSyscall(plat Platform, lz bool) (float64, error) {
	env, err := NewEnv(plat)
	if err != nil {
		return 0, err
	}
	const iters = 64
	a := arm64.NewAsm()
	if lz {
		svcCall(a, 460, 1, 1) // lz_enter(true, SanTTBR)
		hvcCall(a, SysMarkBegin)
		for i := 0; i < iters; i++ {
			hvcCall(a, 172) // getpid
		}
		hvcCall(a, SysMarkEnd)
		hvcCall(a, 93, 0)
	} else {
		svcCall(a, SysMarkBegin)
		for i := 0; i < iters; i++ {
			svcCall(a, 172)
		}
		svcCall(a, SysMarkEnd)
		svcCall(a, 93, 0)
	}
	p, err := env.NewProcess("syscall-probe", a, nil, nil)
	if err != nil {
		return 0, err
	}
	if err := env.Run(p, 1_000_000); err != nil {
		return 0, err
	}
	if p.Killed {
		return 0, fmt.Errorf("probe killed: %s", p.KillMsg)
	}
	m, err := env.Measured()
	if err != nil {
		return 0, err
	}
	return float64(m) / iters, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
