package workload

import (
	"testing"

	"lightzone/internal/baseline"
	"lightzone/internal/core"
)

// TestTable1Claims encodes the paper's comparison table as executable
// assertions: LightZone is the row with scalability (2^16), efficiency
// (no trap on switch), security, and pre-compiled-binary support all
// satisfied, against the baselines' limitations.
func TestTable1Claims(t *testing.T) {
	plat := AllPlatforms()[2] // Cortex host: the fastest to measure

	t.Run("scalability", func(t *testing.T) {
		if core.MaxPageTables != 1<<16 {
			t.Errorf("LightZone domain limit = %d, paper claims 2^16", core.MaxPageTables)
		}
		if baseline.MaxWatchpointDomains != 16 {
			t.Errorf("watchpoint limit = %d, paper says 16", baseline.MaxWatchpointDomains)
		}
		// 128 domains work under LightZone, 17 fail under Watchpoint.
		if _, err := RunDomainSwitch(DomainSwitchConfig{Platform: plat, Variant: VariantLZTTBR, Domains: 128, Iters: 50, Seed: 1}); err != nil {
			t.Errorf("128 LightZone domains: %v", err)
		}
		if _, err := RunDomainSwitch(DomainSwitchConfig{Platform: plat, Variant: VariantWatchpoint, Domains: 17, Iters: 50, Seed: 1}); err == nil {
			t.Error("17 watchpoint domains accepted")
		}
	})

	t.Run("efficiency", func(t *testing.T) {
		// A LightZone switch must be far below one syscall trap (it
		// never enters the kernel); the watchpoint baseline must be
		// above one trap (it always does).
		sysCost, err := measureSyscall(plat, false)
		if err != nil {
			t.Fatal(err)
		}
		lz, err := RunDomainSwitch(DomainSwitchConfig{Platform: plat, Variant: VariantLZTTBR, Domains: 2, Iters: 500, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		wp, err := RunDomainSwitch(DomainSwitchConfig{Platform: plat, Variant: VariantWatchpoint, Domains: 2, Iters: 500, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if lz.AvgCycles >= sysCost {
			t.Errorf("LightZone switch (%.0f) not below a syscall (%.0f)", lz.AvgCycles, sysCost)
		}
		if wp.AvgCycles <= sysCost {
			t.Errorf("watchpoint switch (%.0f) not above a syscall (%.0f)", wp.AvgCycles, sysCost)
		}
	})

	t.Run("security-and-pcb", func(t *testing.T) {
		// The §7.2 battery doubles as the security/PCB evidence: the
		// attack binaries are "pre-compiled" (raw instruction words, no
		// compiler cooperation) and every attack is blocked.
		results, err := RunPentest(plat)
		if err != nil {
			t.Fatal(err)
		}
		blocked := 0
		for _, r := range results {
			if r.Blocked {
				blocked++
			}
		}
		if blocked != 6 {
			t.Errorf("blocked %d/6 attacks", blocked)
		}
	})
}
