package workload

import (
	"testing"

	"lightzone/internal/arm64"
	"lightzone/internal/baseline"
)

// paperTable5 holds the published Table 5 cells: average cycles of
// switches (with secure call gate) between distinct numbers of protected
// domains.
type t5Row struct {
	platform Platform
	variant  Variant
	domains  int
	want     float64
	tolPct   float64
}

func carmel() *arm64.Profile { return arm64.ProfileCarmel() }
func cortex() *arm64.Profile { return arm64.ProfileCortexA55() }

func TestTable5MatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("table 5 sweep is slow")
	}
	rows := []t5Row{
		// Carmel Host row.
		{Platform{carmel(), false}, VariantLZPAN, 1, 22, 80},
		{Platform{carmel(), false}, VariantLZTTBR, 2, 477, 15},
		{Platform{carmel(), false}, VariantLZTTBR, 128, 490, 15},
		{Platform{carmel(), false}, VariantWatchpoint, 1, 6759, 12},
		// Carmel Guest row.
		{Platform{carmel(), true}, VariantLZTTBR, 2, 495, 15},
		{Platform{carmel(), true}, VariantLZTTBR, 128, 507, 15},
		{Platform{carmel(), true}, VariantWatchpoint, 1, 2710, 12},
		// Cortex row.
		{Platform{cortex(), false}, VariantLZPAN, 1, 11, 100},
		{Platform{cortex(), false}, VariantLZTTBR, 2, 59, 35},
		{Platform{cortex(), false}, VariantLZTTBR, 128, 82, 35},
		{Platform{cortex(), false}, VariantWatchpoint, 1, 915, 12},
	}
	for _, row := range rows {
		res, err := RunDomainSwitch(DomainSwitchConfig{
			Platform: row.platform, Variant: row.variant,
			Domains: row.domains, Iters: 2000, Seed: 42,
		})
		if err != nil {
			t.Errorf("%v/%v/%d: %v", row.platform, row.variant, row.domains, err)
			continue
		}
		lo := row.want * (1 - row.tolPct/100)
		hi := row.want * (1 + row.tolPct/100)
		if res.AvgCycles < lo || res.AvgCycles > hi {
			t.Errorf("%v %v %d domains: %.1f cycles, paper %.0f (tol ±%.0f%%)",
				row.platform, row.variant, row.domains, res.AvgCycles, row.want, row.tolPct)
		}
	}
}

// Structural claims of Table 5 that must hold on every platform.
func TestTable5Ordering(t *testing.T) {
	for _, plat := range AllPlatforms() {
		pan, err := RunDomainSwitch(DomainSwitchConfig{Platform: plat, Variant: VariantLZPAN, Domains: 1, Iters: 500, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		ttbr2, err := RunDomainSwitch(DomainSwitchConfig{Platform: plat, Variant: VariantLZTTBR, Domains: 2, Iters: 500, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		ttbr128, err := RunDomainSwitch(DomainSwitchConfig{Platform: plat, Variant: VariantLZTTBR, Domains: 128, Iters: 500, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		wp, err := RunDomainSwitch(DomainSwitchConfig{Platform: plat, Variant: VariantWatchpoint, Domains: 2, Iters: 500, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		if !(pan.AvgCycles < ttbr2.AvgCycles && ttbr2.AvgCycles < wp.AvgCycles) {
			t.Errorf("%v: ordering violated: pan=%.1f ttbr=%.1f wp=%.1f",
				plat, pan.AvgCycles, ttbr2.AvgCycles, wp.AvgCycles)
		}
		if ttbr128.AvgCycles < ttbr2.AvgCycles {
			t.Errorf("%v: no TLB-pressure growth: 2 domains %.1f vs 128 domains %.1f",
				plat, ttbr2.AvgCycles, ttbr128.AvgCycles)
		}
	}
}

// Scalability wall: the watchpoint baseline cannot express more than 16
// domains (Table 1), while LightZone handles 128 in the same benchmark.
func TestWatchpointSixteenDomainWall(t *testing.T) {
	plat := Platform{cortex(), false}
	_, err := RunDomainSwitch(DomainSwitchConfig{Platform: plat, Variant: VariantWatchpoint, Domains: 17, Iters: 10, Seed: 1})
	if err == nil {
		t.Fatal("17 watchpoint domains accepted")
	}
	if _, err := RunDomainSwitch(DomainSwitchConfig{Platform: plat, Variant: VariantWatchpoint, Domains: baseline.MaxWatchpointDomains, Iters: 100, Seed: 1}); err != nil {
		t.Errorf("16 watchpoint domains rejected: %v", err)
	}
	if _, err := RunDomainSwitch(DomainSwitchConfig{Platform: plat, Variant: VariantLZTTBR, Domains: 128, Iters: 100, Seed: 1}); err != nil {
		t.Errorf("128 LightZone domains rejected: %v", err)
	}
}
