package workload

import (
	"strings"
	"testing"

	"lightzone/internal/arm64"
	"lightzone/internal/core"
	"lightzone/internal/kernel"
	"lightzone/internal/mem"
	"lightzone/internal/verify"
)

func carmelHost() Platform { return Platform{Prof: arm64.ProfileCarmel()} }

// buildLifecycle assembles the shared conformance script: enter → allocate
// three domains → protect one page each in domains 1 and 2 → switch into
// domain 1 → legally access its page → free the idle domain 3 → touch
// domain 2's page from domain 1. The last access must kill the process
// with the backend's documented fault class; everything before it must
// succeed. Only the enter arguments and the switch instruction sequence
// differ per backend — the lifecycle itself is substrate-invariant.
func buildLifecycle(a *arm64.Asm, backend string) []core.GateEntry {
	page0 := domainRegionBase
	page1 := domainRegionBase + domainRegionStride
	scalable, pol := backendEnter(backend)
	svcCall(a, core.SysLZEnter, scalable, uint64(pol))
	hvcCall(a, core.SysLZAlloc)
	hvcCall(a, core.SysLZAlloc)
	hvcCall(a, core.SysLZAlloc)
	if backend == "lightzone" {
		hvcCall(a, core.SysLZMapGatePgt, 1, 0)
	}
	hvcCall(a, core.SysLZProt, page0, mem.PageSize, 1, core.PermRead|core.PermWrite)
	hvcCall(a, core.SysLZProt, page1, mem.PageSize, 2, core.PermRead|core.PermWrite)
	switch backend {
	case "lightzone":
		a.MovImm(13, core.GateCodeBase())
		a.ADR(30, "in1")
		a.Emit(arm64.BR(13))
		a.Label("in1")
	case "overlay":
		a.MovImm(14, 1)
		core.EmitOverlaySwitch(a, 14)
	case "granule":
		a.MovImm(0, 1)
		core.EmitGranuleEnter(a)
	}
	// Legal: domain 1 reads its own page.
	a.MovImm(13, page0)
	a.Emit(arm64.LDRImm(9, 13, 0, 3))
	// Free the idle spare domain.
	hvcCall(a, core.SysLZFree, 3)
	// Violation: domain 1 reads domain 2's page. Must not return.
	a.MovImm(13, page1)
	a.Emit(arm64.LDRImm(9, 13, 0, 3))
	hvcCall(a, kernel.SysExit, 0)
	if backend == "lightzone" {
		off, err := a.Offset("in1")
		if err != nil {
			return nil
		}
		return []core.GateEntry{{GateID: 0, Entry: uint64(off)}}
	}
	return nil
}

// TestBackendLifecycleConformance drives every registered backend through
// the same lifecycle script and asserts the documented per-backend fault
// class, the shared observer-event sequence, and that the post-mortem
// machine verifies clean under the backend's own checker registry.
func TestBackendLifecycleConformance(t *testing.T) {
	wantKill := map[string]string{
		"lightzone": "not mapped by current page table",
		"overlay":   "overlay key mismatch",
		"granule":   "granule protection fault",
	}
	// The lifecycle chokepoints every backend must announce, in order.
	// Backend-specific extras (gate binding, sanitizer passes) are filtered
	// out: the shared contract is about the shared lifecycle.
	lifecycle := map[string]bool{
		"lz_enter": true, "lz_alloc": true, "lz_prot": true, "lz_free": true,
	}
	wantEvents := []string{
		"lz_enter", "lz_alloc", "lz_alloc", "lz_alloc",
		"lz_prot", "lz_prot", "lz_free",
	}
	for _, backend := range core.Backends() {
		t.Run(backend, func(t *testing.T) {
			env, err := NewEnvBackend(carmelHost(), backend)
			if err != nil {
				t.Fatal(err)
			}
			var events []string
			env.LZ.Observer = func(event string, lp *core.LZProc) {
				if lifecycle[event] {
					events = append(events, event)
				}
			}
			a := arm64.NewAsm()
			entries := buildLifecycle(a, backend)
			p, err := env.NewProcess("lifecycle", a, nil, entries, kernel.VMA{
				Start: mem.VA(domainRegionBase),
				End:   mem.VA(domainRegionBase + 2*domainRegionStride),
				Prot:  kernel.ProtRead | kernel.ProtWrite,
				Name:  "domains",
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := env.Run(p, 100_000); err != nil {
				t.Fatal(err)
			}
			if !p.Killed {
				t.Fatalf("cross-domain access survived under %s", backend)
			}
			if !strings.Contains(p.KillMsg, wantKill[backend]) {
				t.Fatalf("kill message %q does not carry the %s fault class %q",
					p.KillMsg, backend, wantKill[backend])
			}
			if len(events) != len(wantEvents) {
				t.Fatalf("observer saw %v, want %v", events, wantEvents)
			}
			for i := range events {
				if events[i] != wantEvents[i] {
					t.Fatalf("observer event %d is %q, want %q (%v)", i, events[i], wantEvents[i], events)
				}
			}
			procs := env.LZ.Procs()
			if len(procs) != 1 || procs[0].BackendName() != backend {
				t.Fatalf("process backend not recorded: %v", procs)
			}
			rep, err := verify.RunMachine(env.M, env.LZ)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Clean() {
				t.Fatalf("post-mortem machine not clean under %s registry: %v", backend, rep.Findings)
			}
			wantChecker := map[string]string{
				"lightzone": "gate-integrity",
				"overlay":   "overlay-keys",
				"granule":   "granule-state",
			}[backend]
			found := false
			for _, c := range rep.Checkers {
				found = found || c.Name == wantChecker
			}
			if !found {
				t.Fatalf("report ran %v; expected the %s substrate checker %q", rep.Checkers, backend, wantChecker)
			}
		})
	}
}

// TestBackendRegistry pins the registry surface: the three backends, the
// unknown-name error, and per-backend checker selection.
func TestBackendRegistry(t *testing.T) {
	got := core.Backends()
	want := []string{"granule", "lightzone", "overlay"} // sorted
	if len(got) != len(want) {
		t.Fatalf("Backends() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Backends() = %v, want %v", got, want)
		}
	}
	if _, err := core.NewBackend("enclave"); err == nil {
		t.Fatal("unknown backend accepted")
	}
	if _, err := NewEnvBackend(carmelHost(), "enclave"); err == nil {
		t.Fatal("NewEnvBackend accepted an unknown backend")
	}
	for backend, slot := range map[string]string{
		"lightzone": "gate-integrity",
		"overlay":   "overlay-keys",
		"granule":   "granule-state",
	} {
		names := make([]string, 0, 5)
		for _, c := range verify.CheckersFor(backend) {
			names = append(names, c.Name)
		}
		found := false
		for _, n := range names {
			found = found || n == slot
		}
		if !found {
			t.Fatalf("CheckersFor(%s) = %v, missing %s", backend, names, slot)
		}
	}
}

// TestBackendSwitchMeasures runs the three switch benchmarks at a small
// configuration and sanity-checks the cost ordering the backends' models
// promise: the granule switch pays a trap round trip and must dominate;
// the overlay and gate switches stay trap-free.
func TestBackendSwitchMeasures(t *testing.T) {
	cost := map[string]float64{}
	for _, b := range BackendOrder() {
		v, err := RunBackendSwitch(BackendSwitchConfig{
			Platform: carmelHost(), Backend: b, Domains: 8, Iters: 64, Seed: Table5Seed,
		})
		if err != nil {
			t.Fatalf("%s: %v", b, err)
		}
		if v <= 0 {
			t.Fatalf("%s: non-positive switch cost %v", b, v)
		}
		cost[b] = v
	}
	if cost["granule"] <= cost["lightzone"] || cost["granule"] <= cost["overlay"] {
		t.Fatalf("granule switch should pay a trap round trip: %v", cost)
	}
	// On Carmel an EL1 system-register write costs hundreds of cycles, so
	// the overlay switch is NOT meaningfully cheaper than a gate pass —
	// that platform contrast is the point of the comparison matrix. On
	// Cortex-A55 the same write costs single digits and overlay must win.
	cortex := Platform{Prof: arm64.ProfileCortexA55()}
	ov, err := RunBackendSwitch(BackendSwitchConfig{Platform: cortex, Backend: "overlay", Domains: 8, Iters: 64, Seed: Table5Seed})
	if err != nil {
		t.Fatal(err)
	}
	gate, err := RunBackendSwitch(BackendSwitchConfig{Platform: cortex, Backend: "lightzone", Domains: 8, Iters: 64, Seed: Table5Seed})
	if err != nil {
		t.Fatal(err)
	}
	if ov >= gate {
		t.Fatalf("on Cortex-A55 the overlay switch (%v) should undercut the gate pass (%v)", ov, gate)
	}
}

// TestBackendProtAndSyscall sanity-checks the remaining matrix metrics: the
// granule lz_prot pays two hypervisor round trips per page and must
// dominate, and the syscall path is substrate-invariant (identical cycles
// under all three backends).
func TestBackendProtAndSyscall(t *testing.T) {
	prot := map[string]float64{}
	var sys []float64
	for _, b := range BackendOrder() {
		v, err := measureBackendProt(carmelHost(), b)
		if err != nil {
			t.Fatalf("%s prot: %v", b, err)
		}
		prot[b] = v
		s, err := measureBackendSyscall(carmelHost(), b)
		if err != nil {
			t.Fatalf("%s syscall: %v", b, err)
		}
		sys = append(sys, s)
	}
	if prot["granule"] <= prot["lightzone"] || prot["granule"] <= prot["overlay"] {
		t.Fatalf("granule delegation should dominate lz_prot: %v", prot)
	}
	for i := 1; i < len(sys); i++ {
		if sys[i] != sys[0] {
			t.Fatalf("syscall roundtrip should be substrate-invariant: %v", sys)
		}
	}
}

// TestBackendCrossIsolation proves the cross-backend claim of the planted
// battery: the substrate-invariant attacks (W-xor-X flip, smuggled word)
// are caught on every backend's machine — by the same substrate-invariant
// checker, not by luck of the default registry.
func TestBackendCrossIsolation(t *testing.T) {
	attacks := []func(string) plantedAttack{attackWXFlip, attackSmuggledWord}
	for _, b := range core.Backends() {
		for _, mk := range attacks {
			atk := mk(b)
			env, va, _, err := atk.build(carmelHost())
			if err != nil {
				t.Fatalf("%s/%s: %v", b, atk.name, err)
			}
			rep, err := verify.RunMachine(env.M, env.LZ)
			if err != nil {
				t.Fatalf("%s/%s: %v", b, atk.name, err)
			}
			caught := false
			for _, fd := range rep.Findings {
				caught = caught || (fd.Checker == atk.checker && fd.VA == va)
			}
			if !caught {
				t.Fatalf("%s not caught by %s on the %s machine (%d findings)",
					atk.name, atk.checker, b, len(rep.Findings))
			}
		}
	}
}

// TestPlantedSweepBackends runs the full per-backend batteries: every
// attack must be caught by its designated checker at the planted address.
func TestPlantedSweepBackends(t *testing.T) {
	f := NewFleet(0)
	for _, b := range core.Backends() {
		res, err := f.PlantedSweepBackend(carmelHost(), b)
		if err != nil {
			t.Fatalf("%s: %v", b, err)
		}
		for _, r := range res {
			if !r.Caught {
				t.Fatalf("%s/%s not caught", b, r.Name)
			}
		}
	}
}
