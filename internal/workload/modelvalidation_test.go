package workload

import (
	"testing"

	"lightzone/internal/arm64"
	"lightzone/internal/core"
	"lightzone/internal/kernel"
)

// TestNVMSearchModelAnchor validates the NVM workload model's central
// constant against reality: the paper reports each substring search costs
// 7,000-8,500 cycles on both SoCs (§9.3); the model charges
// nvmParams.WorkCycles per search. Here an actual byte-scan search runs on
// the emulator inside a LightZone domain, and its measured cost must land
// in the same range the model assumes.
func TestNVMSearchModelAnchor(t *testing.T) {
	for _, plat := range []Platform{
		{arm64.ProfileCarmel(), false},
		{arm64.ProfileCortexA55(), false},
	} {
		t.Run(plat.Prof.Name, func(t *testing.T) {
			env, err := NewEnv(plat)
			if err != nil {
				t.Fatal(err)
			}
			// Haystack: ~1KB of zeros with the needle byte near the
			// end, so the scan walks most of the buffer (the paper's
			// searches have "fixed time complexity").
			const needleAt = 900
			hay := make([]byte, 1024)
			hay[needleAt] = 0xEE

			a := arm64.NewAsm()
			svcCall(a, core.SysLZEnter, 0, uint64(core.SanPAN))
			hvcCall(a, core.SysLZProt, uint64(kernel.DataBase), 4096, 0,
				core.PermRead|core.PermWrite|core.PermUser)
			// Warm pass (fault the page in, fill the TLB).
			core.EmitSetPAN(a, 0)
			a.MovImm(10, uint64(kernel.DataBase))
			a.Emit(arm64.LDRImm(11, 10, 0, 0))
			core.EmitSetPAN(a, 1)
			// Measured search: scan for 0xEE.
			hvcCall(a, SysMarkBegin)
			core.EmitSetPAN(a, 0)
			a.MovImm(10, uint64(kernel.DataBase))
			a.MovImm(12, 0xEE)
			a.Label("scan")
			a.Emit(arm64.LDRImm(11, 10, 0, 0))
			a.Emit(arm64.ADDImm(10, 10, 1, false))
			a.Emit(arm64.SUBSReg(9, 11, 12))
			a.BCond(arm64.CondNE, "scan")
			core.EmitSetPAN(a, 1)
			hvcCall(a, SysMarkEnd)
			hvcCall(a, kernel.SysExit, 0)

			p, err := env.NewProcess("search", a, hay, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := env.Run(p, 1_000_000); err != nil {
				t.Fatal(err)
			}
			if p.Killed {
				t.Fatalf("killed: %s", p.KillMsg)
			}
			got, err := env.Measured()
			if err != nil {
				t.Fatal(err)
			}
			// The paper's band with slack for our scan's exact shape.
			if got < 4_500 || got > 12_000 {
				t.Errorf("emulated search = %d cycles, paper reports 7,000-8,500", got)
			}
			model := nvmParams.WorkCycles[plat.Prof.Name]
			ratio := float64(got) / model
			if ratio < 0.55 || ratio > 1.6 {
				t.Errorf("model anchor drift: emulated %d vs modelled %.0f (%.2fx)", got, model, ratio)
			}
			t.Logf("%s: emulated search %d cycles (model %.0f)", plat.Prof.Name, got, model)
		})
	}
}
