// Package workload implements the paper's evaluation workloads: the
// domain-switching microbenchmark (Table 5), the Nginx/OpenSSL key
// protection model (Figure 3), the MySQL OLTP model (Figure 4), the NVM
// data-structure benchmark (Figure 5), and the §7.2 penetration tests. The
// isolation machinery — call gates, PAN toggles, traps, page faults — runs
// natively on the emulator; bulk application work charges calibrated cycle
// costs (see DESIGN.md).
package workload

import (
	"fmt"

	"lightzone/internal/arm64"
	"lightzone/internal/baseline"
	"lightzone/internal/core"
	"lightzone/internal/cpu"
	"lightzone/internal/hyp"
	"lightzone/internal/kernel"
	"lightzone/internal/trace"
)

// Variant selects the isolation mechanism under evaluation.
type Variant string

// Evaluated variants (the five curves of Figures 3-5).
const (
	VariantNone       Variant = "original"
	VariantLZPAN      Variant = "lightzone-pan"
	VariantLZTTBR     Variant = "lightzone-ttbr"
	VariantWatchpoint Variant = "watchpoint"
	VariantLwC        Variant = "lwc"
)

// Variants lists all evaluated variants in the paper's presentation order.
func Variants() []Variant {
	return []Variant{VariantNone, VariantLZPAN, VariantLZTTBR, VariantWatchpoint, VariantLwC}
}

// Platform selects a cost profile and host/guest placement — the four
// platform columns of the paper's figures (Carmel Host/Guest, Cortex
// Host/Guest).
type Platform struct {
	Prof  *arm64.Profile
	Guest bool
}

func (p Platform) String() string {
	pos := "Host"
	if p.Guest {
		pos = "Guest"
	}
	return p.Prof.Name + " " + pos
}

// AllPlatforms returns the four evaluation platforms.
func AllPlatforms() []Platform {
	return []Platform{
		{arm64.ProfileCarmel(), false},
		{arm64.ProfileCarmel(), true},
		{arm64.ProfileCortexA55(), false},
		{arm64.ProfileCortexA55(), true},
	}
}

// Marker module syscall numbers (measurement probes).
const (
	SysMarkBegin = 480
	SysMarkEnd   = 481
)

// markerUnset is the sentinel for a mark that was never placed. Cycle
// counts are non-negative, so it can never collide with a real mark.
const markerUnset int64 = -1

// Marker records vCPU cycle counts at program-selected points. Marks carry
// the unset sentinel until the program places them; Env.NewProcess resets
// the marker so one run can never read the previous run's interval.
type Marker struct {
	c     *cpu.VCPU
	Begin int64
	End   int64
}

// Reset clears both marks to the unset sentinel.
func (m *Marker) Reset() { m.Begin, m.End = markerUnset, markerUnset }

var _ kernel.Module = (*Marker)(nil)

// HandleExit implements kernel.Module.
func (m *Marker) HandleExit(k *kernel.Kernel, t *kernel.Thread, exit cpu.Exit) (bool, error) {
	return false, nil
}

// Syscall implements kernel.Module.
func (m *Marker) Syscall(k *kernel.Kernel, t *kernel.Thread, num int, args [6]uint64) (uint64, bool, error) {
	switch num {
	case SysMarkBegin:
		m.Begin = m.c.Cycles
		return 0, true, nil
	case SysMarkEnd:
		m.End = m.c.Cycles
		return 0, true, nil
	}
	return 0, false, nil
}

// Env is a booted evaluation environment: a machine with the LightZone
// module, both baselines, and the measurement marker installed on the
// process-owning kernel (the host kernel, or a guest VM's kernel).
type Env struct {
	Platform Platform
	M        *hyp.Machine
	K        *kernel.Kernel
	VM       *hyp.VM
	LZ       *core.LightZone
	WP       *baseline.Watchpoint
	LWC      *baseline.LwC
	Marks    *Marker
}

// EnableTrace attaches an event recorder to the LightZone module and
// returns it.
func (e *Env) EnableTrace(capacity int) *trace.Recorder {
	rec := trace.NewRecorder(capacity)
	e.LZ.Trace = rec
	return rec
}

// NewEnv boots an environment for the platform.
func NewEnv(p Platform) (*Env, error) {
	m := hyp.NewMachine(p.Prof, 4<<30)
	e := &Env{
		Platform: p,
		M:        m,
		LZ:       core.New(m.Hyp),
		WP:       baseline.NewWatchpoint(),
		LWC:      baseline.NewLwC(),
		Marks:    &Marker{c: m.CPU, Begin: markerUnset, End: markerUnset},
	}
	if p.Guest {
		vm, err := m.NewGuestVM("guest")
		if err != nil {
			return nil, err
		}
		e.VM = vm
		e.K = vm.Kernel
		core.InstallLowvisor(m.Hyp, e.LZ)
	} else {
		e.K = m.Host
	}
	e.K.Module = kernel.ModuleMux{e.LZ, e.WP, e.LWC, e.Marks}
	return e, nil
}

// NewEnvBackend boots an environment whose LightZone module uses the named
// isolation backend. The default backend is "lightzone"; passing it here is
// equivalent to NewEnv.
func NewEnvBackend(p Platform, backend string) (*Env, error) {
	e, err := NewEnv(p)
	if err != nil {
		return nil, err
	}
	if err := e.LZ.SetBackend(backend); err != nil {
		return nil, err
	}
	return e, nil
}

// NewProcess assembles a program and creates a process, registering any
// gate entries (resolved relative to the text base).
func (e *Env) NewProcess(name string, a *arm64.Asm, data []byte, entries []core.GateEntry, extra ...kernel.VMA) (*kernel.Process, error) {
	words, err := a.Assemble()
	if err != nil {
		return nil, fmt.Errorf("assemble %s: %w", name, err)
	}
	p, err := e.K.CreateProcess(name, kernel.Program{Text: words, Data: data, Extra: extra})
	if err != nil {
		return nil, err
	}
	// Fresh process, fresh measurement window: without this reset an
	// aborted run would silently report the previous run's interval.
	// (The reset lives here, not in Run — the chaos engine legitimately
	// drives one process through many Run slices and reads Measured after.)
	e.Marks.Reset()
	resolved := make([]core.GateEntry, len(entries))
	for i, ge := range entries {
		resolved[i] = core.GateEntry{GateID: ge.GateID, Entry: uint64(kernel.TextBase) + ge.Entry}
	}
	e.LZ.RegisterGateEntries(p, resolved)
	return p, nil
}

// Run executes a process to completion.
func (e *Env) Run(p *kernel.Process, maxTraps int64) error {
	if e.Platform.Guest {
		return e.M.RunGuestProcess(e.VM, p, maxTraps)
	}
	return e.M.RunHostProcess(p, maxTraps)
}

// Measured returns the cycles between the program's begin/end markers. A
// run that placed no markers at all reads 0 (the documented System.Run
// contract); a run that aborted between SysMarkBegin and SysMarkEnd — or
// whose end mark predates its begin, i.e. a stale mark surviving from an
// earlier run — is an error rather than a silently wrong interval.
func (e *Env) Measured() (int64, error) {
	b, n := e.Marks.Begin, e.Marks.End
	switch {
	case b == markerUnset && n == markerUnset:
		return 0, nil
	case b == markerUnset:
		return 0, fmt.Errorf("measurement: SysMarkEnd at cycle %d without SysMarkBegin", n)
	case n == markerUnset:
		return 0, fmt.Errorf("measurement aborted: SysMarkBegin at cycle %d never closed by SysMarkEnd", b)
	case n < b:
		return 0, fmt.Errorf("stale measurement: end mark (cycle %d) predates begin mark (cycle %d)", n, b)
	}
	return n - b, nil
}
