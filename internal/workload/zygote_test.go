package workload

import (
	"reflect"
	"testing"
)

// withZygote runs the test body with the zygote default set, a fresh pool,
// and full restoration afterwards.
func withZygote(t *testing.T, on bool) {
	t.Helper()
	prev := SetZygoteDefault(on)
	ResetZygotes()
	t.Cleanup(func() {
		SetZygoteDefault(prev)
		ResetZygotes()
	})
}

// TestZygoteRunIdenticalToCold: RunDomainSwitch must return byte-identical
// results whether the machine is cold-booted or forked from a zygote, for
// every fleet-suite configuration (all variants, host and guest).
func TestZygoteRunIdenticalToCold(t *testing.T) {
	for _, cfg := range fleetTestConfigs() {
		withZygote(t, false)
		cold, err := RunDomainSwitch(cfg)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		withZygote(t, true)
		forks := ZygoteForkCount()
		warm, err := RunDomainSwitch(cfg)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		if ZygoteForkCount() != forks+1 {
			t.Errorf("%s/%d: zygote default on, but no fork happened", cfg.Variant, cfg.Domains)
		}
		if !reflect.DeepEqual(cold, warm) {
			t.Errorf("%s/%d: forked result differs from cold boot\ncold: %+v\nfork: %+v",
				cfg.Variant, cfg.Domains, cold, warm)
		}
		// A second run forks the SAME zygote (no new cold boot) and must
		// still agree — the chaos engine's re-fork pattern.
		again, err := RunDomainSwitch(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(cold, again) {
			t.Errorf("%s/%d: re-fork result drifted: %+v vs %+v", cfg.Variant, cfg.Domains, cold, again)
		}
	}
}

// TestZygoteFleetWidthIdentity: with forking on, sweeping the fleet suite
// at width 1 and width 8 must produce byte-identical results — children of
// one zygote run concurrently, and forks of one zygote are serialized by
// the pool's lock.
func TestZygoteFleetWidthIdentity(t *testing.T) {
	withZygote(t, true)
	cfgs := fleetTestConfigs()
	measure := func(f *Fleet) []DomainSwitchResult {
		out, err := fleetMap(f, len(cfgs), func(i int) (DomainSwitchResult, error) {
			return RunDomainSwitch(cfgs[i])
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	seq := measure(NewFleet(1))
	par := measure(NewFleet(8))
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("zygote sweep diverged across fleet widths\nseq: %+v\npar: %+v", seq, par)
	}
}

// TestZygotePoolKeying: configs differing in any field get distinct
// zygotes; the same config reuses one.
func TestZygotePoolKeying(t *testing.T) {
	withZygote(t, true)
	base := fleetTestConfigs()[1]
	if _, _, err := ForkDomainSwitch(base); err != nil {
		t.Fatal(err)
	}
	zygoteMu.Lock()
	n1 := len(zygotes)
	zygoteMu.Unlock()
	if _, _, err := ForkDomainSwitch(base); err != nil {
		t.Fatal(err)
	}
	other := base
	other.Seed++
	if _, _, err := ForkDomainSwitch(other); err != nil {
		t.Fatal(err)
	}
	zygoteMu.Lock()
	n2 := len(zygotes)
	zygoteMu.Unlock()
	if n2 != n1+1 {
		t.Errorf("pool grew from %d to %d; want exactly one new zygote for a changed config", n1, n2)
	}
}

// TestZygoteChildrenIsolated: two children of one zygote run to completion
// without disturbing each other or the zygote — the zygote itself stays
// runnable and cold-identical afterwards.
func TestZygoteChildrenIsolated(t *testing.T) {
	withZygote(t, true)
	cfg := fleetTestConfigs()[1]
	envA, pA, err := ForkDomainSwitch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	envB, pB, err := ForkDomainSwitch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	budget := domainSwitchBudget(cfg)
	if err := envA.Run(pA, budget); err != nil {
		t.Fatal(err)
	}
	if err := envB.Run(pB, budget); err != nil {
		t.Fatal(err)
	}
	mA, err := envA.Measured()
	if err != nil {
		t.Fatal(err)
	}
	mB, err := envB.Measured()
	if err != nil {
		t.Fatal(err)
	}
	if mA != mB {
		t.Errorf("sibling children measured %d vs %d cycles", mA, mB)
	}
	for name, env := range map[string]*Env{"A": envA, "B": envB} {
		if issues := env.M.PM.AuditCOW(); len(issues) != 0 {
			t.Errorf("child %s COW audit: %v", name, issues)
		}
	}
	// The zygote was never run: a third fork still measures the same.
	envC, pC, err := ForkDomainSwitch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := envC.Run(pC, budget); err != nil {
		t.Fatal(err)
	}
	mC, err := envC.Measured()
	if err != nil {
		t.Fatal(err)
	}
	if mC != mA {
		t.Errorf("fork after sibling runs measured %d, want %d (zygote dirtied)", mC, mA)
	}
}
