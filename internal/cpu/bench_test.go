package cpu

import (
	"testing"

	"lightzone/internal/mem"
)

// benchLoopInsns is the emulated instruction count of one sumProgram(256)
// pass (2 setup + 3 per iteration + HVC), used to report per-instruction
// throughput.
const benchLoopInsns = 2 + 3*256 + 1

// BenchmarkStep measures the per-Step pipeline with every host fastpath
// off: decode from the block cache, dispatch, account — one instruction per
// Step call. This is the PR 1–3 baseline the block-resident loop is
// compared against.
func BenchmarkStep(b *testing.B) {
	e := newEnv(b)
	e.c.SetHostFastpaths(false)
	e.load(b, sumProgram(256))
	e.run(b, 10_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.rerun(b, 10_000)
	}
	b.ReportMetric(float64(b.N)*benchLoopInsns/b.Elapsed().Seconds(), "insns/s")
}

// BenchmarkBlockReplay measures the block-resident loop on a hot cached
// block: micro-TLB fetch fastpath, no re-decode, batched cycle accounting.
func BenchmarkBlockReplay(b *testing.B) {
	e := newEnv(b)
	e.load(b, sumProgram(256))
	e.run(b, 10_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.rerun(b, 10_000)
	}
	b.ReportMetric(float64(b.N)*benchLoopInsns/b.Elapsed().Seconds(), "insns/s")
}

// chainInsns is the emulated instruction count of one chainProgram pass.
const chainInsns = 10

// benchStitchedEnv boots an env on chainProgram and runs it until the chain
// is stitched and replaying as a trace (threshold 2: stitch on the third
// pass, traced entry from the fourth).
func benchStitchedEnv(b *testing.B, traces bool) *env {
	e := newEnv(b)
	e.c.SetTraces(traces)
	e.c.SetTraceHotThreshold(2)
	e.load(b, chainProgram())
	e.run(b, 1000)
	for i := 0; i < 3; i++ {
		e.rerun(b, 1000)
	}
	return e
}

// BenchmarkTraceReplay measures the stitched superblock runner on a hot
// multi-block chain: one guard per entry, fused step dispatch, one batched
// stats/charge flush — the PR 9 tier above BenchmarkBlockReplay.
func BenchmarkTraceReplay(b *testing.B) {
	e := benchStitchedEnv(b, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.rerun(b, 1000)
	}
	b.ReportMetric(float64(b.N)*chainInsns/b.Elapsed().Seconds(), "insns/s")
}

// BenchmarkTraceDispatch runs the same hot chain with tracing off: every
// pass crosses five block boundaries through the generic block-resident
// dispatcher. The delta against BenchmarkTraceReplay is what stitching buys.
func BenchmarkTraceDispatch(b *testing.B) {
	e := benchStitchedEnv(b, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.rerun(b, 1000)
	}
	b.ReportMetric(float64(b.N)*chainInsns/b.Elapsed().Seconds(), "insns/s")
}

// BenchmarkTranslateHit measures Translate on a warm data page: with the
// fastpaths on this is a D-side micro-TLB hit, the cost every load and
// store in the emulator pays.
func BenchmarkTranslateHit(b *testing.B) {
	e := newEnv(b)
	if _, ab := e.c.Translate(dataVA, mem.AccessRead, false); ab != nil {
		b.Fatalf("warm translate aborted: %+v", ab)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ab := e.c.Translate(dataVA, mem.AccessRead, false); ab != nil {
			b.Fatal("translate aborted")
		}
	}
}
