package cpu

// Trace-compiler regression suite: stitching across direct branches and
// BL/RET pairs, the staleness chokepoints (self-modifying code inside a
// stitched trace, guest TLBI, ASID switches, cross-page invalidation), and
// the BlockCache cohort-eviction dependency drop. Every scenario runs the
// identical guest sequence with traces on and off and requires bit-identical
// emulated cycles, instruction counts, results and TLB statistics — the
// trace compiler may only remove host work, never emulated work.

import (
	"testing"

	"lightzone/internal/arm64"
	"lightzone/internal/mem"
)

// chainProgram is the canonical stitchable shape: a run of single-entry
// blocks linked by direct B edges plus a BL into a leaf whose RET balances
// the call, ending at HVC. One pass adds 15 to x0. Loop back-edges never
// stitch, so sumProgram-style loops are useless here.
func chainProgram() *arm64.Asm {
	a := arm64.NewAsm()
	a.MovImm(0, 0)
	a.B("b1")
	a.Label("b1")
	a.Emit(arm64.ADDImm(0, 0, 1, false))
	a.B("b2")
	a.Label("b2")
	a.Emit(arm64.ADDImm(0, 0, 2, false))
	a.BL("leaf")
	a.Emit(arm64.ADDImm(0, 0, 4, false))
	a.Emit(arm64.HVC(0))
	a.Label("leaf")
	a.Emit(arm64.ADDImm(0, 0, 8, false))
	a.Emit(arm64.RET(30))
	return a
}

// traceSig is the emulated identity surface the trace compiler must not move.
type traceSig struct {
	cycles, insns      int64
	x0                 uint64
	tlbHits, tlbMisses uint64
	codeHits           uint64
}

func sig(e *env) traceSig {
	return traceSig{
		cycles: e.c.Cycles, insns: e.c.Insns, x0: e.c.R(0),
		tlbHits: e.c.Stats.TLBHits, tlbMisses: e.c.Stats.TLBMisses,
		codeHits: e.c.Stats.CodeHits,
	}
}

func compareSigs(t *testing.T, on, off traceSig) {
	t.Helper()
	if on != off {
		t.Errorf("traced run diverged from block pipeline:\n  traces on  %+v\n  traces off %+v", on, off)
	}
}

// TestTraceStitchReplayIdentity checks the basic lifecycle: a chain of hot
// blocks stitches into one superblock (including the BL/RET pair), replays
// to completion, and stays bit-identical to the untraced pipeline.
func TestTraceStitchReplayIdentity(t *testing.T) {
	run := func(traces bool) traceSig {
		e := newEnv(t)
		e.c.SetTraces(traces)
		e.c.SetTraceHotThreshold(2)
		e.load(t, chainProgram())
		e.run(t, 1000)
		for i := 0; i < 4; i++ {
			e.rerun(t, 1000)
		}
		return sig(e)
	}
	before := ReadTraceStats()
	on := run(true)
	d := ReadTraceStats().Sub(before)
	off := run(false)
	compareSigs(t, on, off)
	if on.x0 != 15 {
		t.Errorf("x0 = %d, want 15", on.x0)
	}
	if d.Stitched == 0 {
		t.Fatal("hot chain never stitched")
	}
	if d.Entered == 0 || d.Completed == 0 {
		t.Errorf("trace never replayed to completion: %+v", d)
	}
	if d.InsnsRun == 0 {
		t.Error("no instructions retired inside traces")
	}
}

// TestTraceSnapshotShape checks the observation surface on a live trace:
// member shape, epoch/dependency validity, and the per-step PC/raw lists.
func TestTraceSnapshotShape(t *testing.T) {
	e := newEnv(t)
	e.c.SetTraceHotThreshold(2)
	e.load(t, chainProgram())
	// First-touch decodes don't count as hot entries, so threshold 2
	// stitches on the third pass.
	e.run(t, 1000)
	e.rerun(t, 1000)
	e.rerun(t, 1000)
	if e.c.TraceCacheLen() == 0 {
		t.Fatal("no trace stitched")
	}
	var entry *TraceInfo
	for i, ti := range e.c.TraceSnapshot() {
		if ti.EntryPC == uint64(codeVA) {
			entry = &e.c.TraceSnapshot()[i]
		}
	}
	if entry == nil {
		t.Fatalf("no trace keyed at the program entry: %+v", e.c.TraceSnapshot())
	}
	// MovImm(0,0)+B, ADD+B, ADD+BL, ADD+RET, ADD+HVC: 5 blocks, 10 insns.
	if entry.Blocks != 5 || entry.Insns != 10 || entry.Pages != 1 {
		t.Errorf("trace shape = %d blocks / %d insns / %d pages, want 5/10/1", entry.Blocks, entry.Insns, entry.Pages)
	}
	if !entry.EpochOK || !entry.DepsOK {
		t.Errorf("fresh trace not live: %+v", entry)
	}
	if len(entry.PCs) != entry.Insns || len(entry.Raw) != entry.Insns {
		t.Errorf("step lists %d/%d, want %d", len(entry.PCs), len(entry.Raw), entry.Insns)
	}
	// Steps follow execution order: the BL's leaf precedes the return-site
	// block, so the final word is the continuation's HVC.
	if entry.PCs[0] != uint64(codeVA) || entry.Raw[len(entry.Raw)-1] != arm64.HVC(0) {
		t.Errorf("step order wrong: first PC %#x, last word %#x", entry.PCs[0], entry.Raw[len(entry.Raw)-1])
	}
}

// TestTraceSMCInsideStitchedTrace executes a store that rewrites an earlier
// instruction of the *currently running* trace: the post-dispatch generation
// check must side-exit, the epoch hook must drop the trace, the rewritten
// code must run on the next pass, and a warm re-stitch must follow — all
// bit-identical to the untraced pipeline.
func TestTraceSMCInsideStitchedTrace(t *testing.T) {
	// x9 is the patchable immediate. The tail block counts runs in the data
	// page and CSELs the store target: the scratch slot at dataVA+8 on most
	// runs, and the entry MOVZ — rewriting x9 = 1 into x9 = 2 — on runs 4
	// and 5. Run 4 is the first *traced* pass under threshold 2, so the first
	// patch fires from inside the stitched trace (side-exit); the second
	// patch bumps the page epoch again, clearing the one-instruction suffix
	// block the side-exit resume decoded at the HVC — that fragment shadows
	// the tail block's rebuild, and only its eviction lets the full chain
	// re-form and re-stitch.
	prog := func() *arm64.Asm {
		a := arm64.NewAsm()
		a.Label("entry")
		a.Emit(arm64.MOVZ(9, 1, 0))
		a.B("mid")
		a.Label("mid")
		a.Emit(arm64.ADDReg(0, 0, 9))
		a.B("tail")
		a.Label("tail")
		a.MovImm(10, uint64(dataVA))
		a.Emit(arm64.LDRImm(5, 10, 0, 3))
		a.Emit(arm64.ADDImm(5, 5, 1, false))
		a.Emit(arm64.STRImm(5, 10, 0, 3))
		a.Emit(arm64.UBFM(6, 5, 1, 63)) // x6 = run >> 1
		a.Emit(arm64.SUBSImm(6, 6, 2))  // Z set on runs 4 and 5
		a.ADR(1, "entry")
		a.MovImm(3, uint64(dataVA)+8)
		a.Emit(arm64.CSEL(4, 1, 3, arm64.CondEQ))
		a.MovImm(2, uint64(arm64.MOVZ(9, 2, 0)))
		a.Emit(arm64.STRImm(2, 4, 0, 2))
		a.Emit(arm64.HVC(0))
		return a
	}
	const runs = 9
	run := func(traces bool) traceSig {
		e := newEnv(t)
		e.c.SetTraces(traces)
		e.c.SetTraceHotThreshold(2)
		e.load(t, prog())
		e.run(t, 1000)
		for i := 1; i < runs; i++ {
			e.rerun(t, 1000)
		}
		return sig(e)
	}
	before := ReadTraceStats()
	on := run(true)
	d := ReadTraceStats().Sub(before)
	off := run(false)
	compareSigs(t, on, off)
	// Runs 1-4 add 1 (the patch lands after the ADD of run 4), runs 5-9 add 2.
	if want := uint64(4 + 5*2); on.x0 != want {
		t.Errorf("x0 = %d, want %d (stale traced code executed?)", on.x0, want)
	}
	if d.Stitched < 2 {
		t.Errorf("stitched %d times, want >= 2 (no re-stitch after the rewrite)", d.Stitched)
	}
	if d.Invalidated == 0 {
		t.Error("in-trace code rewrite did not invalidate the trace")
	}
	if d.SideExits == 0 {
		t.Error("in-trace code rewrite did not side-exit the running trace")
	}
	if d.Completed == 0 {
		t.Error("re-stitched trace never ran to completion")
	}
}

// TestTraceGuestTLBIMidTraceLifetime stitches the chain, then has the guest
// execute a TLBI from a separate entry point while the trace is live: the
// wholesale invalidation bumps every code-page generation the entry guard
// froze, dropping the trace cache mid-lifetime. (A TLBI cannot live *inside*
// a trace — it is in the never-stitch-across terminator class, and a block
// that invalidates everything each pass never gets hot in the first place.)
// The chain must re-decode, re-stitch and replay bit-identically afterwards.
func TestTraceGuestTLBIMidTraceLifetime(t *testing.T) {
	prog := chainProgram()
	prog.Label("tlbi")
	prog.Emit(arm64.TLBIVMALLE1())
	prog.Emit(arm64.HVC(0))
	tlbiOff, err := prog.Offset("tlbi")
	if err != nil {
		t.Fatal(err)
	}
	run := func(traces bool) traceSig {
		e := newEnv(t)
		e.c.SetTraces(traces)
		e.c.SetTraceHotThreshold(2)
		e.load(t, prog)
		// Decode, hot, stitch, traced pass.
		e.run(t, 1000)
		for i := 0; i < 3; i++ {
			e.rerun(t, 1000)
		}
		// Guest TLBI from its own entry point while the trace is live.
		e.c.SetEL(arm64.EL1)
		e.c.PC = uint64(codeVA) + uint64(tlbiOff)
		e.run(t, 100)
		// Everything re-decodes from scratch: decode, hot, stitch, traced.
		for i := 0; i < 4; i++ {
			e.rerun(t, 1000)
		}
		return sig(e)
	}
	before := ReadTraceStats()
	on := run(true)
	d := ReadTraceStats().Sub(before)
	off := run(false)
	compareSigs(t, on, off)
	if want := uint64(15); on.x0 != want {
		t.Errorf("x0 = %d, want %d", on.x0, want)
	}
	if d.Stitched < 2 {
		t.Errorf("stitched %d times, want >= 2 (TLBI must force a re-stitch)", d.Stitched)
	}
	if d.Invalidated == 0 {
		t.Error("guest TLBI did not invalidate the stitched trace")
	}
	if d.Completed < 2 {
		t.Errorf("completed %d traced passes, want >= 2 (before and after the TLBI)", d.Completed)
	}
}

// TestTraceASIDSwitchKeysSeparately runs the same chain under two address
// spaces (same code frame, ASIDs 1 and 2): each context stitches its own
// trace, and switching between them must never invalidate either — the
// context tuple is part of the trace key, so the first space's trace replays
// untouched after a round trip through the second.
func TestTraceASIDSwitchKeysSeparately(t *testing.T) {
	run := func(traces bool) (traceSig, *env) {
		e := newEnv(t)
		e.c.SetTraces(traces)
		e.c.SetTraceHotThreshold(2)
		s1b, err := mem.NewStage1(e.pm, 2)
		if err != nil {
			t.Fatal(err)
		}
		codeRes, err := e.s1.Walk(codeVA)
		if err != nil || !codeRes.Found {
			t.Fatalf("code page missing: %v", err)
		}
		if err := s1b.Map(codeVA, codeRes.PA, mem.AttrNG); err != nil {
			t.Fatal(err)
		}
		e.load(t, chainProgram())
		ttbrA := MakeTTBR(uint64(e.s1.Root()), e.s1.ASID())
		ttbrB := MakeTTBR(uint64(s1b.Root()), 2)
		e.run(t, 1000)
		// Three more A passes (hot, stitch, enter), four B passes (decode,
		// hot, stitch, enter), then back to A: its trace must still be live.
		for _, ttbr := range []uint64{ttbrA, ttbrA, ttbrA, ttbrB, ttbrB, ttbrB, ttbrB, ttbrA} {
			e.c.SetSys(arm64.TTBR0EL1, ttbr)
			e.rerun(t, 1000)
		}
		return sig(e), e
	}
	before := ReadTraceStats()
	on, e := run(true)
	d := ReadTraceStats().Sub(before)
	off, _ := run(false)
	compareSigs(t, on, off)
	asids := map[uint16]bool{}
	for _, ti := range e.c.TraceSnapshot() {
		if ti.EntryPC == uint64(codeVA) {
			asids[ti.ASID] = true
		}
	}
	if !asids[1] || !asids[2] {
		t.Errorf("entry traces exist for ASIDs %v, want both 1 and 2", asids)
	}
	if d.Invalidated != 0 {
		t.Errorf("ASID switching invalidated %d traces; context-keyed traces must survive", d.Invalidated)
	}
	if d.Stitched < 2 || d.Entered < 2 {
		t.Errorf("stitch/enter = %d/%d, want both contexts traced: %+v", d.Stitched, d.Entered, d)
	}
}

// TestTraceCrossPageSecondPageInvalidation stitches a trace spanning two
// code pages and invalidates only the second: the page dependency index must
// drop the trace even though its entry page is untouched, and the rerun must
// re-stitch bit-identically.
func TestTraceCrossPageSecondPageInvalidation(t *testing.T) {
	load2 := func(e *env) {
		// Page 0: add 1, branch to the start of page 1 (B covers the gap).
		page0 := arm64.NewAsm()
		page0.Emit(arm64.ADDImm(0, 0, 1, false))
		page0.Emit(arm64.B(int64(mem.PageSize) - arm64.InsnBytes))
		e.load(t, page0)
		// Page 1: add 2, exit.
		va := codeVA + mem.VA(mem.PageSize)
		pa, err := e.pm.AllocFrame()
		if err != nil {
			t.Fatal(err)
		}
		if err := e.s1.Map(va, pa, mem.AttrNG); err != nil {
			t.Fatal(err)
		}
		page1, err := arm64.NewAsm().
			Emit(arm64.ADDImm(0, 0, 2, false)).
			Emit(arm64.HVC(0)).Bytes()
		if err != nil {
			t.Fatal(err)
		}
		if err := e.pm.Write(pa, page1); err != nil {
			t.Fatal(err)
		}
	}
	run := func(traces bool) traceSig {
		e := newEnv(t)
		e.c.SetTraces(traces)
		e.c.SetTraceHotThreshold(2)
		load2(e)
		e.run(t, 1000)
		e.rerun(t, 1000)
		e.rerun(t, 1000) // stitch pass
		if traces {
			found := false
			for _, ti := range e.c.TraceSnapshot() {
				if ti.EntryPC == uint64(codeVA) && ti.Pages == 2 {
					found = true
				}
			}
			if !found {
				t.Fatalf("no two-page trace stitched: %+v", e.c.TraceSnapshot())
			}
			live := e.c.TraceCacheLen()
			e.c.InvalidateCode(codeVA + mem.VA(mem.PageSize))
			if got := e.c.TraceCacheLen(); got >= live {
				t.Errorf("second-page invalidation left %d of %d traces live", got, live)
			}
		} else {
			e.c.InvalidateCode(codeVA + mem.VA(mem.PageSize))
		}
		// Re-decode the bumped page, re-stitch, and replay the fresh trace.
		for i := 0; i < 3; i++ {
			e.rerun(t, 1000)
		}
		return sig(e)
	}
	before := ReadTraceStats()
	on := run(true)
	d := ReadTraceStats().Sub(before)
	off := run(false)
	compareSigs(t, on, off)
	// x0 accumulates 3 per pass across the six passes (no reset in this
	// program).
	if on.x0 != 18 {
		t.Errorf("x0 = %d, want 18", on.x0)
	}
	if d.Invalidated == 0 {
		t.Error("cross-page trace survived second-page invalidation")
	}
	if d.Stitched < 2 {
		t.Errorf("stitched %d times, want a re-stitch after the invalidation", d.Stitched)
	}
}

// TestTraceBlockEvictionDropsDependents overflows the BlockCache so cohort
// eviction claims the stitched chain's member blocks: the block dependency
// index must drop the trace (a dangling trace would keep replaying blocks
// the cache no longer owns), and the tail replay of the original program
// must re-decode and re-stitch bit-identically.
func TestTraceBlockEvictionDropsDependents(t *testing.T) {
	const sweepPages = maxCachedBlocks/1024 + 1
	// loadSweepAbove fills pages 1..sweepPages above the program page with
	// single-instruction `B #4` blocks (the loadBlockSweep shape, offset up
	// one page so the chain program survives), ending in HVC.
	loadSweepAbove := func(e *env) {
		const bPlus4 = 0x14000001
		for p := 1; p <= sweepPages; p++ {
			va := codeVA + mem.VA(uint64(p)*uint64(mem.PageSize))
			pa, err := e.pm.AllocFrame()
			if err != nil {
				t.Fatal(err)
			}
			if err := e.s1.Map(va, pa, mem.AttrNG); err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, mem.PageSize)
			for i := 0; i < len(buf); i += 4 {
				w := uint32(bPlus4)
				if p == sweepPages && i == len(buf)-4 {
					w = arm64.HVC(0)
				}
				buf[i] = byte(w)
				buf[i+1] = byte(w >> 8)
				buf[i+2] = byte(w >> 16)
				buf[i+3] = byte(w >> 24)
			}
			if err := e.pm.Write(pa, buf); err != nil {
				t.Fatal(err)
			}
		}
	}
	const sweepInsns = sweepPages * 1024
	run := func(traces bool) traceSig {
		e := newEnv(t)
		e.c.SetTraces(traces)
		e.c.SetTraceHotThreshold(2)
		e.load(t, chainProgram())
		loadSweepAbove(e)
		e.run(t, 1000)
		e.rerun(t, 1000)
		e.rerun(t, 1000) // stitch pass
		e.rerun(t, 1000) // traced pass
		if traces && e.c.TraceCacheLen() == 0 {
			t.Fatal("chain never stitched before the sweep")
		}
		// Sweep enough distinct blocks to overflow the cache and evict the
		// oldest cohort — which contains the chain's member blocks.
		e.c.SetEL(arm64.EL1)
		e.c.PC = uint64(codeVA) + uint64(mem.PageSize)
		e.run(t, sweepInsns+10)
		if traces {
			for _, ti := range e.c.TraceSnapshot() {
				if ti.EntryPC == uint64(codeVA) {
					t.Errorf("trace dangles after its blocks were cohort-evicted: %+v", ti)
				}
			}
		}
		// Tail replay of the original program: re-decode, re-stitch, rerun.
		for i := 0; i < 3; i++ {
			e.rerun(t, 1000)
		}
		return sig(e)
	}
	before := ReadTraceStats()
	on := run(true)
	d := ReadTraceStats().Sub(before)
	off := run(false)
	compareSigs(t, on, off)
	if on.x0 != 15 {
		t.Errorf("tail replay x0 = %d, want 15", on.x0)
	}
	if d.Invalidated == 0 {
		t.Error("cohort eviction did not drop the dependent trace")
	}
	if d.Stitched < 2 {
		t.Errorf("stitched %d times, want a re-stitch after eviction", d.Stitched)
	}
}

// TestTraceToggleAndDefaults covers the control surface: SetTraces(false)
// drops stitched traces and stops stitching, and the process-wide defaults
// seed new vCPUs (the lzbench -notrace path).
func TestTraceToggleAndDefaults(t *testing.T) {
	e := newEnv(t)
	e.c.SetTraceHotThreshold(2)
	if !e.c.TracesEnabled() {
		t.Fatal("traces not enabled by default")
	}
	e.load(t, chainProgram())
	e.run(t, 1000)
	e.rerun(t, 1000)
	e.rerun(t, 1000)
	if e.c.TraceCacheLen() == 0 {
		t.Fatal("no trace stitched")
	}
	e.c.SetTraces(false)
	if e.c.TracesEnabled() || e.c.TraceCacheLen() != 0 {
		t.Errorf("disable left %d traces live", e.c.TraceCacheLen())
	}
	e.rerun(t, 1000)
	if e.c.TraceCacheLen() != 0 {
		t.Error("disabled compiler stitched a trace")
	}
	if e.c.R(0) != 15 {
		t.Errorf("x0 = %d, want 15", e.c.R(0))
	}

	oldOn, oldHot := TraceDefault(), TraceHotDefault()
	defer func() {
		SetTraceDefault(oldOn)
		SetTraceHotDefault(oldHot)
	}()
	SetTraceDefault(false)
	if New(arm64.ProfileCortexA55(), mem.NewPhysMem(1<<20)).TracesEnabled() {
		t.Error("new vCPU ignored the disabled trace default")
	}
	SetTraceDefault(true)
	SetTraceHotDefault(3)
	c := New(arm64.ProfileCortexA55(), mem.NewPhysMem(1<<20))
	if !c.TracesEnabled() {
		t.Error("new vCPU ignored the enabled trace default")
	}
	if TraceHotDefault() != 3 {
		t.Errorf("hot default = %d, want 3", TraceHotDefault())
	}
	SetTraceHotDefault(0) // clamps to 1
	if TraceHotDefault() != 1 {
		t.Errorf("hot default = %d, want clamp to 1", TraceHotDefault())
	}
}
