package cpu_test

// Differential-fuzz conformance suite: seeded random A64 instruction
// streams run through the execution engine twice — once with the host
// fastpaths, decoded-block cache and trace compiler on, once with all of
// them off — and the two pipelines must agree bit for bit on registers,
// PSTATE, memory, cycle accounting and TLB statistics. Each dual run makes
// several passes over the stream, so the fast side exercises decode,
// cached-block dispatch and stitched-trace replay in one comparison.
// Faulting and undefined streams are legitimate inputs: every exception is
// an architectural event both pipelines must deliver identically.
//
// A divergence is auto-minimized (NOP substitution to fixpoint) and written
// as a replayable journal; `lzreplay -run` replays it standalone.

import (
	"bufio"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"lightzone/internal/cpu"
	"lightzone/internal/replay"
)

// corpusSeeds reads the committed seed corpus.
func corpusSeeds(t *testing.T) []int64 {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", "difffuzz_seeds.txt"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var seeds []int64
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := strconv.ParseInt(line, 10, 64)
		if err != nil {
			t.Fatalf("corpus line %q: %v", line, err)
		}
		seeds = append(seeds, s)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(seeds) == 0 {
		t.Fatal("empty seed corpus")
	}
	return seeds
}

// reportDivergence minimizes the diverging stream and journals it so the
// failure replays standalone, then fails the test with the journal path.
func reportDivergence(t *testing.T, seed int64, words []uint32, divergence string) {
	t.Helper()
	diverges := func(ws []uint32) bool {
		res, err := replay.DualRun(ws)
		return err == nil && res.Divergence != ""
	}
	minimized := replay.Minimize(words, diverges)
	res, _ := replay.DualRun(minimized)
	j := replay.FuzzJournal(seed, minimized, res.Divergence)
	path := filepath.Join(t.TempDir(), "difffuzz-failure.journal.json")
	if err := j.Write(path); err != nil {
		t.Logf("could not journal the failure: %v", err)
	}
	t.Fatalf("seed %d: pipelines diverge: %s\nminimized journal: %s (replay with: lzreplay -run %s)",
		seed, divergence, path, path)
}

// TestDiffFuzzCorpus runs every committed corpus seed through both
// pipelines at two stream lengths, and checks that the corpus as a whole
// actually reaches the trace tier — a corpus whose streams never stitch
// would silently stop testing the trace compiler.
func TestDiffFuzzCorpus(t *testing.T) {
	before := cpu.ReadTraceStats()
	for _, n := range []int{64, 400} {
		for _, seed := range corpusSeeds(t) {
			words := replay.GenWords(seed, n)
			res, err := replay.DualRun(words)
			if err != nil {
				t.Fatalf("seed %d n=%d: %v", seed, n, err)
			}
			if res.Divergence != "" {
				reportDivergence(t, seed, words, res.Divergence)
			}
			if res.Fast.Insns == 0 {
				t.Errorf("seed %d n=%d: stream executed nothing", seed, n)
			}
		}
	}
	d := cpu.ReadTraceStats().Sub(before)
	if d.Stitched == 0 || d.Entered == 0 {
		t.Errorf("fuzz corpus never exercised the trace compiler (stitched %d, entered %d)", d.Stitched, d.Entered)
	}
}

// TestDiffFuzzSweep complements the corpus with a deterministic sweep of
// derived seeds, so every run covers streams no corpus line pins.
func TestDiffFuzzSweep(t *testing.T) {
	const cases = 32
	if testing.Short() {
		t.Skip("sweep skipped in -short")
	}
	for i := 0; i < cases; i++ {
		seed := int64(1_000_000_007)*int64(i) + 17
		words := replay.GenWords(seed, 250)
		res, err := replay.DualRun(words)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Divergence != "" {
			reportDivergence(t, seed, words, res.Divergence)
		}
	}
}

// TestDiffFuzzExitParity spot-checks that the two pipelines agree on the
// exit itself, not just the end state: the corpus must contain both clean
// hypercall exits and fault exits for the comparison to mean anything.
func TestDiffFuzzExitParity(t *testing.T) {
	classes := map[string]bool{}
	for _, seed := range corpusSeeds(t) {
		res, err := replay.DualRun(replay.GenWords(seed, 120))
		if err != nil {
			t.Fatal(err)
		}
		if res.FastExit != res.SlowExit {
			t.Errorf("seed %d: exits differ: %+v vs %+v", seed, res.FastExit, res.SlowExit)
		}
		classes[res.FastExit.Syndrome.Class.String()] = true
	}
	if len(classes) < 2 {
		t.Errorf("corpus exercises only %d exit class(es): %v — add seeds", len(classes), classes)
	}
}
