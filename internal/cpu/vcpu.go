package cpu

import (
	"fmt"

	"lightzone/internal/arm64"
	"lightzone/internal/mem"
)

// VCPU is a simulated ARM64 hardware thread.
type VCPU struct {
	Prof *arm64.Profile
	Mem  *mem.PhysMem
	TLB  *mem.TLB

	// Stats aggregates TLB and decoded-block cache counters for the whole
	// fetch pipeline (shared with TLB and Decoded).
	Stats *mem.Stats

	// Decoded is the decoded-basic-block cache; cur is the active replay
	// cursor within a cached block.
	Decoded *BlockCache
	cur     blockCursor

	// mtlb holds the host-side translation fastpaths (see microtlb.go; all
	// access is confined to that file by tools/lint). batch accumulates
	// per-instruction cycles during a block-resident replay and is flushed
	// through Charge before any point where Cycles is observable.
	mtlb  microTLBs
	batch int64

	// tcache holds the stitched superblocks of the trace compiler (see
	// trace.go; all access is confined to that file by tools/lint). excSeq
	// counts synchronous exception deliveries — a host-side sequence the
	// trace runner compares to detect delivery exactly, even when the
	// vector happens to equal the predicted next PC.
	tcache traceCache
	excSeq uint64

	// audit, when non-nil, cross-checks cached-block replays against their
	// static BlockProof (see proofaudit.go; observation-only, confined to
	// that file by tools/lint).
	audit *proofAudit

	// Handler dispatch state for the instruction in flight: the committed
	// next PC (fall-through, branch target, or exception vector) and a Go
	// error escaping a handler.
	nextPC  uint64
	stepErr error

	// Architectural state.
	X      [32]uint64 // general-purpose; index 31 reads as zero
	PC     uint64
	PState uint64
	sys    [arm64.NumSysRegs]uint64 // system register file, indexed by arm64.SysReg

	// EmulatedEL1 selects whether exceptions targeting EL1 are delivered
	// to emulated code at VBAR_EL1 (LightZone process VMs, whose EL1
	// vector is the TTBR1-mapped trap stub) or exit the interpreter to a
	// functional Go kernel (ordinary guest VMs).
	EmulatedEL1 bool

	// Cycle and instruction accounting.
	Cycles int64
	Insns  int64

	// LastSyndrome describes the most recent exception taken, for
	// functional handlers (the architectural ESR/FAR registers are also
	// populated).
	LastSyndrome Syndrome

	// PendingIRQ requests an interrupt before the next instruction.
	PendingIRQ bool

	// OnTTBR0Write, when set, observes emulated TTBR0_EL1 writes — the
	// LightZone domain switches performed by call gates. Diagnostic
	// tracing only; it must not mutate state.
	OnTTBR0Write func(old, new uint64)
}

// New creates a vCPU at EL1 with interrupts masked and MMU off. The TLB,
// the code-generation epochs and the decoded-block cache share one Stats
// instance, and the TLB's invalidation entry points bump the epochs so the
// block cache observes every break-before-make and permission change.
func New(prof *arm64.Profile, pm *mem.PhysMem) *VCPU {
	stats := &mem.Stats{}
	epochs := mem.NewCodeEpochs(stats)
	tlb := mem.NewTLB(prof.TLBCapacity)
	tlb.Stats = stats
	tlb.Code = epochs
	return wire(prof, pm, stats, epochs, tlb)
}

// wire assembles a VCPU around a prepared stats/epochs/TLB triple and hooks
// up the cache-invalidation chokepoints. Fork passes a cloned TLB here so
// the child never builds a throwaway one.
func wire(prof *arm64.Profile, pm *mem.PhysMem, stats *mem.Stats, epochs *mem.CodeEpochs, tlb *mem.TLB) *VCPU {
	c := &VCPU{
		Prof:    prof,
		Mem:     pm,
		TLB:     tlb,
		Stats:   stats,
		Decoded: newBlockCache(epochs, stats),
		PState:  arm64.PStateForEL(arm64.EL1) | arm64.PStateI | arm64.PStateF,
		mtlb:    microTLBs{enabled: hostFastpathDefault.Load()},
		tcache:  newTraceCache(),
	}
	c.SetProofAudit(proofAuditDefault.Load())
	// Trace invalidation chokepoints: any code-epoch bump, block-cache
	// reset, or cohort eviction drops the traces it could dangle.
	epochs.OnBump = c.onCodeEpochBump
	c.Decoded.onReset = c.dropAllTraces
	c.Decoded.onEvict = c.dropTracesForBlockKey
	return c
}

// EL returns the current exception level.
func (c *VCPU) EL() arm64.EL { return arm64.ELFromPState(c.PState) }

// SetEL rewrites the PSTATE exception-level field.
func (c *VCPU) SetEL(el arm64.EL) {
	c.PState = c.PState&^arm64.PStateELMask | arm64.PStateForEL(el)&arm64.PStateELMask
	if el != arm64.EL0 {
		c.PState |= arm64.PStateSPSel
	} else {
		c.PState &^= arm64.PStateSPSel
	}
}

// PAN returns PSTATE.PAN.
func (c *VCPU) PAN() bool { return c.PState&arm64.PStatePAN != 0 }

// SetPAN writes PSTATE.PAN.
func (c *VCPU) SetPAN(v bool) {
	if v {
		c.PState |= arm64.PStatePAN
	} else {
		c.PState &^= arm64.PStatePAN
	}
}

// R reads general-purpose register i with XZR semantics.
func (c *VCPU) R(i uint8) uint64 {
	if i == arm64.XZR {
		return 0
	}
	return c.X[i]
}

// SetR writes general-purpose register i with XZR semantics.
func (c *VCPU) SetR(i uint8, v uint64) {
	if i != arm64.XZR {
		c.X[i] = v
	}
}

// SP returns the stack pointer selected by PSTATE.
func (c *VCPU) SP() uint64 {
	if c.PState&arm64.PStateSPSel != 0 && c.EL() != arm64.EL0 {
		if c.EL() == arm64.EL2 {
			return c.sys[arm64.SPEL2]
		}
		return c.sys[arm64.SPEL1]
	}
	return c.sys[arm64.SPEL0]
}

// SetSP writes the selected stack pointer.
func (c *VCPU) SetSP(v uint64) {
	if c.PState&arm64.PStateSPSel != 0 && c.EL() != arm64.EL0 {
		if c.EL() == arm64.EL2 {
			c.sys[arm64.SPEL2] = v
			return
		}
		c.sys[arm64.SPEL1] = v
		return
	}
	c.sys[arm64.SPEL0] = v
}

// baseReg reads register i as a load/store base (register 31 selects SP).
func (c *VCPU) baseReg(i uint8) uint64 {
	if i == 31 {
		return c.SP()
	}
	return c.X[i]
}

// Sys reads a system register without charging cycles (for functional
// privileged software and tests; emulated MRS goes through ReadSysReg).
func (c *VCPU) Sys(r arm64.SysReg) uint64 { return c.sys[r] }

// SetSys writes a system register without charging cycles.
func (c *VCPU) SetSys(r arm64.SysReg, v uint64) { c.sys[r] = v }

// ReadSysReg performs a cycle-charged MRS as privileged software would.
func (c *VCPU) ReadSysReg(r arm64.SysReg) uint64 {
	c.Charge(c.Prof.SysRegReadCost(r))
	return c.sys[r]
}

// WriteSysReg performs a cycle-charged MSR as privileged software would.
func (c *VCPU) WriteSysReg(r arm64.SysReg, v uint64) {
	c.Charge(c.Prof.SysRegWriteCost(r))
	c.sys[r] = v
}

// Charge adds n cycles to the vCPU's counter. Functional privileged
// software (kernels, hypervisor) uses it to account for work that is not
// emulated instruction by instruction.
func (c *VCPU) Charge(n int64) { c.Cycles += n }

// ChargeInsns models n generic instructions executed by functional code.
func (c *VCPU) ChargeInsns(n int64) { c.Cycles += n * c.Prof.InsnCost }

// flushBatch commits cycles accumulated during a block-resident replay.
// Called before every point where Cycles is observable: terminator handler
// dispatch (exception delivery, TTBR-write tracing), exits from runBlock,
// and exception delivery itself. Charge is the only mutation path, keeping
// the lint invariant that Cycles moves only through Charge/ChargeInsns.
func (c *VCPU) flushBatch() {
	if c.batch != 0 {
		c.Charge(c.batch)
		c.batch = 0
	}
}

// stage2Enabled reports whether stage-2 translation applies to the current
// execution context (EL0/EL1 with HCR_EL2.VM set).
func (c *VCPU) stage2Enabled() bool {
	return c.sys[arm64.HCREL2]&HCRVM != 0 && c.EL() != arm64.EL2
}

// CurrentVMID returns the VMID tag for TLB entries (0 outside stage-2).
func (c *VCPU) CurrentVMID() uint16 {
	if c.sys[arm64.HCREL2]&HCRVM == 0 {
		return 0
	}
	return VTTBRVMID(c.sys[arm64.VTTBREL2])
}

func (c *VCPU) String() string {
	return fmt.Sprintf("vcpu{pc=%#x el=%v pan=%v cycles=%d}", c.PC, c.EL(), c.PAN(), c.Cycles)
}
