package cpu

import "lightzone/internal/mem"

// Fork clones this vCPU for a forked machine backed by pm2 (a copy-on-write
// fork of this vCPU's physical memory). Architectural state — registers,
// PSTATE, the system-register file, cycle/instruction counters, and the
// warm TLB — transfers exactly: all of it is digest-visible, so the child
// must resume from precisely the state a cold boot reaches at the same
// point. Host-side caches (decoded blocks, stitched traces, micro-TLBs,
// batched cycles) start empty instead: the identity CI lanes prove them
// digest-invisible, and fresh caches cannot dangle into the parent's frame
// storage across the COW boundary. The enable toggles follow the parent so
// a forked machine runs the same pipeline configuration as the zygote it
// came from.
//
// Fork must only be called between Run invocations — no instruction or
// cached-block replay may be in flight on the parent.
func (c *VCPU) Fork(pm2 *mem.PhysMem) *VCPU {
	stats2 := &mem.Stats{}
	*stats2 = *c.Stats
	epochs2 := mem.NewCodeEpochs(stats2) // the child's own code-epoch tracker
	c2 := wire(c.Prof, pm2, stats2, epochs2, c.TLB.Clone(stats2, epochs2))
	c2.X = c.X
	c2.PC = c.PC
	c2.PState = c.PState
	c2.sys = c.sys
	c2.EmulatedEL1 = c.EmulatedEL1
	c2.LastSyndrome = c.LastSyndrome
	c2.PendingIRQ = c.PendingIRQ
	c2.Insns = c.Insns
	c2.excSeq = c.excSeq
	c2.Charge(c.Cycles) // cycles move only through Charge (tools/lint)
	c2.SetHostFastpaths(c.HostFastpathsEnabled())
	c2.SetDecodeCache(c.DecodeCacheEnabled())
	c2.SetTraces(c.TracesEnabled())
	c2.SetProofAudit(c.ProofAuditEnabled())
	return c2
}
