// Trace/superblock compilation: stitching hot decoded blocks across direct
// branches into superblocks that replay with one generation check per touched
// page and one batched Charge flush, instead of per-instruction
// translate/permission/dispatch work.
//
// This file owns every trace-cache field and all code that reads or writes
// them — tools/lint rejects `.tcache` selectors anywhere else in package cpu,
// mirroring the `.mtlb` confinement — so the identity argument below is an
// audit of this one file (plus the trace-span oracle in proofaudit.go, which
// owns the composed proof slot).
//
// The identity argument (DESIGN.md §13): a trace is a memoised sequence of
// cached-block replays along one predicted control-flow path. Entering it
// elides, per instruction, exactly one architectural fetch translation and
// the block-cache entry/cursor machinery. The elision is sound because the
// entry guard proves the elided work would have been free and hit-only:
//
//   - the block-cache key probe (keyFor) proves the executing context —
//     (VMID, ASID, SCTLR.M) — equals the trace's stitch-time context, so the
//     TTBR half and TLB tagging are unchanged;
//   - per member page, the code-epoch Snapshot equals the stitch-time value,
//     so every member block is still cached and byte-valid (the same check
//     enter() would run), and — MMU on — a TLB Peek finds an exec-permitted,
//     non-overlay entry for the page under the current privilege, so the
//     per-instruction Translate would be a TLB hit: zero cycles, one TLB hit
//     counted, no fault. The replay mirrors that hit count batched through
//     TLB.NoteFastHits.
//
// Mid-trace, generations can only move at instructions dispatched through
// the generic path (loads/stores, terminators): every such step re-checks
// TLB gen + code-epoch gen and the predicted next PC, and side-exits —
// with the block cursor, PC, flushed cycles and flushed stats exactly as an
// untraced replay would have them — on any movement, misprediction, or
// exception delivery (detected by the host-side excSeq counter). Pure ALU
// steps cannot move generations, deliver, observe Cycles, or branch, so
// they skip the checks entirely. Recognized stitch edges — the gate-switch
// MRS reads and MSR PAN toggles of the lz_switch_* sequences — run fused
// handlers that skip generic dispatch when no audit oracle is attached.
//
// A trace dies eagerly when any member page's code epoch bumps (the
// CodeEpochs.OnBump hook), when a member block is evicted (BlockCache
// onEvict/onReset hooks), or lazily at the entry guard when a sibling-page
// region bump moved a Snapshot without firing the page hook.
package cpu

import (
	"sort"
	"sync/atomic"

	"lightzone/internal/arm64"
	"lightzone/internal/arm64/absint"
	"lightzone/internal/mem"
)

// Trace cache geometry. Traces are small (a handful of blocks); the caps
// bound guard cost (pages) and stitch-time work (blocks, insns).
const (
	maxTraces      = 512
	maxTraceBlocks = 16
	maxTraceInsns  = 256
	maxTracePages  = 8
)

// defaultTraceHot is the execution count at which a cached block triggers
// stitching. Low enough that the gate-switch sequences fuse early in a
// benchmark, high enough that one-shot boot code never stitches.
const defaultTraceHot = 16

// Step kinds classify how runTrace dispatches each instruction.
const (
	kPure uint8 = iota // pure ALU/barrier: no deliver, no gen movement, no branch
	kMem               // may access memory or deliver: full post-dispatch checks
	kTerm              // terminator via generic dispatch: flush + PC prediction
	kPAN               // stitch edge: MSR PAN, #imm — fusable
	kMRS               // stitch edge: MRS of a known EL1-readable register — fusable
)

// traceStep is one pre-flattened instruction of a trace: the decoded insn,
// its predicted PC and successor, and the block cursor untraced execution
// would hold at its dispatch (so side-exits resume bit-identically).
type traceStep struct {
	in     arm64.Insn
	pc     uint64
	next   uint64  // predicted PC after this step
	curBlk *dblock // member block if the cursor would still be live, else nil
	bIdx   int     // index of this insn within its member block
	kind   uint8
	end    bool // final instruction of the trace

	// Fused-MRS specialization (kind == kMRS).
	mrsS1     bool // register is stage-1: honour the HCR_EL2.TRVM trap
	fusedReg  arm64.SysReg
	fusedCost int64
}

// tracePage is one virtual page a trace fetches from, with the code-epoch
// snapshot all its member blocks on that page were built under.
type tracePage struct {
	page uint64 // VA >> PageShift (canonical bits preserved)
	snap uint64
}

// trace is one stitched superblock, keyed by its entry block's cache key.
type trace struct {
	key    blockKey
	insns  int
	mmuOff bool
	ttbr1  bool // MMU on: all member PCs in the TTBR1 half
	gate   bool // contains a recognized gate-switch MRS TTBR0_EL1 edge

	blocks []*dblock
	keys   []blockKey
	starts []uint64 // entry PC of each member block
	pages  []tracePage
	steps  []traceStep

	// proof is the composed TraceProof (see proofaudit.go; all access is
	// confined to that file by tools/lint, like dblock.proof).
	proof *absint.TraceProof

	// Entry-guard memo: when gValid and neither generation nor privilege
	// moved since the last full validation, the guard is a three-compare.
	gValid   bool
	gTLBGen  uint64
	gCodeGen uint64
	gPriv    bool
}

// traceCache is the per-vCPU trace state: the stitched traces, insertion
// order for cap eviction, dependency indexes for eager invalidation, and
// host-side counters (flushed to the package aggregates by flushTraceStats).
type traceCache struct {
	enabled   bool
	threshold uint32
	traces    map[blockKey]*trace
	order     []blockKey
	blockDeps map[blockKey][]blockKey // member block key -> trace keys
	pageDeps  map[uint64][]blockKey   // page -> trace keys

	stitched     uint64
	stitchFailed uint64
	entered      uint64
	completed    uint64
	sideExits    uint64
	fused        uint64
	invalidated  uint64
	gateRuns     uint64
	insnsRun     uint64
}

func newTraceCache() traceCache {
	// Maps are created when the first trace is installed: most machines
	// (and every freshly forked child) never stitch one.
	return traceCache{
		enabled:   traceDefault.Load(),
		threshold: uint32(traceHotDefault.Load()),
	}
}

// traceDefault seeds the enabled state of newly created trace caches, so
// tools (lzbench -notrace) can configure machines booted deep inside sweeps.
var traceDefault atomic.Bool

// traceHotDefault seeds the stitch threshold of newly created trace caches.
var traceHotDefault atomic.Int64

func init() {
	traceDefault.Store(true)
	traceHotDefault.Store(defaultTraceHot)
}

// SetTraceDefault sets whether new vCPUs start with trace compilation on.
func SetTraceDefault(on bool) { traceDefault.Store(on) }

// TraceDefault reports the current default for new vCPUs.
func TraceDefault() bool { return traceDefault.Load() }

// SetTraceHotDefault sets the stitch threshold for new vCPUs (minimum 1).
func SetTraceHotDefault(n int) {
	if n < 1 {
		n = 1
	}
	traceHotDefault.Store(int64(n))
}

// TraceHotDefault reports the stitch threshold for new vCPUs.
func TraceHotDefault() int { return int(traceHotDefault.Load()) }

// SetTraces enables or disables trace compilation on this vCPU. All stitched
// traces are dropped either way, so the toggle is safe mid-run: "off" leaves
// the PR 4 block-resident pipeline bit-identical.
func (c *VCPU) SetTraces(on bool) {
	c.dropAllTraces()
	c.tcache.enabled = on
}

// TracesEnabled reports whether trace compilation is active on this vCPU.
func (c *VCPU) TracesEnabled() bool { return c.tcache.enabled }

// SetTraceHotThreshold sets this vCPU's stitch threshold (minimum 1) and
// drops existing traces so tests observe fresh stitching behaviour.
func (c *VCPU) SetTraceHotThreshold(n int) {
	if n < 1 {
		n = 1
	}
	c.dropAllTraces()
	c.tcache.threshold = uint32(n)
}

// TraceCacheLen returns the number of live stitched traces.
func (c *VCPU) TraceCacheLen() int { return len(c.tcache.traces) }

// TraceStats aggregates host-side trace-compiler counters across all vCPUs
// since the last reset. Host observability only — never part of the
// emulated identity surface.
type TraceStats struct {
	Stitched     uint64 // traces successfully composed
	StitchFailed uint64 // stitch attempts abandoned (transient or permanent)
	Entered      uint64 // guarded trace entries taken
	Completed    uint64 // traces that ran to their final instruction
	SideExits    uint64 // traces abandoned mid-run (misprediction, gen move, exception)
	Fused        uint64 // gate-switch/PAN edges executed via fused handlers
	Invalidated  uint64 // traces dropped (epoch bump, eviction, reset, guard)
	GateRuns     uint64 // entries into traces containing a gate-switch edge
	InsnsRun     uint64 // instructions retired inside traces
}

// Sub returns the counter delta s-o, for windowed measurement.
func (s TraceStats) Sub(o TraceStats) TraceStats {
	return TraceStats{
		Stitched:     s.Stitched - o.Stitched,
		StitchFailed: s.StitchFailed - o.StitchFailed,
		Entered:      s.Entered - o.Entered,
		Completed:    s.Completed - o.Completed,
		SideExits:    s.SideExits - o.SideExits,
		Fused:        s.Fused - o.Fused,
		Invalidated:  s.Invalidated - o.Invalidated,
		GateRuns:     s.GateRuns - o.GateRuns,
		InsnsRun:     s.InsnsRun - o.InsnsRun,
	}
}

var (
	tStitched     atomic.Uint64
	tStitchFailed atomic.Uint64
	tEntered      atomic.Uint64
	tCompleted    atomic.Uint64
	tSideExits    atomic.Uint64
	tFused        atomic.Uint64
	tInvalidated  atomic.Uint64
	tGateRuns     atomic.Uint64
	tInsnsRun     atomic.Uint64
)

// ReadTraceStats snapshots the global trace counters.
func ReadTraceStats() TraceStats {
	return TraceStats{
		Stitched:     tStitched.Load(),
		StitchFailed: tStitchFailed.Load(),
		Entered:      tEntered.Load(),
		Completed:    tCompleted.Load(),
		SideExits:    tSideExits.Load(),
		Fused:        tFused.Load(),
		Invalidated:  tInvalidated.Load(),
		GateRuns:     tGateRuns.Load(),
		InsnsRun:     tInsnsRun.Load(),
	}
}

// ResetTraceStats zeroes the global trace counters.
func ResetTraceStats() {
	tStitched.Store(0)
	tStitchFailed.Store(0)
	tEntered.Store(0)
	tCompleted.Store(0)
	tSideExits.Store(0)
	tFused.Store(0)
	tInvalidated.Store(0)
	tGateRuns.Store(0)
	tInsnsRun.Store(0)
}

// flushTraceStats folds this vCPU's trace counters into the package
// aggregates (called at the end of every Run, like notePerf).
func (c *VCPU) flushTraceStats() {
	tc := &c.tcache
	if tc.stitched|tc.stitchFailed|tc.entered|tc.completed|tc.sideExits|
		tc.fused|tc.invalidated|tc.gateRuns|tc.insnsRun == 0 {
		return
	}
	// Per-counter guards: a Run typically moves only the entry/completion
	// counters, and uncontended atomic adds still dominate this path.
	if tc.stitched != 0 {
		tStitched.Add(tc.stitched)
	}
	if tc.stitchFailed != 0 {
		tStitchFailed.Add(tc.stitchFailed)
	}
	if tc.entered != 0 {
		tEntered.Add(tc.entered)
	}
	if tc.completed != 0 {
		tCompleted.Add(tc.completed)
	}
	if tc.sideExits != 0 {
		tSideExits.Add(tc.sideExits)
	}
	if tc.fused != 0 {
		tFused.Add(tc.fused)
	}
	if tc.invalidated != 0 {
		tInvalidated.Add(tc.invalidated)
	}
	if tc.gateRuns != 0 {
		tGateRuns.Add(tc.gateRuns)
	}
	if tc.insnsRun != 0 {
		tInsnsRun.Add(tc.insnsRun)
	}
	tc.stitched, tc.stitchFailed, tc.entered, tc.completed = 0, 0, 0, 0
	tc.sideExits, tc.fused, tc.invalidated, tc.gateRuns, tc.insnsRun = 0, 0, 0, 0, 0
}

// pureOp reports whether the op's handler is a pure register/PSTATE
// computation (or a charge-only barrier): it cannot access memory, deliver
// an exception, observe Cycles, branch, or move any generation. These steps
// skip cursor maintenance and all post-dispatch checks inside a trace.
func pureOp(op arm64.Op) bool {
	switch op {
	case arm64.OpNOP, arm64.OpMOVZ, arm64.OpMOVK, arm64.OpMOVN, arm64.OpADR,
		arm64.OpAddImm, arm64.OpSubImm, arm64.OpAddReg, arm64.OpSubReg,
		arm64.OpAndReg, arm64.OpOrrReg, arm64.OpEorReg,
		arm64.OpLSLV, arm64.OpLSRV, arm64.OpMAdd, arm64.OpUDiv,
		arm64.OpUBFM, arm64.OpCSel, arm64.OpCSInc,
		arm64.OpISB, arm64.OpDSB, arm64.OpDMB:
		return true
	}
	return false
}

// noteBlockHot is called by BlockCache.enter on every validated block entry.
// The counter saturates at the stitch threshold: a successful stitch keys
// the trace here, a permanent failure pins the counter so the walk never
// re-runs, and a transient failure (successor not cached yet) resets it so
// a warmer pass retries.
func (c *VCPU) noteBlockHot(b *dblock, key blockKey, pc uint64) {
	tc := &c.tcache
	if !tc.enabled || b.hot >= tc.threshold {
		return
	}
	b.hot++
	if b.hot == tc.threshold {
		c.maybeStitch(b, key, pc)
	}
}

// maybeStitch walks forward from a newly hot block across direct edges —
// B, BL into a leaf whose RET matches the call, predicted-direction
// conditionals, fused MSR-PAN / MRS fall-throughs, and page-boundary
// fall-throughs — collecting cached, epoch-valid successor blocks into a
// superblock. The walk never touches emulated state or stats: successors
// are probed directly in the block map (not via enter, which mutates
// CodeStale), and context interning cannot reset mid-walk because the
// same-half constraint keeps every keyFor on the one-entry context cache.
func (c *VCPU) maybeStitch(b *dblock, key blockKey, pc uint64) {
	tc := &c.tcache
	if _, dup := tc.traces[key]; dup {
		return
	}
	d := c.Decoded
	mmuOff := c.sys[arm64.SCTLREL1]&SCTLRM == 0
	ttbr1 := !mmuOff && mem.IsTTBR1(mem.VA(pc))

	blocks := []*dblock{b}
	keys := []blockKey{key}
	starts := []uint64{pc}
	isStart := map[uint64]bool{pc: true}
	pages := []tracePage{{page: b.page, snap: b.snap}}
	pageSeen := map[uint64]bool{b.page: true}
	var edges []absint.TraceEdge
	var retStack []uint64
	gate := false
	insns := len(b.insns)

	cur, curStart := b, pc
walk:
	for len(blocks) < maxTraceBlocks && insns < maxTraceInsns {
		last := cur.insns[len(cur.insns)-1]
		termPC := curStart + uint64(len(cur.insns)-1)*arm64.InsnBytes
		edge := absint.TraceEdge{Term: last.Op}
		var next uint64
		switch last.Op {
		case arm64.OpB:
			next = termPC + uint64(last.Imm)
		case arm64.OpBL:
			next = termPC + uint64(last.Imm)
			retStack = append(retStack, termPC+arm64.InsnBytes)
		case arm64.OpRET:
			// Only a RET through x30 balancing an in-trace BL is predictable.
			if last.Rn != 30 || len(retStack) == 0 {
				break walk
			}
			next = retStack[len(retStack)-1]
			retStack = retStack[:len(retStack)-1]
		case arm64.OpBCond, arm64.OpCBZ, arm64.OpCBNZ:
			if last.Imm < 0 {
				// Backward conditional: predict taken (loop shape). A target
				// equal to the fall-through cannot be backward, so the
				// prediction charges BranchCost iff it holds.
				edge.TakenPred = true
				next = termPC + uint64(last.Imm)
			} else {
				next = termPC + arm64.InsnBytes
			}
		case arm64.OpMSRImm:
			switch {
			case last.Sys.Op1 == arm64.PStateFieldPANOp1 && last.Sys.Op2 == arm64.PStateFieldPANOp2:
				edge.FusedPAN = true
			case last.Sys.Op1 == arm64.PStateFieldSPSel1 && last.Sys.Op2 == arm64.PStateFieldSPSel2:
				// SPSel flip: plain fall-through edge via generic dispatch.
			default:
				break walk // undecoded pstate field would deliver
			}
			next = termPC + arm64.InsnBytes
		case arm64.OpMRS:
			r, known := arm64.LookupSysReg(last.Sys)
			if !known || r.MinEL() > arm64.EL1 {
				break walk
			}
			edge.ChargeFree = true
			if r == arm64.TTBR0EL1 {
				gate = true // the gate check-phase reads TTBR0_EL1
			}
			next = termPC + arm64.InsnBytes
		default:
			if last.Op.Terminates() {
				// Indirect branches, exception generators, sysreg writes,
				// SYS space, undecodable words: never stitch across.
				break walk
			}
			// Page-boundary block: the last instruction falls through.
			next = termPC + arm64.InsnBytes
		}
		if isStart[next] {
			break // loop closure: end the trace at the back edge
		}
		if !mmuOff && mem.IsTTBR1(mem.VA(next)) != ttbr1 {
			break // one TTBR/ASID must cover the whole trace
		}
		skey := d.keyFor(c, next)
		sb := d.blocks[skey]
		if sb == nil || c.TLB.Code.Snapshot(sb.page) != sb.snap {
			// Successor not (validly) cached yet: transient. Reset the hot
			// counter so a later, warmer pass retries the stitch.
			b.hot = 0
			tc.stitchFailed++
			return
		}
		if insns+len(sb.insns) > maxTraceInsns ||
			(!pageSeen[sb.page] && len(pages) >= maxTracePages) {
			break
		}
		if !pageSeen[sb.page] {
			pageSeen[sb.page] = true
			pages = append(pages, tracePage{page: sb.page, snap: sb.snap})
		}
		edges = append(edges, edge)
		blocks = append(blocks, sb)
		keys = append(keys, skey)
		starts = append(starts, next)
		isStart[next] = true
		insns += len(sb.insns)
		cur, curStart = sb, next
	}
	if len(blocks) < 2 {
		tc.stitchFailed++ // permanent: hot stays pinned, no re-walk
		return
	}

	t := &trace{
		key: key, insns: insns, mmuOff: mmuOff, ttbr1: ttbr1, gate: gate,
		blocks: blocks, keys: keys, starts: starts, pages: pages,
	}
	t.steps = c.flattenSteps(blocks, starts, edges)
	if !c.buildTraceProof(t, edges) {
		tc.stitchFailed++
		return
	}
	if len(tc.traces) >= maxTraces {
		c.evictTraces()
	}
	if tc.traces == nil {
		tc.traces = make(map[blockKey]*trace)
		tc.blockDeps = make(map[blockKey][]blockKey)
		tc.pageDeps = make(map[uint64][]blockKey)
	}
	tc.traces[key] = t
	tc.order = append(tc.order, key)
	for _, k := range keys {
		tc.blockDeps[k] = append(tc.blockDeps[k], key)
	}
	for _, pg := range pages {
		tc.pageDeps[pg.page] = append(tc.pageDeps[pg.page], key)
	}
	tc.stitched++
}

// flattenSteps lowers the member blocks into the per-instruction step list,
// classifying each step's dispatch kind and recording the block cursor an
// untraced replay would hold at its dispatch.
func (c *VCPU) flattenSteps(blocks []*dblock, starts []uint64, edges []absint.TraceEdge) []traceStep {
	var steps []traceStep
	for mi, blk := range blocks {
		n := len(blk.insns)
		for i, in := range blk.insns {
			st := traceStep{
				in:   in,
				pc:   starts[mi] + uint64(i)*arm64.InsnBytes,
				bIdx: i,
			}
			st.next = st.pc + arm64.InsnBytes
			if i+1 < n {
				st.curBlk = blk
			}
			switch {
			case i < n-1: // interior instruction
				if pureOp(in.Op) {
					st.kind = kPure
				} else {
					st.kind = kMem
				}
			case mi < len(blocks)-1: // stitch edge
				st.next = starts[mi+1]
				e := edges[mi]
				switch {
				case e.FusedPAN:
					st.kind = kPAN
				case in.Op == arm64.OpMRS:
					st.kind = kMRS
					r, _ := arm64.LookupSysReg(in.Sys)
					st.fusedReg = r
					st.mrsS1 = arm64.IsStage1Reg(r)
					st.fusedCost = c.Prof.SysRegReadCost(r)
				case in.Op.Terminates():
					st.kind = kTerm
				case pureOp(in.Op):
					st.kind = kPure // pure page-boundary fall-through
				default:
					st.kind = kMem
				}
			default: // final instruction of the trace
				st.end = true
				switch {
				case in.Op.Terminates():
					st.kind = kTerm
				case pureOp(in.Op):
					st.kind = kPure
				default:
					st.kind = kMem
				}
			}
			steps = append(steps, st)
		}
	}
	return steps
}

// pickTrace returns the guarded trace starting at the current PC, or nil.
// Called only with a dead block cursor, at EL0/EL1, with host fastpaths on.
func (c *VCPU) pickTrace(remaining int64) *trace {
	tc := &c.tcache
	if !tc.enabled || len(tc.traces) == 0 {
		return nil
	}
	if c.PendingIRQ && c.PState&arm64.PStateI == 0 {
		return nil // the IRQ delivers first, on Step's budget unit
	}
	// keyFor proves the executing context (VMID, ASID, SCTLR.M, TTBR half)
	// equals the stitch-time context; it may intern a new context and reset
	// the block cache — which drops all traces — so the lookup runs after.
	key := c.Decoded.keyFor(c, c.PC)
	t := tc.traces[key]
	if t == nil || int64(t.insns) > remaining {
		return nil
	}
	if !c.traceGuard(t) {
		return nil
	}
	return t
}

// traceGuard proves the trace's elided per-instruction fetches would all be
// free TLB hits (or free flat fetches, MMU off) right now. Epoch mismatch is
// a hard failure — the member blocks are stale, so the trace is dropped;
// TLB pressure (Peek miss) or a permission/overlay change is soft — the
// trace stays cached and this entry falls back to the block pipeline, which
// performs exactly the untraced work.
func (c *VCPU) traceGuard(t *trace) bool {
	if t.mmuOff {
		// Flat fetches never touch the TLB; stage-2 must still be off, or
		// each fetch would charge a stage-2 walk the trace elides.
		if c.stage2Enabled() {
			return false
		}
		if t.gValid && c.TLB.Code.Gen() == t.gCodeGen {
			return true
		}
		for i := range t.pages {
			pg := &t.pages[i]
			if c.TLB.Code.Snapshot(pg.page) != pg.snap {
				c.dropTrace(t)
				return false
			}
		}
		t.gValid = true
		t.gCodeGen = c.TLB.Code.Gen()
		return true
	}
	priv := c.EL() != arm64.EL0
	if t.gValid && c.TLB.Gen() == t.gTLBGen &&
		c.TLB.Code.Gen() == t.gCodeGen && priv == t.gPriv {
		return true
	}
	vmid := c.CurrentVMID()
	ttbr := c.sys[arm64.TTBR0EL1]
	if t.ttbr1 {
		ttbr = c.sys[arm64.TTBR1EL1]
	}
	asid := TTBRASID(ttbr)
	for i := range t.pages {
		pg := &t.pages[i]
		if c.TLB.Code.Snapshot(pg.page) != pg.snap {
			c.dropTrace(t)
			return false
		}
		e, ok := c.TLB.Peek(vmid, asid, mem.VA(pg.page<<mem.PageShift))
		if !ok {
			return false // would walk: fall back to the block pipeline
		}
		if mem.OverlayKey(e.S1Desc) != 0 {
			return false // overlay verdicts move without a generation bump
		}
		// PAN never restricts execution, so it is deliberately absent here.
		if mem.CheckStage1(e.S1Desc, mem.AccessExec, priv, false, false) != mem.FaultNone {
			return false
		}
		if e.HasS2 && mem.CheckStage2(e.S2Desc, mem.AccessExec) != mem.FaultNone {
			return false
		}
	}
	t.gValid = true
	t.gTLBGen = c.TLB.Gen()
	t.gCodeGen = c.TLB.Code.Gen()
	t.gPriv = priv
	return true
}

// runTrace replays a guarded trace. Per instruction it performs exactly the
// emulated-surface work the block pipeline would — Insns, CodeHits, one TLB
// hit (batched), InsnCost (batched), handler dispatch — while eliding the
// per-instruction Translate and cursor machinery the guard proved free.
// Every exit path leaves PC, the block cursor, Cycles and Stats bit-equal
// to an untraced replay of the same instructions.
func (c *VCPU) runTrace(t *trace) (int64, *Exit, error) {
	tc := &c.tcache
	tc.entered++
	if t.gate {
		tc.gateRuns++
	}
	aud := c.audit
	if aud != nil {
		aud.noteTraceEnter(c, t)
	}
	tlbGen0 := c.TLB.Gen()
	codeGen0 := c.TLB.Code.Gen()
	seq0 := c.excSeq
	mmuOn := !t.mmuOff
	var pendHits uint64
	var done int64
	finish := func() {
		if pendHits != 0 {
			c.TLB.NoteFastHits(pendHits)
		}
		c.flushBatch()
		tc.insnsRun += uint64(done)
	}
	for i := range t.steps {
		st := &t.steps[i]
		c.Insns++
		done++
		c.batch += c.Prof.InsnCost
		c.Stats.CodeHits++
		if mmuOn {
			pendHits++
		}
		c.nextPC = st.pc + arm64.InsnBytes
		if aud != nil {
			aud.noteTraceStep(c, i)
		}
		switch st.kind {
		case kPure:
			handlers[st.in.Op](c, st.in)
			c.PC = c.nextPC
			if st.end {
				// A stale mid-trace cursor must never survive the trace: a
				// coincidental expect match would replay instead of enter.
				c.cur = blockCursor{}
				tc.completed++
				finish()
				return done, nil, nil
			}
			continue
		case kPAN:
			if aud == nil && c.EL() != arm64.EL0 {
				c.batch += c.Prof.PanToggleCost
				c.SetPAN(st.in.Sys.CRm&1 != 0)
				tc.fused++
				c.PC = c.nextPC
				continue
			}
		case kMRS:
			if aud == nil && c.EL() == arm64.EL1 &&
				(!st.mrsS1 || c.sys[arm64.HCREL2]&HCRTRVM == 0) {
				c.batch += st.fusedCost
				c.SetR(st.in.Rt, c.sys[st.fusedReg])
				tc.fused++
				c.PC = c.nextPC
				continue
			}
		}
		// Generic dispatch: runBlock's exact per-instruction sequence. The
		// cursor is set first so exception delivery, self-modifying-code
		// cursor kills, and side-exit resumption all see the state an
		// untraced replay would have at this point.
		c.cur = blockCursor{blk: st.curBlk, idx: st.bIdx + 1, expect: st.pc + arm64.InsnBytes}
		if st.in.Op.Terminates() {
			c.flushBatch()
		}
		exit := handlers[st.in.Op](c, st.in)
		if c.stepErr != nil {
			err := c.stepErr
			c.stepErr = nil
			if aud != nil {
				aud.abandonTraceSpan()
			}
			tc.sideExits++
			finish()
			return done, nil, err
		}
		if exit != nil {
			if st.end {
				// An exit on the final step (HVC and friends as the trace
				// terminator) is a completion, not an abandonment.
				tc.completed++
			}
			if aud != nil {
				aud.abandonTraceSpan()
			}
			finish()
			return done, exit, nil
		}
		c.PC = c.nextPC
		if st.end {
			tc.completed++
			finish()
			return done, nil, nil
		}
		if c.excSeq != seq0 || c.PC != st.next ||
			(st.kind == kMem && (c.TLB.Gen() != tlbGen0 || c.TLB.Code.Gen() != codeGen0)) {
			// Exception delivered, branch mispredicted, or a memory effect
			// moved a generation the entry guard froze: resume untraced.
			if aud != nil {
				aud.abandonTraceSpan()
			}
			tc.sideExits++
			finish()
			return done, nil, nil
		}
	}
	// Unreachable: the final step always has end set.
	finish()
	return done, nil, nil
}

// dropTrace removes one trace and unpins its entry block's hot counter so
// the block can re-trigger stitching after the world settles.
func (c *VCPU) dropTrace(t *trace) {
	tc := &c.tcache
	if tc.traces[t.key] != t {
		return
	}
	delete(tc.traces, t.key)
	t.blocks[0].hot = 0
	t.gValid = false
	tc.invalidated++
}

// dropTracesForPage drops every trace with a member block on the page.
// Stale dependency entries (traces already dropped through another index)
// are skipped.
func (c *VCPU) dropTracesForPage(page uint64) {
	tc := &c.tcache
	deps := tc.pageDeps[page]
	if deps == nil {
		return
	}
	for _, k := range deps {
		if t := tc.traces[k]; t != nil {
			c.dropTrace(t)
		}
	}
	delete(tc.pageDeps, page)
}

// dropTracesForBlockKey drops every trace referencing the evicted block —
// the BlockCache cohort-eviction hook. A dangling trace would otherwise
// keep replaying (and re-validating) a block the cache no longer owns.
func (c *VCPU) dropTracesForBlockKey(key blockKey) {
	tc := &c.tcache
	deps := tc.blockDeps[key]
	if deps == nil {
		return
	}
	for _, k := range deps {
		if t := tc.traces[k]; t != nil {
			c.dropTrace(t)
		}
	}
	delete(tc.blockDeps, key)
}

// dropAllTraces empties the trace cache (wholesale epoch bump, block-cache
// reset — interned context ids dangle after a reset, so every key does too).
func (c *VCPU) dropAllTraces() {
	tc := &c.tcache
	if len(tc.traces) == 0 {
		return
	}
	for _, t := range tc.traces {
		t.blocks[0].hot = 0
		tc.invalidated++
	}
	clear(tc.traces)
	clear(tc.blockDeps)
	clear(tc.pageDeps)
	tc.order = tc.order[:0]
}

// evictTraces drops the oldest half of the traces (cap pressure), then
// rebuilds the dependency indexes from the survivors.
func (c *VCPU) evictTraces() {
	tc := &c.tcache
	target := len(tc.traces) / 2
	evicted := 0
	i := 0
	for ; i < len(tc.order) && evicted < target; i++ {
		if t := tc.traces[tc.order[i]]; t != nil {
			c.dropTrace(t)
			evicted++
		}
	}
	tc.order = append(tc.order[:0], tc.order[i:]...)
	clear(tc.blockDeps)
	clear(tc.pageDeps)
	for key, t := range tc.traces {
		for _, k := range t.keys {
			tc.blockDeps[k] = append(tc.blockDeps[k], key)
		}
		for _, pg := range t.pages {
			tc.pageDeps[pg.page] = append(tc.pageDeps[pg.page], key)
		}
	}
}

// onCodeEpochBump is the CodeEpochs.OnBump hook: eager trace invalidation
// on the page (or wholesale) granularity. Region-granular side effects on
// sibling pages are caught lazily by the guard's Snapshot check.
func (c *VCPU) onCodeEpochBump(va mem.VA, wholesale bool) {
	if len(c.tcache.traces) == 0 {
		return
	}
	if wholesale {
		c.dropAllTraces()
		return
	}
	c.dropTracesForPage(uint64(va) >> mem.PageShift)
}

// TraceInfo describes one stitched trace for verifiers and tests:
// its keying context, shape, member identity, and whether its guard state
// still holds. Observation-only.
type TraceInfo struct {
	EntryPC    uint64
	VMID       uint16
	ASID       uint16
	MMUOff     bool
	Blocks     int
	Insns      int
	Pages      int
	GateSwitch bool
	// EpochOK: every member page's code epoch still matches the stitch-time
	// snapshot. DepsOK: every member block is still the cached block under
	// its key. A live (replayable) trace has both.
	EpochOK bool
	DepsOK  bool
	PCs     []uint64 // predicted PC of every instruction, trace order
	Raw     []uint32 // raw words, trace order
}

// TraceSnapshot returns a deterministic snapshot of the trace cache (sorted
// by context then entry PC). Observation-only: no stats or epochs move.
func (c *VCPU) TraceSnapshot() []TraceInfo {
	tc := &c.tcache
	d := c.Decoded
	out := make([]TraceInfo, 0, len(tc.traces))
	for key, t := range tc.traces {
		ctx := d.ctxList[key>>blockCtxShift]
		info := TraceInfo{
			EntryPC:    t.starts[0],
			VMID:       ctx.vmid,
			ASID:       ctx.asid,
			MMUOff:     ctx.mmuOff,
			Blocks:     len(t.blocks),
			Insns:      t.insns,
			Pages:      len(t.pages),
			GateSwitch: t.gate,
			EpochOK:    true,
			DepsOK:     true,
			PCs:        make([]uint64, 0, len(t.steps)),
			Raw:        make([]uint32, 0, len(t.steps)),
		}
		for i := range t.pages {
			if c.TLB.Code.Snapshot(t.pages[i].page) != t.pages[i].snap {
				info.EpochOK = false
			}
		}
		for i, k := range t.keys {
			if d.blocks[k] != t.blocks[i] {
				info.DepsOK = false
			}
		}
		for i := range t.steps {
			info.PCs = append(info.PCs, t.steps[i].pc)
			info.Raw = append(info.Raw, t.steps[i].in.Raw)
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.VMID != b.VMID {
			return a.VMID < b.VMID
		}
		if a.ASID != b.ASID {
			return a.ASID < b.ASID
		}
		if a.MMUOff != b.MMUOff {
			return !a.MMUOff
		}
		return a.EntryPC < b.EntryPC
	})
	return out
}
