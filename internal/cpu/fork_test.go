package cpu

import (
	"testing"

	"lightzone/internal/arm64"
	"lightzone/internal/mem"
)

// forkEnv forks e's physical memory and vCPU and wraps them with a cloned
// stage-1 walker so the child can load and rerun programs on its own side
// of the COW boundary.
func (e *env) fork(t testing.TB) *env {
	t.Helper()
	pm2 := e.pm.Fork()
	c2 := e.c.Fork(pm2)
	return &env{c: c2, pm: pm2, s1: e.s1.CloneFor(pm2)}
}

// TestForkArchitecturalIdentity: a forked vCPU must agree with its parent on
// every digest-visible field — registers, PC, PSTATE, cycle and instruction
// totals, TLB hit/miss history — while starting with cold host-side caches
// (the decode cache is observability, not architecture).
func TestForkArchitecturalIdentity(t *testing.T) {
	e := newEnv(t)
	e.load(t, sumProgram(50))
	e.run(t, 1000)
	f := e.fork(t)

	if f.c.R(0) != e.c.R(0) || f.c.PC != e.c.PC || f.c.PState != e.c.PState {
		t.Error("forked register state differs from parent")
	}
	if f.c.Cycles != e.c.Cycles || f.c.Insns != e.c.Insns {
		t.Errorf("fork cycle accounting differs: %d/%d vs %d/%d",
			f.c.Cycles, f.c.Insns, e.c.Cycles, e.c.Insns)
	}
	if f.c.Stats.TLBHits != e.c.Stats.TLBHits || f.c.Stats.TLBMisses != e.c.Stats.TLBMisses {
		t.Error("fork TLB statistics differ from parent")
	}
	if got := f.c.DecodeCacheLen(); got != 0 {
		t.Errorf("forked decode cache holds %d blocks, want 0 (host caches start cold)", got)
	}

	// Both sides rerun the same program and must stay in lockstep.
	e.rerun(t, 1000)
	f.rerun(t, 1000)
	if f.c.R(0) != e.c.R(0) || f.c.Cycles != e.c.Cycles || f.c.Insns != e.c.Insns {
		t.Errorf("post-fork reruns diverged: x0 %d vs %d, cycles %d vs %d",
			f.c.R(0), e.c.R(0), f.c.Cycles, e.c.Cycles)
	}
}

// TestForkChildSelfModifyIsolated: the child rewrites its own code after the
// fork; the rewrite must privatize the code frame, bump the CHILD's code
// epochs, and leave the parent's memory, cached blocks, and counters
// untouched — the parent replays its warm blocks with zero stale rejects.
func TestForkChildSelfModifyIsolated(t *testing.T) {
	e := newEnv(t)
	e.load(t, sumProgram(10))
	e.run(t, 1000)
	if e.c.DecodeCacheLen() == 0 {
		t.Fatal("parent cache not warm before fork")
	}
	f := e.fork(t)

	// Child loads and runs the self-patching program (same shape as
	// TestSelfModifyingCodeReDecode): first call returns 1, then the MOVZ
	// word is rewritten through an emulated store, second call must see 2.
	a := arm64.NewAsm()
	a.B("main")
	a.Label("patch")
	a.Emit(arm64.MOVZ(0, 1, 0))
	a.Emit(arm64.RET(30))
	a.Label("main")
	a.BL("patch")
	a.Emit(arm64.ADDReg(9, 0, 31))
	a.ADR(1, "patch")
	a.MovImm(2, uint64(arm64.MOVZ(0, 2, 0)))
	a.Emit(arm64.STRImm(2, 1, 0, 2))
	a.BL("patch")
	a.Emit(arm64.HVC(0))
	f.load(t, a)

	parentInval := e.c.Stats.CodeInvalidations
	f.rerun(t, 1000)
	if f.c.R(9) != 1 || f.c.R(0) != 2 {
		t.Errorf("child self-modify: first=%d last=%d, want 1 then 2", f.c.R(9), f.c.R(0))
	}
	if f.c.Stats.CodeInvalidations == 0 {
		t.Error("child's store to its executable page did not bump the child's code epochs")
	}
	if e.c.Stats.CodeInvalidations != parentInval {
		t.Error("child's code rewrite bumped the PARENT's code epochs")
	}
	if e.pm.COWCopies() != 0 {
		t.Errorf("parent privatized %d frames without writing", e.pm.COWCopies())
	}
	if f.pm.COWCopies() == 0 {
		t.Error("child's code rewrite did not privatize the shared frame")
	}

	// The parent still runs the original program from its untouched frame
	// and its warm blocks survive: no stale rejects, same sum.
	staleBefore := e.c.Stats.CodeStale
	e.rerun(t, 1000)
	if e.c.R(0) != 55 {
		t.Errorf("parent sum after child rewrite = %d, want 55 (child write leaked)", e.c.R(0))
	}
	if e.c.Stats.CodeStale != staleBefore {
		t.Error("parent blocks went stale after a child-side write")
	}
}

// TestForkEpochBumpOnlyCodePages: after a fork, a guest store to a plain
// data page privatizes the frame but must NOT bump code epochs; a store to
// the page holding the executing code must. Each store costs exactly one
// COW copy.
func TestForkEpochBumpOnlyCodePages(t *testing.T) {
	e := newEnv(t)
	// Warm the data page so it is shared (materialized) across the fork.
	if err := e.pm.Write(mustPA(t, e.s1, dataVA), []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	e.load(t, sumProgram(5))
	e.run(t, 1000)
	f := e.fork(t)

	// Store to the data page: one copy, zero epoch bumps.
	a := arm64.NewAsm()
	a.MovImm(1, uint64(dataVA))
	a.MovImm(2, 0x5a)
	a.Emit(arm64.STRImm(2, 1, 0, 3))
	a.Emit(arm64.HVC(0))
	f.load(t, a) // privatizes the code frame: copy #1
	copies := f.pm.COWCopies()
	inval := f.c.Stats.CodeInvalidations
	f.rerun(t, 100)
	if got := f.pm.COWCopies() - copies; got != 1 {
		t.Errorf("store to shared data page made %d copies, want exactly 1", got)
	}
	if f.c.Stats.CodeInvalidations != inval {
		t.Error("store to a non-executable data page bumped code epochs")
	}

	// Store into the executing code page (past the program): epoch bump.
	// Loading fresh code is a host-side patch, so invalidate explicitly
	// (the module-writer contract) and measure the guest store's bump on
	// top of that.
	a2 := arm64.NewAsm()
	a2.MovImm(1, uint64(codeVA)+0x800)
	a2.MovImm(2, 0x5a)
	a2.Emit(arm64.STRImm(2, 1, 0, 3))
	a2.Emit(arm64.HVC(0))
	f.load(t, a2)
	f.c.InvalidateCode(codeVA)
	inval = f.c.Stats.CodeInvalidations
	f.rerun(t, 100)
	if f.c.Stats.CodeInvalidations == inval {
		t.Error("store into the executing code page did not bump the child's code epochs")
	}
}

// TestForkChildTraceInvalidation mirrors the PR 9 trace-staleness tests
// across the fork boundary: parent and child both stitch traces over the
// same hot loop; the child's code rewrite drops the CHILD's traces while
// the parent's stay live.
func TestForkChildTraceInvalidation(t *testing.T) {
	// One program, two paths picked by x10 so no code reload is needed:
	// x10=0 runs the stitchable chain (loops never stitch), x10=1 stores
	// into the code page itself.
	a := arm64.NewAsm()
	a.Emit(arm64.SUBSImm(11, 10, 0)) // flags from x10
	a.BCond(arm64.CondEQ, "chain")
	a.MovImm(1, uint64(codeVA)+0x800)
	a.MovImm(2, 0x5a)
	a.Emit(arm64.STRImm(2, 1, 0, 3))
	a.Emit(arm64.HVC(0))
	a.Label("chain")
	a.MovImm(0, 0)
	a.B("b1")
	a.Label("b1")
	a.Emit(arm64.ADDImm(0, 0, 1, false))
	a.B("b2")
	a.Label("b2")
	a.Emit(arm64.ADDImm(0, 0, 2, false))
	a.BL("leaf")
	a.Emit(arm64.ADDImm(0, 0, 4, false))
	a.Emit(arm64.HVC(0))
	a.Label("leaf")
	a.Emit(arm64.ADDImm(0, 0, 8, false))
	a.Emit(arm64.RET(30))

	e := newEnv(t)
	e.c.SetTraces(true)
	e.c.SetTraceHotThreshold(2)
	e.load(t, a)
	e.run(t, 1000)
	for i := 0; i < 4; i++ {
		e.rerun(t, 1000)
	}
	if e.c.TraceCacheLen() == 0 {
		t.Fatal("parent stitched no traces over the hot chain")
	}
	f := e.fork(t)
	if !f.c.TracesEnabled() {
		t.Fatal("fork dropped the traces-enabled setting")
	}
	f.c.SetTraceHotThreshold(2)
	for i := 0; i < 4; i++ {
		f.rerun(t, 1000)
	}
	if f.c.TraceCacheLen() == 0 {
		t.Fatal("child stitched no traces after fork")
	}

	// Child takes the patch path: the store lands on the traced page, so
	// the CHILD's traces drop eagerly via the epoch hook; the parent's
	// stay live and keep replaying.
	f.c.X[10] = 1
	f.rerun(t, 1000)
	if got := f.c.TraceCacheLen(); got != 0 {
		t.Errorf("child keeps %d traces after rewriting its code page", got)
	}
	if e.c.TraceCacheLen() == 0 {
		t.Error("parent's traces were dropped by a child-side rewrite")
	}
	e.rerun(t, 1000)
	if e.c.R(0) != 15 {
		t.Errorf("parent chain sum = %d, want 15", e.c.R(0))
	}
}

// mustPA resolves a mapped VA's physical frame through the stage-1 walker.
func mustPA(t testing.TB, s1 *mem.Stage1, va mem.VA) mem.PA {
	t.Helper()
	res, err := s1.Walk(va)
	if err != nil || !res.Found {
		t.Fatalf("walk %v: %+v, %v", va, res, err)
	}
	return res.PA
}
