package cpu

import (
	"testing"

	"lightzone/internal/arm64"
	"lightzone/internal/mem"
)

// TestHostFastpathMatrixIdentity runs the same program under every
// combination of {host fastpaths, decode cache} and requires bit-identical
// emulated cycles, instruction counts, results and TLB statistics — the
// fastpaths may only remove host work, never emulated work.
func TestHostFastpathMatrixIdentity(t *testing.T) {
	type sig struct {
		cycles, insns      int64
		sum                uint64
		tlbHits, tlbMisses uint64
		codeHits           uint64
	}
	run := func(fast, decode bool) sig {
		e := newEnv(t)
		e.c.SetHostFastpaths(fast)
		e.c.SetDecodeCache(decode)
		e.load(t, sumProgram(100))
		e.run(t, 10000)
		return sig{
			cycles: e.c.Cycles, insns: e.c.Insns, sum: e.c.R(0),
			tlbHits: e.c.Stats.TLBHits, tlbMisses: e.c.Stats.TLBMisses,
			codeHits: e.c.Stats.CodeHits,
		}
	}
	base := run(false, true)
	for _, m := range []struct {
		name         string
		fast, decode bool
	}{
		{"fast+decode", true, true},
		{"fast-only", true, false},
		{"neither", false, false},
	} {
		got := run(m.fast, m.decode)
		if got.cycles != base.cycles || got.insns != base.insns || got.sum != base.sum {
			t.Errorf("%s: cycles/insns/sum = %d/%d/%d, want %d/%d/%d",
				m.name, got.cycles, got.insns, got.sum, base.cycles, base.insns, base.sum)
		}
		if got.tlbHits != base.tlbHits || got.tlbMisses != base.tlbMisses {
			t.Errorf("%s: TLB hits/misses = %d/%d, want %d/%d",
				m.name, got.tlbHits, got.tlbMisses, base.tlbHits, base.tlbMisses)
		}
		if m.decode && got.codeHits != base.codeHits {
			t.Errorf("%s: code hits = %d, want %d", m.name, got.codeHits, base.codeHits)
		}
	}
}

// TestMicroTLBStaleAfterTLBEviction floods the real TLB past its capacity
// (evicting the program's entries via FIFO replacement) and checks the
// micro-TLBs observe the generation bump: the next fetch must miss the
// fastpath, and the re-walked rerun must cost exactly what the slow path
// costs.
func TestMicroTLBStaleAfterTLBEviction(t *testing.T) {
	flood := func(e *env) {
		for i := 0; i < e.c.Prof.TLBCapacity+8; i++ {
			va := mem.VA(0x1000000 + uint64(i)*uint64(mem.PageSize))
			e.c.TLB.Insert(0, 7, va, mem.TLBEntry{S1Desc: mem.AttrNG, BlockShift: mem.PageShift})
		}
	}
	run := func(fast bool) (int64, int64, uint64) {
		e := newEnv(t)
		e.c.SetHostFastpaths(fast)
		e.load(t, sumProgram(20))
		e.run(t, 1000)
		if fast {
			iH, _, _, _ := e.c.MicroTLBStats()
			if iH == 0 {
				t.Error("hot loop took no I-side fastpath hits")
			}
		}
		flood(e)
		_, iM0, _, _ := e.c.MicroTLBStats()
		e.rerun(t, 1000)
		if fast {
			_, iM1, _, _ := e.c.MicroTLBStats()
			if iM1 == iM0 {
				t.Error("fetch after TLB eviction did not miss the micro-TLB")
			}
		}
		return e.c.Cycles, e.c.Insns, e.c.R(0)
	}
	onC, onI, onS := run(true)
	offC, offI, offS := run(false)
	if onC != offC || onI != offI || onS != offS {
		t.Errorf("fastpath on %d/%d/%d, off %d/%d/%d", onC, onI, onS, offC, offI, offS)
	}
}

// TestMicroTLBStaleAfterGuestTLBI executes a TLBI between two loads of the
// same address: the post-TLBI load must leave the fastpath (the TLB
// generation moved) and re-walk, with cycles identical to the slow path.
func TestMicroTLBStaleAfterGuestTLBI(t *testing.T) {
	run := func(fast bool) (int64, int64, uint64, uint64) {
		e := newEnv(t)
		e.c.SetHostFastpaths(fast)
		a := arm64.NewAsm()
		a.MovImm(1, uint64(dataVA))
		a.MovImm(2, 0xBEEF)
		a.Emit(arm64.STRImm(2, 1, 0, 3))
		a.Emit(arm64.LDRImm(3, 1, 0, 3))
		a.Emit(arm64.LDRImm(5, 1, 0, 3)) // second load takes the D fastpath
		a.Emit(arm64.TLBIVMALLE1())
		a.Emit(arm64.LDRImm(4, 1, 0, 3)) // generation moved: must re-walk
		a.Emit(arm64.HVC(0))
		e.load(t, a)
		e.run(t, 100)
		if fast {
			_, _, dH, dM := e.c.MicroTLBStats()
			if dH == 0 {
				t.Error("repeated load did not take the D-side fastpath")
			}
			if dM < 3 {
				t.Errorf("D-side misses = %d, want >= 3 (fill, perm upgrade, post-TLBI)", dM)
			}
		}
		return e.c.Cycles, e.c.Insns, e.c.R(3), e.c.R(4)
	}
	onC, onI, on3, on4 := run(true)
	offC, offI, off3, off4 := run(false)
	if on3 != 0xBEEF || on4 != 0xBEEF {
		t.Errorf("loads = %#x, %#x, want 0xBEEF", on3, on4)
	}
	if onC != offC || onI != offI || on3 != off3 || on4 != off4 {
		t.Errorf("fastpath on %d/%d, off %d/%d", onC, onI, offC, offI)
	}
}

// TestMicroTLBStaleAfterEpochBump checks the code-generation gate alone:
// InvalidateCode bumps the code epochs without touching the TLB, and the
// I-side micro entry must still go stale.
func TestMicroTLBStaleAfterEpochBump(t *testing.T) {
	run := func(fast bool) (int64, int64, uint64) {
		e := newEnv(t)
		e.c.SetHostFastpaths(fast)
		e.load(t, sumProgram(10))
		e.run(t, 1000)
		e.c.InvalidateCode(codeVA)
		_, iM0, _, _ := e.c.MicroTLBStats()
		e.rerun(t, 1000)
		if fast {
			_, iM1, _, _ := e.c.MicroTLBStats()
			if iM1 == iM0 {
				t.Error("fetch after code-epoch bump did not miss the micro-TLB")
			}
		}
		return e.c.Cycles, e.c.Insns, e.c.R(0)
	}
	onC, onI, onS := run(true)
	offC, offI, offS := run(false)
	if onC != offC || onI != offI || onS != offS {
		t.Errorf("fastpath on %d/%d/%d, off %d/%d/%d", onC, onI, onS, offC, offI, offS)
	}
}

// TestMicroTLBASIDSwitchMidRun switches TTBR0 (new root, new ASID) between
// two loads of the same VA mapped to different frames. The fastpath must
// not serve the old address space's translation after the switch.
func TestMicroTLBASIDSwitchMidRun(t *testing.T) {
	run := func(fast bool) (int64, int64, uint64, uint64) {
		e := newEnv(t)
		e.c.SetHostFastpaths(fast)
		// Second address space under ASID 2: same code page, its own data
		// frame preloaded with a distinct value.
		s1b, err := mem.NewStage1(e.pm, 2)
		if err != nil {
			t.Fatal(err)
		}
		codeRes, err := e.s1.Walk(codeVA)
		if err != nil || !codeRes.Found {
			t.Fatalf("code page missing: %v", err)
		}
		if err := s1b.Map(codeVA, codeRes.PA, mem.AttrNG); err != nil {
			t.Fatal(err)
		}
		newData, err := e.pm.AllocFrame()
		if err != nil {
			t.Fatal(err)
		}
		if err := s1b.Map(dataVA, newData, mem.AttrNG|mem.AttrPXN|mem.AttrUXN); err != nil {
			t.Fatal(err)
		}
		if err := e.pm.Write(newData, []byte{0x22, 0x22, 0, 0, 0, 0, 0, 0}); err != nil {
			t.Fatal(err)
		}

		a := arm64.NewAsm()
		a.MovImm(1, uint64(dataVA))
		a.MovImm(2, 0x1111)
		a.Emit(arm64.STRImm(2, 1, 0, 3))
		a.Emit(arm64.LDRImm(3, 1, 0, 3)) // old space: 0x1111
		a.MovImm(4, MakeTTBR(uint64(s1b.Root()), 2))
		a.Emit(arm64.MSR(arm64.TTBR0EL1, 4))
		a.Emit(arm64.LDRImm(5, 1, 0, 3)) // new space: 0x2222
		a.Emit(arm64.HVC(0))
		e.load(t, a)
		e.run(t, 100)
		if fast {
			found := false
			for _, en := range e.c.MicroTLBSnapshot() {
				if en.Valid && en.ASID == 2 && en.Page == uint64(dataVA)>>mem.PageShift {
					found = true
				}
			}
			if !found {
				t.Errorf("no valid post-switch micro-TLB entry for the data page under ASID 2: %+v",
					e.c.MicroTLBSnapshot())
			}
		}
		return e.c.Cycles, e.c.Insns, e.c.R(3), e.c.R(5)
	}
	onC, onI, on3, on5 := run(true)
	offC, offI, off3, off5 := run(false)
	if on3 != 0x1111 || on5 != 0x2222 {
		t.Errorf("loads = %#x, %#x, want 0x1111 then 0x2222 (stale translation served?)", on3, on5)
	}
	if onC != offC || onI != offI || on3 != off3 || on5 != off5 {
		t.Errorf("fastpath on %d/%d %#x/%#x, off %d/%d %#x/%#x",
			onC, onI, on3, on5, offC, offI, off3, off5)
	}
}

// TestMicroTLBPANFlipStalesDataEntry caches a user-page translation under
// PAN clear, flips PAN, and re-touches the page: the access must take the
// slow path and fault exactly like the fastpath-off pipeline.
func TestMicroTLBPANFlipStalesDataEntry(t *testing.T) {
	run := func(fast bool) (int64, int64, Syndrome) {
		e := newEnv(t)
		e.c.SetHostFastpaths(fast)
		a := arm64.NewAsm()
		a.MovImm(1, uint64(userVA))
		a.Emit(arm64.MSRPan(0))
		a.Emit(arm64.LDRImm(2, 1, 0, 3))
		a.Emit(arm64.LDRImm(3, 1, 0, 3)) // second load takes the D fastpath
		a.Emit(arm64.MSRPan(1))
		a.Emit(arm64.LDRImm(4, 1, 0, 3)) // must fault despite the cached entry
		a.Emit(arm64.HVC(0))
		e.load(t, a)
		exit := e.run(t, 100)
		if fast {
			_, _, dH, _ := e.c.MicroTLBStats()
			if dH == 0 {
				t.Error("repeated load did not take the D-side fastpath")
			}
		}
		return e.c.Cycles, e.c.Insns, exit.Syndrome
	}
	onC, onI, onS := run(true)
	offC, offI, offS := run(false)
	if onS.Class != ECDataAbortSame || onS.Kind != mem.FaultPermission || onS.VA != userVA {
		t.Fatalf("post-PAN access syndrome = %+v, want same-EL permission abort at %v", onS, userVA)
	}
	if onS != offS {
		t.Errorf("syndromes differ: fastpath on %+v, off %+v", onS, offS)
	}
	if onC != offC || onI != offI {
		t.Errorf("fastpath on %d/%d, off %d/%d", onC, onI, offC, offI)
	}
}

// TestMicroTLBUnprivNeverFastpaths checks that LDTR-class accesses bypass
// the micro-TLB entirely: an unprivileged load after a PAN flip must run
// the full Translate (its permission verdict uses the unpriv override) and
// still succeed, never consuming the cached privileged entry.
func TestMicroTLBUnprivNeverFastpaths(t *testing.T) {
	run := func(fast bool) (int64, int64, uint64) {
		e := newEnv(t)
		e.c.SetHostFastpaths(fast)
		a := arm64.NewAsm()
		a.MovImm(1, uint64(userVA))
		a.MovImm(2, 0x77)
		a.Emit(arm64.MSRPan(0))
		a.Emit(arm64.STRImm(2, 1, 0, 3))
		a.Emit(arm64.LDRImm(3, 1, 0, 3))
		a.Emit(arm64.LDRImm(5, 1, 0, 3)) // D fastpath hit under pan clear
		a.Emit(arm64.MSRPan(1))
		a.Emit(arm64.LDTR(4, 1, 0, 3)) // unpriv: bypasses PAN and the fastpath
		a.Emit(arm64.HVC(0))
		e.load(t, a)
		e.run(t, 100)
		if fast {
			_, _, dH, _ := e.c.MicroTLBStats()
			if dH != 1 {
				t.Errorf("D-side hits = %d, want exactly 1 (LDTR must not hit)", dH)
			}
		}
		return e.c.Cycles, e.c.Insns, e.c.R(4)
	}
	onC, onI, on4 := run(true)
	offC, offI, off4 := run(false)
	if on4 != 0x77 {
		t.Errorf("LDTR loaded %#x, want 0x77", on4)
	}
	if onC != offC || onI != offI || on4 != off4 {
		t.Errorf("fastpath on %d/%d/%#x, off %d/%d/%#x", onC, onI, on4, offC, offI, off4)
	}
}

// TestMicroTLBSelfModifyingCodeIdentity runs the JIT-rewrite flow (an
// emulated store over an already-executed instruction) with fastpaths on and
// off: the rewritten code must execute, at identical cost.
func TestMicroTLBSelfModifyingCodeIdentity(t *testing.T) {
	patch := func() *arm64.Asm {
		a := arm64.NewAsm()
		a.B("main")
		a.Label("patch")
		a.Emit(arm64.MOVZ(0, 1, 0)) // x0 = 1; rewritten to x0 = 2 below
		a.Emit(arm64.RET(30))
		a.Label("main")
		a.BL("patch")
		a.Emit(arm64.ADDReg(9, 0, 31))
		a.ADR(1, "patch")
		a.MovImm(2, uint64(arm64.MOVZ(0, 2, 0)))
		a.Emit(arm64.STRImm(2, 1, 0, 2))
		a.BL("patch") // second run must produce x0 = 2
		a.Emit(arm64.HVC(0))
		return a
	}
	run := func(fast bool) (int64, int64, uint64, uint64) {
		e := newEnv(t)
		e.c.SetHostFastpaths(fast)
		e.load(t, patch())
		e.run(t, 1000)
		return e.c.Cycles, e.c.Insns, e.c.R(9), e.c.R(0)
	}
	onC, onI, on9, on0 := run(true)
	offC, offI, off9, off0 := run(false)
	if on9 != 1 || on0 != 2 {
		t.Errorf("patched run: first=%d final=%d, want 1 then 2 (stale code executed?)", on9, on0)
	}
	if onC != offC || onI != offI || on9 != off9 || on0 != off0 {
		t.Errorf("fastpath on %d/%d, off %d/%d", onC, onI, offC, offI)
	}
}

// TestMicroTLBSnapshotAndToggle covers the observation surface: snapshot
// shape, the I-side entry after a hot run, and SetHostFastpaths dropping
// both entries.
func TestMicroTLBSnapshotAndToggle(t *testing.T) {
	e := newEnv(t)
	if !e.c.HostFastpathsEnabled() {
		t.Fatal("fastpaths not enabled by default")
	}
	e.load(t, sumProgram(10))
	e.run(t, 1000)
	snap := e.c.MicroTLBSnapshot()
	if len(snap) != iMicroWays+dMicroWays {
		t.Fatalf("snapshot shape = %+v", snap)
	}
	for w, en := range snap {
		want := "D"
		if w < iMicroWays {
			want = "I"
		}
		if en.Side != want {
			t.Fatalf("snapshot shape = %+v", snap)
		}
	}
	var i MicroTLBEntry
	for _, en := range snap[:iMicroWays] {
		if en.Valid && en.Page == uint64(codeVA)>>mem.PageShift {
			i = en
		}
	}
	if !i.Valid || !i.OkX || !i.Priv {
		t.Errorf("no live I entry for the code page: %+v", snap[:iMicroWays])
	}
	if i.TLBGen != e.c.TLB.Gen() {
		t.Errorf("I entry generation %d, TLB at %d", i.TLBGen, e.c.TLB.Gen())
	}
	iH, _, _, _ := e.c.MicroTLBStats()
	if iH == 0 {
		t.Error("hot run recorded no I-side fastpath hits")
	}
	e.c.SetHostFastpaths(false)
	if e.c.HostFastpathsEnabled() {
		t.Error("still enabled after disable")
	}
	for _, en := range e.c.MicroTLBSnapshot() {
		if en.Valid {
			t.Errorf("%s entry survived disable", en.Side)
		}
	}
}

// TestHostFastpathDefaultSeedsNewVCPUs checks the process-wide default used
// by tools (lzbench -nofastpath) to configure machines booted inside sweeps.
func TestHostFastpathDefaultSeedsNewVCPUs(t *testing.T) {
	old := HostFastpathDefault()
	defer SetHostFastpathDefault(old)
	SetHostFastpathDefault(false)
	if New(arm64.ProfileCortexA55(), mem.NewPhysMem(1<<20)).HostFastpathsEnabled() {
		t.Error("new vCPU ignored the disabled default")
	}
	SetHostFastpathDefault(true)
	if !New(arm64.ProfileCortexA55(), mem.NewPhysMem(1<<20)).HostFastpathsEnabled() {
		t.Error("new vCPU ignored the enabled default")
	}
}
