package cpu

import (
	"fmt"
	"sync"
	"sync/atomic"

	"lightzone/internal/arm64"
	"lightzone/internal/arm64/absint"
	"lightzone/internal/mem"
)

// The proof auditor is the dynamic oracle for the abstract interpreter's
// BlockProof artifacts (internal/arm64/absint): whenever the pipeline
// replays a cached decoded block, the auditor opens a span over the replay
// and cross-checks what the proof predicted against what the concrete
// machine did — every interior data access in order (direction, width, and
// page when the proof pinned one), system-register and PAN freedom, and
// the minimum cycle charge implied by the proof's instruction, access and
// barrier counts. A span abandons silently on any control discontinuity
// (exception delivery, cursor invalidation, IRQ); it records a divergence
// only when a completed straight-line replay contradicts its proof.
//
// The auditor is strictly observation-only: it never calls Charge, never
// touches Stats, and never mutates architectural state, so enabling it
// cannot change emitted benchmark results (lzbench -proofaudit asserts
// stdout byte-identity on top of the divergence count).

// proofAuditDefault seeds the audit state of newly created vCPUs, so tools
// (lzbench -proofaudit) can configure machines booted deep inside sweeps.
var proofAuditDefault atomic.Bool

// SetProofAuditDefault sets whether new vCPUs start with the block-proof
// audit oracle attached.
func SetProofAuditDefault(on bool) { proofAuditDefault.Store(on) }

// ProofAuditDefault reports the current default for new vCPUs.
func ProofAuditDefault() bool { return proofAuditDefault.Load() }

// ProofAuditStats aggregates audit outcomes across all vCPUs since the
// last reset. Spans = replays opened, Finished = replays that ran their
// proof to the terminator, Abandoned = spans dropped on a control
// discontinuity, Divergences = completed spans that contradicted their
// proof.
type ProofAuditStats struct {
	Spans       int64
	Finished    int64
	Abandoned   int64
	Divergences int64
	Details     []string
}

var (
	paSpans       atomic.Int64
	paFinished    atomic.Int64
	paAbandoned   atomic.Int64
	paDivergences atomic.Int64

	paDetailMu  sync.Mutex
	paDetails   []string
	paDetailCap = 32
)

// ReadProofAudit snapshots the global audit counters.
func ReadProofAudit() ProofAuditStats {
	paDetailMu.Lock()
	details := append([]string(nil), paDetails...)
	paDetailMu.Unlock()
	return ProofAuditStats{
		Spans:       paSpans.Load(),
		Finished:    paFinished.Load(),
		Abandoned:   paAbandoned.Load(),
		Divergences: paDivergences.Load(),
		Details:     details,
	}
}

// ResetProofAudit zeroes the global audit counters.
func ResetProofAudit() {
	paSpans.Store(0)
	paFinished.Store(0)
	paAbandoned.Store(0)
	paDivergences.Store(0)
	paDetailMu.Lock()
	paDetails = nil
	paDetailMu.Unlock()
}

func paDiverge(format string, args ...any) {
	paDivergences.Add(1)
	paDetailMu.Lock()
	if len(paDetails) < paDetailCap {
		paDetails = append(paDetails, fmt.Sprintf(format, args...))
	}
	paDetailMu.Unlock()
}

// seenAccess is one concrete data access observed during a span.
type seenAccess struct {
	write bool
	page  uint64
	size  int
}

// proofAudit is the per-vCPU audit state. One span is live at a time — a
// replay of one cached block from its first instruction to its terminator.
type proofAudit struct {
	active bool
	blk    *dblock // identity guard against cursor invalidation
	proof  *absint.BlockProof
	idx    int    // index of the next instruction expected to dispatch
	expect uint64 // PC of that instruction
	start  int64  // Cycles+batch at span open

	sysSnap [4]uint64 // TTBR0, TTBR1, SCTLR, VBAR at span open
	panSnap bool

	seen []seenAccess

	// Trace-span state: one composed-trace replay audited end to end
	// against its TraceProof. Mutually exclusive with a block span —
	// noteTraceEnter abandons any active block span, and block spans only
	// open from Step, never mid-trace.
	tActive bool
	tProof  *absint.TraceProof
	tIdx    int
	tStart  int64
	tSys    [4]uint64
	tPan    bool
	tSeen   []seenAccess
}

// SetProofAudit attaches or detaches the audit oracle on this vCPU.
func (c *VCPU) SetProofAudit(on bool) {
	if on && c.audit == nil {
		c.audit = &proofAudit{}
	} else if !on {
		c.audit = nil
	}
}

// ProofAuditEnabled reports whether the audit oracle is attached.
func (c *VCPU) ProofAuditEnabled() bool { return c.audit != nil }

// noteEnter opens a span over a full-block replay beginning at pc. The
// proof is derived lazily and cached on the block: a dblock is discarded
// whenever its page's code epoch moves, so the proof's lifetime is exactly
// the decoded bytes' lifetime.
func (a *proofAudit) noteEnter(c *VCPU, b *dblock, pc uint64) {
	if len(b.insns) < 2 {
		return // single-instruction blocks have no interior to audit
	}
	if a.active {
		a.abandon()
	}
	if b.proof == nil {
		b.proof = absint.ProveBlock(pc, b.insns)
	}
	a.active = true
	a.blk = b
	a.proof = b.proof
	a.idx = 0
	a.expect = pc
	a.start = c.Cycles + c.batch
	a.sysSnap = [4]uint64{
		c.sys[arm64.TTBR0EL1], c.sys[arm64.TTBR1EL1],
		c.sys[arm64.SCTLREL1], c.sys[arm64.VBAREL1],
	}
	a.panSnap = c.PAN()
	a.seen = a.seen[:0]
	paSpans.Add(1)
}

// noteDispatch observes one instruction about to dispatch. The terminator
// closes the span before its handler runs — interior effects are complete,
// and the terminator itself (the one instruction allowed to trap, branch,
// or write a system register) is out of scope.
func (a *proofAudit) noteDispatch(c *VCPU, pc uint64) {
	if !a.active {
		return
	}
	if pc != a.expect {
		a.abandon()
		return
	}
	if a.idx == a.proof.Insns-1 {
		a.finish(c)
		return
	}
	// Interior instruction: the replay cursor must still be walking the
	// audited block, or a code write invalidated it under our feet.
	if c.cur.blk != a.blk {
		a.abandon()
		return
	}
	a.idx++
	a.expect += arm64.InsnBytes
}

// noteAccess observes one successful charged data access, feeding whichever
// span is live (at most one is, by construction).
func (a *proofAudit) noteAccess(write bool, va mem.VA, size int) {
	if a.tActive {
		if len(a.tSeen) < len(a.tProof.Claims)+4 {
			a.tSeen = append(a.tSeen, seenAccess{write: write, page: uint64(va) >> mem.PageShift, size: size})
		}
		return
	}
	if !a.active {
		return
	}
	if len(a.seen) < len(a.proof.Claims)+4 {
		a.seen = append(a.seen, seenAccess{write: write, page: uint64(va) >> mem.PageShift, size: size})
	}
}

func (a *proofAudit) abandon() {
	a.active = false
	a.blk = nil
	paAbandoned.Add(1)
}

// finish closes a completed span: every interior claim must have been
// consumed in order, proven-free state must be unchanged, and the cycle
// delta must cover the proof's minimum charge.
func (a *proofAudit) finish(c *VCPU) {
	a.active = false
	a.blk = nil
	paFinished.Add(1)
	p := a.proof

	claims := p.InteriorClaims()
	if len(a.seen) != len(claims) {
		paDiverge("block %#x: %d interior accesses observed, proof claims %d",
			p.PC, len(a.seen), len(claims))
		return
	}
	for i, cl := range claims {
		got := a.seen[i]
		if got.write != cl.Write || got.size != cl.Size {
			paDiverge("block %#x claim %d: observed %s/%d, proof claims %s/%d",
				p.PC, i, rw(got.write), got.size, rw(cl.Write), cl.Size)
			return
		}
		if cl.Known && got.page != cl.Page {
			paDiverge("block %#x claim %d: observed page %#x, proof pins %#x",
				p.PC, i, got.page, cl.Page)
			return
		}
	}
	if p.SysregFree {
		now := [4]uint64{
			c.sys[arm64.TTBR0EL1], c.sys[arm64.TTBR1EL1],
			c.sys[arm64.SCTLREL1], c.sys[arm64.VBAREL1],
		}
		if now != a.sysSnap {
			paDiverge("block %#x: sysreg state moved across a SysregFree block", p.PC)
			return
		}
	}
	if p.PANFree && c.PAN() != a.panSnap {
		paDiverge("block %#x: PAN moved across a PANFree block", p.PC)
		return
	}
	min := int64(p.Insns)*c.Prof.InsnCost +
		int64(p.InteriorAccesses())*c.Prof.MemAccessCost +
		int64(p.ISBs)*c.Prof.ISBCost +
		int64(p.DSBs)*c.Prof.DSBCost
	if got := c.Cycles + c.batch - a.start; got < min {
		paDiverge("block %#x: charged %d cycles, proof minimum %d", p.PC, got, min)
	}
}

func rw(write bool) string {
	if write {
		return "write"
	}
	return "read"
}

// buildTraceProof lazily proves each member block and composes the results
// into the trace's TraceProof via the absint factory. This file owns every
// `.proof` slot (tools/lint), so composition lives here rather than in the
// stitcher. Returns false if composition rejected the inputs — the stitch
// is then abandoned, since an unproven trace has no audit oracle and no
// minimum-charge bound.
func (c *VCPU) buildTraceProof(t *trace, edges []absint.TraceEdge) bool {
	proofs := make([]*absint.BlockProof, len(t.blocks))
	for i, b := range t.blocks {
		if b.proof == nil {
			b.proof = absint.ProveBlock(t.starts[i], b.insns)
		}
		proofs[i] = b.proof
	}
	t.proof = absint.ComposeTrace(t.starts[0], proofs, edges)
	return t.proof != nil
}

// noteTraceEnter opens a span over a guarded trace replay. Any active block
// span is abandoned first: the trace replaces the block-pipeline replay the
// span was watching.
func (a *proofAudit) noteTraceEnter(c *VCPU, t *trace) {
	if a.active {
		a.abandon()
	}
	if a.tActive {
		a.abandonTraceSpan()
	}
	if t.proof == nil {
		return
	}
	a.tActive = true
	a.tProof = t.proof
	a.tIdx = 0
	a.tStart = c.Cycles + c.batch
	a.tSys = [4]uint64{
		c.sys[arm64.TTBR0EL1], c.sys[arm64.TTBR1EL1],
		c.sys[arm64.SCTLREL1], c.sys[arm64.VBAREL1],
	}
	a.tPan = c.PAN()
	a.tSeen = a.tSeen[:0]
	paSpans.Add(1)
}

// noteTraceStep observes trace step i about to dispatch. The final step
// closes the span before its handler runs, mirroring noteDispatch: interior
// effects are complete and the trace's own exit is out of scope. A PC
// disagreeing with the composed proof's prediction is a real divergence —
// the stitcher and the composer derived the same path independently.
func (a *proofAudit) noteTraceStep(c *VCPU, i int) {
	if !a.tActive {
		return
	}
	tp := a.tProof
	if a.tIdx != i || i >= len(tp.PCs) || c.PC != tp.PCs[i] {
		paDiverge("trace %#x step %d: pc %#x, composed proof predicts %#x",
			tp.EntryPC, i, c.PC, tp.PCs[min(i, len(tp.PCs)-1)])
		a.tActive = false
		return
	}
	if i == tp.Insns-1 {
		a.finishTrace(c)
		return
	}
	a.tIdx = i + 1
}

// abandonTraceSpan drops the live trace span on a side-exit (misprediction,
// generation movement, exception delivery). No-op when no span is live —
// the finished/abandoned paths may both fire on one exit.
func (a *proofAudit) abandonTraceSpan() {
	if !a.tActive {
		return
	}
	a.tActive = false
	paAbandoned.Add(1)
}

// finishTrace closes a completed trace span: every interior composed claim
// consumed in order, trace-wide freedom invariants held, and the cycle
// delta covered the composed minimum charge.
func (a *proofAudit) finishTrace(c *VCPU) {
	a.tActive = false
	paFinished.Add(1)
	tp := a.tProof

	interior := 0
	for _, cl := range tp.Claims {
		if cl.Index >= tp.Insns-1 {
			continue
		}
		if interior >= len(a.tSeen) {
			paDiverge("trace %#x: %d interior accesses observed, composed proof claims more",
				tp.EntryPC, len(a.tSeen))
			return
		}
		got := a.tSeen[interior]
		if got.write != cl.Write || got.size != cl.Size {
			paDiverge("trace %#x claim %d: observed %s/%d, proof claims %s/%d",
				tp.EntryPC, interior, rw(got.write), got.size, rw(cl.Write), cl.Size)
			return
		}
		if cl.Known && got.page != cl.Page {
			paDiverge("trace %#x claim %d: observed page %#x, proof pins %#x",
				tp.EntryPC, interior, got.page, cl.Page)
			return
		}
		interior++
	}
	if interior != len(a.tSeen) {
		paDiverge("trace %#x: %d interior accesses observed, composed proof claims %d",
			tp.EntryPC, len(a.tSeen), interior)
		return
	}
	if tp.SysregFree {
		now := [4]uint64{
			c.sys[arm64.TTBR0EL1], c.sys[arm64.TTBR1EL1],
			c.sys[arm64.SCTLREL1], c.sys[arm64.VBAREL1],
		}
		if now != a.tSys {
			paDiverge("trace %#x: sysreg state moved across a SysregFree trace", tp.EntryPC)
			return
		}
	}
	if tp.PANFree && c.PAN() != a.tPan {
		paDiverge("trace %#x: PAN moved across a PANFree trace", tp.EntryPC)
		return
	}
	min := tp.MinCharge(c.Prof.InsnCost, c.Prof.MemAccessCost,
		c.Prof.ISBCost, c.Prof.DSBCost, c.Prof.BranchCost, c.Prof.PanToggleCost)
	if got := c.Cycles + c.batch - a.tStart; got < min {
		paDiverge("trace %#x: charged %d cycles, composed proof minimum %d",
			tp.EntryPC, got, min)
	}
}
