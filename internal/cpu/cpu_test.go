package cpu

import (
	"testing"

	"lightzone/internal/arm64"
	"lightzone/internal/mem"
)

const (
	codeVA   = mem.VA(0x10000)
	dataVA   = mem.VA(0x40000)
	userVA   = mem.VA(0x80000)
	stackTop = uint64(0x60000)
)

type env struct {
	c  *VCPU
	pm *mem.PhysMem
	s1 *mem.Stage1
}

// newEnv builds a vCPU at EL1 with a stage-1 address space containing:
// executable kernel code at codeVA, kernel RW data at dataVA, a user
// (AP[1]=1) RW page at userVA, and a stack.
func newEnv(t testing.TB) *env {
	t.Helper()
	pm := mem.NewPhysMem(64 << 20)
	s1, err := mem.NewStage1(pm, 1)
	if err != nil {
		t.Fatal(err)
	}
	mapPage := func(va mem.VA, attrs uint64) mem.PA {
		t.Helper()
		pa, err := pm.AllocFrame()
		if err != nil {
			t.Fatal(err)
		}
		if err := s1.Map(va, pa, attrs|mem.AttrNG); err != nil {
			t.Fatal(err)
		}
		return pa
	}
	mapPage(codeVA, 0)                                      // kernel X
	mapPage(dataVA, mem.AttrPXN|mem.AttrUXN)                // kernel RW, no exec
	mapPage(userVA, mem.AttrAPUser|mem.AttrPXN|mem.AttrUXN) // user RW
	mapPage(mem.VA(stackTop-mem.PageSize), mem.AttrPXN|mem.AttrUXN)

	c := New(arm64.ProfileCortexA55(), pm)
	c.SetSys(arm64.SCTLREL1, SCTLRM)
	c.SetSys(arm64.TTBR0EL1, MakeTTBR(uint64(s1.Root()), s1.ASID()))
	c.PC = uint64(codeVA)
	c.SetSP(stackTop)
	return &env{c: c, pm: pm, s1: s1}
}

func (e *env) load(t testing.TB, a *arm64.Asm) {
	t.Helper()
	b, err := a.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.s1.Walk(codeVA)
	if err != nil || !res.Found {
		t.Fatalf("code page missing: %v", err)
	}
	if err := e.pm.Write(res.PA, b); err != nil {
		t.Fatal(err)
	}
}

func (e *env) run(t testing.TB, max int64) Exit {
	t.Helper()
	exit, err := e.c.Run(max)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return exit
}

func TestArithmeticAndBranching(t *testing.T) {
	e := newEnv(t)
	// Sum 1..10 in x0 via a loop, then HVC to stop.
	a := arm64.NewAsm()
	a.MovImm(0, 0)  // acc
	a.MovImm(1, 10) // counter
	a.Label("loop")
	a.Emit(arm64.ADDReg(0, 0, 1))
	a.Emit(arm64.SUBSImm(1, 1, 1))
	a.BCond(arm64.CondNE, "loop")
	a.Emit(arm64.HVC(0))
	e.load(t, a)
	exit := e.run(t, 1000)
	if exit.Syndrome.Class != ECHVC {
		t.Fatalf("exit class %v", exit.Syndrome.Class)
	}
	if e.c.R(0) != 55 {
		t.Errorf("sum = %d, want 55", e.c.R(0))
	}
}

func TestMulDivShifts(t *testing.T) {
	e := newEnv(t)
	a := arm64.NewAsm()
	a.MovImm(1, 7)
	a.MovImm(2, 6)
	a.Emit(arm64.MUL(0, 1, 2)) // 42
	a.MovImm(3, 2)
	a.Emit(arm64.UDIV(4, 0, 3)) // 21
	a.Emit(arm64.LSLV(5, 4, 3)) // 84
	a.Emit(arm64.LSRV(6, 5, 3)) // 21
	a.MovImm(9, 0)
	a.Emit(arm64.UDIV(7, 0, 9)) // div by zero -> 0
	a.Emit(arm64.HVC(0))
	e.load(t, a)
	e.run(t, 100)
	for reg, want := range map[uint8]uint64{0: 42, 4: 21, 5: 84, 6: 21, 7: 0} {
		if got := e.c.R(reg); got != want {
			t.Errorf("x%d = %d, want %d", reg, got, want)
		}
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	e := newEnv(t)
	a := arm64.NewAsm()
	a.MovImm(1, uint64(dataVA))
	a.MovImm(2, 0xCAFEBABE)
	a.Emit(arm64.STRImm(2, 1, 8, 3))
	a.Emit(arm64.LDRImm(3, 1, 8, 3))
	a.Emit(arm64.STRImm(2, 1, 16, 0)) // byte store
	a.Emit(arm64.LDRImm(4, 1, 16, 0))
	a.Emit(arm64.HVC(0))
	e.load(t, a)
	e.run(t, 100)
	if e.c.R(3) != 0xCAFEBABE {
		t.Errorf("x3 = %#x", e.c.R(3))
	}
	if e.c.R(4) != 0xBE {
		t.Errorf("x4 = %#x, want byte 0xBE", e.c.R(4))
	}
}

func TestBLAndRET(t *testing.T) {
	e := newEnv(t)
	a := arm64.NewAsm()
	a.MovImm(0, 1)
	a.BL("fn")
	a.Emit(arm64.HVC(0))
	a.Label("fn")
	a.Emit(arm64.ADDImm(0, 0, 41, false))
	a.Emit(arm64.RET(30))
	e.load(t, a)
	e.run(t, 100)
	if e.c.R(0) != 42 {
		t.Errorf("x0 = %d", e.c.R(0))
	}
}

func TestPANBlocksPrivilegedUserAccess(t *testing.T) {
	e := newEnv(t)
	a := arm64.NewAsm()
	a.MovImm(1, uint64(userVA))
	a.Emit(arm64.MSRPan(1))          // enable PAN
	a.Emit(arm64.LDRImm(0, 1, 0, 3)) // must fault
	a.Emit(arm64.HVC(0))
	e.load(t, a)
	exit := e.run(t, 100) // EmulatedEL1 false: the abort exits to EL1
	s := exit.Syndrome
	if s.Class != ECDataAbortSame || s.Kind != mem.FaultPermission {
		t.Fatalf("expected same-EL permission abort, got %+v", s)
	}
	if s.VA != userVA {
		t.Errorf("fault VA = %v", s.VA)
	}
}

func TestPANDisabledAllowsAccessAndLDTRBypass(t *testing.T) {
	e := newEnv(t)
	a := arm64.NewAsm()
	a.MovImm(1, uint64(userVA))
	a.MovImm(2, 0x77)
	a.Emit(arm64.MSRPan(0))
	a.Emit(arm64.STRImm(2, 1, 0, 3)) // allowed with PAN clear
	a.Emit(arm64.MSRPan(1))
	a.Emit(arm64.LDTR(3, 1, 0, 3)) // unprivileged load bypasses PAN
	a.Emit(arm64.HVC(0))
	e.load(t, a)
	exit := e.run(t, 100)
	if exit.Syndrome.Class != ECHVC {
		t.Fatalf("unexpected exit %+v", exit.Syndrome)
	}
	if e.c.R(3) != 0x77 {
		t.Errorf("LDTR loaded %#x, want 0x77", e.c.R(3))
	}
}

func TestLDTRBlockedOnKernelPage(t *testing.T) {
	e := newEnv(t)
	a := arm64.NewAsm()
	a.MovImm(1, uint64(dataVA))
	a.Emit(arm64.LDTR(0, 1, 0, 3)) // EL0-permission access to kernel page
	a.Emit(arm64.HVC(0))
	e.load(t, a)
	exit := e.run(t, 100)
	if exit.Syndrome.Class != ECDataAbortSame || exit.Syndrome.Kind != mem.FaultPermission {
		t.Fatalf("expected permission abort, got %+v", exit.Syndrome)
	}
}

func TestSVCRoutesToEL1AndTGERoutesToEL2(t *testing.T) {
	e := newEnv(t)
	a := arm64.NewAsm()
	a.Emit(arm64.SVC(0x42))
	e.load(t, a)

	exit := e.run(t, 10)
	if exit.TargetEL != arm64.EL1 || exit.Syndrome.Class != ECSVC || exit.Syndrome.Imm != 0x42 {
		t.Fatalf("svc exit = %+v", exit)
	}
	if got := e.c.Sys(arm64.ELREL1); got != uint64(codeVA)+4 {
		t.Errorf("ELR_EL1 = %#x", got)
	}

	// With TGE set (VHE host process), the same SVC goes to EL2.
	e2 := newEnv(t)
	e2.c.SetEL(arm64.EL0)
	e2.c.SetSys(arm64.HCREL2, HCRTGE|HCRE2H)
	e2.load(t, a)
	exit = e2.run(t, 10)
	if exit.TargetEL != arm64.EL2 {
		t.Fatalf("TGE svc exit target = %v", exit.TargetEL)
	}
}

func TestHVCUndefinedAtEL0(t *testing.T) {
	e := newEnv(t)
	if _, err := e.s1.UpdateLeaf(codeVA, func(d uint64) uint64 {
		return d | mem.AttrAPUser
	}); err != nil {
		t.Fatal(err)
	}
	e.c.SetEL(arm64.EL0)
	a := arm64.NewAsm()
	a.Emit(arm64.HVC(0))
	e.load(t, a)
	exit := e.run(t, 10)
	if exit.Syndrome.Class != ECUnknown {
		t.Fatalf("HVC at EL0 should be undefined, got %v", exit.Syndrome.Class)
	}
}

func TestTVMTrapsStage1RegisterWrites(t *testing.T) {
	e := newEnv(t)
	e.c.SetSys(arm64.HCREL2, HCRTVM)
	a := arm64.NewAsm()
	a.MovImm(0, 0x1234)
	a.Emit(arm64.MSR(arm64.SCTLREL1, 0))
	e.load(t, a)
	exit := e.run(t, 10)
	if exit.TargetEL != arm64.EL2 || exit.Syndrome.Class != ECMSRTrap {
		t.Fatalf("exit = %+v", exit)
	}
	if exit.Syndrome.IsRead {
		t.Error("write trap marked as read")
	}
	if r, ok := arm64.LookupSysReg(exit.Syndrome.SysEnc); !ok || r != arm64.SCTLREL1 {
		t.Errorf("trapped register = %v, %v", r, ok)
	}
}

func TestTVMClearAllowsTTBR0Write(t *testing.T) {
	e := newEnv(t)
	a := arm64.NewAsm()
	a.MovImm(0, 0xAAAA000)
	a.Emit(arm64.MSR(arm64.TTBR0EL1, 0))
	a.Emit(arm64.MRS(1, arm64.TTBR0EL1))
	a.Emit(arm64.HVC(0))
	e.load(t, a)
	// Pre-fill the TLB entry for code so the fetch after the TTBR write
	// still hits (global entries are not used here, so re-set TTBR).
	exit, err := e.c.Step() // movz
	_ = exit
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ { // movk parts of MovImm may vary; just run on
		if _, err := e.c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	// After MSR TTBR0, instruction fetch would fault (new table empty), so
	// just verify the register took the value via direct state.
	if got := e.c.Sys(arm64.TTBR0EL1); got != 0xAAAA000 {
		t.Fatalf("TTBR0_EL1 = %#x (pc=%#x)", got, e.c.PC)
	}
}

func TestTLBIAndATUntrapped(t *testing.T) {
	e := newEnv(t)
	a := arm64.NewAsm()
	a.MovImm(1, uint64(dataVA))
	a.Emit(arm64.LDRImm(0, 1, 0, 3)) // warm TLB
	a.Emit(arm64.TLBIVMALLE1())
	a.Emit(arm64.ATS1E1R(1))
	a.Emit(arm64.MRS(2, arm64.PAREL1))
	a.Emit(arm64.HVC(0))
	e.load(t, a)
	exit := e.run(t, 100)
	if exit.Syndrome.Class != ECHVC {
		t.Fatalf("exit %+v", exit.Syndrome)
	}
	if e.c.R(2)&1 != 0 {
		t.Error("AT reported failure for mapped address")
	}
	res, _ := e.s1.Walk(dataVA)
	if mem.PA(e.c.R(2)) != res.PA&^mem.PA(mem.PageMask) {
		t.Errorf("PAR = %#x, want %v", e.c.R(2), res.PA)
	}
}

func TestTLBITrappedUnderTTLB(t *testing.T) {
	e := newEnv(t)
	e.c.SetSys(arm64.HCREL2, HCRTTLB)
	a := arm64.NewAsm()
	a.Emit(arm64.TLBIVMALLE1())
	e.load(t, a)
	exit := e.run(t, 10)
	if exit.TargetEL != arm64.EL2 || exit.Syndrome.Class != ECMSRTrap {
		t.Fatalf("exit = %+v", exit)
	}
}

func TestEL0CannotTouchPrivilegedState(t *testing.T) {
	for name, word := range map[string]uint32{
		"msr ttbr0": arm64.MSR(arm64.TTBR0EL1, 0),
		"mrs sctlr": arm64.MRS(0, arm64.SCTLREL1),
		"msr pan":   arm64.MSRPan(1),
		"tlbi":      arm64.TLBIVMALLE1(),
		"eret":      arm64.WordERET,
	} {
		t.Run(name, func(t *testing.T) {
			e := newEnv(t)
			// Make code user-executable for EL0.
			if _, err := e.s1.UpdateLeaf(codeVA, func(d uint64) uint64 {
				return d | mem.AttrAPUser
			}); err != nil {
				t.Fatal(err)
			}
			e.c.SetEL(arm64.EL0)
			a := arm64.NewAsm()
			a.Emit(word)
			e.load(t, a)
			exit := e.run(t, 10)
			if exit.Syndrome.Class != ECUnknown {
				t.Errorf("class = %v, want undefined", exit.Syndrome.Class)
			}
		})
	}
}

func TestEmulatedEL1VectorAndERET(t *testing.T) {
	e := newEnv(t)
	e.c.EmulatedEL1 = true
	// Vector stub at a separate page: the LightZone pattern — the stub
	// for current-EL sync exceptions forwards via ERET straight back.
	vecVA := mem.VA(0x20000)
	pa, err := e.pm.AllocFrame()
	if err != nil {
		t.Fatal(err)
	}
	if err := e.s1.Map(vecVA, pa, mem.AttrNG); err != nil {
		t.Fatal(err)
	}
	stub := arm64.NewAsm()
	stub.Emit(arm64.ADDImm(9, 9, 1, false)) // count the trap
	stub.Emit(arm64.WordERET)
	sb, err := stub.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if err := e.pm.Write(pa+VecCurSync, sb); err != nil {
		t.Fatal(err)
	}
	e.c.SetSys(arm64.VBAREL1, uint64(vecVA))

	a := arm64.NewAsm()
	a.Emit(arm64.SVC(1)) // traps to EL1 vector (emulated), returns
	a.Emit(arm64.SVC(2))
	a.Emit(arm64.HVC(0))
	e.load(t, a)
	exit := e.run(t, 100)
	if exit.Syndrome.Class != ECHVC {
		t.Fatalf("exit %+v", exit.Syndrome)
	}
	if e.c.R(9) != 2 {
		t.Errorf("trap count = %d, want 2", e.c.R(9))
	}
}

func TestStage2FaultExitsToEL2(t *testing.T) {
	e := newEnv(t)
	// Enable stage-2 with an empty table: first access faults to EL2.
	s2, err := mem.NewStage2(e.pm, 3)
	if err != nil {
		t.Fatal(err)
	}
	e.c.SetSys(arm64.HCREL2, HCRVM)
	e.c.SetSys(arm64.VTTBREL2, MakeVTTBR(uint64(s2.Root()), s2.VMID()))
	e.c.TLB.InvalidateAll()

	exit := e.run(t, 10) // instruction fetch itself faults at stage 2
	if exit.TargetEL != arm64.EL2 {
		t.Fatalf("target = %v", exit.TargetEL)
	}
	if exit.Syndrome.Stage != 2 || exit.Syndrome.Kind != mem.FaultTranslation {
		t.Fatalf("syndrome = %+v", exit.Syndrome)
	}
}

func TestStage2TranslatesThroughFakeAddresses(t *testing.T) {
	// The LightZone randomization layer: stage-1 maps VA->fake IPA,
	// stage-2 maps fake IPA->real PA (§5.1.2).
	pm := mem.NewPhysMem(64 << 20)
	s1, err := mem.NewStage1(pm, 4)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := mem.NewStage2(pm, 9)
	if err != nil {
		t.Fatal(err)
	}
	codePA, _ := pm.AllocFrame()
	dataPA, _ := pm.AllocFrame()
	// Fake IPAs are small sequential values.
	const fakeCode, fakeData = 0x1000, 0x2000
	if err := s1.Map(codeVA, fakeCode, mem.AttrNG); err != nil {
		t.Fatal(err)
	}
	if err := s1.Map(dataVA, fakeData, mem.AttrNG|mem.AttrPXN|mem.AttrUXN); err != nil {
		t.Fatal(err)
	}
	if err := s2.Map(fakeCode, codePA, mem.S2APRead); err != nil {
		t.Fatal(err)
	}
	if err := s2.Map(fakeData, dataPA, mem.S2APRead|mem.S2APWrite); err != nil {
		t.Fatal(err)
	}
	// Stage-1 tables must themselves be reachable through stage-2
	// (identity-mapped here), because guest table walks are IPA walks.
	for ipa := mem.IPA(0); ipa < mem.IPA(pm.AllocatedBytes()+16*mem.PageSize); ipa += mem.PageSize {
		if res, err := s2.Walk(ipa); err == nil && res.Found {
			continue // keep the fake mappings installed above
		}
		_ = s2.Map(ipa, mem.PA(ipa), mem.S2APRead|mem.S2APWrite)
	}

	c := New(arm64.ProfileCortexA55(), pm)
	c.SetSys(arm64.SCTLREL1, SCTLRM)
	c.SetSys(arm64.TTBR0EL1, MakeTTBR(uint64(s1.Root()), s1.ASID()))
	c.SetSys(arm64.HCREL2, HCRVM)
	c.SetSys(arm64.VTTBREL2, MakeVTTBR(uint64(s2.Root()), s2.VMID()))
	c.PC = uint64(codeVA)

	a := arm64.NewAsm()
	a.MovImm(1, uint64(dataVA))
	a.MovImm(2, 0x5A5A)
	a.Emit(arm64.STRImm(2, 1, 0, 3))
	a.Emit(arm64.HVC(0))
	b, err := a.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if err := pm.Write(codePA, b); err != nil {
		t.Fatal(err)
	}
	exit, err := c.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if exit.Syndrome.Class != ECHVC {
		t.Fatalf("exit %+v", exit.Syndrome)
	}
	// The store must have landed in the REAL frame behind the fake IPA.
	v, err := pm.ReadU64(dataPA)
	if err != nil || v != 0x5A5A {
		t.Errorf("real frame = %#x, %v", v, err)
	}
}

func TestCycleChargingMonotonicAndSysRegCosts(t *testing.T) {
	e := newEnv(t)
	a := arm64.NewAsm()
	a.Emit(arm64.MRS(0, arm64.SCTLREL1))
	a.Emit(arm64.HVC(0))
	e.load(t, a)
	before := e.c.Cycles
	e.run(t, 10)
	if e.c.Cycles <= before {
		t.Error("cycles did not advance")
	}
	// An EL1-class MRS must cost at least its profile read cost.
	minimum := e.c.Prof.SysRegReadCost(arm64.SCTLREL1)
	if e.c.Cycles-before < minimum {
		t.Errorf("charged %d, expected at least %d", e.c.Cycles-before, minimum)
	}
}

func TestXZRSemantics(t *testing.T) {
	e := newEnv(t)
	a := arm64.NewAsm()
	a.MovImm(1, 5)
	a.Emit(arm64.ADDReg(31, 1, 1)) // write to XZR discarded
	a.Emit(arm64.ADDReg(2, 31, 1)) // read XZR as 0
	a.Emit(arm64.HVC(0))
	e.load(t, a)
	e.run(t, 100)
	if e.c.R(2) != 5 {
		t.Errorf("x2 = %d, want 5 (XZR read as 0)", e.c.R(2))
	}
	if e.c.R(31) != 0 {
		t.Errorf("XZR = %d", e.c.R(31))
	}
}

func TestConditionCodes(t *testing.T) {
	// CMP 3,5 then collect which conditions hold.
	e := newEnv(t)
	a := arm64.NewAsm()
	a.MovImm(1, 3)
	a.MovImm(2, 5)
	a.Emit(arm64.CMPReg(1, 2))
	a.MovImm(0, 0)
	a.BCond(arm64.CondLT, "lt")
	a.Emit(arm64.HVC(0))
	a.Label("lt")
	a.MovImm(0, 1)
	a.BCond(arm64.CondNE, "ne")
	a.Emit(arm64.HVC(0))
	a.Label("ne")
	a.MovImm(0, 2)
	a.BCond(arm64.CondGT, "bad") // must not branch
	a.Emit(arm64.HVC(0))
	a.Label("bad")
	a.MovImm(0, 99)
	a.Emit(arm64.HVC(0))
	e.load(t, a)
	e.run(t, 100)
	if e.c.R(0) != 2 {
		t.Errorf("x0 = %d, want 2 (LT and NE hold, GT does not)", e.c.R(0))
	}
}

func TestIRQDelivery(t *testing.T) {
	e := newEnv(t)
	a := arm64.NewAsm()
	a.Label("spin")
	a.B("spin")
	e.load(t, a)
	e.c.PState &^= arm64.PStateI // unmask
	e.c.PendingIRQ = true
	exit := e.run(t, 10)
	if exit.Syndrome.Class != ECIRQ || exit.TargetEL != arm64.EL1 {
		t.Fatalf("exit %+v", exit)
	}

	// Routed to EL2 under IMO.
	e2 := newEnv(t)
	e2.load(t, a)
	e2.c.SetSys(arm64.HCREL2, HCRIMO)
	e2.c.PState &^= arm64.PStateI
	e2.c.PendingIRQ = true
	exit = e2.run(t, 10)
	if exit.TargetEL != arm64.EL2 {
		t.Fatalf("IMO routing: %+v", exit)
	}
}

func TestRunInsnLimit(t *testing.T) {
	e := newEnv(t)
	a := arm64.NewAsm()
	a.Label("spin")
	a.B("spin")
	e.load(t, a)
	if _, err := e.c.Run(5); err != ErrInsnLimit {
		t.Errorf("err = %v, want ErrInsnLimit", err)
	}
}

func TestWritableNotExecutable(t *testing.T) {
	e := newEnv(t)
	a := arm64.NewAsm()
	a.MovImm(1, uint64(dataVA)) // data page has PXN
	a.Emit(arm64.BR(1))
	e.load(t, a)
	exit := e.run(t, 10)
	if exit.Syndrome.Class != ECInsAbortSame || exit.Syndrome.Kind != mem.FaultPermission {
		t.Fatalf("exit %+v", exit.Syndrome)
	}
}

func TestPairAndConditionalExecution(t *testing.T) {
	e := newEnv(t)
	a := arm64.NewAsm()
	a.MovImm(1, uint64(dataVA))
	a.MovImm(2, 0x1111)
	a.MovImm(3, 0x2222)
	a.Emit(arm64.STP(2, 3, 1, 16))
	a.Emit(arm64.LDP(4, 5, 1, 16))
	// Register-offset access.
	a.MovImm(6, 24)
	a.Emit(arm64.STRReg(2, 1, 6, 3))
	a.Emit(arm64.LDRReg(7, 1, 6, 3))
	// Conditional select: 3 < 5 -> LT holds.
	a.MovImm(8, 3)
	a.MovImm(9, 5)
	a.Emit(arm64.CMPReg(8, 9))
	a.Emit(arm64.CSEL(10, 8, 9, arm64.CondLT))  // 3
	a.Emit(arm64.CSEL(11, 8, 9, arm64.CondGT))  // 5
	a.Emit(arm64.CSINC(12, 8, 9, arm64.CondGT)) // 5+1
	a.Emit(arm64.HVC(0))
	e.load(t, a)
	exit := e.run(t, 100)
	if exit.Syndrome.Class != ECHVC {
		t.Fatalf("exit %+v", exit.Syndrome)
	}
	for reg, want := range map[uint8]uint64{4: 0x1111, 5: 0x2222, 7: 0x1111, 10: 3, 11: 5, 12: 6} {
		if got := e.c.R(reg); got != want {
			t.Errorf("x%d = %#x, want %#x", reg, got, want)
		}
	}
}

func TestPairFaultDelivery(t *testing.T) {
	e := newEnv(t)
	a := arm64.NewAsm()
	a.MovImm(1, 0x5000_0000) // unmapped
	a.Emit(arm64.STP(2, 3, 1, 0))
	e.load(t, a)
	exit := e.run(t, 10)
	if exit.Syndrome.Class != ECDataAbortSame || exit.Syndrome.Kind != mem.FaultTranslation {
		t.Fatalf("exit %+v", exit.Syndrome)
	}
}

func TestImmediateShifts(t *testing.T) {
	e := newEnv(t)
	a := arm64.NewAsm()
	a.MovImm(1, 0xFF00)
	a.Emit(arm64.LSRImm(2, 1, 8)) // 0xFF
	a.Emit(arm64.LSLImm(3, 1, 4)) // 0xFF000
	a.Emit(arm64.LSLImm(4, 1, 0)) // unchanged
	a.Emit(arm64.HVC(0))
	e.load(t, a)
	e.run(t, 100)
	for reg, want := range map[uint8]uint64{2: 0xFF, 3: 0xFF000, 4: 0xFF00} {
		if got := e.c.R(reg); got != want {
			t.Errorf("x%d = %#x, want %#x", reg, got, want)
		}
	}
}

func TestLogicalAndUnscaledOps(t *testing.T) {
	e := newEnv(t)
	a := arm64.NewAsm()
	a.MovImm(1, 0b1100)
	a.MovImm(2, 0b1010)
	a.Emit(arm64.ANDReg(3, 1, 2)) // 0b1000
	a.Emit(arm64.EORReg(4, 1, 2)) // 0b0110
	a.Emit(arm64.MOVN(5, 0, 0))   // ^0
	// Unscaled negative-offset store/load.
	a.MovImm(6, uint64(dataVA)+64)
	a.Emit(arm64.STUR(1, 6, -8, 3))
	a.Emit(arm64.LDUR(7, 6, -8, 3))
	a.Emit(arm64.HVC(0))
	e.load(t, a)
	e.run(t, 100)
	for reg, want := range map[uint8]uint64{3: 0b1000, 4: 0b0110, 5: ^uint64(0), 7: 0b1100} {
		if got := e.c.R(reg); got != want {
			t.Errorf("x%d = %#x, want %#x", reg, got, want)
		}
	}
}

func TestSPSelToggleAtEL1(t *testing.T) {
	e := newEnv(t)
	e.c.SetSys(arm64.SPEL0, 0x7000)
	e.c.SetSys(arm64.SPEL1, 0x9000)
	a := arm64.NewAsm()
	// msr spsel, #0: subsequent SP-relative ops use SP_EL0.
	a.Emit(arm64.MSRPStateImm(arm64.PStateFieldSPSel1, arm64.PStateFieldSPSel2, 0))
	a.MovImm(2, 0xAA)
	a.Emit(arm64.STRImm(2, 31, 0, 3)) // [sp] = SP_EL0 now
	a.Emit(arm64.MSRPStateImm(arm64.PStateFieldSPSel1, arm64.PStateFieldSPSel2, 1))
	a.Emit(arm64.HVC(0))
	e.load(t, a)
	// Map the SP_EL0 page.
	pa, _ := e.pm.AllocFrame()
	if err := e.s1.Map(0x7000, pa, mem.AttrNG|mem.AttrPXN|mem.AttrUXN); err != nil {
		t.Fatal(err)
	}
	exit := e.run(t, 100)
	if exit.Syndrome.Class != ECHVC {
		t.Fatalf("exit %+v", exit.Syndrome)
	}
	v, err := e.pm.ReadU64(pa)
	if err != nil || v != 0xAA {
		t.Errorf("store via SP_EL0 = %#x, %v", v, err)
	}
}
