package cpu

import (
	"lightzone/internal/arm64"
	"lightzone/internal/mem"
)

// Abort is a translation/permission failure produced by a memory access.
type Abort struct {
	Syndrome
}

func (a *Abort) Error() string {
	return "abort: stage-" + a.Syndrome.Kind.String() + " " + a.Syndrome.Access.String()
}

func (c *VCPU) abort(va mem.VA, ipa mem.IPA, acc mem.AccessType, kind mem.FaultKind, stage int) *Abort {
	class := ECDataAbortSame
	if acc == mem.AccessExec {
		class = ECInsAbortSame
	}
	return &Abort{Syndrome{
		Class:  class,
		VA:     va,
		IPA:    ipa,
		Access: acc,
		Kind:   kind,
		Stage:  stage,
		PC:     c.PC,
	}}
}

// s2Resolve translates an IPA through stage-2 (identity when stage-2 is
// disabled). charged selects whether walk cycles are accounted; descriptor
// fetches during a stage-1 walk model the hardware walk cache and are not
// charged.
func (c *VCPU) s2Resolve(ipa mem.IPA, acc mem.AccessType, charged bool) (mem.PA, uint64, *Abort) {
	if !c.stage2Enabled() {
		return mem.PA(ipa), 0, nil
	}
	root := mem.PA(VTTBRRoot(c.sys[arm64.VTTBREL2]))
	s2 := mem.ViewStage2(c.Mem, root)
	res, err := s2.Walk(ipa)
	if err != nil {
		return 0, 0, c.abort(0, ipa, acc, mem.FaultAddressSize, 2)
	}
	if charged {
		c.Charge(int64(res.Levels) * c.Prof.TLBWalkPerLevel)
	}
	if !res.Found {
		return 0, 0, c.abort(0, ipa, acc, mem.FaultTranslation, 2)
	}
	if kind := mem.CheckStage2(res.Desc, acc); kind != mem.FaultNone {
		return 0, 0, c.abort(0, ipa, acc, kind, 2)
	}
	return res.PA, res.Desc, nil
}

// Translate resolves va for the given access under the current execution
// context: TTBR selection, ASID/VMID-tagged TLB, 4-level stage-1 walk with
// stage-2-translated descriptor fetches, permission checks (including PAN
// and the LDTR/STTR unprivileged override), and combined TLB fill.
func (c *VCPU) Translate(va mem.VA, acc mem.AccessType, unpriv bool) (mem.PA, *Abort) {
	// Host-side micro-TLB fastpath (microtlb.go): hits only when the gates
	// prove the slow path below would hit the TLB with the same entry, pass
	// the same permission checks, and charge nothing. Hit counters are
	// mirrored inside microLookup, so taking this return is invisible to
	// cycles, stats, TLB contents and fault behaviour.
	if pa, ok := c.microLookup(va, acc, unpriv); ok {
		return pa, nil
	}
	if !mem.ValidVA(va) {
		return 0, c.abort(va, 0, acc, mem.FaultAddressSize, 1)
	}
	privileged := c.EL() != arm64.EL0
	pan := c.PAN()

	if c.sys[arm64.SCTLREL1]&SCTLRM == 0 {
		// Stage-1 MMU off: flat mapping, stage-2 still applies.
		pa, _, ab := c.s2Resolve(mem.IPA(va), acc, true)
		if ab != nil {
			ab.Syndrome.VA = va
			return 0, ab
		}
		return pa, nil
	}

	ttbr := c.sys[arm64.TTBR0EL1]
	if mem.IsTTBR1(va) {
		ttbr = c.sys[arm64.TTBR1EL1]
	}
	asid := TTBRASID(ttbr)
	vmid := c.CurrentVMID()

	if e, ok := c.TLB.Lookup(vmid, asid, va); ok {
		if kind := mem.CheckStage1(e.S1Desc, acc, privileged, pan, unpriv); kind != mem.FaultNone {
			return 0, c.abort(va, 0, acc, kind, 1)
		}
		if !c.overlayPermits(e.S1Desc) {
			return 0, c.abort(va, 0, acc, mem.FaultOverlay, 1)
		}
		if e.HasS2 {
			if kind := mem.CheckStage2(e.S2Desc, acc); kind != mem.FaultNone {
				return 0, c.abort(va, 0, acc, kind, 2)
			}
		}
		mask := uint64(1)<<e.BlockShift - 1
		pa := e.PABase + mem.PA(uint64(va)&mask)
		if mem.OverlayKey(e.S1Desc) == 0 {
			c.microFill(va, acc, unpriv, pa)
		}
		return pa, nil
	}

	// Stage-1 walk. Table descriptors live in IPA space when stage-2 is
	// enabled: each fetch resolves through stage-2 (uncharged; modelled
	// walk cache).
	tableIPA := mem.IPA(TTBRRoot(ttbr))
	var leaf uint64
	var leafIPA mem.IPA
	blockShift := uint(mem.PageShift)
	levels := 0
	for level := 0; level <= 3; level++ {
		levels++
		idx := s1IndexOf(va, level)
		descPA, _, ab := c.s2Resolve(tableIPA+mem.IPA(idx*8), mem.AccessRead, false)
		if ab != nil {
			ab.Syndrome.VA = va
			c.Charge(int64(levels) * c.Prof.TLBWalkPerLevel)
			return 0, ab
		}
		desc, err := c.Mem.ReadU64(descPA)
		if err != nil {
			c.Charge(int64(levels) * c.Prof.TLBWalkPerLevel)
			return 0, c.abort(va, 0, acc, mem.FaultAddressSize, 1)
		}
		if desc&mem.DescValid == 0 {
			c.Charge(int64(levels) * c.Prof.TLBWalkPerLevel)
			return 0, c.abort(va, 0, acc, mem.FaultTranslation, 1)
		}
		if level == 3 {
			if desc&mem.DescTable == 0 {
				c.Charge(int64(levels) * c.Prof.TLBWalkPerLevel)
				return 0, c.abort(va, 0, acc, mem.FaultTranslation, 1)
			}
			leaf = desc
			leafIPA = mem.IPA(desc&mem.OAMask | uint64(va)&mem.PageMask)
			break
		}
		if desc&mem.DescTable == 0 {
			if level != 2 {
				c.Charge(int64(levels) * c.Prof.TLBWalkPerLevel)
				return 0, c.abort(va, 0, acc, mem.FaultTranslation, 1)
			}
			leaf = desc
			blockShift = mem.HugePageShift
			leafIPA = mem.IPA(desc&mem.OAMask&^uint64(mem.HugePageMask) | uint64(va)&mem.HugePageMask)
			break
		}
		tableIPA = mem.IPA(desc & mem.OAMask)
	}
	c.Charge(int64(levels) * c.Prof.TLBWalkPerLevel)

	if kind := mem.CheckStage1(leaf, acc, privileged, pan, unpriv); kind != mem.FaultNone {
		return 0, c.abort(va, 0, acc, kind, 1)
	}
	if !c.overlayPermits(leaf) {
		return 0, c.abort(va, 0, acc, mem.FaultOverlay, 1)
	}

	pa, s2desc, ab := c.s2Resolve(leafIPA, acc, true)
	if ab != nil {
		ab.Syndrome.VA = va
		return 0, ab
	}

	mask := uint64(1)<<blockShift - 1
	c.TLB.Insert(vmid, asid, va, mem.TLBEntry{
		PABase:     pa - mem.PA(uint64(va)&mask),
		S1Desc:     leaf,
		S2Desc:     s2desc,
		BlockShift: blockShift,
		HasS2:      c.stage2Enabled(),
	})
	// Fill after the Insert: the micro entry's generation snapshot must
	// cover the state in which the TLB provably holds this translation.
	// Overlay-keyed pages stay out of the micro-TLB: a POR_EL1 write is not
	// a micro-TLB invalidation point, so keyed translations must re-check
	// the active key on every access.
	if mem.OverlayKey(leaf) == 0 {
		c.microFill(va, acc, unpriv, pa)
	}
	return pa, nil
}

// overlayPermits implements the FEAT_S1POE-style permission-overlay check:
// a descriptor carrying a nonzero overlay key is accessible only while
// POR_EL1's low byte holds that key. Unkeyed descriptors (the entire
// pre-overlay world) always pass.
func (c *VCPU) overlayPermits(desc uint64) bool {
	key := mem.OverlayKey(desc)
	return key == 0 || key == int(c.sys[arm64.POREL1]&mem.OverlayKeyMax)
}

func s1IndexOf(va mem.VA, level int) uint64 {
	shift := mem.PageShift + 9*(3-level)
	return uint64(va) >> shift & 0x1FF
}

// MemRead performs a cycle-charged data load of size bytes (1, 2, 4, 8).
func (c *VCPU) MemRead(va mem.VA, size int, unpriv bool) (uint64, *Abort) {
	pa, ab := c.Translate(va, mem.AccessRead, unpriv)
	if ab != nil {
		return 0, ab
	}
	c.Charge(c.Prof.MemAccessCost)
	var v uint64
	if uint64(pa)&mem.PageMask+uint64(size) <= mem.PageSize {
		var err error
		if v, err = c.Mem.ReadUint(pa, size); err != nil {
			return 0, c.abort(va, 0, mem.AccessRead, mem.FaultAddressSize, 1)
		}
	} else {
		var buf [8]byte
		if err := c.Mem.Read(pa, buf[:size]); err != nil {
			return 0, c.abort(va, 0, mem.AccessRead, mem.FaultAddressSize, 1)
		}
		for i := size - 1; i >= 0; i-- {
			v = v<<8 | uint64(buf[i])
		}
	}
	if c.audit != nil {
		c.audit.noteAccess(false, va, size)
	}
	return v, nil
}

// MemWrite performs a cycle-charged data store.
func (c *VCPU) MemWrite(va mem.VA, size int, v uint64, unpriv bool) *Abort {
	pa, ab := c.Translate(va, mem.AccessWrite, unpriv)
	if ab != nil {
		return ab
	}
	c.Charge(c.Prof.MemAccessCost)
	if uint64(pa)&mem.PageMask+uint64(size) <= mem.PageSize {
		if err := c.Mem.WriteUint(pa, size, v); err != nil {
			return c.abort(va, 0, mem.AccessWrite, mem.FaultAddressSize, 1)
		}
	} else {
		var buf [8]byte
		for i := 0; i < size; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		if err := c.Mem.Write(pa, buf[:size]); err != nil {
			return c.abort(va, 0, mem.AccessWrite, mem.FaultAddressSize, 1)
		}
	}
	if c.audit != nil {
		c.audit.noteAccess(true, va, size)
	}
	c.noteCodeWrite(va, size)
	return nil
}

// FetchInsn fetches the instruction word at va with execute permission.
func (c *VCPU) FetchInsn(va mem.VA) (uint32, *Abort) {
	pa, ab := c.Translate(va, mem.AccessExec, false)
	if ab != nil {
		return 0, ab
	}
	w, err := c.Mem.ReadU32(pa)
	if err != nil {
		return 0, c.abort(va, 0, mem.AccessExec, mem.FaultAddressSize, 1)
	}
	return w, nil
}
