// Micro-TLBs: host-side last-translation fastpaths in front of Translate.
//
// This file owns every micro-TLB field and all code that reads or writes
// them — tools/lint rejects `.mtlb` selectors anywhere else in package cpu,
// the same way `.Cycles` writes are confined to Charge/ChargeInsns. The
// confinement is what makes the generation-counter argument auditable: the
// gates below are provably the only way a fastpath hit can be taken.
//
// The identity argument (DESIGN.md §8): a micro-TLB entry is a memoised
// successful Translate. A hit is taken only when every input of that
// Translate is provably unchanged:
//
//   - TLB generation equal  ⇒ the real TLB's entry set has not mutated, so
//     the entry that satisfied Lookup at fill time is still cached and
//     Lookup would hit again (Lookup has no side effects on the entry set).
//   - Code-epoch generation equal ⇒ no code-invalidation chokepoint
//     (W^X flip, lz_prot, break-before-make, emulated store to a code page)
//     fired; conservative for the D-side but keeps one shared rule.
//   - (VMID, ASID, SCTLR.M, priv, PAN) equal ⇒ TTBR selection and the
//     CheckStage1/CheckStage2 permission verdicts — pure functions of the
//     cached descriptors and this context — are unchanged, so the check
//     that passed at fill time still passes.
//
// Under those gates the elided slow path would charge zero cycles (TLB hits
// are free), fault never, and count exactly one TLB hit — which the
// fastpath mirrors via TLB.NoteFastHit. Unprivileged (LDTR/STTR) accesses
// never take the fastpath: their permission verdict uses the unpriv
// override, so they always run the full Translate.
package cpu

import (
	"sync/atomic"

	"lightzone/internal/arm64"
	"lightzone/internal/mem"
)

// microEntry caches one page's completed translation per access side.
type microEntry struct {
	page    uint64 // full VA >> PageShift (canonical bits included)
	paBase  mem.PA // PA of the 4KB page holding va
	tlbGen  uint64 // TLB.Gen() at fill
	codeGen uint64 // CodeEpochs.Gen() at fill
	vmid    uint16
	asid    uint16
	priv    bool // EL != EL0 at fill
	pan     bool // PSTATE.PAN at fill
	// Per-access permission proof: the slow path passed CheckStage1/2 for
	// this access type under the gated context. Bits accumulate as further
	// access types succeed on the same (page, generation, context).
	okR, okW, okX bool
	valid         bool
}

// Micro-TLB geometry: small direct-mapped arrays. The I side covers the
// handful of code pages alternating across a domain switch (user code,
// kernel vectors, gate trampolines); the D side covers the interleaved
// stack/heap/global data pages of every resident domain. Must be powers of
// two.
const (
	iMicroWays = 8
	dMicroWays = 16
)

// microIdx picks the way for a page under a translation context. Page-number
// bits above bit 6 are folded in because natural mapping bases (0x40000,
// 0x80000, …) agree in their low page bits and would otherwise all collide
// in way 0; priv flips the low index bit so the EL0 and EL1 translations of
// one page occupy different ways. The ASID is folded in for the same reason
// at domain granularity: a call-gate switch retags TTBR0, and without the
// fold the same stack/heap page under alternating domains evicts itself on
// every crossing — precisely the access pattern of a gate-heavy workload.
func microIdx(page uint64, priv bool, asid uint16, ways uint64) uint64 {
	h := page ^ page>>6 ^ uint64(asid) ^ uint64(asid)>>4
	if priv {
		h ^= 1
	}
	return h & (ways - 1)
}

// microTLBs is the per-vCPU fastpath state: direct-mapped I-side and D-side
// translation memos plus host-side hit/miss observability. enabled also
// gates the block-resident Run loop and batched cycle accounting, so
// "fastpaths off" reproduces the PR 1–3 pipeline exactly.
type microTLBs struct {
	enabled bool
	i       [iMicroWays]microEntry
	d       [dMicroWays]microEntry
	iHits   uint64
	iMisses uint64
	dHits   uint64
	dMisses uint64
}

// hostFastpathDefault seeds mtlb.enabled for newly created vCPUs, so tools
// (lzbench -nofastpath) can configure machines booted deep inside sweeps.
var hostFastpathDefault atomic.Bool

func init() { hostFastpathDefault.Store(true) }

// SetHostFastpathDefault sets whether new vCPUs start with host fastpaths
// (micro-TLBs, block-resident Run, batched charging) enabled.
func SetHostFastpathDefault(on bool) { hostFastpathDefault.Store(on) }

// HostFastpathDefault reports the current default for new vCPUs.
func HostFastpathDefault() bool { return hostFastpathDefault.Load() }

// SetHostFastpaths enables or disables this vCPU's host fastpaths. Both
// micro-TLB entries are dropped either way, and any batched cycles are
// flushed, so the toggle is safe mid-run and "off" is bit-for-bit the
// Step-per-instruction pipeline.
func (c *VCPU) SetHostFastpaths(on bool) {
	c.flushBatch()
	c.mtlb.enabled = on
	c.mtlb.i = [iMicroWays]microEntry{}
	c.mtlb.d = [dMicroWays]microEntry{}
}

// HostFastpathsEnabled reports whether this vCPU uses the host fastpaths.
func (c *VCPU) HostFastpathsEnabled() bool { return c.mtlb.enabled }

// FlushMicroTLBs drops every memoised micro-TLB entry without changing the
// enabled state. Host-side only: the next access per page re-runs the full
// Translate (which mirrors its TLB hit into the same Stats counters), so
// emulated cycles, stats and architectural state are bit-identical — the
// chaos engine fires this mid-run to prove it.
func (c *VCPU) FlushMicroTLBs() {
	c.mtlb.i = [iMicroWays]microEntry{}
	c.mtlb.d = [dMicroWays]microEntry{}
}

// microLookup is the fastpath tried at the top of Translate. It returns the
// translated PA and true only when the gates prove the slow path would hit
// the TLB, pass all permission checks, and charge nothing.
func (c *VCPU) microLookup(va mem.VA, acc mem.AccessType, unpriv bool) (mem.PA, bool) {
	m := &c.mtlb
	if !m.enabled {
		return 0, false
	}
	if unpriv {
		m.dMisses++
		return 0, false
	}
	page := uint64(va) >> mem.PageShift
	priv := c.EL() != arm64.EL0
	ttbr := c.sys[arm64.TTBR0EL1]
	if mem.IsTTBR1(va) {
		ttbr = c.sys[arm64.TTBR1EL1]
	}
	asid := TTBRASID(ttbr)
	var e *microEntry
	if acc == mem.AccessExec {
		e = &m.i[microIdx(page, priv, asid, iMicroWays)]
	} else {
		e = &m.d[microIdx(page, priv, asid, dMicroWays)]
	}
	ok := e.valid && e.page == page
	if ok {
		switch acc {
		case mem.AccessRead:
			ok = e.okR
		case mem.AccessWrite:
			ok = e.okW
		default:
			ok = e.okX
		}
	}
	if ok && (e.tlbGen != c.TLB.Gen() || e.codeGen != c.TLB.Code.Gen()) {
		e.valid = false
		ok = false
	}
	if ok {
		ok = c.sys[arm64.SCTLREL1]&SCTLRM != 0 &&
			e.priv == priv &&
			e.pan == c.PAN() &&
			e.vmid == c.CurrentVMID()
	}
	// Colliding ASIDs can still share a way; the tag check keeps the hit
	// honest — the index fold only decides who gets evicted, never what a
	// hit proves.
	if ok {
		ok = e.asid == asid
	}
	if !ok {
		if acc == mem.AccessExec {
			m.iMisses++
		} else {
			m.dMisses++
		}
		return 0, false
	}
	if acc == mem.AccessExec {
		m.iHits++
	} else {
		m.dHits++
	}
	c.TLB.NoteFastHit()
	return e.paBase + mem.PA(uint64(va)&mem.PageMask), true
}

// microFill memoises a successful MMU-on Translate for va. pa is the full
// translated address; the 4KB page base is cached so any offset within the
// page reuses the entry. Called only from Translate's two success paths
// (TLB hit, walk + Insert), after all checks passed and — on the walk path —
// after the Insert that makes the entry visible to Lookup.
func (c *VCPU) microFill(va mem.VA, acc mem.AccessType, unpriv bool, pa mem.PA) {
	m := &c.mtlb
	if !m.enabled || unpriv {
		return
	}
	page := uint64(va) >> mem.PageShift
	priv := c.EL() != arm64.EL0
	ttbr := c.sys[arm64.TTBR0EL1]
	if mem.IsTTBR1(va) {
		ttbr = c.sys[arm64.TTBR1EL1]
	}
	asid := TTBRASID(ttbr)
	var e *microEntry
	if acc == mem.AccessExec {
		e = &m.i[microIdx(page, priv, asid, iMicroWays)]
	} else {
		e = &m.d[microIdx(page, priv, asid, dMicroWays)]
	}
	tlbGen := c.TLB.Gen()
	codeGen := c.TLB.Code.Gen()
	pan := c.PAN()
	vmid := c.CurrentVMID()
	if !(e.valid && e.page == page && e.tlbGen == tlbGen && e.codeGen == codeGen &&
		e.vmid == vmid && e.asid == asid && e.priv == priv && e.pan == pan) {
		*e = microEntry{
			page:    page,
			paBase:  pa - mem.PA(uint64(va)&mem.PageMask),
			tlbGen:  tlbGen,
			codeGen: codeGen,
			vmid:    vmid,
			asid:    asid,
			priv:    priv,
			pan:     pan,
			valid:   true,
		}
	}
	switch acc {
	case mem.AccessRead:
		e.okR = true
	case mem.AccessWrite:
		e.okW = true
	default:
		e.okX = true
	}
}

// MicroTLBEntry is the observation-only snapshot of one micro-TLB side,
// exposed for the verify cache-coherence checker and tests.
type MicroTLBEntry struct {
	Side    string // "I" or "D"
	Valid   bool
	Page    uint64
	PABase  mem.PA
	TLBGen  uint64
	CodeGen uint64
	VMID    uint16
	ASID    uint16
	Priv    bool
	PAN     bool
	OkR     bool
	OkW     bool
	OkX     bool
}

// MicroTLBSnapshot returns every micro-TLB entry (the I-side ways, then the
// D-side ways, each in index order) without touching any counter or
// generation.
func (c *VCPU) MicroTLBSnapshot() []MicroTLBEntry {
	snap := func(side string, e *microEntry) MicroTLBEntry {
		return MicroTLBEntry{
			Side: side, Valid: e.valid, Page: e.page, PABase: e.paBase,
			TLBGen: e.tlbGen, CodeGen: e.codeGen, VMID: e.vmid, ASID: e.asid,
			Priv: e.priv, PAN: e.pan, OkR: e.okR, OkW: e.okW, OkX: e.okX,
		}
	}
	out := make([]MicroTLBEntry, 0, iMicroWays+dMicroWays)
	for w := range c.mtlb.i {
		out = append(out, snap("I", &c.mtlb.i[w]))
	}
	for w := range c.mtlb.d {
		out = append(out, snap("D", &c.mtlb.d[w]))
	}
	return out
}

// MicroTLBStats returns host-side fastpath hit/miss counters (I-side then
// D-side). Host observability only — never part of the emulated identity
// surface, which is why they are not in mem.Stats.
func (c *VCPU) MicroTLBStats() (iHits, iMisses, dHits, dMisses uint64) {
	return c.mtlb.iHits, c.mtlb.iMisses, c.mtlb.dHits, c.mtlb.dMisses
}
