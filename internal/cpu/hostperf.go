package cpu

import "sync/atomic"

// HostPerf is a process-wide aggregate of host-observability counters:
// every Run call adds its emulated-instruction and cache-statistic deltas
// on return. Tools (lzbench -hostperf / -benchout) divide the instruction
// aggregate by wall time to report host throughput — emulated instructions
// per host second — per benchmark suite. Observation only: the counters are
// never read back into emulation, so they are not part of the identity
// surface.
type HostPerf struct {
	Insns      int64
	TLBHits    int64
	TLBMisses  int64
	CodeHits   int64
	CodeMisses int64
}

var hostPerf struct {
	insns, tlbHits, tlbMisses, codeHits, codeMisses atomic.Int64
}

// notePerf accumulates one Run call's deltas into the process aggregate.
func notePerf(insns, tlbHits, tlbMisses, codeHits, codeMisses int64) {
	hostPerf.insns.Add(insns)
	hostPerf.tlbHits.Add(tlbHits)
	hostPerf.tlbMisses.Add(tlbMisses)
	hostPerf.codeHits.Add(codeHits)
	hostPerf.codeMisses.Add(codeMisses)
}

// ReadHostPerf returns the current process-wide aggregate.
func ReadHostPerf() HostPerf {
	return HostPerf{
		Insns:      hostPerf.insns.Load(),
		TLBHits:    hostPerf.tlbHits.Load(),
		TLBMisses:  hostPerf.tlbMisses.Load(),
		CodeHits:   hostPerf.codeHits.Load(),
		CodeMisses: hostPerf.codeMisses.Load(),
	}
}

// Sub returns the delta h - prev, for per-suite reporting.
func (h HostPerf) Sub(prev HostPerf) HostPerf {
	return HostPerf{
		Insns:      h.Insns - prev.Insns,
		TLBHits:    h.TLBHits - prev.TLBHits,
		TLBMisses:  h.TLBMisses - prev.TLBMisses,
		CodeHits:   h.CodeHits - prev.CodeHits,
		CodeMisses: h.CodeMisses - prev.CodeMisses,
	}
}
