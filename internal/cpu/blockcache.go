package cpu

import (
	"sort"
	"sync/atomic"

	"lightzone/internal/arm64"
	"lightzone/internal/arm64/absint"
	"lightzone/internal/mem"
)

// maxCachedBlocks bounds the decoded-block cache; on overflow the oldest
// half (by insertion order) is evicted, so a workload sweeping past the cap
// re-decodes only cold blocks instead of hitting a full-miss cliff.
const maxCachedBlocks = 8192

// dblock is a decoded straight-line block: the Decode results for
// consecutive instruction words within one page, ending at the first
// terminator (branch, exception, system op) or the page boundary.
type dblock struct {
	insns []arm64.Insn
	page  uint64 // VA >> PageShift
	snap  uint64 // code-epoch snapshot when the build started
	// checkedGen is the epoch generation at which snap was last verified to
	// match the page's current epoch. When the global generation has not
	// moved since, no epoch can have moved either, so enter skips the
	// per-page Snapshot probes — a pure host-side elision.
	checkedGen uint64
	// proof is the lazily derived static block proof (see proofaudit.go;
	// all access is confined to that file by tools/lint). Its lifetime is
	// the block's: both are dropped when the page's code epoch moves.
	proof *absint.BlockProof
	// hot counts validated entries toward the trace-stitch threshold (see
	// trace.go). Saturates at the threshold; reset when a transient stitch
	// failure or trace invalidation makes a retry worthwhile.
	hot uint32
}

// Blocks are addressed by execution context and start address: (VMID, ASID,
// page, offset), mirroring the TLB's tagging so blocks from different
// address spaces never alias. mmuOff separates flat (stage-1 off) fetches
// from translated ones that happen to share an ASID value. Like the TLB,
// the context is interned and the key packed into a single uint64 — the
// canonical 36-bit page index and the insn-aligned page offset in the low
// 46 bits, the interned context id above — so every probe on the fetch path
// uses the runtime's fast uint64 map.
type blockKey = uint64

const (
	blockPageBits = 36
	blockOffBits  = 10 // 4KB page / 4-byte instructions
	blockCtxShift = blockPageBits + blockOffBits
)

// blockCtx identifies a block's translation context before interning.
type blockCtx struct {
	vmid   uint16
	asid   uint16
	mmuOff bool
}

// blockCursor replays an entered block instruction by instruction. It is
// dropped on any control-flow discontinuity (PC != expect), at block end,
// on exception delivery, and when a store hits the block's page.
type blockCursor struct {
	blk    *dblock
	idx    int
	expect uint64
}

// BlockCache is the decoded-basic-block cache of the execution pipeline.
// Blocks are built lazily as instructions execute for the first time and
// validated against per-page code-generation epochs (mem.CodeEpochs) on
// every block entry, so any W^X flip, break-before-make, lz_prot change,
// stage-2 remap or emulated store invalidates affected blocks before the
// next fetch. The cache only elides host-side work (the word read and
// re-decode); the architectural fetch translation still runs per
// instruction, keeping emulated cycles and TLB behaviour bit-identical.
type BlockCache struct {
	enabled bool
	blocks  map[blockKey]*dblock
	// order records block keys in insertion order for cohort eviction on
	// overflow. Keys of blocks deleted for staleness are not scrubbed (that
	// would be a linear scan per invalidation); evictCohort simply skips
	// keys that no longer resolve, and a key re-inserted after a stale
	// delete appears twice — its older position may evict the rebuilt block
	// early, which costs one re-decode and nothing else.
	order []blockKey
	// codePages counts completed blocks per page so the store hook can
	// skip epoch bumps for pages that hold no cached code.
	codePages map[uint64]int
	epochs    *mem.CodeEpochs
	stats     *mem.Stats

	// Context interning (see blockKey): (vmid, asid, mmuOff) -> pre-shifted
	// context id, with a one-entry cache for the common same-context run.
	ctxIDs  map[blockCtx]uint64
	ctxList []blockCtx // index = context id, for key decoding
	// Small direct-mapped intern memo, indexed by the ASID's low bits:
	// gate-heavy workloads alternate between a few domain ASIDs every
	// crossing, and a single-slot memo would miss on every one of them.
	ctxMemo [4]blockCtxMemo

	// Invalidation hooks for dependents (the trace cache): onReset fires
	// after the whole cache is dropped (interned context ids dangle, so any
	// key derived from them does too); onEvict fires per cohort-evicted key.
	onReset func()
	onEvict func(blockKey)

	// In-progress block builder. The build is abandoned (never inserted)
	// if the page's epoch moves between build start and finalize.
	building bool
	bkey     blockKey
	bpage    uint64
	bsnap    uint64
	bexpect  uint64
	binsns   []arm64.Insn
}

// decodeCacheDefault seeds the enabled state of newly created block caches,
// so tools (lzbench -nodecode) can configure machines booted deep inside
// sweeps.
var decodeCacheDefault atomic.Bool

func init() { decodeCacheDefault.Store(true) }

// SetDecodeCacheDefault sets whether new vCPUs start with the decoded-block
// cache enabled.
func SetDecodeCacheDefault(on bool) { decodeCacheDefault.Store(on) }

// DecodeCacheDefault reports the current default for new vCPUs.
func DecodeCacheDefault() bool { return decodeCacheDefault.Load() }

func newBlockCache(epochs *mem.CodeEpochs, stats *mem.Stats) *BlockCache {
	// The block and intern maps are created on first insert: machines that
	// never execute (zygotes, and children at the moment they fork) carry
	// an empty cache without paying for its containers.
	return &BlockCache{
		enabled: decodeCacheDefault.Load(),
		epochs:  epochs,
		stats:   stats,
	}
}

// ctxFor interns a block translation context and returns its pre-shifted
// id. The intern tables are a pure host-side cache: if context churn (VMID
// or ASID recycling across many processes) ever grows them past the block
// cap, the whole cache is dropped and interning restarts — costing only
// re-decodes.
func (d *BlockCache) ctxFor(c blockCtx) uint64 {
	m := &d.ctxMemo[c.asid&uint16(len(d.ctxMemo)-1)]
	if m.ok && c == m.ctx {
		return m.id
	}
	id, ok := d.ctxIDs[c]
	if !ok {
		if len(d.ctxList) >= maxCachedBlocks {
			d.reset()
		}
		if d.ctxIDs == nil {
			d.ctxIDs = make(map[blockCtx]uint64)
		}
		id = uint64(len(d.ctxList)) << blockCtxShift
		d.ctxIDs[c] = id
		d.ctxList = append(d.ctxList, c)
	}
	*m = blockCtxMemo{ctx: c, id: id, ok: true}
	return id
}

// blockCtxMemo caches one interned block-translation context.
type blockCtxMemo struct {
	ctx blockCtx
	id  uint64
	ok  bool
}

// SetEnabled turns the cache on or off (off: every instruction is fetched
// and decoded from memory, the seed pipeline). Used by the cycle-identity
// tests and benchmarks; disabling drops all cached state.
func (c *VCPU) SetDecodeCache(enabled bool) {
	d := c.Decoded
	d.enabled = enabled
	d.reset()
	c.cur = blockCursor{}
}

// DecodeCacheEnabled reports whether the decoded-block cache is active.
func (c *VCPU) DecodeCacheEnabled() bool { return c.Decoded.enabled }

// DecodeCacheLen returns the number of cached blocks.
func (c *VCPU) DecodeCacheLen() int { return len(c.Decoded.blocks) }

// CachedBlockInfo describes one decoded block for verifiers: its keying
// context, the raw instruction words it decoded from, and whether its
// epoch snapshot still matches the page's current epoch. EpochOK==false
// blocks are benign — they are discarded on next entry — so coherence
// audits only cross-check the bytes of blocks the pipeline would replay.
type CachedBlockInfo struct {
	VMID    uint16
	ASID    uint16
	MMUOff  bool
	Page    uint64 // VA >> PageShift
	Off     uint16 // byte offset of the first instruction within the page
	EpochOK bool
	Raw     []uint32
}

// DecodedBlocks returns a deterministic snapshot of the block cache (sorted
// by context, page, offset). Observation-only: no stats or epochs move.
func (c *VCPU) DecodedBlocks() []CachedBlockInfo {
	d := c.Decoded
	out := make([]CachedBlockInfo, 0, len(d.blocks))
	for k, b := range d.blocks {
		ctx := d.ctxList[k>>blockCtxShift]
		info := CachedBlockInfo{
			VMID:    ctx.vmid,
			ASID:    ctx.asid,
			MMUOff:  ctx.mmuOff,
			Page:    b.page,
			Off:     uint16(k & (1<<blockOffBits - 1) << 2),
			EpochOK: d.epochs.Snapshot(b.page) == b.snap,
			Raw:     make([]uint32, len(b.insns)),
		}
		for i, in := range b.insns {
			info.Raw[i] = in.Raw
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.VMID != b.VMID {
			return a.VMID < b.VMID
		}
		if a.ASID != b.ASID {
			return a.ASID < b.ASID
		}
		if a.MMUOff != b.MMUOff {
			return !a.MMUOff
		}
		if a.Page != b.Page {
			return a.Page < b.Page
		}
		return a.Off < b.Off
	})
	return out
}

func (d *BlockCache) reset() {
	clear(d.blocks)
	clear(d.codePages)
	clear(d.ctxIDs)
	d.ctxList = d.ctxList[:0]
	d.ctxMemo = [4]blockCtxMemo{}
	d.order = d.order[:0]
	d.building = false
	if d.onReset != nil {
		d.onReset()
	}
}

// evictCohort drops the oldest half of the cached blocks by insertion
// order. Stale order entries (blocks already deleted, or re-inserted later
// under the same key) are skipped without counting toward the cohort.
func (d *BlockCache) evictCohort() {
	target := len(d.blocks) / 2
	evicted := 0
	i := 0
	for ; i < len(d.order) && evicted < target; i++ {
		k := d.order[i]
		b, ok := d.blocks[k]
		if !ok {
			continue
		}
		delete(d.blocks, k)
		d.dropPageRef(b.page)
		if d.onEvict != nil {
			d.onEvict(k)
		}
		evicted++
	}
	d.order = append(d.order[:0], d.order[i:]...)
}

// EvictBlockCohort forces the cap-pressure eviction path: the oldest half
// of the cached decoded blocks is dropped, exactly as if the cache had hit
// its capacity bound. Host-side state only — the chaos engine fires it
// mid-run to prove evicted blocks rebuild bit-identically (cycles, stats on
// the emulated surface, and architectural state all unchanged).
func (c *VCPU) EvictBlockCohort() {
	c.cur.blk = nil // never resume a cursor into a possibly-evicted block
	c.Decoded.evictCohort()
	c.Decoded.compactOrder()
}

// compactOrder rebuilds order keeping the first occurrence of each live
// key, bounding growth when stale deletions and rebuilds churn the same
// keys without ever reaching the block cap.
func (d *BlockCache) compactOrder() {
	seen := make(map[blockKey]bool, len(d.blocks))
	kept := d.order[:0]
	for _, k := range d.order {
		if _, ok := d.blocks[k]; ok && !seen[k] {
			seen[k] = true
			kept = append(kept, k)
		}
	}
	d.order = kept
}

// keyFor derives the packed cache key for a fetch at pc under c's current
// translation context, mirroring Translate's TTBR/ASID/VMID selection.
func (d *BlockCache) keyFor(c *VCPU, pc uint64) blockKey {
	ctx := blockCtx{vmid: c.CurrentVMID()}
	if c.sys[arm64.SCTLREL1]&SCTLRM == 0 {
		ctx.mmuOff = true
	} else {
		ttbr := c.sys[arm64.TTBR0EL1]
		if mem.IsTTBR1(mem.VA(pc)) {
			ttbr = c.sys[arm64.TTBR1EL1]
		}
		ctx.asid = TTBRASID(ttbr)
	}
	page := pc >> mem.PageShift & (1<<blockPageBits - 1)
	off := pc & mem.PageMask >> 2
	return d.ctxFor(ctx) | page<<blockOffBits | off
}

// enter returns the valid cached block starting at pc, or nil. A block
// whose page epoch moved since the build is discarded (stale).
func (d *BlockCache) enter(c *VCPU, pc uint64) *dblock {
	if !d.enabled {
		return nil
	}
	key := d.keyFor(c, pc)
	b := d.blocks[key]
	if b == nil {
		return nil
	}
	gen := d.epochs.Gen()
	if b.checkedGen == gen {
		// No epoch of any granularity moved since the last validation, so
		// the per-page Snapshot cannot have changed either.
		c.noteBlockHot(b, key, pc)
		return b
	}
	if d.epochs.Snapshot(b.page) != b.snap {
		delete(d.blocks, key)
		d.dropPageRef(b.page)
		d.stats.CodeStale++
		return nil
	}
	b.checkedGen = gen
	c.noteBlockHot(b, key, pc)
	return b
}

// noteDecoded feeds one freshly decoded instruction to the block builder.
// Consecutive calls with sequential PCs on one page grow the pending block;
// a terminator or page boundary completes it.
func (d *BlockCache) noteDecoded(c *VCPU, pc uint64, in arm64.Insn) {
	if !d.enabled {
		return
	}
	pg := pc >> mem.PageShift
	if !d.building || pc != d.bexpect || pg != d.bpage {
		d.building = true
		d.bkey = d.keyFor(c, pc)
		d.bpage = pg
		d.bsnap = d.epochs.Snapshot(pg)
		d.binsns = d.binsns[:0]
	}
	d.binsns = append(d.binsns, in)
	d.bexpect = pc + arm64.InsnBytes
	if in.Op.Terminates() || (pc+arm64.InsnBytes)>>mem.PageShift != pg {
		d.finalize()
	}
}

// finalize inserts the pending block unless its page's epoch moved during
// the build (a store or permission flip raced the block; the partial
// decodes may mix pre- and post-write words, so the block is discarded).
func (d *BlockCache) finalize() {
	d.building = false
	if len(d.binsns) == 0 || d.epochs.Snapshot(d.bpage) != d.bsnap {
		return
	}
	if len(d.order) >= 2*maxCachedBlocks {
		d.compactOrder()
	}
	if len(d.blocks) >= maxCachedBlocks {
		d.evictCohort()
	}
	if _, exists := d.blocks[d.bkey]; !exists {
		if d.blocks == nil {
			d.blocks = make(map[blockKey]*dblock)
			d.codePages = make(map[uint64]int)
		}
		d.codePages[d.bpage]++
		d.order = append(d.order, d.bkey)
	}
	d.blocks[d.bkey] = &dblock{
		insns:      append([]arm64.Insn(nil), d.binsns...),
		page:       d.bpage,
		snap:       d.bsnap,
		checkedGen: d.epochs.Gen(),
	}
	d.stats.CodeBlocks++
}

func (d *BlockCache) dropPageRef(pg uint64) {
	if n := d.codePages[pg]; n > 1 {
		d.codePages[pg] = n - 1
	} else {
		delete(d.codePages, pg)
	}
}

// hasCode reports whether the page holds completed or in-flight blocks.
func (d *BlockCache) hasCode(pg uint64) bool {
	if d.building && pg == d.bpage {
		return true
	}
	_, ok := d.codePages[pg]
	return ok
}

// InvalidateCode drops any cached decodes covering va's page without
// touching TLB state or emulated cycles — the hook for host-side (module)
// writers that patch memory behind the emulated store path, such as gate
// behaviour remaps.
func (c *VCPU) InvalidateCode(va mem.VA) {
	c.Decoded.epochs.BumpVA(va)
	if c.cur.blk != nil && c.cur.blk.page == uint64(va)>>mem.PageShift {
		c.cur = blockCursor{}
	}
}

// noteCodeWrite is the self-modifying-code hook: MemWrite calls it after
// every successful emulated store. If the store landed on a page with
// cached (or in-build) code, the page's epoch is bumped so its blocks are
// re-decoded on next entry, and the active cursor is killed if it was
// replaying from that page — the next fetch sees the new bytes.
func (c *VCPU) noteCodeWrite(va mem.VA, size int) {
	d := c.Decoded
	if !d.enabled {
		return
	}
	pg := uint64(va) >> mem.PageShift
	endPg := (uint64(va) + uint64(size) - 1) >> mem.PageShift
	for p := pg; p <= endPg; p++ {
		if !d.hasCode(p) {
			continue
		}
		d.epochs.BumpVA(mem.VA(p << mem.PageShift))
		if c.cur.blk != nil && c.cur.blk.page == p {
			c.cur = blockCursor{}
		}
	}
}
