package cpu

import (
	"sort"

	"lightzone/internal/arm64"
	"lightzone/internal/mem"
)

// maxCachedBlocks bounds the decoded-block cache; on overflow the whole
// cache is reset (cheap, and refill is just re-decoding).
const maxCachedBlocks = 8192

// dblock is a decoded straight-line block: the Decode results for
// consecutive instruction words within one page, ending at the first
// terminator (branch, exception, system op) or the page boundary.
type dblock struct {
	insns []arm64.Insn
	page  uint64 // VA >> PageShift
	snap  uint64 // code-epoch snapshot when the build started
}

// blockKey addresses a block by execution context and start address:
// (VMID, ASID, page, offset), mirroring the TLB's tagging so blocks from
// different address spaces never alias. mmuOff separates flat (stage-1 off)
// fetches from translated ones that happen to share an ASID value.
type blockKey struct {
	vmid   uint16
	asid   uint16
	mmuOff bool
	page   uint64
	off    uint16
}

// blockCursor replays an entered block instruction by instruction. It is
// dropped on any control-flow discontinuity (PC != expect), at block end,
// on exception delivery, and when a store hits the block's page.
type blockCursor struct {
	blk    *dblock
	idx    int
	expect uint64
}

// BlockCache is the decoded-basic-block cache of the execution pipeline.
// Blocks are built lazily as instructions execute for the first time and
// validated against per-page code-generation epochs (mem.CodeEpochs) on
// every block entry, so any W^X flip, break-before-make, lz_prot change,
// stage-2 remap or emulated store invalidates affected blocks before the
// next fetch. The cache only elides host-side work (the word read and
// re-decode); the architectural fetch translation still runs per
// instruction, keeping emulated cycles and TLB behaviour bit-identical.
type BlockCache struct {
	enabled bool
	blocks  map[blockKey]*dblock
	// codePages counts completed blocks per page so the store hook can
	// skip epoch bumps for pages that hold no cached code.
	codePages map[uint64]int
	epochs    *mem.CodeEpochs
	stats     *mem.Stats

	// In-progress block builder. The build is abandoned (never inserted)
	// if the page's epoch moves between build start and finalize.
	building bool
	bkey     blockKey
	bpage    uint64
	bsnap    uint64
	bexpect  uint64
	binsns   []arm64.Insn
}

func newBlockCache(epochs *mem.CodeEpochs, stats *mem.Stats) *BlockCache {
	return &BlockCache{
		enabled:   true,
		blocks:    make(map[blockKey]*dblock),
		codePages: make(map[uint64]int),
		epochs:    epochs,
		stats:     stats,
	}
}

// SetEnabled turns the cache on or off (off: every instruction is fetched
// and decoded from memory, the seed pipeline). Used by the cycle-identity
// tests and benchmarks; disabling drops all cached state.
func (c *VCPU) SetDecodeCache(enabled bool) {
	d := c.Decoded
	d.enabled = enabled
	d.reset()
	c.cur = blockCursor{}
}

// DecodeCacheEnabled reports whether the decoded-block cache is active.
func (c *VCPU) DecodeCacheEnabled() bool { return c.Decoded.enabled }

// DecodeCacheLen returns the number of cached blocks.
func (c *VCPU) DecodeCacheLen() int { return len(c.Decoded.blocks) }

// CachedBlockInfo describes one decoded block for verifiers: its keying
// context, the raw instruction words it decoded from, and whether its
// epoch snapshot still matches the page's current epoch. EpochOK==false
// blocks are benign — they are discarded on next entry — so coherence
// audits only cross-check the bytes of blocks the pipeline would replay.
type CachedBlockInfo struct {
	VMID    uint16
	ASID    uint16
	MMUOff  bool
	Page    uint64 // VA >> PageShift
	Off     uint16 // byte offset of the first instruction within the page
	EpochOK bool
	Raw     []uint32
}

// DecodedBlocks returns a deterministic snapshot of the block cache (sorted
// by context, page, offset). Observation-only: no stats or epochs move.
func (c *VCPU) DecodedBlocks() []CachedBlockInfo {
	d := c.Decoded
	out := make([]CachedBlockInfo, 0, len(d.blocks))
	for k, b := range d.blocks {
		info := CachedBlockInfo{
			VMID:    k.vmid,
			ASID:    k.asid,
			MMUOff:  k.mmuOff,
			Page:    k.page,
			Off:     k.off,
			EpochOK: d.epochs.Snapshot(b.page) == b.snap,
			Raw:     make([]uint32, len(b.insns)),
		}
		for i, in := range b.insns {
			info.Raw[i] = in.Raw
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.VMID != b.VMID {
			return a.VMID < b.VMID
		}
		if a.ASID != b.ASID {
			return a.ASID < b.ASID
		}
		if a.MMUOff != b.MMUOff {
			return !a.MMUOff
		}
		if a.Page != b.Page {
			return a.Page < b.Page
		}
		return a.Off < b.Off
	})
	return out
}

func (d *BlockCache) reset() {
	clear(d.blocks)
	clear(d.codePages)
	d.building = false
}

// keyFor derives the cache key for a fetch at pc under c's current
// translation context, mirroring Translate's TTBR/ASID/VMID selection.
func (d *BlockCache) keyFor(c *VCPU, pc uint64) blockKey {
	k := blockKey{
		vmid: c.CurrentVMID(),
		page: pc >> mem.PageShift,
		off:  uint16(pc & mem.PageMask),
	}
	if c.sys[arm64.SCTLREL1]&SCTLRM == 0 {
		k.mmuOff = true
		return k
	}
	ttbr := c.sys[arm64.TTBR0EL1]
	if mem.IsTTBR1(mem.VA(pc)) {
		ttbr = c.sys[arm64.TTBR1EL1]
	}
	k.asid = TTBRASID(ttbr)
	return k
}

// enter returns the valid cached block starting at pc, or nil. A block
// whose page epoch moved since the build is discarded (stale).
func (d *BlockCache) enter(c *VCPU, pc uint64) *dblock {
	if !d.enabled {
		return nil
	}
	key := d.keyFor(c, pc)
	b := d.blocks[key]
	if b == nil {
		return nil
	}
	if d.epochs.Snapshot(b.page) != b.snap {
		delete(d.blocks, key)
		d.dropPageRef(b.page)
		d.stats.CodeStale++
		return nil
	}
	return b
}

// noteDecoded feeds one freshly decoded instruction to the block builder.
// Consecutive calls with sequential PCs on one page grow the pending block;
// a terminator or page boundary completes it.
func (d *BlockCache) noteDecoded(c *VCPU, pc uint64, in arm64.Insn) {
	if !d.enabled {
		return
	}
	pg := pc >> mem.PageShift
	if !d.building || pc != d.bexpect || pg != d.bpage {
		d.building = true
		d.bkey = d.keyFor(c, pc)
		d.bpage = pg
		d.bsnap = d.epochs.Snapshot(pg)
		d.binsns = d.binsns[:0]
	}
	d.binsns = append(d.binsns, in)
	d.bexpect = pc + arm64.InsnBytes
	if in.Op.Terminates() || (pc+arm64.InsnBytes)>>mem.PageShift != pg {
		d.finalize()
	}
}

// finalize inserts the pending block unless its page's epoch moved during
// the build (a store or permission flip raced the block; the partial
// decodes may mix pre- and post-write words, so the block is discarded).
func (d *BlockCache) finalize() {
	d.building = false
	if len(d.binsns) == 0 || d.epochs.Snapshot(d.bpage) != d.bsnap {
		return
	}
	if len(d.blocks) >= maxCachedBlocks {
		d.reset()
	}
	if _, exists := d.blocks[d.bkey]; !exists {
		d.codePages[d.bpage]++
	}
	d.blocks[d.bkey] = &dblock{
		insns: append([]arm64.Insn(nil), d.binsns...),
		page:  d.bpage,
		snap:  d.bsnap,
	}
	d.stats.CodeBlocks++
}

func (d *BlockCache) dropPageRef(pg uint64) {
	if n := d.codePages[pg]; n > 1 {
		d.codePages[pg] = n - 1
	} else {
		delete(d.codePages, pg)
	}
}

// hasCode reports whether the page holds completed or in-flight blocks.
func (d *BlockCache) hasCode(pg uint64) bool {
	if d.building && pg == d.bpage {
		return true
	}
	_, ok := d.codePages[pg]
	return ok
}

// InvalidateCode drops any cached decodes covering va's page without
// touching TLB state or emulated cycles — the hook for host-side (module)
// writers that patch memory behind the emulated store path, such as gate
// behaviour remaps.
func (c *VCPU) InvalidateCode(va mem.VA) {
	c.Decoded.epochs.BumpVA(va)
	if c.cur.blk != nil && c.cur.blk.page == uint64(va)>>mem.PageShift {
		c.cur = blockCursor{}
	}
}

// noteCodeWrite is the self-modifying-code hook: MemWrite calls it after
// every successful emulated store. If the store landed on a page with
// cached (or in-build) code, the page's epoch is bumped so its blocks are
// re-decoded on next entry, and the active cursor is killed if it was
// replaying from that page — the next fetch sees the new bytes.
func (c *VCPU) noteCodeWrite(va mem.VA, size int) {
	d := c.Decoded
	if !d.enabled {
		return
	}
	pg := uint64(va) >> mem.PageShift
	endPg := (uint64(va) + uint64(size) - 1) >> mem.PageShift
	for p := pg; p <= endPg; p++ {
		if !d.hasCode(p) {
			continue
		}
		d.epochs.BumpVA(mem.VA(p << mem.PageShift))
		if c.cur.blk != nil && c.cur.blk.page == p {
			c.cur = blockCursor{}
		}
	}
}
