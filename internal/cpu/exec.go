package cpu

import (
	"errors"
	"fmt"

	"lightzone/internal/arm64"
	"lightzone/internal/mem"
)

// ErrInsnLimit is returned by Run when maxInsns is reached without an exit.
var ErrInsnLimit = errors.New("instruction limit reached")

// Run executes emulated code until an exception leaves the emulated world
// (to EL2, or to a functional EL1 kernel), or maxInsns instructions retire.
//
// With host fastpaths enabled, replay of a cached block runs block-resident
// in runBlock — the per-instruction Step/Run boundary crossing is hoisted
// out — and falls back to Step for block entry, decode misses, and IRQ
// delivery. Budget accounting is identical to the Step-per-iteration loop:
// every retired instruction and every delivered exception consumes one
// unit. With fastpaths disabled this is exactly the plain Step loop.
func (c *VCPU) Run(maxInsns int64) (Exit, error) {
	insns := c.Insns
	tlbH, tlbM := c.Stats.TLBHits, c.Stats.TLBMisses
	codeH, codeM := c.Stats.CodeHits, c.Stats.CodeMisses
	exit, err := c.runLoop(maxInsns)
	c.flushTraceStats()
	notePerf(c.Insns-insns,
		int64(c.Stats.TLBHits-tlbH), int64(c.Stats.TLBMisses-tlbM),
		int64(c.Stats.CodeHits-codeH), int64(c.Stats.CodeMisses-codeM))
	return exit, err
}

func (c *VCPU) runLoop(maxInsns int64) (Exit, error) {
	resident := c.HostFastpathsEnabled()
	for done := int64(0); done < maxInsns; {
		// Deliverable IRQs go through Step, whatever the cursor or trace
		// cache says — hoisting the check keeps the resident paths free to
		// `continue` without starving delivery.
		if resident && c.EL() != arm64.EL2 &&
			!(c.PendingIRQ && c.PState&arm64.PStateI == 0) {
			if c.cur.blk != nil && c.PC == c.cur.expect {
				n, exit, err := c.runBlock(maxInsns - done)
				done += n
				if err != nil {
					return Exit{}, err
				}
				if exit != nil {
					return *exit, nil
				}
				continue
			}
			// Dead cursor: a stitched trace may start at this PC.
			if t := c.pickTrace(maxInsns - done); t != nil {
				n, exit, err := c.runTrace(t)
				done += n
				if err != nil {
					return Exit{}, err
				}
				if exit != nil {
					return *exit, nil
				}
				continue
			}
		}
		exit, err := c.Step()
		done++
		if err != nil {
			return Exit{}, err
		}
		if exit != nil {
			return *exit, nil
		}
	}
	return Exit{}, ErrInsnLimit
}

// runBlock replays the active block cursor in a tight loop, executing at
// most budget instructions. It preserves Step's semantics per instruction —
// the architectural fetch translation (now usually a micro-TLB fastpath
// hit), stats, IRQ recognition and abort delivery — but batches the
// per-instruction InsnCost into c.batch, flushing through a single Charge
// before any point where Cycles is observable: terminator dispatch (the
// only instructions whose handlers trace, trap or exit), exception
// delivery, and every return path. Returns the number of budget units
// consumed (retired instructions plus delivered fetch aborts, matching the
// Step loop's accounting).
func (c *VCPU) runBlock(budget int64) (int64, *Exit, error) {
	cur := &c.cur
	var done int64
	for done < budget && cur.blk != nil && c.PC == cur.expect {
		if c.PendingIRQ && c.PState&arm64.PStateI == 0 {
			break // delivered by the caller's next Step, on its own budget unit
		}
		if _, ab := c.Translate(mem.VA(c.PC), mem.AccessExec, false); ab != nil {
			cur.blk = nil
			ab.Syndrome.Class = classifyAbort(mem.AccessExec, c.EL(), ab.Syndrome.Stage)
			done++
			exit := c.deliver(ab.Syndrome, c.PC) // deliver flushes the batch
			return done, exit, nil
		}
		in := cur.blk.insns[cur.idx]
		cur.idx++
		cur.expect += arm64.InsnBytes
		if cur.idx == len(cur.blk.insns) {
			cur.blk = nil
		}
		c.Stats.CodeHits++
		c.Insns++
		done++
		c.batch += c.Prof.InsnCost
		c.nextPC = c.PC + arm64.InsnBytes
		if in.Op.Terminates() {
			// Terminators are the only ops whose handlers can observe
			// Cycles (exception entry, the TTBR0-write trace hook, TLBI).
			c.flushBatch()
		}
		if c.audit != nil {
			c.audit.noteDispatch(c, c.PC)
		}
		exit := handlers[in.Op](c, in)
		if c.stepErr != nil {
			err := c.stepErr
			c.stepErr = nil
			c.flushBatch()
			return done, nil, err
		}
		if exit != nil {
			c.flushBatch()
			return done, exit, nil
		}
		c.PC = c.nextPC
	}
	c.flushBatch()
	return done, nil, nil
}

// deliver routes and takes a synchronous exception; it returns a non-nil
// Exit when the exception leaves the emulated world.
func (c *VCPU) deliver(s Syndrome, preferReturn uint64) *Exit {
	// Exception entry observes and charges Cycles; commit any cycles still
	// batched by a block-resident replay (data aborts from loads/stores
	// reach here mid-block with a non-empty batch).
	c.flushBatch()
	// An exception hands control to a handler that may change mappings or
	// rewrite code before returning; never resume a block across it.
	c.cur.blk = nil
	c.excSeq++
	target := c.routeSyncException(s)
	c.TakeException(target, s, preferReturn)
	if target == arm64.EL2 || !c.EmulatedEL1 {
		return &Exit{TargetEL: target, Syndrome: s}
	}
	return nil
}

// Step executes one instruction through the cached pipeline:
//
//  1. resolve the decoded instruction — replay from the current block
//     cursor, enter a cached block at PC, or fetch + decode from memory
//     (feeding the block builder);
//  2. dispatch through the per-form handler table.
//
// The cached paths still perform the architectural instruction fetch
// translation (TLB lookup or charged walk, stage-1/stage-2 permission
// checks), so cycle accounting, TLB contents and fault behaviour are
// bit-identical with the cache on or off; only the host-side word read and
// re-decode are elided. It returns a non-nil Exit when control leaves the
// emulated world.
func (c *VCPU) Step() (*Exit, error) {
	if c.EL() == arm64.EL2 {
		return nil, fmt.Errorf("interpreter invoked at EL2 (pc=%#x)", c.PC)
	}
	if c.PendingIRQ && c.PState&arm64.PStateI == 0 {
		c.PendingIRQ = false
		c.cur.blk = nil
		s := Syndrome{Class: ECIRQ, PC: c.PC}
		target := c.routeIRQ()
		c.TakeException(target, s, c.PC)
		if target == arm64.EL2 || !c.EmulatedEL1 {
			return &Exit{TargetEL: target, Syndrome: s}, nil
		}
		return nil, nil
	}

	var in arm64.Insn
	cur := &c.cur
	if cur.blk != nil && c.PC == cur.expect {
		// Replay from the active block cursor.
		if _, ab := c.Translate(mem.VA(c.PC), mem.AccessExec, false); ab != nil {
			cur.blk = nil
			ab.Syndrome.Class = classifyAbort(mem.AccessExec, c.EL(), ab.Syndrome.Stage)
			return c.deliver(ab.Syndrome, c.PC), nil
		}
		in = cur.blk.insns[cur.idx]
		cur.idx++
		cur.expect += arm64.InsnBytes
		if cur.idx == len(cur.blk.insns) {
			cur.blk = nil
		}
		c.Stats.CodeHits++
	} else {
		cur.blk = nil
		if b := c.Decoded.enter(c, c.PC); b != nil {
			if _, ab := c.Translate(mem.VA(c.PC), mem.AccessExec, false); ab != nil {
				ab.Syndrome.Class = classifyAbort(mem.AccessExec, c.EL(), ab.Syndrome.Stage)
				return c.deliver(ab.Syndrome, c.PC), nil
			}
			if c.audit != nil {
				c.audit.noteEnter(c, b, c.PC)
			}
			in = b.insns[0]
			if len(b.insns) > 1 {
				*cur = blockCursor{blk: b, idx: 1, expect: c.PC + arm64.InsnBytes}
			}
			c.Stats.CodeHits++
		} else {
			word, ab := c.FetchInsn(mem.VA(c.PC))
			if ab != nil {
				ab.Syndrome.Class = classifyAbort(mem.AccessExec, c.EL(), ab.Syndrome.Stage)
				return c.deliver(ab.Syndrome, c.PC), nil
			}
			in = arm64.Decode(word)
			c.Stats.CodeMisses++
			c.Decoded.noteDecoded(c, c.PC, in)
		}
	}

	c.Insns++
	c.Charge(c.Prof.InsnCost)
	c.nextPC = c.PC + arm64.InsnBytes
	if c.audit != nil {
		c.audit.noteDispatch(c, c.PC)
	}
	exit := handlers[in.Op](c, in)
	if c.stepErr != nil {
		err := c.stepErr
		c.stepErr = nil
		return nil, err
	}
	if exit != nil {
		return exit, nil
	}
	c.PC = c.nextPC
	return nil, nil
}

func classifyAbort(acc mem.AccessType, from arm64.EL, stage int) ExcClass {
	lower := from == arm64.EL0 || stage == 2
	if acc == mem.AccessExec {
		if lower {
			return ECInsAbortLower
		}
		return ECInsAbortSame
	}
	if lower {
		return ECDataAbortLower
	}
	return ECDataAbortSame
}

func (c *VCPU) aluAddSub(in arm64.Insn, a, b uint64, sub bool) {
	var v uint64
	if sub {
		v = a - b
	} else {
		v = a + b
	}
	if !in.SF {
		v = uint64(uint32(v))
	}
	if in.SetFlags {
		c.setFlagsAddSub(a, b, v, sub, in.SF)
	}
	if in.Rd == arm64.XZR && !in.SetFlags {
		return
	}
	c.SetR(in.Rd, v)
}

func (c *VCPU) setNZ(v uint64) {
	c.PState &^= arm64.PStateN | arm64.PStateZ | arm64.PStateC | arm64.PStateV
	if v == 0 {
		c.PState |= arm64.PStateZ
	}
	if v>>63 != 0 {
		c.PState |= arm64.PStateN
	}
}

func (c *VCPU) setFlagsAddSub(a, b, v uint64, sub, sf bool) {
	c.PState &^= arm64.PStateN | arm64.PStateZ | arm64.PStateC | arm64.PStateV
	signBit := uint(63)
	if !sf {
		signBit = 31
		a, b, v = uint64(uint32(a)), uint64(uint32(b)), uint64(uint32(v))
	}
	if v == 0 {
		c.PState |= arm64.PStateZ
	}
	if v>>signBit&1 != 0 {
		c.PState |= arm64.PStateN
	}
	if sub {
		if a >= b {
			c.PState |= arm64.PStateC
		}
		if (a^b)>>signBit&1 != 0 && (a^v)>>signBit&1 != 0 {
			c.PState |= arm64.PStateV
		}
	} else {
		if v < a {
			c.PState |= arm64.PStateC
		}
		if (a^b)>>signBit&1 == 0 && (a^v)>>signBit&1 != 0 {
			c.PState |= arm64.PStateV
		}
	}
}

func (c *VCPU) condHolds(cond uint8) bool {
	n := c.PState&arm64.PStateN != 0
	z := c.PState&arm64.PStateZ != 0
	cf := c.PState&arm64.PStateC != 0
	v := c.PState&arm64.PStateV != 0
	switch cond {
	case arm64.CondEQ:
		return z
	case arm64.CondNE:
		return !z
	case arm64.CondCS:
		return cf
	case arm64.CondCC:
		return !cf
	case arm64.CondMI:
		return n
	case arm64.CondPL:
		return !n
	case arm64.CondVS:
		return v
	case arm64.CondVC:
		return !v
	case arm64.CondHI:
		return cf && !z
	case arm64.CondLS:
		return !cf || z
	case arm64.CondGE:
		return n == v
	case arm64.CondLT:
		return n != v
	case arm64.CondGT:
		return !z && n == v
	case arm64.CondLE:
		return z || n != v
	default:
		return true // AL/NV
	}
}

// execMSRImm handles MSR <pstatefield>, #imm: the PAN toggle that is
// LightZone's cheap domain switch, plus SPSel.
func (c *VCPU) execMSRImm(in arm64.Insn) *Exit {
	if c.EL() == arm64.EL0 {
		return c.deliverIn(Syndrome{Class: ECUnknown, PC: c.PC}, c.PC)
	}
	switch {
	case in.Sys.Op1 == arm64.PStateFieldPANOp1 && in.Sys.Op2 == arm64.PStateFieldPANOp2:
		c.Charge(c.Prof.PanToggleCost)
		c.SetPAN(in.Sys.CRm&1 != 0)
	case in.Sys.Op1 == arm64.PStateFieldSPSel1 && in.Sys.Op2 == arm64.PStateFieldSPSel2:
		if in.Sys.CRm&1 != 0 {
			c.PState |= arm64.PStateSPSel
		} else {
			c.PState &^= arm64.PStateSPSel
		}
	default:
		return c.deliverIn(Syndrome{Class: ECUnknown, PC: c.PC}, c.PC)
	}
	return nil
}

// execMSRReg handles MSR/MRS of named system registers, applying the
// hypervisor trap configuration (HCR_EL2.TVM/TRVM) that LightZone uses to
// lock stage-1 translation for PAN-mode processes (§5.1.2).
func (c *VCPU) execMSRReg(in arm64.Insn) *Exit {
	r, known := arm64.LookupSysReg(in.Sys)
	isRead := in.Op == arm64.OpMRS
	if !known {
		return c.deliverIn(Syndrome{Class: ECUnknown, PC: c.PC}, c.PC)
	}
	if r.MinEL() > c.EL() {
		return c.deliverIn(Syndrome{Class: ECUnknown, PC: c.PC}, c.PC)
	}
	if c.EL() == arm64.EL1 && arm64.IsStage1Reg(r) {
		hcr := c.sys[arm64.HCREL2]
		if !isRead && hcr&HCRTVM != 0 || isRead && hcr&HCRTRVM != 0 {
			s := Syndrome{
				Class: ECMSRTrap, SysEnc: in.Sys, IsRead: isRead,
				Rt: in.Rt, PC: c.PC,
			}
			return c.deliverIn(s, c.nextPC)
		}
	}
	if isRead {
		c.Charge(c.Prof.SysRegReadCost(r))
		c.SetR(in.Rt, c.sys[r])
		return nil
	}
	if r.ReadOnly() {
		return c.deliverIn(Syndrome{Class: ECUnknown, PC: c.PC}, c.PC)
	}
	c.Charge(c.Prof.SysRegWriteCost(r))
	if r == arm64.TTBR0EL1 && c.OnTTBR0Write != nil {
		c.OnTTBR0Write(c.sys[r], c.R(in.Rt))
	}
	c.sys[r] = c.R(in.Rt)
	return nil
}

// execSYS handles the SYS space (TLBI at CRn=8, AT at CRn=7), trapped to
// EL2 under HCR_EL2.TTLB/TACR as LightZone configures for kernel-mode
// processes ("TLB maintenance and system register access", §5.1.1).
func (c *VCPU) execSYS(in arm64.Insn) *Exit {
	if c.EL() == arm64.EL0 {
		return c.deliverIn(Syndrome{Class: ECUnknown, PC: c.PC}, c.PC)
	}
	hcr := c.sys[arm64.HCREL2]
	trapped := (in.Sys.CRn == 8 && hcr&HCRTTLB != 0) ||
		(in.Sys.CRn == 7 && hcr&HCRTACR != 0)
	if trapped {
		s := Syndrome{Class: ECMSRTrap, SysEnc: in.Sys, Rt: in.Rt, PC: c.PC}
		return c.deliverIn(s, c.nextPC)
	}
	switch in.Sys.CRn {
	case 8: // TLBI: invalidate this VM's entries
		c.Charge(c.Prof.DSBCost)
		c.TLB.InvalidateVMID(c.CurrentVMID())
	case 7: // AT: address translation into PAR_EL1
		pa, ab := c.Translate(mem.VA(c.R(in.Rt)), mem.AccessRead, false)
		if ab != nil {
			c.sys[arm64.PAREL1] = 1 // F bit: translation failed
		} else {
			c.sys[arm64.PAREL1] = uint64(pa) &^ uint64(mem.PageMask)
		}
	default:
		return c.deliverIn(Syndrome{Class: ECUnknown, PC: c.PC}, c.PC)
	}
	return nil
}
