package cpu

import (
	"errors"
	"fmt"

	"lightzone/internal/arm64"
	"lightzone/internal/mem"
)

// ErrInsnLimit is returned by Run when maxInsns is reached without an exit.
var ErrInsnLimit = errors.New("instruction limit reached")

// Run executes emulated code until an exception leaves the emulated world
// (to EL2, or to a functional EL1 kernel), or maxInsns instructions retire.
func (c *VCPU) Run(maxInsns int64) (Exit, error) {
	for i := int64(0); i < maxInsns; i++ {
		exit, err := c.Step()
		if err != nil {
			return Exit{}, err
		}
		if exit != nil {
			return *exit, nil
		}
	}
	return Exit{}, ErrInsnLimit
}

// deliver routes and takes a synchronous exception; it returns a non-nil
// Exit when the exception leaves the emulated world.
func (c *VCPU) deliver(s Syndrome, preferReturn uint64) *Exit {
	target := c.routeSyncException(s)
	c.TakeException(target, s, preferReturn)
	if target == arm64.EL2 || !c.EmulatedEL1 {
		return &Exit{TargetEL: target, Syndrome: s}
	}
	return nil
}

// Step executes one instruction. It returns a non-nil Exit when control
// leaves the emulated world.
func (c *VCPU) Step() (*Exit, error) {
	if c.EL() == arm64.EL2 {
		return nil, fmt.Errorf("interpreter invoked at EL2 (pc=%#x)", c.PC)
	}
	if c.PendingIRQ && c.PState&arm64.PStateI == 0 {
		c.PendingIRQ = false
		s := Syndrome{Class: ECIRQ, PC: c.PC}
		target := c.routeIRQ()
		c.TakeException(target, s, c.PC)
		if target == arm64.EL2 || !c.EmulatedEL1 {
			return &Exit{TargetEL: target, Syndrome: s}, nil
		}
		return nil, nil
	}

	word, ab := c.FetchInsn(mem.VA(c.PC))
	if ab != nil {
		ab.Syndrome.Class = classifyAbort(mem.AccessExec, c.EL(), ab.Syndrome.Stage)
		return c.deliver(ab.Syndrome, c.PC), nil
	}

	in := arm64.Decode(word)
	c.Insns++
	c.Charge(c.Prof.InsnCost)
	next := c.PC + arm64.InsnBytes

	switch in.Op {
	case arm64.OpNOP:
	case arm64.OpISB:
		c.Charge(c.Prof.ISBCost)
	case arm64.OpDSB, arm64.OpDMB:
		c.Charge(c.Prof.DSBCost)

	case arm64.OpMOVZ:
		c.SetR(in.Rd, uint64(in.Imm)<<in.ShiftAmt)
	case arm64.OpMOVK:
		maskv := uint64(0xFFFF) << in.ShiftAmt
		c.SetR(in.Rd, c.R(in.Rd)&^maskv|uint64(in.Imm)<<in.ShiftAmt)
	case arm64.OpMOVN:
		c.SetR(in.Rd, ^(uint64(in.Imm) << in.ShiftAmt))
	case arm64.OpADR:
		c.SetR(in.Rd, c.PC+uint64(in.Imm))

	case arm64.OpAddImm:
		c.aluAddSub(in, c.R(in.Rn), uint64(in.Imm), false)
	case arm64.OpSubImm:
		c.aluAddSub(in, c.R(in.Rn), uint64(in.Imm), true)
	case arm64.OpAddReg:
		c.aluAddSub(in, c.R(in.Rn), c.R(in.Rm)<<in.ShiftAmt, false)
	case arm64.OpSubReg:
		c.aluAddSub(in, c.R(in.Rn), c.R(in.Rm)<<in.ShiftAmt, true)
	case arm64.OpAndReg:
		v := c.R(in.Rn) & (c.R(in.Rm) << in.ShiftAmt)
		c.SetR(in.Rd, v)
		if in.SetFlags {
			c.setNZ(v)
		}
	case arm64.OpOrrReg:
		c.SetR(in.Rd, c.R(in.Rn)|c.R(in.Rm)<<in.ShiftAmt)
	case arm64.OpEorReg:
		c.SetR(in.Rd, c.R(in.Rn)^c.R(in.Rm)<<in.ShiftAmt)
	case arm64.OpLSLV:
		c.SetR(in.Rd, c.R(in.Rn)<<(c.R(in.Rm)&63))
	case arm64.OpLSRV:
		c.SetR(in.Rd, c.R(in.Rn)>>(c.R(in.Rm)&63))
	case arm64.OpMAdd:
		c.SetR(in.Rd, c.R(in.Ra)+c.R(in.Rn)*c.R(in.Rm))
	case arm64.OpUDiv:
		if d := c.R(in.Rm); d == 0 {
			c.SetR(in.Rd, 0)
		} else {
			c.SetR(in.Rd, c.R(in.Rn)/d)
		}

	case arm64.OpB:
		c.Charge(c.Prof.BranchCost)
		next = c.PC + uint64(in.Imm)
	case arm64.OpBL:
		c.Charge(c.Prof.BranchCost)
		c.SetR(30, next)
		next = c.PC + uint64(in.Imm)
	case arm64.OpBCond:
		if c.condHolds(in.Cond) {
			c.Charge(c.Prof.BranchCost)
			next = c.PC + uint64(in.Imm)
		}
	case arm64.OpCBZ:
		if c.R(in.Rt) == 0 {
			c.Charge(c.Prof.BranchCost)
			next = c.PC + uint64(in.Imm)
		}
	case arm64.OpCBNZ:
		if c.R(in.Rt) != 0 {
			c.Charge(c.Prof.BranchCost)
			next = c.PC + uint64(in.Imm)
		}
	case arm64.OpBR:
		c.Charge(c.Prof.BranchCost)
		next = c.R(in.Rn)
	case arm64.OpBLR:
		c.Charge(c.Prof.BranchCost)
		c.SetR(30, next)
		next = c.R(in.Rn)
	case arm64.OpRET:
		c.Charge(c.Prof.BranchCost)
		next = c.R(in.Rn)

	case arm64.OpUBFM:
		// LSR when imms == 63; LSL when imms == immr-1 (mod 64);
		// general bitfield extract otherwise.
		immr := uint64(in.ShiftAmt)
		imms := uint64(in.Imm)
		v := c.R(in.Rn)
		if imms == 63 {
			c.SetR(in.Rd, v>>immr)
		} else if imms+1 == immr%64 || (immr == 0 && imms == 63) {
			c.SetR(in.Rd, v<<((64-immr)%64))
		} else if imms < immr {
			c.SetR(in.Rd, v<<(64-immr)%64) // LSL form
		} else {
			width := imms - immr + 1
			c.SetR(in.Rd, v>>immr&(1<<width-1))
		}

	case arm64.OpCSel:
		if c.condHolds(in.Cond) {
			c.SetR(in.Rd, c.R(in.Rn))
		} else {
			c.SetR(in.Rd, c.R(in.Rm))
		}
	case arm64.OpCSInc:
		if c.condHolds(in.Cond) {
			c.SetR(in.Rd, c.R(in.Rn))
		} else {
			c.SetR(in.Rd, c.R(in.Rm)+1)
		}

	case arm64.OpLdp:
		addr := mem.VA(c.baseReg(in.Rn) + uint64(in.Imm))
		v1, ab := c.MemRead(addr, 8, false)
		if ab != nil {
			ab.Syndrome.Class = classifyAbort(mem.AccessRead, c.EL(), ab.Syndrome.Stage)
			return c.deliver(ab.Syndrome, c.PC), nil
		}
		v2, ab := c.MemRead(addr+8, 8, false)
		if ab != nil {
			ab.Syndrome.Class = classifyAbort(mem.AccessRead, c.EL(), ab.Syndrome.Stage)
			return c.deliver(ab.Syndrome, c.PC), nil
		}
		c.SetR(in.Rt, v1)
		c.SetR(in.Rt2, v2)
	case arm64.OpStp:
		addr := mem.VA(c.baseReg(in.Rn) + uint64(in.Imm))
		if ab := c.MemWrite(addr, 8, c.R(in.Rt), false); ab != nil {
			ab.Syndrome.Class = classifyAbort(mem.AccessWrite, c.EL(), ab.Syndrome.Stage)
			return c.deliver(ab.Syndrome, c.PC), nil
		}
		if ab := c.MemWrite(addr+8, 8, c.R(in.Rt2), false); ab != nil {
			ab.Syndrome.Class = classifyAbort(mem.AccessWrite, c.EL(), ab.Syndrome.Stage)
			return c.deliver(ab.Syndrome, c.PC), nil
		}
	case arm64.OpLdrReg:
		addr := mem.VA(c.baseReg(in.Rn) + c.R(in.Rm))
		v, ab := c.MemRead(addr, 1<<in.Size, false)
		if ab != nil {
			ab.Syndrome.Class = classifyAbort(mem.AccessRead, c.EL(), ab.Syndrome.Stage)
			return c.deliver(ab.Syndrome, c.PC), nil
		}
		c.SetR(in.Rt, v)
	case arm64.OpStrReg:
		addr := mem.VA(c.baseReg(in.Rn) + c.R(in.Rm))
		if ab := c.MemWrite(addr, 1<<in.Size, c.R(in.Rt), false); ab != nil {
			ab.Syndrome.Class = classifyAbort(mem.AccessWrite, c.EL(), ab.Syndrome.Stage)
			return c.deliver(ab.Syndrome, c.PC), nil
		}

	case arm64.OpLdrImm, arm64.OpLdur, arm64.OpLdtr:
		addr := mem.VA(c.baseReg(in.Rn) + uint64(in.Imm))
		v, ab := c.MemRead(addr, 1<<in.Size, in.Op == arm64.OpLdtr)
		if ab != nil {
			ab.Syndrome.Class = classifyAbort(mem.AccessRead, c.EL(), ab.Syndrome.Stage)
			return c.deliver(ab.Syndrome, c.PC), nil
		}
		c.SetR(in.Rt, v)
	case arm64.OpStrImm, arm64.OpStur, arm64.OpSttr:
		addr := mem.VA(c.baseReg(in.Rn) + uint64(in.Imm))
		if ab := c.MemWrite(addr, 1<<in.Size, c.R(in.Rt), in.Op == arm64.OpSttr); ab != nil {
			ab.Syndrome.Class = classifyAbort(mem.AccessWrite, c.EL(), ab.Syndrome.Stage)
			return c.deliver(ab.Syndrome, c.PC), nil
		}

	case arm64.OpSVC:
		return c.deliver(Syndrome{Class: ECSVC, Imm: uint16(in.Imm), PC: c.PC}, next), nil
	case arm64.OpHVC:
		if c.EL() == arm64.EL0 {
			return c.deliver(Syndrome{Class: ECUnknown, PC: c.PC}, c.PC), nil
		}
		return c.deliver(Syndrome{Class: ECHVC, Imm: uint16(in.Imm), PC: c.PC}, next), nil
	case arm64.OpSMC:
		return c.deliver(Syndrome{Class: ECSMC, Imm: uint16(in.Imm), PC: c.PC}, c.PC), nil
	case arm64.OpERET:
		if c.EL() != arm64.EL1 {
			return c.deliver(Syndrome{Class: ECUnknown, PC: c.PC}, c.PC), nil
		}
		if err := c.ERET(); err != nil {
			return nil, err
		}
		return nil, nil

	case arm64.OpMSRImm:
		if exit := c.execMSRImm(in); exit != nil {
			return exit, nil
		}
	case arm64.OpMSRReg, arm64.OpMRS:
		if exit := c.execMSRReg(in, next); exit != nil {
			return exit, nil
		}
	case arm64.OpSYS, arm64.OpSYSL:
		if exit := c.execSYS(in, next); exit != nil {
			return exit, nil
		}

	default:
		return c.deliver(Syndrome{Class: ECUnknown, PC: c.PC}, c.PC), nil
	}

	c.PC = next
	return nil, nil
}

func classifyAbort(acc mem.AccessType, from arm64.EL, stage int) ExcClass {
	lower := from == arm64.EL0 || stage == 2
	if acc == mem.AccessExec {
		if lower {
			return ECInsAbortLower
		}
		return ECInsAbortSame
	}
	if lower {
		return ECDataAbortLower
	}
	return ECDataAbortSame
}

func (c *VCPU) aluAddSub(in arm64.Insn, a, b uint64, sub bool) {
	var v uint64
	if sub {
		v = a - b
	} else {
		v = a + b
	}
	if !in.SF {
		v = uint64(uint32(v))
	}
	if in.SetFlags {
		c.setFlagsAddSub(a, b, v, sub, in.SF)
	}
	if in.Rd == arm64.XZR && !in.SetFlags {
		return
	}
	c.SetR(in.Rd, v)
}

func (c *VCPU) setNZ(v uint64) {
	c.PState &^= arm64.PStateN | arm64.PStateZ | arm64.PStateC | arm64.PStateV
	if v == 0 {
		c.PState |= arm64.PStateZ
	}
	if v>>63 != 0 {
		c.PState |= arm64.PStateN
	}
}

func (c *VCPU) setFlagsAddSub(a, b, v uint64, sub, sf bool) {
	c.PState &^= arm64.PStateN | arm64.PStateZ | arm64.PStateC | arm64.PStateV
	signBit := uint(63)
	if !sf {
		signBit = 31
		a, b, v = uint64(uint32(a)), uint64(uint32(b)), uint64(uint32(v))
	}
	if v == 0 {
		c.PState |= arm64.PStateZ
	}
	if v>>signBit&1 != 0 {
		c.PState |= arm64.PStateN
	}
	if sub {
		if a >= b {
			c.PState |= arm64.PStateC
		}
		if (a^b)>>signBit&1 != 0 && (a^v)>>signBit&1 != 0 {
			c.PState |= arm64.PStateV
		}
	} else {
		if v < a {
			c.PState |= arm64.PStateC
		}
		if (a^b)>>signBit&1 == 0 && (a^v)>>signBit&1 != 0 {
			c.PState |= arm64.PStateV
		}
	}
}

func (c *VCPU) condHolds(cond uint8) bool {
	n := c.PState&arm64.PStateN != 0
	z := c.PState&arm64.PStateZ != 0
	cf := c.PState&arm64.PStateC != 0
	v := c.PState&arm64.PStateV != 0
	switch cond {
	case arm64.CondEQ:
		return z
	case arm64.CondNE:
		return !z
	case arm64.CondCS:
		return cf
	case arm64.CondCC:
		return !cf
	case arm64.CondMI:
		return n
	case arm64.CondPL:
		return !n
	case arm64.CondVS:
		return v
	case arm64.CondVC:
		return !v
	case arm64.CondHI:
		return cf && !z
	case arm64.CondLS:
		return !cf || z
	case arm64.CondGE:
		return n == v
	case arm64.CondLT:
		return n != v
	case arm64.CondGT:
		return !z && n == v
	case arm64.CondLE:
		return z || n != v
	default:
		return true // AL/NV
	}
}

// execMSRImm handles MSR <pstatefield>, #imm: the PAN toggle that is
// LightZone's cheap domain switch, plus SPSel.
func (c *VCPU) execMSRImm(in arm64.Insn) *Exit {
	if c.EL() == arm64.EL0 {
		return c.deliver(Syndrome{Class: ECUnknown, PC: c.PC}, c.PC)
	}
	switch {
	case in.Sys.Op1 == arm64.PStateFieldPANOp1 && in.Sys.Op2 == arm64.PStateFieldPANOp2:
		c.Charge(c.Prof.PanToggleCost)
		c.SetPAN(in.Sys.CRm&1 != 0)
	case in.Sys.Op1 == arm64.PStateFieldSPSel1 && in.Sys.Op2 == arm64.PStateFieldSPSel2:
		if in.Sys.CRm&1 != 0 {
			c.PState |= arm64.PStateSPSel
		} else {
			c.PState &^= arm64.PStateSPSel
		}
	default:
		return c.deliver(Syndrome{Class: ECUnknown, PC: c.PC}, c.PC)
	}
	return nil
}

// execMSRReg handles MSR/MRS of named system registers, applying the
// hypervisor trap configuration (HCR_EL2.TVM/TRVM) that LightZone uses to
// lock stage-1 translation for PAN-mode processes (§5.1.2).
func (c *VCPU) execMSRReg(in arm64.Insn, next uint64) *Exit {
	r, known := arm64.LookupSysReg(in.Sys)
	isRead := in.Op == arm64.OpMRS
	if !known {
		return c.deliver(Syndrome{Class: ECUnknown, PC: c.PC}, c.PC)
	}
	if r.MinEL() > c.EL() {
		return c.deliver(Syndrome{Class: ECUnknown, PC: c.PC}, c.PC)
	}
	if c.EL() == arm64.EL1 && arm64.IsStage1Reg(r) {
		hcr := c.sys[arm64.HCREL2]
		if !isRead && hcr&HCRTVM != 0 || isRead && hcr&HCRTRVM != 0 {
			s := Syndrome{
				Class: ECMSRTrap, SysEnc: in.Sys, IsRead: isRead,
				Rt: in.Rt, PC: c.PC,
			}
			return c.deliver(s, next)
		}
	}
	if isRead {
		c.Charge(c.Prof.SysRegReadCost(r))
		c.SetR(in.Rt, c.sys[r])
		return nil
	}
	if r.ReadOnly() {
		return c.deliver(Syndrome{Class: ECUnknown, PC: c.PC}, c.PC)
	}
	c.Charge(c.Prof.SysRegWriteCost(r))
	if r == arm64.TTBR0EL1 && c.OnTTBR0Write != nil {
		c.OnTTBR0Write(c.sys[r], c.R(in.Rt))
	}
	c.sys[r] = c.R(in.Rt)
	return nil
}

// execSYS handles the SYS space (TLBI at CRn=8, AT at CRn=7), trapped to
// EL2 under HCR_EL2.TTLB/TACR as LightZone configures for kernel-mode
// processes ("TLB maintenance and system register access", §5.1.1).
func (c *VCPU) execSYS(in arm64.Insn, next uint64) *Exit {
	if c.EL() == arm64.EL0 {
		return c.deliver(Syndrome{Class: ECUnknown, PC: c.PC}, c.PC)
	}
	hcr := c.sys[arm64.HCREL2]
	trapped := (in.Sys.CRn == 8 && hcr&HCRTTLB != 0) ||
		(in.Sys.CRn == 7 && hcr&HCRTACR != 0)
	if trapped {
		s := Syndrome{Class: ECMSRTrap, SysEnc: in.Sys, Rt: in.Rt, PC: c.PC}
		return c.deliver(s, next)
	}
	switch in.Sys.CRn {
	case 8: // TLBI: invalidate this VM's entries
		c.Charge(c.Prof.DSBCost)
		c.TLB.InvalidateVMID(c.CurrentVMID())
	case 7: // AT: address translation into PAR_EL1
		pa, ab := c.Translate(mem.VA(c.R(in.Rt)), mem.AccessRead, false)
		if ab != nil {
			c.sys[arm64.PAREL1] = 1 // F bit: translation failed
		} else {
			c.sys[arm64.PAREL1] = uint64(pa) &^ uint64(mem.PageMask)
		}
	default:
		return c.deliver(Syndrome{Class: ECUnknown, PC: c.PC}, c.PC)
	}
	return nil
}
