// Package cpu implements the simulated ARM64 vCPU: register file, PSTATE,
// the A64-subset interpreter, two-stage address translation with TLB and
// cycle charging, exception entry/return across EL0-EL2, and the
// hypervisor-configurable trap rules (HCR_EL2) that LightZone uses to
// confine kernel-mode processes.
//
// Privileged software at EL2 (host kernels, Lowvisor) and functional guest
// kernels are implemented as Go handlers in the kernel/hyp packages; the
// interpreter runs EL0 and EL1 code (applications, LightZone processes,
// call gates, trap stubs) and exits to those handlers on exceptions, the
// same way a hardware CPU exits to a hypervisor.
package cpu

// HCR_EL2 control bits (architectural positions).
const (
	HCRVM    uint64 = 1 << 0  // stage-2 translation enable
	HCRFMO   uint64 = 1 << 3  // route FIQ to EL2
	HCRIMO   uint64 = 1 << 4  // route IRQ to EL2
	HCRTWI   uint64 = 1 << 13 // trap WFI
	HCRTSC   uint64 = 1 << 19 // trap SMC
	HCRTIDCP uint64 = 1 << 20 // trap implementation-defined sysregs
	HCRTACR  uint64 = 1 << 21 // trap auxiliary control registers
	HCRTTLB  uint64 = 1 << 25 // trap TLB maintenance
	HCRTVM   uint64 = 1 << 26 // trap EL1 writes to stage-1 control regs
	HCRTGE   uint64 = 1 << 27 // trap general exceptions (VHE host EL0)
	HCRTRVM  uint64 = 1 << 30 // trap EL1 reads of stage-1 control regs
	HCRE2H   uint64 = 1 << 34 // VHE: EL2 hosts the OS kernel
)

// SCTLR_EL1 bits.
const (
	SCTLRM   uint64 = 1 << 0  // MMU enable
	SCTLRWXN uint64 = 1 << 19 // writable implies XN
)

// TTBR layout: bits 47:1 hold the table base, bits 63:48 the ASID
// (TTBR_EL1.ASID with TCR.AS==1).
const (
	TTBRBaddrMask uint64 = 0x0000_FFFF_FFFF_FFFE
	TTBRASIDShift        = 48
)

// MakeTTBR composes a TTBR value from a table root and ASID.
func MakeTTBR(root uint64, asid uint16) uint64 {
	return root&TTBRBaddrMask | uint64(asid)<<TTBRASIDShift
}

// TTBRRoot extracts the table base address.
func TTBRRoot(ttbr uint64) uint64 { return ttbr & TTBRBaddrMask }

// TTBRASID extracts the ASID field.
func TTBRASID(ttbr uint64) uint16 { return uint16(ttbr >> TTBRASIDShift) }

// VTTBR layout: bits 47:1 base, bits 63:48 VMID.
const VTTBRVMIDShift = 48

// MakeVTTBR composes a VTTBR_EL2 value.
func MakeVTTBR(root uint64, vmid uint16) uint64 {
	return root&TTBRBaddrMask | uint64(vmid)<<VTTBRVMIDShift
}

// VTTBRRoot extracts the stage-2 table base.
func VTTBRRoot(v uint64) uint64 { return v & TTBRBaddrMask }

// VTTBRVMID extracts the VMID.
func VTTBRVMID(v uint64) uint16 { return uint16(v >> VTTBRVMIDShift) }
