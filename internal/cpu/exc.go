package cpu

import (
	"fmt"

	"lightzone/internal/arm64"
	"lightzone/internal/mem"
)

// ExcClass classifies exceptions (modelled subset of the ESR.EC space,
// using the architectural EC values).
type ExcClass uint8

const (
	ECUnknown        ExcClass = 0x00 // undefined instruction
	ECWFx            ExcClass = 0x01
	ECSVC            ExcClass = 0x15
	ECHVC            ExcClass = 0x16
	ECSMC            ExcClass = 0x17
	ECMSRTrap        ExcClass = 0x18 // trapped MSR/MRS/SYS
	ECInsAbortLower  ExcClass = 0x20
	ECInsAbortSame   ExcClass = 0x21
	ECDataAbortLower ExcClass = 0x24
	ECDataAbortSame  ExcClass = 0x25
	ECIRQ            ExcClass = 0x3F // not an ESR EC; internal marker
)

func (e ExcClass) String() string {
	switch e {
	case ECUnknown:
		return "undefined"
	case ECWFx:
		return "wfx"
	case ECSVC:
		return "svc"
	case ECHVC:
		return "hvc"
	case ECSMC:
		return "smc"
	case ECMSRTrap:
		return "msr-trap"
	case ECInsAbortLower, ECInsAbortSame:
		return "instruction-abort"
	case ECDataAbortLower, ECDataAbortSame:
		return "data-abort"
	case ECIRQ:
		return "irq"
	default:
		return fmt.Sprintf("ec(%#x)", uint8(e))
	}
}

// Syndrome carries decoded exception information for functional handlers,
// mirroring what ESR/FAR/HPFAR encode in hardware.
type Syndrome struct {
	Class ExcClass
	Imm   uint16 // SVC/HVC immediate
	// Abort details.
	VA     mem.VA
	IPA    mem.IPA
	Access mem.AccessType
	Kind   mem.FaultKind
	Stage  int
	// Trapped system access details.
	SysEnc arm64.SysRegEnc
	IsRead bool
	Rt     uint8
	// PC of the faulting/trapping instruction.
	PC uint64
}

// packESR builds an architectural-looking ESR value: EC in bits 31:26, IL
// set, and an ISS carrying the SVC/HVC immediate or, for aborts, the fault
// kind/access/stage so that forwarded exceptions can be reconstructed from
// the banked ESR alone (as the LightZone kernel module does when the trap
// stub forwards an EL1 exception, §5.1.3).
func packESR(s Syndrome) uint64 {
	iss := uint64(s.Imm)
	switch s.Class {
	case ECDataAbortLower, ECDataAbortSame, ECInsAbortLower, ECInsAbortSame:
		iss = uint64(s.Kind)&7 | uint64(s.Access)&7<<3
		if s.Stage == 2 {
			iss |= 1 << 6
		}
	}
	return uint64(s.Class)<<26 | 1<<25 | iss
}

// UnpackESR reconstructs a Syndrome from a banked ESR/FAR register pair.
func UnpackESR(esr, far uint64) Syndrome {
	s := Syndrome{Class: ExcClass(esr >> 26 & 0x3F), VA: mem.VA(far)}
	switch s.Class {
	case ECSVC, ECHVC, ECSMC:
		s.Imm = uint16(esr)
	case ECDataAbortLower, ECDataAbortSame, ECInsAbortLower, ECInsAbortSame:
		s.Kind = mem.FaultKind(esr & 7)
		s.Access = mem.AccessType(esr >> 3 & 7)
		s.Stage = 1
		if esr>>6&1 != 0 {
			s.Stage = 2
		}
	}
	return s
}

// Vector table offsets (A64 layout: current-EL-SPx sync at 0x200,
// lower-EL-A64 sync at 0x400, IRQ at +0x80 within each block).
const (
	VecCurSync   = 0x200
	VecCurIRQ    = 0x280
	VecLowerSync = 0x400
	VecLowerIRQ  = 0x480
)

// Exit reports why the interpreter stopped.
type Exit struct {
	// TargetEL is the exception level the exception was routed to.
	TargetEL arm64.EL
	Syndrome Syndrome
}

// TakeException performs architectural exception entry to target: banks
// PC/PSTATE into ELR/SPSR, records the syndrome into ESR/FAR, raises the
// EL, masks interrupts, and charges the platform's exception-entry cost.
// preferReturn is the PC to bank (the faulting instruction for aborts, the
// next instruction for SVC/HVC).
func (c *VCPU) TakeException(target arm64.EL, s Syndrome, preferReturn uint64) {
	fromLower := c.EL() < target
	c.Charge(c.Prof.ExcEntryTo[target])
	c.LastSyndrome = s

	switch target {
	case arm64.EL1:
		c.sys[arm64.ELREL1] = preferReturn
		c.sys[arm64.SPSREL1] = c.PState
		c.sys[arm64.ESREL1] = packESR(s)
		c.sys[arm64.FAREL1] = uint64(s.VA)
		base := c.sys[arm64.VBAREL1]
		if s.Class == ECIRQ {
			if fromLower {
				c.PC = base + VecLowerIRQ
			} else {
				c.PC = base + VecCurIRQ
			}
		} else if fromLower {
			c.PC = base + VecLowerSync
		} else {
			c.PC = base + VecCurSync
		}
	case arm64.EL2:
		c.sys[arm64.ELREL2] = preferReturn
		c.sys[arm64.SPSREL2] = c.PState
		c.sys[arm64.ESREL2] = packESR(s)
		c.sys[arm64.FAREL2] = uint64(s.VA)
		c.sys[arm64.HPFAREL2] = uint64(s.IPA) >> 8 << 8
		c.PC = c.sys[arm64.VBAREL2] + VecLowerSync // EL2 software is functional
	}
	c.SetEL(target)
	c.PState |= arm64.PStateI | arm64.PStateF
}

// ERET performs exception return from the current EL, charging the
// platform's ERET cost. Returns an error at EL0.
func (c *VCPU) ERET() error {
	from := c.EL()
	if from == arm64.EL0 {
		return fmt.Errorf("eret at EL0")
	}
	c.Charge(c.Prof.ERETFrom[from])
	var elr, spsr uint64
	if from == arm64.EL2 {
		elr, spsr = c.sys[arm64.ELREL2], c.sys[arm64.SPSREL2]
	} else {
		elr, spsr = c.sys[arm64.ELREL1], c.sys[arm64.SPSREL1]
	}
	if arm64.ELFromPState(spsr) > from {
		return fmt.Errorf("eret to higher EL (spsr=%#x from %v)", spsr, from)
	}
	c.PState = spsr
	c.PC = elr
	return nil
}

// routeSyncException decides where a synchronous exception raised at the
// current EL is taken, per the modelled HCR_EL2 routing rules:
//   - exceptions from EL2 are impossible here (EL2 is functional),
//   - HVC and stage-2 aborts always target EL2,
//   - with HCR_EL2.TGE set (VHE host processes), EL0 exceptions target EL2,
//   - otherwise EL0/EL1 exceptions target EL1.
func (c *VCPU) routeSyncException(s Syndrome) arm64.EL {
	if s.Class == ECHVC || s.Class == ECSMC {
		return arm64.EL2
	}
	if s.Stage == 2 {
		return arm64.EL2
	}
	if s.Class == ECMSRTrap {
		return arm64.EL2 // only hypervisor-configured traps are modelled
	}
	if c.sys[arm64.HCREL2]&HCRTGE != 0 {
		return arm64.EL2
	}
	return arm64.EL1
}

// routeIRQ decides interrupt routing (HCR_EL2.IMO / TGE).
func (c *VCPU) routeIRQ() arm64.EL {
	if c.sys[arm64.HCREL2]&(HCRIMO|HCRTGE) != 0 {
		return arm64.EL2
	}
	return arm64.EL1
}
