package cpu

import (
	"strings"
	"testing"

	"lightzone/internal/arm64"
	"lightzone/internal/mem"
)

// memLoop emits a hot loop with interior data traffic: store the counter,
// load it back, accumulate, n iterations, then HVC to stop.
func memLoop(n uint64) *arm64.Asm {
	a := arm64.NewAsm()
	a.MovImm(0, 0)
	a.MovImm(1, n)
	a.MovImm(2, uint64(dataVA))
	a.Label("loop")
	a.Emit(arm64.STRImm(1, 2, 0, 3))
	a.Emit(arm64.LDRImm(3, 2, 0, 3))
	a.Emit(arm64.ADDReg(0, 0, 3))
	a.Emit(arm64.SUBSImm(1, 1, 1))
	a.BCond(arm64.CondNE, "loop")
	a.Emit(arm64.HVC(0))
	return a
}

// TestProofAuditCleanLoop replays a hot loop under the audit oracle: spans
// must open and finish, and a well-formed program must never diverge from
// its block proofs.
func TestProofAuditCleanLoop(t *testing.T) {
	ResetProofAudit()
	e := newEnv(t)
	e.c.SetProofAudit(true)
	e.load(t, memLoop(64))
	e.run(t, 10000)
	if e.c.R(0) != 64*65/2 {
		t.Errorf("sum = %d, want %d", e.c.R(0), 64*65/2)
	}
	st := ReadProofAudit()
	if st.Spans == 0 || st.Finished == 0 {
		t.Errorf("audit saw no completed spans: %+v", st)
	}
	if st.Divergences != 0 {
		t.Errorf("clean loop diverged from its proofs: %+v", st)
	}
}

// TestProofAuditObservationOnly requires bit-identical emulated cycles,
// instruction counts and results with the oracle on and off — auditing may
// never perturb the measured machine.
func TestProofAuditObservationOnly(t *testing.T) {
	run := func(audit bool) (int64, int64, uint64) {
		ResetProofAudit()
		e := newEnv(t)
		e.c.SetProofAudit(audit)
		e.load(t, memLoop(100))
		e.run(t, 10000)
		return e.c.Cycles, e.c.Insns, e.c.R(0)
	}
	onCycles, onInsns, onSum := run(true)
	offCycles, offInsns, offSum := run(false)
	if onCycles != offCycles || onInsns != offInsns || onSum != offSum {
		t.Errorf("audit perturbed execution: on (%d cycles, %d insns, sum %d), off (%d, %d, %d)",
			onCycles, onInsns, onSum, offCycles, offInsns, offSum)
	}
}

// TestProofAuditDetectsClaimMismatch drives the span state machine directly
// with an access that contradicts the block's proof (wrong width) and
// requires a recorded divergence — the oracle must be able to fail.
func TestProofAuditDetectsClaimMismatch(t *testing.T) {
	ResetProofAudit()
	e := newEnv(t)
	a := arm64.NewAsm()
	a.Emit(arm64.LDRImm(3, 2, 0, 3)) // proof claims one 8-byte read
	a.Emit(arm64.RET(30))
	words, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	ins := make([]arm64.Insn, len(words))
	for i, w := range words {
		ins[i] = arm64.Decode(w)
	}
	b := &dblock{insns: ins}
	au := &proofAudit{}
	const base = 0x4000
	au.noteEnter(e.c, b, base)
	if !au.active {
		t.Fatal("span did not open")
	}
	e.c.cur = blockCursor{blk: b, idx: 1, expect: base + arm64.InsnBytes}
	au.noteDispatch(e.c, base)
	au.noteAccess(false, mem.VA(dataVA), 4) // width contradicts the claim
	au.noteDispatch(e.c, base+arm64.InsnBytes)
	st := ReadProofAudit()
	if st.Divergences != 1 {
		t.Fatalf("divergences = %d, want 1 (%+v)", st.Divergences, st)
	}
	if len(st.Details) == 0 || !strings.Contains(st.Details[0], "claim") {
		t.Errorf("divergence detail missing or unspecific: %q", st.Details)
	}
	ResetProofAudit()
	if st := ReadProofAudit(); st.Spans != 0 || st.Divergences != 0 || len(st.Details) != 0 {
		t.Errorf("reset left state behind: %+v", st)
	}
}

// TestProofAuditAbandonsOnDiscontinuity opens a span and dispatches off the
// expected path; the span must abandon without claiming a divergence.
func TestProofAuditAbandonsOnDiscontinuity(t *testing.T) {
	ResetProofAudit()
	e := newEnv(t)
	a := arm64.NewAsm()
	a.Emit(arm64.ADDReg(0, 0, 1))
	a.Emit(arm64.RET(30))
	words, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	ins := make([]arm64.Insn, len(words))
	for i, w := range words {
		ins[i] = arm64.Decode(w)
	}
	b := &dblock{insns: ins}
	au := &proofAudit{}
	au.noteEnter(e.c, b, 0x4000)
	au.noteDispatch(e.c, 0x9999000) // exception vector, not the block
	st := ReadProofAudit()
	if au.active {
		t.Error("span survived a control discontinuity")
	}
	if st.Abandoned != 1 || st.Divergences != 0 {
		t.Errorf("abandoned = %d, divergences = %d, want 1, 0", st.Abandoned, st.Divergences)
	}
}
