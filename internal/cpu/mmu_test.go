package cpu

import (
	"testing"

	"lightzone/internal/arm64"
	"lightzone/internal/mem"
)

func TestTranslateNonCanonicalFaults(t *testing.T) {
	e := newEnv(t)
	_, ab := e.c.Translate(mem.VA(0x0010_0000_0000_0000), mem.AccessRead, false)
	if ab == nil || ab.Syndrome.Kind != mem.FaultAddressSize {
		t.Fatalf("abort = %+v", ab)
	}
}

func TestTranslateMMUOffIsFlat(t *testing.T) {
	e := newEnv(t)
	e.c.SetSys(arm64.SCTLREL1, 0)
	pa, ab := e.c.Translate(0x12345, mem.AccessRead, false)
	if ab != nil || pa != 0x12345 {
		t.Fatalf("pa=%v ab=%v", pa, ab)
	}
}

// A TLB hit must still honour the *current* PAN state: the permission
// check is replayed on cached entries (this is what makes PAN-based domain
// switching sound without TLB maintenance).
func TestTLBHitReplaysPANCheck(t *testing.T) {
	e := newEnv(t)
	// Warm the TLB with PAN clear.
	e.c.SetPAN(false)
	if _, ab := e.c.Translate(userVA, mem.AccessRead, false); ab != nil {
		t.Fatalf("warm: %v", ab)
	}
	if e.c.TLB.Misses == 0 {
		t.Fatal("expected a compulsory miss")
	}
	// Enable PAN: the cached entry must now deny the access.
	e.c.SetPAN(true)
	_, ab := e.c.Translate(userVA, mem.AccessRead, false)
	if ab == nil || ab.Syndrome.Kind != mem.FaultPermission {
		t.Fatalf("PAN not enforced on TLB hit: %+v", ab)
	}
	// And LDTR (unprivileged override) must still pass.
	if _, ab := e.c.Translate(userVA, mem.AccessRead, true); ab != nil {
		t.Fatalf("unpriv override blocked: %v", ab)
	}
}

func TestTranslateChargesWalkOnceThenHits(t *testing.T) {
	e := newEnv(t)
	before := e.c.Cycles
	if _, ab := e.c.Translate(dataVA, mem.AccessRead, false); ab != nil {
		t.Fatal(ab)
	}
	missCost := e.c.Cycles - before
	if missCost < 4*e.c.Prof.TLBWalkPerLevel {
		t.Errorf("miss cost %d below 4-level walk", missCost)
	}
	before = e.c.Cycles
	if _, ab := e.c.Translate(dataVA, mem.AccessRead, false); ab != nil {
		t.Fatal(ab)
	}
	if hit := e.c.Cycles - before; hit != 0 {
		t.Errorf("TLB hit charged %d cycles", hit)
	}
}

func TestSPSelection(t *testing.T) {
	e := newEnv(t)
	e.c.SetEL(arm64.EL1)
	e.c.SetSP(0x9000) // SP_EL1 via SPSel
	e.c.SetEL(arm64.EL0)
	e.c.SetSP(0x7000) // SP_EL0
	if got := e.c.Sys(arm64.SPEL0); got != 0x7000 {
		t.Errorf("SP_EL0 = %#x", got)
	}
	if got := e.c.Sys(arm64.SPEL1); got != 0x9000 {
		t.Errorf("SP_EL1 = %#x", got)
	}
	e.c.SetEL(arm64.EL1)
	if e.c.SP() != 0x9000 {
		t.Errorf("EL1 SP = %#x", e.c.SP())
	}
	// SPSel=0 at EL1 selects SP_EL0.
	e.c.PState &^= arm64.PStateSPSel
	if e.c.SP() != 0x7000 {
		t.Errorf("EL1/SPSel=0 SP = %#x", e.c.SP())
	}
}

func TestERETValidation(t *testing.T) {
	e := newEnv(t)
	e.c.SetEL(arm64.EL0)
	if err := e.c.ERET(); err == nil {
		t.Error("ERET at EL0 accepted")
	}
	e.c.SetEL(arm64.EL1)
	e.c.SetSys(arm64.SPSREL1, arm64.PStateForEL(arm64.EL2))
	if err := e.c.ERET(); err == nil {
		t.Error("ERET to higher EL accepted")
	}
}

func TestExceptionEntryBanksState(t *testing.T) {
	e := newEnv(t)
	e.c.PState |= arm64.PStatePAN
	pcBefore := e.c.PC
	psBefore := e.c.PState
	e.c.TakeException(arm64.EL2, Syndrome{Class: ECHVC, Imm: 7}, pcBefore+4)
	if e.c.Sys(arm64.ELREL2) != pcBefore+4 {
		t.Errorf("ELR_EL2 = %#x", e.c.Sys(arm64.ELREL2))
	}
	if e.c.Sys(arm64.SPSREL2) != psBefore {
		t.Errorf("SPSR_EL2 = %#x, want %#x", e.c.Sys(arm64.SPSREL2), psBefore)
	}
	if e.c.EL() != arm64.EL2 {
		t.Errorf("EL = %v", e.c.EL())
	}
	if e.c.PState&arm64.PStateI == 0 {
		t.Error("interrupts not masked on entry")
	}
	// ERET restores everything, including PAN.
	if err := e.c.ERET(); err != nil {
		t.Fatal(err)
	}
	if e.c.PState != psBefore || e.c.PC != pcBefore+4 {
		t.Errorf("eret restored pc=%#x ps=%#x", e.c.PC, e.c.PState)
	}
}

func TestPackUnpackESRRoundTrip(t *testing.T) {
	e := newEnv(t)
	s := Syndrome{
		Class:  ECDataAbortSame,
		VA:     0x1234000,
		Access: mem.AccessWrite,
		Kind:   mem.FaultPermission,
		Stage:  1,
	}
	e.c.TakeException(arm64.EL1, s, 0x4000)
	got := UnpackESR(e.c.Sys(arm64.ESREL1), e.c.Sys(arm64.FAREL1))
	if got.Class != s.Class || got.Kind != s.Kind || got.Access != s.Access ||
		got.Stage != s.Stage || got.VA != s.VA {
		t.Errorf("round trip = %+v, want %+v", got, s)
	}

	s2 := Syndrome{Class: ECSVC, Imm: 0x1234}
	e.c.TakeException(arm64.EL1, s2, 0x4000)
	got = UnpackESR(e.c.Sys(arm64.ESREL1), e.c.Sys(arm64.FAREL1))
	if got.Class != ECSVC || got.Imm != 0x1234 {
		t.Errorf("svc round trip = %+v", got)
	}

	s3 := Syndrome{Class: ECDataAbortLower, VA: 0x8000, Access: mem.AccessRead,
		Kind: mem.FaultTranslation, Stage: 2}
	e.c.TakeException(arm64.EL2, s3, 0x4000)
	got = UnpackESR(e.c.Sys(arm64.ESREL2), e.c.Sys(arm64.FAREL2))
	if got.Stage != 2 || got.Kind != mem.FaultTranslation {
		t.Errorf("stage-2 round trip = %+v", got)
	}
}

func TestMemReadWriteSizes(t *testing.T) {
	e := newEnv(t)
	for _, size := range []int{1, 2, 4, 8} {
		v := uint64(0x1122334455667788) & (1<<(8*size) - 1)
		if ab := e.c.MemWrite(dataVA, size, v, false); ab != nil {
			t.Fatalf("write size %d: %v", size, ab)
		}
		got, ab := e.c.MemRead(dataVA, size, false)
		if ab != nil || got != v {
			t.Errorf("size %d: read %#x want %#x (%v)", size, got, v, ab)
		}
	}
}

func TestWalkCostIncludesStage2Levels(t *testing.T) {
	// With stage-2 enabled, a data TLB miss charges stage-1 plus stage-2
	// walk levels.
	e := newEnv(t)
	s2, err := mem.NewStage2(e.pm, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Identity stage-2 for everything allocated so far plus slack.
	for ipa := mem.IPA(0); ipa < mem.IPA(e.pm.AllocatedBytes()+32*mem.PageSize); ipa += mem.PageSize {
		if err := s2.Map(ipa, mem.PA(ipa), mem.S2APRead|mem.S2APWrite); err != nil {
			t.Fatal(err)
		}
	}
	e.c.SetSys(arm64.HCREL2, HCRVM)
	e.c.SetSys(arm64.VTTBREL2, MakeVTTBR(uint64(s2.Root()), 5))
	e.c.TLB.InvalidateAll()

	before := e.c.Cycles
	if _, ab := e.c.Translate(dataVA, mem.AccessRead, false); ab != nil {
		t.Fatal(ab)
	}
	cost := e.c.Cycles - before
	want := 7 * e.c.Prof.TLBWalkPerLevel // 4 stage-1 + 3 stage-2
	if cost < want {
		t.Errorf("nested miss cost %d, want at least %d", cost, want)
	}
}
