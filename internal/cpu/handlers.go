package cpu

import (
	"lightzone/internal/arm64"
	"lightzone/internal/mem"
)

// Handler executes one decoded instruction form. On entry c.nextPC holds the
// fall-through address; a handler changes it to branch, or leaves it alone.
// A non-nil Exit means control left the emulated world. Handlers report Go
// errors through c.stepErr (ERET state corruption), and after delivering an
// exception they leave c.nextPC equal to the exception-adjusted PC so the
// dispatch loop commits the right program counter either way.
type Handler func(*VCPU, arm64.Insn) *Exit

// handlers is the per-form dispatch table, indexed by arm64.Op. Decode
// produces the index once; cached blocks replay it with no re-dispatch on
// mnemonics or instruction classes. The table is assigned exactly once, at
// package initialization, and never written afterwards — that immutability
// is what lets any number of Machines dispatch through it concurrently
// without synchronization (see DESIGN.md §concurrency).
var handlers = buildHandlers()

func buildHandlers() [arm64.NumOps]Handler {
	var handlers [arm64.NumOps]Handler
	for op := range handlers {
		handlers[op] = execUnknown
	}
	handlers[arm64.OpNOP] = func(c *VCPU, in arm64.Insn) *Exit { return nil }
	handlers[arm64.OpISB] = func(c *VCPU, in arm64.Insn) *Exit {
		c.Charge(c.Prof.ISBCost)
		return nil
	}
	barrier := func(c *VCPU, in arm64.Insn) *Exit {
		c.Charge(c.Prof.DSBCost)
		return nil
	}
	handlers[arm64.OpDSB] = barrier
	handlers[arm64.OpDMB] = barrier

	handlers[arm64.OpMOVZ] = func(c *VCPU, in arm64.Insn) *Exit {
		c.SetR(in.Rd, uint64(in.Imm)<<in.ShiftAmt)
		return nil
	}
	handlers[arm64.OpMOVK] = func(c *VCPU, in arm64.Insn) *Exit {
		maskv := uint64(0xFFFF) << in.ShiftAmt
		c.SetR(in.Rd, c.R(in.Rd)&^maskv|uint64(in.Imm)<<in.ShiftAmt)
		return nil
	}
	handlers[arm64.OpMOVN] = func(c *VCPU, in arm64.Insn) *Exit {
		c.SetR(in.Rd, ^(uint64(in.Imm) << in.ShiftAmt))
		return nil
	}
	handlers[arm64.OpADR] = func(c *VCPU, in arm64.Insn) *Exit {
		c.SetR(in.Rd, c.PC+uint64(in.Imm))
		return nil
	}

	handlers[arm64.OpAddImm] = func(c *VCPU, in arm64.Insn) *Exit {
		c.aluAddSub(in, c.R(in.Rn), uint64(in.Imm), false)
		return nil
	}
	handlers[arm64.OpSubImm] = func(c *VCPU, in arm64.Insn) *Exit {
		c.aluAddSub(in, c.R(in.Rn), uint64(in.Imm), true)
		return nil
	}
	handlers[arm64.OpAddReg] = func(c *VCPU, in arm64.Insn) *Exit {
		c.aluAddSub(in, c.R(in.Rn), c.R(in.Rm)<<in.ShiftAmt, false)
		return nil
	}
	handlers[arm64.OpSubReg] = func(c *VCPU, in arm64.Insn) *Exit {
		c.aluAddSub(in, c.R(in.Rn), c.R(in.Rm)<<in.ShiftAmt, true)
		return nil
	}
	handlers[arm64.OpAndReg] = func(c *VCPU, in arm64.Insn) *Exit {
		v := c.R(in.Rn) & (c.R(in.Rm) << in.ShiftAmt)
		c.SetR(in.Rd, v)
		if in.SetFlags {
			c.setNZ(v)
		}
		return nil
	}
	handlers[arm64.OpOrrReg] = func(c *VCPU, in arm64.Insn) *Exit {
		c.SetR(in.Rd, c.R(in.Rn)|c.R(in.Rm)<<in.ShiftAmt)
		return nil
	}
	handlers[arm64.OpEorReg] = func(c *VCPU, in arm64.Insn) *Exit {
		c.SetR(in.Rd, c.R(in.Rn)^c.R(in.Rm)<<in.ShiftAmt)
		return nil
	}
	handlers[arm64.OpLSLV] = func(c *VCPU, in arm64.Insn) *Exit {
		c.SetR(in.Rd, c.R(in.Rn)<<(c.R(in.Rm)&63))
		return nil
	}
	handlers[arm64.OpLSRV] = func(c *VCPU, in arm64.Insn) *Exit {
		c.SetR(in.Rd, c.R(in.Rn)>>(c.R(in.Rm)&63))
		return nil
	}
	handlers[arm64.OpMAdd] = func(c *VCPU, in arm64.Insn) *Exit {
		c.SetR(in.Rd, c.R(in.Ra)+c.R(in.Rn)*c.R(in.Rm))
		return nil
	}
	handlers[arm64.OpUDiv] = func(c *VCPU, in arm64.Insn) *Exit {
		if d := c.R(in.Rm); d == 0 {
			c.SetR(in.Rd, 0)
		} else {
			c.SetR(in.Rd, c.R(in.Rn)/d)
		}
		return nil
	}

	handlers[arm64.OpB] = func(c *VCPU, in arm64.Insn) *Exit {
		c.Charge(c.Prof.BranchCost)
		c.nextPC = c.PC + uint64(in.Imm)
		return nil
	}
	handlers[arm64.OpBL] = func(c *VCPU, in arm64.Insn) *Exit {
		c.Charge(c.Prof.BranchCost)
		c.SetR(30, c.nextPC)
		c.nextPC = c.PC + uint64(in.Imm)
		return nil
	}
	handlers[arm64.OpBCond] = func(c *VCPU, in arm64.Insn) *Exit {
		if c.condHolds(in.Cond) {
			c.Charge(c.Prof.BranchCost)
			c.nextPC = c.PC + uint64(in.Imm)
		}
		return nil
	}
	handlers[arm64.OpCBZ] = func(c *VCPU, in arm64.Insn) *Exit {
		if c.R(in.Rt) == 0 {
			c.Charge(c.Prof.BranchCost)
			c.nextPC = c.PC + uint64(in.Imm)
		}
		return nil
	}
	handlers[arm64.OpCBNZ] = func(c *VCPU, in arm64.Insn) *Exit {
		if c.R(in.Rt) != 0 {
			c.Charge(c.Prof.BranchCost)
			c.nextPC = c.PC + uint64(in.Imm)
		}
		return nil
	}
	handlers[arm64.OpBR] = func(c *VCPU, in arm64.Insn) *Exit {
		c.Charge(c.Prof.BranchCost)
		c.nextPC = c.R(in.Rn)
		return nil
	}
	handlers[arm64.OpBLR] = func(c *VCPU, in arm64.Insn) *Exit {
		c.Charge(c.Prof.BranchCost)
		c.SetR(30, c.nextPC)
		c.nextPC = c.R(in.Rn)
		return nil
	}
	handlers[arm64.OpRET] = func(c *VCPU, in arm64.Insn) *Exit {
		c.Charge(c.Prof.BranchCost)
		c.nextPC = c.R(in.Rn)
		return nil
	}

	handlers[arm64.OpUBFM] = func(c *VCPU, in arm64.Insn) *Exit {
		// LSR when imms == 63; LSL when imms == immr-1 (mod 64);
		// general bitfield extract otherwise.
		immr := uint64(in.ShiftAmt)
		imms := uint64(in.Imm)
		v := c.R(in.Rn)
		if imms == 63 {
			c.SetR(in.Rd, v>>immr)
		} else if imms+1 == immr%64 || (immr == 0 && imms == 63) {
			c.SetR(in.Rd, v<<((64-immr)%64))
		} else if imms < immr {
			c.SetR(in.Rd, v<<(64-immr)%64) // LSL form
		} else {
			width := imms - immr + 1
			c.SetR(in.Rd, v>>immr&(1<<width-1))
		}
		return nil
	}

	handlers[arm64.OpCSel] = func(c *VCPU, in arm64.Insn) *Exit {
		if c.condHolds(in.Cond) {
			c.SetR(in.Rd, c.R(in.Rn))
		} else {
			c.SetR(in.Rd, c.R(in.Rm))
		}
		return nil
	}
	handlers[arm64.OpCSInc] = func(c *VCPU, in arm64.Insn) *Exit {
		if c.condHolds(in.Cond) {
			c.SetR(in.Rd, c.R(in.Rn))
		} else {
			c.SetR(in.Rd, c.R(in.Rm)+1)
		}
		return nil
	}

	handlers[arm64.OpLdp] = func(c *VCPU, in arm64.Insn) *Exit {
		addr := mem.VA(c.baseReg(in.Rn) + uint64(in.Imm))
		v1, ab := c.MemRead(addr, 8, false)
		if ab != nil {
			return c.deliverAbort(ab, mem.AccessRead)
		}
		v2, ab := c.MemRead(addr+8, 8, false)
		if ab != nil {
			return c.deliverAbort(ab, mem.AccessRead)
		}
		c.SetR(in.Rt, v1)
		c.SetR(in.Rt2, v2)
		return nil
	}
	handlers[arm64.OpStp] = func(c *VCPU, in arm64.Insn) *Exit {
		addr := mem.VA(c.baseReg(in.Rn) + uint64(in.Imm))
		if ab := c.MemWrite(addr, 8, c.R(in.Rt), false); ab != nil {
			return c.deliverAbort(ab, mem.AccessWrite)
		}
		if ab := c.MemWrite(addr+8, 8, c.R(in.Rt2), false); ab != nil {
			return c.deliverAbort(ab, mem.AccessWrite)
		}
		return nil
	}
	handlers[arm64.OpLdrReg] = func(c *VCPU, in arm64.Insn) *Exit {
		addr := mem.VA(c.baseReg(in.Rn) + c.R(in.Rm))
		v, ab := c.MemRead(addr, 1<<in.Size, false)
		if ab != nil {
			return c.deliverAbort(ab, mem.AccessRead)
		}
		c.SetR(in.Rt, v)
		return nil
	}
	handlers[arm64.OpStrReg] = func(c *VCPU, in arm64.Insn) *Exit {
		addr := mem.VA(c.baseReg(in.Rn) + c.R(in.Rm))
		if ab := c.MemWrite(addr, 1<<in.Size, c.R(in.Rt), false); ab != nil {
			return c.deliverAbort(ab, mem.AccessWrite)
		}
		return nil
	}

	load := func(c *VCPU, in arm64.Insn) *Exit {
		addr := mem.VA(c.baseReg(in.Rn) + uint64(in.Imm))
		v, ab := c.MemRead(addr, 1<<in.Size, in.Op == arm64.OpLdtr)
		if ab != nil {
			return c.deliverAbort(ab, mem.AccessRead)
		}
		c.SetR(in.Rt, v)
		return nil
	}
	handlers[arm64.OpLdrImm] = load
	handlers[arm64.OpLdur] = load
	handlers[arm64.OpLdtr] = load
	store := func(c *VCPU, in arm64.Insn) *Exit {
		addr := mem.VA(c.baseReg(in.Rn) + uint64(in.Imm))
		if ab := c.MemWrite(addr, 1<<in.Size, c.R(in.Rt), in.Op == arm64.OpSttr); ab != nil {
			return c.deliverAbort(ab, mem.AccessWrite)
		}
		return nil
	}
	handlers[arm64.OpStrImm] = store
	handlers[arm64.OpStur] = store
	handlers[arm64.OpSttr] = store

	handlers[arm64.OpSVC] = func(c *VCPU, in arm64.Insn) *Exit {
		return c.deliverIn(Syndrome{Class: ECSVC, Imm: uint16(in.Imm), PC: c.PC}, c.nextPC)
	}
	handlers[arm64.OpHVC] = func(c *VCPU, in arm64.Insn) *Exit {
		if c.EL() == arm64.EL0 {
			return c.deliverIn(Syndrome{Class: ECUnknown, PC: c.PC}, c.PC)
		}
		return c.deliverIn(Syndrome{Class: ECHVC, Imm: uint16(in.Imm), PC: c.PC}, c.nextPC)
	}
	handlers[arm64.OpSMC] = func(c *VCPU, in arm64.Insn) *Exit {
		return c.deliverIn(Syndrome{Class: ECSMC, Imm: uint16(in.Imm), PC: c.PC}, c.PC)
	}
	handlers[arm64.OpERET] = func(c *VCPU, in arm64.Insn) *Exit {
		if c.EL() != arm64.EL1 {
			return c.deliverIn(Syndrome{Class: ECUnknown, PC: c.PC}, c.PC)
		}
		if err := c.ERET(); err != nil {
			c.stepErr = err
			return nil
		}
		c.nextPC = c.PC
		return nil
	}

	handlers[arm64.OpMSRImm] = (*VCPU).execMSRImm
	handlers[arm64.OpMSRReg] = (*VCPU).execMSRReg
	handlers[arm64.OpMRS] = (*VCPU).execMSRReg
	handlers[arm64.OpSYS] = (*VCPU).execSYS
	handlers[arm64.OpSYSL] = (*VCPU).execSYS
	return handlers
}

// execUnknown delivers the undefined-instruction exception (also the
// OpUnknown slot).
func execUnknown(c *VCPU, in arm64.Insn) *Exit {
	return c.deliverIn(Syndrome{Class: ECUnknown, PC: c.PC}, c.PC)
}

// deliverIn delivers a synchronous exception from inside a handler and
// re-aims nextPC at the exception vector (TakeException rewrote c.PC), so
// the dispatch loop's PC commit is a no-op.
func (c *VCPU) deliverIn(s Syndrome, preferReturn uint64) *Exit {
	exit := c.deliver(s, preferReturn)
	c.nextPC = c.PC
	return exit
}

// deliverAbort classifies and delivers a data abort from a load/store
// handler; the faulting instruction is the preferred return address so it
// re-executes after the fault is repaired.
func (c *VCPU) deliverAbort(ab *Abort, acc mem.AccessType) *Exit {
	ab.Syndrome.Class = classifyAbort(acc, c.EL(), ab.Syndrome.Stage)
	return c.deliverIn(ab.Syndrome, c.PC)
}
