package cpu

import (
	"testing"

	"lightzone/internal/arm64"
	"lightzone/internal/mem"
)

// sumProgram emits the arithmetic loop used by the cache tests: sum 1..n
// into x0, then HVC to stop.
func sumProgram(n uint64) *arm64.Asm {
	a := arm64.NewAsm()
	a.MovImm(0, 0)
	a.MovImm(1, n)
	a.Label("loop")
	a.Emit(arm64.ADDReg(0, 0, 1))
	a.Emit(arm64.SUBSImm(1, 1, 1))
	a.BCond(arm64.CondNE, "loop")
	a.Emit(arm64.HVC(0))
	return a
}

// rerun restarts the loaded program from its entry (the HVC exit leaves
// the vCPU at EL2).
func (e *env) rerun(t testing.TB, max int64) {
	t.Helper()
	e.c.SetEL(arm64.EL1)
	e.c.PC = uint64(codeVA)
	e.run(t, max)
}

// TestDecodeCachePopulatesAndHits checks that a hot loop is served from
// cached blocks after the first iteration and that the result is unchanged.
func TestDecodeCachePopulatesAndHits(t *testing.T) {
	e := newEnv(t)
	e.load(t, sumProgram(50))
	e.run(t, 1000)
	if e.c.R(0) != 50*51/2 {
		t.Errorf("sum = %d, want %d", e.c.R(0), 50*51/2)
	}
	if e.c.DecodeCacheLen() == 0 {
		t.Error("no blocks cached after a hot loop")
	}
	if e.c.Stats.CodeHits == 0 {
		t.Error("no decode-cache hits after a hot loop")
	}
	if e.c.Stats.CodeMisses == 0 {
		t.Error("first-touch decodes should count as misses")
	}
}

// TestDecodeCacheCycleIdentity runs the same program with the cache on and
// off and requires bit-identical emulated cycles and instruction counts —
// the cache may only remove host work, never emulated work.
func TestDecodeCacheCycleIdentity(t *testing.T) {
	run := func(enabled bool) (int64, int64, uint64) {
		e := newEnv(t)
		e.c.SetDecodeCache(enabled)
		e.load(t, sumProgram(100))
		e.run(t, 10000)
		return e.c.Cycles, e.c.Insns, e.c.R(0)
	}
	onCycles, onInsns, onSum := run(true)
	offCycles, offInsns, offSum := run(false)
	if onCycles != offCycles {
		t.Errorf("cycles differ: cache on %d, off %d", onCycles, offCycles)
	}
	if onInsns != offInsns {
		t.Errorf("insns differ: cache on %d, off %d", onInsns, offInsns)
	}
	if onSum != offSum {
		t.Errorf("results differ: cache on %d, off %d", onSum, offSum)
	}
}

// TestSelfModifyingCodeReDecode overwrites an already-executed (and cached)
// instruction through an emulated store and checks the next execution sees
// the new bytes — the JIT-rewrite flow must never run stale decoded code.
func TestSelfModifyingCodeReDecode(t *testing.T) {
	e := newEnv(t)
	a := arm64.NewAsm()
	a.B("main")
	a.Label("patch")
	a.Emit(arm64.MOVZ(0, 1, 0)) // x0 = 1; rewritten to x0 = 2 below
	a.Emit(arm64.RET(30))
	a.Label("main")
	a.BL("patch") // first run: caches the patch block, x0 = 1
	a.Emit(arm64.ADDReg(9, 0, 31))
	a.ADR(1, "patch")
	a.MovImm(2, uint64(arm64.MOVZ(0, 2, 0)))
	a.Emit(arm64.STRImm(2, 1, 0, 2)) // overwrite the MOVZ word
	a.BL("patch")                    // second run must produce x0 = 2
	a.Emit(arm64.HVC(0))
	e.load(t, a)
	e.run(t, 1000)
	if e.c.R(9) != 1 {
		t.Errorf("first execution: x0 = %d, want 1", e.c.R(9))
	}
	if e.c.R(0) != 2 {
		t.Errorf("after rewrite: x0 = %d, want 2 (stale decoded code executed)", e.c.R(0))
	}
	if e.c.Stats.CodeInvalidations == 0 {
		t.Error("store to a code page did not bump the page epoch")
	}
}

// TestInvalidateCodeDropsBlocks checks the host-side invalidation hook:
// cached blocks for a page must be discarded (counted stale) after
// InvalidateCode, then rebuilt.
func TestInvalidateCodeDropsBlocks(t *testing.T) {
	e := newEnv(t)
	e.load(t, sumProgram(10))
	e.run(t, 1000)
	if e.c.DecodeCacheLen() == 0 {
		t.Fatal("no blocks cached")
	}
	e.c.InvalidateCode(codeVA)
	staleBefore := e.c.Stats.CodeStale
	e.rerun(t, 1000)
	if e.c.Stats.CodeStale == staleBefore {
		t.Error("epoch bump did not force a stale re-decode")
	}
	if e.c.R(0) != 55 {
		t.Errorf("re-run sum = %d, want 55", e.c.R(0))
	}
}

// TestTLBInvalidationBumpsCodeEpochs checks that every TLB invalidation
// entry point (the chokepoints of break-before-make, W^X and unmap flows)
// advances the code epochs, so decoded blocks can never outlive a mapping
// change.
func TestTLBInvalidationBumpsCodeEpochs(t *testing.T) {
	e := newEnv(t)
	snap := func() uint64 {
		return e.c.Stats.CodeInvalidations
	}
	base := snap()
	e.c.TLB.InvalidateVA(0, codeVA)
	if snap() == base {
		t.Error("InvalidateVA did not bump code epochs")
	}
	e.load(t, sumProgram(5))
	e.run(t, 1000)
	if e.c.DecodeCacheLen() == 0 {
		t.Fatal("no blocks cached")
	}
	for name, inval := range map[string]func(){
		"InvalidateAll":  func() { e.c.TLB.InvalidateAll() },
		"InvalidateVMID": func() { e.c.TLB.InvalidateVMID(0) },
		"InvalidateASID": func() { e.c.TLB.InvalidateASID(0, 1) },
	} {
		stale := e.c.Stats.CodeStale
		inval()
		e.rerun(t, 1000)
		if e.c.Stats.CodeStale == stale {
			t.Errorf("%s: cached blocks survived the invalidation", name)
		}
	}
}

// TestDecodeCacheDisabled checks that SetDecodeCache(false) reverts to the
// pure fetch/decode pipeline (no blocks, no hits).
func TestDecodeCacheDisabled(t *testing.T) {
	e := newEnv(t)
	e.c.SetDecodeCache(false)
	e.load(t, sumProgram(10))
	e.run(t, 1000)
	if e.c.R(0) != 55 {
		t.Errorf("sum = %d, want 55", e.c.R(0))
	}
	if e.c.DecodeCacheLen() != 0 || e.c.Stats.CodeHits != 0 {
		t.Errorf("disabled cache recorded state: %d blocks, %d hits",
			e.c.DecodeCacheLen(), e.c.Stats.CodeHits)
	}
}

// loadBlockSweep maps `pages` consecutive code pages and fills them with
// single-instruction blocks: every slot is `B #4` (each a terminator, so
// each decodes as its own block), and the very last slot is HVC so the
// sweep exits. pages*1024 distinct blocks execute per sweep.
func loadBlockSweep(t testing.TB, e *env, pages int) {
	t.Helper()
	word := func(buf []byte, i int, w uint32) {
		buf[i] = byte(w)
		buf[i+1] = byte(w >> 8)
		buf[i+2] = byte(w >> 16)
		buf[i+3] = byte(w >> 24)
	}
	const bPlus4 = 0x14000001 // B #4
	for p := 0; p < pages; p++ {
		va := codeVA + mem.VA(uint64(p)*uint64(mem.PageSize))
		if p > 0 {
			pa, err := e.pm.AllocFrame()
			if err != nil {
				t.Fatal(err)
			}
			if err := e.s1.Map(va, pa, mem.AttrNG); err != nil {
				t.Fatal(err)
			}
		}
		res, err := e.s1.Walk(va)
		if err != nil || !res.Found {
			t.Fatalf("sweep page %d missing: %v", p, err)
		}
		buf := make([]byte, mem.PageSize)
		for i := 0; i < len(buf); i += 4 {
			word(buf, i, bPlus4)
		}
		if p == pages-1 {
			word(buf, len(buf)-4, arm64.HVC(0))
		}
		if err := e.pm.Write(res.PA, buf); err != nil {
			t.Fatal(err)
		}
	}
}

// TestBlockCacheOverflowEvictsCohort sweeps more distinct blocks than
// maxCachedBlocks and checks overflow evicts only the oldest cohort instead
// of dropping the whole cache: the cache stays at least half full, the
// recently-executed half of the sweep replays entirely from cache (a full
// reset at the cap — the old overflow behaviour — would have dropped it),
// and emulated cycles remain identical to the cache-off pipeline across the
// eviction path.
func TestBlockCacheOverflowEvictsCohort(t *testing.T) {
	const pages = maxCachedBlocks/1024 + 1
	const total = pages * 1024
	e := newEnv(t)
	loadBlockSweep(t, e, pages)
	e.run(t, total+10)
	if n := e.c.DecodeCacheLen(); n < maxCachedBlocks/2 || n > maxCachedBlocks {
		t.Errorf("after overflow sweep: %d cached blocks, want within [%d, %d]",
			n, maxCachedBlocks/2, maxCachedBlocks)
	}
	// Replay only the second half of the sweep: its blocks are younger than
	// the evicted cohort, so every one must still be cached.
	const tailStart = pages / 2 * 1024 // first replayed block index
	const tail = total - tailStart
	hits := e.c.Stats.CodeHits
	e.c.SetEL(arm64.EL1)
	e.c.PC = uint64(codeVA) + uint64(tailStart)*arm64.InsnBytes
	e.run(t, tail+10)
	if delta := e.c.Stats.CodeHits - hits; delta < tail {
		t.Errorf("tail replay hit %d of %d blocks (overflow evicted the young cohort)",
			delta, tail)
	}

	run := func(enabled bool) (int64, int64) {
		e := newEnv(t)
		e.c.SetDecodeCache(enabled)
		loadBlockSweep(t, e, pages)
		e.run(t, total+10)
		return e.c.Cycles, e.c.Insns
	}
	onC, onI := run(true)
	offC, offI := run(false)
	if onC != offC || onI != offI {
		t.Errorf("overflow sweep identity: cache on %d/%d, off %d/%d", onC, onI, offC, offI)
	}
}

// BenchmarkStepHot measures the host-side cost of the hot Step path with
// the decoded-block cache on and off.
func BenchmarkStepHot(b *testing.B) {
	for _, mode := range []struct {
		name    string
		enabled bool
	}{{"cache-on", true}, {"cache-off", false}} {
		b.Run(mode.name, func(b *testing.B) {
			e := newEnv(b)
			e.load(b, sumProgram(100))
			e.c.SetDecodeCache(mode.enabled)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.c.SetEL(arm64.EL1)
				e.c.PC = uint64(codeVA)
				if _, err := e.c.Run(10_000); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(e.c.Insns)/float64(b.N), "insns/op")
		})
	}
}

// rawBlocks maps each cached block's starting page offset to its raw words.
func rawBlocks(c *VCPU) map[uint16][]uint32 {
	out := make(map[uint16][]uint32)
	for _, b := range c.DecodedBlocks() {
		out[b.Off] = b.Raw
	}
	return out
}

// TestBlockBuilderUnknownWordEndsBlock: an undecodable word mid-stream ends
// the decoded block at the word itself — the builder must not skip it and
// keep appending, or a replay would sail past the trap point.
func TestBlockBuilderUnknownWordEndsBlock(t *testing.T) {
	e := newEnv(t)
	a := arm64.NewAsm()
	a.Emit(arm64.ADDReg(0, 0, 1))
	a.Emit(arm64.ADDReg(0, 0, 1))
	a.Emit(uint32(0xffffffff)) // undecodable: traps, terminates the block
	a.Emit(arm64.ADDReg(0, 0, 1))
	a.Emit(arm64.HVC(0))
	e.load(t, a)
	exit := e.run(t, 100)
	if exit.Syndrome.Class != ECUnknown {
		t.Fatalf("exit class %v, want ECUnknown from the undecodable word", exit.Syndrome.Class)
	}
	blocks := rawBlocks(e.c)
	blk, ok := blocks[0]
	if !ok {
		t.Fatal("no block cached at the entry offset")
	}
	if len(blk) != 3 || blk[2] != 0xffffffff {
		t.Fatalf("entry block raw = %#x, want 3 words ending with the undecodable word", blk)
	}
	// Replaying the cached block must trap identically: same instruction
	// count to the trap, same syndrome, same faulting PC.
	insns := e.c.Insns
	trapPC := exit.Syndrome.PC
	e.c.SetEL(arm64.EL1)
	e.c.PC = uint64(codeVA)
	exit2 := e.run(t, 100)
	if got, want := e.c.Insns-insns, insns; got != want {
		t.Errorf("replay retired %d insns, first run %d", got, want)
	}
	if exit2.Syndrome.Class != ECUnknown || exit2.Syndrome.PC != trapPC {
		t.Errorf("replay trapped %v at %#x, first run %v at %#x",
			exit2.Syndrome.Class, exit2.Syndrome.PC, exit.Syndrome.Class, trapPC)
	}
}

// TestBlockBuilderPoolAfterTerminator: a literal pool abutting a block's
// terminating branch is never decoded into any block — the builder stops at
// the terminator and the next block starts at the branch target, not at the
// pool word.
func TestBlockBuilderPoolAfterTerminator(t *testing.T) {
	e := newEnv(t)
	a := arm64.NewAsm()
	a.MovImm(0, 7)
	a.B("over")                 // terminator; pool abuts it
	a.Emit(arm64.TLBIVMALLE1()) // pool word parked as data
	a.Emit(uint32(0xffffffff))  // more pool
	a.Label("over")
	a.Emit(arm64.ADDReg(0, 0, 0))
	a.Emit(arm64.HVC(0))
	e.load(t, a)
	e.run(t, 100)
	if e.c.R(0) != 14 {
		t.Fatalf("x0 = %d, want 14", e.c.R(0))
	}
	pool := []uint32{arm64.TLBIVMALLE1(), 0xffffffff}
	for off, raw := range rawBlocks(e.c) {
		for _, w := range raw {
			for _, p := range pool {
				if w == p {
					t.Errorf("block at +%#x decoded pool word %#x", off, w)
				}
			}
		}
	}
}

// TestBlockBuilderCondFallthroughChain: each conditional branch terminates
// its block and the fall-through starts a fresh one, so a chain of
// conditionals decodes into a chain of blocks whose boundaries sit exactly
// at the instruction after each branch.
func TestBlockBuilderCondFallthroughChain(t *testing.T) {
	e := newEnv(t)
	a := arm64.NewAsm()
	a.MovImm(0, 0)               // +0
	a.MovImm(1, 1)               // +4
	a.BCond(arm64.CondEQ, "out") // +8: Z clear -> falls through
	a.Emit(arm64.ADDReg(0, 0, 1))
	a.BCond(arm64.CondEQ, "out") // +16: falls through again
	a.Emit(arm64.ADDReg(0, 0, 1))
	a.Label("out")
	a.Emit(arm64.HVC(0))
	e.load(t, a)
	e.run(t, 100)
	if e.c.R(0) != 2 {
		t.Fatalf("x0 = %d, want 2 (both fallthroughs taken)", e.c.R(0))
	}
	blocks := rawBlocks(e.c)
	// Boundaries: entry block [., ., b.eq], then [add, b.eq] at +12, then
	// [add, hvc] at +20.
	for _, off := range []uint16{0, 12, 20} {
		if _, ok := blocks[off]; !ok {
			t.Errorf("no block starts at +%#x; fallthrough must open a new block", off)
		}
	}
	if raw := blocks[0]; len(raw) != 3 {
		t.Errorf("entry block has %d words, want 3 (ends at the first b.eq)", len(raw))
	}
}
