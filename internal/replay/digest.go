package replay

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"

	"lightzone/internal/arm64"
	"lightzone/internal/cpu"
	"lightzone/internal/mem"
)

// Digest summarizes the architecturally observable outcome of a run: final
// register file, PSTATE, every byte of touched physical memory, the
// emulated cycle/instruction counters, the guest-visible TLB statistics,
// and how the process ended. Host-side cache counters (decode hits,
// micro-TLB hits) are deliberately excluded — they are observability, not
// architecture, and legitimately move under host-invisible perturbations.
// PSTATE is kept out of the register hash so a comparator can attribute a
// single-bit PSTATE difference (a forced PAN flip's direct footprint) to
// the injection that wrote it.
type Digest struct {
	Regs       string `json:"regs"` // sha256 over X0..X30 and PC
	PState     uint64 `json:"pstate"`
	Mem        string `json:"mem"` // sha256 over all touched physical frames
	CycleTotal int64  `json:"cycles"`
	Insns      int64  `json:"insns"`
	Measured   int64  `json:"measured"` // marker-delimited cycles (0 if unused)
	TLBHits    uint64 `json:"tlb_hits"`
	TLBMiss    uint64 `json:"tlb_misses"`
	Killed     bool   `json:"killed,omitempty"`
	KillMsg    string `json:"kill_msg,omitempty"`
}

// CaptureDigest reads the digest off a vCPU and its physical memory.
// Observation only: frames are visited, never materialized, and nothing is
// charged, so digesting between run slices cannot perturb the run. The
// caller fills Measured and Killed/KillMsg, which live outside the CPU.
func CaptureDigest(c *cpu.VCPU, pm *mem.PhysMem) Digest {
	var d Digest
	h := sha256.New()
	var b [8]byte
	for i := 0; i < 31; i++ {
		binary.LittleEndian.PutUint64(b[:], c.R(uint8(i)))
		h.Write(b[:])
	}
	binary.LittleEndian.PutUint64(b[:], c.PC)
	h.Write(b[:])
	d.Regs = hex.EncodeToString(h.Sum(nil))
	d.PState = c.PState

	mh := sha256.New()
	pm.VisitFrames(func(pa mem.PA, frame *[mem.PageSize]byte) {
		binary.LittleEndian.PutUint64(b[:], uint64(pa))
		mh.Write(b[:])
		mh.Write(frame[:])
	})
	d.Mem = hex.EncodeToString(mh.Sum(nil))

	d.CycleTotal = c.Cycles
	d.Insns = c.Insns
	d.TLBHits = c.Stats.TLBHits
	d.TLBMiss = c.Stats.TLBMisses
	return d
}

// StateEqual reports whether two digests agree on architectural state:
// registers, PSTATE, memory, and how the process ended. Cycle totals,
// the measured interval and TLB statistics are excluded — this is the
// convergence criterion for perturbations that are architecturally visible
// only as timing (forced TLB eviction, spurious TLBI).
func (d Digest) StateEqual(o Digest) bool {
	return d.Regs == o.Regs && d.PState == o.PState && d.Mem == o.Mem &&
		d.Killed == o.Killed && d.KillMsg == o.KillMsg
}

// Equal reports bit-identity: state plus cycle accounting, the measured
// interval and TLB statistics — the criterion for host-invisible
// perturbations (micro-TLB flush, block-cache eviction, decode-cache off).
func (d Digest) Equal(o Digest) bool {
	return d.StateEqual(o) && d.CycleTotal == o.CycleTotal && d.Insns == o.Insns &&
		d.Measured == o.Measured && d.TLBHits == o.TLBHits && d.TLBMiss == o.TLBMiss
}

// PANFootprintOnly reports whether o differs from d exactly by the
// PSTATE.PAN bit — the direct, attributable footprint of a forced PAN set
// that the guest never rewrote. Everything else must match StateEqual.
func (d Digest) PANFootprintOnly(o Digest) bool {
	return d.Regs == o.Regs && d.Mem == o.Mem &&
		d.Killed == o.Killed && d.KillMsg == o.KillMsg &&
		d.PState != o.PState && d.PState^o.PState == arm64.PStatePAN
}

// Delta describes how o differs from the baseline d, for reports.
func (d Digest) Delta(o Digest) string {
	switch {
	case d.Equal(o):
		return "identical"
	case d.StateEqual(o):
		return fmt.Sprintf("state converged; cycles %+d, measured %+d, tlb hits %+d misses %+d",
			o.CycleTotal-d.CycleTotal, o.Measured-d.Measured,
			int64(o.TLBHits)-int64(d.TLBHits), int64(o.TLBMiss)-int64(d.TLBMiss))
	case d.PANFootprintOnly(o):
		return "state converged up to the injected PSTATE.PAN bit"
	default:
		var why []string
		if d.Regs != o.Regs {
			why = append(why, "registers")
		}
		if d.PState != o.PState {
			why = append(why, fmt.Sprintf("pstate %#x vs %#x", d.PState, o.PState))
		}
		if d.Mem != o.Mem {
			why = append(why, "memory")
		}
		if d.Killed != o.Killed || d.KillMsg != o.KillMsg {
			why = append(why, fmt.Sprintf("exit (killed=%v %q vs killed=%v %q)", d.Killed, d.KillMsg, o.Killed, o.KillMsg))
		}
		return "DIVERGED: " + join(why)
	}
}

func join(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += ", "
		}
		out += p
	}
	return out
}
