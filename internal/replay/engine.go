package replay

import (
	"errors"
	"fmt"
	"sync"

	"lightzone/internal/kernel"
	"lightzone/internal/verify"
	"lightzone/internal/workload"
)

// ChaosResult is one chaos case's verdict. Pass means the case landed in
// its injection's expectation class; anything else is a silent divergence
// and fails the sweep.
type ChaosResult struct {
	Case      int    `json:"case"`
	Scenario  string `json:"scenario"`
	Injection string `json:"injection"`
	Expect    string `json:"expect"`
	// Outcome is what actually happened: identical, converged,
	// pan-footprint, killed, or flagged.
	Outcome string `json:"outcome"`
	Delta   string `json:"delta,omitempty"`
	Applied int    `json:"applied"` // how many boundaries the fault fired at
	Pass    bool   `json:"pass"`
	Failure string `json:"failure,omitempty"`
}

// chaosRunner caches per-(scenario, slice) baselines across a sweep. The
// baseline is deterministic, so concurrent cells computing it redundantly
// agree; the cache only saves work.
type chaosRunner struct {
	baselines sync.Map // "scenario/sliceTraps" -> *chaosBaseline
	// prepare builds the scenario machine. Nil means the default: fork a
	// copy-on-write child of the scenario's zygote, so every injection
	// case costs O(dirty pages) instead of a full boot. The fork-identity
	// pinning tests swap in the cold-boot path to prove the classification
	// of every injection is unchanged.
	prepare func(workload.DomainSwitchConfig) (*workload.Env, *kernel.Process, error)
}

// prep builds a scenario machine through the runner's configured path.
func (r *chaosRunner) prep(cfg workload.DomainSwitchConfig) (*workload.Env, *kernel.Process, error) {
	if r.prepare != nil {
		return r.prepare(cfg)
	}
	return workload.ForkDomainSwitch(cfg)
}

type chaosBaseline struct {
	once       sync.Once
	digest     Digest
	boundaries int
	err        error
}

// errStopRun is an internal sentinel: the case reached its verdict (a
// tamper was flagged) and the run must not continue.
var errStopRun = errors.New("chaos case decided")

// driveSlices runs p in trap-budget slices of size slice, invoking hook at
// every ErrTrapBudget boundary with the boundary index. A hook error stops
// the drive and is returned.
func driveSlices(env *workload.Env, p *kernel.Process, slice int64, hook func(boundary int) error) (boundaries int, err error) {
	const maxBoundaries = 1 << 20 // hard stop against a run that never exits
	for i := 0; ; i++ {
		if i >= maxBoundaries {
			return i, fmt.Errorf("run exceeded %d slice boundaries", maxBoundaries)
		}
		err := env.Run(p, slice)
		if err == nil {
			return i, nil
		}
		if !errors.Is(err, kernel.ErrTrapBudget) {
			return i, err
		}
		if hook != nil {
			if herr := hook(i); herr != nil {
				return i, herr
			}
		}
	}
}

// baseline runs the scenario undisturbed — sliced exactly like the
// perturbed run will be, so the only difference between the two drives is
// the injection itself — and caches the final digest and boundary count.
func (r *chaosRunner) baseline(scn Scenario, slice int64) (Digest, int, error) {
	key := fmt.Sprintf("%s/%d", scn.Name, slice)
	v, _ := r.baselines.LoadOrStore(key, &chaosBaseline{})
	b := v.(*chaosBaseline)
	b.once.Do(func() {
		env, p, err := r.prep(scn.Config())
		if err != nil {
			b.err = err
			return
		}
		n, err := driveSlices(env, p, slice, nil)
		if err != nil {
			b.err = err
			return
		}
		d := CaptureDigest(env.M.CPU, env.M.PM)
		d.Measured, err = env.Measured()
		if err != nil {
			b.err = fmt.Errorf("baseline measurement: %w", err)
			return
		}
		d.Killed, d.KillMsg = p.Killed, p.KillMsg
		if d.Killed {
			b.err = fmt.Errorf("baseline killed: %s", d.KillMsg)
			return
		}
		b.digest, b.boundaries = d, n
	})
	return b.digest, b.boundaries, b.err
}

// RunCase executes one chaos plan: baseline, perturbed run with the verify
// registry at every injection site, and the expectation-class comparison.
func (r *chaosRunner) RunCase(plan Plan) ChaosResult {
	res := ChaosResult{Case: plan.Case, Scenario: plan.Scenario, Injection: plan.Injection}
	fail := func(format string, args ...any) ChaosResult {
		res.Failure = fmt.Sprintf(format, args...)
		return res
	}
	scn, ok := ScenarioByName(plan.Scenario)
	if !ok {
		return fail("unknown scenario %q", plan.Scenario)
	}
	inj, ok := InjectionByName(plan.Injection)
	if !ok {
		return fail("unknown injection %q", plan.Injection)
	}
	res.Expect = string(inj.Expect)

	base, boundaries, err := r.baseline(scn, plan.SliceTraps)
	if err != nil {
		return fail("baseline: %v", err)
	}
	if boundaries == 0 {
		return fail("scenario %s finished inside one %d-trap slice; no injection point", scn.Name, plan.SliceTraps)
	}
	injAt := plan.InjectAt % boundaries

	env, p, err := r.prep(scn.Config())
	if err != nil {
		return fail("prepare: %v", err)
	}
	ctx := &InjectCtx{Env: env, Proc: p, Plan: plan}
	memo := verify.NewMemo()
	flagDetail := ""
	hook := func(boundary int) error {
		if boundary < injAt || res.Applied >= plan.Repeat {
			return nil
		}
		switch err := inj.Apply(ctx); {
		case errors.Is(err, ErrNotReady):
			return nil // retry at the next boundary
		case err != nil:
			return fmt.Errorf("apply %s: %w", inj.Name, err)
		}
		res.Applied++
		rep, err := verify.RunMachineMemo(env.M, env.LZ, memo)
		if err != nil {
			return fmt.Errorf("verify at injection site: %w", err)
		}
		if inj.Expect == ExpectFlagged {
			for _, f := range rep.Findings {
				if f.Checker == inj.Checker {
					flagDetail = f.String()
					return errStopRun
				}
			}
			return fmt.Errorf("tamper %s not flagged by %s (%d findings)", inj.Name, inj.Checker, len(rep.Findings))
		}
		if !rep.Clean() {
			return fmt.Errorf("verify reported %d findings after non-tamper injection %s (first: %s)",
				len(rep.Findings), inj.Name, rep.Findings[0].String())
		}
		if inj.Revert != nil {
			inj.Revert(ctx)
		}
		return nil
	}
	_, err = driveSlices(env, p, plan.SliceTraps, hook)
	if errors.Is(err, errStopRun) {
		res.Outcome, res.Delta, res.Pass = "flagged", flagDetail, true
		return res
	}
	if err != nil {
		return fail("%v", err)
	}
	if res.Applied == 0 {
		return fail("injection never applied (target not ready before the run ended)")
	}
	if inj.Expect == ExpectFlagged {
		return fail("run completed without the tamper being flagged")
	}

	pert := CaptureDigest(env.M.CPU, env.M.PM)
	// An enforcement kill can land inside the measurement window; -1
	// marks the half-open interval (it can never equal a real baseline
	// measurement, so the digest comparison still catches it).
	if m, merr := env.Measured(); merr == nil {
		pert.Measured = m
	} else {
		pert.Measured = -1
	}
	pert.Killed, pert.KillMsg = p.Killed, p.KillMsg
	res.Delta = base.Delta(pert)

	// A completed non-tamper run must still verify clean end-to-end.
	rep, err := verify.RunMachineMemo(env.M, env.LZ, memo)
	if err != nil {
		return fail("final verify: %v", err)
	}
	if !rep.Clean() {
		return fail("final verify reported %d findings (first: %s)", len(rep.Findings), rep.Findings[0].String())
	}

	switch inj.Expect {
	case ExpectIdentical:
		if base.Equal(pert) {
			res.Outcome, res.Pass = "identical", true
			return res
		}
		return fail("expected bit-identity: %s", res.Delta)
	case ExpectConverge:
		if base.Equal(pert) {
			res.Outcome, res.Pass = "identical", true
			return res
		}
		if base.StateEqual(pert) {
			res.Outcome, res.Pass = "converged", true
			return res
		}
		return fail("expected state convergence: %s", res.Delta)
	case ExpectEnforced:
		switch {
		case base.StateEqual(pert):
			res.Outcome, res.Pass = "converged", true
		case pert.Killed && !base.Killed:
			res.Outcome, res.Delta, res.Pass = "killed", "enforcement killed the process: "+pert.KillMsg, true
		case base.PANFootprintOnly(pert):
			res.Outcome, res.Pass = "pan-footprint", true
		default:
			return fail("expected convergence, kill, or PAN-bit footprint: %s", res.Delta)
		}
		return res
	}
	return fail("unhandled expectation %q", inj.Expect)
}

// RunChaosCase executes one chaos plan standalone.
func RunChaosCase(plan Plan) ChaosResult {
	var r chaosRunner
	return r.RunCase(plan)
}

// ChaosSweep derives n plans from seed and runs them as fleet cells.
// Results are index-ordered regardless of fleet width. The returned error
// covers only engine breakage; expectation misses are reported per-result
// so a sweep surfaces every silent divergence, not just the first.
func ChaosSweep(f *workload.Fleet, n int, seed int64) ([]ChaosResult, error) {
	plans := DerivePlans(n, seed)
	out := make([]ChaosResult, n)
	var r chaosRunner
	err := f.Run(n, func(i int) error {
		out[i] = r.RunCase(plans[i])
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ChaosJournal pins a chaos case (typically a failing one) for replay.
func ChaosJournal(plan Plan, failure string) *Journal {
	scn, _ := ScenarioByName(plan.Scenario)
	return &Journal{
		Version: Version,
		Kind:    KindChaos,
		Chaos:   &ChaosCase{Scenario: scn, Plan: plan, Failure: failure},
	}
}
