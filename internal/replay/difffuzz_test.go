package replay

import (
	"reflect"
	"testing"

	"lightzone/internal/arm64"
)

func TestGenWordsDeterministic(t *testing.T) {
	a, b := GenWords(123, 256), GenWords(123, 256)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different streams")
	}
	c := GenWords(124, 256)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical streams")
	}
	if got := len(GenWords(1, MaxFuzzWords+500)); got != MaxFuzzWords {
		t.Errorf("oversized request not clamped: %d", got)
	}
}

func TestDualRunIdentityAcrossSeeds(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		res, err := DualRun(GenWords(seed, 200))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Divergence != "" {
			t.Errorf("seed %d diverged: %s", seed, res.Divergence)
		}
		if res.Fast.Insns == 0 {
			t.Errorf("seed %d executed nothing", seed)
		}
	}
}

func TestDualRunEmptyStream(t *testing.T) {
	// An empty stream is just the HVC terminator.
	res, err := DualRun(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Divergence != "" {
		t.Fatal(res.Divergence)
	}
	if res.FastExit.Syndrome.Class.String() == "" {
		t.Error("no exit syndrome recorded")
	}
}

func TestDualRunRejectsOversizedStream(t *testing.T) {
	if _, err := DualRun(make([]uint32, MaxFuzzWords+1)); err == nil {
		t.Error("oversized stream accepted")
	}
}

func TestMinimizePreservesLengthAndDivergence(t *testing.T) {
	// Synthetic oracle: "diverges" iff word 5 is the magic store AND word
	// 9 is the magic load; everything else is noise the minimizer must NOP.
	magicStore := arm64.STRImm(1, 20, 8, 3)
	magicLoad := arm64.LDRImm(2, 20, 8, 3)
	words := GenWords(77, 16)
	words[5], words[9] = magicStore, magicLoad
	oracle := func(ws []uint32) bool {
		return ws[5] == magicStore && ws[9] == magicLoad
	}
	min := Minimize(words, oracle)
	if len(min) != len(words) {
		t.Fatalf("length changed: %d -> %d", len(words), len(min))
	}
	if !oracle(min) {
		t.Fatal("minimized stream no longer diverges")
	}
	for i, w := range min {
		if i != 5 && i != 9 && w != arm64.WordNOP {
			t.Errorf("word %d not minimized to NOP: %#x", i, w)
		}
	}
}

func TestFuzzJournalRoundTrip(t *testing.T) {
	words := GenWords(9, 32)
	j := FuzzJournal(9, words, "synthetic")
	if err := j.Validate(); err != nil {
		t.Fatal(err)
	}
	if j.Fuzz.Seed != 9 || len(j.Fuzz.Words) != 32 {
		t.Errorf("journal does not pin the stream: %+v", j.Fuzz)
	}
}
