package replay

import (
	"errors"
	"path/filepath"
	"testing"
)

func TestJournalSealValidateRoundTrip(t *testing.T) {
	j := &Journal{
		Version: Version,
		Kind:    KindBench,
		Config:  RunConfig{Suites: []string{"table5"}, Iters: 100, Seed: 42, Parallel: 4},
		Inputs:  []Input{{Key: "table5/seed", Value: 42}},
		Rows:    []string{`{"suite":"table5","cell":0}`, `{"suite":"table5","cell":1}`},
	}
	j.Seal()
	if err := j.Validate(); err != nil {
		t.Fatalf("sealed journal invalid: %v", err)
	}
	path := filepath.Join(t.TempDir(), "run.journal.json")
	if err := j.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.RowsSHA != j.RowsSHA || len(got.Rows) != len(j.Rows) || got.Config.Seed != 42 {
		t.Errorf("roundtrip mismatch: %+v", got)
	}
}

func TestJournalValidateRejects(t *testing.T) {
	j := &Journal{Version: Version + 1, Kind: KindBench}
	if err := j.Validate(); err == nil {
		t.Error("wrong version accepted")
	}
	j = &Journal{Version: Version, Kind: "mystery"}
	if err := j.Validate(); err == nil {
		t.Error("unknown kind accepted")
	}
	j = &Journal{Version: Version, Kind: KindBench, Rows: []string{"a"}, RowsSHA: "bogus"}
	if err := j.Validate(); err == nil {
		t.Error("corrupted rows accepted")
	}
	j = &Journal{Version: Version, Kind: KindChaos}
	if err := j.Validate(); err == nil {
		t.Error("chaos journal without chaos section accepted")
	}
}

func TestDiffRows(t *testing.T) {
	a := []string{"same", "left", "same2", "tail"}
	b := []string{"same", "right", "same2"}
	diffs := DiffRows(a, b, 10)
	if len(diffs) != 2 {
		t.Fatalf("got %d diffs, want 2: %+v", len(diffs), diffs)
	}
	if diffs[0].Index != 1 || diffs[0].A != "left" || diffs[0].B != "right" {
		t.Errorf("first diff: %+v", diffs[0])
	}
	if diffs[1].Index != 3 || diffs[1].A != "tail" || diffs[1].B != "" {
		t.Errorf("second diff: %+v", diffs[1])
	}
	if got := DiffRows(a, b, 1); len(got) != 1 {
		t.Errorf("maxDiffs ignored: %d", len(got))
	}
	if got := DiffRows(a, a, 10); len(got) != 0 {
		t.Errorf("equal rows diffed: %+v", got)
	}
}

func TestSourceRecordThenReplay(t *testing.T) {
	rec := NewRecording()
	if got := rec.Int64("seed/a", Fixed(7)); got != 7 {
		t.Fatalf("draw = %d", got)
	}
	// Repeat draws return the pinned value, not the new generator's.
	if got := rec.Int64("seed/a", Fixed(99)); got != 7 {
		t.Errorf("repeat draw = %d, want pinned 7", got)
	}
	rec.Int64("seed/b", Fixed(11))
	if err := rec.Err(); err != nil {
		t.Fatal(err)
	}
	ins := rec.Inputs()
	if len(ins) != 2 || ins[0].Key != "seed/a" || ins[1].Key != "seed/b" {
		t.Fatalf("inputs not sorted by key: %+v", ins)
	}

	rep := NewReplaying(ins)
	if !rep.Replaying() {
		t.Fatal("not replaying")
	}
	// Replay ignores the generator entirely.
	if got := rep.Int64("seed/a", Fixed(1234)); got != 7 {
		t.Errorf("replayed draw = %d, want 7", got)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	// A key the journal never saw falls back to the generator and is
	// reported by Err.
	if got := rep.Int64("seed/new", Fixed(5)); got != 5 {
		t.Errorf("fallback draw = %d", got)
	}
	if err := rep.Err(); err == nil {
		t.Error("missing replay key not reported")
	}
}

func TestSourceNilSafe(t *testing.T) {
	var s *Source
	if s.Replaying() {
		t.Error("nil source claims replaying")
	}
	if got := s.Int64("k", Fixed(3)); got != 3 {
		t.Errorf("nil source draw = %d", got)
	}
	if err := s.Err(); err != nil {
		t.Error(err)
	}
	if ins := s.Inputs(); ins != nil {
		t.Errorf("nil source inputs: %+v", ins)
	}
}

func TestReadJournalMissing(t *testing.T) {
	if _, err := ReadJournal(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Error("missing journal read succeeded")
	}
}

func TestChaosJournalPinsCase(t *testing.T) {
	plans := DerivePlans(3, 1)
	j := ChaosJournal(plans[2], "synthetic failure")
	if err := j.Validate(); err != nil {
		t.Fatal(err)
	}
	if j.Chaos.Plan.Case != 2 || j.Chaos.Scenario.Name != plans[2].Scenario {
		t.Errorf("journal does not pin the plan: %+v", j.Chaos)
	}
}

func TestDerivePlansDeterministicAndPrefixStable(t *testing.T) {
	a, b := DerivePlans(8, 42), DerivePlans(8, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("plan %d differs across derivations: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Extending the sweep must keep the existing prefix.
	long := DerivePlans(16, 42)
	for i := range a {
		if long[i] != a[i] {
			t.Fatalf("plan %d changed when n grew: %+v vs %+v", i, long[i], a[i])
		}
	}
	// Every plan must reference registered entities and respect gating.
	for _, p := range DerivePlans(64, 7) {
		scn, ok := ScenarioByName(p.Scenario)
		if !ok {
			t.Fatalf("plan references unknown scenario %q", p.Scenario)
		}
		inj, ok := InjectionByName(p.Injection)
		if !ok {
			t.Fatalf("plan references unknown injection %q", p.Injection)
		}
		if inj.NeedsGates && !scn.Gates {
			t.Errorf("gate injection %s assigned to gateless scenario %s", inj.Name, scn.Name)
		}
	}
}

func TestInjectionRegistryShape(t *testing.T) {
	for _, inj := range Injections() {
		if inj.Expect == ExpectFlagged && inj.Checker == "" {
			t.Errorf("%s: flagged expectation without a named checker", inj.Name)
		}
		if inj.Apply == nil {
			t.Errorf("%s: no apply", inj.Name)
		}
	}
	if _, ok := InjectionByName("no-such-fault"); ok {
		t.Error("unknown injection resolved")
	}
	if _, ok := ScenarioByName("no-such-scenario"); ok {
		t.Error("unknown scenario resolved")
	}
}

func TestErrNotReadyIsSentinel(t *testing.T) {
	if !errors.Is(ErrNotReady, ErrNotReady) {
		t.Fatal("sentinel broken")
	}
}
