package replay

// Fork-identity suite (DESIGN.md §14): a machine forked from a warmed
// zygote must be indistinguishable — by the full replay digest, at every
// comparison grade — from a machine cold-booted and driven to the same
// point. This is the contract that lets the chaos engine, the fleet and
// the calibration paths fork instead of boot without moving a single
// measured number.

import (
	"encoding/json"
	"os"
	"reflect"
	"testing"

	"lightzone/internal/arm64"
	"lightzone/internal/kernel"
	"lightzone/internal/workload"
)

// coldOff forces cold boots for the test body and restores the previous
// zygote default afterwards.
func coldOff(t *testing.T) {
	t.Helper()
	prev := workload.SetZygoteDefault(false)
	t.Cleanup(func() { workload.SetZygoteDefault(prev) })
}

// finishDigest runs the prepared process to completion and captures the
// full digest, exactly as the chaos baseline does.
func finishDigest(t *testing.T, env *workload.Env, p *kernel.Process, budget int64) Digest {
	t.Helper()
	if err := env.Run(p, budget); err != nil {
		t.Fatalf("run: %v", err)
	}
	d := CaptureDigest(env.M.CPU, env.M.PM)
	m, err := env.Measured()
	if err != nil {
		t.Fatalf("measured: %v", err)
	}
	d.Measured = m
	d.Killed, d.KillMsg = p.Killed, p.KillMsg
	return d
}

// requireAllGrades asserts digest agreement at every comparison grade the
// engine distinguishes: bit-identity (Equal), architectural state
// (StateEqual), the PAN-footprint discriminator (which must NOT claim a
// difference), and the human-readable delta.
func requireAllGrades(t *testing.T, label string, cold, forked Digest) {
	t.Helper()
	if !forked.Equal(cold) {
		t.Errorf("%s: fork not bit-identical to cold boot: %s", label, cold.Delta(forked))
	}
	if !forked.StateEqual(cold) {
		t.Errorf("%s: fork diverges architecturally from cold boot", label)
	}
	if forked.PANFootprintOnly(cold) {
		t.Errorf("%s: fork differs from cold boot by the PAN bit", label)
	}
	if got := cold.Delta(forked); got != "identical" {
		t.Errorf("%s: delta = %q, want identical", label, got)
	}
}

// TestForkIdentityAcrossWorkloads proves fork-vs-cold-boot bit-identity for
// every chaos scenario (the three Table 5 variants, including the
// watchpoint baseline), a guest-mode configuration, and both pipeline
// ablations — and that a SECOND fork of the same zygote (the chaos
// engine's re-fork-per-injection pattern) is identical too.
func TestForkIdentityAcrossWorkloads(t *testing.T) {
	coldOff(t)
	configs := map[string]workload.DomainSwitchConfig{}
	for _, scn := range Scenarios() {
		configs[scn.Name] = scn.Config()
	}
	base := Scenarios()[0].Config()
	guest := base
	guest.Platform.Guest = true
	configs["ttbr-8-guest"] = guest
	noDecode := base
	noDecode.DisableDecodeCache = true
	configs["ttbr-8-nodecode"] = noDecode
	noFast := base
	noFast.DisableHostFastpaths = true
	configs["ttbr-8-nofastpath"] = noFast

	for name, cfg := range configs {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			budget := workload.DomainSwitchBudget(cfg)
			env, p, err := workload.PrepareDomainSwitch(cfg)
			if err != nil {
				t.Fatal(err)
			}
			cold := finishDigest(t, env, p, budget)

			for _, round := range []string{"first-fork", "re-fork"} {
				envF, pF, err := workload.ForkDomainSwitch(cfg)
				if err != nil {
					t.Fatal(err)
				}
				forked := finishDigest(t, envF, pF, budget)
				requireAllGrades(t, name+"/"+round, cold, forked)
			}
		})
	}
}

// TestForkIdentityAcrossBackends proves the same bit-identity under every
// isolation backend: the forked child of a prepared backend machine runs
// to the same digest as the machine itself would have.
func TestForkIdentityAcrossBackends(t *testing.T) {
	coldOff(t)
	for _, backend := range workload.BackendOrder() {
		t.Run(backend, func(t *testing.T) {
			// The lightzone cell is the Table 5 scalable-TTBR cell; the
			// other substrates have dedicated switch programs.
			prepare := func() (*workload.Env, *kernel.Process, error) {
				if backend == "lightzone" {
					return workload.PrepareDomainSwitch(workload.DomainSwitchConfig{
						Platform: workload.Platform{Prof: arm64.ProfileCortexA55()},
						Variant:  workload.VariantLZTTBR,
						Domains:  8, Iters: 100, Seed: workload.Table5Seed,
					})
				}
				return workload.PrepareBackendSwitch(workload.BackendSwitchConfig{
					Platform: workload.Platform{Prof: arm64.ProfileCortexA55()},
					Backend:  backend, Domains: 8, Iters: 100, Seed: workload.Table5Seed,
				})
			}
			budget := workload.DomainSwitchBudget(workload.DomainSwitchConfig{Iters: 100})

			envCold, pCold, err := prepare()
			if err != nil {
				t.Fatal(err)
			}
			envFork := envCold.Fork()
			pFork, ok := envFork.K.Process(pCold.PID)
			if !ok {
				t.Fatal("fork lost the benchmark process")
			}

			cold := finishDigest(t, envCold, pCold, budget)
			forked := finishDigest(t, envFork, pFork, budget)
			requireAllGrades(t, backend, cold, forked)
			if issues := envFork.M.PM.AuditCOW(); len(issues) != 0 {
				t.Errorf("COW audit after forked run: %v", issues)
			}
			t.Logf("backend %s: forked run dirtied %d pages", backend, envFork.M.PM.COWCopies())
		})
	}
}

// TestChaosForkVsColdClassification pins satellite safety for the chaos
// engine's fork adoption: every registered injection, driven through the
// default (forking) runner and through a cold-boot runner, must classify
// identically — same outcome, same expectation class, same delta text.
func TestChaosForkVsColdClassification(t *testing.T) {
	forkRunner := &chaosRunner{} // default: zygote fork
	coldRunner := &chaosRunner{prepare: func(cfg workload.DomainSwitchConfig) (*workload.Env, *kernel.Process, error) {
		return workload.PrepareDomainSwitch(cfg)
	}}
	coldOff(t) // make the cold runner's PrepareDomainSwitch a true cold boot
	for _, inj := range Injections() {
		inj := inj
		t.Run(inj.Name, func(t *testing.T) {
			plan := Plan{Scenario: "ttbr-8", Injection: inj.Name,
				SliceTraps: 8, InjectAt: 3, Repeat: 1}
			fork := forkRunner.RunCase(plan)
			cold := coldRunner.RunCase(plan)
			if !reflect.DeepEqual(fork, cold) {
				t.Errorf("classification moved under forking:\nfork: %+v\ncold: %+v", fork, cold)
			}
			if !fork.Pass {
				t.Errorf("case failed: %+v", fork)
			}
		})
	}
}

// TestRegenerateChaosSeedJournal rebuilds the committed pre-fork seed
// journal from the cold-boot engine. Guarded by an environment variable:
// the journal is a fixture pinning pre-fork behaviour, so regenerating it
// is a deliberate act, never part of a normal test run.
func TestRegenerateChaosSeedJournal(t *testing.T) {
	if os.Getenv("LZ_REGEN_CHAOS_JOURNAL") == "" {
		t.Skip("set LZ_REGEN_CHAOS_JOURNAL=1 to regenerate testdata/chaos_prefork.journal.json")
	}
	coldOff(t)
	runner := &chaosRunner{prepare: func(cfg workload.DomainSwitchConfig) (*workload.Env, *kernel.Process, error) {
		return workload.PrepareDomainSwitch(cfg)
	}}
	var rows []string
	for _, inj := range Injections() {
		plan := Plan{Scenario: "ttbr-8", Injection: inj.Name,
			SliceTraps: 8, InjectAt: 3, Repeat: 1}
		res := runner.RunCase(plan)
		if !res.Pass {
			t.Fatalf("cold case failed, refusing to pin it: %+v", res)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, string(b))
	}
	j := &Journal{Version: Version, Kind: KindBench,
		Config: RunConfig{Suites: []string{"chaos-prefork"}}, Rows: rows}
	j.Seal()
	if err := os.MkdirAll("testdata", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := j.Write("testdata/chaos_prefork.journal.json"); err != nil {
		t.Fatal(err)
	}
}

// TestChaosSeedJournalReplaysClean replays the committed pre-fork seed
// journal: the classifications recorded from the cold-boot engine before
// zygote forking landed must reproduce exactly under the forking default.
func TestChaosSeedJournalReplaysClean(t *testing.T) {
	j, err := ReadJournal("testdata/chaos_prefork.journal.json")
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Validate(); err != nil {
		t.Fatalf("seed journal corrupt: %v", err)
	}
	var runner chaosRunner // forking default
	for i, row := range j.Rows {
		var want ChaosResult
		if err := json.Unmarshal([]byte(row), &want); err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		plan := Plan{Scenario: want.Scenario, Injection: want.Injection,
			SliceTraps: 8, InjectAt: 3, Repeat: 1}
		got := runner.RunCase(plan)
		got.Case = want.Case
		if !reflect.DeepEqual(got, want) {
			t.Errorf("row %d (%s) drifted from the pre-fork journal:\ngot:  %+v\nwant: %+v",
				i, want.Injection, got, want)
		}
	}
}
