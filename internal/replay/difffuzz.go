package replay

import (
	"fmt"
	"math/rand"

	"lightzone/internal/arm64"
	"lightzone/internal/cpu"
	"lightzone/internal/mem"
)

// Differential fuzzing: the same seeded A64 instruction stream runs on two
// freshly booted bare vCPUs — one with every host fastpath enabled
// (micro-TLBs, block-resident run loop, batched charging, decode cache,
// trace compiler), one with all of them off (the per-Step reference
// pipeline) — and the final registers, PSTATE, memory, cycle accounting,
// TLB statistics and exit syndrome must be bit-identical. Any difference is
// a fastpath soundness bug, minimized to a committed journal. Each side runs
// the stream several times from the same entry point so the fast side climbs
// the whole cache hierarchy: decode misses, cached-block hits, and stitched
// trace replay.

// Fuzz address space: one executable code page, a kernel RW data page, a
// user RW page and a stack page — the cpu package's canonical test layout.
const (
	fuzzCodeVA   = mem.VA(0x10000)
	fuzzDataVA   = mem.VA(0x40000)
	fuzzUserVA   = mem.VA(0x80000)
	fuzzStackTop = uint64(0x60000)
)

// MaxFuzzWords bounds a stream to the single mapped code page, leaving room
// for the appended terminator.
const MaxFuzzWords = int(mem.PageSize/arm64.InsnBytes) - 1

// newFuzzEnv boots a bare vCPU at EL1 over a fresh address space and
// returns the physical frame behind the code page. Both sides of a dual
// run build theirs through this one function, so frame allocation order —
// and therefore every physical address — is identical.
func newFuzzEnv(fastpaths bool) (*cpu.VCPU, *mem.PhysMem, mem.PA, error) {
	pm := mem.NewPhysMem(64 << 20)
	s1, err := mem.NewStage1(pm, 1)
	if err != nil {
		return nil, nil, 0, err
	}
	mapPage := func(va mem.VA, attrs uint64) error {
		pa, err := pm.AllocFrame()
		if err != nil {
			return err
		}
		return s1.Map(va, pa, attrs|mem.AttrNG)
	}
	for _, p := range []struct {
		va    mem.VA
		attrs uint64
	}{
		{fuzzCodeVA, 0},
		{fuzzDataVA, mem.AttrPXN | mem.AttrUXN},
		{fuzzUserVA, mem.AttrAPUser | mem.AttrPXN | mem.AttrUXN},
		{mem.VA(fuzzStackTop - mem.PageSize), mem.AttrPXN | mem.AttrUXN},
	} {
		if err := mapPage(p.va, p.attrs); err != nil {
			return nil, nil, 0, err
		}
	}
	c := cpu.New(arm64.ProfileCortexA55(), pm)
	c.SetHostFastpaths(fastpaths)
	c.SetDecodeCache(fastpaths)
	c.SetTraces(fastpaths)
	// Threshold 1 stitches on the second pass and replays on the third, so
	// FuzzPasses runs land one pass in each tier of the cache hierarchy.
	c.SetTraceHotThreshold(1)
	c.SetSys(arm64.SCTLREL1, cpu.SCTLRM)
	c.SetSys(arm64.TTBR0EL1, cpu.MakeTTBR(uint64(s1.Root()), s1.ASID()))
	c.PC = uint64(fuzzCodeVA)
	c.SetSP(fuzzStackTop)
	// Deterministic nonzero register file; x20-x23 are the stream's pinned
	// memory bases (the generator never writes above x15).
	for i := uint8(0); i < 16; i++ {
		c.SetR(i, 0x0101_0101_0101_0101*uint64(i))
	}
	c.SetR(20, uint64(fuzzDataVA))
	c.SetR(21, uint64(fuzzUserVA))
	c.SetR(22, fuzzStackTop-512)
	c.SetR(23, uint64(fuzzCodeVA))
	res, err := s1.Walk(fuzzCodeVA)
	if err != nil || !res.Found {
		return nil, nil, 0, fmt.Errorf("code page missing after map: %v", err)
	}
	return c, pm, res.PA, nil
}

// loadWords writes the stream plus an HVC #0 terminator into the code page.
func loadWords(pm *mem.PhysMem, codePA mem.PA, words []uint32) error {
	buf := make([]byte, 0, (len(words)+1)*arm64.InsnBytes)
	for _, w := range append(append([]uint32{}, words...), arm64.HVC(0)) {
		buf = append(buf, byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
	}
	return pm.Write(codePA, buf)
}

// FuzzPasses is how many times each side executes the stream from the entry
// point. Pass 1 decodes, pass 2 runs from cached blocks and stitches (hot
// threshold 1), pass 3 replays the stitched trace — so a single dual run
// covers every execution tier with the same architectural state trajectory.
const FuzzPasses = 3

// DualResult is the outcome of one differential run.
type DualResult struct {
	Fast, Slow         Digest
	FastExit, SlowExit cpu.Exit // final-pass exits
	// Divergence is empty when the two pipelines were bit-identical.
	Divergence string
}

// DualRun executes words on the fastpath and reference pipelines and
// compares every architectural observable. The stream need not be
// well-formed: undefined words, faulting accesses and early exits are all
// legitimate outcomes — they just must be the SAME outcome on both sides.
// Each side runs FuzzPasses passes, re-entering at the stream head with the
// carried-over register file; per-pass exits must match pairwise and the
// cumulative digest must be bit-identical.
func DualRun(words []uint32) (DualResult, error) {
	var res DualResult
	if len(words) > MaxFuzzWords {
		return res, fmt.Errorf("stream of %d words exceeds the %d-word code page", len(words), MaxFuzzWords)
	}
	run := func(fast bool) (Digest, [FuzzPasses]cpu.Exit, error) {
		var exits [FuzzPasses]cpu.Exit
		c, pm, codePA, err := newFuzzEnv(fast)
		if err != nil {
			return Digest{}, exits, err
		}
		if err := loadWords(pm, codePA, words); err != nil {
			return Digest{}, exits, err
		}
		for p := 0; p < FuzzPasses; p++ {
			c.SetEL(arm64.EL1)
			c.PC = uint64(fuzzCodeVA)
			// Forward-only control flow bounds each pass by the stream
			// length; the slack covers the terminator and delivered aborts.
			exit, err := c.Run(int64(len(words)) + 64)
			if err != nil {
				return Digest{}, exits, err
			}
			exits[p] = exit
		}
		return CaptureDigest(c, pm), exits, nil
	}
	var err error
	var fastExits, slowExits [FuzzPasses]cpu.Exit
	if res.Fast, fastExits, err = run(true); err != nil {
		return res, err
	}
	if res.Slow, slowExits, err = run(false); err != nil {
		return res, err
	}
	res.FastExit = fastExits[FuzzPasses-1]
	res.SlowExit = slowExits[FuzzPasses-1]
	switch {
	case fastExits != slowExits:
		res.Divergence = fmt.Sprintf("exit diverged: fast %+v, slow %+v", fastExits, slowExits)
	case !res.Fast.Equal(res.Slow):
		res.Divergence = "digest diverged: " + res.Slow.Delta(res.Fast)
	}
	return res, nil
}

// GenWords derives a deterministic pseudo-random A64 stream from seed. The
// mix favors long-running streams — pinned in-bounds memory bases, forward
// branches only — but deliberately includes faulting and undefined words:
// the two pipelines must agree on failure exactly as they do on success.
func GenWords(seed int64, n int) []uint32 {
	if n > MaxFuzzWords {
		n = MaxFuzzWords
	}
	rng := rand.New(rand.NewSource(seed))
	words := make([]uint32, n)
	lo := func() uint8 { return uint8(rng.Intn(16)) } // writable registers
	base := func() uint8 { return uint8(20 + rng.Intn(3)) }
	for i := range words {
		switch k := rng.Intn(100); {
		case k < 10:
			words[i] = arm64.MOVZ(lo(), uint16(rng.Intn(1<<16)), uint8(rng.Intn(4)))
		case k < 16:
			words[i] = arm64.MOVK(lo(), uint16(rng.Intn(1<<16)), uint8(rng.Intn(4)))
		case k < 20:
			words[i] = arm64.ADDImm(lo(), lo(), uint16(rng.Intn(1<<12)), rng.Intn(2) == 0)
		case k < 24:
			words[i] = arm64.SUBSImm(lo(), lo(), uint16(rng.Intn(1<<12)))
		case k < 30:
			words[i] = arm64.ADDReg(lo(), lo(), lo())
		case k < 34:
			words[i] = arm64.SUBSReg(lo(), lo(), lo())
		case k < 38:
			words[i] = arm64.EORReg(lo(), lo(), lo())
		case k < 42:
			words[i] = arm64.ORRShifted(lo(), lo(), lo(), uint8(rng.Intn(64)))
		case k < 46:
			words[i] = arm64.ANDReg(lo(), lo(), lo())
		case k < 50:
			words[i] = arm64.UBFM(lo(), lo(), uint8(rng.Intn(64)), uint8(rng.Intn(64)))
		case k < 54:
			words[i] = arm64.MADD(lo(), lo(), lo(), lo())
		case k < 57:
			words[i] = arm64.UDIV(lo(), lo(), lo())
		case k < 60:
			words[i] = arm64.LSLV(lo(), lo(), lo())
		case k < 64:
			words[i] = arm64.CSEL(lo(), lo(), lo(), uint8(rng.Intn(16)))
		case k < 67:
			words[i] = arm64.CSINC(lo(), lo(), lo(), uint8(rng.Intn(16)))
		case k < 75:
			size := uint8(rng.Intn(4))
			off := uint16(rng.Intn(int(mem.PageSize)/2)) &^ (1<<size - 1)
			words[i] = arm64.LDRImm(lo(), base(), off, size)
		case k < 83:
			size := uint8(rng.Intn(4))
			off := uint16(rng.Intn(int(mem.PageSize)/2)) &^ (1<<size - 1)
			words[i] = arm64.STRImm(lo(), base(), off, size)
		case k < 86:
			words[i] = arm64.LDUR(lo(), base(), int16(rng.Intn(256)), uint8(rng.Intn(4)))
		case k < 89:
			words[i] = arm64.STUR(lo(), base(), int16(rng.Intn(256)), uint8(rng.Intn(4)))
		case k < 92:
			// Forward branch to a later word in the stream.
			maxHop := n - i
			if maxHop > 16 {
				maxHop = 16
			}
			hop := int64(1+rng.Intn(maxHop)) * arm64.InsnBytes
			switch rng.Intn(3) {
			case 0:
				words[i] = arm64.B(hop)
			case 1:
				words[i] = arm64.BCond(uint8(rng.Intn(14)), hop)
			default:
				words[i] = arm64.CBZ(lo(), hop)
			}
		case k < 94:
			words[i] = arm64.WordNOP
		case k < 97:
			// Indexed access with an arbitrary register: usually faults, and
			// both pipelines must fault identically.
			words[i] = arm64.LDRReg(lo(), base(), lo(), uint8(rng.Intn(4)))
		default:
			// Raw random word: decode laxness and undefined-instruction
			// delivery must match across pipelines.
			words[i] = rng.Uint32()
		}
	}
	return words
}

// Minimize shrinks a diverging stream by NOP-substitution: each word is
// replaced with NOP (stream length — and therefore every branch offset —
// is preserved) and the substitution is kept whenever the divergence
// persists, iterating to a fixpoint. diverges must be deterministic.
func Minimize(words []uint32, diverges func([]uint32) bool) []uint32 {
	out := append([]uint32{}, words...)
	for changed := true; changed; {
		changed = false
		for i := range out {
			if out[i] == arm64.WordNOP {
				continue
			}
			saved := out[i]
			out[i] = arm64.WordNOP
			if diverges(out) {
				changed = true
			} else {
				out[i] = saved
			}
		}
	}
	return out
}

// FuzzJournal pins a diverging stream for replay and regression.
func FuzzJournal(seed int64, words []uint32, failure string) *Journal {
	return &Journal{
		Version: Version,
		Kind:    KindDiffFuzz,
		Fuzz:    &FuzzCase{Seed: seed, Words: words, Failure: failure},
	}
}
