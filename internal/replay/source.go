package replay

import (
	"fmt"
	"sort"
	"sync"
)

// Source is the boundary through which a run obtains its nondeterministic
// inputs — RNG seeds, iteration budgets, width hints. In recording mode
// every draw evaluates its generator and logs the value under its key; in
// replaying mode the logged value is returned instead and the generator is
// never consulted, so the replayed run sees exactly the recorded inputs.
// Draws are keyed, not ordered: fleet cells draw concurrently and in
// scheduling-dependent order, so the journal stores a sorted key/value set
// and replay is insensitive to which worker asks first. Drawing the same
// key twice must yield the same value (it does by construction: the first
// draw pins it).
type Source struct {
	mu        sync.Mutex
	replaying bool
	vals      map[string]int64
	missing   []string // replay draws with no recorded value (reported by Err)
}

// NewRecording returns a Source that evaluates and logs every draw.
func NewRecording() *Source {
	return &Source{vals: make(map[string]int64)}
}

// NewReplaying returns a Source that serves draws from recorded inputs.
func NewReplaying(inputs []Input) *Source {
	s := &Source{replaying: true, vals: make(map[string]int64, len(inputs))}
	for _, in := range inputs {
		s.vals[in.Key] = in.Value
	}
	return s
}

// Replaying reports whether draws come from a journal.
func (s *Source) Replaying() bool { return s != nil && s.replaying }

// Int64 draws the value for key. In recording mode gen supplies it (first
// draw wins; repeats return the pinned value). In replaying mode the
// recorded value is returned; a key the journal never recorded falls back
// to gen but is remembered as missing, surfaced by Err.
func (s *Source) Int64(key string, gen func() int64) int64 {
	if s == nil {
		return gen()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if v, ok := s.vals[key]; ok {
		return v
	}
	v := gen()
	if s.replaying {
		s.missing = append(s.missing, key)
	}
	s.vals[key] = v
	return v
}

// Fixed is a convenience generator for Int64.
func Fixed(v int64) func() int64 { return func() int64 { return v } }

// Err reports replay draws that had no recorded value. A non-nil error
// means the replayed binary asked for inputs the recording never consumed —
// the journal and the code have diverged.
func (s *Source) Err() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.missing) == 0 {
		return nil
	}
	return fmt.Errorf("replay drew %d inputs absent from the journal: %v", len(s.missing), s.missing)
}

// Inputs returns every pinned draw sorted by key, ready for a journal.
func (s *Source) Inputs() []Input {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Input, 0, len(s.vals))
	for k, v := range s.vals {
		out = append(out, Input{Key: k, Value: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
