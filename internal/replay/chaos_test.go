package replay

import (
	"reflect"
	"testing"

	"lightzone/internal/workload"
)

// chaosPlan builds a hand-written plan against the registered entities.
func chaosPlan(t *testing.T, scenario, injection string, at int) Plan {
	t.Helper()
	scn, ok := ScenarioByName(scenario)
	if !ok {
		t.Fatalf("unknown scenario %q", scenario)
	}
	if _, ok := InjectionByName(injection); !ok {
		t.Fatalf("unknown injection %q", injection)
	}
	return Plan{Scenario: scenario, Injection: injection,
		SliceTraps: scn.SliceChoices[0], InjectAt: at, Repeat: 1}
}

// TestChaosExpectationClasses drives one representative injection per
// expectation class end-to-end and requires each to land in its class.
func TestChaosExpectationClasses(t *testing.T) {
	cases := []struct {
		name      string
		plan      Plan
		wantClass Expectation
	}{
		{"host-invisible", chaosPlan(t, "ttbr-8", "mtlb-flush", 3), ExpectIdentical},
		{"timing-only", chaosPlan(t, "watchpoint-4", "tlb-evict-all", 9), ExpectConverge},
		{"tamper-flagged", chaosPlan(t, "ttbr-8", "gatetab-tamper", 5), ExpectFlagged},
		{"protection-attack", chaosPlan(t, "pan-8", "pan-set", 2), ExpectEnforced},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := RunChaosCase(tc.plan)
			if !res.Pass {
				t.Fatalf("case failed: %+v", res)
			}
			if res.Expect != string(tc.wantClass) {
				t.Errorf("expectation class %q, want %q", res.Expect, tc.wantClass)
			}
			if res.Applied == 0 {
				t.Error("injection never applied")
			}
			t.Logf("outcome=%s delta=%q", res.Outcome, res.Delta)
		})
	}
}

// TestChaosRevertedFlipsAreIdentical exercises the context-flip injections
// whose revert must be provably exact.
func TestChaosRevertedFlipsAreIdentical(t *testing.T) {
	for _, inj := range []string{"pan-flip", "asid-flip", "block-cohort-evict", "fastpath-off"} {
		res := RunChaosCase(chaosPlan(t, "ttbr-8", inj, 4))
		if !res.Pass {
			t.Errorf("%s: %+v", inj, res)
		} else if res.Outcome != "identical" {
			t.Errorf("%s: outcome %q, want identical (%s)", inj, res.Outcome, res.Delta)
		}
	}
}

// TestChaosGateCodeTamperFlagged covers the second tamper path: the gate
// slot's code bytes, not its table entry.
func TestChaosGateCodeTamperFlagged(t *testing.T) {
	res := RunChaosCase(chaosPlan(t, "ttbr-8", "gate-code-tamper", 6))
	if !res.Pass || res.Outcome != "flagged" {
		t.Fatalf("%+v", res)
	}
}

// TestChaosSweepDeterministicAcrossWidths requires a sweep's results to be
// byte-identical at any fleet width — chaos rows are fleet cells like any
// other measurement.
func TestChaosSweepDeterministicAcrossWidths(t *testing.T) {
	const n, seed = 6, 11
	seq, err := ChaosSweep(workload.NewFleet(1), n, seed)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range seq {
		if !r.Pass {
			t.Errorf("case %d failed: %+v", i, r)
		}
	}
	par, err := ChaosSweep(workload.NewFleet(4), n, seed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("sweep diverged across fleet widths\nseq: %+v\npar: %+v", seq, par)
	}
}
