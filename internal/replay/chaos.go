package replay

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"

	"lightzone/internal/arm64"
	"lightzone/internal/core"
	"lightzone/internal/cpu"
	"lightzone/internal/kernel"
	"lightzone/internal/mem"
	"lightzone/internal/workload"
)

// Expectation classifies what the paper's semantics require of a run after
// an injection. Every chaos case must land in its injection's class — a
// perturbed run that matches none is a silent divergence and fails.
type Expectation string

const (
	// ExpectIdentical: the perturbation is host-side only (or perfectly
	// reverted), so state, cycle accounting and TLB statistics must all be
	// bit-identical to the baseline.
	ExpectIdentical Expectation = "identical"
	// ExpectConverge: the perturbation is architecturally visible only as
	// timing (TLB refills), so final state must equal the baseline while
	// cycles and TLB statistics may drift.
	ExpectConverge Expectation = "converge"
	// ExpectFlagged: the perturbation is a security-relevant tamper; the
	// named internal/verify checker must flag it at the injection site.
	ExpectFlagged Expectation = "flagged"
	// ExpectEnforced: the perturbation attacks the protection state itself
	// (a forced PAN set). The run must converge, or enforcement must kill
	// the process, or the only residue is the injected PSTATE.PAN bit.
	ExpectEnforced Expectation = "enforced"
)

// ErrNotReady tells the engine the machine has not yet reached the state
// the injection needs (gates not installed yet); it retries at the next
// slice boundary.
var ErrNotReady = errors.New("injection target not ready")

// InjectCtx hands an injection its target machine and the derived plan.
type InjectCtx struct {
	Env  *workload.Env
	Proc *kernel.Process
	Plan Plan
}

// Injection is one registered fault, applied at a trap-budget slice
// boundary — a clean architectural point: no instruction is in flight, no
// cycle batch is pending, the kernel has fully handled the last trap.
type Injection struct {
	Name    string
	Desc    string
	Expect  Expectation
	Checker string // the verify checker that must flag this (ExpectFlagged)
	// NeedsGates restricts the injection to scenarios with call gates.
	NeedsGates bool
	Apply      func(*InjectCtx) error
	// Revert, when set, undoes Apply after the verify registry has run at
	// the injection site — so verification is exercised under the flipped
	// context, and the restore must then be provably exact.
	Revert func(*InjectCtx)
}

// Injections returns the fault registry in a fixed order.
func Injections() []Injection {
	return []Injection{
		{
			Name: "mtlb-flush", Expect: ExpectIdentical,
			Desc:  "drop every host micro-TLB entry mid-run",
			Apply: func(ctx *InjectCtx) error { ctx.Env.M.CPU.FlushMicroTLBs(); return nil },
		},
		{
			Name: "block-cohort-evict", Expect: ExpectIdentical,
			Desc:  "evict a cohort of decoded blocks and the resident cursor",
			Apply: func(ctx *InjectCtx) error { ctx.Env.M.CPU.EvictBlockCohort(); return nil },
		},
		{
			Name: "decode-cache-off", Expect: ExpectIdentical,
			Desc:  "disable the decoded-block cache for the rest of the run",
			Apply: func(ctx *InjectCtx) error { ctx.Env.M.CPU.SetDecodeCache(false); return nil },
		},
		{
			Name: "fastpath-off", Expect: ExpectIdentical,
			Desc:  "disable micro-TLBs, block-resident run loop and batched charging mid-run",
			Apply: func(ctx *InjectCtx) error { ctx.Env.M.CPU.SetHostFastpaths(false); return nil },
		},
		{
			Name: "pan-flip", Expect: ExpectIdentical,
			Desc: "flip PSTATE.PAN across the verification point, then restore it",
			Apply: func(ctx *InjectCtx) error {
				c := ctx.Env.M.CPU
				c.SetPAN(!c.PAN())
				return nil
			},
			Revert: func(ctx *InjectCtx) {
				c := ctx.Env.M.CPU
				c.SetPAN(!c.PAN())
			},
		},
		{
			Name: "asid-flip", Expect: ExpectIdentical,
			Desc: "flip TTBR0's ASID to a scratch value across the verification point, then restore it",
			Apply: func(ctx *InjectCtx) error {
				c := ctx.Env.M.CPU
				c.SetSys(arm64.TTBR0EL1, c.Sys(arm64.TTBR0EL1)^uint64(0xA5)<<cpu.TTBRASIDShift)
				return nil
			},
			Revert: func(ctx *InjectCtx) {
				c := ctx.Env.M.CPU
				c.SetSys(arm64.TTBR0EL1, c.Sys(arm64.TTBR0EL1)^uint64(0xA5)<<cpu.TTBRASIDShift)
			},
		},
		{
			Name: "tlb-evict-all", Expect: ExpectConverge,
			Desc:  "spurious full TLB invalidation (TLBI VMALLE1 the guest never issued)",
			Apply: func(ctx *InjectCtx) error { ctx.Env.M.CPU.TLB.InvalidateAll(); return nil },
		},
		{
			Name: "tlb-evict-asid", Expect: ExpectConverge,
			Desc: "spurious TLBI ASIDE1 for the current TTBR0 ASID",
			Apply: func(ctx *InjectCtx) error {
				c := ctx.Env.M.CPU
				c.TLB.InvalidateASID(c.CurrentVMID(), cpu.TTBRASID(c.Sys(arm64.TTBR0EL1)))
				return nil
			},
		},
		{
			Name: "tlb-evict-va", Expect: ExpectConverge,
			Desc: "spurious TLBI VAE1 for one benchmark domain page",
			Apply: func(ctx *InjectCtx) error {
				c := ctx.Env.M.CPU
				c.TLB.InvalidateVA(c.CurrentVMID(), workload.DomainVA(int(ctx.Plan.Arg)))
				return nil
			},
		},
		{
			Name: "pan-set", Expect: ExpectEnforced,
			Desc:  "force PSTATE.PAN on and leave it — enforcement must catch any resulting access, or the run converges up to the injected bit",
			Apply: func(ctx *InjectCtx) error { ctx.Env.M.CPU.SetPAN(true); return nil },
		},
		{
			Name: "gatetab-tamper", Expect: ExpectFlagged, Checker: "gate-integrity", NeedsGates: true,
			Desc: "overwrite gate 0's GateTab entry with a bogus target",
			Apply: func(ctx *InjectCtx) error {
				lp, err := chaosLZProc(ctx)
				if err != nil {
					return err
				}
				return ctx.Env.M.PM.WriteU64(lp.GateTabPA(), 0xdead_0000)
			},
		},
		{
			Name: "gate-code-tamper", Expect: ExpectFlagged, Checker: "gate-integrity", NeedsGates: true,
			Desc: "overwrite the first instruction of gate 0's code slot",
			Apply: func(ctx *InjectCtx) error {
				lp, err := chaosLZProc(ctx)
				if err != nil {
					return err
				}
				slotVA := core.GateCodeBase()
				res, err := lp.TTBR1Table().Walk(mem.VA(slotVA))
				if err != nil || !res.Found {
					return ErrNotReady
				}
				real, ok := lp.Fake().RealOf(mem.IPA(res.Desc & mem.OAMask))
				if !ok {
					return fmt.Errorf("no real frame behind gate slot")
				}
				var buf [4]byte
				binary.LittleEndian.PutUint32(buf[:], arm64.SVC(0))
				return ctx.Env.M.PM.Write(real+mem.PA(slotVA&mem.PageMask), buf[:])
			},
		},
	}
}

// InjectionByName resolves a registered injection.
func InjectionByName(name string) (Injection, bool) {
	for _, inj := range Injections() {
		if inj.Name == name {
			return inj, true
		}
	}
	return Injection{}, false
}

// chaosLZProc fetches the run's LightZone process with its gates installed,
// or ErrNotReady while setup is still in flight.
func chaosLZProc(ctx *InjectCtx) (*core.LZProc, error) {
	procs := ctx.Env.LZ.Procs()
	if len(procs) == 0 || len(procs[0].Gates()) == 0 {
		return nil, ErrNotReady
	}
	return procs[0], nil
}

// Scenario is one benchmark configuration the chaos engine perturbs. All
// scenarios run on the Cortex-A55 host platform — the cheapest cell; the
// platform axis is covered by the identity suites, injection coverage is
// what matters here.
type Scenario struct {
	Name    string `json:"name"`
	Variant string `json:"variant"`
	Domains int    `json:"domains"`
	Iters   int    `json:"iters"`
	// Gates reports whether the variant installs call gates, gating the
	// tamper injections.
	Gates bool `json:"gates,omitempty"`
	// SliceChoices are the trap-budget slice sizes DerivePlans picks from,
	// sized so every scenario crosses several boundaries: the PAN variant
	// traps fewer than ten times end-to-end, the watchpoint baseline traps
	// on every measured iteration.
	SliceChoices []int64 `json:"slice_choices,omitempty"`
}

// Scenarios returns the chaos targets: the gate-rich scalable variant, the
// PAN variant, and the trap-per-iteration watchpoint baseline (whose
// measured loop is the only one with mid-loop slice boundaries).
func Scenarios() []Scenario {
	return []Scenario{
		{Name: "ttbr-8", Variant: string(workload.VariantLZTTBR), Domains: 8, Iters: 200, Gates: true,
			SliceChoices: []int64{4, 8, 16}},
		{Name: "pan-8", Variant: string(workload.VariantLZPAN), Domains: 8, Iters: 200,
			SliceChoices: []int64{1, 2, 3}},
		{Name: "watchpoint-4", Variant: string(workload.VariantWatchpoint), Domains: 4, Iters: 120,
			SliceChoices: []int64{8, 16, 32}},
	}
}

// ScenarioByName resolves a registered scenario.
func ScenarioByName(name string) (Scenario, bool) {
	for _, s := range Scenarios() {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}

// Config builds the workload configuration for the scenario.
func (s Scenario) Config() workload.DomainSwitchConfig {
	return workload.DomainSwitchConfig{
		Platform: workload.Platform{Prof: arm64.ProfileCortexA55()},
		Variant:  workload.Variant(s.Variant),
		Domains:  s.Domains,
		Iters:    s.Iters,
		Seed:     workload.Table5Seed,
	}
}

// Plan is one derived chaos case: which scenario to run, which fault to
// inject, how to slice the run, and where to fire. Everything is derived
// deterministically from (case index, sweep seed), so a failing case
// replays from its journal alone.
type Plan struct {
	Case       int    `json:"case"`
	Scenario   string `json:"scenario"`
	Injection  string `json:"injection"`
	SliceTraps int64  `json:"slice_traps"`
	// InjectAt selects the firing slice boundary; the engine reduces it
	// modulo the baseline's boundary count so it always lands in-run.
	InjectAt int `json:"inject_at"`
	// Repeat fires the injection at this many consecutive boundaries.
	Repeat int `json:"repeat"`
	// Arg parameterizes the injection (domain index for targeted TLBI).
	Arg int64 `json:"arg,omitempty"`
}

// DerivePlans expands (n, seed) into n chaos plans. Each case uses its own
// seeded stream, so plans are independent of n: extending a sweep from 8 to
// 32 cases reruns the same first 8.
func DerivePlans(n int, seed int64) []Plan {
	scenarios := Scenarios()
	injections := Injections()
	plans := make([]Plan, n)
	for i := range plans {
		rng := rand.New(rand.NewSource(seed + int64(i)*1_000_003))
		scn := scenarios[rng.Intn(len(scenarios))]
		var applicable []Injection
		for _, inj := range injections {
			if inj.NeedsGates && !scn.Gates {
				continue
			}
			applicable = append(applicable, inj)
		}
		inj := applicable[rng.Intn(len(applicable))]
		plans[i] = Plan{
			Case:       i,
			Scenario:   scn.Name,
			Injection:  inj.Name,
			SliceTraps: scn.SliceChoices[rng.Intn(len(scn.SliceChoices))],
			InjectAt:   rng.Intn(64),
			Repeat:     1 + rng.Intn(2),
			Arg:        int64(rng.Intn(scn.Domains)),
		}
	}
	return plans
}
