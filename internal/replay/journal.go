// Package replay implements LightZone's deterministic record/replay and
// chaos fault-injection engine. Recording captures every nondeterministic
// input at its boundary — workload RNG seeds, iteration budgets, platform
// and cost-model selection, fleet width — into a compact versioned journal
// together with the run's emitted rows; replaying a journal re-executes the
// run under the recorded inputs and proves the output byte-identical. The
// chaos engine perturbs replays at the architecture's chokepoints (TLB
// eviction and pressure, spurious guest TLBI, ASID/PAN flips, block-cache
// cohort eviction, gate/GateTab tamper) and asserts that every injection
// either converges back to the recorded baseline or is flagged by a named
// internal/verify checker — never a silent divergence.
package replay

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
)

// Version is the journal format version. Readers reject other versions
// outright: a journal is a regression pin, and silently reinterpreting an
// old pin is worse than failing loudly.
const Version = 1

// Journal kinds.
const (
	KindBench    = "bench"    // a recorded lzbench run: config + emitted rows
	KindChaos    = "chaos"    // one chaos case: scenario + injection plan
	KindDiffFuzz = "difffuzz" // a differential-fuzz failure: seed + stream
)

// Journal is the on-disk record of one deterministic run. Exactly one of
// the kind-specific sections (Rows for bench, Chaos, Fuzz) is populated.
type Journal struct {
	Version int    `json:"version"`
	Kind    string `json:"kind"`

	// Config captures the boundary inputs of a bench run.
	Config RunConfig `json:"config,omitempty"`
	// Inputs are the keyed nondeterministic draws consumed during
	// recording, sorted by key (see Source).
	Inputs []Input `json:"inputs,omitempty"`

	// Rows are the emitted JSON result lines of a bench run; RowsSHA is
	// their chained digest, so `lzreplay -inspect` can validate a journal
	// without re-running anything.
	Rows    []string `json:"rows,omitempty"`
	RowsSHA string   `json:"rows_sha,omitempty"`

	Chaos *ChaosCase `json:"chaos,omitempty"`
	Fuzz  *FuzzCase  `json:"fuzz,omitempty"`
}

// RunConfig is the boundary configuration of a recorded lzbench run.
// Parallel is informational: replays must produce identical rows at any
// fleet width, so the replayer deliberately does not restore it.
type RunConfig struct {
	Suites      []string `json:"suites"`
	Iters       int      `json:"iters"`
	Mem         bool     `json:"mem,omitempty"` // figures also report §9 memory overheads
	Seed        int64    `json:"seed"`
	Parallel    int      `json:"parallel"`
	NoFastpath  bool     `json:"nofastpath,omitempty"`
	NoDecode    bool     `json:"nodecode,omitempty"`
	NoTrace     bool     `json:"notrace,omitempty"`
	Invariants  bool     `json:"invariants,omitempty"`
	Backend     string   `json:"backend,omitempty"`      // isolation-backend matrix scope ("", name, or "all")
	HostVisible bool     `json:"host_visible,omitempty"` // -hostperf rows present (never recorded)

	// Serve-harness boundary inputs (set only when the suites include
	// "serve"). The replayer restores them and the keyed inputs cross-check
	// them, the same belt-and-braces the backend selector uses.
	Arrival   string  `json:"arrival,omitempty"`
	RPS       float64 `json:"rps,omitempty"`
	DurationS float64 `json:"duration_s,omitempty"`
	SLOMicros float64 `json:"slo_us,omitempty"`
}

// Input is one keyed nondeterministic draw.
type Input struct {
	Key   string `json:"key"`
	Value int64  `json:"value"`
}

// ChaosCase pins one fault-injection case: the scenario it ran against and
// the derived plan, so a failing case replays exactly.
type ChaosCase struct {
	Scenario Scenario `json:"scenario"`
	Plan     Plan     `json:"plan"`
	// Failure describes why the case was journalled (empty for passing pins).
	Failure string `json:"failure,omitempty"`
}

// FuzzCase pins one differential-fuzz instruction stream.
type FuzzCase struct {
	Seed  int64    `json:"seed"`
	Words []uint32 `json:"words"`
	// Failure describes the divergence that was observed.
	Failure string `json:"failure,omitempty"`
}

// RowsDigest computes the chained SHA-256 over a row set.
func RowsDigest(rows []string) string {
	h := sha256.New()
	for _, r := range rows {
		h.Write([]byte(r))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Seal fills RowsSHA from Rows.
func (j *Journal) Seal() { j.RowsSHA = RowsDigest(j.Rows) }

// Validate checks version, kind and internal consistency.
func (j *Journal) Validate() error {
	if j.Version != Version {
		return fmt.Errorf("journal version %d, this build reads %d", j.Version, Version)
	}
	switch j.Kind {
	case KindBench:
		if got := RowsDigest(j.Rows); got != j.RowsSHA {
			return fmt.Errorf("rows digest mismatch: journal says %s, rows hash to %s", j.RowsSHA, got)
		}
	case KindChaos:
		if j.Chaos == nil {
			return fmt.Errorf("chaos journal without chaos section")
		}
	case KindDiffFuzz:
		if j.Fuzz == nil {
			return fmt.Errorf("difffuzz journal without fuzz section")
		}
	default:
		return fmt.Errorf("unknown journal kind %q", j.Kind)
	}
	return nil
}

// Write serializes the journal to path (indented JSON: journals are
// committed as regression pins and reviewed as diffs).
func (j *Journal) Write(path string) error {
	b, err := json.MarshalIndent(j, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadJournal loads and validates a journal.
func ReadJournal(path string) (*Journal, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var j Journal
	if err := json.Unmarshal(b, &j); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if err := j.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &j, nil
}

// RowDiff is one divergent row position between two row sets.
type RowDiff struct {
	Index int
	A, B  string // empty when one side is exhausted
}

// DiffRows returns the first maxDiffs divergences between two row sets.
func DiffRows(a, b []string, maxDiffs int) []RowDiff {
	var out []RowDiff
	n := max(len(a), len(b))
	for i := 0; i < n && len(out) < maxDiffs; i++ {
		var ra, rb string
		if i < len(a) {
			ra = a[i]
		}
		if i < len(b) {
			rb = b[i]
		}
		if ra != rb {
			out = append(out, RowDiff{Index: i, A: ra, B: rb})
		}
	}
	return out
}
