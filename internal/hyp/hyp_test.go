package hyp

import (
	"testing"

	"lightzone/internal/arm64"
	"lightzone/internal/cpu"
	"lightzone/internal/kernel"
	"lightzone/internal/mem"
)

func TestGuestProcessSyscallAndStage2Population(t *testing.T) {
	m := NewMachine(arm64.ProfileCortexA55(), 256<<20)
	vm, err := m.NewGuestVM("guest")
	if err != nil {
		t.Fatal(err)
	}
	a := arm64.NewAsm()
	a.MovImm(8, kernel.SysGetpid)
	a.Emit(arm64.SVC(0))
	a.Emit(arm64.MOVReg(19, 0))
	a.MovImm(0, 5)
	a.MovImm(8, kernel.SysExit)
	a.Emit(arm64.SVC(0))
	words, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	p, err := vm.Kernel.CreateProcess("guestproc", kernel.Program{Text: words})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RunGuestProcess(vm, p, 100000); err != nil {
		t.Fatal(err)
	}
	if p.Killed {
		t.Fatalf("killed: %s", p.KillMsg)
	}
	if p.ExitCode != 5 {
		t.Errorf("exit code = %d", p.ExitCode)
	}
	if m.CPU.R(19) != uint64(p.PID) {
		t.Errorf("getpid = %d", m.CPU.R(19))
	}
	if m.Hyp.Stage2Faults == 0 {
		t.Error("expected lazy stage-2 population faults")
	}
}

// measureGuestSyscall measures the guest EL0 -> guest EL1 roundtrip
// (Table 4 row 2).
func measureGuestSyscall(t *testing.T, prof *arm64.Profile) int64 {
	t.Helper()
	m := NewMachine(prof, 256<<20)
	vm, err := m.NewGuestVM("guest")
	if err != nil {
		t.Fatal(err)
	}
	a := arm64.NewAsm()
	for i := 0; i < 3; i++ {
		a.MovImm(8, kernel.SysGetpid)
		a.Emit(arm64.SVC(0))
	}
	a.MovImm(8, kernel.SysExit)
	a.Emit(arm64.SVC(0))
	words, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	p, err := vm.Kernel.CreateProcess("m", kernel.Program{Text: words})
	if err != nil {
		t.Fatal(err)
	}
	m.Hyp.WriteWorldReg(arm64.HCREL2, cpu.HCRVM)
	m.Hyp.WriteWorldReg(arm64.VTTBREL2, vm.VTTBR())
	k := vm.Kernel
	th := p.MainThread()
	k.SwitchTo(th, &kernel.World{EL: arm64.EL0, HCR: cpu.HCRVM, VTTBR: vm.VTTBR(), SCTLR: cpu.SCTLRM})
	seen := 0
	var cost int64
	for !p.Exited {
		exit, err := m.CPU.Run(1 << 20)
		if err != nil {
			t.Fatal(err)
		}
		var before int64
		measuring := false
		if exit.Syndrome.Class == cpu.ECSVC && exit.TargetEL == arm64.EL1 {
			seen++
			if seen == 3 { // third syscall: everything warm
				before = m.CPU.Cycles - prof.ExcEntryTo[arm64.EL1]
				measuring = true
			}
		}
		if err := k.HandleExit(th, exit); err != nil {
			t.Fatal(err)
		}
		if measuring {
			cost = m.CPU.Cycles - before
		}
	}
	return cost
}

func TestGuestSyscallCostMatchesTable4(t *testing.T) {
	for _, tc := range []struct {
		prof *arm64.Profile
		want int64
	}{
		{arm64.ProfileCarmel(), 1423},
		{arm64.ProfileCortexA55(), 288},
	} {
		t.Run(tc.prof.Name, func(t *testing.T) {
			got := measureGuestSyscall(t, tc.prof)
			lo, hi := tc.want*85/100, tc.want*115/100
			if got < lo || got > hi {
				t.Errorf("guest syscall roundtrip = %d, want %d ±15%%", got, tc.want)
			}
		})
	}
}

// measureHypercall measures a conventional KVM VHE hypercall roundtrip
// (Table 4 row 5): emulated guest EL1 code executing HVC with the
// hypervisor doing a full world switch.
func measureHypercall(t *testing.T, prof *arm64.Profile) int64 {
	t.Helper()
	m := NewMachine(prof, 256<<20)
	vm, err := m.Hyp.NewVM("hvcguest", true)
	if err != nil {
		t.Fatal(err)
	}
	// Guest "kernel" code page, identity stage-2, stage-1 MMU off for
	// simplicity (EL1 code, flat addressing).
	code := arm64.NewAsm()
	for i := 0; i < 3; i++ {
		code.Emit(arm64.HVC(0))
	}
	code.Label("spin")
	code.B("spin")
	words, err := code.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	codePA := mem.PA(0x100000)
	if err := m.PM.Write(codePA, arm64.WordsToBytes(words)); err != nil {
		t.Fatal(err)
	}
	for off := mem.IPA(0); off < 0x4000; off += mem.PageSize {
		if err := vm.S2.Map(mem.IPA(codePA)+off, codePA+mem.PA(off), mem.S2APRead|mem.S2APWrite); err != nil {
			t.Fatal(err)
		}
	}
	c := m.CPU
	c.SetSys(arm64.SCTLREL1, 0) // stage-1 off
	c.SetSys(arm64.HCREL2, cpu.HCRVM)
	c.SetSys(arm64.VTTBREL2, vm.VTTBR())
	c.SetEL(arm64.EL1)
	c.PC = uint64(codePA)

	var cost int64
	for seen := 0; seen < 3; {
		exit, err := c.Run(1 << 20)
		if err != nil {
			t.Fatal(err)
		}
		if exit.Syndrome.Class != cpu.ECHVC {
			t.Fatalf("unexpected exit %+v", exit.Syndrome)
		}
		seen++
		var before int64
		measuring := seen == 3
		if measuring {
			before = c.Cycles - prof.ExcEntryTo[arm64.EL2]
		}
		m.Hyp.HandleEmptyHypercall()
		if err := c.ERET(); err != nil {
			t.Fatal(err)
		}
		if measuring {
			cost = c.Cycles - before
		}
	}
	return cost
}

func TestKVMHypercallCostMatchesTable4(t *testing.T) {
	for _, tc := range []struct {
		prof *arm64.Profile
		want int64
	}{
		{arm64.ProfileCarmel(), 28580},
		{arm64.ProfileCortexA55(), 1287},
	} {
		t.Run(tc.prof.Name, func(t *testing.T) {
			got := measureHypercall(t, tc.prof)
			lo, hi := tc.want*85/100, tc.want*115/100
			if got < lo || got > hi {
				t.Errorf("KVM VHE hypercall = %d, want %d ±15%%", got, tc.want)
			}
		})
	}
}

func TestRetainOptimizationSkipsUnchangedWrites(t *testing.T) {
	m := NewMachine(arm64.ProfileCarmel(), 64<<20)
	m.CPU.SetSys(arm64.HCREL2, 0x55)
	before := m.CPU.Cycles
	m.Hyp.WriteWorldReg(arm64.HCREL2, 0x55) // unchanged: free
	if m.CPU.Cycles != before {
		t.Error("retained write charged cycles")
	}
	m.Hyp.WriteWorldReg(arm64.HCREL2, 0x66) // changed: charged
	if m.CPU.Cycles-before < 1550 {
		t.Errorf("HCR write undercharged: %d", m.CPU.Cycles-before)
	}

	m.Hyp.Opts.DisableRetainRegs = true
	before = m.CPU.Cycles
	m.Hyp.WriteWorldReg(arm64.HCREL2, 0x66) // unchanged but ablated: charged
	if m.CPU.Cycles == before {
		t.Error("ablation did not force the write")
	}
}

func TestPartialSwitchCheaperThanFull(t *testing.T) {
	m := NewMachine(arm64.ProfileCarmel(), 64<<20)
	before := m.CPU.Cycles
	m.Hyp.ChargePartialEL1Switch()
	partial := m.CPU.Cycles - before

	m.Hyp.Opts.DisablePartialSwitch = true
	before = m.CPU.Cycles
	m.Hyp.ChargePartialEL1Switch()
	full := m.CPU.Cycles - before

	if partial >= full {
		t.Errorf("partial switch (%d) not cheaper than full (%d)", partial, full)
	}
}

func TestSharedPtRegsHalvesTransfer(t *testing.T) {
	m := NewMachine(arm64.ProfileCarmel(), 64<<20)
	before := m.CPU.Cycles
	m.Hyp.ChargeGPRTransfer()
	shared := m.CPU.Cycles - before

	m.Hyp.Opts.DisableSharedPtRegs = true
	before = m.CPU.Cycles
	m.Hyp.ChargeGPRTransfer()
	conventional := m.CPU.Cycles - before
	if conventional != 2*shared {
		t.Errorf("conventional (%d) != 2x shared (%d)", conventional, shared)
	}
}

func TestVMLifecycle(t *testing.T) {
	m := NewMachine(arm64.ProfileCortexA55(), 64<<20)
	vm, err := m.Hyp.NewVM("v", false)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := m.Hyp.VMByID(vm.VMID); !ok || got != vm {
		t.Error("VMByID lookup failed")
	}
	m.Hyp.DestroyVM(vm)
	if _, ok := m.Hyp.VMByID(vm.VMID); ok {
		t.Error("VM survived destroy")
	}
}

func TestGuestVMRunsMultipleProcesses(t *testing.T) {
	m := NewMachine(arm64.ProfileCortexA55(), 256<<20)
	vm, err := m.NewGuestVM("guest")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		a := arm64.NewAsm()
		a.MovImm(0, uint64(10+i))
		a.MovImm(8, kernel.SysExit)
		a.Emit(arm64.SVC(0))
		words, err := a.Assemble()
		if err != nil {
			t.Fatal(err)
		}
		p, err := vm.Kernel.CreateProcess("gp", kernel.Program{Text: words})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.RunGuestProcess(vm, p, 10000); err != nil {
			t.Fatal(err)
		}
		if p.ExitCode != 10+i {
			t.Errorf("process %d exit = %d", i, p.ExitCode)
		}
	}
}

func TestRunGuestProcessWithoutKernelFails(t *testing.T) {
	m := NewMachine(arm64.ProfileCortexA55(), 64<<20)
	vm, err := m.Hyp.NewVM("bare", true)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RunGuestProcess(vm, nil, 10); err == nil {
		t.Error("kernel-less VM accepted a process")
	}
}

func TestHypercallRetainsGuestWorld(t *testing.T) {
	// HandleEmptyHypercall must leave HCR/VTTBR at their guest values
	// (the roundtrip restores them).
	m := NewMachine(arm64.ProfileCarmel(), 64<<20)
	m.CPU.SetSys(arm64.HCREL2, cpu.HCRVM|cpu.HCRIMO)
	m.CPU.SetSys(arm64.VTTBREL2, cpu.MakeVTTBR(0x8000, 7))
	m.Hyp.HandleEmptyHypercall()
	if got := m.CPU.Sys(arm64.HCREL2); got != cpu.HCRVM|cpu.HCRIMO {
		t.Errorf("HCR after hypercall = %#x", got)
	}
	if got := cpu.VTTBRVMID(m.CPU.Sys(arm64.VTTBREL2)); got != 7 {
		t.Errorf("VMID after hypercall = %d", got)
	}
	if m.Hyp.Hypercalls != 1 {
		t.Errorf("hypercall count = %d", m.Hyp.Hypercalls)
	}
}

func TestStage2FaultCountsAndPopulates(t *testing.T) {
	m := NewMachine(arm64.ProfileCortexA55(), 256<<20)
	vm, err := m.NewGuestVM("g")
	if err != nil {
		t.Fatal(err)
	}
	a := arm64.NewAsm()
	a.MovImm(1, uint64(kernel.DataBase))
	a.MovImm(2, 1)
	a.Emit(arm64.STRImm(2, 1, 0, 3))
	a.MovImm(8, kernel.SysExit)
	a.Emit(arm64.SVC(0))
	words, _ := a.Assemble()
	p, err := vm.Kernel.CreateProcess("g", kernel.Program{Text: words})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RunGuestProcess(vm, p, 10000); err != nil {
		t.Fatal(err)
	}
	if m.Hyp.Stage2Faults == 0 {
		t.Error("no stage-2 faults recorded")
	}
	// The populated mappings must be identity.
	res, err := vm.S2.Walk(0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found && res.PA != 0x1000 {
		t.Errorf("stage-2 not identity: %v", res.PA)
	}
}
