package hyp

import (
	"fmt"

	"lightzone/internal/arm64"
	"lightzone/internal/cpu"
	"lightzone/internal/kernel"
	"lightzone/internal/mem"
)

// Machine assembles one simulated platform: physical memory, a vCPU, the
// hypervisor, and a VHE host kernel at EL2 — the environment the paper's
// host-side experiments run on. Guest experiments add a VM with a guest
// kernel at EL1 via NewGuestVM.
type Machine struct {
	Prof *arm64.Profile
	PM   *mem.PhysMem
	CPU  *cpu.VCPU
	Hyp  *Hypervisor
	Host *kernel.Kernel
}

// NewMachine boots a platform with the given cost profile and physical
// memory size.
func NewMachine(prof *arm64.Profile, memSize uint64) *Machine {
	pm := mem.NewPhysMem(memSize)
	c := cpu.New(prof, pm)
	h := NewHypervisor(prof, pm, c)
	host := kernel.NewKernel("host", prof, pm, c, arm64.EL2)
	host.Hyp = h
	return &Machine{Prof: prof, PM: pm, CPU: c, Hyp: h, Host: host}
}

// NewGuestVM creates a QEMU/KVM-style full guest: a VM with lazily
// populated identity stage-2 and a functional guest kernel at EL1.
func (m *Machine) NewGuestVM(name string) (*VM, error) {
	vm, err := m.Hyp.NewVM(name, true)
	if err != nil {
		return nil, err
	}
	gk := kernel.NewKernel(name+"-kernel", m.Prof, m.PM, m.CPU, arm64.EL1)
	gk.Hyp = m.Hyp
	vm.Kernel = gk
	return vm, nil
}

// RunHostProcess runs p as a VHE host process (EL0 under the EL2 host
// kernel) to completion.
func (m *Machine) RunHostProcess(p *kernel.Process, maxTraps int64) error {
	return m.Host.RunProcess(p, maxTraps)
}

// RunGuestProcess runs p as a process of vm's guest kernel. The VM's
// stage-2 and VMID are installed (through the retain filter) before entry.
func (m *Machine) RunGuestProcess(vm *VM, p *kernel.Process, maxTraps int64) error {
	if vm.Kernel == nil {
		return fmt.Errorf("vm %s has no guest kernel", vm.Name)
	}
	m.Hyp.WriteWorldReg(arm64.HCREL2, cpu.HCRVM)
	m.Hyp.WriteWorldReg(arm64.VTTBREL2, vm.VTTBR())
	return vm.Kernel.RunProcess(p, maxTraps)
}
