// Package hyp implements the hypervisor substrate: virtual machines with
// stage-2 translation, the VHE host machine assembly, conventional
// KVM-style world switches with full register-context cost accounting, and
// the hook points the LightZone Lowvisor (internal/core) plugs into for
// software nested virtualization (§5.2.2).
package hyp

import (
	"fmt"

	"lightzone/internal/arm64"
	"lightzone/internal/cpu"
	"lightzone/internal/kernel"
	"lightzone/internal/mem"
)

// Lowvisor is the LightZone hypervisor patch (§4.1.1). When installed it
// gets first claim on EL2 exits from guest worlds, implementing trap
// forwarding between guest LightZone processes and their guest kernels.
type Lowvisor interface {
	HandleEL2Exit(h *Hypervisor, k *kernel.Kernel, t *kernel.Thread, exit cpu.Exit) (handled bool, err error)
}

// Opts carries the trap-optimization ablation switches of §5.2. All false
// means "fully optimized" (the paper's configuration).
type Opts struct {
	// DisableRetainRegs forces HCR_EL2/VTTBR_EL2 writes on every world
	// entry instead of retaining unchanged values (§5.2.1).
	DisableRetainRegs bool
	// DisableSharedPtRegs forces the conventional double context save
	// instead of the shared pt_regs page (§5.2.2, first optimization).
	DisableSharedPtRegs bool
	// DisablePartialSwitch makes the Lowvisor switch the full
	// conventional EL1 context instead of the reduced LightZone set
	// (§5.2.2, second optimization).
	DisablePartialSwitch bool
}

// Hypervisor owns VMs and the EL2 state of one physical machine.
type Hypervisor struct {
	Prof *arm64.Profile
	PM   *mem.PhysMem
	CPU  *cpu.VCPU

	Opts Opts

	// LZ is the installed Lowvisor (nil without LightZone guest support).
	LZ Lowvisor

	vms      map[uint16]*VM
	nextVMID uint16

	// Stats.
	Stage2Faults int64
	Hypercalls   int64
}

// VM is a virtual machine: a VMID, a stage-2 table, and (for full guests)
// a functional guest kernel. LightZone per-process VMs have no kernel of
// their own — their "kernel" is the host/guest kernel outside (§5.1).
type VM struct {
	VMID   uint16
	Name   string
	S2     *mem.Stage2
	Kernel *kernel.Kernel

	// IdentityS2 marks ordinary guest VMs whose stage-2 is populated
	// lazily as an identity mapping (see DESIGN.md deviations). LightZone
	// process VMs use explicit fake-physical mappings instead.
	IdentityS2 bool
}

// VTTBR returns the architectural VTTBR_EL2 value for the VM.
func (vm *VM) VTTBR() uint64 {
	return cpu.MakeVTTBR(uint64(vm.S2.Root()), vm.VMID)
}

// NewHypervisor creates the EL2 layer.
func NewHypervisor(prof *arm64.Profile, pm *mem.PhysMem, c *cpu.VCPU) *Hypervisor {
	return &Hypervisor{
		Prof:     prof,
		PM:       pm,
		CPU:      c,
		vms:      make(map[uint16]*VM),
		nextVMID: 1,
	}
}

// NewVM allocates a VM with an empty stage-2 table.
func (h *Hypervisor) NewVM(name string, identity bool) (*VM, error) {
	s2, err := mem.NewStage2(h.PM, h.nextVMID)
	if err != nil {
		return nil, fmt.Errorf("vm %s: %w", name, err)
	}
	vm := &VM{VMID: h.nextVMID, Name: name, S2: s2, IdentityS2: identity}
	h.nextVMID++
	h.vms[vm.VMID] = vm
	return vm, nil
}

// VMByID looks up a VM.
func (h *Hypervisor) VMByID(vmid uint16) (*VM, bool) {
	vm, ok := h.vms[vmid]
	return vm, ok
}

// DestroyVM releases a VM's stage-2 tables.
func (h *Hypervisor) DestroyVM(vm *VM) {
	vm.S2.Free()
	delete(h.vms, vm.VMID)
}

var _ kernel.HypBackend = (*Hypervisor)(nil)

// HandleEL2Exit processes an exit that reached EL2 while a guest kernel's
// process (or a LightZone process) was running: Lowvisor forwarding first,
// then stage-2 demand population for identity VMs.
func (h *Hypervisor) HandleEL2Exit(k *kernel.Kernel, t *kernel.Thread, exit cpu.Exit) (bool, error) {
	if h.LZ != nil {
		handled, err := h.LZ.HandleEL2Exit(h, k, t, exit)
		if err != nil || handled {
			return handled, err
		}
	}
	s := exit.Syndrome
	if s.Stage == 2 && s.Kind == mem.FaultTranslation {
		vm, ok := h.vms[cpu.VTTBRVMID(h.CPU.Sys(arm64.VTTBREL2))]
		if !ok {
			return false, fmt.Errorf("stage-2 fault with unknown VMID")
		}
		if !vm.IdentityS2 {
			return false, nil // LightZone VMs handle their own stage-2
		}
		h.Stage2Faults++
		h.CPU.Charge(h.Prof.HypDispatchCost / 4) // abbreviated fault path
		base := mem.IPA(uint64(s.IPA) &^ uint64(mem.PageMask))
		if err := vm.S2.Map(base, mem.PA(base), mem.S2APRead|mem.S2APWrite); err != nil {
			return false, err
		}
		return true, h.CPU.ERET()
	}
	return false, nil
}
