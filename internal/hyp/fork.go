package hyp

import (
	"lightzone/internal/cpu"
	"lightzone/internal/mem"
)

// Fork clones the EL2 layer for a forked machine running on pm2/cpu2. VM
// records are duplicated with their stage-2 tables re-pointed at the
// child's physical memory (the tables themselves are copy-on-write shared
// frames); guest kernels are attached by Machine.Fork, and the Lowvisor by
// core.InstallLowvisor, since both close over state this package does not
// own.
func (h *Hypervisor) Fork(pm2 *mem.PhysMem, cpu2 *cpu.VCPU) *Hypervisor {
	h2 := &Hypervisor{
		Prof:         h.Prof,
		PM:           pm2,
		CPU:          cpu2,
		Opts:         h.Opts,
		vms:          make(map[uint16]*VM, len(h.vms)),
		nextVMID:     h.nextVMID,
		Stage2Faults: h.Stage2Faults,
		Hypercalls:   h.Hypercalls,
	}
	for vmid, vm := range h.vms {
		h2.vms[vmid] = &VM{
			VMID:       vm.VMID,
			Name:       vm.Name,
			S2:         vm.S2.CloneFor(pm2),
			IdentityS2: vm.IdentityS2,
		}
	}
	return h2
}

// Fork clones the whole platform in O(dirty pages): physical memory forks
// copy-on-write, the vCPU transfers its architectural state exactly, and
// the hypervisor, host kernel, and every guest kernel are re-assembled
// around the child's memory. Module wiring (the LightZone module chain and
// the Lowvisor) is the caller's job — those layers clone their own state.
func (m *Machine) Fork() *Machine {
	pm2 := m.PM.Fork()
	cpu2 := m.CPU.Fork(pm2)
	h2 := m.Hyp.Fork(pm2, cpu2)
	host2 := m.Host.Fork(pm2, cpu2, h2)
	for vmid, vm := range m.Hyp.vms {
		if vm.Kernel != nil {
			h2.vms[vmid].Kernel = vm.Kernel.Fork(pm2, cpu2, h2)
		}
	}
	return &Machine{Prof: m.Prof, PM: pm2, CPU: cpu2, Hyp: h2, Host: host2}
}
