package hyp

import (
	"testing"

	"lightzone/internal/arm64"
	"lightzone/internal/cpu"
	"lightzone/internal/kernel"
)

// switchListCost is the charged MRS+MSR cost of switching a register list.
func switchListCost(prof *arm64.Profile, regs []arm64.SysReg) int64 {
	var n int64
	for _, r := range regs {
		n += prof.SysRegReadCost(r) + prof.SysRegWriteCost(r)
	}
	return n
}

// TestWriteWorldRegRetainFilter checks the §5.2.1 retain optimisation at
// the register level: rewriting an unchanged EL2 control register costs
// nothing, a changed value pays the MSR, and the ablation switch restores
// conventional always-write behaviour.
func TestWriteWorldRegRetainFilter(t *testing.T) {
	cases := []struct {
		name          string
		disableRetain bool
		initial, next uint64
		wantWrite     bool
	}{
		{"unchanged value is retained", false, cpu.HCRVM, cpu.HCRVM, false},
		{"changed value is written", false, cpu.HCRVM, cpu.HCRVM ^ 1, true},
		{"zero to zero is retained", false, 0, 0, false},
		{"ablation writes unchanged value", true, cpu.HCRVM, cpu.HCRVM, true},
		{"ablation writes changed value", true, 0, cpu.HCRVM, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := NewMachine(arm64.ProfileCortexA55(), 64<<20)
			m.Hyp.Opts.DisableRetainRegs = tc.disableRetain
			m.CPU.SetSys(arm64.HCREL2, tc.initial)
			before := m.CPU.Cycles
			m.Hyp.WriteWorldReg(arm64.HCREL2, tc.next)
			charged := m.CPU.Cycles - before
			if got := m.CPU.Sys(arm64.HCREL2); got != tc.next {
				t.Errorf("HCR_EL2 = %#x after WriteWorldReg, want %#x", got, tc.next)
			}
			want := int64(0)
			if tc.wantWrite {
				want = m.Prof.SysRegWriteCost(arm64.HCREL2)
			}
			if charged != want {
				t.Errorf("charged %d cycles, want %d", charged, want)
			}
		})
	}
}

// guestExitProgram is a minimal guest process: a few syscalls, then exit.
func guestExitProgram(t *testing.T, vm *VM, name string) *kernel.Process {
	t.Helper()
	a := arm64.NewAsm()
	for i := 0; i < 2; i++ {
		a.MovImm(8, kernel.SysGetpid)
		a.Emit(arm64.SVC(0))
	}
	a.MovImm(0, 0)
	a.MovImm(8, kernel.SysExit)
	a.Emit(arm64.SVC(0))
	words, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	p, err := vm.Kernel.CreateProcess(name, kernel.Program{Text: words})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestRetainFilterAcrossGuestRuns checks retention end to end: re-entering
// the same VM must not re-write HCR_EL2/VTTBR_EL2, so back-to-back guest
// runs are strictly cheaper with the filter than with the ablation that
// rewrites the world registers on every entry.
func TestRetainFilterAcrossGuestRuns(t *testing.T) {
	run := func(disableRetain bool) int64 {
		m := NewMachine(arm64.ProfileCortexA55(), 128<<20)
		m.Hyp.Opts.DisableRetainRegs = disableRetain
		vm, err := m.NewGuestVM("guest")
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			p := guestExitProgram(t, vm, "p")
			if err := m.RunGuestProcess(vm, p, 100000); err != nil {
				t.Fatal(err)
			}
			if p.Killed {
				t.Fatalf("killed: %s", p.KillMsg)
			}
		}
		return m.CPU.Cycles
	}
	retained, conventional := run(false), run(true)
	if retained >= conventional {
		t.Errorf("retain filter saved nothing: %d cycles with filter, %d without", retained, conventional)
	}
	// Only the first entry installs the world registers; the two re-entries
	// each skip one HCR and one VTTBR write.
	prof := arm64.ProfileCortexA55()
	saved := 2 * (prof.SysRegWriteCost(arm64.HCREL2) + prof.SysRegWriteCost(arm64.VTTBREL2))
	if got := conventional - retained; got != saved {
		t.Errorf("retention saved %d cycles across re-entries, want %d", got, saved)
	}
}

// TestChargePartialEL1Switch checks the §5.2.2 reduced register switch: the
// partial list must be charged exactly, be cheaper than the conventional
// full-context switch, and degenerate to it under the ablation.
func TestChargePartialEL1Switch(t *testing.T) {
	for _, prof := range []*arm64.Profile{arm64.ProfileCortexA55(), arm64.ProfileCarmel()} {
		t.Run(prof.Name, func(t *testing.T) {
			cases := []struct {
				name           string
				disablePartial bool
				regs           []arm64.SysReg
			}{
				{"partial list", false, arm64.LightZonePartialRegs},
				{"ablation falls back to full list", true, arm64.GuestContextRegs},
			}
			var costs [2]int64
			for i, tc := range cases {
				m := NewMachine(prof, 64<<20)
				m.Hyp.Opts.DisablePartialSwitch = tc.disablePartial
				before := m.CPU.Cycles
				m.Hyp.ChargePartialEL1Switch()
				costs[i] = m.CPU.Cycles - before
				if want := switchListCost(prof, tc.regs); costs[i] != want {
					t.Errorf("%s: charged %d cycles, want %d", tc.name, costs[i], want)
				}
			}
			if costs[0] >= costs[1] {
				t.Errorf("partial switch (%d) not cheaper than full switch (%d)", costs[0], costs[1])
			}
		})
	}
}

// TestChargeGuestContextTransfer pins the conventional save/load and GPR
// transfer costs the hypercall path is built from.
func TestChargeGuestContextTransfer(t *testing.T) {
	prof := arm64.ProfileCortexA55()
	ctxRegs := int64(len(arm64.GuestContextRegs))
	var wantSave, wantLoad int64
	for _, r := range arm64.GuestContextRegs {
		wantSave += prof.SysRegReadCost(r)
		wantLoad += prof.SysRegWriteCost(r)
	}
	wantSave += ctxRegs * prof.MemAccessCost
	wantLoad += ctxRegs * prof.MemAccessCost

	cases := []struct {
		name   string
		charge func(h *Hypervisor)
		opts   Opts
		want   int64
	}{
		{"context save", (*Hypervisor).ChargeGuestContextSave, Opts{}, wantSave},
		{"context load", (*Hypervisor).ChargeGuestContextLoad, Opts{}, wantLoad},
		{"GPR transfer, shared pt_regs", (*Hypervisor).ChargeGPRTransfer, Opts{}, 16 * prof.MemAccessCost},
		{"GPR transfer, conventional double pass", (*Hypervisor).ChargeGPRTransfer,
			Opts{DisableSharedPtRegs: true}, 32 * prof.MemAccessCost},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := NewMachine(prof, 64<<20)
			m.Hyp.Opts = tc.opts
			before := m.CPU.Cycles
			tc.charge(m.Hyp)
			if got := m.CPU.Cycles - before; got != tc.want {
				t.Errorf("charged %d cycles, want %d", got, tc.want)
			}
		})
	}
}

// TestHandleEmptyHypercallPreservesWorld checks the KVM-style hypercall
// body: the counter moves, the guest's HCR/VTTBR survive the host round
// trip, and the cost is deterministic across invocations.
func TestHandleEmptyHypercallPreservesWorld(t *testing.T) {
	m := NewMachine(arm64.ProfileCortexA55(), 64<<20)
	hcr, vttbr := uint64(cpu.HCRVM|1<<3), uint64(0x0001_0000_4000_0000)
	m.CPU.SetSys(arm64.HCREL2, hcr)
	m.CPU.SetSys(arm64.VTTBREL2, vttbr)

	var costs [2]int64
	for i := range costs {
		before := m.CPU.Cycles
		m.Hyp.HandleEmptyHypercall()
		costs[i] = m.CPU.Cycles - before
	}
	if m.Hyp.Hypercalls != 2 {
		t.Errorf("Hypercalls = %d, want 2", m.Hyp.Hypercalls)
	}
	if got := m.CPU.Sys(arm64.HCREL2); got != hcr {
		t.Errorf("HCR_EL2 = %#x after hypercall, want guest value %#x", got, hcr)
	}
	if got := m.CPU.Sys(arm64.VTTBREL2); got != vttbr {
		t.Errorf("VTTBR_EL2 = %#x after hypercall, want guest value %#x", got, vttbr)
	}
	if costs[0] != costs[1] {
		t.Errorf("hypercall cost not deterministic: %d then %d cycles", costs[0], costs[1])
	}
	if costs[0] <= switchListCost(m.Prof, arm64.GuestContextRegs) {
		t.Errorf("hypercall cost %d does not cover a full context switch (%d)",
			costs[0], switchListCost(m.Prof, arm64.GuestContextRegs))
	}
}

// TestGuestSignalDeliveryEndToEnd runs the sigaction/kill/sigreturn round
// trip inside an EL1 guest: LightZone's signal-context patch must work for
// guest kernels driven through the hypervisor, not just the VHE host.
func TestGuestSignalDeliveryEndToEnd(t *testing.T) {
	m := NewMachine(arm64.ProfileCortexA55(), 128<<20)
	vm, err := m.NewGuestVM("guest")
	if err != nil {
		t.Fatal(err)
	}
	a := arm64.NewAsm()
	a.MovImm(0, kernel.SIGUSR1)
	a.ADR(1, "handler")
	a.MovImm(8, kernel.SysSigaction)
	a.Emit(arm64.SVC(0))
	a.MovImm(8, kernel.SysGetpid)
	a.Emit(arm64.SVC(0)) // x0 = own pid
	a.MovImm(1, kernel.SIGUSR1)
	a.MovImm(8, kernel.SysKill)
	a.Emit(arm64.SVC(0))
	a.MovImm(9, uint64(kernel.DataBase))
	a.Emit(arm64.LDRImm(0, 9, 0, 3))
	a.MovImm(8, kernel.SysExit)
	a.Emit(arm64.SVC(0))
	a.Label("handler")
	a.MovImm(9, uint64(kernel.DataBase))
	a.Emit(arm64.STRImm(0, 9, 0, 3))
	a.MovImm(8, kernel.SysSigreturn)
	a.Emit(arm64.SVC(0))
	words, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	p, err := vm.Kernel.CreateProcess("sig", kernel.Program{Text: words, Data: make([]byte, 8)})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RunGuestProcess(vm, p, 100000); err != nil {
		t.Fatal(err)
	}
	if p.Killed {
		t.Fatalf("killed: %s", p.KillMsg)
	}
	if p.ExitCode != kernel.SIGUSR1 {
		t.Errorf("exit code = %d, want %d (guest handler must observe x0=signo)", p.ExitCode, kernel.SIGUSR1)
	}
}
