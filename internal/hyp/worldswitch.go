package hyp

import (
	"lightzone/internal/arm64"
)

// ChargeGuestContextSave models saving the full conventional EL1 guest
// context (the register list KVM switches on every world switch).
func (h *Hypervisor) ChargeGuestContextSave() {
	for _, r := range arm64.GuestContextRegs {
		h.CPU.Charge(h.Prof.SysRegReadCost(r))
	}
	h.CPU.Charge(int64(len(arm64.GuestContextRegs)) * h.Prof.MemAccessCost)
}

// ChargeGuestContextLoad models restoring the full conventional EL1 guest
// context.
func (h *Hypervisor) ChargeGuestContextLoad() {
	for _, r := range arm64.GuestContextRegs {
		h.CPU.Charge(h.Prof.SysRegWriteCost(r))
	}
	h.CPU.Charge(int64(len(arm64.GuestContextRegs)) * h.Prof.MemAccessCost)
}

// ChargePartialEL1Switch models the Lowvisor's reduced register switch
// between a guest kernel and its guest LightZone process (§5.2.2): only
// the registers whose values differ between the two virtual environments.
// With DisablePartialSwitch it degenerates to the conventional full list.
func (h *Hypervisor) ChargePartialEL1Switch() {
	regs := arm64.LightZonePartialRegs
	if h.Opts.DisablePartialSwitch {
		regs = arm64.GuestContextRegs
	}
	for _, r := range regs {
		h.CPU.Charge(h.Prof.SysRegReadCost(r))
		h.CPU.Charge(h.Prof.SysRegWriteCost(r))
	}
}

// ChargeGPRTransfer models moving the 31 general-purpose registers between
// hardware and a pt_regs area. With the shared pt_regs page (§5.2.2) the
// Lowvisor writes directly into the page the guest kernel reads, saving one
// full pass; conventionally the context is saved by the hypervisor and then
// saved again by the guest kernel.
func (h *Hypervisor) ChargeGPRTransfer() {
	passes := int64(1)
	if h.Opts.DisableSharedPtRegs {
		passes = 2
	}
	h.CPU.Charge(passes * 16 * h.Prof.MemAccessCost)
}

// WriteWorldReg writes an EL2 control register through the retain filter
// (§5.2.1): unchanged values are not rewritten unless the ablation switch
// forces conventional behaviour.
func (h *Hypervisor) WriteWorldReg(r arm64.SysReg, v uint64) {
	if !h.Opts.DisableRetainRegs && h.CPU.Sys(r) == v {
		return
	}
	h.CPU.WriteSysReg(r, v)
}

// HandleEmptyHypercall models a conventional KVM VHE hypercall roundtrip
// body (the Table 4 "KVM Virtualization Host Extensions hypercall" row):
// full guest context save, HCR switch to host, dispatch, HCR switch back,
// full guest context load, plus the GPR transfers. Exception entry and the
// final ERET are charged by the caller's trap machinery.
func (h *Hypervisor) HandleEmptyHypercall() {
	h.Hypercalls++
	c := h.CPU
	hcrGuest := c.Sys(arm64.HCREL2)
	vttbrGuest := c.Sys(arm64.VTTBREL2)
	el2Config := []arm64.SysReg{arm64.CPTREL2, arm64.MDCREL2, arm64.CNTHCTLEL2}

	// __deactivate_traps / __deactivate_vm: host values installed.
	c.Charge(16 * h.Prof.MemAccessCost) // __guest_exit: save guest GPRs
	h.ChargeGuestContextSave()
	c.WriteSysReg(arm64.HCREL2, hcrGuest&^0x1)
	c.WriteSysReg(arm64.VTTBREL2, 0)
	for _, r := range el2Config {
		c.WriteSysReg(r, c.Sys(r))
	}
	c.Charge(h.Prof.HypDispatchCost)
	// __activate_traps / __activate_vm: guest values reinstalled.
	c.WriteSysReg(arm64.HCREL2, hcrGuest)
	c.WriteSysReg(arm64.VTTBREL2, vttbrGuest)
	for _, r := range el2Config {
		c.WriteSysReg(r, c.Sys(r))
	}
	h.ChargeGuestContextLoad()
	c.Charge(16 * h.Prof.MemAccessCost) // __guest_enter: restore guest GPRs
	c.SetSys(arm64.HCREL2, hcrGuest)
}
