package mem

// ViewStage1 wraps an existing stage-1 table root (e.g. read from a TTBR)
// for walking. The view shares the underlying tables; mapping through a
// view is permitted, but TableBytes only counts frames allocated via it.
func ViewStage1(pm *PhysMem, root PA) *Stage1 {
	return &Stage1{pm: pm, root: root}
}

// ViewStage2 wraps an existing stage-2 table root (e.g. read from
// VTTBR_EL2) for walking.
func ViewStage2(pm *PhysMem, root PA) *Stage2 {
	return &Stage2{pm: pm, root: root}
}
