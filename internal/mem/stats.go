package mem

// Stats aggregates translation- and decode-cache counters for one vCPU.
// The TLB and the cpu-layer decoded-block cache share a single instance so
// tools (lzinspect, trace summaries, the public Stats API) can report the
// whole fetch pipeline from one place. All counters are host-side
// observability only; they never feed back into emulated cycle accounting.
type Stats struct {
	// TLB translation cache.
	TLBHits   uint64
	TLBMisses uint64

	// Decoded-basic-block cache (internal/cpu): instructions replayed from
	// predecoded blocks vs. fetched and decoded from memory.
	CodeHits   uint64
	CodeMisses uint64
	// CodeBlocks counts completed straight-line blocks inserted into the
	// cache; CodeStale counts cached blocks rejected by an epoch check.
	CodeBlocks uint64
	CodeStale  uint64
	// CodeInvalidations counts code-generation epoch bumps (page-granular
	// and wholesale combined).
	CodeInvalidations uint64
}

// Reset zeroes every counter.
func (s *Stats) Reset() { *s = Stats{} }

// CodeEpochs tracks per-page code-generation epochs. Any event that can
// change the bytes reachable at a virtual page — an emulated store, a PTE
// write during break-before-make, an lz_prot permission flip, a stage-2
// remap — bumps the page's epoch. The decoded-block cache snapshots the
// epoch when it builds a block and refuses to replay a block whose page has
// since moved on, so stale (pre-rewrite, unsanitized) words can never
// execute from the cache.
//
// Epochs are keyed by virtual page alone, not (VMID, ASID): a bump
// over-invalidates across address spaces that share the page number, which
// costs only a re-decode and keeps the bump path callable from layers (page
// tables, stage-2) that do not know the executing context.
type CodeEpochs struct {
	global  uint64            // wholesale invalidations (TLBI ALLE1-style)
	pages   map[uint64]uint64 // 4KB page index -> epoch
	regions map[uint64]uint64 // 2MB region index -> epoch

	// gen advances on every bump of any granularity. Snapshot needs two map
	// probes, which is too slow for a per-fetch gate; gen gives host-side
	// micro-TLBs a single-compare "has any code epoch moved" check that is
	// conservative (a bump anywhere drops all fastpath entries) but exact in
	// the only direction that matters for soundness.
	gen uint64

	// OnBump, when set, observes every epoch bump: the 4KB page's VA for a
	// page-granular bump, or wholesale==true for a global one. The trace
	// cache hooks here to eagerly drop stitched traces whose member pages
	// were invalidated; the hook must be host-side only (no stats, no
	// cycles).
	OnBump func(va VA, wholesale bool)

	stats *Stats
}

// NewCodeEpochs creates an epoch tracker reporting into stats (may be nil).
// The epoch maps are created on the first bump: machines that never rewrite
// code (and freshly forked children) never allocate them.
func NewCodeEpochs(stats *Stats) *CodeEpochs {
	return &CodeEpochs{stats: stats}
}

// Snapshot returns the current validity token for the 4KB page index
// (VA >> PageShift). Every bump that can affect the page strictly increases
// the token, so a block is valid iff its recorded snapshot still matches.
func (e *CodeEpochs) Snapshot(page uint64) uint64 {
	return e.global + e.pages[page] + e.regions[page>>(HugePageShift-PageShift)]
}

// Gen returns the epoch generation (see the gen field). Observation only.
func (e *CodeEpochs) Gen() uint64 { return e.gen }

// BumpVA invalidates code cached on va's 4KB page and on the 2MB region
// containing it (a single invalidation may cover a huge mapping whose
// interior pages hold cached blocks).
func (e *CodeEpochs) BumpVA(va VA) {
	e.gen++
	if e.pages == nil {
		e.pages = make(map[uint64]uint64)
		e.regions = make(map[uint64]uint64)
	}
	page := uint64(va) >> PageShift
	e.pages[page]++
	e.regions[page>>(HugePageShift-PageShift)]++
	if e.stats != nil {
		e.stats.CodeInvalidations++
	}
	if e.OnBump != nil {
		e.OnBump(va, false)
	}
}

// BumpAll invalidates every cached block (wholesale TLB invalidations,
// ASID/VMID recycling).
func (e *CodeEpochs) BumpAll() {
	e.gen++
	e.global++
	if e.stats != nil {
		e.stats.CodeInvalidations++
	}
	if e.OnBump != nil {
		e.OnBump(0, true)
	}
}
