package mem

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
)

// ErrOutOfFrames is returned when the frame allocator is exhausted.
var ErrOutOfFrames = errors.New("physical memory exhausted")

// PhysMem is sparse simulated physical memory with a frame allocator.
// Frames are materialized on first touch, so multi-gigabyte address spaces
// cost only what is actually used.
// frameChunkShift groups frames into chunks of 512 (one 2MB span) so the
// frame table is a two-level array instead of a hash map: instruction
// fetches and page-table walks resolve frames with two indexed loads and no
// hashing, while sparse chunks keep memory proportional to what is touched.
const frameChunkShift = 9

type frameChunk [1 << frameChunkShift]*[PageSize]byte

// cowChunk parallels frameChunk with per-frame share counters. A non-nil
// cell means the frame's storage is (or was) shared with a fork relative;
// the cell's value is the number of PhysMems whose frame table still points
// at that storage. Cells are shared across the fork family and atomic so
// forked machines running on different goroutines can break sharing
// concurrently.
type cowChunk [1 << frameChunkShift]*atomic.Int64

type PhysMem struct {
	chunks    []*frameChunk
	numFrames uint64
	next      uint64
	freeList  []uint64
	allocated uint64
	// pool carves frames out of batch allocations (see newFrame): first
	// touch costs one host allocation per frameBatch pages instead of one
	// per page, which matters when fleet sweeps materialize tens of
	// thousands of frames.
	pool [][PageSize]byte

	// COW fork state (zygote snapshot/fork, DESIGN.md §14). These fields
	// are confined to this file by tools/lint: the copy-on-write soundness
	// argument — every mutation funnels through frameForWrite, refcounts
	// account every holder — is an audit of phys.go alone.
	cowShares []*cowChunk // per-frame share cells, parallel to chunks
	// cowChunkShared[ci] marks the chunk and share arrays at ci as shared
	// with a fork relative: Fork hands out the array pointers instead of
	// copying 4KB of metadata per live chunk, and every slot store goes
	// through unshare to privatize the arrays first. Relatives only ever
	// read shared arrays, so children may run concurrently.
	cowChunkShared []bool
	cowParent      *PhysMem // the PhysMem this one was forked from (nil at cold boot)
	cowForks       uint64   // number of children forked off this PhysMem
	cowCopies      uint64   // frames privatized by copy-on-write (the dirty-page count)
}

// frameBatch is how many frames one pool allocation covers (64KB batches).
const frameBatch = 16

// newFrame returns a zeroed frame from the batch pool. Batches come zeroed
// from the allocator, and frames are never returned to the pool (freed
// frames stay in place and are re-zeroed by AllocFrame on reuse), so every
// frame handed out is zero.
func (m *PhysMem) newFrame() *[PageSize]byte {
	if len(m.pool) == 0 {
		m.pool = make([][PageSize]byte, frameBatch)
	}
	f := &m.pool[0]
	m.pool = m.pool[1:]
	return f
}

// NewPhysMem creates physical memory of size bytes (rounded down to whole
// frames).
func NewPhysMem(size uint64) *PhysMem {
	return &PhysMem{numFrames: size >> PageShift}
}

// chunkFor returns the chunk holding frame index idx, materializing it (and
// growing the chunk table, which is sized to the highest chunk ever touched
// rather than the full address space) on first use. Keeping the table dense
// only up to the live span is what makes Fork O(materialized frames): a 4GB
// machine that touches one 2MB span forks a one-entry table, not 2048.
func (m *PhysMem) chunkFor(idx uint64) *frameChunk {
	ci := idx >> frameChunkShift
	if ci >= uint64(len(m.chunks)) {
		m.chunks = append(m.chunks, make([]*frameChunk, ci+1-uint64(len(m.chunks)))...)
	}
	ch := m.chunks[ci]
	if ch == nil {
		ch = new(frameChunk)
		m.chunks[ci] = ch
	}
	return ch
}

// Size returns the modelled physical memory size in bytes.
func (m *PhysMem) Size() uint64 { return m.numFrames << PageShift }

// AllocatedBytes returns the bytes currently handed out by the allocator.
func (m *PhysMem) AllocatedBytes() uint64 { return m.allocated << PageShift }

// AllocFrame allocates a zeroed physical frame and returns its base address.
func (m *PhysMem) AllocFrame() (PA, error) {
	var idx uint64
	switch {
	case len(m.freeList) > 0:
		idx = m.freeList[len(m.freeList)-1]
		m.freeList = m.freeList[:len(m.freeList)-1]
		// Reused frames must be zeroed for page-table safety.
		ci, fi := idx>>frameChunkShift, idx&(1<<frameChunkShift-1)
		if ch := m.chunkAt(ci); ch != nil {
			if f := ch[fi]; f != nil {
				switch cell := m.cowCell(idx); {
				case cell == nil:
					*f = [PageSize]byte{}
				case cell.Load() > 1:
					// The storage is still shared with a fork relative:
					// zeroing in place would wipe the relative's view of
					// the page. Detach to a fresh zero frame instead; the
					// slot stays materialized so the digest's frame set
					// matches a cold boot's.
					m.unshare(ci)
					m.chunks[ci][fi] = m.newFrame()
					m.cowShares[ci][fi] = nil
					cell.Add(-1)
					m.cowCopies++
				default:
					m.unshare(ci)
					m.cowShares[ci][fi] = nil
					*f = [PageSize]byte{}
				}
			}
		}
	case m.next < m.numFrames:
		idx = m.next
		m.next++
	default:
		return 0, ErrOutOfFrames
	}
	m.allocated++
	return PA(idx << PageShift), nil
}

// AllocContiguous allocates n physically contiguous zeroed frames and
// returns the base of the run, aligned to the run size when n is a power
// of two (2MB block mappings require naturally aligned physical memory).
func (m *PhysMem) AllocContiguous(n uint64) (PA, error) {
	base := m.next
	if n&(n-1) == 0 && n > 0 {
		base = (base + n - 1) &^ (n - 1)
	}
	if base+n > m.numFrames {
		return 0, ErrOutOfFrames
	}
	// Skipped frames from alignment are returned to the free list.
	for f := m.next; f < base; f++ {
		m.freeList = append(m.freeList, f)
	}
	m.next = base + n
	m.allocated += n
	return PA(base << PageShift), nil
}

// FreeFrame returns a frame to the allocator.
func (m *PhysMem) FreeFrame(pa PA) {
	m.freeList = append(m.freeList, uint64(pa)>>PageShift)
	if m.allocated > 0 {
		m.allocated--
	}
}

// chunkAt returns the chunk for index ci without materializing anything.
func (m *PhysMem) chunkAt(ci uint64) *frameChunk {
	if ci >= uint64(len(m.chunks)) {
		return nil
	}
	return m.chunks[ci]
}

// unshare privatizes chunk ci's metadata arrays (the frame pointers and the
// share cells) before a slot store. Fork shares the array pointers with the
// child; since every mutator copies before its first store, a shared array
// is only ever read, and fork relatives can run concurrently without
// observing each other's metadata updates. The share cells themselves stay
// shared — they count holders across the whole family.
func (m *PhysMem) unshare(ci uint64) {
	if ci >= uint64(len(m.cowChunkShared)) || !m.cowChunkShared[ci] {
		return
	}
	if ch := m.chunks[ci]; ch != nil {
		nch := new(frameChunk)
		*nch = *ch
		m.chunks[ci] = nch
	}
	if ci < uint64(len(m.cowShares)) {
		if sc := m.cowShares[ci]; sc != nil {
			nsc := new(cowChunk)
			*nsc = *sc
			m.cowShares[ci] = nsc
		}
	}
	m.cowChunkShared[ci] = false
}

func (m *PhysMem) frame(pa PA) (*[PageSize]byte, error) {
	idx := uint64(pa) >> PageShift
	if idx >= m.numFrames {
		return nil, fmt.Errorf("physical address %v beyond memory size %#x", pa, m.Size())
	}
	ch := m.chunkFor(idx)
	f := ch[idx&(1<<frameChunkShift-1)]
	if f == nil {
		m.unshare(idx >> frameChunkShift)
		ch = m.chunks[idx>>frameChunkShift]
		f = m.newFrame()
		ch[idx&(1<<frameChunkShift-1)] = f
	}
	return f, nil
}

// cowCell returns the share counter for a frame index, or nil when the
// frame's storage is exclusively owned.
func (m *PhysMem) cowCell(idx uint64) *atomic.Int64 {
	ci := idx >> frameChunkShift
	if ci >= uint64(len(m.cowShares)) {
		return nil
	}
	ch := m.cowShares[ci]
	if ch == nil {
		return nil
	}
	return ch[idx&(1<<frameChunkShift-1)]
}

// frameForWrite is the mutation funnel: it returns a frame that is safe to
// write, breaking copy-on-write sharing first when the storage is held by a
// fork relative. Ordering matters for concurrently running forks: the copy
// happens before the refcount drop, so no other holder can ever observe a
// count of 1 (and write in place) while this PhysMem still reads the shared
// bytes. Every physical-memory write path — Write, WriteUint, and the
// stage-1/stage-2 table walkers' descriptor stores — resolves frames here.
func (m *PhysMem) frameForWrite(pa PA) (*[PageSize]byte, error) {
	f, err := m.frame(pa)
	if err != nil {
		return nil, err
	}
	idx := uint64(pa) >> PageShift
	ci, fi := idx>>frameChunkShift, idx&(1<<frameChunkShift-1)
	if ci >= uint64(len(m.cowShares)) {
		return f, nil
	}
	sc := m.cowShares[ci]
	if sc == nil || sc[fi] == nil {
		return f, nil
	}
	cell := sc[fi]
	if cell.Load() > 1 {
		nf := m.newFrame()
		*nf = *f // copy first …
		m.unshare(ci)
		m.chunks[ci][fi] = nf
		m.cowShares[ci][fi] = nil
		cell.Add(-1) // … then release the shared storage
		m.cowCopies++
		return nf, nil
	}
	// Sole remaining holder: reclaim exclusive ownership and write in place.
	m.unshare(ci)
	m.cowShares[ci][fi] = nil
	return f, nil
}

// Fork snapshots this PhysMem into a copy-on-write child: the child shares
// every materialized frame's storage with the parent (share counters track
// each holder) and privatizes a frame only on its first write, so a fork
// costs O(materialized frame table) pointer copies instead of O(memory).
// Allocator state (next, free list, allocated count) is duplicated so the
// child allocates exactly as a cold-booted machine would.
//
// The batch pool is dropped on both sides: remaining pool slots index into
// one shared backing array, and letting parent and child carve the same
// slot would silently alias two unrelated frames across the fork boundary
// (the PR 4 batch-allocation hazard). Forks of the same parent must be
// serialized by the caller (the zygote pool holds a per-zygote lock), but
// forked children may run and break sharing concurrently.
func (m *PhysMem) Fork() *PhysMem {
	// The chunk table only spans what was touched; keep the share and
	// shared-flag tables in step (chunks materialized since the last fork
	// extend them).
	if len(m.cowShares) < len(m.chunks) {
		m.cowShares = append(m.cowShares, make([]*cowChunk, len(m.chunks)-len(m.cowShares))...)
	}
	if len(m.cowChunkShared) < len(m.chunks) {
		m.cowChunkShared = append(m.cowChunkShared, make([]bool, len(m.chunks)-len(m.cowChunkShared))...)
	}
	m.pool = nil
	for ci, ch := range m.chunks {
		if ch == nil {
			continue
		}
		sc := m.cowShares[ci]
		if sc == nil {
			sc = new(cowChunk)
			m.cowShares[ci] = sc
		}
		for fi, f := range ch {
			if f == nil {
				continue
			}
			cell := sc[fi]
			if cell == nil {
				// Storing a fresh cell mutates the share array: privatize
				// it first if an earlier fork still reads it. (In practice
				// a still-shared chunk cannot hold cell-less frames —
				// materializing one unshares — but stay defensive.)
				if m.cowChunkShared[ci] {
					m.unshare(uint64(ci))
					sc = m.cowShares[ci]
				}
				cell = new(atomic.Int64)
				cell.Store(1)
				sc[fi] = cell
			}
			cell.Add(1)
		}
		m.cowChunkShared[ci] = true
	}
	child := &PhysMem{
		// Hand the metadata array pointers to the child instead of copying
		// them: both sides are flagged shared, and the first slot store on
		// either side privatizes through unshare. Fork is O(live chunks),
		// not O(live chunks × chunk size).
		chunks:         append([]*frameChunk(nil), m.chunks...),
		cowShares:      append([]*cowChunk(nil), m.cowShares...),
		cowChunkShared: append([]bool(nil), m.cowChunkShared...),
		numFrames:      m.numFrames,
		next:           m.next,
		freeList:       append([]uint64(nil), m.freeList...),
		allocated:      m.allocated,
		cowParent:      m,
	}
	m.cowForks++
	return child
}

// Forks returns how many children have been forked off this PhysMem.
func (m *PhysMem) Forks() uint64 { return m.cowForks }

// COWCopies returns the number of frames this PhysMem privatized after a
// fork — the dirty-page count of the zygote model.
func (m *PhysMem) COWCopies() uint64 { return m.cowCopies }

// SharedFrames counts materialized frames whose storage is still shared
// with a fork relative.
func (m *PhysMem) SharedFrames() uint64 {
	var n uint64
	for ci, ch := range m.chunks {
		if ch == nil || ci >= len(m.cowShares) || m.cowShares[ci] == nil {
			continue
		}
		sc := m.cowShares[ci]
		for fi := range ch {
			if ch[fi] != nil && sc[fi] != nil && sc[fi].Load() > 1 {
				n++
			}
		}
	}
	return n
}

// COWIssue is one violation found by AuditCOW.
type COWIssue struct {
	// PA is the exact physical address of the offending frame.
	PA PA
	// Detail describes the violation.
	Detail string
}

// AuditCOW proves that copy-on-write sharing never aliases across isolation
// domains: walking the fork family (this PhysMem and its parent chain), (a)
// one frame storage must never back two different physical addresses — that
// would make a write at one PA appear at another, the cross-domain aliasing
// attack — and (b) storage held by more than one family member must carry a
// live share cell accounted by every holder, since an unaccounted holder
// would write shared bytes in place while a relative still reads them.
// Observation-only: no frames are materialized and no counters change.
func (m *PhysMem) AuditCOW() []COWIssue {
	var fam []*PhysMem
	for p := m; p != nil; p = p.cowParent {
		fam = append(fam, p)
	}
	type holder struct {
		pa   PA
		cell *atomic.Int64
	}
	byStorage := make(map[*[PageSize]byte][]holder)
	for _, p := range fam {
		for ci, ch := range p.chunks {
			if ch == nil {
				continue
			}
			var sc *cowChunk
			if ci < len(p.cowShares) {
				sc = p.cowShares[ci]
			}
			for fi, f := range ch {
				if f == nil {
					continue
				}
				var cell *atomic.Int64
				if sc != nil {
					cell = sc[fi]
				}
				pa := PA((uint64(ci)<<frameChunkShift | uint64(fi)) << PageShift)
				byStorage[f] = append(byStorage[f], holder{pa: pa, cell: cell})
			}
		}
	}
	var issues []COWIssue
	for _, hs := range byStorage {
		if len(hs) == 1 {
			continue
		}
		base := hs[0]
		shared := 0
		for _, h := range hs {
			if h.pa != base.pa {
				issues = append(issues, COWIssue{PA: h.pa, Detail: fmt.Sprintf(
					"frame storage aliased across the fork family: also backs %v", base.pa)})
				continue
			}
			if h.cell == nil {
				issues = append(issues, COWIssue{PA: h.pa, Detail: fmt.Sprintf(
					"frame %v shared by %d fork-family members without a share cell: an in-place write would leak across domains", h.pa, len(hs))})
				continue
			}
			if h.cell != base.cell {
				issues = append(issues, COWIssue{PA: h.pa, Detail: fmt.Sprintf(
					"frame %v holders disagree on the share cell", h.pa)})
				continue
			}
			shared++
		}
		if shared > 0 && base.cell != nil && base.cell.Load() < int64(shared) {
			issues = append(issues, COWIssue{PA: base.pa, Detail: fmt.Sprintf(
				"frame %v share count %d below its %d live holders", base.pa, base.cell.Load(), shared)})
		}
	}
	sort.Slice(issues, func(i, j int) bool {
		if issues[i].PA != issues[j].PA {
			return issues[i].PA < issues[j].PA
		}
		return issues[i].Detail < issues[j].Detail
	})
	return issues
}

// PlantCOWAlias redirects dst's frame slot at the storage backing src with
// no share accounting — the cross-domain frame-share attack the
// cow-aliasing checker must catch at the exact PA. Planted-battery and test
// use only.
func (m *PhysMem) PlantCOWAlias(src, dst PA) error {
	sf, err := m.frame(src)
	if err != nil {
		return err
	}
	if _, err := m.frame(dst); err != nil {
		return err
	}
	idx := uint64(dst) >> PageShift
	m.unshare(idx >> frameChunkShift)
	m.chunks[idx>>frameChunkShift][idx&(1<<frameChunkShift-1)] = sf
	return nil
}

// VisitFrames calls fn for every materialized frame in ascending physical
// order. Observation only: unlike Read, it never materializes frames, so a
// full-memory digest taken between benchmark steps leaves the machine
// byte-identical (an untouched frame reads as zero and stays untouched).
// fn must not retain the frame pointer past the call.
func (m *PhysMem) VisitFrames(fn func(pa PA, frame *[PageSize]byte)) {
	for ci, ch := range m.chunks {
		if ch == nil {
			continue
		}
		for fi, f := range ch {
			if f == nil {
				continue
			}
			fn(PA((uint64(ci)<<frameChunkShift|uint64(fi))<<PageShift), f)
		}
	}
}

// Read copies len(buf) bytes starting at pa. Accesses may cross frames.
func (m *PhysMem) Read(pa PA, buf []byte) error {
	for len(buf) > 0 {
		f, err := m.frame(pa)
		if err != nil {
			return err
		}
		off := uint64(pa) & PageMask
		n := copy(buf, f[off:])
		buf = buf[n:]
		pa += PA(n)
	}
	return nil
}

// Write copies buf into physical memory starting at pa.
func (m *PhysMem) Write(pa PA, buf []byte) error {
	for len(buf) > 0 {
		f, err := m.frameForWrite(pa)
		if err != nil {
			return err
		}
		off := uint64(pa) & PageMask
		n := copy(f[off:], buf)
		buf = buf[n:]
		pa += PA(n)
	}
	return nil
}

// ReadUint reads a size-byte (1, 2, 4, 8) little-endian value that does not
// cross a frame boundary — the emulated load/store fast path. Callers must
// check the bound; crossing accesses go through Read.
func (m *PhysMem) ReadUint(pa PA, size int) (uint64, error) {
	f, err := m.frame(pa)
	if err != nil {
		return 0, err
	}
	off := uint64(pa) & PageMask
	switch size {
	case 8:
		return binary.LittleEndian.Uint64(f[off : off+8]), nil
	case 4:
		return uint64(binary.LittleEndian.Uint32(f[off : off+4])), nil
	case 2:
		return uint64(binary.LittleEndian.Uint16(f[off : off+2])), nil
	default:
		return uint64(f[off]), nil
	}
}

// WriteUint writes a size-byte little-endian value that does not cross a
// frame boundary. Callers must check the bound; crossing accesses go
// through Write.
func (m *PhysMem) WriteUint(pa PA, size int, v uint64) error {
	f, err := m.frameForWrite(pa)
	if err != nil {
		return err
	}
	off := uint64(pa) & PageMask
	switch size {
	case 8:
		binary.LittleEndian.PutUint64(f[off:off+8], v)
	case 4:
		binary.LittleEndian.PutUint32(f[off:off+4], uint32(v))
	case 2:
		binary.LittleEndian.PutUint16(f[off:off+2], uint16(v))
	default:
		f[off] = byte(v)
	}
	return nil
}

// ReadU64 reads a little-endian 64-bit word (page-table descriptors).
func (m *PhysMem) ReadU64(pa PA) (uint64, error) {
	if off := uint64(pa) & PageMask; off+8 <= PageSize {
		f, err := m.frame(pa)
		if err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(f[off : off+8]), nil
	}
	var b [8]byte
	if err := m.Read(pa, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// WriteU64 writes a little-endian 64-bit word.
func (m *PhysMem) WriteU64(pa PA, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return m.Write(pa, b[:])
}

// ReadU32 reads a little-endian 32-bit word (instruction fetch).
func (m *PhysMem) ReadU32(pa PA) (uint32, error) {
	if off := uint64(pa) & PageMask; off+4 <= PageSize {
		f, err := m.frame(pa)
		if err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(f[off : off+4]), nil
	}
	var b [4]byte
	if err := m.Read(pa, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}
