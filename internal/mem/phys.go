package mem

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrOutOfFrames is returned when the frame allocator is exhausted.
var ErrOutOfFrames = errors.New("physical memory exhausted")

// PhysMem is sparse simulated physical memory with a frame allocator.
// Frames are materialized on first touch, so multi-gigabyte address spaces
// cost only what is actually used.
// frameChunkShift groups frames into chunks of 512 (one 2MB span) so the
// frame table is a two-level array instead of a hash map: instruction
// fetches and page-table walks resolve frames with two indexed loads and no
// hashing, while sparse chunks keep memory proportional to what is touched.
const frameChunkShift = 9

type frameChunk [1 << frameChunkShift]*[PageSize]byte

type PhysMem struct {
	chunks    []*frameChunk
	numFrames uint64
	next      uint64
	freeList  []uint64
	allocated uint64
	// pool carves frames out of batch allocations (see newFrame): first
	// touch costs one host allocation per frameBatch pages instead of one
	// per page, which matters when fleet sweeps materialize tens of
	// thousands of frames.
	pool [][PageSize]byte
}

// frameBatch is how many frames one pool allocation covers (64KB batches).
const frameBatch = 16

// newFrame returns a zeroed frame from the batch pool. Batches come zeroed
// from the allocator, and frames are never returned to the pool (freed
// frames stay in place and are re-zeroed by AllocFrame on reuse), so every
// frame handed out is zero.
func (m *PhysMem) newFrame() *[PageSize]byte {
	if len(m.pool) == 0 {
		m.pool = make([][PageSize]byte, frameBatch)
	}
	f := &m.pool[0]
	m.pool = m.pool[1:]
	return f
}

// NewPhysMem creates physical memory of size bytes (rounded down to whole
// frames).
func NewPhysMem(size uint64) *PhysMem {
	n := size >> PageShift
	return &PhysMem{
		chunks:    make([]*frameChunk, (n+(1<<frameChunkShift)-1)>>frameChunkShift),
		numFrames: n,
	}
}

// Size returns the modelled physical memory size in bytes.
func (m *PhysMem) Size() uint64 { return m.numFrames << PageShift }

// AllocatedBytes returns the bytes currently handed out by the allocator.
func (m *PhysMem) AllocatedBytes() uint64 { return m.allocated << PageShift }

// AllocFrame allocates a zeroed physical frame and returns its base address.
func (m *PhysMem) AllocFrame() (PA, error) {
	var idx uint64
	switch {
	case len(m.freeList) > 0:
		idx = m.freeList[len(m.freeList)-1]
		m.freeList = m.freeList[:len(m.freeList)-1]
		// Reused frames must be zeroed for page-table safety.
		if ch := m.chunks[idx>>frameChunkShift]; ch != nil {
			if f := ch[idx&(1<<frameChunkShift-1)]; f != nil {
				*f = [PageSize]byte{}
			}
		}
	case m.next < m.numFrames:
		idx = m.next
		m.next++
	default:
		return 0, ErrOutOfFrames
	}
	m.allocated++
	return PA(idx << PageShift), nil
}

// AllocContiguous allocates n physically contiguous zeroed frames and
// returns the base of the run, aligned to the run size when n is a power
// of two (2MB block mappings require naturally aligned physical memory).
func (m *PhysMem) AllocContiguous(n uint64) (PA, error) {
	base := m.next
	if n&(n-1) == 0 && n > 0 {
		base = (base + n - 1) &^ (n - 1)
	}
	if base+n > m.numFrames {
		return 0, ErrOutOfFrames
	}
	// Skipped frames from alignment are returned to the free list.
	for f := m.next; f < base; f++ {
		m.freeList = append(m.freeList, f)
	}
	m.next = base + n
	m.allocated += n
	return PA(base << PageShift), nil
}

// FreeFrame returns a frame to the allocator.
func (m *PhysMem) FreeFrame(pa PA) {
	m.freeList = append(m.freeList, uint64(pa)>>PageShift)
	if m.allocated > 0 {
		m.allocated--
	}
}

func (m *PhysMem) frame(pa PA) (*[PageSize]byte, error) {
	idx := uint64(pa) >> PageShift
	if idx >= m.numFrames {
		return nil, fmt.Errorf("physical address %v beyond memory size %#x", pa, m.Size())
	}
	ch := m.chunks[idx>>frameChunkShift]
	if ch == nil {
		ch = new(frameChunk)
		m.chunks[idx>>frameChunkShift] = ch
	}
	f := ch[idx&(1<<frameChunkShift-1)]
	if f == nil {
		f = m.newFrame()
		ch[idx&(1<<frameChunkShift-1)] = f
	}
	return f, nil
}

// VisitFrames calls fn for every materialized frame in ascending physical
// order. Observation only: unlike Read, it never materializes frames, so a
// full-memory digest taken between benchmark steps leaves the machine
// byte-identical (an untouched frame reads as zero and stays untouched).
// fn must not retain the frame pointer past the call.
func (m *PhysMem) VisitFrames(fn func(pa PA, frame *[PageSize]byte)) {
	for ci, ch := range m.chunks {
		if ch == nil {
			continue
		}
		for fi, f := range ch {
			if f == nil {
				continue
			}
			fn(PA((uint64(ci)<<frameChunkShift|uint64(fi))<<PageShift), f)
		}
	}
}

// Read copies len(buf) bytes starting at pa. Accesses may cross frames.
func (m *PhysMem) Read(pa PA, buf []byte) error {
	for len(buf) > 0 {
		f, err := m.frame(pa)
		if err != nil {
			return err
		}
		off := uint64(pa) & PageMask
		n := copy(buf, f[off:])
		buf = buf[n:]
		pa += PA(n)
	}
	return nil
}

// Write copies buf into physical memory starting at pa.
func (m *PhysMem) Write(pa PA, buf []byte) error {
	for len(buf) > 0 {
		f, err := m.frame(pa)
		if err != nil {
			return err
		}
		off := uint64(pa) & PageMask
		n := copy(f[off:], buf)
		buf = buf[n:]
		pa += PA(n)
	}
	return nil
}

// ReadUint reads a size-byte (1, 2, 4, 8) little-endian value that does not
// cross a frame boundary — the emulated load/store fast path. Callers must
// check the bound; crossing accesses go through Read.
func (m *PhysMem) ReadUint(pa PA, size int) (uint64, error) {
	f, err := m.frame(pa)
	if err != nil {
		return 0, err
	}
	off := uint64(pa) & PageMask
	switch size {
	case 8:
		return binary.LittleEndian.Uint64(f[off : off+8]), nil
	case 4:
		return uint64(binary.LittleEndian.Uint32(f[off : off+4])), nil
	case 2:
		return uint64(binary.LittleEndian.Uint16(f[off : off+2])), nil
	default:
		return uint64(f[off]), nil
	}
}

// WriteUint writes a size-byte little-endian value that does not cross a
// frame boundary. Callers must check the bound; crossing accesses go
// through Write.
func (m *PhysMem) WriteUint(pa PA, size int, v uint64) error {
	f, err := m.frame(pa)
	if err != nil {
		return err
	}
	off := uint64(pa) & PageMask
	switch size {
	case 8:
		binary.LittleEndian.PutUint64(f[off:off+8], v)
	case 4:
		binary.LittleEndian.PutUint32(f[off:off+4], uint32(v))
	case 2:
		binary.LittleEndian.PutUint16(f[off:off+2], uint16(v))
	default:
		f[off] = byte(v)
	}
	return nil
}

// ReadU64 reads a little-endian 64-bit word (page-table descriptors).
func (m *PhysMem) ReadU64(pa PA) (uint64, error) {
	if off := uint64(pa) & PageMask; off+8 <= PageSize {
		f, err := m.frame(pa)
		if err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(f[off : off+8]), nil
	}
	var b [8]byte
	if err := m.Read(pa, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// WriteU64 writes a little-endian 64-bit word.
func (m *PhysMem) WriteU64(pa PA, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return m.Write(pa, b[:])
}

// ReadU32 reads a little-endian 32-bit word (instruction fetch).
func (m *PhysMem) ReadU32(pa PA) (uint32, error) {
	if off := uint64(pa) & PageMask; off+4 <= PageSize {
		f, err := m.frame(pa)
		if err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(f[off : off+4]), nil
	}
	var b [4]byte
	if err := m.Read(pa, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}
