package mem

// Stage-1 descriptor bits (simplified ARMv8 long-descriptor format; the bit
// positions follow the architecture so PTE dumps read naturally).
const (
	DescValid uint64 = 1 << 0
	// DescTable distinguishes table descriptors at levels 0..2 and page
	// descriptors at level 3 (as in the real format, where bit 1 is set
	// for both "table" and "L3 page" and clear for blocks).
	DescTable uint64 = 1 << 1

	// AttrAPUser (AP[1]) grants EL0 ("user page") access. This is the
	// bit PAN keys on, and the bit LightZone's PAN mechanism uses to
	// mark protected memory (§6.1).
	AttrAPUser uint64 = 1 << 6
	// AttrAPRO (AP[2]) makes the mapping read-only at all levels.
	AttrAPRO uint64 = 1 << 7
	// AttrAF is the access flag; clear means access faults.
	AttrAF uint64 = 1 << 10
	// AttrNG marks a mapping as non-global (ASID-tagged). Kernel/global
	// mappings leave it clear, which is what makes LightZone's
	// TTBR-switch cheap: global PTEs survive ASID changes in the TLB.
	AttrNG uint64 = 1 << 11
	// AttrPXN forbids privileged (EL1) execution.
	AttrPXN uint64 = 1 << 53
	// AttrUXN forbids unprivileged (EL0) execution.
	AttrUXN uint64 = 1 << 54

	// AttrSWLZProt is a software bit (IGNORED by hardware, bits 55-58)
	// used by the LightZone kernel module to tag PTEs of protected
	// domains.
	AttrSWLZProt uint64 = 1 << 55

	// OverlayKeyShift places the permission-overlay key index in the
	// descriptor's upper attribute byte (bits 63:56). The overlay backend
	// generalizes POE's 3-bit POIndex to 8 bits so a key can name each of
	// the evaluation's up-to-128 domains; key 0 means "no overlay" and the
	// page behaves exactly as the base attributes say.
	OverlayKeyShift = 56
	// OverlayKeyMax is the largest representable overlay key.
	OverlayKeyMax = 255

	// OAMask extracts the output address from a descriptor.
	OAMask uint64 = 0x0000_FFFF_FFFF_F000
)

// OverlayKey extracts a descriptor's permission-overlay key (0 = none).
func OverlayKey(desc uint64) int {
	return int(desc >> OverlayKeyShift & OverlayKeyMax)
}

// OverlayKeyAttr builds the descriptor attribute bits carrying an overlay
// key. Keys outside 1..OverlayKeyMax are not representable; callers
// validate before mapping.
func OverlayKeyAttr(key int) uint64 {
	return uint64(key&OverlayKeyMax) << OverlayKeyShift
}

// Stage-2 descriptor bits.
const (
	// S2APRead / S2APWrite form the S2AP field (bits 7:6).
	S2APRead  uint64 = 1 << 6
	S2APWrite uint64 = 1 << 7
	// S2XN forbids execution at any guest exception level.
	S2XN uint64 = 1 << 54
)

// AccessType describes a memory access for permission checking.
type AccessType uint8

const (
	AccessRead AccessType = iota + 1
	AccessWrite
	AccessExec
)

func (a AccessType) String() string {
	switch a {
	case AccessRead:
		return "read"
	case AccessWrite:
		return "write"
	case AccessExec:
		return "exec"
	default:
		return "access?"
	}
}

// FaultKind classifies translation faults.
type FaultKind uint8

const (
	FaultNone        FaultKind = iota
	FaultTranslation           // no valid mapping
	FaultPermission            // mapping exists but denies the access
	FaultAddressSize           // non-canonical or out-of-range address
	FaultAccessFlag            // AF clear
	FaultOverlay               // permission-overlay key check failed
)

func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultTranslation:
		return "translation"
	case FaultPermission:
		return "permission"
	case FaultAddressSize:
		return "address-size"
	case FaultAccessFlag:
		return "access-flag"
	case FaultOverlay:
		return "overlay"
	default:
		return "fault?"
	}
}

// Fault describes a stage-1 or stage-2 abort. It implements error so
// translation paths can return it directly.
type Fault struct {
	Stage  int // 1 or 2
	Kind   FaultKind
	Access AccessType
	VA     VA
	IPA    IPA
	Level  int
}

func (f *Fault) Error() string {
	return "stage-" + itoa(f.Stage) + " " + f.Kind.String() + " fault on " +
		f.Access.String() + " at " + f.VA.String() + " (level " + itoa(f.Level) + ")"
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	neg := n < 0
	if neg {
		n = -n
	}
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}

// CheckStage1 validates a stage-1 leaf descriptor against an access
// performed at el with the given PSTATE.PAN value. It implements:
//   - AP[2] read-only semantics,
//   - AP[1] EL0-accessibility: EL0 may only touch user pages,
//   - PAN: a privileged (EL1/EL2) data access to a user page faults when
//     PAN is set — the LightZone PAN isolation primitive,
//   - unprivileged override (LDTR/STTR): the access is checked as if from
//     EL0 regardless of PAN — which is why the sanitizer must forbid those
//     instructions for PAN-isolated processes (Table 3),
//   - UXN/PXN execute-never split.
func CheckStage1(desc uint64, acc AccessType, privileged, pan, unprivOverride bool) FaultKind {
	user := desc&AttrAPUser != 0
	ro := desc&AttrAPRO != 0
	if desc&AttrAF == 0 {
		return FaultAccessFlag
	}
	eff := privileged && !unprivOverride
	switch acc {
	case AccessExec:
		if eff {
			if desc&AttrPXN != 0 {
				return FaultPermission
			}
			// ARMv8: a writable-at-EL0 page is never privileged-
			// executable; modelled via explicit PXN by the kernel.
		} else if desc&AttrUXN != 0 || !user {
			return FaultPermission
		}
		return FaultNone
	case AccessWrite:
		if ro {
			return FaultPermission
		}
	case AccessRead:
		// readable unless EL0 restrictions below apply
	}
	if !eff && !user {
		return FaultPermission // EL0 (or LDTR/STTR) touching a kernel page
	}
	if eff && user && pan && acc != AccessExec {
		return FaultPermission // PAN blocks privileged access to user pages
	}
	return FaultNone
}

// CheckStage2 validates a stage-2 leaf descriptor.
func CheckStage2(desc uint64, acc AccessType) FaultKind {
	switch acc {
	case AccessRead:
		if desc&S2APRead == 0 {
			return FaultPermission
		}
	case AccessWrite:
		if desc&S2APWrite == 0 {
			return FaultPermission
		}
	case AccessExec:
		if desc&S2XN != 0 || desc&S2APRead == 0 {
			return FaultPermission
		}
	}
	return FaultNone
}
