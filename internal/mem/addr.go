// Package mem implements the simulated memory system: sparse physical
// memory with a frame allocator, ARMv8-style stage-1 (4-level) and stage-2
// (3-level) page tables with 4KB granule, attribute/permission checking
// including PAN and EL0/EL1 access-permission semantics, and an ASID/VMID
// tagged TLB whose hit/miss behaviour drives the domain-switching costs the
// paper measures.
package mem

import "fmt"

// Address space types. VA is a stage-1 input (virtual) address, IPA an
// intermediate physical address (stage-1 output / stage-2 input), and PA a
// real physical address.
type (
	VA  uint64
	IPA uint64
	PA  uint64
)

// Page geometry: 4KB granule, 48-bit VA, 4-level stage-1 lookup.
const (
	PageShift = 12
	PageSize  = 1 << PageShift
	PageMask  = PageSize - 1

	// HugePageSize is the 2MB block size available at level 2 (used by
	// the NVM workload of §9.3).
	HugePageShift = 21
	HugePageSize  = 1 << HugePageShift
	HugePageMask  = HugePageSize - 1

	// VABits is the stage-1 input address size.
	VABits = 48
	// IPABits is the stage-2 input address size.
	IPABits = 39

	// TTBR1Base is the lowest virtual address translated via TTBR1:
	// addresses with the top VA bit set. TTBR0 translates [0, 2^47).
	TTBR1Base VA = 0xFFFF_8000_0000_0000
)

// PageAlignDown rounds a virtual address down to its page base.
func PageAlignDown(va VA) VA { return va &^ VA(PageMask) }

// PageAlignUp rounds a length up to a whole number of pages.
func PageAlignUp(n uint64) uint64 { return (n + PageMask) &^ uint64(PageMask) }

// IsTTBR1 reports whether va is translated by TTBR1 (upper range).
// ARMv8 requires the upper 16 bits to be all-ones for TTBR1 addresses and
// all-zeros for TTBR0 addresses; anything else is a translation fault.
func IsTTBR1(va VA) bool { return va >= TTBR1Base }

// ValidVA reports whether va is canonical (upper 16 bits all equal).
func ValidVA(va VA) bool {
	top := uint64(va) >> VABits
	return top == 0 || top == 0xFFFF
}

// stage-1 table index extraction; level 0 is the root.
func s1Index(va VA, level int) uint64 {
	shift := PageShift + 9*(3-level)
	return uint64(va) >> shift & 0x1FF
}

// stage-2 table index extraction; level 1 is the (concatenated) root.
func s2Index(ipa IPA, level int) uint64 {
	shift := PageShift + 9*(3-level)
	return uint64(ipa) >> shift & 0x1FF
}

func (v VA) String() string  { return fmt.Sprintf("VA(%#x)", uint64(v)) }
func (i IPA) String() string { return fmt.Sprintf("IPA(%#x)", uint64(i)) }
func (p PA) String() string  { return fmt.Sprintf("PA(%#x)", uint64(p)) }
