package mem

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// pattern fills a page-sized buffer with a distinguishable byte pattern.
func pattern(seed byte) []byte {
	b := make([]byte, PageSize)
	for i := range b {
		b[i] = seed + byte(i)
	}
	return b
}

// TestForkSharesThenCopiesOnWrite is the core COW contract: a fork shares
// every materialized frame, reads stay identical on both sides, and the
// child's first write to a shared page privatizes exactly that one frame.
func TestForkSharesThenCopiesOnWrite(t *testing.T) {
	pm := newTestPhys(t)
	pa1, pa2 := PA(0x1000), PA(0x4000)
	if err := pm.Write(pa1, pattern(1)); err != nil {
		t.Fatal(err)
	}
	if err := pm.Write(pa2, pattern(2)); err != nil {
		t.Fatal(err)
	}

	child := pm.Fork()
	if pm.Forks() != 1 {
		t.Errorf("parent Forks() = %d, want 1", pm.Forks())
	}
	if got := child.SharedFrames(); got != 2 {
		t.Errorf("child shares %d frames after fork, want 2", got)
	}
	buf := make([]byte, PageSize)
	if err := child.Read(pa1, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, pattern(1)) {
		t.Error("child read of shared frame differs from parent contents")
	}

	// First child write: exactly one copy; the parent's bytes are untouched.
	if err := child.Write(pa1, pattern(9)); err != nil {
		t.Fatal(err)
	}
	if got := child.COWCopies(); got != 1 {
		t.Errorf("child privatized %d frames after one write, want exactly 1", got)
	}
	if got := pm.COWCopies(); got != 0 {
		t.Errorf("parent privatized %d frames without writing, want 0", got)
	}
	if err := pm.Read(pa1, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, pattern(1)) {
		t.Error("child write leaked into the parent's frame")
	}

	// A second write to the same page must not copy again.
	if err := child.WriteUint(pa1+8, 8, 0xfeed); err != nil {
		t.Fatal(err)
	}
	if got := child.COWCopies(); got != 1 {
		t.Errorf("second write to a privatized page copied again: COWCopies = %d", got)
	}

	// Writing the other shared page is a second, independent copy.
	if err := child.Write(pa2, pattern(8)); err != nil {
		t.Fatal(err)
	}
	if got := child.COWCopies(); got != 2 {
		t.Errorf("child COWCopies = %d after writing two shared pages, want 2", got)
	}
}

// TestForkParentWriteDoesNotDisturbChild checks the symmetric direction:
// the parent privatizes on write too, and the child keeps the snapshot view.
func TestForkParentWriteDoesNotDisturbChild(t *testing.T) {
	pm := newTestPhys(t)
	pa := PA(0x2000)
	if err := pm.Write(pa, pattern(3)); err != nil {
		t.Fatal(err)
	}
	child := pm.Fork()
	if err := pm.Write(pa, pattern(7)); err != nil {
		t.Fatal(err)
	}
	if got := pm.COWCopies(); got != 1 {
		t.Errorf("parent COWCopies = %d after one write, want 1", got)
	}
	buf := make([]byte, PageSize)
	if err := child.Read(pa, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, pattern(3)) {
		t.Error("parent write after fork leaked into the child's snapshot")
	}
}

// TestForkSoleHolderWritesInPlace: once the child privatizes a page, the
// parent is the sole remaining holder of the original storage and may
// reclaim it without another copy — the dirty-page count stays exact.
func TestForkSoleHolderWritesInPlace(t *testing.T) {
	pm := newTestPhys(t)
	pa := PA(0x3000)
	if err := pm.Write(pa, pattern(4)); err != nil {
		t.Fatal(err)
	}
	child := pm.Fork()
	if err := child.Write(pa, pattern(5)); err != nil {
		t.Fatal(err)
	}
	if err := pm.Write(pa, pattern(6)); err != nil {
		t.Fatal(err)
	}
	if got := pm.COWCopies(); got != 0 {
		t.Errorf("sole holder copied instead of reclaiming in place: parent COWCopies = %d", got)
	}
	buf := make([]byte, PageSize)
	if err := child.Read(pa, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, pattern(5)) {
		t.Error("parent in-place write corrupted the child's privatized frame")
	}
}

// TestForkFreeListReuseDetaches: reallocating a freed frame whose storage is
// still shared must detach to a fresh zero frame (zeroing in place would
// wipe the relative's view), and the slot must stay materialized so the
// digest's frame set matches a cold boot's.
func TestForkFreeListReuseDetaches(t *testing.T) {
	pm := newTestPhys(t)
	pa, err := pm.AllocFrame()
	if err != nil {
		t.Fatal(err)
	}
	if err := pm.Write(pa, pattern(11)); err != nil {
		t.Fatal(err)
	}
	child := pm.Fork()
	pm.FreeFrame(pa)
	pa2, err := pm.AllocFrame()
	if err != nil {
		t.Fatal(err)
	}
	if pa2 != pa {
		t.Fatalf("free list did not reuse the frame: got %v, want %v", pa2, pa)
	}
	buf := make([]byte, PageSize)
	if err := child.Read(pa, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, pattern(11)) {
		t.Error("reallocating a shared frame wiped the fork relative's view")
	}
	if err := pm.Read(pa, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, make([]byte, PageSize)) {
		t.Error("reallocated frame is not zeroed")
	}
	materialized := false
	pm.VisitFrames(func(vpa PA, _ *[PageSize]byte) {
		if vpa == pa {
			materialized = true
		}
	})
	if !materialized {
		t.Error("reallocated frame slot de-materialized; digest frame set now differs from a cold boot")
	}
	if issues := child.AuditCOW(); len(issues) != 0 {
		t.Errorf("audit after free-list reuse: %v", issues)
	}
}

// TestForkBatchPoolNotShared is the PR 4 batch-allocation regression: frames
// are carved from 16-page batch allocations, and remaining pool slots index
// one shared backing array. Across a fork boundary parent and child must
// never carve the same slot — first touches of the same fresh PA on both
// sides must land in distinct storage.
func TestForkBatchPoolNotShared(t *testing.T) {
	pm := newTestPhys(t)
	// Materialize one frame so the parent's batch pool has remnants.
	if err := pm.Write(0x1000, pattern(1)); err != nil {
		t.Fatal(err)
	}
	child := pm.Fork()

	fresh := PA(0x10000) // untouched on both sides
	if err := pm.Write(fresh, pattern(20)); err != nil {
		t.Fatal(err)
	}
	if err := child.Write(fresh, pattern(30)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	if err := pm.Read(fresh, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, pattern(20)) {
		t.Error("child's first-touch write aliased into the parent's batch-mate frame")
	}
	if err := child.Read(fresh, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, pattern(30)) {
		t.Error("parent's first-touch write aliased into the child's batch-mate frame")
	}
	if issues := child.AuditCOW(); len(issues) != 0 {
		t.Errorf("audit found batch-pool aliasing: %v", issues)
	}
}

// TestForkChainAuditClean forks a grandchild chain, dirties pages at every
// level, and requires the COW audit to hold from every family member's view.
func TestForkChainAuditClean(t *testing.T) {
	pm := newTestPhys(t)
	for i := 0; i < 8; i++ {
		if err := pm.Write(PA(0x1000*uint64(i+1)), pattern(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	child := pm.Fork()
	grand := child.Fork()
	if err := child.Write(0x2000, pattern(40)); err != nil {
		t.Fatal(err)
	}
	if err := grand.Write(0x3000, pattern(50)); err != nil {
		t.Fatal(err)
	}
	if err := pm.Write(0x4000, pattern(60)); err != nil {
		t.Fatal(err)
	}
	for i, m := range []*PhysMem{pm, child, grand} {
		if issues := m.AuditCOW(); len(issues) != 0 {
			t.Errorf("family member %d: audit issues %v", i, issues)
		}
	}
	buf := make([]byte, PageSize)
	if err := grand.Read(0x2000, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, pattern(1)) {
		t.Error("grandchild sees its parent's post-fork write")
	}
}

// TestAuditCOWCatchesPlantedAlias plants the cross-domain frame-share attack
// and requires the audit to flag it at the exact physical address.
func TestAuditCOWCatchesPlantedAlias(t *testing.T) {
	pm := newTestPhys(t)
	src, dst := PA(0x1000), PA(0x3000)
	if err := pm.Write(src, pattern(1)); err != nil {
		t.Fatal(err)
	}
	if err := pm.Write(dst, pattern(2)); err != nil {
		t.Fatal(err)
	}
	if err := pm.PlantCOWAlias(src, dst); err != nil {
		t.Fatal(err)
	}
	issues := pm.AuditCOW()
	if len(issues) == 0 {
		t.Fatal("audit missed a planted frame alias")
	}
	found := false
	for _, is := range issues {
		if is.PA == dst && strings.Contains(is.Detail, "aliased across the fork family") {
			found = true
		}
	}
	if !found {
		t.Errorf("no aliasing issue at the exact planted PA %v; got %v", dst, issues)
	}
}

// TestAuditCOWCatchesMissingShareCell simulates an unaccounted holder — a
// shared storage whose share cell was lost — which the audit must flag
// because an in-place write would leak across domains.
func TestAuditCOWCatchesMissingShareCell(t *testing.T) {
	pm := newTestPhys(t)
	pa := PA(0x2000)
	if err := pm.Write(pa, pattern(1)); err != nil {
		t.Fatal(err)
	}
	child := pm.Fork()
	idx := uint64(pa) >> PageShift
	child.cowShares[idx>>frameChunkShift][idx&(1<<frameChunkShift-1)] = nil
	issues := child.AuditCOW()
	if len(issues) == 0 {
		t.Fatal("audit missed a shared frame with no share cell")
	}
	for _, is := range issues {
		if is.PA != pa {
			t.Errorf("issue at %v, want all issues at %v: %v", is.PA, pa, is.Detail)
		}
	}
}

// TestForkConcurrentChildrenIsolated forks several children off one zygote
// (forks serialized, as the zygote pool guarantees) and lets them break
// sharing concurrently. Every child must end with its own pattern, the
// parent must keep the snapshot, and the audit must stay clean — under
// -race this also proves the copy-before-decrement ordering.
func TestForkConcurrentChildrenIsolated(t *testing.T) {
	pm := newTestPhys(t)
	const pages = 16
	for i := 0; i < pages; i++ {
		if err := pm.Write(PA(0x1000*uint64(i+1)), pattern(0)); err != nil {
			t.Fatal(err)
		}
	}
	const kids = 4
	children := make([]*PhysMem, kids)
	for k := range children {
		children[k] = pm.Fork()
	}
	var wg sync.WaitGroup
	for k, c := range children {
		wg.Add(1)
		go func(k int, c *PhysMem) {
			defer wg.Done()
			for i := 0; i < pages; i++ {
				if err := c.Write(PA(0x1000*uint64(i+1)), pattern(byte(100+k))); err != nil {
					t.Errorf("child %d write: %v", k, err)
				}
			}
		}(k, c)
	}
	wg.Wait()
	buf := make([]byte, PageSize)
	for k, c := range children {
		if err := c.Read(0x1000, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, pattern(byte(100+k))) {
			t.Errorf("child %d lost its own writes", k)
		}
		if got := c.COWCopies(); got != pages {
			t.Errorf("child %d privatized %d pages, want %d", k, got, pages)
		}
		if issues := c.AuditCOW(); len(issues) != 0 {
			t.Errorf("child %d audit: %v", k, issues)
		}
	}
	if err := pm.Read(0x1000, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, pattern(0)) {
		t.Error("concurrent child writes corrupted the zygote snapshot")
	}
}

// TestStage1CloneForIndependentTables: a cloned stage-1 walker over forked
// memory must see the snapshot mappings, and new mappings on either side
// (which write table descriptors through the COW funnel) must stay private.
func TestStage1CloneForIndependentTables(t *testing.T) {
	pm := newTestPhys(t)
	s1, err := NewStage1(pm, 1)
	if err != nil {
		t.Fatal(err)
	}
	va := VA(0x40_0000)
	pa, err := pm.AllocFrame()
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Map(va, pa, AttrPXN|AttrUXN); err != nil {
		t.Fatal(err)
	}

	pm2 := pm.Fork()
	s1c := s1.CloneFor(pm2)
	if s1c.Root() != s1.Root() || s1c.ASID() != s1.ASID() {
		t.Fatal("clone changed root or ASID")
	}
	res, err := s1c.Walk(va)
	if err != nil || !res.Found || res.PA != pa {
		t.Fatalf("clone lost the snapshot mapping: %+v, %v", res, err)
	}

	// Map a new page in the child only: the descriptor store must privatize
	// the table frame, leaving the parent's walker blind to it.
	va2 := VA(0x41_0000)
	pa2, err := pm2.AllocFrame()
	if err != nil {
		t.Fatal(err)
	}
	if err := s1c.Map(va2, pa2, AttrPXN|AttrUXN); err != nil {
		t.Fatal(err)
	}
	if res, err := s1c.Walk(va2); err != nil || !res.Found {
		t.Fatalf("child cannot walk its own new mapping: %+v, %v", res, err)
	}
	if res, err := s1.Walk(va2); err != nil || res.Found {
		t.Errorf("child's post-fork mapping visible to the parent walker: %+v, %v", res, err)
	}
	if pm2.COWCopies() == 0 {
		t.Error("child descriptor store did not go through the COW funnel")
	}
}

// TestTLBCloneIndependent: the cloned TLB replays the warm state (same
// entries, same hit/miss history) but invalidations afterwards stay private.
func TestTLBCloneIndependent(t *testing.T) {
	stats := &Stats{}
	tlb := NewTLB(64)
	tlb.Stats, tlb.Code = stats, NewCodeEpochs(stats)
	tlb.Insert(0, 1, 0x1000, TLBEntry{PABase: 0x2000, BlockShift: PageShift})
	if _, ok := tlb.Lookup(0, 1, 0x1000); !ok {
		t.Fatal("seed entry missing")
	}

	stats2 := &Stats{}
	*stats2 = *stats
	tlb2 := tlb.Clone(stats2, NewCodeEpochs(stats2))
	if _, ok := tlb2.Lookup(0, 1, 0x1000); !ok {
		t.Fatal("cloned TLB lost the warm entry")
	}
	tlb2.InvalidateAll()
	if _, ok := tlb2.Lookup(0, 1, 0x1000); ok {
		t.Error("clone invalidation did not drop the entry")
	}
	if _, ok := tlb.Lookup(0, 1, 0x1000); !ok {
		t.Error("clone invalidation leaked into the parent TLB")
	}
	if stats2.TLBMisses == stats.TLBMisses {
		t.Error("clone's post-invalidate miss did not land in its own Stats; counters not rebound")
	}
}

// TestForkDigestFrameSetMatchesColdBoot: visiting frames on a freshly forked
// child must enumerate exactly the parent's materialized set with identical
// bytes — the precondition for fork-vs-cold-boot digest identity.
func TestForkDigestFrameSetMatchesColdBoot(t *testing.T) {
	pm := newTestPhys(t)
	for i := 0; i < 5; i++ {
		if err := pm.Write(PA(0x1000*uint64(2*i+1)), pattern(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	child := pm.Fork()
	snap := func(m *PhysMem) string {
		var sb strings.Builder
		m.VisitFrames(func(pa PA, f *[PageSize]byte) {
			fmt.Fprintf(&sb, "%v:%x;", pa, f[:16])
		})
		return sb.String()
	}
	if snap(pm) != snap(child) {
		t.Error("forked frame enumeration differs from the parent's")
	}
}
