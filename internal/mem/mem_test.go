package mem

import (
	"errors"
	"testing"
	"testing/quick"
)

func newTestPhys(t *testing.T) *PhysMem {
	t.Helper()
	return NewPhysMem(64 << 20) // 64MB is ample for table tests
}

func TestPhysMemReadWriteRoundTrip(t *testing.T) {
	pm := newTestPhys(t)
	data := []byte("lightzone physical memory")
	if err := pm.Write(0x1000, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := pm.Read(0x1000, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(data) {
		t.Errorf("read back %q", got)
	}
}

func TestPhysMemCrossFrameAccess(t *testing.T) {
	pm := newTestPhys(t)
	data := make([]byte, 3*PageSize)
	for i := range data {
		data[i] = byte(i)
	}
	base := PA(PageSize - 100)
	if err := pm.Write(base, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := pm.Read(base, got); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("byte %d: %d != %d", i, got[i], data[i])
		}
	}
}

func TestPhysMemBounds(t *testing.T) {
	pm := NewPhysMem(2 * PageSize)
	if err := pm.Write(PA(2*PageSize), []byte{1}); err == nil {
		t.Error("expected out-of-bounds error")
	}
}

func TestPhysMemU64U32(t *testing.T) {
	pm := newTestPhys(t)
	if err := pm.WriteU64(0x2000, 0xDEADBEEF12345678); err != nil {
		t.Fatal(err)
	}
	v, err := pm.ReadU64(0x2000)
	if err != nil || v != 0xDEADBEEF12345678 {
		t.Errorf("ReadU64 = %#x, %v", v, err)
	}
	w, err := pm.ReadU32(0x2000)
	if err != nil || w != 0x12345678 {
		t.Errorf("ReadU32 = %#x, %v (little-endian low word expected)", w, err)
	}
}

func TestFrameAllocatorExhaustionAndReuse(t *testing.T) {
	pm := NewPhysMem(4 * PageSize)
	var frames []PA
	for {
		pa, err := pm.AllocFrame()
		if err != nil {
			if !errors.Is(err, ErrOutOfFrames) {
				t.Fatalf("unexpected error %v", err)
			}
			break
		}
		frames = append(frames, pa)
	}
	if len(frames) != 4 {
		t.Fatalf("allocated %d frames, want 4", len(frames))
	}
	// Dirty then free a frame; reallocation must return zeroed memory.
	if err := pm.Write(frames[1], []byte{0xFF, 0xFF}); err != nil {
		t.Fatal(err)
	}
	pm.FreeFrame(frames[1])
	pa, err := pm.AllocFrame()
	if err != nil {
		t.Fatal(err)
	}
	var b [2]byte
	if err := pm.Read(pa, b[:]); err != nil {
		t.Fatal(err)
	}
	if b[0] != 0 || b[1] != 0 {
		t.Error("reused frame not zeroed")
	}
}

func TestStage1MapWalkUnmap(t *testing.T) {
	pm := newTestPhys(t)
	s1, err := NewStage1(pm, 7)
	if err != nil {
		t.Fatal(err)
	}
	va := VA(0x4000_1000)
	pa := PA(0x20_3000)
	if err := s1.Map(va, pa, AttrAPUser); err != nil {
		t.Fatal(err)
	}
	res, err := s1.Walk(va + 0x123)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("mapping not found")
	}
	if res.PA != pa+0x123 {
		t.Errorf("PA = %v, want %v", res.PA, pa+0x123)
	}
	if res.Levels != 4 {
		t.Errorf("walk levels = %d, want 4", res.Levels)
	}
	if res.Desc&AttrAPUser == 0 {
		t.Error("user attribute lost")
	}

	ok, err := s1.Unmap(va)
	if err != nil || !ok {
		t.Fatalf("Unmap = %v, %v", ok, err)
	}
	res, err = s1.Walk(va)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Error("mapping survived unmap")
	}
}

func TestStage1WalkUnmappedDepth(t *testing.T) {
	pm := newTestPhys(t)
	s1, err := NewStage1(pm, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s1.Walk(0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found || res.Levels != 1 {
		t.Errorf("empty table walk: found=%v levels=%d", res.Found, res.Levels)
	}
}

func TestStage1NonCanonicalVA(t *testing.T) {
	pm := newTestPhys(t)
	s1, _ := NewStage1(pm, 1)
	if err := s1.Map(VA(0x0001_0000_0000_0000), 0, 0); err == nil {
		t.Error("expected non-canonical rejection")
	}
	if res, _ := s1.Walk(VA(0x00FF_0000_0000_0000)); res.Found {
		t.Error("non-canonical VA must not translate")
	}
}

func TestStage1TTBR1RangeMapping(t *testing.T) {
	pm := newTestPhys(t)
	s1, _ := NewStage1(pm, 1)
	va := TTBR1Base + 0x2000
	if err := s1.Map(va, 0x5000, 0); err != nil {
		t.Fatal(err)
	}
	res, err := s1.Walk(va)
	if err != nil || !res.Found {
		t.Fatalf("walk: %+v, %v", res, err)
	}
	if !IsTTBR1(va) || IsTTBR1(0x2000) {
		t.Error("IsTTBR1 classification wrong")
	}
}

func TestStage1BlockMapping(t *testing.T) {
	pm := NewPhysMem(64 << 20)
	s1, _ := NewStage1(pm, 1)
	va := VA(8 * HugePageSize)
	pa := PA(2 * HugePageSize)
	if err := s1.MapBlock(va, pa, AttrAPUser); err != nil {
		t.Fatal(err)
	}
	res, err := s1.Walk(va + 0x12345)
	if err != nil || !res.Found {
		t.Fatalf("block walk: %+v, %v", res, err)
	}
	if res.BlockShift != HugePageShift {
		t.Errorf("BlockShift = %d", res.BlockShift)
	}
	if res.PA != pa+0x12345 {
		t.Errorf("PA = %v", res.PA)
	}
	if res.Levels != 3 {
		t.Errorf("block walk levels = %d, want 3", res.Levels)
	}
	if err := s1.MapBlock(va+0x1000, pa, 0); err == nil {
		t.Error("unaligned block mapping accepted")
	}
}

func TestStage1UpdateLeaf(t *testing.T) {
	pm := newTestPhys(t)
	s1, _ := NewStage1(pm, 1)
	va := VA(0x7000)
	if err := s1.Map(va, 0x8000, 0); err != nil {
		t.Fatal(err)
	}
	ok, err := s1.UpdateLeaf(va, func(d uint64) uint64 { return d | AttrAPRO })
	if err != nil || !ok {
		t.Fatalf("UpdateLeaf = %v, %v", ok, err)
	}
	res, _ := s1.Walk(va)
	if res.Desc&AttrAPRO == 0 {
		t.Error("read-only bit not set")
	}
	ok, err = s1.UpdateLeaf(0xFFF000, func(d uint64) uint64 { return d })
	if err != nil || ok {
		t.Errorf("UpdateLeaf on unmapped = %v, %v", ok, err)
	}
}

func TestStage1Visit(t *testing.T) {
	pm := NewPhysMem(64 << 20)
	s1, _ := NewStage1(pm, 1)
	want := map[VA]uint64{
		0x1000:            PageSize,
		0x2000:            PageSize,
		0x40000000:        PageSize,
		VA(HugePageSize):  HugePageSize,
		TTBR1Base + 0x100: 0, // excluded: Visit only walks what is mapped
	}
	delete(want, TTBR1Base+0x100)
	for va, size := range want {
		var err error
		if size == HugePageSize {
			err = s1.MapBlock(va, PA(HugePageSize), 0)
		} else {
			err = s1.Map(va, PA(uint64(va)), 0)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	got := map[VA]uint64{}
	if err := s1.Visit(func(va VA, desc uint64, size uint64) bool {
		got[va] = size
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("visited %d leaves, want %d: %v", len(got), len(want), got)
	}
	for va, size := range want {
		if got[va] != size {
			t.Errorf("leaf %v size = %d, want %d", va, got[va], size)
		}
	}
}

func TestStage1TableBytesGrow(t *testing.T) {
	pm := newTestPhys(t)
	s1, _ := NewStage1(pm, 1)
	before := s1.TableBytes()
	if before != PageSize {
		t.Errorf("fresh table = %d bytes", before)
	}
	if err := s1.Map(0x1000, 0x1000, 0); err != nil {
		t.Fatal(err)
	}
	if s1.TableBytes() != 4*PageSize { // root + L1 + L2 + L3
		t.Errorf("after one map: %d bytes", s1.TableBytes())
	}
	// A second mapping in the same region must not allocate new tables.
	if err := s1.Map(0x2000, 0x2000, 0); err != nil {
		t.Fatal(err)
	}
	if s1.TableBytes() != 4*PageSize {
		t.Errorf("after second map: %d bytes", s1.TableBytes())
	}
}

func TestStage2MapWalk(t *testing.T) {
	pm := newTestPhys(t)
	s2, err := NewStage2(pm, 3)
	if err != nil {
		t.Fatal(err)
	}
	ipa := IPA(0x10_0000)
	pa := PA(0x30_0000)
	if err := s2.Map(ipa, pa, S2APRead|S2APWrite); err != nil {
		t.Fatal(err)
	}
	res, err := s2.Walk(ipa + 8)
	if err != nil || !res.Found {
		t.Fatalf("walk: %+v, %v", res, err)
	}
	if res.PA != pa+8 {
		t.Errorf("PA = %v", res.PA)
	}
	if res.Levels != 3 {
		t.Errorf("stage-2 walk levels = %d, want 3", res.Levels)
	}
	if err := s2.Map(IPA(1)<<IPABits, 0, 0); err == nil {
		t.Error("IPA beyond space accepted")
	}
}

func TestStage2UnmapAndUpdate(t *testing.T) {
	pm := newTestPhys(t)
	s2, _ := NewStage2(pm, 3)
	ipa := IPA(0x4000)
	if err := s2.Map(ipa, 0x9000, S2APRead); err != nil {
		t.Fatal(err)
	}
	ok, err := s2.UpdateLeaf(ipa, func(d uint64) uint64 { return d | S2APWrite })
	if err != nil || !ok {
		t.Fatal(err)
	}
	res, _ := s2.Walk(ipa)
	if res.Desc&S2APWrite == 0 {
		t.Error("S2 write bit not set")
	}
	ok, err = s2.Unmap(ipa)
	if err != nil || !ok {
		t.Fatal(err)
	}
	if res, _ := s2.Walk(ipa); res.Found {
		t.Error("survived unmap")
	}
}

func TestCheckStage1PANSemantics(t *testing.T) {
	user := AttrAPUser | AttrAF
	kern := AttrAF
	tests := []struct {
		name                 string
		desc                 uint64
		acc                  AccessType
		priv, pan, unprivOvr bool
		want                 FaultKind
	}{
		{"el0 reads user page", user, AccessRead, false, false, false, FaultNone},
		{"el0 reads kernel page", kern, AccessRead, false, false, false, FaultPermission},
		{"el1 reads kernel page", kern, AccessRead, true, false, false, FaultNone},
		{"el1 reads user page pan off", user, AccessRead, true, false, false, FaultNone},
		{"el1 reads user page pan on", user, AccessRead, true, true, false, FaultPermission},
		{"el1 writes user page pan on", user, AccessWrite, true, true, false, FaultPermission},
		{"el1 exec user page pan on", user | AttrUXN, AccessExec, true, true, false, FaultNone},
		{"ldtr bypasses pan on user page", user, AccessRead, true, true, true, FaultNone},
		{"ldtr blocked on kernel page", kern, AccessRead, true, true, true, FaultPermission},
		{"write to readonly", user | AttrAPRO, AccessWrite, false, false, false, FaultPermission},
		{"read readonly ok", user | AttrAPRO, AccessRead, false, false, false, FaultNone},
		{"el0 exec uxn", user | AttrUXN, AccessExec, false, false, false, FaultPermission},
		{"el0 exec ok", user, AccessExec, false, false, false, FaultNone},
		{"el1 exec pxn", kern | AttrPXN, AccessExec, true, false, false, FaultPermission},
		{"el1 exec ok", kern, AccessExec, true, false, false, FaultNone},
		{"af clear faults", AttrAPUser, AccessRead, false, false, false, FaultAccessFlag},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := CheckStage1(tt.desc, tt.acc, tt.priv, tt.pan, tt.unprivOvr)
			if got != tt.want {
				t.Errorf("CheckStage1 = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestCheckStage2(t *testing.T) {
	tests := []struct {
		name string
		desc uint64
		acc  AccessType
		want FaultKind
	}{
		{"rw read", S2APRead | S2APWrite, AccessRead, FaultNone},
		{"rw write", S2APRead | S2APWrite, AccessWrite, FaultNone},
		{"ro write", S2APRead, AccessWrite, FaultPermission},
		{"wo read", S2APWrite, AccessRead, FaultPermission},
		{"exec xn", S2APRead | S2XN, AccessExec, FaultPermission},
		{"exec ok", S2APRead, AccessExec, FaultNone},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := CheckStage2(tt.desc, tt.acc); got != tt.want {
				t.Errorf("CheckStage2 = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestTLBBasicHitMiss(t *testing.T) {
	tlb := NewTLB(16)
	if _, ok := tlb.Lookup(1, 1, 0x1000); ok {
		t.Fatal("hit on empty TLB")
	}
	tlb.Insert(1, 1, 0x1000, TLBEntry{PABase: 0x2000, S1Desc: AttrNG, BlockShift: PageShift})
	if e, ok := tlb.Lookup(1, 1, 0x1000); !ok || e.PABase != 0x2000 {
		t.Errorf("lookup after insert: %+v, %v", e, ok)
	}
	if _, ok := tlb.Lookup(1, 2, 0x1000); ok {
		t.Error("non-global entry matched wrong ASID")
	}
	if _, ok := tlb.Lookup(2, 1, 0x1000); ok {
		t.Error("entry matched wrong VMID")
	}
	if tlb.Hits != 1 || tlb.Misses != 3 {
		t.Errorf("stats hits=%d misses=%d", tlb.Hits, tlb.Misses)
	}
}

func TestTLBGlobalEntriesSurviveASIDSwitch(t *testing.T) {
	tlb := NewTLB(16)
	// Global entry (nG clear): LightZone maps unprotected memory global.
	tlb.Insert(1, 5, 0x1000, TLBEntry{PABase: 0x9000, BlockShift: PageShift})
	for asid := uint16(0); asid < 8; asid++ {
		if _, ok := tlb.Lookup(1, asid, 0x1000); !ok {
			t.Errorf("global entry missed under ASID %d", asid)
		}
	}
	tlb.InvalidateASID(1, 5)
	if _, ok := tlb.Lookup(1, 0, 0x1000); !ok {
		t.Error("ASID invalidation must not drop global entries")
	}
}

func TestTLBInvalidation(t *testing.T) {
	tlb := NewTLB(32)
	tlb.Insert(1, 1, 0x1000, TLBEntry{S1Desc: AttrNG, BlockShift: PageShift})
	tlb.Insert(1, 2, 0x2000, TLBEntry{S1Desc: AttrNG, BlockShift: PageShift})
	tlb.Insert(2, 1, 0x1000, TLBEntry{S1Desc: AttrNG, BlockShift: PageShift})

	tlb.InvalidateASID(1, 1)
	if _, ok := tlb.Lookup(1, 1, 0x1000); ok {
		t.Error("ASID invalidation failed")
	}
	if _, ok := tlb.Lookup(1, 2, 0x2000); !ok {
		t.Error("other ASID dropped")
	}

	tlb.InvalidateVMID(2)
	if _, ok := tlb.Lookup(2, 1, 0x1000); ok {
		t.Error("VMID invalidation failed")
	}

	tlb.Insert(1, 3, 0x5000, TLBEntry{S1Desc: AttrNG, BlockShift: PageShift})
	tlb.InvalidateVA(1, 0x5123)
	if _, ok := tlb.Lookup(1, 3, 0x5000); ok {
		t.Error("VA invalidation failed")
	}

	tlb.Insert(1, 1, 0x7000, TLBEntry{S1Desc: AttrNG, BlockShift: PageShift})
	tlb.InvalidateAll()
	if tlb.Len() != 0 {
		t.Error("InvalidateAll left entries")
	}
}

func TestTLBBlockEntry(t *testing.T) {
	tlb := NewTLB(16)
	base := VA(4 * HugePageSize)
	tlb.Insert(1, 1, base+0x1234, TLBEntry{
		PABase: 0x200000, S1Desc: AttrNG, BlockShift: HugePageShift,
	})
	// Any address inside the 2MB region must hit.
	if _, ok := tlb.Lookup(1, 1, base+0x1FF000); !ok {
		t.Error("2MB block entry missed inside its range")
	}
	if _, ok := tlb.Lookup(1, 1, base+2*HugePageSize); ok {
		t.Error("2MB block entry hit outside its range")
	}
}

// Regression: full and VMID invalidations must release interned
// translation-context ids. Before the fix, ctxIDs/ctxList grew by one entry
// per (VMID, ASID) pair ever observed, without bound across process churn.
func TestTLBContextInternRecycling(t *testing.T) {
	tlb := NewTLB(64)
	for round := 0; round < 200; round++ {
		vmid := uint16(round % 7)
		asid := uint16(round)
		tlb.Insert(vmid, asid, 0x1000, TLBEntry{S1Desc: AttrNG, BlockShift: PageShift})
		if round%2 == 0 {
			tlb.InvalidateAll()
		} else {
			tlb.InvalidateVMID(vmid)
		}
	}
	// Every round ends with the round's contexts released; only the churn
	// inside one round (tagged + global for one pair) may remain interned.
	if n := tlb.ContextCount(); n > 2 {
		t.Errorf("interned contexts grew to %d after churn, want <= 2", n)
	}

	// Survivors of a VMID invalidation must stay valid after renumbering.
	tlb.InvalidateAll()
	tlb.Insert(1, 10, 0x1000, TLBEntry{PABase: 0xA000, S1Desc: AttrNG, BlockShift: PageShift})
	tlb.Insert(2, 20, 0x2000, TLBEntry{PABase: 0xB000, S1Desc: AttrNG, BlockShift: PageShift})
	tlb.Insert(3, 30, 0x3000, TLBEntry{PABase: 0xC000, S1Desc: AttrNG, BlockShift: PageShift})
	tlb.InvalidateVMID(2)
	if e, ok := tlb.Lookup(1, 10, 0x1000); !ok || e.PABase != 0xA000 {
		t.Errorf("vmid 1 entry lost by context compaction: %+v, %v", e, ok)
	}
	if e, ok := tlb.Lookup(3, 30, 0x3000); !ok || e.PABase != 0xC000 {
		t.Errorf("vmid 3 entry lost by context compaction: %+v, %v", e, ok)
	}
	if _, ok := tlb.Lookup(2, 20, 0x2000); ok {
		t.Error("vmid 2 entry survived InvalidateVMID")
	}
}

// Regression: compactContexts must not clobber a surviving entry when a
// kept context's renumbered id equals another kept context's old id and
// both cache the same page. The in-place remap used to overwrite the
// not-yet-moved entry (cross-VM translation aliasing) and leave t.order
// holding a stale key. Both insertion orders are exercised because the
// corruption depended on which entry the order scan moved first.
func TestTLBCompactContextsSamePageSurvivors(t *testing.T) {
	for _, vmid3First := range []bool{true, false} {
		tlb := NewTLB(16)
		// Pin the intern order (missing lookups still intern contexts):
		// vmid 1 gets the lowest ids, so dropping it shifts the survivors'
		// ids down onto each other's old values.
		tlb.Lookup(1, 10, 0x1000)
		tlb.Lookup(2, 20, 0x1000)
		tlb.Lookup(3, 30, 0x1000)
		tlb.Insert(1, 10, 0x1000, TLBEntry{PABase: 0xA000, S1Desc: AttrNG, BlockShift: PageShift})
		if vmid3First {
			tlb.Insert(3, 30, 0x5000, TLBEntry{PABase: 0xC000, S1Desc: AttrNG, BlockShift: PageShift})
			tlb.Insert(2, 20, 0x5000, TLBEntry{PABase: 0xB000, S1Desc: AttrNG, BlockShift: PageShift})
		} else {
			tlb.Insert(2, 20, 0x5000, TLBEntry{PABase: 0xB000, S1Desc: AttrNG, BlockShift: PageShift})
			tlb.Insert(3, 30, 0x5000, TLBEntry{PABase: 0xC000, S1Desc: AttrNG, BlockShift: PageShift})
		}

		tlb.InvalidateVMID(1)
		if e, ok := tlb.Lookup(2, 20, 0x5000); !ok || e.PABase != 0xB000 {
			t.Errorf("vmid3First=%v: vmid 2 entry corrupted by compaction: %+v, %v", vmid3First, e, ok)
		}
		if e, ok := tlb.Lookup(3, 30, 0x5000); !ok || e.PABase != 0xC000 {
			t.Errorf("vmid3First=%v: vmid 3 entry corrupted by compaction: %+v, %v", vmid3First, e, ok)
		}
		if tlb.Len() != 2 {
			t.Errorf("vmid3First=%v: want 2 surviving entries, got %d", vmid3First, tlb.Len())
		}
		if len(tlb.order) != len(tlb.entries) {
			t.Errorf("vmid3First=%v: order/entries diverged: %d keys for %d entries",
				vmid3First, len(tlb.order), len(tlb.entries))
		}
		for _, k := range tlb.order {
			if _, ok := tlb.entries[k]; !ok {
				t.Errorf("vmid3First=%v: stale key %#x left in order", vmid3First, k)
			}
		}
	}
}

// Regression: ResetStats must also clear the mirrored pipeline Stats, or
// lzinspect and trace summaries disagree with the TLB's own counters.
func TestTLBResetStatsClearsMirroredStats(t *testing.T) {
	tlb := NewTLB(16)
	stats := &Stats{}
	tlb.Stats = stats
	tlb.Insert(1, 1, 0x1000, TLBEntry{S1Desc: AttrNG, BlockShift: PageShift})
	tlb.Lookup(1, 1, 0x1000) // hit
	tlb.Lookup(1, 1, 0x9000) // miss
	if stats.TLBHits != 1 || stats.TLBMisses != 1 {
		t.Fatalf("mirrored stats before reset: %+v", stats)
	}
	tlb.ResetStats()
	if tlb.Hits != 0 || tlb.Misses != 0 {
		t.Errorf("own counters not reset: hits=%d misses=%d", tlb.Hits, tlb.Misses)
	}
	if stats.TLBHits != 0 || stats.TLBMisses != 0 {
		t.Errorf("mirrored stats not reset: %+v", stats)
	}
	tlb.Lookup(1, 1, 0x1000)
	if tlb.Hits != stats.TLBHits {
		t.Errorf("counters diverged after reset: tlb=%d stats=%d", tlb.Hits, stats.TLBHits)
	}
}

// Regression: InvalidateVA aimed at the middle of a 2MB region must not
// evict an unrelated 4KB entry that sits at the region base (same page
// index as the region-aligned key, different BlockShift).
func TestTLBInvalidateVABlockDiscrimination(t *testing.T) {
	tlb := NewTLB(16)
	base := VA(4 * HugePageSize)
	tlb.Insert(1, 1, base, TLBEntry{PABase: 0x1000, S1Desc: AttrNG, BlockShift: PageShift})
	tlb.InvalidateVA(1, base+5*PageSize) // elsewhere in the same 2MB region
	if _, ok := tlb.Lookup(1, 1, base); !ok {
		t.Error("unrelated 4KB entry at the region base was evicted")
	}

	// A 2MB block entry covering the region must still be dropped by an
	// invalidation anywhere inside it.
	tlb.Insert(1, 1, base+0x4000, TLBEntry{PABase: 0x200000, S1Desc: AttrNG, BlockShift: HugePageShift})
	tlb.InvalidateVA(1, base+7*PageSize)
	if _, ok := tlb.Lookup(1, 1, base+0x4000); ok {
		t.Error("2MB block entry survived a mid-region invalidation")
	}
	// And the direct-page invalidation still works for 4KB entries.
	tlb.Insert(1, 1, base+PageSize, TLBEntry{S1Desc: AttrNG, BlockShift: PageShift})
	tlb.InvalidateVA(1, base+PageSize+0x10)
	if _, ok := tlb.Lookup(1, 1, base+PageSize); ok {
		t.Error("4KB entry survived invalidation of its own page")
	}
}

func TestTLBEviction(t *testing.T) {
	tlb := NewTLB(4)
	for i := 0; i < 8; i++ {
		tlb.Insert(1, 1, VA(i*PageSize), TLBEntry{S1Desc: AttrNG, BlockShift: PageShift})
	}
	if tlb.Len() > 4 {
		t.Errorf("capacity exceeded: %d", tlb.Len())
	}
	// The oldest entries must be gone.
	if _, ok := tlb.Lookup(1, 1, 0); ok {
		t.Error("oldest entry survived eviction")
	}
	if _, ok := tlb.Lookup(1, 1, VA(7*PageSize)); !ok {
		t.Error("newest entry evicted")
	}
}

// Property: stage-1 map-then-walk returns the mapped PA with correct page
// offset for arbitrary page-aligned pairs in range.
func TestStage1MapWalkProperty(t *testing.T) {
	pm := NewPhysMem(256 << 20)
	s1, err := NewStage1(pm, 1)
	if err != nil {
		t.Fatal(err)
	}
	f := func(vaPage uint32, paPage uint16, off uint16) bool {
		va := VA(uint64(vaPage) << PageShift)
		pa := PA(uint64(paPage) << PageShift)
		offset := VA(off) & PageMask
		if err := s1.Map(va, pa, 0); err != nil {
			return false
		}
		res, err := s1.Walk(va + offset)
		return err == nil && res.Found && res.PA == pa+PA(offset)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPageHelpers(t *testing.T) {
	if PageAlignDown(0x1FFF) != 0x1000 {
		t.Error("PageAlignDown")
	}
	if PageAlignUp(1) != PageSize || PageAlignUp(PageSize) != PageSize {
		t.Error("PageAlignUp")
	}
	if !ValidVA(0x7FFF_FFFF_FFFF) || !ValidVA(TTBR1Base) || ValidVA(0x0001_0000_0000_0000) {
		t.Error("ValidVA")
	}
}

// Property: stage-2 map-then-walk returns the mapped PA with the correct
// page offset for arbitrary in-range pairs.
func TestStage2MapWalkProperty(t *testing.T) {
	pm := NewPhysMem(256 << 20)
	s2, err := NewStage2(pm, 1)
	if err != nil {
		t.Fatal(err)
	}
	f := func(ipaPage uint32, paPage uint16, off uint16) bool {
		ipa := IPA(uint64(ipaPage) << PageShift & (1<<IPABits - 1))
		pa := PA(uint64(paPage) << PageShift)
		offset := IPA(off) & PageMask
		if err := s2.Map(ipa, pa, S2APRead|S2APWrite); err != nil {
			return false
		}
		res, err := s2.Walk(ipa + offset)
		return err == nil && res.Found && res.PA == pa+PA(offset)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: a TLB insert is always observable by an immediate lookup under
// the same (vmid, asid) pair, and global entries under any asid.
func TestTLBInsertLookupProperty(t *testing.T) {
	tlb := NewTLB(4096)
	f := func(vmid, asid uint16, page uint32, global bool) bool {
		va := VA(uint64(page) << PageShift)
		e := TLBEntry{PABase: PA(page) << PageShift, BlockShift: PageShift}
		if !global {
			e.S1Desc = AttrNG
		}
		tlb.Insert(vmid, asid, va, e)
		if _, ok := tlb.Lookup(vmid, asid, va); !ok {
			return false
		}
		if global {
			if _, ok := tlb.Lookup(vmid, asid+1, va); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestStage2TableBytesAndFree(t *testing.T) {
	pm := NewPhysMem(64 << 20)
	s2, err := NewStage2(pm, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s2.TableBytes() != PageSize {
		t.Errorf("fresh stage-2 = %d bytes", s2.TableBytes())
	}
	if err := s2.Map(0x1000, 0x2000, S2APRead); err != nil {
		t.Fatal(err)
	}
	if s2.TableBytes() != 3*PageSize { // root + L2 + L3
		t.Errorf("after map = %d bytes", s2.TableBytes())
	}
	allocated := pm.AllocatedBytes()
	s2.Free()
	if pm.AllocatedBytes() >= allocated {
		t.Error("free did not return frames")
	}
}

func TestStage2BlockMapping(t *testing.T) {
	pm := NewPhysMem(64 << 20)
	s2, err := NewStage2(pm, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.MapBlock(IPA(4*HugePageSize), PA(2*HugePageSize), S2APRead|S2APWrite); err != nil {
		t.Fatal(err)
	}
	res, err := s2.Walk(IPA(4*HugePageSize) + 0x12345)
	if err != nil || !res.Found || res.BlockShift != HugePageShift {
		t.Fatalf("block walk: %+v, %v", res, err)
	}
	if res.PA != PA(2*HugePageSize)+0x12345 {
		t.Errorf("PA = %v", res.PA)
	}
	if err := s2.MapBlock(IPA(HugePageSize+0x1000), 0, 0); err == nil {
		t.Error("unaligned stage-2 block accepted")
	}
}
