package mem

import "testing"

// BenchmarkTLBLookup measures a warm TLB probe — the slow-path translation
// cost a micro-TLB miss falls back to — over a mixed working set of tagged,
// global and huge entries.
func BenchmarkTLBLookup(b *testing.B) {
	tlb := NewTLB(1024)
	const pages = 64
	for i := uint64(0); i < pages; i++ {
		tlb.Insert(1, 2, VA(0x10000+i*PageSize), TLBEntry{
			PABase: PA(0x100000 + i*PageSize), S1Desc: AttrNG, BlockShift: PageShift,
		})
	}
	tlb.Insert(1, 2, VA(0x400000), TLBEntry{
		PABase: 0x800000, S1Desc: AttrNG, BlockShift: HugePageShift,
	})
	tlb.Insert(1, 9, VA(0x30000), TLBEntry{PABase: 0x7000, BlockShift: PageShift})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		va := VA(0x10000 + uint64(i%pages)*PageSize)
		if _, ok := tlb.Lookup(1, 2, va); !ok {
			b.Fatalf("miss at %v", va)
		}
	}
}
