package mem

// TLBEntry caches a completed (stage-1 [+ stage-2]) translation.
type TLBEntry struct {
	PABase     PA     // output base of the mapping
	S1Desc     uint64 // stage-1 leaf attributes
	S2Desc     uint64 // stage-2 leaf attributes (0 when stage-2 disabled)
	BlockShift uint   // mapping size (12 or 21)
	HasS2      bool
}

// TLB entries are keyed by a single uint64: a canonical 36-bit page index
// (valid VAs have their upper 16 bits equal, so bits 12..47 identify the
// page) in the low bits, and an interned translation-context id — one per
// distinct (VMID, ASID) pair or per-VMID global context — in the high bits.
// Integer keys let every probe use the runtime's fast-path uint64 map,
// which is substantially cheaper on the host than hashing a multi-field
// struct on the instruction-fetch path.
const (
	tlbPageBits = 36
	tlbPageMask = 1<<tlbPageBits - 1
)

// ctxKey identifies a translation context before interning.
type ctxKey struct {
	vmid   uint16
	asid   uint16
	global bool
}

// TLB is a unified, ASID- and VMID-tagged translation cache with FIFO
// replacement. Global (nG==0) stage-1 entries match any ASID of their VMID —
// the property LightZone exploits so that TTBR-based domain switches leave
// the TLB warm for unprotected memory (§8.2).
type TLB struct {
	entries  map[uint64]TLBEntry
	order    []uint64
	capacity int

	// Context interning: (vmid, asid, global) -> pre-shifted context id.
	ctxIDs  map[ctxKey]uint64
	ctxList []ctxKey // index = context id, for invalidation predicates
	// Small direct-mapped context memo, indexed by the ASID's low bits so
	// the handful of domains alternating across call-gate switches keep
	// their interned ids resident instead of evicting each other through a
	// single slot.
	ctxMemo [4]tlbCtxMemo

	Hits   uint64
	Misses uint64

	// gen is the TLB generation: it advances on every mutation of the entry
	// set — Insert (which covers FIFO evictions), every Invalidate* flavour,
	// and context compaction. Host-side micro-TLBs snapshot the generation
	// when they cache a translation and treat any advance as "my entry may
	// no longer be in the real TLB", so a fastpath hit is only possible when
	// Lookup would provably also hit. The counter is host-only state: it
	// never feeds cycles or stats.
	gen uint64

	// Stats, when set, mirrors hit/miss counts into the shared per-vCPU
	// pipeline stats.
	Stats *Stats

	// Code, when set, receives a code-generation epoch bump alongside every
	// invalidation. TLB invalidation is the chokepoint all break-before-make,
	// W^X and unmap flows already pass through, so piggybacking here makes
	// the decoded-block cache observe exactly the same events real hardware
	// would synchronize on.
	Code *CodeEpochs
}

// NewTLB creates a TLB with the given entry capacity.
func NewTLB(capacity int) *TLB {
	if capacity <= 0 {
		capacity = 512
	}
	// Containers are created lazily on first insert: fleet sweeps and
	// zygote forks create machines by the thousand, most of whose TLBs
	// never fill, so even empty maps would dominate construction.
	return &TLB{capacity: capacity}
}

func pageOf(va VA) uint64 { return uint64(va) >> PageShift & tlbPageMask }

// ctxFor interns a translation context and returns its pre-shifted id.
func (t *TLB) ctxFor(k ctxKey) uint64 {
	id, ok := t.ctxIDs[k]
	if !ok {
		if t.ctxIDs == nil {
			t.ctxIDs = make(map[ctxKey]uint64)
		}
		id = uint64(len(t.ctxList)) << tlbPageBits
		t.ctxIDs[k] = id
		t.ctxList = append(t.ctxList, k)
	}
	return id
}

// tlbCtxMemo caches one (vmid, asid) pair's interned context ids.
type tlbCtxMemo struct {
	vmid   uint16
	asid   uint16
	valid  bool
	tagged uint64
	global uint64
}

// contexts refreshes the cached interned ids for (vmid, asid).
func (t *TLB) contexts(vmid, asid uint16) (tagged, global uint64) {
	m := &t.ctxMemo[asid&uint16(len(t.ctxMemo)-1)]
	if !m.valid || vmid != m.vmid || asid != m.asid {
		m.tagged = t.ctxFor(ctxKey{vmid: vmid, asid: asid})
		m.global = t.ctxFor(ctxKey{vmid: vmid, global: true})
		m.vmid, m.asid, m.valid = vmid, asid, true
	}
	return m.tagged, m.global
}

// Lookup finds a cached translation for va under (vmid, asid).
func (t *TLB) Lookup(vmid, asid uint16, va VA) (TLBEntry, bool) {
	tagged, global := t.contexts(vmid, asid)
	// 2MB block entries are stored under their 2MB-aligned page key; probe
	// the 4KB keys first (the common hit), then the block keys.
	pg := pageOf(va)
	e, ok := t.entries[tagged|pg]
	if !ok {
		e, ok = t.entries[global|pg]
	}
	if !ok {
		bpg := pageOf(VA(uint64(va) &^ uint64(HugePageMask)))
		if e, ok = t.entries[tagged|bpg]; ok && e.BlockShift != HugePageShift {
			ok = false
		}
		if !ok {
			if e, ok = t.entries[global|bpg]; ok && e.BlockShift != HugePageShift {
				ok = false
			}
		}
	}
	if ok {
		t.Hits++
		if t.Stats != nil {
			t.Stats.TLBHits++
		}
		return e, true
	}
	t.Misses++
	if t.Stats != nil {
		t.Stats.TLBMisses++
	}
	return TLBEntry{}, false
}

// Gen returns the current TLB generation (see the gen field). Observation
// only; used by micro-TLB gates and coherence checkers.
func (t *TLB) Gen() uint64 { return t.gen }

// NoteFastHit records a hit taken by a host-side micro-TLB on behalf of
// this TLB. The micro-TLB's generation/context gate guarantees the entry is
// still cached here, so the elided Lookup would have hit: mirroring exactly
// Lookup's hit-path counter updates keeps Hits/Misses and the shared Stats
// byte-identical with the fastpaths disabled.
func (t *TLB) NoteFastHit() {
	t.Hits++
	if t.Stats != nil {
		t.Stats.TLBHits++
	}
}

// NoteFastHits records n hits at once — the bulk form used by the trace
// runner, which batches its per-instruction fetch hits and flushes them
// before any observation point. Identical to n NoteFastHit calls.
func (t *TLB) NoteFastHits(n uint64) {
	t.Hits += n
	if t.Stats != nil {
		t.Stats.TLBHits += n
	}
}

// Peek finds a cached translation for va under (vmid, asid) without
// touching hit/miss counters, the mirrored Stats, or the context intern
// tables — pure observation for trace guards that must prove "Lookup would
// hit" without perturbing the emulated surface. The probe order mirrors
// Lookup exactly: tagged 4KB, global 4KB, tagged 2MB block, global 2MB
// block.
func (t *TLB) Peek(vmid, asid uint16, va VA) (TLBEntry, bool) {
	tagged, tok := t.ctxIDs[ctxKey{vmid: vmid, asid: asid}]
	global, gok := t.ctxIDs[ctxKey{vmid: vmid, global: true}]
	pg := pageOf(va)
	if tok {
		if e, ok := t.entries[tagged|pg]; ok {
			return e, true
		}
	}
	if gok {
		if e, ok := t.entries[global|pg]; ok {
			return e, true
		}
	}
	bpg := pageOf(VA(uint64(va) &^ uint64(HugePageMask)))
	if tok {
		if e, ok := t.entries[tagged|bpg]; ok && e.BlockShift == HugePageShift {
			return e, true
		}
	}
	if gok {
		if e, ok := t.entries[global|bpg]; ok && e.BlockShift == HugePageShift {
			return e, true
		}
	}
	return TLBEntry{}, false
}

// Insert caches a translation. Stage-1 global mappings (nG clear) are
// inserted ASID-agnostic.
//
// The generation advances only when an existing entry is removed (capacity
// eviction) or replaced with different contents: those are the mutations
// that can change the result of a Lookup that previously hit. Adding a new
// key cannot invalidate any memoised translation, so cold-TLB fill phases
// leave the host micro-TLBs live instead of staling them on every walk.
func (t *TLB) Insert(vmid, asid uint16, va VA, e TLBEntry) {
	tagged, global := t.contexts(vmid, asid)
	key := tagged
	if e.S1Desc&AttrNG == 0 {
		key = global
	}
	if e.BlockShift == HugePageShift {
		key |= pageOf(VA(uint64(va) &^ uint64(HugePageMask)))
	} else {
		key |= pageOf(va)
	}
	if old, exists := t.entries[key]; exists {
		if old != e {
			t.gen++
		}
	} else {
		if t.entries == nil {
			t.entries = make(map[uint64]TLBEntry)
		}
		for len(t.entries) >= t.capacity {
			victim := t.order[0]
			t.order = t.order[1:]
			delete(t.entries, victim)
			t.gen++
		}
		t.order = append(t.order, key)
	}
	t.entries[key] = e
}

// InvalidateAll drops every entry (TLBI VMALLE1-style, full cost). The
// context intern tables are reset with the entries: nothing references the
// old ids anymore, and without the reset every (VMID, ASID) pair ever seen
// would stay interned forever across process churn.
func (t *TLB) InvalidateAll() {
	t.gen++
	t.entries = nil // recreated on the next insert (also sheds map growth)
	t.order = t.order[:0]
	clear(t.ctxIDs)
	t.ctxList = t.ctxList[:0]
	t.ctxMemo = [4]tlbCtxMemo{}
	if t.Code != nil {
		t.Code.BumpAll()
	}
}

// InvalidateVMID drops all entries of a virtual machine and releases the
// VM's interned contexts (its ASIDs are free for reuse, so keeping them
// interned would leak an id per recycled pair).
func (t *TLB) InvalidateVMID(vmid uint16) {
	t.invalidate(func(k uint64) bool {
		return t.ctxList[k>>tlbPageBits].vmid == vmid
	})
	t.compactContexts(func(c ctxKey) bool { return c.vmid == vmid })
	if t.Code != nil {
		t.Code.BumpAll()
	}
}

// compactContexts removes interned contexts matched by drop and renumbers
// the survivors, rewriting the context bits of every cached entry key.
// Callers must already have invalidated all entries of dropped contexts.
func (t *TLB) compactContexts(drop func(ctxKey) bool) {
	t.gen++
	remap := make([]uint64, len(t.ctxList))
	kept := t.ctxList[:0]
	for i, c := range t.ctxList {
		if drop(c) {
			delete(t.ctxIDs, c)
			continue
		}
		remap[i] = uint64(len(kept)) << tlbPageBits
		t.ctxIDs[c] = remap[i]
		kept = append(kept, c)
	}
	t.ctxList = kept
	t.ctxMemo = [4]tlbCtxMemo{}
	// Two-phase rewrite: a kept context's new id can equal another kept
	// context's old id, so moving entries in place while scanning can clobber
	// a live entry that shares the page bits. Pull every moving entry out of
	// the map first, then reinsert under the remapped keys.
	moved := make(map[uint64]TLBEntry)
	for i, k := range t.order {
		nk := remap[k>>tlbPageBits] | k&tlbPageMask
		if nk == k {
			continue
		}
		moved[nk] = t.entries[k]
		delete(t.entries, k)
		t.order[i] = nk
	}
	for nk, e := range moved {
		t.entries[nk] = e
	}
}

// InvalidateASID drops non-global entries of (vmid, asid).
func (t *TLB) InvalidateASID(vmid, asid uint16) {
	t.invalidate(func(k uint64) bool {
		c := t.ctxList[k>>tlbPageBits]
		return c.vmid == vmid && !c.global && c.asid == asid
	})
	if t.Code != nil {
		t.Code.BumpAll()
	}
}

// InvalidateVA drops all entries mapping the page of va in vmid: 4KB
// entries keyed by va's own page, and 2MB block entries keyed by the
// region-aligned page. The BlockShift check keeps an unrelated 4KB entry
// that happens to sit at the region base alive when va points elsewhere in
// the region.
func (t *TLB) InvalidateVA(vmid uint16, va VA) {
	page := pageOf(va)
	blockPage := pageOf(VA(uint64(va) &^ uint64(HugePageMask)))
	t.invalidate(func(k uint64) bool {
		if t.ctxList[k>>tlbPageBits].vmid != vmid {
			return false
		}
		pg := k & tlbPageMask
		if t.entries[k].BlockShift == HugePageShift {
			return pg == blockPage
		}
		return pg == page
	})
	if t.Code != nil {
		t.Code.BumpVA(va)
	}
}

func (t *TLB) invalidate(match func(uint64) bool) {
	t.gen++
	kept := t.order[:0]
	for _, k := range t.order {
		if match(k) {
			delete(t.entries, k)
		} else {
			kept = append(kept, k)
		}
	}
	t.order = kept
}

// Clone deep-copies the architectural TLB for a forked machine: the entry
// set, FIFO order, context intern tables, memo, generation, and hit/miss
// counters all transfer exactly — TLB warmth is digest-visible through the
// hit/miss counts, so a fork must resume from precisely the state a cold
// boot reaches. stats and code re-point the mirrors at the fork's own
// Stats/CodeEpochs so counter updates never cross machines.
func (t *TLB) Clone(stats *Stats, code *CodeEpochs) *TLB {
	c := &TLB{
		order:    append([]uint64(nil), t.order...),
		capacity: t.capacity,
		ctxList:  append([]ctxKey(nil), t.ctxList...),
		ctxMemo:  t.ctxMemo,
		Hits:     t.Hits,
		Misses:   t.Misses,
		gen:      t.gen,
		Stats:    stats,
		Code:     code,
	}
	// Maps are only built when the source holds entries: cloning a cold
	// TLB (the zygote fork path) allocates no containers at all.
	if len(t.entries) > 0 {
		c.entries = make(map[uint64]TLBEntry, len(t.entries))
		for k, e := range t.entries {
			c.entries[k] = e
		}
	}
	if len(t.ctxIDs) > 0 {
		c.ctxIDs = make(map[ctxKey]uint64, len(t.ctxIDs))
		for k, id := range t.ctxIDs {
			c.ctxIDs[k] = id
		}
	}
	return c
}

// Len returns the number of cached entries.
func (t *TLB) Len() int { return len(t.entries) }

// Visit calls fn for every cached entry in insertion (FIFO) order, decoding
// each packed key back into its translation context and page-aligned VA
// (canonicalized: high-half pages get their upper bits sign-extended).
// Purely observational — it never touches the hit/miss counters or the
// mirrored pipeline Stats, so verifiers can enumerate the TLB without
// perturbing any measurement. Returns false from fn to stop early.
func (t *TLB) Visit(fn func(vmid, asid uint16, global bool, va VA, e TLBEntry) bool) {
	for _, k := range t.order {
		c := t.ctxList[k>>tlbPageBits]
		va := VA((k & tlbPageMask) << PageShift)
		if va&(1<<(VABits-1)) != 0 {
			va |= ^(VA(1)<<VABits - 1)
		}
		if !fn(c.vmid, c.asid, c.global, va, t.entries[k]) {
			return
		}
	}
}

// ContextCount returns the number of interned translation contexts — a
// diagnostic for the intern tables' growth (they must stay bounded by the
// live (VMID, ASID) population, not by historical churn).
func (t *TLB) ContextCount() int { return len(t.ctxList) }

// ResetStats clears hit/miss counters, including the mirrored pipeline
// Stats, so the TLB's own counters and lzinspect/trace summaries never
// disagree after a reset.
func (t *TLB) ResetStats() {
	t.Hits, t.Misses = 0, 0
	if t.Stats != nil {
		t.Stats.TLBHits, t.Stats.TLBMisses = 0, 0
	}
}
