package mem

// TLBEntry caches a completed (stage-1 [+ stage-2]) translation.
type TLBEntry struct {
	PABase     PA     // output base of the mapping
	S1Desc     uint64 // stage-1 leaf attributes
	S2Desc     uint64 // stage-2 leaf attributes (0 when stage-2 disabled)
	BlockShift uint   // mapping size (12 or 21)
	HasS2      bool
}

type tlbKey struct {
	vmid   uint16
	asid   uint16
	page   uint64 // VA >> BlockShift normalized to 4KB pages
	global bool
}

// TLB is a unified, ASID- and VMID-tagged translation cache with FIFO
// replacement. Global (nG==0) stage-1 entries match any ASID of their VMID —
// the property LightZone exploits so that TTBR-based domain switches leave
// the TLB warm for unprotected memory (§8.2).
type TLB struct {
	entries  map[tlbKey]TLBEntry
	order    []tlbKey
	capacity int

	Hits   uint64
	Misses uint64
}

// NewTLB creates a TLB with the given entry capacity.
func NewTLB(capacity int) *TLB {
	if capacity <= 0 {
		capacity = 512
	}
	return &TLB{
		entries:  make(map[tlbKey]TLBEntry, capacity),
		order:    make([]tlbKey, 0, capacity),
		capacity: capacity,
	}
}

func pageOf(va VA) uint64 { return uint64(va) >> PageShift }

// Lookup finds a cached translation for va under (vmid, asid).
func (t *TLB) Lookup(vmid, asid uint16, va VA) (TLBEntry, bool) {
	// 2MB block entries are stored under their 2MB-aligned page key; probe
	// the 4KB key first, then the block key.
	keys := [4]tlbKey{
		{vmid: vmid, asid: asid, page: pageOf(va)},
		{vmid: vmid, global: true, page: pageOf(va)},
		{vmid: vmid, asid: asid, page: pageOf(VA(uint64(va) &^ uint64(HugePageMask)))},
		{vmid: vmid, global: true, page: pageOf(VA(uint64(va) &^ uint64(HugePageMask)))},
	}
	for i, k := range keys {
		if e, ok := t.entries[k]; ok {
			if i >= 2 && e.BlockShift != HugePageShift {
				continue
			}
			t.Hits++
			return e, true
		}
	}
	t.Misses++
	return TLBEntry{}, false
}

// Insert caches a translation. Stage-1 global mappings (nG clear) are
// inserted ASID-agnostic.
func (t *TLB) Insert(vmid, asid uint16, va VA, e TLBEntry) {
	key := tlbKey{vmid: vmid, asid: asid}
	if e.S1Desc&AttrNG == 0 {
		key = tlbKey{vmid: vmid, global: true}
	}
	if e.BlockShift == HugePageShift {
		key.page = pageOf(VA(uint64(va) &^ uint64(HugePageMask)))
	} else {
		key.page = pageOf(va)
	}
	if _, exists := t.entries[key]; !exists {
		for len(t.entries) >= t.capacity {
			victim := t.order[0]
			t.order = t.order[1:]
			delete(t.entries, victim)
		}
		t.order = append(t.order, key)
	}
	t.entries[key] = e
}

// InvalidateAll drops every entry (TLBI VMALLE1-style, full cost).
func (t *TLB) InvalidateAll() {
	t.entries = make(map[tlbKey]TLBEntry, t.capacity)
	t.order = t.order[:0]
}

// InvalidateVMID drops all entries of a virtual machine.
func (t *TLB) InvalidateVMID(vmid uint16) {
	t.invalidate(func(k tlbKey) bool { return k.vmid == vmid })
}

// InvalidateASID drops non-global entries of (vmid, asid).
func (t *TLB) InvalidateASID(vmid, asid uint16) {
	t.invalidate(func(k tlbKey) bool {
		return k.vmid == vmid && !k.global && k.asid == asid
	})
}

// InvalidateVA drops all entries mapping the page of va in vmid.
func (t *TLB) InvalidateVA(vmid uint16, va VA) {
	page := pageOf(va)
	blockPage := pageOf(VA(uint64(va) &^ uint64(HugePageMask)))
	t.invalidate(func(k tlbKey) bool {
		return k.vmid == vmid && (k.page == page || k.page == blockPage)
	})
}

func (t *TLB) invalidate(match func(tlbKey) bool) {
	kept := t.order[:0]
	for _, k := range t.order {
		if match(k) {
			delete(t.entries, k)
		} else {
			kept = append(kept, k)
		}
	}
	t.order = kept
}

// Len returns the number of cached entries.
func (t *TLB) Len() int { return len(t.entries) }

// ResetStats clears hit/miss counters.
func (t *TLB) ResetStats() { t.Hits, t.Misses = 0, 0 }
