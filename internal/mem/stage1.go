package mem

import (
	"encoding/binary"
	"fmt"
)

// WalkResult is the outcome of a page-table walk.
type WalkResult struct {
	// Desc is the leaf descriptor found (0 when !Found).
	Desc uint64
	// Level is the level at which the walk ended (leaf level, or the
	// level whose descriptor was invalid).
	Level int
	// Levels is the number of descriptor fetches performed; the CPU
	// charges TLB-walk cost per fetch.
	Levels int
	// Found reports whether a valid leaf was reached.
	Found bool
	// PA is the translated output address (leaf OA plus page offset).
	PA PA
	// BlockShift is log2 of the mapping size (12 for pages, 21 for 2MB
	// blocks).
	BlockShift uint
}

// Stage1 is a 4-level stage-1 translation table (one per address space /
// LightZone memory domain).
type Stage1 struct {
	pm          *PhysMem
	root        PA
	asid        uint16
	tableFrames int

	// lastLeafVA/lastLeafTable cache the level-3 table of the most
	// recently mapped 2MB region: bulk duplication (lz_alloc) maps
	// ascending VAs, so consecutive Map calls skip the three-level
	// descent. Leaf tables are never reclaimed until Free, so the cache
	// only needs invalidation there and in MapBlock (which may overwrite
	// a level-2 table slot with a block).
	lastLeafVA    uint64
	lastLeafTable PA

	// OnAllocTable, when set, is invoked with the physical address of
	// every newly allocated table frame. The LightZone module uses it to
	// keep stage-1 table frames identity-mapped (read-only) in a
	// process's stage-2 table so hardware walks can fetch descriptors.
	OnAllocTable func(PA)
}

// NewStage1 allocates an empty stage-1 table.
func NewStage1(pm *PhysMem, asid uint16) (*Stage1, error) {
	root, err := pm.AllocFrame()
	if err != nil {
		return nil, fmt.Errorf("stage-1 root: %w", err)
	}
	return &Stage1{pm: pm, root: root, asid: asid, tableFrames: 1}, nil
}

// Root returns the physical address of the root table (the TTBR value).
func (t *Stage1) Root() PA { return t.root }

// ASID returns the address space identifier associated with the table.
// LightZone assigns each domain page table its own ASID so that TTBR
// switches need no TLB invalidation (§4.1.2).
func (t *Stage1) ASID() uint16 { return t.asid }

// TableBytes returns the memory consumed by table frames — the paper's
// page-table memory overhead metric (§9.1-§9.3).
func (t *Stage1) TableBytes() uint64 { return uint64(t.tableFrames) * PageSize }

func (t *Stage1) descAddr(table PA, idx uint64) PA { return table + PA(idx*8) }

// nextTable returns the table pointed to by the descriptor at (table, idx),
// allocating it when absent and alloc is true. Table frames are page-aligned,
// so the descriptor is read through the frame directly.
func (t *Stage1) nextTable(table PA, idx uint64, alloc bool) (PA, error) {
	f, err := t.pm.frame(table)
	if err != nil {
		return 0, err
	}
	off := idx * 8
	desc := binary.LittleEndian.Uint64(f[off : off+8])
	if desc&DescValid != 0 {
		if desc&DescTable == 0 {
			return 0, fmt.Errorf("descriptor at %v is a block, not a table", t.descAddr(table, idx))
		}
		return PA(desc & OAMask), nil
	}
	if !alloc {
		return 0, nil
	}
	next, err := t.pm.AllocFrame()
	if err != nil {
		return 0, err
	}
	t.tableFrames++
	// Re-resolve for writing: the table frame may be copy-on-write shared
	// after a fork, and the descriptor store must land in this machine's
	// private copy.
	f, err = t.pm.frameForWrite(table)
	if err != nil {
		return 0, err
	}
	binary.LittleEndian.PutUint64(f[off:off+8], uint64(next)|DescValid|DescTable)
	if t.OnAllocTable != nil {
		t.OnAllocTable(next)
	}
	return next, nil
}

// Map installs a 4KB leaf mapping va -> pa with the given attribute bits
// (AttrAPUser, AttrAPRO, AttrPXN, ...). Valid/table/AF bits are supplied.
func (t *Stage1) Map(va VA, pa PA, attrs uint64) error {
	if !ValidVA(va) {
		return fmt.Errorf("non-canonical %v", va)
	}
	table := t.lastLeafTable
	if table == 0 || uint64(va)>>HugePageShift != t.lastLeafVA {
		table = t.root
		for level := 0; level < 3; level++ {
			next, err := t.nextTable(table, s1Index(va, level), true)
			if err != nil {
				return fmt.Errorf("map %v level %d: %w", va, level, err)
			}
			table = next
		}
		t.lastLeafVA = uint64(va) >> HugePageShift
		t.lastLeafTable = table
	}
	desc := uint64(pa)&OAMask | attrs | DescValid | DescTable | AttrAF
	return t.pm.WriteU64(t.descAddr(table, s1Index(va, 3)), desc)
}

// MapBlock installs a 2MB block mapping at level 2 (huge pages, §9.3).
func (t *Stage1) MapBlock(va VA, pa PA, attrs uint64) error {
	if uint64(va)&HugePageMask != 0 || uint64(pa)&HugePageMask != 0 {
		return fmt.Errorf("unaligned 2MB mapping %v -> %v", va, pa)
	}
	t.lastLeafTable = 0
	table := t.root
	for level := 0; level < 2; level++ {
		next, err := t.nextTable(table, s1Index(va, level), true)
		if err != nil {
			return fmt.Errorf("map block %v level %d: %w", va, level, err)
		}
		table = next
	}
	desc := uint64(pa)&OAMask | attrs | DescValid | AttrAF // no DescTable: block
	return t.pm.WriteU64(t.descAddr(table, s1Index(va, 2)), desc)
}

// Walk performs a software walk of the table for va.
func (t *Stage1) Walk(va VA) (WalkResult, error) {
	res := WalkResult{BlockShift: PageShift}
	if !ValidVA(va) {
		return res, nil
	}
	table := t.root
	for level := 0; level <= 3; level++ {
		res.Levels++
		res.Level = level
		f, err := t.pm.frame(table)
		if err != nil {
			return res, err
		}
		off := s1Index(va, level) * 8
		desc := binary.LittleEndian.Uint64(f[off : off+8])
		if desc&DescValid == 0 {
			return res, nil
		}
		if level == 3 {
			if desc&DescTable == 0 {
				return res, nil // reserved encoding
			}
			res.Desc = desc
			res.Found = true
			res.PA = PA(desc&OAMask | uint64(va)&PageMask)
			return res, nil
		}
		if desc&DescTable == 0 {
			if level != 2 {
				return res, nil // blocks only modelled at level 2
			}
			res.Desc = desc
			res.Found = true
			res.BlockShift = HugePageShift
			res.PA = PA(desc&OAMask&^uint64(HugePageMask) | uint64(va)&HugePageMask)
			return res, nil
		}
		table = PA(desc & OAMask)
	}
	return res, nil
}

// Unmap removes the leaf mapping for va, returning whether one existed.
// Table frames are not eagerly reclaimed (as in Linux).
func (t *Stage1) Unmap(va VA) (bool, error) {
	leaf, err := t.leafAddr(va)
	if err != nil || leaf == 0 {
		return false, err
	}
	desc, err := t.pm.ReadU64(leaf)
	if err != nil {
		return false, err
	}
	if desc&DescValid == 0 {
		return false, nil
	}
	return true, t.pm.WriteU64(leaf, 0)
}

// UpdateLeaf atomically rewrites the leaf descriptor for va. The update
// function receives the current descriptor (0 if unmapped) and returns the
// replacement. It reports whether a valid leaf existed.
func (t *Stage1) UpdateLeaf(va VA, fn func(uint64) uint64) (bool, error) {
	leaf, err := t.leafAddr(va)
	if err != nil || leaf == 0 {
		return false, err
	}
	desc, err := t.pm.ReadU64(leaf)
	if err != nil {
		return false, err
	}
	if desc&DescValid == 0 {
		return false, nil
	}
	return true, t.pm.WriteU64(leaf, fn(desc))
}

// leafAddr resolves the physical address of the descriptor slot that maps
// va (page or 2MB block), or 0 when intermediate tables are absent.
func (t *Stage1) leafAddr(va VA) (PA, error) {
	table := t.root
	for level := 0; level < 3; level++ {
		f, err := t.pm.frame(table)
		if err != nil {
			return 0, err
		}
		idx := s1Index(va, level)
		desc := binary.LittleEndian.Uint64(f[idx*8 : idx*8+8])
		if desc&DescValid == 0 {
			return 0, nil
		}
		if desc&DescTable == 0 {
			if level == 2 {
				return t.descAddr(table, idx), nil // 2MB block slot
			}
			return 0, nil
		}
		table = PA(desc & OAMask)
	}
	return t.descAddr(table, s1Index(va, 3)), nil
}

// Visit walks every valid leaf mapping in ascending VA order within the
// TTBR0 range, calling fn(va, desc, size). Used by the LightZone module to
// duplicate and synchronize page tables (§5.1.2). Visiting stops when fn
// returns false.
func (t *Stage1) Visit(fn func(va VA, desc uint64, size uint64) bool) error {
	return t.visit(t.root, 0, 0, fn)
}

func (t *Stage1) visit(table PA, level int, base uint64, fn func(VA, uint64, uint64) bool) error {
	f, err := t.pm.frame(table)
	if err != nil {
		return err
	}
	span := uint64(1) << (PageShift + 9*(3-level))
	for idx := uint64(0); idx < 512; idx++ {
		desc := binary.LittleEndian.Uint64(f[idx*8 : idx*8+8])
		if desc&DescValid == 0 {
			continue
		}
		va := base + idx*span
		// Canonicalize TTBR1-half addresses: root indices >= 256 select the
		// upper VA half, whose architectural form sign-extends bit 47.
		if va&(1<<(VABits-1)) != 0 {
			va |= ^(uint64(1)<<VABits - 1)
		}
		switch {
		case level == 3:
			if !fn(VA(va), desc, PageSize) {
				return nil
			}
		case desc&DescTable == 0:
			if level == 2 {
				if !fn(VA(va), desc, HugePageSize) {
					return nil
				}
			}
		default:
			if err := t.visit(PA(desc&OAMask), level+1, va, fn); err != nil {
				return err
			}
		}
	}
	return nil
}

// CloneFor snapshots the table's Go-side bookkeeping for a forked machine
// whose physical memory pm2 copy-on-write shares this table's frames. The
// descriptors themselves live in physical memory and are already covered by
// the fork; only the metadata needs re-pointing. OnAllocTable is left nil
// for the caller to re-wire to the fork's owner.
func (t *Stage1) CloneFor(pm2 *PhysMem) *Stage1 {
	return &Stage1{
		pm:            pm2,
		root:          t.root,
		asid:          t.asid,
		tableFrames:   t.tableFrames,
		lastLeafVA:    t.lastLeafVA,
		lastLeafTable: t.lastLeafTable,
	}
}

// Free releases every frame owned by the table structure (not the mapped
// data frames). The table must not be used afterwards.
func (t *Stage1) Free() {
	t.free(t.root, 0)
	t.root = 0
	t.tableFrames = 0
	t.lastLeafTable = 0
}

func (t *Stage1) free(table PA, level int) {
	if level < 3 {
		for idx := uint64(0); idx < 512; idx++ {
			desc, err := t.pm.ReadU64(t.descAddr(table, idx))
			if err != nil {
				continue
			}
			if desc&DescValid != 0 && desc&DescTable != 0 {
				t.free(PA(desc&OAMask), level+1)
			}
		}
	}
	t.pm.FreeFrame(table)
}
