package mem

import (
	"encoding/binary"
	"fmt"
)

// Stage2 is a 3-level stage-2 translation table, one per virtual machine,
// translating intermediate physical addresses to physical addresses. In
// LightZone, stage-2 tables restrict the memory a TTBR-mode kernel-mode
// process can reach even though it controls its own stage-1 translation
// (§5.1.2), and implement the fake-physical-address randomization layer.
type Stage2 struct {
	pm          *PhysMem
	root        PA
	vmid        uint16
	tableFrames int
}

// NewStage2 allocates an empty stage-2 table for the given VMID.
func NewStage2(pm *PhysMem, vmid uint16) (*Stage2, error) {
	root, err := pm.AllocFrame()
	if err != nil {
		return nil, fmt.Errorf("stage-2 root: %w", err)
	}
	return &Stage2{pm: pm, root: root, vmid: vmid, tableFrames: 1}, nil
}

// Root returns the table root (the VTTBR_EL2 base address field).
func (t *Stage2) Root() PA { return t.root }

// VMID returns the virtual machine identifier.
func (t *Stage2) VMID() uint16 { return t.vmid }

// TableBytes returns the memory consumed by stage-2 table frames.
func (t *Stage2) TableBytes() uint64 { return uint64(t.tableFrames) * PageSize }

func (t *Stage2) descAddr(table PA, idx uint64) PA { return table + PA(idx*8) }

func (t *Stage2) nextTable(table PA, idx uint64, alloc bool) (PA, error) {
	f, err := t.pm.frame(table)
	if err != nil {
		return 0, err
	}
	off := idx * 8
	desc := binary.LittleEndian.Uint64(f[off : off+8])
	if desc&DescValid != 0 {
		if desc&DescTable == 0 {
			return 0, fmt.Errorf("stage-2 descriptor at %v is a block", t.descAddr(table, idx))
		}
		return PA(desc & OAMask), nil
	}
	if !alloc {
		return 0, nil
	}
	next, err := t.pm.AllocFrame()
	if err != nil {
		return 0, err
	}
	t.tableFrames++
	// Re-resolve for writing: see Stage1.nextTable — the descriptor store
	// must break copy-on-write sharing of the table frame.
	f, err = t.pm.frameForWrite(table)
	if err != nil {
		return 0, err
	}
	binary.LittleEndian.PutUint64(f[off:off+8], uint64(next)|DescValid|DescTable)
	return next, nil
}

// Map installs a 4KB leaf mapping ipa -> pa with S2AP/S2XN attribute bits.
func (t *Stage2) Map(ipa IPA, pa PA, attrs uint64) error {
	if uint64(ipa)>>IPABits != 0 {
		return fmt.Errorf("IPA %v exceeds %d-bit space", ipa, IPABits)
	}
	table := t.root
	for level := 1; level < 3; level++ {
		next, err := t.nextTable(table, s2Index(ipa, level), true)
		if err != nil {
			return fmt.Errorf("map %v level %d: %w", ipa, level, err)
		}
		table = next
	}
	desc := uint64(pa)&OAMask | attrs | DescValid | DescTable | AttrAF
	return t.pm.WriteU64(t.descAddr(table, s2Index(ipa, 3)), desc)
}

// MapBlock installs a 2MB block mapping at level 2.
func (t *Stage2) MapBlock(ipa IPA, pa PA, attrs uint64) error {
	if uint64(ipa)&HugePageMask != 0 || uint64(pa)&HugePageMask != 0 {
		return fmt.Errorf("unaligned 2MB stage-2 mapping %v -> %v", ipa, pa)
	}
	next, err := t.nextTable(t.root, s2Index(ipa, 1), true)
	if err != nil {
		return err
	}
	desc := uint64(pa)&OAMask | attrs | DescValid | AttrAF
	return t.pm.WriteU64(t.descAddr(next, s2Index(ipa, 2)), desc)
}

// Walk performs a software walk for ipa.
func (t *Stage2) Walk(ipa IPA) (WalkResult, error) {
	res := WalkResult{BlockShift: PageShift}
	if uint64(ipa)>>IPABits != 0 {
		return res, nil
	}
	table := t.root
	for level := 1; level <= 3; level++ {
		res.Levels++
		res.Level = level
		f, err := t.pm.frame(table)
		if err != nil {
			return res, err
		}
		off := s2Index(ipa, level) * 8
		desc := binary.LittleEndian.Uint64(f[off : off+8])
		if desc&DescValid == 0 {
			return res, nil
		}
		if level == 3 {
			if desc&DescTable == 0 {
				return res, nil
			}
			res.Desc = desc
			res.Found = true
			res.PA = PA(desc&OAMask | uint64(ipa)&PageMask)
			return res, nil
		}
		if desc&DescTable == 0 {
			if level != 2 {
				return res, nil
			}
			res.Desc = desc
			res.Found = true
			res.BlockShift = HugePageShift
			res.PA = PA(desc&OAMask&^uint64(HugePageMask) | uint64(ipa)&HugePageMask)
			return res, nil
		}
		table = PA(desc & OAMask)
	}
	return res, nil
}

// Unmap removes the leaf mapping for ipa.
func (t *Stage2) Unmap(ipa IPA) (bool, error) {
	leaf, err := t.leafAddr(ipa)
	if err != nil || leaf == 0 {
		return false, err
	}
	desc, err := t.pm.ReadU64(leaf)
	if err != nil {
		return false, err
	}
	if desc&DescValid == 0 {
		return false, nil
	}
	return true, t.pm.WriteU64(leaf, 0)
}

// UpdateLeaf rewrites the leaf descriptor for ipa (see Stage1.UpdateLeaf).
func (t *Stage2) UpdateLeaf(ipa IPA, fn func(uint64) uint64) (bool, error) {
	leaf, err := t.leafAddr(ipa)
	if err != nil || leaf == 0 {
		return false, err
	}
	desc, err := t.pm.ReadU64(leaf)
	if err != nil {
		return false, err
	}
	if desc&DescValid == 0 {
		return false, nil
	}
	return true, t.pm.WriteU64(leaf, fn(desc))
}

func (t *Stage2) leafAddr(ipa IPA) (PA, error) {
	table := t.root
	for level := 1; level < 3; level++ {
		f, err := t.pm.frame(table)
		if err != nil {
			return 0, err
		}
		idx := s2Index(ipa, level)
		desc := binary.LittleEndian.Uint64(f[idx*8 : idx*8+8])
		if desc&DescValid == 0 {
			return 0, nil
		}
		if desc&DescTable == 0 {
			if level == 2 {
				return t.descAddr(table, idx), nil
			}
			return 0, nil
		}
		table = PA(desc & OAMask)
	}
	return t.descAddr(table, s2Index(ipa, 3)), nil
}

// Visit walks every valid leaf mapping in ascending IPA order, calling
// fn(ipa, desc, size). Visiting stops when fn returns false. Mirrors
// Stage1.Visit; verifiers use it to audit the stage-2 protections the
// Lowvisor installed over guest frames.
func (t *Stage2) Visit(fn func(ipa IPA, desc uint64, size uint64) bool) error {
	return t.visit(t.root, 1, 0, fn)
}

func (t *Stage2) visit(table PA, level int, base uint64, fn func(IPA, uint64, uint64) bool) error {
	f, err := t.pm.frame(table)
	if err != nil {
		return err
	}
	span := uint64(1) << (PageShift + 9*(3-level))
	for idx := uint64(0); idx < 512; idx++ {
		desc := binary.LittleEndian.Uint64(f[idx*8 : idx*8+8])
		if desc&DescValid == 0 {
			continue
		}
		ipa := base + idx*span
		switch {
		case level == 3:
			if !fn(IPA(ipa), desc, PageSize) {
				return nil
			}
		case desc&DescTable == 0:
			if level == 2 {
				if !fn(IPA(ipa), desc, HugePageSize) {
					return nil
				}
			}
		default:
			if err := t.visit(PA(desc&OAMask), level+1, ipa, fn); err != nil {
				return err
			}
		}
	}
	return nil
}

// CloneFor snapshots the table's Go-side bookkeeping for a forked machine
// whose physical memory pm2 copy-on-write shares this table's frames (see
// Stage1.CloneFor).
func (t *Stage2) CloneFor(pm2 *PhysMem) *Stage2 {
	return &Stage2{pm: pm2, root: t.root, vmid: t.vmid, tableFrames: t.tableFrames}
}

// Free releases the table frames.
func (t *Stage2) Free() {
	t.free(t.root, 1)
	t.root = 0
	t.tableFrames = 0
}

func (t *Stage2) free(table PA, level int) {
	if level < 3 {
		for idx := uint64(0); idx < 512; idx++ {
			desc, err := t.pm.ReadU64(t.descAddr(table, idx))
			if err != nil {
				continue
			}
			if desc&DescValid != 0 && desc&DescTable != 0 {
				t.free(PA(desc&OAMask), level+1)
			}
		}
	}
	t.pm.FreeFrame(table)
}
