package verify

import (
	"encoding/binary"
	"fmt"
	"hash/maphash"
	"sync"

	"lightzone/internal/arm64"
	"lightzone/internal/arm64/absint"
	"lightzone/internal/core"
	"lightzone/internal/mem"
)

// checkGateSemantics is the semantic gate proof (§6.2 strengthened): it
// symbolically executes every installed gate slot from every instruction
// offset — the attacker chooses the entry point, not the gate author — and
// proves, on every feasible path, that
//
//   - a path that installs a TTBR0 can only exit through RET, with the
//     installed value proven equal to the target page table's registered
//     base and the return target proven equal to the registered entry;
//   - PAN leaves every exit at its entry value;
//   - no memory write, no system-register write other than TTBR0_EL1, no
//     SPSel write and no TLBI/cache-maintenance op lies on any feasible path.
//
// Unlike the structural audit this accepts any instruction sequence with
// these properties, and rejects byte-plausible gates that lack them: the
// load-bearing check is the proof, not byte identity. The only facts
// admitted from memory are 8-byte reads of the gate's own GateTab entry and
// the TTBRTab, and only while those are mapped read-only and non-user in
// TTBR1 — everything else the gate may read is attacker-controlled ⊤.
//
// Exits that trap to a handler (HVC/SVC/SMC, zero words, running into the
// zero tail) are semantically benign here — they fault closed before any
// unproven state becomes architecturally visible; the structural audit owns
// immediate discipline. Exploration budgets fail closed as findings.
func checkGateSemantics(s *Snapshot) []Finding {
	var out []Finding
	for pi := range s.Procs {
		p := &s.Procs[pi]
		domains := make(map[int]*DomainSnap)
		for di := range p.Domains {
			domains[p.Domains[di].ID] = &p.Domains[di]
		}
		for _, g := range p.Gates {
			for _, f := range gateSemantics(s, p, g, domains) {
				f.Checker = "gate-semantics"
				f.PID = p.PID
				f.Proc = p.Name
				f.Domain = -1
				out = append(out, f)
			}
		}
	}
	return out
}

// gateSemantics proves one gate slot, returning finding templates (Checker,
// PID, Proc and Domain are stamped by the caller — templates must stay
// process-agnostic so the content memo can share them).
func gateSemantics(s *Snapshot, p *ProcSnap, g core.GateInfo, domains map[int]*DomainSnap) []Finding {
	slotVA := core.GateCodeBase() + uint64(g.ID)*core.GateSlotLen
	slotPA, ok := ttbr1Real(p, slotVA)
	if !ok {
		return []Finding{{VA: slotVA,
			Detail: fmt.Sprintf("gate %d: slot not mapped in TTBR1; nothing to prove", g.ID)}}
	}
	raw := make([]byte, core.GateSlotLen)
	if err := s.M.PM.Read(slotPA, raw); err != nil {
		return []Finding{{VA: slotVA, PA: uint64(slotPA),
			Detail: fmt.Sprintf("gate %d: slot unreadable: %v", g.ID, err)}}
	}
	words := arm64.BytesToWords(raw)
	extent := len(words)
	for extent > 0 && words[extent-1] == 0 {
		extent--
	}
	if extent == 0 {
		// An empty slot faults closed at every entry; the structural audit
		// reports the missing switch/RET.
		return nil
	}

	want, haveDomain := uint64(0), false
	if d, ok := domains[g.PGTID]; ok {
		want, haveDomain = d.TTBR, true
	}

	key, haveKey := gatesemKey(s, p, g, slotVA, words[:extent], want, haveDomain)
	if haveKey {
		if cached, ok := gatesemLookup(key); ok {
			return cached
		}
	}
	fs := proveGateSlot(s, p, g, slotVA, words[:extent], extent == len(words), want, haveDomain)
	if haveKey {
		gatesemStore(key, fs)
	}
	return fs
}

// proveGateSlot runs the exploration from every instruction offset and
// applies the per-path rules. Findings are deduplicated on (VA, Detail):
// most violations are reachable from many entries but have one culprit
// instruction.
func proveGateSlot(s *Snapshot, p *ProcSnap, g core.GateInfo, slotVA uint64,
	words []uint32, fullSlot bool, want uint64, haveDomain bool) []Finding {
	insns := make([]arm64.Insn, len(words))
	for i, w := range words {
		insns[i] = arm64.Decode(w)
	}
	rg := absint.Region{Base: slotVA, Insns: insns, Raw: words}
	cfg := absint.Config{Oracle: &gateOracle{
		s: s, p: p,
		gateTabLo: core.GateTabBase() + uint64(g.ID)*16,
		ttbrTabLo: core.TTBRTabBase(),
		ttbrTabHi: core.TTBRTabBase() + uint64(len(p.TTBRTabPAs))*mem.PageSize,
	}}

	var fs []Finding
	type vaDetail struct {
		va     uint64
		detail string
	}
	seen := make(map[vaDetail]bool)
	emit := func(va uint64, detail string) {
		d := fmt.Sprintf("gate %d: %s", g.ID, detail)
		if seen[vaDetail{va, d}] {
			return
		}
		seen[vaDetail{va, d}] = true
		f := Finding{VA: va, Detail: d}
		if i := int(va-slotVA) / arm64.InsnBytes; va >= slotVA && i < len(words) {
			f.Word = words[i]
			f.Disasm = arm64.Disassemble(words[i])
		}
		fs = append(fs, f)
	}

	for e := 0; e < len(words); e++ {
		entry := slotVA + uint64(e)*arm64.InsnBytes
		paths, complete := absint.Explore(rg, entry, cfg)
		if !complete {
			emit(entry, fmt.Sprintf("exploration budget exceeded from entry +%#x; gate not proven",
				uint64(e)*arm64.InsnBytes))
			continue
		}
		for _, pt := range paths {
			checkGatePath(pt, g, want, haveDomain, fullSlot, emit)
		}
	}
	return fs
}

// checkGatePath applies the semantic rules to one explored path.
func checkGatePath(pt *absint.Path, g core.GateInfo, want uint64, haveDomain, fullSlot bool,
	emit func(uint64, string)) {
	for _, eff := range pt.Effects {
		switch eff.Kind {
		case absint.EffMemWrite:
			emit(eff.PC, "memory write on an executable gate path")
		case absint.EffSys:
			emit(eff.PC, "TLBI/cache-maintenance op escapes the gate's proven set")
		case absint.EffSysRegWrite:
			if eff.Sys.Key() != arm64.TTBR0EL1.Enc().Key() {
				emit(eff.PC, "system-register write other than TTBR0_EL1 on an executable gate path")
			}
		case absint.EffPStateWrite:
			if eff.Sys.Op1 == arm64.PStateFieldSPSel1 && eff.Sys.Op2 == arm64.PStateFieldSPSel2 {
				emit(eff.PC, "SPSel write on an executable gate path")
			}
		}
	}

	ttbr, written, wva := pt.St.TTBR0()
	switch pt.Exit {
	case absint.ExitRET:
		if written {
			if v, ok := ttbr.IsConst(); !ok || ttbr.Taint || !haveDomain || v != want {
				if !haveDomain {
					emit(wva, fmt.Sprintf("TTBR0 switched but target page table %d is not registered", g.PGTID))
				} else {
					emit(wva, fmt.Sprintf("TTBR0 switched to a value not proven to be page table %d's base %#x (got %v)",
						g.PGTID, want, ttbr))
				}
			}
			if v, ok := pt.Target.IsConst(); !ok || pt.Target.Taint || v != g.Entry {
				emit(pt.ExitPC, fmt.Sprintf("exit target not proven to be the recorded return site %#x (got %v)",
					g.Entry, pt.Target))
			}
		}
		checkGatePAN(pt, emit)
	case absint.ExitBR:
		if written {
			emit(pt.ExitPC, "computed branch leaves the gate after the TTBR0 switch")
		}
		checkGatePAN(pt, emit)
	case absint.ExitBranchOut:
		if written {
			emit(pt.ExitPC, "direct branch leaves the gate slot after the TTBR0 switch")
		}
		checkGatePAN(pt, emit)
	case absint.ExitFallOff:
		if fullSlot {
			// With a zero tail the fall-off lands on a zero word and faults
			// closed; a full slot falls into the next gate's code.
			emit(pt.ExitPC, "execution runs off the end of a full gate slot")
		}
	case absint.ExitUndef:
		emit(pt.ExitPC, "reachable undecodable word inside the gate")
	}
	// ExitUndefZero, ExitHVC, ExitSVC, ExitSMC, ExitERET: trap before any
	// unproven state escapes the gate; nothing to prove on these paths.
}

// checkGatePAN enforces the PAN-restoration leg on one architecturally
// escaping exit. Applied regardless of the TTBR0 switch: entering mid-gate
// to toggle PAN and return is exactly the leak the paper's argument forbids.
func checkGatePAN(pt *absint.Path, emit func(uint64, string)) {
	if b, va := pt.St.PAN(); b != absint.BitEntry {
		emit(va, fmt.Sprintf("PAN not restored to its entry value on a gate exit path (left %v)", b))
	}
}

// gateOracle admits constant loads only from the gate's own GateTab entry
// and the TTBRTab, and only while the backing TTBR1 mapping is read-only and
// non-user — the preconditions under which those bytes are immutable to the
// process and the loaded constants deserve trust. Restricting the domain
// also makes the proof a pure function of hashable inputs (the memo).
type gateOracle struct {
	s         *Snapshot
	p         *ProcSnap
	gateTabLo uint64 // this gate's 16-byte GateTab entry
	ttbrTabLo uint64
	ttbrTabHi uint64
}

func (o *gateOracle) ReadConst(va uint64, size int) (uint64, bool) {
	if size != 8 {
		return 0, false
	}
	inGateTab := va >= o.gateTabLo && va+8 <= o.gateTabLo+16
	inTTBRTab := va >= o.ttbrTabLo && va+8 <= o.ttbrTabHi
	if !inGateTab && !inTTBRTab {
		return 0, false
	}
	return readTTBR1RO(o.s, o.p, va)
}

// readTTBR1RO reads 8 bytes behind a TTBR1 VA iff its mapping is present,
// read-only and kernel-only.
func readTTBR1RO(s *Snapshot, p *ProcSnap, va uint64) (uint64, bool) {
	res, err := p.TTBR1Table().Walk(mem.VA(va))
	if err != nil || !res.Found {
		return 0, false
	}
	if res.Desc&mem.AttrAPRO == 0 || res.Desc&mem.AttrAPUser != 0 {
		return 0, false
	}
	real, ok := p.RealOf(mem.IPA(res.Desc & mem.OAMask))
	if !ok {
		return 0, false
	}
	v, err := s.M.PM.ReadU64(real + mem.PA(va&mem.PageMask))
	if err != nil {
		return 0, false
	}
	return v, true
}

// The gate-semantics memo. The chokepoint observer re-verifies the machine
// after every security mutation; a gate proof is a pure function of the slot
// words, the oracle-visible bytes (GateTab entry + TTBRTab), the gate
// registration and the expected table base, so identical inputs can return
// the cached finding templates verbatim. Unlike the Memo type this cache is
// content-addressed and global: every process with an identical gate shares
// one proof.
var (
	gatesemMu    sync.Mutex
	gatesemSeed  = maphash.MakeSeed()
	gatesemCache = make(map[uint64][]Finding)
)

// gatesemCacheMax bounds the cache; churn workloads register thousands of
// distinct gates over a run and the templates are small, so a flush (rather
// than eviction bookkeeping) keeps the fast path trivial.
const gatesemCacheMax = 4096

// gatesemKey hashes every input the proof reads. ok=false (no caching) when
// an oracle-visible byte is unreadable — error findings are then recomputed.
func gatesemKey(s *Snapshot, p *ProcSnap, g core.GateInfo, slotVA uint64,
	words []uint32, want uint64, haveDomain bool) (uint64, bool) {
	var h maphash.Hash
	h.SetSeed(gatesemSeed)
	var b [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	u64(slotVA)
	u64(uint64(len(words)))
	for _, w := range words {
		u64(uint64(w))
	}
	u64(uint64(g.ID))
	u64(g.Entry)
	u64(uint64(g.PGTID))
	u64(want)
	if haveDomain {
		u64(1)
	} else {
		u64(0)
	}
	// Oracle-visible memory: the gate's GateTab entry and the whole TTBRTab
	// (the gate may index any slot). Read through the same attribute-checked
	// path the oracle uses, so a mapping flipped writable changes the key
	// (the read fails and caching is skipped).
	gtBase := core.GateTabBase() + uint64(g.ID)*16
	for off := uint64(0); off < 16; off += 8 {
		v, ok := readTTBR1RO(s, p, gtBase+off)
		if !ok {
			return 0, false
		}
		u64(v)
	}
	ttBase := core.TTBRTabBase()
	for pg := 0; pg < len(p.TTBRTabPAs); pg++ {
		buf, ok := readTTBR1ROPage(s, p, ttBase+uint64(pg)*mem.PageSize)
		if !ok {
			return 0, false
		}
		h.Write(buf)
	}
	return h.Sum64(), true
}

// readTTBR1ROPage reads one whole page behind a TTBR1 VA under the same
// read-only, kernel-only preconditions as readTTBR1RO.
func readTTBR1ROPage(s *Snapshot, p *ProcSnap, va uint64) ([]byte, bool) {
	res, err := p.TTBR1Table().Walk(mem.VA(va))
	if err != nil || !res.Found {
		return nil, false
	}
	if res.Desc&mem.AttrAPRO == 0 || res.Desc&mem.AttrAPUser != 0 {
		return nil, false
	}
	real, ok := p.RealOf(mem.IPA(res.Desc & mem.OAMask))
	if !ok {
		return nil, false
	}
	buf := make([]byte, mem.PageSize)
	if err := s.M.PM.Read(real, buf); err != nil {
		return nil, false
	}
	return buf, true
}

func gatesemLookup(key uint64) ([]Finding, bool) {
	gatesemMu.Lock()
	defer gatesemMu.Unlock()
	fs, ok := gatesemCache[key]
	return fs, ok
}

func gatesemStore(key uint64, fs []Finding) {
	gatesemMu.Lock()
	defer gatesemMu.Unlock()
	if len(gatesemCache) >= gatesemCacheMax {
		gatesemCache = make(map[uint64][]Finding)
	}
	gatesemCache[key] = fs
}
