package verify

import (
	"strings"
	"testing"
)

// The registry is an ordered contract: CLI output columns, CI lanes, and the
// planted-attack battery all address checkers by these names in this order.
func TestCheckerRegistry(t *testing.T) {
	want := []string{"wx-audit", "sanitizer-sweep", "gate-integrity", "gate-semantics", "cfg-reachability", "cache-coherence", "cow-aliasing"}
	cs := Checkers()
	if len(cs) != len(want) {
		t.Fatalf("registry has %d checkers, want %d", len(cs), len(want))
	}
	for i, c := range cs {
		if c.Name != want[i] {
			t.Errorf("checker %d is %q, want %q", i, c.Name, want[i])
		}
		if c.Desc == "" || c.Run == nil {
			t.Errorf("checker %q missing description or Run", c.Name)
		}
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{
		Checker: "sanitizer-sweep", PID: 3, Domain: 2,
		VA: 0x400040, Word: 0xd508871f,
		Disasm: "tlbi vmalle1", Detail: "tlb maintenance in executable page",
	}
	s := f.String()
	for _, frag := range []string{"[sanitizer-sweep]", "pid=3", "domain=2", "va=0x400040", "tlb maintenance", "(tlbi vmalle1)"} {
		if !strings.Contains(s, frag) {
			t.Errorf("Finding.String() = %q, missing %q", s, frag)
		}
	}
	// Without disassembly the parenthetical is dropped entirely.
	f.Disasm = ""
	if s := f.String(); strings.Contains(s, "(") {
		t.Errorf("Finding.String() without disasm = %q, want no parenthetical", s)
	}
}

func TestReportClean(t *testing.T) {
	var r Report
	if !r.Clean() {
		t.Error("empty report must be clean")
	}
	r.Findings = append(r.Findings, Finding{Checker: "wx-audit"})
	if r.Clean() {
		t.Error("report with a finding must not be clean")
	}
}
