package verify

import (
	"fmt"

	"lightzone/internal/core"
	"lightzone/internal/hyp"
	"lightzone/internal/mem"
)

// Mapping is one stage-1 leaf descriptor as the snapshot saw it.
type Mapping struct {
	VA   mem.VA
	Desc uint64 // raw stage-1 leaf; its OA is a fake physical address
	Size uint64 // mem.PageSize or mem.HugePageSize
	// Real is the real frame base behind the fake OA (what the bytes
	// actually live in). HasReal is false when the fake OA resolves to
	// nothing — itself reported by the W-xor-X audit.
	Real    mem.PA
	HasReal bool
}

// Exec reports whether the mapping is kernel-executable (PXN clear).
func (m Mapping) Exec() bool { return m.Desc&mem.AttrPXN == 0 }

// Writable reports whether the mapping permits writes (AP read-only clear).
func (m Mapping) Writable() bool { return m.Desc&mem.AttrAPRO == 0 }

// User reports whether the mapping is user-accessible (PAN-gated domains).
func (m Mapping) User() bool { return m.Desc&mem.AttrAPUser != 0 }

// DomainSnap is one domain page table: identity plus every leaf mapping in
// ascending VA order. S1 is retained for the cache-coherence re-walks (all
// Stage1 read paths are observation-only).
type DomainSnap struct {
	ID   int
	ASID uint16
	TTBR uint64
	S1   *mem.Stage1
	Maps []Mapping
}

// ProcSnap is the verifier's view of one LightZone process.
type ProcSnap struct {
	PID      int
	Name     string
	Policy   core.SanPolicy
	Scalable bool
	VMID     uint16

	Domains []DomainSnap

	// TTBR1 half: stub, gate code, GateTab, TTBRTab.
	TTBR1Val uint64
	TTBR1    []Mapping

	Gates      []core.GateInfo
	GateTabPA  mem.PA
	TTBRTabPAs []mem.PA
	ExecClean  []mem.VA

	// Backend names the isolation substrate the process entered with;
	// checker selection (CheckersFor) keys off it. The substrate-private
	// bookkeeping below feeds the overlay-key and granule-state audits
	// (nil for other backends).
	Backend       string
	OverlayKeys   []int          // granted overlay keys, ascending
	PageKeys      map[mem.VA]int // page base -> key the module tagged
	GranuleOwners map[mem.PA]int // real frame -> owning zone

	// LP gives checkers access to the live process for fake-physical
	// resolution, the TTBR1 table and stage-2 (read paths only).
	LP *core.LZProc
}

// TTBR1Table returns the process's TTBR1 stage-1 table.
func (p *ProcSnap) TTBR1Table() *mem.Stage1 { return p.LP.TTBR1Table() }

// S2 returns the process's stage-2 table.
func (p *ProcSnap) S2() *mem.Stage2 { return p.LP.VM().S2 }

// RealOf resolves a fake physical address to the real frame behind it.
func (p *ProcSnap) RealOf(fk mem.IPA) (mem.PA, bool) { return p.LP.Fake().RealOf(fk) }

// Snapshot is a point-in-time capture of a machine for invariant checking.
type Snapshot struct {
	M     *hyp.Machine
	LZ    *core.LightZone
	Procs []ProcSnap
}

// BackendName returns the isolation substrate the snapshot's processes run
// under (a module hosts one backend at a time; a machine with no LightZone
// processes audits under the default registry).
func (s *Snapshot) BackendName() string {
	if len(s.Procs) > 0 {
		return s.Procs[0].Backend
	}
	return "lightzone"
}

// Capture snapshots every LightZone process of (m, lz) for the checkers.
// The capture itself is observation-only: software table walks through
// PhysMem reads, no TLB probes, no cycle charges.
func Capture(m *hyp.Machine, lz *core.LightZone) (*Snapshot, error) {
	s := &Snapshot{M: m, LZ: lz}
	for _, lp := range lz.Procs() {
		ps := ProcSnap{
			PID:        lp.PID(),
			Name:       lp.Name(),
			Policy:     lp.Policy(),
			Scalable:   lp.AllowScalable(),
			VMID:       lp.VM().VMID,
			TTBR1Val:   lp.TTBR1Val(),
			Gates:      lp.Gates(),
			GateTabPA:  lp.GateTabPA(),
			TTBRTabPAs: lp.TTBRTabPages(),
			ExecClean:  lp.ExecCleanPages(),
			LP:         lp,

			Backend:       lp.BackendName(),
			OverlayKeys:   lp.OverlayGranted(),
			PageKeys:      lp.OverlayPageKeys(),
			GranuleOwners: lp.GranuleOwners(),
		}
		for _, id := range lp.PageTableIDs() {
			d, ok := lp.PageTable(id)
			if !ok {
				continue
			}
			ds := DomainSnap{ID: d.ID, ASID: d.S1.ASID(), TTBR: d.TTBR(), S1: d.S1}
			maps, err := collectMaps(d.S1, lp)
			if err != nil {
				return nil, fmt.Errorf("pid %d pgt %d: %w", ps.PID, id, err)
			}
			ds.Maps = maps
			ps.Domains = append(ps.Domains, ds)
		}
		t1maps, err := collectMaps(lp.TTBR1Table(), lp)
		if err != nil {
			return nil, fmt.Errorf("pid %d ttbr1: %w", ps.PID, err)
		}
		ps.TTBR1 = t1maps
		s.Procs = append(s.Procs, ps)
	}
	return s, nil
}

// collectMaps gathers every leaf of a stage-1 table, resolving each fake
// output address to its real frame.
func collectMaps(s1 *mem.Stage1, lp *core.LZProc) ([]Mapping, error) {
	var maps []Mapping
	err := s1.Visit(func(va mem.VA, desc uint64, size uint64) bool {
		m := Mapping{VA: va, Desc: desc, Size: size}
		fk := mem.IPA(desc & mem.OAMask)
		if size == mem.HugePageSize {
			fk &^= mem.IPA(mem.HugePageMask)
		}
		m.Real, m.HasReal = lp.Fake().RealOf(fk)
		maps = append(maps, m)
		return true
	})
	if err != nil {
		return nil, err
	}
	return maps, nil
}
