package verify

import (
	"fmt"

	"lightzone/internal/mem"
)

// checkOverlayKeys is the overlay backend's structural audit, replacing
// gate-integrity where no gates exist. It cross-checks the descriptors
// actually installed in the (single) base table against the module's
// overlay bookkeeping:
//
//   - a keyed descriptor must carry a granted key, the protected marker,
//     and exactly the key the module recorded for that page;
//   - a page the module recorded as keyed must still carry its key;
//   - keyed pages are kernel-only data (never user, never executable) —
//     overlay domains are data-only by construction.
func checkOverlayKeys(s *Snapshot) []Finding {
	var out []Finding
	for pi := range s.Procs {
		p := &s.Procs[pi]
		if p.Backend != "overlay" {
			continue
		}
		granted := make(map[int]bool, len(p.OverlayKeys))
		for _, k := range p.OverlayKeys {
			granted[k] = true
		}
		for di := range p.Domains {
			d := &p.Domains[di]
			seen := make(map[mem.VA]int, len(d.Maps))
			for _, m := range d.Maps {
				if mem.IsTTBR1(m.VA) {
					continue
				}
				key := mem.OverlayKey(m.Desc)
				seen[m.VA] = key
				if key == 0 {
					if want, tagged := p.PageKeys[m.VA]; tagged {
						out = append(out, Finding{
							Checker: "overlay-keys", PID: p.PID, Proc: p.Name, Domain: d.ID,
							VA:     uint64(m.VA),
							Detail: fmt.Sprintf("page recorded as keyed to domain %d but its descriptor carries no overlay key", want),
						})
					}
					continue
				}
				if m.Desc&mem.AttrSWLZProt == 0 {
					out = append(out, Finding{
						Checker: "overlay-keys", PID: p.PID, Proc: p.Name, Domain: d.ID,
						VA:     uint64(m.VA),
						Detail: fmt.Sprintf("overlay key %d on a descriptor without the protected marker", key),
					})
				}
				if !granted[key] {
					out = append(out, Finding{
						Checker: "overlay-keys", PID: p.PID, Proc: p.Name, Domain: d.ID,
						VA:     uint64(m.VA),
						Detail: fmt.Sprintf("descriptor carries overlay key %d which was never granted", key),
					})
				}
				if want := p.PageKeys[m.VA]; want != key {
					out = append(out, Finding{
						Checker: "overlay-keys", PID: p.PID, Proc: p.Name, Domain: d.ID,
						VA:     uint64(m.VA),
						Detail: fmt.Sprintf("descriptor overlay key %d disagrees with the module's record %d", key, want),
					})
				}
				if m.User() || m.Exec() {
					out = append(out, Finding{
						Checker: "overlay-keys", PID: p.PID, Proc: p.Name, Domain: d.ID,
						VA:     uint64(m.VA),
						Detail: fmt.Sprintf("overlay-keyed page is not kernel-only data (user=%v exec=%v)", m.User(), m.Exec()),
					})
				}
			}
			// Module records with no installed descriptor at all: the page
			// was withdrawn without the bookkeeping following.
			for va, want := range p.PageKeys {
				if _, present := seen[va]; !present {
					out = append(out, Finding{
						Checker: "overlay-keys", PID: p.PID, Proc: p.Name, Domain: d.ID,
						VA:     uint64(va),
						Detail: fmt.Sprintf("page recorded as keyed to domain %d is not mapped (stale overlay bookkeeping)", want),
					})
				}
			}
		}
	}
	return out
}

// checkGranules is the granule backend's structural audit, replacing
// gate-integrity where no gates exist. It proves the delegation discipline
// over every zone table:
//
//   - a zone-protected mapping (the software marker) must back onto a real
//     frame delegated and assigned to exactly that zone;
//   - a delegated granule must not be reachable through any unprotected
//     (global) mapping, in any table — delegation withdrew the frame from
//     the shared pool;
//   - a zone-protected mapping installed in a table other than the owning
//     zone's is a cross-zone alias.
func checkGranules(s *Snapshot) []Finding {
	var out []Finding
	for pi := range s.Procs {
		p := &s.Procs[pi]
		if p.Backend != "granule" {
			continue
		}
		for di := range p.Domains {
			d := &p.Domains[di]
			for _, m := range d.Maps {
				if mem.IsTTBR1(m.VA) || !m.HasReal {
					continue
				}
				owner, owned := p.GranuleOwners[m.Real]
				if m.Desc&mem.AttrSWLZProt != 0 {
					switch {
					case !owned:
						out = append(out, Finding{
							Checker: "granule-state", PID: p.PID, Proc: p.Name, Domain: d.ID,
							VA: uint64(m.VA), PA: uint64(m.Real),
							Detail: "zone-protected mapping backs onto an undelegated granule",
						})
					case owner != d.ID:
						out = append(out, Finding{
							Checker: "granule-state", PID: p.PID, Proc: p.Name, Domain: d.ID,
							VA: uint64(m.VA), PA: uint64(m.Real),
							Detail: fmt.Sprintf("granule assigned to zone %d but mapped zone-protected in zone %d (cross-zone alias)", owner, d.ID),
						})
					}
				} else if owned {
					out = append(out, Finding{
						Checker: "granule-state", PID: p.PID, Proc: p.Name, Domain: d.ID,
						VA: uint64(m.VA), PA: uint64(m.Real),
						Detail: fmt.Sprintf("delegated granule (zone %d) reachable through an unprotected mapping in table %d", owner, d.ID),
					})
				}
			}
		}
	}
	return out
}
