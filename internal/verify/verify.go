// Package verify implements LightZone's whole-machine static invariant
// verifier. It captures an observation-only snapshot of a constructed
// machine — guest physical memory, every domain's stage-1 table, the TTBR1
// half, stage-2, GateTab/TTBRTab, the TLB and the decoded-block cache — and
// runs a registry of named invariant checkers over it. Each checker proves
// one leg of the paper's security argument statically: W-xor-X with no
// writable alias of gate state (§6.3/§6.2), no sensitive instruction
// admitted to an executable page (Table 3), call-gate slots structurally
// sound and semantically proven — symbolic execution from every entry
// offset shows each gate path restores PAN, installs only the registered
// table and returns to the recorded entry (§6.2) — no application-reachable
// path to a forbidden instruction (exact CFG over fixed-width A64), and
// translation caches coherent with the live page tables.
//
// Everything here is read-only with respect to the measured machine: no
// cycle charges, no TLB probes, no demand mapping, no stats movement —
// running the verifier between benchmark steps leaves emitted results
// byte-identical.
package verify

import (
	"fmt"

	"lightzone/internal/core"
	"lightzone/internal/hyp"
)

// Finding is one invariant violation, anchored to a guest address.
type Finding struct {
	Checker string `json:"checker"`
	PID     int    `json:"pid"`
	Proc    string `json:"proc,omitempty"`
	// Domain is the page-table id the finding was observed in; -1 marks
	// TTBR1-half or process-wide findings.
	Domain int    `json:"domain"`
	VA     uint64 `json:"va"`
	PA     uint64 `json:"pa,omitempty"`
	Word   uint32 `json:"word,omitempty"`
	Disasm string `json:"disasm,omitempty"`
	Detail string `json:"detail"`
}

func (f Finding) String() string {
	where := fmt.Sprintf("pid=%d domain=%d va=%#x", f.PID, f.Domain, f.VA)
	if f.Disasm != "" {
		return fmt.Sprintf("[%s] %s: %s (%s)", f.Checker, where, f.Detail, f.Disasm)
	}
	return fmt.Sprintf("[%s] %s: %s", f.Checker, where, f.Detail)
}

// Checker is one named invariant check over a snapshot.
type Checker struct {
	Name string
	Desc string
	Run  func(*Snapshot) []Finding
}

// Checkers returns the invariant registry for the default (lightzone)
// backend in its fixed execution order.
func Checkers() []Checker { return CheckersFor("lightzone") }

// CheckersFor returns the invariant registry for an isolation backend. The
// substrate-invariant checkers are shared; the third slot carries the
// substrate's own structural audit — call gates where gates exist
// (lightzone), otherwise the overlay-key or granule-state audit. The
// gate-semantics proof runs under every backend: it quantifies over the
// registered gates, so a substrate with none is trivially proven.
func CheckersFor(backend string) []Checker {
	substrate := Checker{
		Name: "gate-integrity",
		Desc: "every installed call-gate slot matches the generated gate; GateTab/TTBRTab entries consistent",
		Run:  checkGates,
	}
	switch backend {
	case "overlay":
		substrate = Checker{
			Name: "overlay-keys",
			Desc: "every overlay-keyed descriptor carries a granted key agreeing with module bookkeeping; keyed pages are protected-marked, kernel-only data",
			Run:  checkOverlayKeys,
		}
	case "granule":
		substrate = Checker{
			Name: "granule-state",
			Desc: "every zone-protected mapping backs onto a granule delegated and assigned to that zone; no foreign or unprotected alias of a delegated granule",
			Run:  checkGranules,
		}
	}
	return []Checker{
		{
			Name: "wx-audit",
			Desc: "no mapping is writable+executable; no writable or user alias of stub/gate/GateTab/TTBRTab frames",
			Run:  checkWX,
		},
		{
			Name: "sanitizer-sweep",
			Desc: "every executable application page re-passes the Table 3 sanitizer under the process policy",
			Run:  checkSanitizer,
		},
		substrate,
		{
			Name: "gate-semantics",
			Desc: "symbolic execution proves every gate path restores PAN, installs only the registered table and returns to the recorded entry",
			Run:  checkGateSemantics,
		},
		{
			Name: "cfg-reachability",
			Desc: "no application-reachable path executes a forbidden MSR/ERET/SMC or non-API HVC",
			Run:  checkCFG,
		},
		{
			Name: "cache-coherence",
			Desc: "TLB entries and valid decoded blocks agree with the current page tables and memory",
			Run:  checkCaches,
		},
		{
			Name: "cow-aliasing",
			Desc: "no copy-on-write frame storage backs two physical addresses in one machine; every shared frame carries a share cell covering its live holders",
			Run:  checkCOWAliasing,
		},
	}
}

// CheckerResult summarizes one checker's run.
type CheckerResult struct {
	Name     string `json:"name"`
	Findings int    `json:"findings"`
}

// Report is the result of running the full registry over one snapshot.
type Report struct {
	Machine  string          `json:"machine,omitempty"`
	Procs    int             `json:"procs"`
	Checkers []CheckerResult `json:"checkers"`
	Findings []Finding       `json:"findings"`
}

// Clean reports whether no checker produced findings.
func (r Report) Clean() bool { return len(r.Findings) == 0 }

// Run executes every registered checker against the snapshot.
func Run(s *Snapshot) Report { return RunMemo(s, nil) }

// RunMachine captures a snapshot of (m, lz) and runs the registry.
func RunMachine(m *hyp.Machine, lz *core.LightZone) (Report, error) {
	return RunMachineMemo(m, lz, nil)
}

// RunMachineMemo is RunMachine with a checker memo for repeated
// verifications of the same machine (the chokepoint observer).
func RunMachineMemo(m *hyp.Machine, lz *core.LightZone, mo *Memo) (Report, error) {
	s, err := Capture(m, lz)
	if err != nil {
		return Report{}, err
	}
	return RunMemo(s, mo), nil
}
