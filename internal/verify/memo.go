package verify

import (
	"encoding/binary"
	"hash/maphash"

	"lightzone/internal/mem"
)

// Memo caches the results of content-keyed checkers across repeated
// verifications of one machine. The chokepoint observer (-invariants mode)
// re-runs the whole registry after every security-state mutation, but the
// expensive analyses — the sanitizer sweep and the exact CFG — are pure
// functions of the executable mappings, their bytes, the gate registrations
// and the policy. The memo hashes exactly those inputs; when the key is
// unchanged the previous findings are returned verbatim, so memoised runs
// are byte-identical to fresh ones (same inputs, same pure function, and
// snapshot iteration order is deterministic). This is the same host-side
// fastpath discipline as the cpu micro-TLBs: elide host work only when the
// result is provably the one the slow path would produce.
type Memo struct {
	seed    maphash.Seed
	scratch []byte
	entries map[string]memoEntry
}

type memoEntry struct {
	key      uint64
	findings []Finding
}

// NewMemo creates an empty checker memo.
func NewMemo() *Memo {
	return &Memo{seed: maphash.MakeSeed(), entries: make(map[string]memoEntry)}
}

// memoizable names the checkers whose inputs execKey covers completely.
var memoizable = map[string]bool{
	"sanitizer-sweep":  true,
	"cfg-reachability": true,
}

func hashU64(h *maphash.Hash, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	h.Write(b[:])
}

// execKey hashes every snapshot input the memoizable checkers read: per
// process its identity, sanitization policy and gate registrations, and per
// domain every kernel-executable non-TTBR1 mapping — descriptor, geometry,
// real frame and the bytes currently behind it. Returns false (no caching)
// if any executable mapping is unreadable, so error findings are always
// recomputed.
func (mo *Memo) execKey(s *Snapshot) (uint64, bool) {
	var h maphash.Hash
	h.SetSeed(mo.seed)
	hashU64(&h, uint64(len(s.Procs)))
	for pi := range s.Procs {
		p := &s.Procs[pi]
		hashU64(&h, uint64(p.PID))
		h.WriteString(p.Name)
		hashU64(&h, uint64(p.Policy))
		hashU64(&h, uint64(len(p.Gates)))
		for _, g := range p.Gates {
			hashU64(&h, uint64(g.ID))
			hashU64(&h, g.Entry)
			hashU64(&h, uint64(g.PGTID))
		}
		hashU64(&h, uint64(len(p.Domains)))
		for di := range p.Domains {
			d := &p.Domains[di]
			hashU64(&h, uint64(d.ID))
			for _, m := range d.Maps {
				if !m.Exec() || !m.HasReal || mem.IsTTBR1(m.VA) {
					continue
				}
				hashU64(&h, uint64(m.VA))
				hashU64(&h, m.Desc)
				hashU64(&h, m.Size)
				hashU64(&h, uint64(m.Real))
				if uint64(cap(mo.scratch)) < m.Size {
					mo.scratch = make([]byte, m.Size)
				}
				buf := mo.scratch[:m.Size]
				if err := s.M.PM.Read(m.Real, buf); err != nil {
					return 0, false
				}
				h.Write(buf)
			}
			hashU64(&h, ^uint64(0)) // domain sentinel
		}
	}
	return h.Sum64(), true
}

// RunMemo executes the checker registry like Run, consulting mo for the
// content-keyed checkers. A nil memo degenerates to Run.
func RunMemo(s *Snapshot, mo *Memo) Report {
	rep := Report{Procs: len(s.Procs)}
	if s.M != nil && s.M.Prof != nil {
		rep.Machine = s.M.Prof.Name
	}
	key := uint64(0)
	haveKey := false
	if mo != nil {
		key, haveKey = mo.execKey(s)
	}
	for _, c := range CheckersFor(s.BackendName()) {
		var found []Finding
		if haveKey && memoizable[c.Name] {
			if e, ok := mo.entries[c.Name]; ok && e.key == key {
				found = e.findings
			} else {
				found = c.Run(s)
				mo.entries[c.Name] = memoEntry{key: key, findings: found}
			}
		} else {
			found = c.Run(s)
		}
		rep.Checkers = append(rep.Checkers, CheckerResult{Name: c.Name, Findings: len(found)})
		rep.Findings = append(rep.Findings, found...)
	}
	return rep
}
