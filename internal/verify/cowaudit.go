package verify

// checkCOWAliasing audits the copy-on-write frame structure of the
// machine's physical memory: across the whole fork family, every frame
// storage backs exactly one physical address per machine, every shared
// storage carries a share cell, and every cell's count covers its live
// holders. A violation means one write could become visible at a second
// physical address — and therefore inside a second isolation domain —
// without any stage-1/stage-2 translation connecting them, a channel no
// page-table audit can see. Findings carry the exact PA in both the VA and
// PA fields (the audit is an address-space-independent, machine-wide
// property; Domain -1 marks it process-unscoped).
func checkCOWAliasing(s *Snapshot) []Finding {
	var out []Finding
	for _, issue := range s.M.PM.AuditCOW() {
		out = append(out, Finding{
			Checker: "cow-aliasing",
			PID:     -1,
			Domain:  -1,
			VA:      uint64(issue.PA),
			PA:      uint64(issue.PA),
			Detail:  issue.Detail,
		})
	}
	return out
}
