package verify

import (
	"strings"
	"testing"

	"lightzone/internal/cpu"
	"lightzone/internal/mem"
)

// TestMicroEntryCheck exercises the micro-TLB coherence helper with
// fabricated entries against a hand-built TLB.
func TestMicroEntryCheck(t *testing.T) {
	tlb := mem.NewTLB(16)
	// Tagged 4KB entry: (vmid 1, asid 2) va 0x10000 -> 0x5000.
	tlb.Insert(1, 2, 0x10000, mem.TLBEntry{
		PABase: 0x5000, S1Desc: mem.AttrNG, BlockShift: mem.PageShift,
	})
	// Global 4KB entry: vmid 1, any ASID, va 0x30000 -> 0x7000.
	tlb.Insert(1, 9, 0x30000, mem.TLBEntry{
		PABase: 0x7000, BlockShift: mem.PageShift,
	})
	// Huge entry: (vmid 1, asid 2) region 0x200000 -> 0x400000.
	tlb.Insert(1, 2, 0x200000, mem.TLBEntry{
		PABase: 0x400000, S1Desc: mem.AttrNG, BlockShift: mem.HugePageShift,
	})
	gen := tlb.Gen()

	live := func(page uint64, pa mem.PA, asid uint16) cpu.MicroTLBEntry {
		return cpu.MicroTLBEntry{
			Side: "D", Valid: true, Page: page, PABase: pa,
			TLBGen: gen, VMID: 1, ASID: asid,
		}
	}
	cases := []struct {
		name string
		e    cpu.MicroTLBEntry
		want string // substring of the expected detail, "" = coherent
	}{
		{"tagged-coherent", live(0x10, 0x5000, 2), ""},
		{"global-any-asid", live(0x30, 0x7000, 77), ""},
		{"huge-offset", live(0x203, 0x403000, 2), ""},
		{"wrong-pa", live(0x10, 0x6000, 2), "the TLB says"},
		{"no-backing", live(0x50, 0x5000, 2), "no backing TLB entry"},
		{"wrong-asid", live(0x10, 0x5000, 3), "no backing TLB entry"},
		{"wrong-vmid", cpu.MicroTLBEntry{
			Side: "I", Valid: true, Page: 0x10, PABase: 0x5000, TLBGen: gen, VMID: 2, ASID: 2,
		}, "no backing TLB entry"},
		{"invalid-dormant", cpu.MicroTLBEntry{Page: 0x50, TLBGen: gen, VMID: 1}, ""},
		{"stale-gen-dormant", cpu.MicroTLBEntry{
			Valid: true, Page: 0x50, TLBGen: gen - 1, VMID: 1, ASID: 2,
		}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := microEntryCheck(tc.e, tlb)
			if tc.want == "" && got != "" {
				t.Errorf("unexpected finding: %s", got)
			}
			if tc.want != "" && !strings.Contains(got, tc.want) {
				t.Errorf("detail %q does not contain %q", got, tc.want)
			}
		})
	}

	// With a Code epoch tracker attached, a live TLB generation but stale
	// code generation is dormant too.
	tlb.Code = mem.NewCodeEpochs(nil)
	tlb.Code.BumpAll()
	e := live(0x10, 0x6000, 2) // would be a finding if considered live
	if got := microEntryCheck(e, tlb); got != "" {
		t.Errorf("stale code generation should be dormant, got: %s", got)
	}
}
