package verify

import (
	"fmt"

	"lightzone/internal/arm64"
	"lightzone/internal/core"
	"lightzone/internal/cpu"
	"lightzone/internal/kernel"
	"lightzone/internal/mem"
)

// pidVA dedupes findings that would otherwise repeat per domain view.
type pidVA struct {
	pid int
	va  mem.VA
}

// regionName classifies a TTBR1-half VA into the LightZone-owned region it
// belongs to.
func regionName(va mem.VA) string {
	switch {
	case uint64(va) >= core.TTBRTabBase():
		return "ttbrtab"
	case uint64(va) >= core.GateTabBase():
		return "gatetab"
	case uint64(va) >= core.GateCodeBase():
		return "gate-code"
	default:
		return "stub"
	}
}

// ttbr1Real resolves a TTBR1-half VA to the real physical address behind it
// via a software walk of the process's TTBR1 table and the fake-physical
// layer. Gate code frames are not physically contiguous (table-frame
// allocation interleaves with them), so per-page resolution is the only
// correct way to read gate state.
func ttbr1Real(p *ProcSnap, va uint64) (mem.PA, bool) {
	res, err := p.TTBR1Table().Walk(mem.VA(va))
	if err != nil || !res.Found {
		return 0, false
	}
	real, ok := p.RealOf(mem.IPA(res.Desc & mem.OAMask))
	if !ok {
		return 0, false
	}
	return real + mem.PA(va&mem.PageMask), ok
}

// checkWX is the W-xor-X audit: no stage-1 mapping anywhere may be both
// writable and executable; the frames backing the TTBR1 half (trap stub,
// gate code, GateTab, TTBRTab) must never be writable, user-accessible or
// aliased writable/user from any TTBR0 domain table; and stage-2 must not
// grant the process write access to them either.
func checkWX(s *Snapshot) []Finding {
	var out []Finding
	for pi := range s.Procs {
		p := &s.Procs[pi]
		sensitive := make(map[mem.PA]string)
		for _, m := range p.TTBR1 {
			region := regionName(m.VA)
			if !m.HasReal {
				out = append(out, Finding{
					Checker: "wx-audit", PID: p.PID, Proc: p.Name, Domain: -1,
					VA:     uint64(m.VA),
					Detail: fmt.Sprintf("%s mapping has no real frame behind its fake OA %#x", region, m.Desc&mem.OAMask),
				})
				continue
			}
			sensitive[m.Real] = region
			if m.Writable() {
				out = append(out, Finding{
					Checker: "wx-audit", PID: p.PID, Proc: p.Name, Domain: -1,
					VA: uint64(m.VA), PA: uint64(m.Real),
					Detail: fmt.Sprintf("LightZone-reserved %s page is writable", region),
				})
			}
			if m.User() {
				out = append(out, Finding{
					Checker: "wx-audit", PID: p.PID, Proc: p.Name, Domain: -1,
					VA: uint64(m.VA), PA: uint64(m.Real),
					Detail: fmt.Sprintf("LightZone-reserved %s page is user-accessible", region),
				})
			}
		}
		for _, d := range p.Domains {
			for _, m := range d.Maps {
				if m.Exec() && m.Writable() {
					out = append(out, Finding{
						Checker: "wx-audit", PID: p.PID, Proc: p.Name, Domain: d.ID,
						VA: uint64(m.VA), PA: uint64(m.Real),
						Detail: "writable and executable mapping (W xor X violated)",
					})
				}
				if !m.HasReal {
					out = append(out, Finding{
						Checker: "wx-audit", PID: p.PID, Proc: p.Name, Domain: d.ID,
						VA:     uint64(m.VA),
						Detail: fmt.Sprintf("mapping has no real frame behind its fake OA %#x", m.Desc&mem.OAMask),
					})
					continue
				}
				for off := uint64(0); off < m.Size; off += mem.PageSize {
					region, hit := sensitive[m.Real+mem.PA(off)]
					if !hit {
						continue
					}
					switch {
					case m.Writable():
						out = append(out, Finding{
							Checker: "wx-audit", PID: p.PID, Proc: p.Name, Domain: d.ID,
							VA: uint64(m.VA) + off, PA: uint64(m.Real + mem.PA(off)),
							Detail: fmt.Sprintf("writable TTBR0 alias of %s frame", region),
						})
					case m.User():
						out = append(out, Finding{
							Checker: "wx-audit", PID: p.PID, Proc: p.Name, Domain: d.ID,
							VA: uint64(m.VA) + off, PA: uint64(m.Real + mem.PA(off)),
							Detail: fmt.Sprintf("user-accessible TTBR0 alias of %s frame", region),
						})
					}
				}
			}
		}
		// Stage-2 must keep every sensitive frame read-only: stage-1
		// attributes are attacker-adjacent (TTBR0 tables), stage-2 is the
		// hypervisor's backstop.
		_ = p.S2().Visit(func(ipa mem.IPA, desc uint64, size uint64) bool {
			if desc&mem.S2APWrite == 0 {
				return true
			}
			real := mem.PA(desc & mem.OAMask)
			for off := uint64(0); off < size; off += mem.PageSize {
				if region, hit := sensitive[real+mem.PA(off)]; hit {
					out = append(out, Finding{
						Checker: "wx-audit", PID: p.PID, Proc: p.Name, Domain: -1,
						VA: uint64(ipa) + off, PA: uint64(real + mem.PA(off)),
						Detail: fmt.Sprintf("stage-2 grants write access to %s frame", region),
					})
				}
			}
			return true
		})
	}
	return out
}

// checkSanitizer re-proves the Table 3 claim: every kernel-executable page
// reachable through any TTBR0 domain table contains no sensitive
// instruction under the process's sanitization policy. The TTBR1 half is
// exempt by construction (the stub ERETs, the gate writes TTBR0 — that is
// their job and they are immutable to the process).
func checkSanitizer(s *Snapshot) []Finding {
	var out []Finding
	for pi := range s.Procs {
		p := &s.Procs[pi]
		if p.Policy == core.SanNone {
			continue // ablation: no sanitization invariant is claimed
		}
		seen := make(map[pidVA]bool)
		for _, d := range p.Domains {
			for _, m := range d.Maps {
				if !m.Exec() || !m.HasReal || mem.IsTTBR1(m.VA) {
					continue
				}
				data := make([]byte, m.Size)
				if err := s.M.PM.Read(m.Real, data); err != nil {
					out = append(out, Finding{
						Checker: "sanitizer-sweep", PID: p.PID, Proc: p.Name, Domain: d.ID,
						VA: uint64(m.VA), PA: uint64(m.Real),
						Detail: fmt.Sprintf("executable mapping unreadable: %v", err),
					})
					continue
				}
				for _, v := range core.SanitizeAll(data, p.Policy) {
					va := m.VA + mem.VA(v.Offset)
					if seen[pidVA{p.PID, va}] {
						continue
					}
					seen[pidVA{p.PID, va}] = true
					out = append(out, Finding{
						Checker: "sanitizer-sweep", PID: p.PID, Proc: p.Name, Domain: d.ID,
						VA: uint64(va), PA: uint64(m.Real) + uint64(v.Offset),
						Word: v.Word, Disasm: arm64.Disassemble(v.Word),
						Detail: fmt.Sprintf("sensitive instruction in executable page: %s", v.Reason),
					})
				}
			}
		}
	}
	return out
}

// checkGates verifies every registered call-gate slot structurally: branches
// confined to the slot, a lone TTBR0 write, terminal RET, violation-only
// HVC, and consistency of the GateTab and TTBRTab entries the gate consults
// at run time. Byte identity with the generated gate is deliberately NOT
// checked here any more — the load-bearing check is the semantic proof
// (gate-semantics), which accepts any gate body with the proven properties
// and rejects byte-plausible ones without them. The slot is audited over its
// occupied extent (trailing zero words are unreachable padding that faults
// closed).
func checkGates(s *Snapshot) []Finding {
	var out []Finding
	for pi := range s.Procs {
		p := &s.Procs[pi]
		domains := make(map[int]*DomainSnap)
		for di := range p.Domains {
			domains[p.Domains[di].ID] = &p.Domains[di]
		}
		for _, g := range p.Gates {
			slotVA := core.GateCodeBase() + uint64(g.ID)*core.GateSlotLen
			slotPA, ok := ttbr1Real(p, slotVA)
			if !ok {
				out = append(out, Finding{
					Checker: "gate-integrity", PID: p.PID, Proc: p.Name, Domain: -1,
					VA:     slotVA,
					Detail: fmt.Sprintf("gate %d: slot not mapped in TTBR1", g.ID),
				})
				continue
			}
			raw := make([]byte, core.GateSlotLen)
			if err := s.M.PM.Read(slotPA, raw); err != nil {
				out = append(out, Finding{
					Checker: "gate-integrity", PID: p.PID, Proc: p.Name, Domain: -1,
					VA: slotVA, PA: uint64(slotPA),
					Detail: fmt.Sprintf("gate %d: slot unreadable: %v", g.ID, err),
				})
				continue
			}
			words := arm64.BytesToWords(raw)
			extent := len(words)
			for extent > 0 && words[extent-1] == 0 {
				extent--
			}
			out = append(out, gateStructure(p, g, slotVA, words[:extent])...)
			out = append(out, gateTables(s, p, g, domains)...)
		}
	}
	return out
}

// gateStructure decodes the installed slot and checks the properties that
// make the gate safe independently of byte identity — the structural
// argument of §6.2.
func gateStructure(p *ProcSnap, g core.GateInfo, slotVA uint64, words []uint32) []Finding {
	var out []Finding
	slotEnd := slotVA + uint64(len(words))*arm64.InsnBytes
	ttbr0Key := arm64.TTBR0EL1.Enc().Key()
	msrTTBR0, rets := 0, 0
	finding := func(i int, detail string) {
		out = append(out, Finding{
			Checker: "gate-integrity", PID: p.PID, Proc: p.Name, Domain: -1,
			VA: slotVA + uint64(i)*arm64.InsnBytes, Word: words[i],
			Disasm: arm64.Disassemble(words[i]),
			Detail: fmt.Sprintf("gate %d: %s", g.ID, detail),
		})
	}
	for i, w := range words {
		in := arm64.Decode(w)
		pc := slotVA + uint64(i)*arm64.InsnBytes
		switch in.Op {
		case arm64.OpB, arm64.OpBL, arm64.OpBCond, arm64.OpCBZ, arm64.OpCBNZ:
			if tgt := pc + uint64(in.Imm); tgt < slotVA || tgt >= slotEnd {
				finding(i, fmt.Sprintf("branch leaves the gate slot (target %#x)", tgt))
			}
		case arm64.OpBR, arm64.OpBLR:
			finding(i, "indirect branch inside the gate (check phase must be unskippable)")
		case arm64.OpMSRReg:
			if in.Sys.Key() == ttbr0Key {
				msrTTBR0++
			} else {
				finding(i, "system-register write other than TTBR0_EL1")
			}
		case arm64.OpRET:
			rets++
		case arm64.OpERET:
			finding(i, "ERET inside the gate")
		case arm64.OpHVC:
			if in.Imm != core.HVCViolation {
				finding(i, fmt.Sprintf("HVC #%#x is not the violation report", in.Imm))
			}
		case arm64.OpSVC, arm64.OpSMC:
			finding(i, fmt.Sprintf("unexpected %v in the gate", in.Op))
		case arm64.OpUnknown:
			finding(i, "undecodable word in the gate")
		}
	}
	if msrTTBR0 != 1 {
		out = append(out, Finding{
			Checker: "gate-integrity", PID: p.PID, Proc: p.Name, Domain: -1,
			VA:     slotVA,
			Detail: fmt.Sprintf("gate %d: expected exactly one TTBR0_EL1 write, found %d", g.ID, msrTTBR0),
		})
	}
	if rets != 1 {
		out = append(out, Finding{
			Checker: "gate-integrity", PID: p.PID, Proc: p.Name, Domain: -1,
			VA:     slotVA,
			Detail: fmt.Sprintf("gate %d: expected exactly one RET, found %d", g.ID, rets),
		})
	}
	return out
}

// gateTables cross-checks the GateTab entry (ENTRY, PGTID) and the TTBRTab
// slot the gate will read, via the same TTBR1 translations the hardware
// would use.
func gateTables(s *Snapshot, p *ProcSnap, g core.GateInfo, domains map[int]*DomainSnap) []Finding {
	var out []Finding
	entryVA := core.GateTabBase() + uint64(g.ID)*16
	bad := func(va uint64, detail string) {
		out = append(out, Finding{
			Checker: "gate-integrity", PID: p.PID, Proc: p.Name, Domain: -1,
			VA: va, Detail: fmt.Sprintf("gate %d: %s", g.ID, detail),
		})
	}
	entryPA, ok := ttbr1Real(p, entryVA)
	if !ok {
		bad(entryVA, "GateTab entry not mapped in TTBR1")
		return out
	}
	entry, err1 := s.M.PM.ReadU64(entryPA)
	pgtid, err2 := s.M.PM.ReadU64(entryPA + 8)
	if err1 != nil || err2 != nil {
		bad(entryVA, "GateTab entry unreadable")
		return out
	}
	if entry != g.Entry {
		bad(entryVA, fmt.Sprintf("GateTab ENTRY is %#x, registered entry is %#x", entry, g.Entry))
	}
	if pgtid != uint64(g.PGTID) {
		bad(entryVA+8, fmt.Sprintf("GateTab PGTID is %d, registered target is %d", pgtid, g.PGTID))
	}
	d, ok := domains[g.PGTID]
	if !ok {
		bad(entryVA+8, fmt.Sprintf("gate targets page table %d which does not exist", g.PGTID))
		return out
	}
	ttbrVA := core.TTBRTabBase() + uint64(g.PGTID)*8
	ttbrPA, ok := ttbr1Real(p, ttbrVA)
	if !ok {
		bad(ttbrVA, fmt.Sprintf("TTBRTab slot for page table %d not mapped in TTBR1", g.PGTID))
		return out
	}
	ttbr, err := s.M.PM.ReadU64(ttbrPA)
	if err != nil {
		bad(ttbrVA, "TTBRTab slot unreadable")
		return out
	}
	if ttbr != d.TTBR {
		bad(ttbrVA, fmt.Sprintf("TTBRTab[%d] is %#x, page table %d has TTBR %#x", g.PGTID, ttbr, d.ID, d.TTBR))
	}
	return out
}

// checkCFG builds an exact control-flow graph over each domain's executable
// pages and proves no application-reachable instruction is forbidden. The
// CFG distinguishes literal pools and smuggled-but-unreachable words from
// instructions that can actually execute; reachable undecodable words and
// non-API hypervisor calls are flagged too. The SanNone ablation is audited
// under the TTBR policy — the CFG answers "could this escalate", not "was
// the sanitizer configured".
func checkCFG(s *Snapshot) []Finding {
	var out []Finding
	for pi := range s.Procs {
		p := &s.Procs[pi]
		pol := p.Policy
		if pol == core.SanNone {
			pol = core.SanTTBR
		}
		seen := make(map[pidVA]bool)
		for _, d := range p.Domains {
			var segs []arm64.CFGSegment
			for _, m := range d.Maps {
				if !m.Exec() || !m.HasReal || mem.IsTTBR1(m.VA) {
					continue
				}
				data := make([]byte, m.Size)
				if err := s.M.PM.Read(m.Real, data); err != nil {
					continue // unreadable exec page already reported by the sweep
				}
				segs = append(segs, arm64.CFGSegment{Base: uint64(m.VA), Words: arm64.BytesToWords(data)})
			}
			if len(segs) == 0 {
				continue
			}
			entries := []uint64{uint64(kernel.TextBase)}
			for _, g := range p.Gates {
				if g.PGTID == d.ID {
					entries = append(entries, g.Entry)
				}
			}
			cfg := arm64.BuildCFG(segs, entries)
			cfg.VisitReachable(func(addr uint64, word uint32, in arm64.Insn) bool {
				key := pidVA{p.PID, mem.VA(addr)}
				if seen[key] {
					return true
				}
				detail := ""
				switch {
				case core.CheckWord(word, pol) != "":
					detail = fmt.Sprintf("reachable sensitive instruction: %s", core.CheckWord(word, pol))
				case in.Op == arm64.OpHVC && in.Imm != core.HVCSyscall &&
					!(p.Backend == "granule" && in.Imm == core.HVCGranuleEnter):
					// The realm-enter call is part of the granule backend's
					// API surface; under every other backend it is as foreign
					// as any unknown hypercall.
					detail = fmt.Sprintf("reachable HVC #%#x is not the syscall API", in.Imm)
				case in.Op == arm64.OpUnknown && word != 0:
					// Zero words are text padding reached by fall-through past
					// the last instruction; they are architecturally undefined
					// and fault closed, so only non-zero undecodable words are
					// suspicious.
					detail = "reachable undecodable word"
				default:
					return true
				}
				seen[key] = true
				out = append(out, Finding{
					Checker: "cfg-reachability", PID: p.PID, Proc: p.Name, Domain: d.ID,
					VA: addr, Word: word, Disasm: arm64.Disassemble(word),
					Detail: detail,
				})
				return true
			})
		}
	}
	return out
}

// checkCaches proves the translation and decode caches coherent: every TLB
// entry belonging to a LightZone VM must be re-derivable by a software walk
// of the table its tag selects, and every epoch-valid decoded block must
// match the bytes currently reachable through its keyed address space.
func checkCaches(s *Snapshot) []Finding {
	var out []Finding
	byVMID := make(map[uint16]*ProcSnap)
	for pi := range s.Procs {
		byVMID[s.Procs[pi].VMID] = &s.Procs[pi]
	}
	tlb := s.M.CPU.TLB
	tlb.Visit(func(vmid, asid uint16, global bool, va mem.VA, e mem.TLBEntry) bool {
		p, ok := byVMID[vmid]
		if !ok {
			return true // host/outer-guest entry: no LightZone invariant
		}
		switch {
		case mem.IsTTBR1(va):
			out = append(out, tlbCheck(p, -1, p.TTBR1Table(), va, e)...)
		case global:
			// Global (unprotected) mappings must agree with every domain
			// view — that is what makes them safe to share across switches.
			for _, d := range p.Domains {
				out = append(out, tlbCheck(p, d.ID, d.S1, va, e)...)
			}
		default:
			found := false
			for _, d := range p.Domains {
				if d.ASID == asid {
					out = append(out, tlbCheck(p, d.ID, d.S1, va, e)...)
					found = true
					break
				}
			}
			if !found {
				out = append(out, Finding{
					Checker: "cache-coherence", PID: p.PID, Proc: p.Name, Domain: -1,
					VA:     uint64(va),
					Detail: fmt.Sprintf("TLB entry tagged with ASID %d which no live page table uses", asid),
				})
			}
		}
		return true
	})
	out = append(out, blockCacheCheck(s, byVMID)...)
	out = append(out, traceCacheCheck(s, byVMID)...)
	out = append(out, checkMicroTLBs(s, byVMID)...)
	return out
}

// tlbCheck re-walks one stage-1 table for a cached translation and compares
// descriptor, mapping size and the real output frame.
func tlbCheck(p *ProcSnap, domain int, s1 *mem.Stage1, va mem.VA, e mem.TLBEntry) []Finding {
	var out []Finding
	bad := func(detail string) {
		out = append(out, Finding{
			Checker: "cache-coherence", PID: p.PID, Proc: p.Name, Domain: domain,
			VA: uint64(va), PA: uint64(e.PABase), Detail: detail,
		})
	}
	res, err := s1.Walk(va)
	if err != nil || !res.Found {
		bad("TLB entry for a VA the page table no longer maps")
		return out
	}
	if res.Desc != e.S1Desc {
		bad(fmt.Sprintf("TLB stage-1 descriptor %#x differs from table descriptor %#x", e.S1Desc, res.Desc))
		return out
	}
	if res.BlockShift != e.BlockShift {
		bad(fmt.Sprintf("TLB block shift %d differs from table %d", e.BlockShift, res.BlockShift))
		return out
	}
	fk := mem.IPA(res.Desc & mem.OAMask)
	if e.BlockShift == mem.HugePageShift {
		fk &^= mem.IPA(mem.HugePageMask)
	}
	real, ok := p.RealOf(fk)
	if !ok {
		bad(fmt.Sprintf("no real frame behind fake OA %#x of the cached mapping", uint64(fk)))
		return out
	}
	if real != e.PABase {
		bad(fmt.Sprintf("TLB output base %#x differs from current real frame %#x", uint64(e.PABase), uint64(real)))
	}
	if e.HasS2 {
		s2res, err := p.S2().Walk(fk)
		if err != nil || !s2res.Found {
			bad("TLB entry with stage-2 attributes for an unmapped IPA")
		} else if s2res.Desc != e.S2Desc {
			bad(fmt.Sprintf("TLB stage-2 descriptor %#x differs from table descriptor %#x", e.S2Desc, s2res.Desc))
		}
	}
	return out
}

// blockCacheCheck verifies that every decoded block the pipeline would
// still replay (epoch-valid) decodes the bytes currently behind its page.
func blockCacheCheck(s *Snapshot, byVMID map[uint16]*ProcSnap) []Finding {
	var out []Finding
	for _, b := range s.M.CPU.DecodedBlocks() {
		if !b.EpochOK {
			continue // stale: discarded on next entry, no invariant
		}
		p, ok := byVMID[b.VMID]
		if !ok {
			continue
		}
		va := b.Page<<mem.PageShift | uint64(b.Off)
		bad := func(detail string) {
			out = append(out, Finding{
				Checker: "cache-coherence", PID: p.PID, Proc: p.Name, Domain: -1,
				VA: va, Detail: detail,
			})
		}
		pa, detail := codeFramePA(p, b.MMUOff, b.ASID, va)
		if detail != "" {
			bad("decoded block " + detail)
			continue
		}
		raw := make([]byte, len(b.Raw)*arm64.InsnBytes)
		if err := s.M.PM.Read(pa, raw); err != nil {
			bad(fmt.Sprintf("decoded block bytes unreadable at %#x: %v", uint64(pa), err))
			continue
		}
		for i, w := range arm64.BytesToWords(raw) {
			if w != b.Raw[i] {
				bad(fmt.Sprintf("epoch-valid decoded block differs from memory at +%#x: cached %#08x, memory %#08x",
					i*arm64.InsnBytes, b.Raw[i], w))
				break
			}
		}
	}
	return out
}

// codeFramePA resolves the real physical address behind an executable VA in
// the keyed address space a cached artifact (decoded block or stitched
// trace) was built under, mirroring the fetch path the pipeline itself
// takes. A non-empty string is a finding detail: resolution failed, so the
// cached artifact outlived its mapping.
func codeFramePA(p *ProcSnap, mmuOff bool, asid uint16, va uint64) (mem.PA, string) {
	if mmuOff {
		return mem.PA(va), ""
	}
	var s1 *mem.Stage1
	if mem.IsTTBR1(mem.VA(va)) {
		s1 = p.TTBR1Table()
	} else {
		for _, d := range p.Domains {
			if d.ASID == asid {
				s1 = d.S1
				break
			}
		}
		// Global-page code carries the ASID that was live at decode time;
		// any domain view must yield the same bytes, so the base table
		// stands in when the ASID is gone.
		if s1 == nil && len(p.Domains) > 0 {
			s1 = p.Domains[0].S1
		}
	}
	if s1 == nil {
		return 0, fmt.Sprintf("tagged with ASID %d which no table uses", asid)
	}
	res, err := s1.Walk(mem.VA(va))
	if err != nil || !res.Found {
		return 0, "covers a VA the page table no longer maps"
	}
	fk := mem.IPA(res.Desc & mem.OAMask)
	off := va & mem.PageMask
	if res.BlockShift == mem.HugePageShift {
		fk &^= mem.IPA(mem.HugePageMask)
		off = va & uint64(mem.HugePageMask)
	}
	real, ok := p.RealOf(fk)
	if !ok {
		return 0, fmt.Sprintf("has no real frame behind fake OA %#x", uint64(fk))
	}
	return real + mem.PA(off), ""
}

// traceCacheCheck extends the audit to stitched traces: a live trace — one
// whose entry guard would still pass (member page epochs fresh, member
// blocks still the cached blocks under their keys) — must predict exactly
// the words currently readable through its keyed address space at every
// step PC. A dead trace carries no invariant: the guard refuses it and the
// stitcher rebuilds from memory.
func traceCacheCheck(s *Snapshot, byVMID map[uint16]*ProcSnap) []Finding {
	var out []Finding
	for _, tr := range s.M.CPU.TraceSnapshot() {
		p, ok := byVMID[tr.VMID]
		if !ok {
			continue
		}
		va, detail := traceWordsCheck(tr, func(va uint64) (mem.PA, string) {
			return codeFramePA(p, tr.MMUOff, tr.ASID, va)
		}, s.M.PM.ReadU32)
		if detail != "" {
			out = append(out, Finding{
				Checker: "cache-coherence", PID: p.PID, Proc: p.Name, Domain: -1,
				VA: va, Detail: detail,
			})
		}
	}
	return out
}

// traceWordsCheck is the per-trace core of traceCacheCheck, parameterized
// over address resolution and physical reads so it unit-tests without a
// machine snapshot. It returns the offending VA and a finding detail, or
// ("", 0) when the trace is coherent or dormant.
func traceWordsCheck(tr cpu.TraceInfo, resolve func(uint64) (mem.PA, string), readU32 func(mem.PA) (uint32, error)) (uint64, string) {
	if !tr.EpochOK || !tr.DepsOK {
		return 0, "" // dormant: refused by the entry guard, no invariant
	}
	for i, va := range tr.PCs {
		pa, detail := resolve(va)
		if detail != "" {
			return va, "live stitched trace " + detail
		}
		w, err := readU32(pa)
		if err != nil {
			return va, fmt.Sprintf("live stitched trace step unreadable at %#x: %v", uint64(pa), err)
		}
		if w != tr.Raw[i] {
			return va, fmt.Sprintf("live stitched trace differs from memory: step %d predicts %#08x, memory holds %#08x", i, tr.Raw[i], w)
		}
	}
	return 0, ""
}
