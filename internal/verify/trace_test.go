package verify

import (
	"fmt"
	"strings"
	"testing"

	"lightzone/internal/cpu"
	"lightzone/internal/mem"
)

// TestTraceWordsCheck exercises the stitched-trace coherence helper with
// fabricated traces against a fake address space: live traces must match
// memory word for word, dead traces carry no invariant.
func TestTraceWordsCheck(t *testing.T) {
	// Two-step trace: PCs 0x10000/0x10004 resolving to PAs 0x5000/0x5004.
	trace := func(epochOK, depsOK bool) cpu.TraceInfo {
		return cpu.TraceInfo{
			EntryPC: 0x10000, EpochOK: epochOK, DepsOK: depsOK,
			PCs: []uint64{0x10000, 0x10004}, Raw: []uint32{0x1111_1111, 0x2222_2222},
		}
	}
	resolve := func(va uint64) (mem.PA, string) {
		if va>>mem.PageShift != 0x10 {
			return 0, "covers a VA the page table no longer maps"
		}
		return mem.PA(va - 0x10000 + 0x5000), ""
	}
	memory := map[mem.PA]uint32{0x5000: 0x1111_1111, 0x5004: 0x2222_2222}
	readU32 := func(pa mem.PA) (uint32, error) {
		w, ok := memory[pa]
		if !ok {
			return 0, fmt.Errorf("unmapped PA %#x", uint64(pa))
		}
		return w, nil
	}

	if va, detail := traceWordsCheck(trace(true, true), resolve, readU32); detail != "" {
		t.Errorf("coherent live trace flagged at %#x: %s", va, detail)
	}

	// A word changes behind the trace without an epoch bump: the live trace
	// must be flagged at the exact step PC.
	memory[0x5004] = 0x3333_3333
	va, detail := traceWordsCheck(trace(true, true), resolve, readU32)
	if !strings.Contains(detail, "differs from memory") {
		t.Errorf("tampered live trace not flagged: %q", detail)
	}
	if va != 0x10004 {
		t.Errorf("finding at %#x, want the mismatching step PC 0x10004", va)
	}

	// The same tampering on a dead trace is no finding: the guard refuses
	// it, so it can never replay the stale words.
	for _, tr := range []cpu.TraceInfo{trace(false, true), trace(true, false)} {
		if va, detail := traceWordsCheck(tr, resolve, readU32); detail != "" {
			t.Errorf("dormant trace flagged at %#x: %s", va, detail)
		}
	}
	memory[0x5004] = 0x2222_2222

	// A live trace whose mapping disappeared is a finding even when no word
	// comparison is possible.
	gone := func(uint64) (mem.PA, string) { return 0, "covers a VA the page table no longer maps" }
	if _, detail := traceWordsCheck(trace(true, true), gone, readU32); !strings.Contains(detail, "no longer maps") {
		t.Errorf("unmapped live trace not flagged: %q", detail)
	}
	if _, detail := traceWordsCheck(trace(false, false), gone, readU32); detail != "" {
		t.Errorf("unmapped dead trace flagged: %s", detail)
	}
}
