package verify

import (
	"fmt"

	"lightzone/internal/cpu"
	"lightzone/internal/mem"
)

// checkMicroTLBs extends the cache-coherence audit to the host-side
// micro-TLBs. A micro entry is "live" when its generation snapshots equal
// the TLB's and code-epochs' current generations — exactly the state in
// which the fastpath would take a hit without consulting the real TLB. The
// generation discipline promises that a live entry's translation is still
// cached in the real TLB; this checker proves it, by re-deriving the page's
// output base from TLB.Visit and comparing. Dormant entries (stale
// generations) are skipped: the gate already blocks them from ever serving
// a hit, so they carry no invariant.
func checkMicroTLBs(s *Snapshot, byVMID map[uint16]*ProcSnap) []Finding {
	var out []Finding
	tlb := s.M.CPU.TLB
	for _, e := range s.M.CPU.MicroTLBSnapshot() {
		detail := microEntryCheck(e, tlb)
		if detail == "" {
			continue
		}
		f := Finding{
			Checker: "cache-coherence", Domain: -1,
			VA:     e.Page << mem.PageShift,
			PA:     uint64(e.PABase),
			Detail: detail,
		}
		if p, ok := byVMID[e.VMID]; ok {
			f.PID = p.PID
			f.Proc = p.Name
		}
		out = append(out, f)
	}
	return out
}

// microEntryCheck validates one micro-TLB entry against the real TLB it
// fronts. It returns "" for coherent or dormant entries, or a description
// of the violation. Exposed to tests through fabricated entries.
func microEntryCheck(e cpu.MicroTLBEntry, tlb *mem.TLB) string {
	if !e.Valid || e.TLBGen != tlb.Gen() {
		return "" // dormant: the TLB-generation gate blocks any hit
	}
	if tlb.Code != nil && e.CodeGen != tlb.Code.Gen() {
		return "" // dormant: the code-epoch gate blocks any hit
	}
	va := mem.VA(e.Page << mem.PageShift)
	var want mem.PA
	found := false
	tlb.Visit(func(vmid, asid uint16, global bool, tva mem.VA, te mem.TLBEntry) bool {
		if vmid != e.VMID || (!global && asid != e.ASID) {
			return true
		}
		if te.BlockShift == mem.HugePageShift {
			if uint64(tva) != uint64(va)&^uint64(mem.HugePageMask) {
				return true
			}
			want = te.PABase + mem.PA(uint64(va)&uint64(mem.HugePageMask))
		} else {
			if tva != va {
				return true
			}
			want = te.PABase
		}
		found = true
		return false
	})
	if !found {
		return fmt.Sprintf("live %s-side micro-TLB entry for va %#x has no backing TLB entry",
			e.Side, uint64(va))
	}
	if want != e.PABase {
		return fmt.Sprintf("live %s-side micro-TLB entry translates va %#x to %#x, the TLB says %#x",
			e.Side, uint64(va), uint64(e.PABase), uint64(want))
	}
	return ""
}
