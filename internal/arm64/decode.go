package arm64

func signExtend(v uint64, bits uint) int64 {
	shift := 64 - bits
	return int64(v<<shift) >> shift
}

// Decode decodes a 32-bit instruction word into the modelled subset.
// Words outside the subset decode to OpUnknown (the CPU raises an undefined
// instruction exception; the sanitizer treats unknown system-space words as
// sensitive).
func Decode(word uint32) Insn {
	in := Insn{Raw: word, SF: true}

	switch word {
	case WordNOP:
		in.Op = OpNOP
		return in
	case WordISB:
		in.Op = OpISB
		return in
	case WordDSBSY:
		in.Op = OpDSB
		return in
	case WordDMBSY:
		in.Op = OpDMB
		return in
	case WordERET:
		in.Op = OpERET
		return in
	}

	if IsSystemSpace(word) {
		return decodeSystem(word, in)
	}

	switch {
	case word>>24 == 0xD4: // exception generation
		return decodeExcGen(word, in)
	case word>>25&0x7F == 0b1101011: // unconditional branch (register)
		return decodeBranchReg(word, in)
	case word>>26&0x1F == 0b00101: // B / BL
		in.Imm = signExtend(uint64(word&0x03FFFFFF), 26) * 4
		if word>>31 == 1 {
			in.Op = OpBL
		} else {
			in.Op = OpB
		}
		return in
	case word>>24 == 0x54: // B.cond
		if word>>4&1 == 1 {
			break // o0=1 (BC.cond / undefined space) not modelled
		}
		in.Op = OpBCond
		in.Cond = uint8(word & 0xF)
		in.Imm = signExtend(uint64(word>>5&0x7FFFF), 19) * 4
		return in
	case word>>25&0x3F == 0b011010: // CBZ / CBNZ
		if word>>31 == 0 {
			break // 32-bit compare not modelled; the interpreter is 64-bit only
		}
		if word>>24&1 == 1 {
			in.Op = OpCBNZ
		} else {
			in.Op = OpCBZ
		}
		in.Rt = uint8(word & 0x1F)
		in.Imm = signExtend(uint64(word>>5&0x7FFFF), 19) * 4
		return in
	case word>>23&0x3F == 0b100101: // move wide
		return decodeMoveWide(word, in)
	case word>>22&0x3FF == 0b1101001101: // UBFM (64-bit, N=1)
		in.Op = OpUBFM
		in.Rd = uint8(word & 0x1F)
		in.Rn = uint8(word >> 5 & 0x1F)
		in.ShiftAmt = uint8(word >> 16 & 0x3F) // immr
		in.Imm = int64(word >> 10 & 0x3F)      // imms
		return in
	case word>>23&0x3F == 0b100010: // add/sub immediate
		return decodeAddSubImm(word, in)
	case word>>24&0x1F == 0b10000: // ADR (op bit 31 == 0)
		if word>>31 == 0 {
			in.Op = OpADR
			in.Rd = uint8(word & 0x1F)
			imm := uint64(word>>5&0x7FFFF)<<2 | uint64(word>>29&3)
			in.Imm = signExtend(imm, 21)
			return in
		}
	case word>>24&0x1F == 0b01011 && word>>21&1 == 0: // add/sub shifted reg
		return decodeAddSubReg(word, in)
	case word>>24&0x1F == 0b01010 && word>>21&1 == 0: // logical shifted reg
		return decodeLogicalReg(word, in)
	case word>>23&0x7F == 0b1010010: // load/store pair, 64-bit signed offset
		if word>>30 != 0b10 {
			break // 32-bit LDP/STP and LDPSW not modelled
		}
		in.Rt = uint8(word & 0x1F)
		in.Rn = uint8(word >> 5 & 0x1F)
		in.Rt2 = uint8(word >> 10 & 0x1F)
		in.Imm = signExtend(uint64(word>>15&0x7F), 7) * 8
		in.Size = 3
		if word>>22&1 == 1 {
			in.Op = OpLdp
		} else {
			in.Op = OpStp
		}
		return in
	case word>>21&0xFF == 0b11010100 && word>>10&3 == 0: // conditional select
		if word>>29 != 0b100 {
			break // only 64-bit CSEL; CSINV/CSNEG/CCMP space not modelled
		}
		in.Rd = uint8(word & 0x1F)
		in.Rn = uint8(word >> 5 & 0x1F)
		in.Rm = uint8(word >> 16 & 0x1F)
		in.Cond = uint8(word >> 12 & 0xF)
		in.Op = OpCSel
		return in
	case word>>21&0xFF == 0b11010100 && word>>10&3 == 1: // csinc
		if word>>29 != 0b100 {
			break
		}
		in.Rd = uint8(word & 0x1F)
		in.Rn = uint8(word >> 5 & 0x1F)
		in.Rm = uint8(word >> 16 & 0x1F)
		in.Cond = uint8(word >> 12 & 0xF)
		in.Op = OpCSInc
		return in
	case word>>21&0xFF == 0b11010110: // 2-source data processing
		return decodeTwoSource(word, in)
	case word>>24&0x1F == 0b11011: // 3-source data processing
		return decodeThreeSource(word, in)
	case word>>27&7 == 0b111 && word>>26&1 == 0: // loads/stores
		return decodeLoadStore(word, in)
	}

	in.Op = OpUnknown
	return in
}

func decodeSystem(word uint32, in Insn) Insn {
	enc := SysEncOf(word)
	in.Sys = enc
	in.Rt = uint8(word & 0x1F)
	l := word >> 21 & 1
	switch enc.Op0 {
	case 0:
		// MSR (immediate) or unmatched hint/barrier space. The immediate
		// form fixes Rt to 0b11111; other Rt values are undefined.
		if l == 0 && enc.CRn == 4 && in.Rt == 31 {
			in.Op = OpMSRImm
			in.Imm = int64(enc.CRm)
			return in
		}
	case 1:
		if l == 1 {
			in.Op = OpSYSL
		} else {
			in.Op = OpSYS
		}
		return in
	case 2, 3:
		if l == 1 {
			in.Op = OpMRS
		} else {
			in.Op = OpMSRReg
		}
		return in
	}
	in.Op = OpUnknown
	return in
}

func decodeExcGen(word uint32, in Insn) Insn {
	if word>>21&7 != 0 {
		in.Op = OpUnknown
		return in
	}
	in.Imm = int64(word >> 5 & 0xFFFF)
	switch word & 0x1F {
	case 0x01:
		in.Op = OpSVC
	case 0x02:
		in.Op = OpHVC
	case 0x03:
		in.Op = OpSMC
	default:
		in.Op = OpUnknown
	}
	return in
}

func decodeBranchReg(word uint32, in Insn) Insn {
	// op2 (20:16) must be 0b11111, op3 (15:10) and op4 (4:0) must be zero;
	// anything else in the space is an unmodelled (or undefined) encoding.
	if word>>16&0x1F != 0x1F || word>>10&0x3F != 0 || word&0x1F != 0 {
		in.Op = OpUnknown
		return in
	}
	in.Rn = uint8(word >> 5 & 0x1F)
	switch word >> 21 & 0xF {
	case 0b0000:
		in.Op = OpBR
	case 0b0001:
		in.Op = OpBLR
	case 0b0010:
		in.Op = OpRET
	default:
		in.Op = OpUnknown
	}
	return in
}

func decodeMoveWide(word uint32, in Insn) Insn {
	if word>>31 == 0 {
		in.Op = OpUnknown // 32-bit move wide not modelled
		return in
	}
	in.Rd = uint8(word & 0x1F)
	in.Imm = int64(word >> 5 & 0xFFFF)
	in.ShiftAmt = uint8(word>>21&3) * 16
	switch word >> 29 & 3 {
	case 0b00:
		in.Op = OpMOVN
	case 0b10:
		in.Op = OpMOVZ
	case 0b11:
		in.Op = OpMOVK
	default:
		in.Op = OpUnknown
	}
	return in
}

func decodeAddSubImm(word uint32, in Insn) Insn {
	if word>>31 == 0 {
		in.Op = OpUnknown // 32-bit add/sub not modelled
		return in
	}
	in.Rd = uint8(word & 0x1F)
	in.Rn = uint8(word >> 5 & 0x1F)
	in.Imm = int64(word >> 10 & 0xFFF)
	if word>>22&1 == 1 {
		in.Imm <<= 12
	}
	in.SetFlags = word>>29&1 == 1
	if word>>30&1 == 1 {
		in.Op = OpSubImm
	} else {
		in.Op = OpAddImm
	}
	return in
}

func decodeAddSubReg(word uint32, in Insn) Insn {
	if word>>31 == 0 || word>>22&3 != 0 {
		in.Op = OpUnknown // only 64-bit, LSL-shifted forms are modelled
		return in
	}
	in.Rd = uint8(word & 0x1F)
	in.Rn = uint8(word >> 5 & 0x1F)
	in.Rm = uint8(word >> 16 & 0x1F)
	in.ShiftAmt = uint8(word >> 10 & 0x3F)
	in.SetFlags = word>>29&1 == 1
	if word>>30&1 == 1 {
		in.Op = OpSubReg
	} else {
		in.Op = OpAddReg
	}
	return in
}

func decodeLogicalReg(word uint32, in Insn) Insn {
	if word>>31 == 0 || word>>22&3 != 0 {
		in.Op = OpUnknown // only 64-bit, LSL-shifted forms are modelled
		return in
	}
	in.Rd = uint8(word & 0x1F)
	in.Rn = uint8(word >> 5 & 0x1F)
	in.Rm = uint8(word >> 16 & 0x1F)
	in.ShiftAmt = uint8(word >> 10 & 0x3F)
	switch word >> 29 & 3 {
	case 0b00:
		in.Op = OpAndReg
	case 0b01:
		in.Op = OpOrrReg
	case 0b10:
		in.Op = OpEorReg
	case 0b11:
		in.Op = OpAndReg
		in.SetFlags = true
	}
	return in
}

func decodeTwoSource(word uint32, in Insn) Insn {
	if word>>29 != 0b100 {
		in.Op = OpUnknown // 64-bit UDIV/LSLV/LSRV only; S must be clear
		return in
	}
	in.Rd = uint8(word & 0x1F)
	in.Rn = uint8(word >> 5 & 0x1F)
	in.Rm = uint8(word >> 16 & 0x1F)
	switch word >> 10 & 0x3F {
	case 0b000010:
		in.Op = OpUDiv
	case 0b001000:
		in.Op = OpLSLV
	case 0b001001:
		in.Op = OpLSRV
	default:
		in.Op = OpUnknown
	}
	return in
}

func decodeThreeSource(word uint32, in Insn) Insn {
	if word>>31 == 0 || word>>29&3 != 0 || word>>21&7 != 0 || word>>15&1 != 0 {
		in.Op = OpUnknown // 64-bit MADD only
		return in
	}
	in.Op = OpMAdd
	in.Rd = uint8(word & 0x1F)
	in.Rn = uint8(word >> 5 & 0x1F)
	in.Rm = uint8(word >> 16 & 0x1F)
	in.Ra = uint8(word >> 10 & 0x1F)
	return in
}

func decodeLoadStore(word uint32, in Insn) Insn {
	if word>>23&1 == 1 {
		in.Op = OpUnknown // opc=1x: sign-extending loads / PRFM not modelled
		return in
	}
	in.Size = uint8(word >> 30 & 3)
	in.Rt = uint8(word & 0x1F)
	in.Rn = uint8(word >> 5 & 0x1F)
	isLoad := word>>22&1 == 1
	switch word >> 24 & 3 {
	case 0b01: // unsigned immediate, scaled
		in.Imm = int64(word>>10&0xFFF) << in.Size
		if isLoad {
			in.Op = OpLdrImm
		} else {
			in.Op = OpStrImm
		}
		return in
	case 0b00:
		if word>>21&1 != 0 {
			// Register-offset form: option must be LSL (0b011), S=0.
			if word>>13&7 == 0b011 && word>>10&3 == 0b10 && word>>12&1 == 0 {
				in.Rm = uint8(word >> 16 & 0x1F)
				if isLoad {
					in.Op = OpLdrReg
				} else {
					in.Op = OpStrReg
				}
				return in
			}
			in.Op = OpUnknown
			return in
		}
		in.Imm = signExtend(uint64(word>>12&0x1FF), 9)
		switch word >> 10 & 3 {
		case 0b00:
			if isLoad {
				in.Op = OpLdur
			} else {
				in.Op = OpStur
			}
		case 0b10:
			if isLoad {
				in.Op = OpLdtr
			} else {
				in.Op = OpSttr
			}
		default:
			in.Op = OpUnknown // pre/post-index not modelled
		}
		return in
	}
	in.Op = OpUnknown
	return in
}
