package arm64

import "sort"

// This file implements an exact control-flow-graph builder over A64 code.
// Fixed-width 4-byte encoding means instruction boundaries are known without
// heuristics: from a set of entry addresses, the reachable instruction set
// is computed precisely by following decoded successor edges. Words that are
// never reached from an entry — literal pools, padding, data smuggled into
// executable pages — are excluded, which is what lets a static verifier
// distinguish "a sensitive byte pattern exists in the page" from "a
// sensitive instruction can actually execute".

// CFGSegment is one contiguous run of executable memory: Words[i] is the
// instruction word at Base + 4*i. Base must be 4-byte aligned.
type CFGSegment struct {
	Base  uint64
	Words []uint32
}

// End returns the first address past the segment.
func (s CFGSegment) End() uint64 { return s.Base + uint64(len(s.Words))*InsnBytes }

// CFG is the reachability result over a set of segments.
type CFG struct {
	segs      []CFGSegment
	entries   []uint64
	reachable map[uint64]bool
	leaders   map[uint64]bool
}

// BuildCFG computes the instruction set reachable from entries by a
// worklist traversal of decoded successor edges:
//
//   - B follows only its target; BL follows the target and the return
//     fall-through (calls are assumed to return);
//   - conditional branches (B.cond, CBZ, CBNZ) follow both target and
//     fall-through;
//   - indirect control flow (BR, RET) and exception return (ERET) have no
//     static successors — where they go is the call gate's problem, not the
//     page's;
//   - BLR falls through (the callee is assumed to return);
//   - exception generation (SVC, HVC, SMC) falls through to the
//     continuation the kernel ERETs to;
//   - undecodable words have no successors: execution of one traps, so
//     nothing past it is reached through it.
//
// Branch targets outside every segment are dropped (control left the
// audited region). Entries outside every segment are ignored.
func BuildCFG(segs []CFGSegment, entries []uint64) *CFG {
	sorted := append([]CFGSegment(nil), segs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Base < sorted[j].Base })
	g := &CFG{
		segs:      sorted,
		entries:   append([]uint64(nil), entries...),
		reachable: make(map[uint64]bool),
		leaders:   make(map[uint64]bool),
	}
	var work []uint64
	push := func(addr uint64) {
		if _, ok := g.wordAt(addr); ok && !g.reachable[addr] {
			g.reachable[addr] = true
			work = append(work, addr)
		}
	}
	for _, e := range entries {
		if _, ok := g.wordAt(e); ok {
			g.leaders[e] = true
		}
		push(e)
	}
	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		word, _ := g.wordAt(pc)
		in := Decode(word)
		for _, succ := range successors(pc, in) {
			if succ != pc+InsnBytes {
				// A branch target starts a new basic block.
				if _, ok := g.wordAt(succ); ok {
					g.leaders[succ] = true
				}
			}
			push(succ)
		}
	}
	return g
}

// successors returns the static successor addresses of the instruction at
// pc. Branch immediates are byte offsets relative to the instruction.
func successors(pc uint64, in Insn) []uint64 {
	next := pc + InsnBytes
	switch in.Op {
	case OpB:
		return []uint64{pc + uint64(in.Imm)}
	case OpBL:
		return []uint64{pc + uint64(in.Imm), next}
	case OpBCond, OpCBZ, OpCBNZ:
		return []uint64{pc + uint64(in.Imm), next}
	case OpBR, OpRET, OpERET:
		return nil
	case OpBLR, OpSVC, OpHVC, OpSMC:
		return []uint64{next}
	case OpUnknown:
		return nil
	default:
		return []uint64{next}
	}
}

// wordAt returns the instruction word at addr, if addr is 4-byte aligned
// and inside a segment.
func (g *CFG) wordAt(addr uint64) (uint32, bool) {
	if addr%InsnBytes != 0 {
		return 0, false
	}
	i := sort.Search(len(g.segs), func(i int) bool { return g.segs[i].End() > addr })
	if i == len(g.segs) || addr < g.segs[i].Base {
		return 0, false
	}
	return g.segs[i].Words[(addr-g.segs[i].Base)/InsnBytes], true
}

// Reachable reports whether the instruction at addr is reachable from an
// entry.
func (g *CFG) Reachable(addr uint64) bool { return g.reachable[addr] }

// ReachableCount returns the number of reachable instructions.
func (g *CFG) ReachableCount() int { return len(g.reachable) }

// Blocks returns the basic-block leader addresses (entries plus reachable
// branch targets), ascending.
func (g *CFG) Blocks() []uint64 {
	out := make([]uint64, 0, len(g.leaders))
	for a := range g.leaders {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// VisitReachable calls fn for every reachable instruction in ascending
// address order with its word and decoded form. Returns early when fn
// returns false.
func (g *CFG) VisitReachable(fn func(addr uint64, word uint32, in Insn) bool) {
	addrs := make([]uint64, 0, len(g.reachable))
	for a := range g.reachable {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		word, _ := g.wordAt(a)
		if !fn(a, word, Decode(word)) {
			return
		}
	}
}
