package arm64

import "fmt"

// EL is an ARMv8 exception level.
type EL uint8

// Exception levels. EL3 (secure monitor) is not modelled; the paper's
// mechanisms live entirely in EL0..EL2.
const (
	EL0 EL = 0 // user mode
	EL1 EL = 1 // kernel mode (guest kernels, LightZone processes)
	EL2 EL = 2 // hypervisor mode (VHE host kernels, Lowvisor)
)

func (e EL) String() string {
	switch e {
	case EL0, EL1, EL2:
		return fmt.Sprintf("EL%d", uint8(e))
	default:
		return fmt.Sprintf("EL?(%d)", uint8(e))
	}
}

// Valid reports whether e is a modelled exception level.
func (e EL) Valid() bool { return e <= EL2 }

// PSTATE condition/status bits. Only the fields the reproduction needs are
// modelled; they use the architectural bit positions of SPSR so that a
// PSTATE snapshot round-trips through SPSR_ELx unchanged.
const (
	PStateSPSel uint64 = 1 << 0  // stack pointer selection (SP_EL0 vs SP_ELx)
	PStateELLo  uint64 = 1 << 2  // exception level, low bit (M[3:2])
	PStateELHi  uint64 = 1 << 3  // exception level, high bit
	PStateF     uint64 = 1 << 6  // FIQ mask
	PStateI     uint64 = 1 << 7  // IRQ mask
	PStateA     uint64 = 1 << 8  // SError mask
	PStateD     uint64 = 1 << 9  // debug mask
	PStatePAN   uint64 = 1 << 22 // Privileged Access Never
	PStateUAO   uint64 = 1 << 23 // User Access Override (modelled, unused)
	PStateV     uint64 = 1 << 28
	PStateC     uint64 = 1 << 29
	PStateZ     uint64 = 1 << 30
	PStateN     uint64 = 1 << 31
)

// PStateELMask extracts the M[3:2] exception-level field.
const PStateELMask uint64 = PStateELLo | PStateELHi

// ELFromPState decodes the exception level stored in a PSTATE/SPSR value.
func ELFromPState(ps uint64) EL {
	return EL((ps & PStateELMask) >> 2)
}

// PStateForEL encodes el into the M[3:2] field, handler stack selected.
func PStateForEL(el EL) uint64 {
	ps := (uint64(el) << 2) & PStateELMask
	if el != EL0 {
		ps |= PStateSPSel
	}
	return ps
}
