package arm64

import "sync"

// Profile is a per-platform cycle cost model. The two shipped profiles are
// calibrated so that the trap and system-register costs composed from these
// constituents land on the paper's directly measured values (Table 4), which
// in turn drive every higher-level result (Tables 5, Figures 3-5).
//
// Costs are *constituent* costs: world switches, kernel entries, and
// LightZone trap paths are priced by summing the operations they actually
// perform, so that the paper's §5.2 optimizations (retaining HCR_EL2 and
// VTTBR_EL2, sharing pt_regs pages, deferring system-register access)
// change measured totals causally rather than by table lookup.
type Profile struct {
	Name string

	// CPUFreqMHz converts cycles to wall-clock throughput in the
	// application benchmarks.
	CPUFreqMHz int64

	// Core pipeline costs.
	InsnCost      int64 // generic data-processing instruction
	BranchCost    int64 // taken branch
	MemAccessCost int64 // L1-hit load or store
	ISBCost       int64 // instruction synchronization barrier
	DSBCost       int64 // data synchronization barrier
	PanToggleCost int64 // MSR PAN, #imm (the LightZone PAN domain switch)

	// Exception machinery: cost of taking an exception to ELx and of
	// ERET issued at ELx. Indexed by exception level.
	ExcEntryTo [3]int64
	ERETFrom   [3]int64

	// System-register access cost classes (charged in addition to
	// InsnCost). The EL at which a register architecturally lives picks
	// the class; the overrides carry the registers Table 4 measures
	// directly (HCR_EL2: 1,550-1,655 cycles on Carmel; VTTBR_EL2: 1,115).
	SysRegReadEL0, SysRegWriteEL0 int64
	SysRegReadEL1, SysRegWriteEL1 int64
	SysRegReadEL2, SysRegWriteEL2 int64
	SysRegReadOverride            map[SysReg]int64
	SysRegWriteOverride           map[SysReg]int64

	// MMU model.
	TLBWalkPerLevel int64 // per page-table level on a TLB miss
	TLBCapacity     int   // unified TLB entries

	// Privileged-software dispatch costs (functional handlers charge
	// these instead of being emulated instruction by instruction).
	HandlerDispatchCost int64 // kernel syscall/fault dispatch
	HypDispatchCost     int64 // hypervisor exit-reason dispatch (KVM run loop)
	ModuleForwardCost   int64 // LightZone kernel-module forwarding layer
	NestedForwardCost   int64 // Lowvisor guest-kernel forwarding, per direction
	PtRegsRelookupCost  int64 // shared pt_regs pointer relookup after scheduling

	// Baseline cost constants (§8 comparison prototypes).
	WatchpointPairHost  int64 // per watchpoint register-pair update, host kernel (EL2)
	WatchpointPairGuest int64 // per watchpoint register-pair update, guest kernel (EL1)
	LwCManageHost       int64 // lwC bookkeeping per switch under a VHE host kernel
	LwCManageGuest      int64 // lwC bookkeeping per switch under a guest kernel

	// SchedQuantumTraps is how many LightZone traps occur, on average,
	// between scheduling events that invalidate the cached shared
	// pt_regs pointer. It produces the 29,020~32,881 fluctuation band of
	// Table 4.
	SchedQuantumTraps int

	// Dense per-register cost tables derived lazily from the class defaults
	// and override maps (see buildSysCostTabs). Profiles are shared across
	// vCPUs by pointer, never copied.
	sysCostOnce sync.Once
	sysReadTab  []int64
	sysWriteTab []int64
}

// buildSysCostTabs flattens the override maps and EL-class defaults into
// dense per-register tables, so the hot MRS/MSR path is one array load
// instead of a map probe. Built once on first use; the constructors below
// fully populate a Profile before it is shared, so the tables never observe
// a half-built override map.
func (p *Profile) buildSysCostTabs() {
	p.sysReadTab = make([]int64, NumSysRegs)
	p.sysWriteTab = make([]int64, NumSysRegs)
	for r := SysReg(0); r < SysReg(NumSysRegs); r++ {
		var rd, wr int64
		switch r.MinEL() {
		case EL0:
			rd, wr = p.SysRegReadEL0, p.SysRegWriteEL0
		case EL1:
			rd, wr = p.SysRegReadEL1, p.SysRegWriteEL1
		default:
			rd, wr = p.SysRegReadEL2, p.SysRegWriteEL2
		}
		if c, ok := p.SysRegReadOverride[r]; ok {
			rd = c
		}
		if c, ok := p.SysRegWriteOverride[r]; ok {
			wr = c
		}
		p.sysReadTab[r] = rd
		p.sysWriteTab[r] = wr
	}
}

// SysRegReadCost returns the modelled cost of an MRS of r.
func (p *Profile) SysRegReadCost(r SysReg) int64 {
	p.sysCostOnce.Do(p.buildSysCostTabs)
	return p.sysReadTab[r]
}

// SysRegWriteCost returns the modelled cost of an MSR to r.
func (p *Profile) SysRegWriteCost(r SysReg) int64 {
	p.sysCostOnce.Do(p.buildSysCostTabs)
	return p.sysWriteTab[r]
}

// ProfileCarmel models the NVIDIA Jetson AGX Xavier's Carmel ARMv8.2 CPU
// (2.2 GHz). Its defining trait, measured by the paper and reproduced here,
// is that traps to EL2 and system-register updates are extremely slow:
// writing HCR_EL2 costs ~1,600 cycles and a full KVM world switch ~28.6k.
func ProfileCarmel() *Profile {
	return &Profile{
		Name:          "Carmel",
		CPUFreqMHz:    2200,
		InsnCost:      1,
		BranchCost:    1,
		MemAccessCost: 2,
		ISBCost:       50,
		DSBCost:       25,
		PanToggleCost: 4,

		ExcEntryTo: [3]int64{0, 300, 1400},
		ERETFrom:   [3]int64{0, 250, 1250},

		SysRegReadEL0:  4,
		SysRegWriteEL0: 6,
		SysRegReadEL1:  350,
		SysRegWriteEL1: 450,
		SysRegReadEL2:  400,
		SysRegWriteEL2: 500,
		SysRegReadOverride: map[SysReg]int64{
			HCREL2:   400,
			VTTBREL2: 300,
			TTBR0EL1: 100,
			TTBR1EL1: 100,
			SPEL0:    150,
			ESREL1:   200,
			NZCV:     2, FPCR: 2, FPSR: 2,
		},
		SysRegWriteOverride: map[SysReg]int64{
			HCREL2:   1600, // Table 4: 1,550~1,655
			VTTBREL2: 1115, // Table 4: 1,115
			TTBR0EL1: 260,  // dominant constituent of Table 5 TTBR switches
			TTBR1EL1: 260,
			SPEL0:    200,
			NZCV:     2, FPCR: 2, FPSR: 2,
		},

		TLBWalkPerLevel: 30,
		TLBCapacity:     1536,

		HandlerDispatchCost: 100,
		HypDispatchCost:     1850,
		ModuleForwardCost:   90,
		NestedForwardCost:   650,
		PtRegsRelookupCost:  2800,
		WatchpointPairHost:  370,
		WatchpointPairGuest: 151,
		LwCManageHost:       7900,
		LwCManageGuest:      1480,
		SchedQuantumTraps:   16,
	}
}

// ProfileCortexA55 models the Banana Pi BPI-M5's Amlogic Cortex-A55
// (2 GHz), an in-order little core with cheap traps and cheap
// system-register access.
func ProfileCortexA55() *Profile {
	return &Profile{
		Name:          "CortexA55",
		CPUFreqMHz:    2000,
		InsnCost:      1,
		BranchCost:    2,
		MemAccessCost: 3,
		ISBCost:       8,
		DSBCost:       10,
		PanToggleCost: 2,

		ExcEntryTo: [3]int64{0, 45, 40},
		ERETFrom:   [3]int64{0, 35, 38},

		SysRegReadEL0:  2,
		SysRegWriteEL0: 3,
		SysRegReadEL1:  6,
		SysRegWriteEL1: 9,
		SysRegReadEL2:  9,
		SysRegWriteEL2: 13,
		SysRegReadOverride: map[SysReg]int64{
			HCREL2:   20,
			VTTBREL2: 12,
			TTBR0EL1: 6,
			TTBR1EL1: 6,
			NZCV:     1, FPCR: 1, FPSR: 1,
		},
		SysRegWriteOverride: map[SysReg]int64{
			HCREL2:   88, // Table 4: 88
			VTTBREL2: 37, // Table 4: 37
			TTBR0EL1: 8,
			TTBR1EL1: 8,
			NZCV:     1, FPCR: 1, FPSR: 1,
		},

		TLBWalkPerLevel: 18,
		TLBCapacity:     512,

		HandlerDispatchCost: 90,
		HypDispatchCost:     300,
		ModuleForwardCost:   247,
		NestedForwardCost:   450,
		PtRegsRelookupCost:  330,
		WatchpointPairHost:  75,
		WatchpointPairGuest: 75,
		LwCManageHost:       1700,
		LwCManageGuest:      2900,
		SchedQuantumTraps:   16,
	}
}

// Profiles returns the two evaluation platforms of the paper.
func Profiles() []*Profile {
	return []*Profile{ProfileCarmel(), ProfileCortexA55()}
}

// ProfileByName resolves "carmel" or "cortexa55" (case-sensitive prefixes
// accepted by the bench CLI are normalized by the caller).
func ProfileByName(name string) (*Profile, bool) {
	switch name {
	case "Carmel", "carmel":
		return ProfileCarmel(), true
	case "CortexA55", "cortexa55", "cortex", "a55":
		return ProfileCortexA55(), true
	}
	return nil, false
}
