package absint

import (
	"testing"

	"lightzone/internal/arm64"
	"lightzone/internal/mem"
)

func region(base uint64, words []uint32) Region {
	insns := make([]arm64.Insn, len(words))
	for i, w := range words {
		insns[i] = arm64.Decode(w)
	}
	return Region{Base: base, Insns: insns, Raw: words}
}

// fixedOracle proves exactly the addresses it holds.
type fixedOracle map[uint64]uint64

func (o fixedOracle) ReadConst(va uint64, size int) (uint64, bool) {
	v, ok := o[va]
	return v, ok
}

func TestDomainLattice(t *testing.T) {
	if !ConstVal(5, false).Trusted() {
		t.Fatal("untainted const must be trusted")
	}
	if ConstVal(5, true).Trusted() || TopVal(false).Trusted() {
		t.Fatal("tainted or non-const values must not be trusted")
	}
	j := Join(ConstVal(2, false), ConstVal(7, true))
	if j.K != Range || j.Lo != 2 || j.Hi != 7 || !j.Taint {
		t.Fatalf("join: got %v", j)
	}
	if _, ok := Meet(ConstVal(1, false), ConstVal(2, false)); ok {
		t.Fatal("meet of distinct constants must be infeasible")
	}
	m, ok := Meet(TopVal(true), ConstVal(9, false))
	if !ok || !m.Trusted() || m.Lo != 9 {
		t.Fatalf("meet with untainted const must launder taint: got %v ok=%v", m, ok)
	}
	// Constant folding wraps precisely; interval wraparound widens.
	if s := addVal(ConstVal(^uint64(0), false), ConstVal(2, false)); s.Lo != 1 || s.K != Const {
		t.Fatalf("const add must wrap precisely: got %v", s)
	}
	if s := addVal(RangeVal(^uint64(0)-1, ^uint64(0), false), RangeVal(2, 3, false)); s.K != Top {
		t.Fatalf("wrapping interval add must widen: got %v", s)
	}
	if a := andVal(TopVal(true), ConstVal(0xFF, false)); a.K != Range || a.Hi != 0xFF {
		t.Fatalf("and with const mask must bound: got %v", a)
	}
	if r := shrVal(TopVal(false), 60); r.K != Range || r.Hi != 0xF {
		t.Fatalf("shr of top must bound: got %v", r)
	}
}

func TestEntryStateIsTainted(t *testing.T) {
	var nid uint32
	s := NewEntryState(&nid)
	for r := uint8(0); r < 31; r++ {
		if v := s.Reg(r); v.K != Top || !v.Taint {
			t.Fatalf("x%d at entry: got %v, want tainted top", r, v)
		}
	}
	if v, written, _ := s.TTBR0(); written || v.K != Top || !v.Taint {
		t.Fatalf("ttbr0 at entry: got %v written=%v", v, written)
	}
	if b, _ := s.PAN(); b != BitEntry {
		t.Fatalf("pan at entry: got %v", b)
	}
	if v := s.Reg(31); !v.Trusted() || v.Lo != 0 {
		t.Fatalf("xzr must read as untainted zero: got %v", v)
	}
}

// A literal-pool load through the oracle followed by MSR TTBR0 must leave a
// proven, trusted translation base — the clean-gate install phase.
func TestExploreOracleLoadProvesTTBR0(t *testing.T) {
	base := uint64(0x4000)
	words := []uint32{
		arm64.ADR(16, 24),          // x16 = base+24 (literal pool)
		arm64.LDRImm(17, 16, 0, 3), // x17 = [x16]
		arm64.MSR(arm64.TTBR0EL1, 17),
		arm64.WordISB,
		arm64.RET(30),
	}
	rg := region(base, words)
	orc := fixedOracle{base + 24: 0xA000}
	paths, complete := Explore(rg, base, Config{Oracle: orc})
	if !complete || len(paths) != 1 {
		t.Fatalf("got %d paths complete=%v", len(paths), complete)
	}
	p := paths[0]
	if p.Exit != ExitRET || p.ExitPC != base+16 {
		t.Fatalf("exit %v at %#x", p.Exit, p.ExitPC)
	}
	v, written, va := p.St.TTBR0()
	if !written || va != base+8 || !v.Trusted() || v.Lo != 0xA000 {
		t.Fatalf("ttbr0: v=%v written=%v va=%#x", v, written, va)
	}
	var sysWrites, barriers, reads int
	for _, e := range p.Effects {
		switch e.Kind {
		case EffSysRegWrite:
			sysWrites++
			if e.Sys.Key() != arm64.TTBR0EL1.Enc().Key() {
				t.Fatalf("unexpected sysreg write: %v", e.Sys)
			}
		case EffBarrier:
			barriers++
		case EffMemRead:
			reads++
		}
	}
	if sysWrites != 1 || barriers != 1 || reads != 1 {
		t.Fatalf("effects: sys=%d barrier=%d read=%d", sysWrites, barriers, reads)
	}
	// Without the oracle the same code leaves TTBR0 tainted.
	paths, _ = Explore(rg, base, Config{})
	if v, _, _ := paths[0].St.TTBR0(); v.Trusted() {
		t.Fatalf("oracle-free load must not be trusted: %v", v)
	}
}

// The gate check phase: CMP of an MRS readback against an oracle-proven
// constant must, on the EQ edge, launder TTBR0 itself to trusted — the
// identity link between the MRS destination and the tracked TTBR0.
func TestExploreCompareRefinesTTBR0Aliases(t *testing.T) {
	base := uint64(0x8000)
	words := []uint32{
		arm64.MRS(19, arm64.TTBR0EL1),
		arm64.ADR(18, 24), // pc is base+4: literal pool at base+28
		arm64.LDRImm(20, 18, 0, 3),
		arm64.CMPReg(19, 20),
		arm64.BCond(arm64.CondNE, 0x100), // fail path leaves the region
		arm64.RET(30),
	}
	rg := region(base, words)
	paths, complete := Explore(rg, base, Config{Oracle: fixedOracle{base + 28: 0xB000}})
	if !complete || len(paths) != 2 {
		t.Fatalf("got %d paths complete=%v", len(paths), complete)
	}
	var sawRET, sawOut bool
	for _, p := range paths {
		switch p.Exit {
		case ExitRET:
			sawRET = true
			v, _, _ := p.St.TTBR0()
			if !v.Trusted() || v.Lo != 0xB000 {
				t.Fatalf("EQ edge must refine ttbr0 via alias: %v", v)
			}
			if r := p.St.Reg(19); !r.Trusted() || r.Lo != 0xB000 {
				t.Fatalf("EQ edge must refine x19: %v", r)
			}
		case ExitBranchOut:
			sawOut = true
			if v, _, _ := p.St.TTBR0(); v.Trusted() {
				t.Fatalf("NE edge must not refine ttbr0: %v", v)
			}
		default:
			t.Fatalf("unexpected exit %v", p.Exit)
		}
	}
	if !sawRET || !sawOut {
		t.Fatalf("missing paths: ret=%v out=%v", sawRET, sawOut)
	}
}

// Comparing a register against a copy of itself (the planted
// gate-ttbr-unproven shape) self-trivializes: the NE edge is infeasible and
// the EQ edge learns nothing.
func TestExploreSelfCompareIsTrivial(t *testing.T) {
	base := uint64(0xC000)
	words := []uint32{
		arm64.MRS(19, arm64.TTBR0EL1),
		arm64.MOVReg(20, 19), // alias, same identity
		arm64.CMPReg(19, 20),
		arm64.BCond(arm64.CondNE, 0x100),
		arm64.RET(30),
	}
	paths, complete := Explore(region(base, words), base, Config{})
	if !complete || len(paths) != 1 {
		t.Fatalf("self-compare NE edge must be pruned: %d paths", len(paths))
	}
	p := paths[0]
	if p.Exit != ExitRET {
		t.Fatalf("exit %v", p.Exit)
	}
	if v, _, _ := p.St.TTBR0(); v.Trusted() {
		t.Fatalf("self-compare must not launder ttbr0: %v", v)
	}
}

// The planted gate-pan-elide shape: a CBNZ that dynamically always skips the
// PAN write still has a statically feasible fallthrough where PAN moved.
func TestExploreCBNZForksPANElision(t *testing.T) {
	base := uint64(0x2000)
	words := []uint32{
		arm64.CBNZ(19, 8), // skip over the PAN write
		arm64.MSRPan(0),
		arm64.RET(30),
	}
	paths, complete := Explore(region(base, words), base, Config{})
	if !complete || len(paths) != 2 {
		t.Fatalf("got %d paths complete=%v", len(paths), complete)
	}
	var sawElided, sawClean bool
	for _, p := range paths {
		if p.Exit != ExitRET {
			t.Fatalf("exit %v", p.Exit)
		}
		b, va := p.St.PAN()
		switch b {
		case Bit0:
			sawElided = true
			if va != base+4 {
				t.Fatalf("pan write va %#x", va)
			}
			if v, ok := p.St.Reg(19).IsConst(); !ok || v != 0 {
				t.Fatalf("fallthrough must refine x19 to zero: %v", p.St.Reg(19))
			}
		case BitEntry:
			sawClean = true
		default:
			t.Fatalf("pan %v", b)
		}
	}
	if !sawElided || !sawClean {
		t.Fatalf("paths: elided=%v clean=%v", sawElided, sawClean)
	}
}

func TestExploreBudgetFailsClosed(t *testing.T) {
	base := uint64(0x1000)
	words := []uint32{arm64.B(0)} // tight self-loop
	_, complete := Explore(region(base, words), base, Config{MaxSteps: 16})
	if complete {
		t.Fatal("self-loop must exhaust the budget")
	}
}

func TestExploreUndefWords(t *testing.T) {
	base := uint64(0x3000)
	paths, complete := Explore(region(base, []uint32{0}), base, Config{})
	if !complete || len(paths) != 1 || paths[0].Exit != ExitUndefZero {
		t.Fatalf("zero word: %+v complete=%v", paths, complete)
	}
	paths, complete = Explore(region(base, []uint32{0xFFFF_FFFF}), base, Config{})
	if !complete || len(paths) != 1 || paths[0].Exit != ExitUndef {
		t.Fatalf("junk word: %+v complete=%v", paths, complete)
	}
}

func TestExploreExitTargets(t *testing.T) {
	base := uint64(0x5000)
	// BLR x1 records a trusted link register and exits through the register.
	words := []uint32{arm64.BLR(1)}
	paths, _ := Explore(region(base, words), base, Config{})
	if len(paths) != 1 || paths[0].Exit != ExitBR {
		t.Fatalf("paths %+v", paths)
	}
	if lr := paths[0].St.Reg(30); !lr.Trusted() || lr.Lo != base+4 {
		t.Fatalf("blr link: %v", lr)
	}
	if paths[0].Target.K != Top {
		t.Fatalf("blr target must be unknown: %v", paths[0].Target)
	}
	// HVC carries its immediate out.
	paths, _ = Explore(region(base, []uint32{arm64.HVC(0x4C00)}), base, Config{})
	if len(paths) != 1 || paths[0].Exit != ExitHVC || paths[0].ExitImm != 0x4C00 {
		t.Fatalf("hvc: %+v", paths[0])
	}
}

func TestProveBlockClaims(t *testing.T) {
	base := uint64(0x6000)
	words := []uint32{
		arm64.ADR(16, 24),          // x16 = base+24
		arm64.LDRImm(17, 16, 0, 3), // known-page read
		arm64.STRImm(17, 1, 0, 3),  // unknown-page write
		arm64.WordISB,
		arm64.B(4), // terminator
	}
	insns := make([]arm64.Insn, len(words))
	for i, w := range words {
		insns[i] = arm64.Decode(w)
	}
	p := ProveBlock(base, insns)
	if p.Insns != 5 || p.Term != arm64.OpB {
		t.Fatalf("shape: %+v", p)
	}
	if !p.SysregFree || !p.PANFree {
		t.Fatalf("pure block misclassified: %+v", p)
	}
	if len(p.Claims) != 2 {
		t.Fatalf("claims: %+v", p.Claims)
	}
	rd, wr := p.Claims[0], p.Claims[1]
	if rd.Write || !rd.Known || rd.Page != (base+24)>>mem.PageShift || rd.Size != 8 {
		t.Fatalf("read claim: %+v", rd)
	}
	if !wr.Write || wr.Known || wr.Size != 8 {
		t.Fatalf("write claim: %+v", wr)
	}
	if p.ISBs != 1 || p.DSBs != 0 {
		t.Fatalf("barriers: %+v", p)
	}
	if got := p.InteriorAccesses(); got != 2 {
		t.Fatalf("interior accesses: %d", got)
	}
}

func TestProveBlockSysregShapes(t *testing.T) {
	msr := []arm64.Insn{
		arm64.Decode(arm64.MOVZ(17, 0xA, 1)),
		arm64.Decode(arm64.MSR(arm64.TTBR0EL1, 17)),
	}
	p := ProveBlock(0x7000, msr)
	if p.SysregFree || !p.PANFree || p.Term != arm64.OpMSRReg {
		t.Fatalf("msr block: %+v", p)
	}
	pan := []arm64.Insn{arm64.Decode(arm64.MSRPan(1))}
	p = ProveBlock(0x7000, pan)
	if p.SysregFree || p.PANFree {
		t.Fatalf("pan block: %+v", p)
	}
	// A terminator's own access is not interior.
	ld := []arm64.Insn{arm64.Decode(arm64.LDRImm(0, 1, 0, 3))}
	p = ProveBlock(0x7000, ld)
	if len(p.Claims) != 1 || p.InteriorAccesses() != 0 {
		t.Fatalf("single-insn block: %+v", p)
	}
}
