// Package absint is an abstract interpreter over decoded A64 instructions.
//
// The value domain is a flat constant/interval lattice with a taint bit per
// register-sized value: Const (one known 64-bit pattern), Range (a closed
// unsigned interval) and Top (any pattern). Taint marks values that are
// (transitively) derived from state an untrusted caller controls — the
// registers live at a call-gate entry, or memory the verifier cannot prove
// immutable. Untainted values originate from immediates in the verified code
// itself or from read-only memory resolved through a MemOracle.
//
// On top of the value domain, State (state.go) tracks a small PSTATE lattice
// (PAN, SP selection, the exception level the analysis was entered at) and
// per-value identities that let equality tests (CMP + B.cond, CBZ/CBNZ)
// refine every alias of a compared value at once. interp.go explores all
// paths through a small code region (trace partitioning: each path keeps its
// own State, there is no join point), and blockproof.go derives per-decoded-
// block proofs for the execution engine's block cache.
//
// Soundness convention: every transfer function may lose precision but must
// never claim more than the concrete semantics in internal/cpu/handlers.go
// allow. When a form's result is not modelled precisely the result is Top
// with the operands' taint; when an analysis budget is exhausted the caller
// must treat the code as unproven (fail closed).
package absint

import "fmt"

// Kind classifies an abstract value.
type Kind uint8

const (
	// Top is the unknown value: any 64-bit pattern.
	Top Kind = iota
	// Const is a single known 64-bit value (Lo == Hi).
	Const
	// Range is a closed unsigned interval [Lo, Hi].
	Range
)

// AbsVal is one register-sized abstract value.
type AbsVal struct {
	K      Kind
	Lo, Hi uint64
	Taint  bool
}

// TopVal returns the unknown value with the given taint.
func TopVal(taint bool) AbsVal { return AbsVal{K: Top, Taint: taint} }

// ConstVal returns the singleton value v.
func ConstVal(v uint64, taint bool) AbsVal {
	return AbsVal{K: Const, Lo: v, Hi: v, Taint: taint}
}

// RangeVal returns the interval [lo, hi]; lo == hi degenerates to Const and
// an inverted interval (caller bug) widens to Top rather than claim ⊥.
func RangeVal(lo, hi uint64, taint bool) AbsVal {
	switch {
	case lo == hi:
		return ConstVal(lo, taint)
	case lo > hi:
		return TopVal(taint)
	}
	return AbsVal{K: Range, Lo: lo, Hi: hi, Taint: taint}
}

// IsConst returns the concrete value when the abstraction is a singleton.
func (v AbsVal) IsConst() (uint64, bool) {
	return v.Lo, v.K == Const
}

// Trusted reports whether v is a proven, untainted constant — the property
// the gate checker demands of an installed TTBR0 and of a gate exit target.
func (v AbsVal) Trusted() bool { return v.K == Const && !v.Taint }

func (v AbsVal) String() string {
	t := ""
	if v.Taint {
		t = "!"
	}
	switch v.K {
	case Const:
		return fmt.Sprintf("%s%#x", t, v.Lo)
	case Range:
		return fmt.Sprintf("%s[%#x,%#x]", t, v.Lo, v.Hi)
	default:
		return t + "⊤"
	}
}

// Join is the least upper bound: the result covers every pattern either
// operand covers, and is tainted if either operand is.
func Join(a, b AbsVal) AbsVal {
	taint := a.Taint || b.Taint
	if a.K == Top || b.K == Top {
		return TopVal(taint)
	}
	lo, hi := a.Lo, a.Hi
	if b.Lo < lo {
		lo = b.Lo
	}
	if b.Hi > hi {
		hi = b.Hi
	}
	return RangeVal(lo, hi, taint)
}

// Meet is the greatest lower bound, used when two values are proven equal
// (the EQ edge of a compare). ok=false means the intersection is empty: the
// path is infeasible. A value proven equal to an untainted value is itself
// untainted — this is how the gate's check phase launders the in-register
// TTBR0 back to trusted once it compares equal to the TTBRTab slot.
func Meet(a, b AbsVal) (m AbsVal, ok bool) {
	taint := a.Taint && b.Taint
	if a.K == Top {
		m = b
		m.Taint = taint
		return m, true
	}
	if b.K == Top {
		m = a
		m.Taint = taint
		return m, true
	}
	lo, hi := a.Lo, a.Hi
	if b.Lo > lo {
		lo = b.Lo
	}
	if b.Hi < hi {
		hi = b.Hi
	}
	if lo > hi {
		return AbsVal{}, false
	}
	return RangeVal(lo, hi, taint), true
}

// addVal abstracts 64-bit addition. Constants fold precisely (wraparound is
// architecturally defined); interval addition is kept only when neither
// bound wraps, any potential wraparound widening to Top.
func addVal(a, b AbsVal) AbsVal {
	taint := a.Taint || b.Taint
	if a.K == Const && b.K == Const {
		return ConstVal(a.Lo+b.Lo, taint)
	}
	if a.K == Top || b.K == Top {
		return TopVal(taint)
	}
	lo := a.Lo + b.Lo
	hi := a.Hi + b.Hi
	if lo < a.Lo || hi < a.Hi {
		return TopVal(taint)
	}
	return RangeVal(lo, hi, taint)
}

// subVal abstracts 64-bit subtraction; constants fold precisely, intervals
// widen on potential wraparound.
func subVal(a, b AbsVal) AbsVal {
	taint := a.Taint || b.Taint
	if a.K == Const && b.K == Const {
		return ConstVal(a.Lo-b.Lo, taint)
	}
	if a.K == Top || b.K == Top {
		return TopVal(taint)
	}
	if a.Lo < b.Hi {
		return TopVal(taint)
	}
	return RangeVal(a.Lo-b.Hi, a.Hi-b.Lo, taint)
}

// binConst folds a binary operation precisely on two constants and widens to
// Top otherwise.
func binConst(a, b AbsVal, f func(x, y uint64) uint64) AbsVal {
	if av, ok := a.IsConst(); ok {
		if bv, ok := b.IsConst(); ok {
			return ConstVal(f(av, bv), a.Taint || b.Taint)
		}
	}
	return TopVal(a.Taint || b.Taint)
}

// andVal abstracts bitwise AND. A constant mask bounds the result above
// regardless of the other operand (x & m <= m unsigned).
func andVal(a, b AbsVal) AbsVal {
	if av, ok := a.IsConst(); ok {
		if bv, ok := b.IsConst(); ok {
			return ConstVal(av&bv, a.Taint || b.Taint)
		}
		return RangeVal(0, av, a.Taint || b.Taint)
	}
	if bv, ok := b.IsConst(); ok {
		return RangeVal(0, bv, a.Taint || b.Taint)
	}
	return TopVal(a.Taint || b.Taint)
}

// shlVal abstracts a left shift by a known amount; sh must be < 64.
// Non-constant operands widen: a left shift discards high bits, so interval
// bounds survive only when no bit is shifted out.
func shlVal(a AbsVal, sh uint8) AbsVal {
	if sh == 0 {
		return a
	}
	if a.K == Top {
		return TopVal(a.Taint)
	}
	lo := a.Lo << sh
	hi := a.Hi << sh
	if lo>>sh != a.Lo || hi>>sh != a.Hi {
		return TopVal(a.Taint)
	}
	return RangeVal(lo, hi, a.Taint)
}

// shrVal abstracts a logical right shift by a known amount; monotonic, so
// interval bounds always survive. Even Top gains an upper bound.
func shrVal(a AbsVal, sh uint8) AbsVal {
	if sh == 0 {
		return a
	}
	if sh >= 64 {
		return ConstVal(0, a.Taint)
	}
	if a.K == Top {
		return RangeVal(0, ^uint64(0)>>sh, a.Taint)
	}
	return RangeVal(a.Lo>>sh, a.Hi>>sh, a.Taint)
}
