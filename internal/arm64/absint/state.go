package absint

// cell is one tracked storage location: an abstract value plus a value
// identity. Two cells with the same non-zero id are copies of the same
// run-time value, so an equality test refining one refines every alias —
// that is what lets CMP x19, x20 / B.NE prove something about TTBR0_EL1
// when x19 was read from it with MRS.
type cell struct {
	v  AbsVal
	id uint32
}

// Bit is the three-point-plus-top lattice for one tracked PSTATE bit
// (PAN, SP selection): still exactly as it was at analysis entry, proven 0,
// proven 1, or unknown.
type Bit uint8

const (
	// BitEntry means the bit has not been modified on this path.
	BitEntry Bit = iota
	// Bit0 and Bit1 are proven values written on this path.
	Bit0
	Bit1
	// BitTop is an unmodelled update.
	BitTop
)

func (b Bit) String() string {
	switch b {
	case BitEntry:
		return "entry"
	case Bit0:
		return "0"
	case Bit1:
		return "1"
	}
	return "⊤"
}

// cmpFact is the last flag-setting subtraction (CMP is SUBS with XZR
// destination): on a B.EQ edge the two operands are proven equal, on a B.NE
// edge provably-equal operands make the edge infeasible. Flag-setting ops
// the analysis cannot express as an operand equality (ANDS) clear it.
type cmpFact struct {
	valid bool
	a, b  cell
}

// State is one path's abstract machine state. Paths never join: forking at
// a conditional branch clones the state (trace partitioning), which keeps
// every fact path-sensitive — exactly what gate verification needs, since
// the violating paths are the rarely-taken ones.
type State struct {
	regs [31]cell // X0..X30
	sp   cell     // register 31 as a load/store base

	ttbr0        cell
	ttbr0Written bool
	ttbr0VA      uint64

	pan     Bit
	panVA   uint64
	spsel   Bit
	spselVA uint64

	cmp cmpFact
	nid *uint32
}

// NewEntryState returns the state at an untrusted entry: every register
// (and the banked SP, and the current TTBR0) holds a distinct tainted ⊤ —
// the caller chose them — while PAN and SP selection are at their entry
// values. nid is the shared value-identity counter for one exploration.
func NewEntryState(nid *uint32) *State {
	s := &State{nid: nid}
	for i := range s.regs {
		s.regs[i] = cell{v: TopVal(true), id: s.fresh()}
	}
	s.sp = cell{v: TopVal(true), id: s.fresh()}
	// The TTBR0 live at gate entry is whatever table the caller was
	// running on. Writing it back inside the gate does not make it the
	// target domain's table, so it starts tainted like the registers.
	s.ttbr0 = cell{v: TopVal(true), id: s.fresh()}
	return s
}

func (s *State) fresh() uint32 {
	*s.nid++
	return *s.nid
}

// clone copies the state for a path fork; the identity counter is shared.
func (s *State) clone() *State {
	c := *s
	return &c
}

// getCell reads register r with XZR semantics: register 31 reads as an
// untainted constant zero.
func (s *State) getCell(r uint8) cell {
	if r == 31 {
		return cell{v: ConstVal(0, false)}
	}
	return s.regs[r]
}

// baseCell reads register r as a load/store base, where 31 selects SP.
func (s *State) baseCell(r uint8) cell {
	if r == 31 {
		return s.sp
	}
	return s.regs[r]
}

// setReg writes a freshly computed value to r (discarded for XZR).
func (s *State) setReg(r uint8, v AbsVal) {
	if r == 31 {
		return
	}
	s.regs[r] = cell{v: v, id: s.fresh()}
}

// setCell installs a copy of an existing cell — value and identity — into r.
func (s *State) setCell(r uint8, c cell) {
	if r == 31 {
		return
	}
	s.regs[r] = c
}

// forEachAlias applies fn to every tracked cell carrying identity id.
func (s *State) forEachAlias(id uint32, fn func(*cell)) {
	if id == 0 {
		return
	}
	for i := range s.regs {
		if s.regs[i].id == id {
			fn(&s.regs[i])
		}
	}
	if s.sp.id == id {
		fn(&s.sp)
	}
	if s.ttbr0.id == id {
		fn(&s.ttbr0)
	}
}

// refineEqual narrows the state with the fact "a == b" (an EQ edge or a
// taken CBZ). It returns false when the fact is contradictory — the edge is
// infeasible and must be pruned. Every alias of either identity is narrowed
// to the meet, and the identities are unified so later comparisons see the
// aliasing.
func (s *State) refineEqual(a, b cell) bool {
	m, ok := Meet(a.v, b.v)
	if !ok {
		return false
	}
	s.forEachAlias(a.id, func(c *cell) { c.v = m })
	s.forEachAlias(b.id, func(c *cell) { c.v = m })
	if a.id != 0 && b.id != 0 && a.id != b.id {
		s.forEachAlias(b.id, func(c *cell) { c.id = a.id })
	}
	return true
}

// feasibleNotEqual reports whether "a != b" can hold: identical identities
// or identical constants make the NE edge infeasible.
func feasibleNotEqual(a, b cell) bool {
	if a.id != 0 && a.id == b.id {
		return false
	}
	av, aok := a.v.IsConst()
	bv, bok := b.v.IsConst()
	return !(aok && bok && av == bv)
}

// TTBR0 exposes the tracked translation-base state to the checker: the
// abstract value, whether any MSR TTBR0_EL1 executed on this path, and the
// VA of the (last) write.
func (s *State) TTBR0() (v AbsVal, written bool, va uint64) {
	return s.ttbr0.v, s.ttbr0Written, s.ttbr0VA
}

// PAN exposes the PAN lattice point and the VA of the write that moved it
// off BitEntry.
func (s *State) PAN() (Bit, uint64) { return s.pan, s.panVA }

// SPSel exposes the SP-selection lattice point and the VA of its write.
func (s *State) SPSel() (Bit, uint64) { return s.spsel, s.spselVA }

// Reg exposes a register's abstract value (Const 0 for XZR).
func (s *State) Reg(r uint8) AbsVal { return s.getCell(r).v }
