package absint

import "lightzone/internal/arm64"

// ExitKind classifies how a path left the analyzed region.
type ExitKind uint8

const (
	// ExitRET leaves through RET; Target is the return address value.
	ExitRET ExitKind = iota
	// ExitBR leaves through BR/BLR; Target is the branch target value.
	ExitBR
	// ExitBranchOut is a direct branch whose target lies outside the region.
	ExitBranchOut
	// ExitFallOff ran past the last word of the region.
	ExitFallOff
	// ExitHVC, ExitSVC and ExitSMC are exception generation (imm in ExitImm).
	ExitHVC
	ExitSVC
	ExitSMC
	// ExitERET is an exception return.
	ExitERET
	// ExitUndef reached a non-zero undecodable word: the concrete machine
	// traps, but the word was planted, so the path is unproven.
	ExitUndef
	// ExitUndefZero reached an all-zero word — text padding. Execution
	// faults closed (undefined-instruction trap), matching the CFG
	// checker's treatment of zero words.
	ExitUndefZero
)

func (k ExitKind) String() string {
	switch k {
	case ExitRET:
		return "ret"
	case ExitBR:
		return "br"
	case ExitBranchOut:
		return "branch-out"
	case ExitFallOff:
		return "fall-off"
	case ExitHVC:
		return "hvc"
	case ExitSVC:
		return "svc"
	case ExitSMC:
		return "smc"
	case ExitERET:
		return "eret"
	case ExitUndef:
		return "undef"
	case ExitUndefZero:
		return "undef-zero"
	}
	return "exit?"
}

// Path is one fully explored execution path through a region.
type Path struct {
	Entry   uint64
	Exit    ExitKind
	ExitPC  uint64
	ExitImm int64  // SVC/HVC/SMC immediate
	Target  AbsVal // RET/BR target value
	Effects []Effect
	St      *State
}

// Region is a small run of code under analysis: Insns[i] decodes Raw[i],
// the word at Base + 4*i.
type Region struct {
	Base  uint64
	Insns []arm64.Insn
	Raw   []uint32
}

// Config bounds one exploration. Budgets exist because the region is
// attacker-supplied: in-region loops or branch ladders must exhaust the
// budget and come back unproven (fail closed), not hang the verifier.
type Config struct {
	Oracle MemOracle
	// MaxPaths bounds completed plus pruned paths (default 2048).
	MaxPaths int
	// MaxSteps bounds instructions per path (default 512).
	MaxSteps int
}

// work is one pending DFS branch: resume at instruction index idx.
type work struct {
	idx   int
	st    *State
	effs  []Effect
	steps int
}

// Explore symbolically executes every path through rg starting at entry.
// complete=false means a budget was exhausted and the returned paths do not
// cover the region's behavior — the caller must treat it as unproven.
// An entry outside the region returns no paths (complete).
func Explore(rg Region, entry uint64, cfg Config) (paths []*Path, complete bool) {
	maxPaths := cfg.MaxPaths
	if maxPaths <= 0 {
		maxPaths = 2048
	}
	maxSteps := cfg.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 512
	}
	if entry < rg.Base || entry >= rg.Base+uint64(len(rg.Insns))*arm64.InsnBytes ||
		(entry-rg.Base)%arm64.InsnBytes != 0 {
		return nil, true
	}

	var nid uint32
	started := 0
	stack := []work{{idx: int((entry - rg.Base) / arm64.InsnBytes), st: NewEntryState(&nid)}}
	pcOf := func(idx int) uint64 { return rg.Base + uint64(idx)*arm64.InsnBytes }
	inRegion := func(idx int) bool { return idx >= 0 && idx < len(rg.Insns) }

	for len(stack) > 0 {
		w := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		started++
		if started > maxPaths {
			return paths, false
		}
		done := func(exit ExitKind, pc uint64, imm int64, target AbsVal) {
			paths = append(paths, &Path{
				Entry: entry, Exit: exit, ExitPC: pc, ExitImm: imm,
				Target: target, Effects: w.effs, St: w.st,
			})
		}
		// fork queues the not-taken continuation and keeps walking the
		// taken one; the clone gets copy-on-write-free deep copies of the
		// state and the effect list (paths are short).
		fork := func(idx int, st *State) {
			effs := append([]Effect(nil), w.effs...)
			stack = append(stack, work{idx: idx, st: st, effs: effs, steps: w.steps})
		}

	walk:
		for {
			if w.steps >= maxSteps {
				return paths, false
			}
			w.steps++
			if !inRegion(w.idx) {
				done(ExitFallOff, pcOf(w.idx), 0, AbsVal{})
				break walk
			}
			idx := w.idx
			in := rg.Insns[idx]
			pc := pcOf(idx)
			s := w.st
			switch in.Op {
			case arm64.OpB:
				tgt := pc + uint64(in.Imm)
				ti := int(int64(tgt-rg.Base) / arm64.InsnBytes)
				if tgt < rg.Base || !inRegion(ti) {
					done(ExitBranchOut, pc, 0, ConstVal(tgt, false))
					break walk
				}
				w.idx = ti
			case arm64.OpBL:
				tgt := pc + uint64(in.Imm)
				s.setReg(30, ConstVal(pc+arm64.InsnBytes, false))
				ti := int(int64(tgt-rg.Base) / arm64.InsnBytes)
				if tgt < rg.Base || !inRegion(ti) {
					done(ExitBranchOut, pc, 0, ConstVal(tgt, false))
					break walk
				}
				w.idx = ti
			case arm64.OpBCond:
				w.idx = branchCond(rg, &w, idx, in, fork, done)
				if w.idx < 0 {
					break walk
				}
			case arm64.OpCBZ, arm64.OpCBNZ:
				w.idx = branchCompareZero(rg, &w, idx, in, fork, done)
				if w.idx < 0 {
					break walk
				}
			case arm64.OpBR, arm64.OpBLR:
				if in.Op == arm64.OpBLR {
					s.setReg(30, ConstVal(pc+arm64.InsnBytes, false))
				}
				done(ExitBR, pc, 0, s.getCell(in.Rn).v)
				break walk
			case arm64.OpRET:
				done(ExitRET, pc, 0, s.getCell(in.Rn).v)
				break walk
			case arm64.OpSVC:
				done(ExitSVC, pc, in.Imm, AbsVal{})
				break walk
			case arm64.OpHVC:
				done(ExitHVC, pc, in.Imm, AbsVal{})
				break walk
			case arm64.OpSMC:
				done(ExitSMC, pc, in.Imm, AbsVal{})
				break walk
			case arm64.OpERET:
				done(ExitERET, pc, 0, AbsVal{})
				break walk
			case arm64.OpUnknown:
				if rg.Raw != nil && rg.Raw[idx] == 0 {
					done(ExitUndefZero, pc, 0, AbsVal{})
				} else {
					done(ExitUndef, pc, 0, AbsVal{})
				}
				break walk
			default:
				stepInsn(s, pc, idx, in, cfg.Oracle, func(e Effect) {
					w.effs = append(w.effs, e)
				})
				w.idx = idx + 1
			}
		}
	}
	return paths, true
}

// branchCond explores both edges of B.cond, refining EQ/NE edges with the
// recorded compare fact and pruning infeasible ones. Returns the index to
// continue on, or -1 when this path ended (both edges pruned or exited).
func branchCond(rg Region, w *work, idx int, in arm64.Insn,
	fork func(int, *State), done func(ExitKind, uint64, int64, AbsVal)) int {
	pc := rg.Base + uint64(idx)*arm64.InsnBytes
	tgt := pc + uint64(in.Imm)
	ti := int(int64(tgt-rg.Base) / arm64.InsnBytes)
	tgtIn := tgt >= rg.Base && ti >= 0 && ti < len(rg.Insns)
	fall := idx + 1

	fact := w.st.cmp
	takenFeasible, fallFeasible := true, true
	var takenSt, fallSt *State
	switch {
	case fact.valid && in.Cond == arm64.CondEQ:
		takenSt = w.st.clone()
		takenFeasible = takenSt.refineEqual(fact.a, fact.b)
		fallSt = w.st
		fallFeasible = feasibleNotEqual(fact.a, fact.b)
	case fact.valid && in.Cond == arm64.CondNE:
		takenSt = w.st
		takenFeasible = feasibleNotEqual(fact.a, fact.b)
		fallSt = w.st.clone()
		fallFeasible = fallSt.refineEqual(fact.a, fact.b)
	default:
		takenSt = w.st
		fallSt = w.st.clone()
	}

	if takenFeasible && fallFeasible {
		// Queue the fall-through, continue on the taken edge.
		if fallSt == w.st {
			fallSt = fallSt.clone()
		}
		fork(fall, fallSt)
		w.st = takenSt
		if !tgtIn {
			done(ExitBranchOut, pc, 0, ConstVal(tgt, false))
			return -1
		}
		return ti
	}
	if takenFeasible {
		w.st = takenSt
		if !tgtIn {
			done(ExitBranchOut, pc, 0, ConstVal(tgt, false))
			return -1
		}
		return ti
	}
	if fallFeasible {
		w.st = fallSt
		return fall
	}
	return -1
}

// branchCompareZero explores CBZ/CBNZ: the zero edge narrows the tested
// register (and its aliases) to constant zero; the nonzero edge is pruned
// when the register is provably zero.
func branchCompareZero(rg Region, w *work, idx int, in arm64.Insn,
	fork func(int, *State), done func(ExitKind, uint64, int64, AbsVal)) int {
	pc := rg.Base + uint64(idx)*arm64.InsnBytes
	tgt := pc + uint64(in.Imm)
	ti := int(int64(tgt-rg.Base) / arm64.InsnBytes)
	tgtIn := tgt >= rg.Base && ti >= 0 && ti < len(rg.Insns)
	fall := idx + 1

	rt := w.st.getCell(in.Rt)
	zero := cell{v: ConstVal(0, false)}

	zeroSt := w.st.clone()
	zeroFeasible := zeroSt.refineEqual(rt, zero)
	nonzeroSt := w.st
	nonzeroFeasible := feasibleNotEqual(rt, zero)

	// CBZ takes the zero edge to the target; CBNZ takes the nonzero edge.
	takenSt, fallSt := zeroSt, nonzeroSt
	takenFeasible, fallFeasible := zeroFeasible, nonzeroFeasible
	if in.Op == arm64.OpCBNZ {
		takenSt, fallSt = nonzeroSt, zeroSt
		takenFeasible, fallFeasible = nonzeroFeasible, zeroFeasible
	}

	if takenFeasible && fallFeasible {
		fork(fall, fallSt)
		w.st = takenSt
		if !tgtIn {
			done(ExitBranchOut, pc, 0, ConstVal(tgt, false))
			return -1
		}
		return ti
	}
	if takenFeasible {
		w.st = takenSt
		if !tgtIn {
			done(ExitBranchOut, pc, 0, ConstVal(tgt, false))
			return -1
		}
		return ti
	}
	if fallFeasible {
		w.st = fallSt
		return fall
	}
	return -1
}
