package absint

import "lightzone/internal/arm64"

// MemOracle resolves constant-address loads against memory the caller can
// prove immutable under the state being verified (for gate verification:
// the read-only, privileged TTBR1 mappings of the GateTab and TTBRTab).
// ok=false means the location is not proven immutable; the load result is
// then a tainted ⊤, never a wrong constant.
type MemOracle interface {
	ReadConst(va uint64, size int) (uint64, bool)
}

// EffectKind classifies an observable side effect of one instruction.
type EffectKind uint8

const (
	// EffMemRead and EffMemWrite are data accesses.
	EffMemRead EffectKind = iota
	EffMemWrite
	// EffSysRegWrite is MSR <sysreg>, Xt (Sys identifies the register).
	EffSysRegWrite
	// EffPStateWrite is MSR <pstatefield>, #imm for a field the PSTATE
	// lattice tracks (PAN, SPSel); the lattice carries the value.
	EffPStateWrite
	// EffSys is the SYS/SYSL space: TLBI, AT, cache maintenance.
	EffSys
	// EffBarrier is ISB/DSB/DMB (charge-relevant, semantically inert here).
	EffBarrier
)

func (k EffectKind) String() string {
	switch k {
	case EffMemRead:
		return "mem-read"
	case EffMemWrite:
		return "mem-write"
	case EffSysRegWrite:
		return "sysreg-write"
	case EffPStateWrite:
		return "pstate-write"
	case EffSys:
		return "sys"
	case EffBarrier:
		return "barrier"
	}
	return "effect?"
}

// Effect is one observable side effect, anchored at the instruction that
// produced it.
type Effect struct {
	Kind  EffectKind
	PC    uint64
	Index int // instruction index within the analyzed region/block

	Addr AbsVal // EffMemRead / EffMemWrite
	Size int
	Val  AbsVal // value stored, or written to the system register

	Sys     arm64.SysRegEnc // EffSysRegWrite / EffPStateWrite / EffSys
	Barrier arm64.Op        // EffBarrier: OpISB, OpDSB or OpDMB
}

// stepInsn applies one straight-line instruction's dataflow to s, mirroring
// the concrete semantics of internal/cpu/handlers.go. Control transfers,
// exception generation and undecodable words are the interpreter's job
// (interp.go) and must not be passed here; unlisted forms conservatively
// clobber their destination with a tainted ⊤.
func stepInsn(s *State, pc uint64, index int, in arm64.Insn, orc MemOracle, emit func(Effect)) {
	eff := func(e Effect) {
		e.PC = pc
		e.Index = index
		emit(e)
	}
	switch in.Op {
	case arm64.OpNOP:
	case arm64.OpISB, arm64.OpDSB, arm64.OpDMB:
		eff(Effect{Kind: EffBarrier, Barrier: in.Op})

	case arm64.OpMOVZ:
		s.setReg(in.Rd, ConstVal(uint64(in.Imm)<<in.ShiftAmt, false))
	case arm64.OpMOVK:
		old := s.getCell(in.Rd).v
		maskv := uint64(0xFFFF) << in.ShiftAmt
		if v, ok := old.IsConst(); ok {
			s.setReg(in.Rd, ConstVal(v&^maskv|uint64(in.Imm)<<in.ShiftAmt, old.Taint))
		} else {
			s.setReg(in.Rd, TopVal(old.Taint))
		}
	case arm64.OpMOVN:
		s.setReg(in.Rd, ConstVal(^(uint64(in.Imm)<<in.ShiftAmt), false))
	case arm64.OpADR:
		s.setReg(in.Rd, ConstVal(pc+uint64(in.Imm), false))

	case arm64.OpAddImm:
		s.aluAddSub(in, s.getCell(in.Rn), cell{v: ConstVal(uint64(in.Imm), false)}, false)
	case arm64.OpSubImm:
		s.aluAddSub(in, s.getCell(in.Rn), cell{v: ConstVal(uint64(in.Imm), false)}, true)
	case arm64.OpAddReg:
		s.aluAddSub(in, s.getCell(in.Rn), s.shiftedRm(in), false)
	case arm64.OpSubReg:
		s.aluAddSub(in, s.getCell(in.Rn), s.shiftedRm(in), true)

	case arm64.OpAndReg:
		v := andVal(s.getCell(in.Rn).v, s.shiftedRm(in).v)
		s.setReg(in.Rd, v)
		if in.SetFlags {
			// ANDS sets NZ from the result, which the operand-equality
			// fact cannot express.
			s.cmp.valid = false
		}
	case arm64.OpOrrReg:
		if in.Rn == 31 && in.ShiftAmt == 0 {
			// ORR rd, xzr, rm is the MOV alias: a copy keeps the source's
			// value identity, so refining either register refines both.
			s.setCell(in.Rd, s.getCell(in.Rm))
			break
		}
		s.setReg(in.Rd, binConst(s.getCell(in.Rn).v, s.shiftedRm(in).v,
			func(x, y uint64) uint64 { return x | y }))
	case arm64.OpEorReg:
		s.setReg(in.Rd, binConst(s.getCell(in.Rn).v, s.shiftedRm(in).v,
			func(x, y uint64) uint64 { return x ^ y }))

	case arm64.OpLSLV:
		n, m := s.getCell(in.Rn).v, s.getCell(in.Rm).v
		if sh, ok := m.IsConst(); ok {
			s.setReg(in.Rd, taintedAs(shlVal(n, uint8(sh&63)), n.Taint || m.Taint))
		} else {
			s.setReg(in.Rd, TopVal(n.Taint || m.Taint))
		}
	case arm64.OpLSRV:
		n, m := s.getCell(in.Rn).v, s.getCell(in.Rm).v
		if sh, ok := m.IsConst(); ok {
			s.setReg(in.Rd, taintedAs(shrVal(n, uint8(sh&63)), n.Taint || m.Taint))
		} else {
			s.setReg(in.Rd, TopVal(n.Taint || m.Taint))
		}
	case arm64.OpMAdd:
		prod := binConst(s.getCell(in.Rn).v, s.getCell(in.Rm).v,
			func(x, y uint64) uint64 { return x * y })
		s.setReg(in.Rd, addVal(s.getCell(in.Ra).v, prod))
	case arm64.OpUDiv:
		s.setReg(in.Rd, binConst(s.getCell(in.Rn).v, s.getCell(in.Rm).v,
			func(x, y uint64) uint64 {
				if y == 0 {
					return 0
				}
				return x / y
			}))

	case arm64.OpUBFM:
		// Mirrors the handler's form detection exactly: LSR when imms==63,
		// LSL when imms+1 == immr (mod 64), bitfield extract otherwise.
		immr := uint64(in.ShiftAmt)
		imms := uint64(in.Imm)
		v := s.getCell(in.Rn).v
		switch {
		case imms == 63:
			s.setReg(in.Rd, shrVal(v, uint8(immr)))
		case imms+1 == immr%64 || (immr == 0 && imms == 63):
			s.setReg(in.Rd, shlVal(v, uint8((64-immr)%64)))
		case imms < immr:
			s.setReg(in.Rd, shlVal(v, uint8((64-immr)%64)))
		default:
			width := imms - immr + 1
			s.setReg(in.Rd, andVal(shrVal(v, uint8(immr)), ConstVal(1<<width-1, false)))
		}

	case arm64.OpCSel:
		s.setReg(in.Rd, Join(s.getCell(in.Rn).v, s.getCell(in.Rm).v))
	case arm64.OpCSInc:
		s.setReg(in.Rd, Join(s.getCell(in.Rn).v,
			addVal(s.getCell(in.Rm).v, ConstVal(1, false))))

	case arm64.OpLdrImm, arm64.OpLdur, arm64.OpLdtr:
		addr := addVal(s.baseCell(in.Rn).v, ConstVal(uint64(in.Imm), false))
		s.load(in.Rt, addr, 1<<in.Size, orc, eff)
	case arm64.OpLdrReg:
		addr := addVal(s.baseCell(in.Rn).v, s.getCell(in.Rm).v)
		s.load(in.Rt, addr, 1<<in.Size, orc, eff)
	case arm64.OpLdp:
		addr := addVal(s.baseCell(in.Rn).v, ConstVal(uint64(in.Imm), false))
		s.load(in.Rt, addr, 8, orc, eff)
		s.load(in.Rt2, addVal(addr, ConstVal(8, false)), 8, orc, eff)

	case arm64.OpStrImm, arm64.OpStur, arm64.OpSttr:
		addr := addVal(s.baseCell(in.Rn).v, ConstVal(uint64(in.Imm), false))
		eff(Effect{Kind: EffMemWrite, Addr: addr, Size: 1 << in.Size, Val: s.getCell(in.Rt).v})
	case arm64.OpStrReg:
		addr := addVal(s.baseCell(in.Rn).v, s.getCell(in.Rm).v)
		eff(Effect{Kind: EffMemWrite, Addr: addr, Size: 1 << in.Size, Val: s.getCell(in.Rt).v})
	case arm64.OpStp:
		addr := addVal(s.baseCell(in.Rn).v, ConstVal(uint64(in.Imm), false))
		eff(Effect{Kind: EffMemWrite, Addr: addr, Size: 8, Val: s.getCell(in.Rt).v})
		eff(Effect{Kind: EffMemWrite, Addr: addVal(addr, ConstVal(8, false)), Size: 8, Val: s.getCell(in.Rt2).v})

	case arm64.OpMSRReg:
		src := s.getCell(in.Rt)
		if in.Sys.Key() == ttbr0Key {
			// The write keeps the source's identity: a later equality
			// proof on any alias (MRS readback, the original register)
			// narrows the installed TTBR0 too.
			s.ttbr0 = src
			s.ttbr0Written = true
			s.ttbr0VA = pc
		}
		eff(Effect{Kind: EffSysRegWrite, Sys: in.Sys, Val: src.v})
	case arm64.OpMRS:
		if in.Sys.Key() == ttbr0Key {
			if s.ttbr0.id == 0 {
				s.ttbr0.id = s.fresh()
			}
			s.setCell(in.Rt, s.ttbr0)
			break
		}
		// Other system registers are not tracked; several are writable
		// from EL0 (TPIDR_EL0 and friends), so the read is tainted.
		s.setReg(in.Rt, TopVal(true))
	case arm64.OpMSRImm:
		switch {
		case in.Sys.Op1 == arm64.PStateFieldPANOp1 && in.Sys.Op2 == arm64.PStateFieldPANOp2:
			s.pan = Bit0
			if in.Sys.CRm&1 != 0 {
				s.pan = Bit1
			}
			s.panVA = pc
			eff(Effect{Kind: EffPStateWrite, Sys: in.Sys})
		case in.Sys.Op1 == arm64.PStateFieldSPSel1 && in.Sys.Op2 == arm64.PStateFieldSPSel2:
			s.spsel = Bit0
			if in.Sys.CRm&1 != 0 {
				s.spsel = Bit1
			}
			s.spselVA = pc
			eff(Effect{Kind: EffPStateWrite, Sys: in.Sys})
		default:
			// The concrete machine delivers an undefined-instruction
			// exception; report it like an untracked system write so the
			// caller fails closed either way.
			eff(Effect{Kind: EffSysRegWrite, Sys: in.Sys})
		}
	case arm64.OpSYS, arm64.OpSYSL:
		eff(Effect{Kind: EffSys, Sys: in.Sys})

	default:
		// Unlisted dataflow form: clobber the destination, taint it.
		s.setReg(in.Rd, TopVal(true))
	}
}

var ttbr0Key = arm64.TTBR0EL1.Enc().Key()

// taintedAs stamps a taint bit onto a computed value (shift helpers take a
// single operand; variable-shift forms combine both operands' taint).
func taintedAs(v AbsVal, taint bool) AbsVal {
	v.Taint = taint
	return v
}

// aluAddSub mirrors the concrete add/sub helper: 32-bit forms truncate, a
// flag-setting 64-bit subtraction records the operand-equality fact for
// B.EQ/B.NE refinement, and any other flag write clears it.
func (s *State) aluAddSub(in arm64.Insn, a, b cell, sub bool) {
	var v AbsVal
	if sub {
		v = subVal(a.v, b.v)
	} else {
		v = addVal(a.v, b.v)
	}
	if !in.SF {
		if cv, ok := v.IsConst(); ok {
			v = ConstVal(uint64(uint32(cv)), v.Taint)
		} else {
			v = taintedAs(RangeVal(0, 0xFFFF_FFFF, false), v.Taint)
		}
	}
	if in.SetFlags {
		if sub && in.SF {
			s.cmp = cmpFact{valid: true, a: a, b: b}
		} else {
			s.cmp.valid = false
		}
	}
	if in.Rd == 31 && !in.SetFlags {
		return
	}
	s.setReg(in.Rd, v)
}

// shiftedRm materializes the shifted register operand. An unshifted operand
// keeps its cell identity (CMP xA, xB compares the registers themselves);
// a shifted one is an anonymous computed value.
func (s *State) shiftedRm(in arm64.Insn) cell {
	c := s.getCell(in.Rm)
	if in.ShiftAmt == 0 {
		return c
	}
	return cell{v: shlVal(c.v, in.ShiftAmt)}
}

// load applies a data load: the read is an effect, and the result is a
// trusted constant only when the address is constant and the oracle proves
// the location immutable — otherwise the loaded value is a tainted ⊤.
func (s *State) load(rt uint8, addr AbsVal, size int, orc MemOracle, eff func(Effect)) {
	eff(Effect{Kind: EffMemRead, Addr: addr, Size: size})
	if a, ok := addr.IsConst(); ok && orc != nil {
		if v, ok := orc.ReadConst(a, size); ok {
			s.setReg(rt, ConstVal(v, false))
			return
		}
	}
	s.setReg(rt, TopVal(true))
}
