package absint

import (
	"lightzone/internal/arm64"
)

// TraceProof is the composition of consecutive BlockProofs along one
// predicted control-flow path — the static summary of a stitched superblock
// (the "per-trace proof" the BlockProof doc promised). It merges the member
// blocks' ordered access claims (rebased to trace-global instruction
// indices), intersects their sysreg/PAN freedom, and sums the charge-bearing
// shape counts, so a trace runner can validate one proof instead of one per
// block and derive a single minimum-charge bound for the whole run.
//
// ComposeTrace is the sole factory (enforced by tools/lint, mirroring
// ProveBlock for BlockProof): a TraceProof built anywhere else would be an
// unproven claim wearing a proof's type.
type TraceProof struct {
	EntryPC uint64
	Blocks  int
	Insns   int

	// PCs lists the predicted program counter of every instruction in trace
	// order — the audit oracle walks it to cross-check a fused replay
	// against the stitched path.
	PCs []uint64

	// Claims lists every data access in predicted program order, with
	// MemClaim.Index rebased to the trace-global instruction index. Interior
	// edges' terminator claims are impossible (branch ops carry no dataflow),
	// so all claims come from straight-line instructions.
	Claims []MemClaim

	// ISBs and DSBs sum the member blocks' interior barrier counts. Every
	// barrier in a stitched trace is interior by construction: barriers do
	// not terminate blocks, and only terminators sit on stitch edges.
	ISBs int
	DSBs int

	// SysregFree/PANFree hold only when every member block is free — the
	// conjunction, since any member writing state breaks the trace-wide
	// invariant.
	SysregFree bool
	PANFree    bool

	// Branches counts stitch edges that charge BranchCost when the
	// prediction holds: unconditional B/BL/RET always, conditional edges
	// only when the predicted direction is the taken one. A conditional
	// whose taken target equals its fall-through is conservatively not
	// counted — the minimum-charge bound must never exceed reality.
	Branches int

	// PanToggles counts MSR PAN, #imm edges fused into the trace (each
	// charges PanToggleCost).
	PanToggles int
}

// TraceEdge describes how control leaves one member block for the next
// during composition: the terminator's opcode and, for conditional forms,
// whether the predicted direction is the taken branch.
type TraceEdge struct {
	Term       arm64.Op
	TakenPred  bool // conditional edge predicted taken (target != fall-through)
	FusedPAN   bool // MSRImm PAN edge fused into the trace
	ChargeFree bool // edge dispatch charges nothing (e.g. MRS fall-through)
}

// ComposeTrace composes the proofs of a stitched trace's member blocks.
// proofs[i] is the i-th block in predicted order; edges[i] describes the
// terminator edge from block i to block i+1 (len(edges) == len(proofs)-1;
// the final block's terminator is the trace's own exit and contributes no
// edge). Returns nil if the inputs are malformed.
func ComposeTrace(entryPC uint64, proofs []*BlockProof, edges []TraceEdge) *TraceProof {
	if len(proofs) < 2 || len(edges) != len(proofs)-1 {
		return nil
	}
	tp := &TraceProof{
		EntryPC:    entryPC,
		Blocks:     len(proofs),
		SysregFree: true,
		PANFree:    true,
	}
	base := 0
	pc := entryPC
	for bi, p := range proofs {
		if p == nil {
			return nil
		}
		tp.Insns += p.Insns
		tp.ISBs += p.ISBs
		tp.DSBs += p.DSBs
		tp.SysregFree = tp.SysregFree && p.SysregFree
		tp.PANFree = tp.PANFree && p.PANFree
		for i := 0; i < p.Insns; i++ {
			tp.PCs = append(tp.PCs, pc+uint64(i)*arm64.InsnBytes)
		}
		for _, cl := range p.Claims {
			cl.Index += base
			tp.Claims = append(tp.Claims, cl)
		}
		base += p.Insns
		if bi < len(edges) {
			e := edges[bi]
			switch e.Term {
			case arm64.OpB, arm64.OpBL, arm64.OpRET:
				tp.Branches++
			case arm64.OpBCond, arm64.OpCBZ, arm64.OpCBNZ:
				if e.TakenPred {
					tp.Branches++
				}
			case arm64.OpMSRImm:
				if e.FusedPAN {
					tp.PanToggles++
				}
			}
			// Successor PC is supplied by the stitcher via the next proof's
			// own PC; trust but verify.
			pc = proofs[bi+1].PC
		}
	}
	return tp
}

// MinCharge returns the proof's minimum cycle charge for a completed fused
// replay under the given per-event costs. The trace runner and the audit
// oracle share this one formula so they can never disagree.
func (tp *TraceProof) MinCharge(insnCost, memCost, isbCost, dsbCost, branchCost, panCost int64) int64 {
	interior := 0
	for _, cl := range tp.Claims {
		if cl.Index < tp.Insns-1 {
			interior++
		}
	}
	return int64(tp.Insns)*insnCost +
		int64(interior)*memCost +
		int64(tp.ISBs)*isbCost +
		int64(tp.DSBs)*dsbCost +
		int64(tp.Branches)*branchCost +
		int64(tp.PanToggles)*panCost
}
