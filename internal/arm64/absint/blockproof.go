package absint

import (
	"lightzone/internal/arm64"
	"lightzone/internal/mem"
)

// MemClaim is one data access a block proof predicts. Known claims pin the
// page (the address was a compile-time constant — literal pools and
// ADR-relative data); unknown claims still pin the access's order, direction
// and width, which the dynamic oracle can check against real execution.
type MemClaim struct {
	Index int  // instruction index within the block
	Write bool // store vs load
	Known bool // Page is meaningful
	Page  uint64
	Size  int
}

// BlockProof is the static summary of one decoded straight-line block: what
// the block can touch and what it must cost. It is derived purely from the
// decoded instructions (state-free: the entry state is all-⊤), so it stays
// valid exactly as long as the decoded block itself — the block cache keys
// both on the same code epoch.
//
// ROADMAP item 1 consumes this artifact: a block whose claims are all Known
// and SysregFree can have its per-instruction translate+permission checks
// folded into one guarded check per claimed page.
type BlockProof struct {
	PC    uint64
	Insns int

	// Claims lists every data access in program order (Ldp/Stp contribute
	// two). The terminator's own accesses are included; InteriorClaims
	// filters them out for pre-terminator auditing.
	Claims []MemClaim

	// ISBs and DSBs count interior barriers (index < Insns-1); the
	// terminator cannot be a barrier, but the counts are conservative
	// anyway. DSBs counts DSB and DMB together (same charge).
	ISBs int
	DSBs int

	// SysregFree means no instruction in the block writes a system
	// register, PSTATE field, or issues a SYS/SYSL op. Decoded blocks end
	// at any such instruction, so this only excludes a terminator that is
	// one — a SysregFree block is fusable without sysreg replay.
	SysregFree bool

	// PANFree means no instruction moves the PAN bit off its entry value.
	PANFree bool

	// Term is the opcode of the block's final instruction.
	Term arm64.Op
}

// ProveBlock derives the proof for one decoded block. The walk is
// straight-line by construction: the block cache ends blocks at the first
// terminating instruction, so only Insns[len-1] may branch, and control-flow
// ops carry no dataflow the claims depend on.
func ProveBlock(pc uint64, insns []arm64.Insn) *BlockProof {
	p := &BlockProof{PC: pc, Insns: len(insns), SysregFree: true, PANFree: true}
	var nid uint32
	s := NewEntryState(&nid)
	last := len(insns) - 1
	for i, in := range insns {
		p.noteShape(i, last, in)
		if in.Op.Terminates() {
			// Branches, exception generation, sysreg ops, undecodable
			// words: no dataflow claims beyond what noteShape recorded.
			continue
		}
		stepInsn(s, pc+uint64(i)*arm64.InsnBytes, i, in, nil, func(e Effect) {
			switch e.Kind {
			case EffMemRead, EffMemWrite:
				c := MemClaim{Index: i, Write: e.Kind == EffMemWrite, Size: e.Size}
				if a, ok := e.Addr.IsConst(); ok {
					c.Known = true
					c.Page = a >> mem.PageShift
				}
				p.Claims = append(p.Claims, c)
			case EffBarrier:
				if i < last {
					if e.Barrier == arm64.OpISB {
						p.ISBs++
					} else {
						p.DSBs++
					}
				}
			}
		})
	}
	return p
}

// noteShape records the sysreg/PAN classification of one instruction.
func (p *BlockProof) noteShape(i, last int, in arm64.Insn) {
	if i == last {
		p.Term = in.Op
	}
	switch in.Op {
	case arm64.OpMSRReg, arm64.OpSYS, arm64.OpSYSL:
		p.SysregFree = false
	case arm64.OpMSRImm:
		p.SysregFree = false
		if in.Sys.Op1 == arm64.PStateFieldPANOp1 && in.Sys.Op2 == arm64.PStateFieldPANOp2 {
			p.PANFree = false
		}
	}
}

// InteriorClaims returns the claims made by instructions before the
// terminator — the accesses that must all have retired by the time the
// terminator dispatches.
func (p *BlockProof) InteriorClaims() []MemClaim {
	n := 0
	for _, c := range p.Claims {
		if c.Index < p.Insns-1 {
			n++
		}
	}
	return p.Claims[:n]
}

// InteriorAccesses counts the interior claims (each charges one memory
// access in the concrete machine).
func (p *BlockProof) InteriorAccesses() int {
	return len(p.InteriorClaims())
}
