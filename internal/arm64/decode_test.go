package arm64

import (
	"testing"
	"testing/quick"
)

func TestDecodeRoundTripDataProcessing(t *testing.T) {
	tests := []struct {
		name string
		word uint32
		want Insn
	}{
		{"movz", MOVZ(3, 0xBEEF, 1), Insn{Op: OpMOVZ, Rd: 3, Imm: 0xBEEF, ShiftAmt: 16, SF: true}},
		{"movk", MOVK(7, 0x1234, 3), Insn{Op: OpMOVK, Rd: 7, Imm: 0x1234, ShiftAmt: 48, SF: true}},
		{"movn", MOVN(0, 1, 0), Insn{Op: OpMOVN, Rd: 0, Imm: 1, SF: true}},
		{"add imm", ADDImm(1, 2, 100, false), Insn{Op: OpAddImm, Rd: 1, Rn: 2, Imm: 100, SF: true}},
		{"add imm sh", ADDImm(1, 2, 5, true), Insn{Op: OpAddImm, Rd: 1, Rn: 2, Imm: 5 << 12, SF: true}},
		{"sub imm", SUBImm(9, 9, 16, false), Insn{Op: OpSubImm, Rd: 9, Rn: 9, Imm: 16, SF: true}},
		{"cmp imm", CMPImm(4, 7), Insn{Op: OpSubImm, Rd: XZR, Rn: 4, Imm: 7, SF: true, SetFlags: true}},
		{"add reg", ADDReg(1, 2, 3), Insn{Op: OpAddReg, Rd: 1, Rn: 2, Rm: 3, SF: true}},
		{"sub reg", SUBReg(4, 5, 6), Insn{Op: OpSubReg, Rd: 4, Rn: 5, Rm: 6, SF: true}},
		{"cmp reg", CMPReg(2, 3), Insn{Op: OpSubReg, Rd: XZR, Rn: 2, Rm: 3, SF: true, SetFlags: true}},
		{"and", ANDReg(1, 2, 3), Insn{Op: OpAndReg, Rd: 1, Rn: 2, Rm: 3, SF: true}},
		{"orr", ORRReg(1, 2, 3), Insn{Op: OpOrrReg, Rd: 1, Rn: 2, Rm: 3, SF: true}},
		{"mov reg", MOVReg(8, 9), Insn{Op: OpOrrReg, Rd: 8, Rn: XZR, Rm: 9, SF: true}},
		{"eor", EORReg(1, 2, 3), Insn{Op: OpEorReg, Rd: 1, Rn: 2, Rm: 3, SF: true}},
		{"orr shifted", ORRShifted(1, 2, 3, 12), Insn{Op: OpOrrReg, Rd: 1, Rn: 2, Rm: 3, ShiftAmt: 12, SF: true}},
		{"lslv", LSLV(1, 2, 3), Insn{Op: OpLSLV, Rd: 1, Rn: 2, Rm: 3, SF: true}},
		{"lsrv", LSRV(1, 2, 3), Insn{Op: OpLSRV, Rd: 1, Rn: 2, Rm: 3, SF: true}},
		{"udiv", UDIV(1, 2, 3), Insn{Op: OpUDiv, Rd: 1, Rn: 2, Rm: 3, SF: true}},
		{"mul", MUL(1, 2, 3), Insn{Op: OpMAdd, Rd: 1, Rn: 2, Rm: 3, Ra: XZR, SF: true}},
		{"madd", MADD(1, 2, 3, 4), Insn{Op: OpMAdd, Rd: 1, Rn: 2, Rm: 3, Ra: 4, SF: true}},
		{"adr fwd", ADR(5, 64), Insn{Op: OpADR, Rd: 5, Imm: 64, SF: true}},
		{"adr back", ADR(5, -8), Insn{Op: OpADR, Rd: 5, Imm: -8, SF: true}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Decode(tt.word)
			tt.want.Raw = tt.word
			if got != tt.want {
				t.Errorf("Decode(%#08x) = %+v, want %+v", tt.word, got, tt.want)
			}
		})
	}
}

func TestDecodeRoundTripBranches(t *testing.T) {
	tests := []struct {
		name string
		word uint32
		want Insn
	}{
		{"b fwd", B(0x100), Insn{Op: OpB, Imm: 0x100, SF: true}},
		{"b back", B(-0x20), Insn{Op: OpB, Imm: -0x20, SF: true}},
		{"bl", BL(0x2000), Insn{Op: OpBL, Imm: 0x2000, SF: true}},
		{"b.eq", BCond(CondEQ, 8), Insn{Op: OpBCond, Cond: CondEQ, Imm: 8, SF: true}},
		{"b.ne back", BCond(CondNE, -16), Insn{Op: OpBCond, Cond: CondNE, Imm: -16, SF: true}},
		{"cbz", CBZ(3, 24), Insn{Op: OpCBZ, Rt: 3, Imm: 24, SF: true}},
		{"cbnz", CBNZ(3, -24), Insn{Op: OpCBNZ, Rt: 3, Imm: -24, SF: true}},
		{"br", BR(17), Insn{Op: OpBR, Rn: 17, SF: true}},
		{"blr", BLR(0), Insn{Op: OpBLR, Rn: 0, SF: true}},
		{"ret", RET(30), Insn{Op: OpRET, Rn: 30, SF: true}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Decode(tt.word)
			tt.want.Raw = tt.word
			if got != tt.want {
				t.Errorf("Decode(%#08x) = %+v, want %+v", tt.word, got, tt.want)
			}
		})
	}
}

func TestDecodeRoundTripLoadStore(t *testing.T) {
	tests := []struct {
		name string
		word uint32
		want Insn
	}{
		{"ldr x", LDRImm(1, 2, 32, 3), Insn{Op: OpLdrImm, Rt: 1, Rn: 2, Imm: 32, Size: 3, SF: true}},
		{"str x", STRImm(1, 2, 32, 3), Insn{Op: OpStrImm, Rt: 1, Rn: 2, Imm: 32, Size: 3, SF: true}},
		{"ldr w", LDRImm(1, 2, 16, 2), Insn{Op: OpLdrImm, Rt: 1, Rn: 2, Imm: 16, Size: 2, SF: true}},
		{"ldrb", LDRImm(1, 2, 5, 0), Insn{Op: OpLdrImm, Rt: 1, Rn: 2, Imm: 5, Size: 0, SF: true}},
		{"strb", STRImm(1, 2, 5, 0), Insn{Op: OpStrImm, Rt: 1, Rn: 2, Imm: 5, Size: 0, SF: true}},
		{"ldur", LDUR(1, 2, -8, 3), Insn{Op: OpLdur, Rt: 1, Rn: 2, Imm: -8, Size: 3, SF: true}},
		{"stur", STUR(1, 2, 12, 3), Insn{Op: OpStur, Rt: 1, Rn: 2, Imm: 12, Size: 3, SF: true}},
		{"ldtr", LDTR(1, 2, 0, 3), Insn{Op: OpLdtr, Rt: 1, Rn: 2, Size: 3, SF: true}},
		{"sttr", STTR(1, 2, -4, 3), Insn{Op: OpSttr, Rt: 1, Rn: 2, Imm: -4, Size: 3, SF: true}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Decode(tt.word)
			tt.want.Raw = tt.word
			if got != tt.want {
				t.Errorf("Decode(%#08x) = %+v, want %+v", tt.word, got, tt.want)
			}
		})
	}
}

func TestDecodeSystemInstructions(t *testing.T) {
	t.Run("svc", func(t *testing.T) {
		in := Decode(SVC(0x42))
		if in.Op != OpSVC || in.Imm != 0x42 {
			t.Errorf("got %+v", in)
		}
	})
	t.Run("hvc", func(t *testing.T) {
		in := Decode(HVC(7))
		if in.Op != OpHVC || in.Imm != 7 {
			t.Errorf("got %+v", in)
		}
	})
	t.Run("smc", func(t *testing.T) {
		if in := Decode(SMC(0)); in.Op != OpSMC {
			t.Errorf("got %+v", in)
		}
	})
	t.Run("eret", func(t *testing.T) {
		if in := Decode(WordERET); in.Op != OpERET {
			t.Errorf("got %+v", in)
		}
	})
	t.Run("fixed words", func(t *testing.T) {
		for word, want := range map[uint32]Op{
			WordNOP: OpNOP, WordISB: OpISB, WordDSBSY: OpDSB, WordDMBSY: OpDMB,
		} {
			if in := Decode(word); in.Op != want {
				t.Errorf("Decode(%#x).Op = %v, want %v", word, in.Op, want)
			}
		}
	})
	t.Run("msr ttbr0_el1", func(t *testing.T) {
		in := Decode(MSR(TTBR0EL1, 5))
		if in.Op != OpMSRReg || in.Rt != 5 {
			t.Fatalf("got %+v", in)
		}
		if r, ok := LookupSysReg(in.Sys); !ok || r != TTBR0EL1 {
			t.Errorf("LookupSysReg = %v, %v", r, ok)
		}
	})
	t.Run("mrs esr_el1", func(t *testing.T) {
		in := Decode(MRS(9, ESREL1))
		if in.Op != OpMRS || in.Rt != 9 {
			t.Fatalf("got %+v", in)
		}
		if r, ok := LookupSysReg(in.Sys); !ok || r != ESREL1 {
			t.Errorf("LookupSysReg = %v, %v", r, ok)
		}
	})
	t.Run("msr pan imm", func(t *testing.T) {
		in := Decode(MSRPan(1))
		if in.Op != OpMSRImm || in.Imm != 1 {
			t.Fatalf("got %+v", in)
		}
		if in.Sys.Op0 != 0 || in.Sys.CRn != 4 || in.Sys.Op2 != PStateFieldPANOp2 {
			t.Errorf("PAN encoding fields wrong: %+v", in.Sys)
		}
	})
	t.Run("tlbi is sys op", func(t *testing.T) {
		in := Decode(TLBIVMALLE1())
		if in.Op != OpSYS || in.Sys.Op0 != 1 || in.Sys.CRn != 8 {
			t.Errorf("got %+v", in)
		}
	})
	t.Run("at is sys op crn7", func(t *testing.T) {
		in := Decode(ATS1E1R(3))
		if in.Op != OpSYS || in.Sys.Op0 != 1 || in.Sys.CRn != 7 {
			t.Errorf("got %+v", in)
		}
	})
}

func TestSystemSpacePredicate(t *testing.T) {
	system := []uint32{
		MSR(TTBR0EL1, 0), MRS(0, ESREL1), MSRPan(0), MSRPan(1),
		TLBIVMALLE1(), ATS1E1R(0), WordNOP, WordISB, WordDSBSY,
	}
	for _, w := range system {
		if !IsSystemSpace(w) {
			t.Errorf("IsSystemSpace(%#08x) = false, want true", w)
		}
	}
	nonSystem := []uint32{
		WordERET, SVC(0), HVC(0), B(4), RET(30), ADDImm(0, 0, 1, false),
		LDRImm(0, 1, 0, 3), MOVZ(0, 1, 0),
	}
	for _, w := range nonSystem {
		if IsSystemSpace(w) {
			t.Errorf("IsSystemSpace(%#08x) = true, want false", w)
		}
	}
}

func TestSysRegEncodingsUnique(t *testing.T) {
	seen := make(map[uint32]SysReg)
	for r := SysReg(1); r < sysRegCount; r++ {
		key := r.Enc().Key()
		if prev, dup := seen[key]; dup {
			t.Errorf("encoding collision: %v and %v share %+v", prev, r, r.Enc())
		}
		seen[key] = r
	}
}

func TestSysRegLookupRoundTrip(t *testing.T) {
	for r := SysReg(1); r < sysRegCount; r++ {
		got, ok := LookupSysReg(r.Enc())
		if !ok || got != r {
			t.Errorf("LookupSysReg(%v.Enc()) = %v, %v", r, got, ok)
		}
	}
}

func TestMSRWordsResolveToEncodedRegister(t *testing.T) {
	for r := SysReg(1); r < sysRegCount; r++ {
		in := Decode(MSR(r, 1))
		if in.Op != OpMSRReg && in.Op != OpMSRImm && in.Op != OpSYS {
			// Registers with op0 < 2 (e.g. MDSCR_EL1 via op0=2) stay MSR.
			t.Errorf("MSR(%v) decoded as %v", r, in.Op)
			continue
		}
		if in.Op == OpMSRReg {
			got, ok := LookupSysReg(in.Sys)
			if !ok || got != r {
				t.Errorf("MSR(%v) round-trip = %v, %v", r, got, ok)
			}
		}
	}
}

// Property: Decode never panics, and instructions built by the encoders
// always decode to a known op.
func TestDecodeNeverPanics(t *testing.T) {
	f := func(word uint32) bool {
		_ = Decode(word) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}

// Property: MOVZ/MOVK materialization round-trips arbitrary constants when
// interpreted the way the CPU executes them.
func TestMovImm64Property(t *testing.T) {
	f := func(v uint64) bool {
		var acc uint64
		for _, w := range MovImm64(1, v) {
			in := Decode(w)
			switch in.Op {
			case OpMOVZ:
				acc = uint64(in.Imm) << in.ShiftAmt
			case OpMOVK:
				mask := uint64(0xFFFF) << in.ShiftAmt
				acc = acc&^mask | uint64(in.Imm)<<in.ShiftAmt
			default:
				return false
			}
		}
		return acc == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestAsmLabelsAndFixups(t *testing.T) {
	a := NewAsm()
	a.Label("start")
	a.MovImm(0, 3)
	a.Label("loop")
	a.Emit(SUBSImm(0, 0, 1))
	a.BCond(CondNE, "loop")
	a.CBZ(1, "done")
	a.B("start")
	a.Label("done")
	a.Emit(RET(30))

	words, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	// The BCond at index 2 must branch back one word.
	if in := Decode(words[2]); in.Op != OpBCond || in.Imm != -4 {
		t.Errorf("b.ne fixup: %+v", in)
	}
	// The CBZ at index 3 must branch forward two words to "done".
	if in := Decode(words[3]); in.Op != OpCBZ || in.Imm != 8 {
		t.Errorf("cbz fixup: %+v", in)
	}
	// The B at index 4 must branch back to index 0.
	if in := Decode(words[4]); in.Op != OpB || in.Imm != -16 {
		t.Errorf("b fixup: %+v", in)
	}
	off, err := a.Offset("done")
	if err != nil || off != 20 {
		t.Errorf("Offset(done) = %d, %v", off, err)
	}
}

func TestAsmUndefinedLabel(t *testing.T) {
	a := NewAsm()
	a.B("nowhere")
	if _, err := a.Assemble(); err == nil {
		t.Error("expected error for undefined label")
	}
}

func TestWordsBytesRoundTrip(t *testing.T) {
	words := []uint32{WordNOP, SVC(1), MOVZ(0, 0xABCD, 2)}
	got := BytesToWords(WordsToBytes(words))
	if len(got) != len(words) {
		t.Fatalf("length %d != %d", len(got), len(words))
	}
	for i := range words {
		if got[i] != words[i] {
			t.Errorf("word %d: %#x != %#x", i, got[i], words[i])
		}
	}
}

func TestProfileOverridesMatchTable4DirectMeasurements(t *testing.T) {
	carmel := ProfileCarmel()
	if got := carmel.SysRegWriteCost(HCREL2); got < 1550 || got > 1655 {
		t.Errorf("Carmel HCR_EL2 write = %d, want within paper band [1550, 1655]", got)
	}
	if got := carmel.SysRegWriteCost(VTTBREL2); got != 1115 {
		t.Errorf("Carmel VTTBR_EL2 write = %d, want 1115", got)
	}
	cortex := ProfileCortexA55()
	if got := cortex.SysRegWriteCost(HCREL2); got != 88 {
		t.Errorf("Cortex HCR_EL2 write = %d, want 88", got)
	}
	if got := cortex.SysRegWriteCost(VTTBREL2); got != 37 {
		t.Errorf("Cortex VTTBR_EL2 write = %d, want 37", got)
	}
}

func TestELPStateRoundTrip(t *testing.T) {
	for _, el := range []EL{EL0, EL1, EL2} {
		if got := ELFromPState(PStateForEL(el)); got != el {
			t.Errorf("ELFromPState(PStateForEL(%v)) = %v", el, got)
		}
	}
}

func TestDecodePairAndConditional(t *testing.T) {
	tests := []struct {
		name string
		word uint32
		want Insn
	}{
		{"ldp", LDP(1, 2, 3, 16), Insn{Op: OpLdp, Rt: 1, Rt2: 2, Rn: 3, Imm: 16, Size: 3, SF: true}},
		{"ldp neg", LDP(1, 2, 3, -32), Insn{Op: OpLdp, Rt: 1, Rt2: 2, Rn: 3, Imm: -32, Size: 3, SF: true}},
		{"stp", STP(4, 5, 6, 0), Insn{Op: OpStp, Rt: 4, Rt2: 5, Rn: 6, Size: 3, SF: true}},
		{"ldr reg", LDRReg(1, 2, 3, 3), Insn{Op: OpLdrReg, Rt: 1, Rn: 2, Rm: 3, Size: 3, SF: true}},
		{"str reg b", STRReg(1, 2, 3, 0), Insn{Op: OpStrReg, Rt: 1, Rn: 2, Rm: 3, Size: 0, SF: true}},
		{"csel", CSEL(1, 2, 3, CondEQ), Insn{Op: OpCSel, Rd: 1, Rn: 2, Rm: 3, Cond: CondEQ, SF: true}},
		{"csinc", CSINC(1, 2, 3, CondLT), Insn{Op: OpCSInc, Rd: 1, Rn: 2, Rm: 3, Cond: CondLT, SF: true}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Decode(tt.word)
			tt.want.Raw = tt.word
			if got != tt.want {
				t.Errorf("Decode(%#08x) = %+v, want %+v", tt.word, got, tt.want)
			}
		})
	}
}

func TestUBFMShiftForms(t *testing.T) {
	if in := Decode(LSRImm(1, 2, 4)); in.Op != OpUBFM || in.ShiftAmt != 4 || in.Imm != 63 {
		t.Errorf("lsr decode: %+v", in)
	}
	if in := Decode(LSLImm(1, 2, 8)); in.Op != OpUBFM || in.ShiftAmt != 56 || in.Imm != 55 {
		t.Errorf("lsl decode: %+v", in)
	}
}
