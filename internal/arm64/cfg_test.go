package arm64

import "testing"

// seg builds a single segment at base from encoded words.
func seg(base uint64, words ...uint32) CFGSegment {
	return CFGSegment{Base: base, Words: words}
}

// TestCFGLiteralPoolUnreachable: an unconditional branch over a data word
// keeps the word out of the reachable set even though it sits between two
// reachable instructions — the core property the sanitizer checker leans on.
func TestCFGLiteralPoolUnreachable(t *testing.T) {
	const base = 0x1000
	g := BuildCFG([]CFGSegment{seg(base,
		B(8),          // 0x1000: b .+8, over the pool word
		TLBIVMALLE1(), // 0x1004: sensitive word parked as data
		RET(30),       // 0x1008: branch target
	)}, []uint64{base})
	if !g.Reachable(base) || !g.Reachable(base+8) {
		t.Fatalf("entry or branch target not reachable")
	}
	if g.Reachable(base + 4) {
		t.Fatal("literal-pool word reachable despite the branch over it")
	}
	if n := g.ReachableCount(); n != 2 {
		t.Fatalf("ReachableCount = %d, want 2", n)
	}
}

// TestCFGConditionalBothEdges: B.cond and CBZ follow both the target and the
// fall-through, so everything on either side is reachable.
func TestCFGConditionalBothEdges(t *testing.T) {
	const base = 0x2000
	g := BuildCFG([]CFGSegment{seg(base,
		CBZ(0, 12),       // 0x2000 -> 0x200c and 0x2004
		BCond(CondEQ, 8), // 0x2004 -> 0x200c and 0x2008
		WordNOP,          // 0x2008
		RET(30),          // 0x200c
	)}, []uint64{base})
	for off := uint64(0); off < 16; off += 4 {
		if !g.Reachable(base + off) {
			t.Errorf("offset %#x not reachable", off)
		}
	}
	// Leaders: the entry plus the shared branch target; 0x2008 is reached
	// only by fall-through and so starts no block.
	blocks := g.Blocks()
	want := []uint64{base, base + 12}
	if len(blocks) != len(want) {
		t.Fatalf("Blocks = %#x, want %#x", blocks, want)
	}
	for i, b := range blocks {
		if b != want[i] {
			t.Fatalf("Blocks = %#x, want %#x", blocks, want)
		}
	}
}

// TestCFGIndirectAndUndecodableTerminate: BR/RET and undecodable words have
// no static successors; SVC/HVC fall through; BL follows both edges.
func TestCFGIndirectAndUndecodableTerminate(t *testing.T) {
	const base = 0x3000
	g := BuildCFG([]CFGSegment{seg(base,
		BL(16),     // 0x3000 -> 0x3010 (call) and 0x3004 (return site)
		SVC(1),     // 0x3004 -> falls through
		BR(5),      // 0x3008: no static successors
		0xffffffff, // 0x300c: would only be reached past BR — must stay dark
		RET(30),    // 0x3010: callee
	)}, []uint64{base})
	for _, off := range []uint64{0, 4, 8, 16} {
		if !g.Reachable(base + off) {
			t.Errorf("offset %#x not reachable", off)
		}
	}
	if g.Reachable(base + 12) {
		t.Error("word past BR reachable; indirect branches must terminate paths")
	}

	// An undecodable word that IS reachable terminates its path too.
	g2 := BuildCFG([]CFGSegment{seg(base, 0xffffffff, WordNOP)}, []uint64{base})
	if !g2.Reachable(base) || g2.Reachable(base+4) {
		t.Errorf("undecodable entry: reachable(%v, %v), want (true, false)",
			g2.Reachable(base), g2.Reachable(base+4))
	}
}

// TestCFGSegmentBounds: unaligned or out-of-segment entries and branch
// targets are dropped rather than faulting, across multiple segments handed
// over out of order.
func TestCFGSegmentBounds(t *testing.T) {
	lo := seg(0x1000, B(0x1000), RET(30)) // branch to 0x2000 in the other segment
	hi := seg(0x2000, RET(30))
	g := BuildCFG([]CFGSegment{hi, lo}, []uint64{0x1000, 0x1002, 0x5000})
	if !g.Reachable(0x1000) {
		t.Error("entry not reachable")
	}
	if !g.Reachable(0x2000) {
		t.Error("cross-segment branch target not reachable")
	}
	if g.Reachable(0x1004) {
		t.Error("word after unconditional b reachable without an edge to it")
	}
	if g.Reachable(0x1002) || g.Reachable(0x5000) {
		t.Error("unaligned / out-of-segment entries must be ignored")
	}
	if w, ok := g.wordAt(0x2000); !ok || w != RET(30) {
		t.Errorf("wordAt(0x2000) = %#x, %v", w, ok)
	}
	if _, ok := g.wordAt(0x1ffc); ok {
		t.Error("wordAt between segments must miss")
	}
}

// TestCFGVisitReachableOrder: visiting yields ascending addresses with the
// decoded form, and stops when fn returns false.
func TestCFGVisitReachableOrder(t *testing.T) {
	const base = 0x4000
	g := BuildCFG([]CFGSegment{seg(base, WordNOP, WordNOP, RET(30))}, []uint64{base})
	var got []uint64
	g.VisitReachable(func(addr uint64, word uint32, in Insn) bool {
		got = append(got, addr)
		if addr == base+8 && in.Op != OpRET {
			t.Errorf("decoded %v at %#x, want ret", in.Op, addr)
		}
		return true
	})
	if len(got) != 3 || got[0] != base || got[1] != base+4 || got[2] != base+8 {
		t.Fatalf("visit order %#x", got)
	}
	var n int
	g.VisitReachable(func(uint64, uint32, Insn) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop visited %d instructions, want 1", n)
	}
}

// TestCFGLiteralPoolAbutsTerminator: a pool parked immediately after a
// block terminator (no branch over it, nothing falls into it) stays dark —
// including a pool word that itself decodes as a branch back into the code,
// which must not fabricate edges from unreachable positions.
func TestCFGLiteralPoolAbutsTerminator(t *testing.T) {
	const base = 0x5000
	g := BuildCFG([]CFGSegment{seg(base,
		WordNOP,       // 0x5000
		RET(30),       // 0x5004: terminator; the pool abuts it directly
		B(-8),         // 0x5008: pool word that decodes as b 0x5000
		TLBIVMALLE1(), // 0x500c: pool word that decodes as a sensitive op
	)}, []uint64{base})
	if !g.Reachable(base) || !g.Reachable(base+4) {
		t.Fatal("code before the terminator must be reachable")
	}
	for _, off := range []uint64{8, 12} {
		if g.Reachable(base + off) {
			t.Errorf("pool word at +%#x reachable; nothing flows past a terminator", off)
		}
	}
	// The branch-shaped pool word must not have minted a leader.
	for _, b := range g.Blocks() {
		if b != base {
			t.Errorf("unexpected leader %#x; pool words must not create blocks", b)
		}
	}
}

// TestCFGCondFallthroughChain: a run of conditional branches, each falling
// through into the next, all converging on one target. Every link of the
// chain is reachable and the convergence point is the only extra leader.
func TestCFGCondFallthroughChain(t *testing.T) {
	const base = 0x6000
	g := BuildCFG([]CFGSegment{seg(base,
		BCond(CondEQ, 20), // 0x6000 -> 0x6014 and 0x6004
		BCond(CondNE, 16), // 0x6004 -> 0x6014 and 0x6008
		CBZ(0, 12),        // 0x6008 -> 0x6014 and 0x600c
		CBNZ(1, 8),        // 0x600c -> 0x6014 and 0x6010
		WordNOP,           // 0x6010
		RET(30),           // 0x6014: shared target
	)}, []uint64{base})
	for off := uint64(0); off <= 20; off += 4 {
		if !g.Reachable(base + off) {
			t.Errorf("offset +%#x not reachable through the fallthrough chain", off)
		}
	}
	blocks := g.Blocks()
	want := []uint64{base, base + 20}
	if len(blocks) != len(want) || blocks[0] != want[0] || blocks[1] != want[1] {
		t.Fatalf("Blocks = %#x, want %#x", blocks, want)
	}
}

// TestCFGUnknownMidBlock: an undecodable word in the middle of a
// straight-line run is itself reachable (execution arrives and traps) but
// must end the path — the builder may not skip it, and nothing below it is
// reached through it. A zero word (the common padding) behaves the same.
func TestCFGUnknownMidBlock(t *testing.T) {
	for _, bad := range []uint32{0xffffffff, 0} {
		const base = 0x7000
		g := BuildCFG([]CFGSegment{seg(base,
			WordNOP,       // 0x7000
			bad,           // 0x7004: traps; no successors
			TLBIVMALLE1(), // 0x7008: must stay dark
			RET(30),       // 0x700c
		)}, []uint64{base})
		if !g.Reachable(base + 4) {
			t.Errorf("bad=%#x: the trapping word itself must be reachable", bad)
		}
		if g.Reachable(base+8) || g.Reachable(base+12) {
			t.Errorf("bad=%#x: words past an undecodable word are reachable", bad)
		}
		if n := g.ReachableCount(); n != 2 {
			t.Errorf("bad=%#x: ReachableCount = %d, want 2", bad, n)
		}
	}
}
