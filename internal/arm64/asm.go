package arm64

import (
	"encoding/binary"
	"fmt"
)

// Asm assembles small A64 code sequences (call gates, trap stubs, attack
// programs) with label-based branch fixups.
type Asm struct {
	words  []uint32
	labels map[string]int
	fixups []fixup
}

type fixup struct {
	at    int // word index of the branch instruction
	label string
	kind  fixupKind
	cond  uint8
	rt    uint8
}

type fixupKind uint8

const (
	fixB fixupKind = iota + 1
	fixBL
	fixBCond
	fixCBZ
	fixCBNZ
	fixADR
)

// NewAsm returns an empty assembler.
func NewAsm() *Asm {
	return &Asm{labels: make(map[string]int)}
}

// Len returns the current length in bytes.
func (a *Asm) Len() int { return len(a.words) * InsnBytes }

// Emit appends raw instruction words.
func (a *Asm) Emit(words ...uint32) *Asm {
	a.words = append(a.words, words...)
	return a
}

// Label binds name to the current position.
func (a *Asm) Label(name string) *Asm {
	a.labels[name] = len(a.words)
	return a
}

// B emits an unconditional branch to a label.
func (a *Asm) B(label string) *Asm {
	a.fixups = append(a.fixups, fixup{at: len(a.words), label: label, kind: fixB})
	return a.Emit(0)
}

// BL emits a branch-with-link to a label.
func (a *Asm) BL(label string) *Asm {
	a.fixups = append(a.fixups, fixup{at: len(a.words), label: label, kind: fixBL})
	return a.Emit(0)
}

// BCond emits a conditional branch to a label.
func (a *Asm) BCond(cond uint8, label string) *Asm {
	a.fixups = append(a.fixups, fixup{at: len(a.words), label: label, kind: fixBCond, cond: cond})
	return a.Emit(0)
}

// CBZ emits a compare-and-branch-if-zero to a label.
func (a *Asm) CBZ(rt uint8, label string) *Asm {
	a.fixups = append(a.fixups, fixup{at: len(a.words), label: label, kind: fixCBZ, rt: rt})
	return a.Emit(0)
}

// CBNZ emits a compare-and-branch-if-nonzero to a label.
func (a *Asm) CBNZ(rt uint8, label string) *Asm {
	a.fixups = append(a.fixups, fixup{at: len(a.words), label: label, kind: fixCBNZ, rt: rt})
	return a.Emit(0)
}

// ADR emits an ADR of a label's address into rd.
func (a *Asm) ADR(rd uint8, label string) *Asm {
	a.fixups = append(a.fixups, fixup{at: len(a.words), label: label, kind: fixADR, rt: rd})
	return a.Emit(0)
}

// MovImm emits a MOVZ/MOVK sequence materializing a 64-bit constant.
func (a *Asm) MovImm(rd uint8, v uint64) *Asm {
	return a.Emit(MovImm64(rd, v)...)
}

// Offset returns the byte offset of a bound label.
func (a *Asm) Offset(label string) (int, error) {
	idx, ok := a.labels[label]
	if !ok {
		return 0, fmt.Errorf("undefined label %q", label)
	}
	return idx * InsnBytes, nil
}

// Assemble resolves fixups and returns the instruction words.
func (a *Asm) Assemble() ([]uint32, error) {
	out := make([]uint32, len(a.words))
	copy(out, a.words)
	for _, f := range a.fixups {
		target, ok := a.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("undefined label %q", f.label)
		}
		off := int64(target-f.at) * InsnBytes
		switch f.kind {
		case fixB:
			if err := checkBranchRange(off, 27); err != nil {
				return nil, err
			}
			out[f.at] = B(off)
		case fixBL:
			if err := checkBranchRange(off, 27); err != nil {
				return nil, err
			}
			out[f.at] = BL(off)
		case fixBCond:
			if err := checkBranchRange(off, 20); err != nil {
				return nil, err
			}
			out[f.at] = BCond(f.cond, off)
		case fixCBZ:
			if err := checkBranchRange(off, 20); err != nil {
				return nil, err
			}
			out[f.at] = CBZ(f.rt, off)
		case fixCBNZ:
			if err := checkBranchRange(off, 20); err != nil {
				return nil, err
			}
			out[f.at] = CBNZ(f.rt, off)
		case fixADR:
			out[f.at] = ADR(f.rt, off)
		}
	}
	return out, nil
}

// Bytes assembles and serializes little-endian, as stored in memory.
func (a *Asm) Bytes() ([]byte, error) {
	words, err := a.Assemble()
	if err != nil {
		return nil, err
	}
	return WordsToBytes(words), nil
}

// WordsToBytes serializes instruction words little-endian.
func WordsToBytes(words []uint32) []byte {
	buf := make([]byte, len(words)*InsnBytes)
	for i, w := range words {
		binary.LittleEndian.PutUint32(buf[i*InsnBytes:], w)
	}
	return buf
}

// BytesToWords deserializes little-endian instruction words. Trailing bytes
// that do not fill a word are ignored.
func BytesToWords(b []byte) []uint32 {
	n := len(b) / InsnBytes
	words := make([]uint32, n)
	for i := 0; i < n; i++ {
		words[i] = binary.LittleEndian.Uint32(b[i*InsnBytes:])
	}
	return words
}
