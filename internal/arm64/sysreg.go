package arm64

import "fmt"

// SysReg identifies a modelled system register.
type SysReg uint16

// Modelled system registers. The set covers everything the LightZone kernel
// module, the hypervisor world switch, and the sanitizer rules touch.
const (
	SysRegInvalid SysReg = iota

	// EL1 (kernel-mode) registers.
	SCTLREL1
	TTBR0EL1
	TTBR1EL1
	TCREL1
	MAIREL1
	AMAIREL1
	CONTEXTIDREL1
	VBAREL1
	ESREL1
	ELREL1
	SPSREL1
	FAREL1
	AFSR0EL1
	AFSR1EL1
	PAREL1
	CPACREL1
	CNTKCTLEL1
	CSSELREL1
	SPEL0
	SPEL1
	TPIDREL0
	TPIDRROEL0
	TPIDREL1
	MDSCREL1
	// POREL1 is the EL1 permission-overlay register (FEAT_S1POE's
	// POR_EL1): the active overlay key of the running context. The overlay
	// backend writes it on domain entry instead of switching TTBR0.
	POREL1

	// EL0-accessible status registers (op1==3): always legal for processes.
	NZCV
	FPCR
	FPSR
	CNTVCTEL0
	CNTFRQEL0
	DCZIDEL0
	CTREL0

	// EL2 (hypervisor-mode) registers.
	HCREL2
	VTTBREL2
	VTCREL2
	SCTLREL2
	TTBR0EL2
	TCREL2
	MAIREL2
	VBAREL2
	ESREL2
	ELREL2
	SPSREL2
	FAREL2
	HPFAREL2
	SPEL2
	TPIDREL2
	CPTREL2
	MDCREL2
	CNTHCTLEL2
	CNTVOFFEL2
	VMPIDREL2
	VPIDREL2

	// Identification registers (read-only).
	MIDREL1
	MPIDREL1

	sysRegCount // internal sentinel
)

// NumSysRegs is the size needed for a dense system-register file.
const NumSysRegs = int(sysRegCount)

// SysRegEnc is the (op0, op1, CRn, CRm, op2) MSR/MRS encoding of a system
// register, per the A64 system-instruction format: in a system instruction,
// bits(31,22) are 0b1101010100, (20,19) are op0, (18,16) are op1, (15,12)
// are CRn, (11,8) are CRm, and (7,5) are op2 (paper Table 3).
type SysRegEnc struct {
	Op0, Op1, CRn, CRm, Op2 uint8
}

// Key packs the encoding into a comparable integer.
func (e SysRegEnc) Key() uint32 {
	return uint32(e.Op0)<<16 | uint32(e.Op1)<<12 | uint32(e.CRn)<<8 |
		uint32(e.CRm)<<4 | uint32(e.Op2)
}

type sysRegInfo struct {
	name string
	enc  SysRegEnc
	el   EL   // minimum EL required for untrapped access
	ro   bool // read-only register
}

// The encodings below are the architectural ones from the ARM ARM.
var sysRegTable = [sysRegCount]sysRegInfo{
	SCTLREL1:      {"SCTLR_EL1", SysRegEnc{3, 0, 1, 0, 0}, EL1, false},
	TTBR0EL1:      {"TTBR0_EL1", SysRegEnc{3, 0, 2, 0, 0}, EL1, false},
	TTBR1EL1:      {"TTBR1_EL1", SysRegEnc{3, 0, 2, 0, 1}, EL1, false},
	TCREL1:        {"TCR_EL1", SysRegEnc{3, 0, 2, 0, 2}, EL1, false},
	MAIREL1:       {"MAIR_EL1", SysRegEnc{3, 0, 10, 2, 0}, EL1, false},
	AMAIREL1:      {"AMAIR_EL1", SysRegEnc{3, 0, 10, 3, 0}, EL1, false},
	CONTEXTIDREL1: {"CONTEXTIDR_EL1", SysRegEnc{3, 0, 13, 0, 1}, EL1, false},
	VBAREL1:       {"VBAR_EL1", SysRegEnc{3, 0, 12, 0, 0}, EL1, false},
	ESREL1:        {"ESR_EL1", SysRegEnc{3, 0, 5, 2, 0}, EL1, false},
	ELREL1:        {"ELR_EL1", SysRegEnc{3, 0, 4, 0, 1}, EL1, false},
	SPSREL1:       {"SPSR_EL1", SysRegEnc{3, 0, 4, 0, 0}, EL1, false},
	FAREL1:        {"FAR_EL1", SysRegEnc{3, 0, 6, 0, 0}, EL1, false},
	AFSR0EL1:      {"AFSR0_EL1", SysRegEnc{3, 0, 5, 1, 0}, EL1, false},
	AFSR1EL1:      {"AFSR1_EL1", SysRegEnc{3, 0, 5, 1, 1}, EL1, false},
	PAREL1:        {"PAR_EL1", SysRegEnc{3, 0, 7, 4, 0}, EL1, false},
	CPACREL1:      {"CPACR_EL1", SysRegEnc{3, 0, 1, 0, 2}, EL1, false},
	CNTKCTLEL1:    {"CNTKCTL_EL1", SysRegEnc{3, 0, 14, 1, 0}, EL1, false},
	CSSELREL1:     {"CSSELR_EL1", SysRegEnc{3, 2, 0, 0, 0}, EL1, false},
	SPEL0:         {"SP_EL0", SysRegEnc{3, 0, 4, 1, 0}, EL1, false},
	SPEL1:         {"SP_EL1", SysRegEnc{3, 4, 4, 1, 0}, EL2, false},
	TPIDREL0:      {"TPIDR_EL0", SysRegEnc{3, 3, 13, 0, 2}, EL0, false},
	TPIDRROEL0:    {"TPIDRRO_EL0", SysRegEnc{3, 3, 13, 0, 3}, EL0, true},
	TPIDREL1:      {"TPIDR_EL1", SysRegEnc{3, 0, 13, 0, 4}, EL1, false},
	MDSCREL1:      {"MDSCR_EL1", SysRegEnc{2, 0, 0, 2, 2}, EL1, false},
	// Deliberately not in Stage1Regs: overlay-key switches must stay
	// untrapped — that untrapped MSR is the backend's whole cost claim.
	POREL1: {"POR_EL1", SysRegEnc{3, 0, 10, 2, 4}, EL1, false},

	NZCV:      {"NZCV", SysRegEnc{3, 3, 4, 2, 0}, EL0, false},
	FPCR:      {"FPCR", SysRegEnc{3, 3, 4, 4, 0}, EL0, false},
	FPSR:      {"FPSR", SysRegEnc{3, 3, 4, 4, 1}, EL0, false},
	CNTVCTEL0: {"CNTVCT_EL0", SysRegEnc{3, 3, 14, 0, 2}, EL0, true},
	CNTFRQEL0: {"CNTFRQ_EL0", SysRegEnc{3, 3, 14, 0, 0}, EL0, true},
	DCZIDEL0:  {"DCZID_EL0", SysRegEnc{3, 3, 0, 0, 7}, EL0, true},
	CTREL0:    {"CTR_EL0", SysRegEnc{3, 3, 0, 0, 1}, EL0, true},

	HCREL2:     {"HCR_EL2", SysRegEnc{3, 4, 1, 1, 0}, EL2, false},
	VTTBREL2:   {"VTTBR_EL2", SysRegEnc{3, 4, 2, 1, 0}, EL2, false},
	VTCREL2:    {"VTCR_EL2", SysRegEnc{3, 4, 2, 1, 2}, EL2, false},
	SCTLREL2:   {"SCTLR_EL2", SysRegEnc{3, 4, 1, 0, 0}, EL2, false},
	TTBR0EL2:   {"TTBR0_EL2", SysRegEnc{3, 4, 2, 0, 0}, EL2, false},
	TCREL2:     {"TCR_EL2", SysRegEnc{3, 4, 2, 0, 2}, EL2, false},
	MAIREL2:    {"MAIR_EL2", SysRegEnc{3, 4, 10, 2, 0}, EL2, false},
	VBAREL2:    {"VBAR_EL2", SysRegEnc{3, 4, 12, 0, 0}, EL2, false},
	ESREL2:     {"ESR_EL2", SysRegEnc{3, 4, 5, 2, 0}, EL2, false},
	ELREL2:     {"ELR_EL2", SysRegEnc{3, 4, 4, 0, 1}, EL2, false},
	SPSREL2:    {"SPSR_EL2", SysRegEnc{3, 4, 4, 0, 0}, EL2, false},
	FAREL2:     {"FAR_EL2", SysRegEnc{3, 4, 6, 0, 0}, EL2, false},
	HPFAREL2:   {"HPFAR_EL2", SysRegEnc{3, 4, 6, 0, 4}, EL2, false},
	SPEL2:      {"SP_EL2", SysRegEnc{3, 6, 4, 1, 0}, EL2, false},
	TPIDREL2:   {"TPIDR_EL2", SysRegEnc{3, 4, 13, 0, 2}, EL2, false},
	CPTREL2:    {"CPTR_EL2", SysRegEnc{3, 4, 1, 1, 2}, EL2, false},
	MDCREL2:    {"MDCR_EL2", SysRegEnc{3, 4, 1, 1, 1}, EL2, false},
	CNTHCTLEL2: {"CNTHCTL_EL2", SysRegEnc{3, 4, 14, 1, 0}, EL2, false},
	CNTVOFFEL2: {"CNTVOFF_EL2", SysRegEnc{3, 4, 14, 0, 3}, EL2, false},
	VMPIDREL2:  {"VMPIDR_EL2", SysRegEnc{3, 4, 0, 0, 5}, EL2, false},
	VPIDREL2:   {"VPIDR_EL2", SysRegEnc{3, 4, 0, 0, 0}, EL2, false},

	MIDREL1:  {"MIDR_EL1", SysRegEnc{3, 0, 0, 0, 0}, EL1, true},
	MPIDREL1: {"MPIDR_EL1", SysRegEnc{3, 0, 0, 0, 5}, EL1, true},
}

var sysRegByEnc = buildSysRegByEnc()

func buildSysRegByEnc() map[uint32]SysReg {
	m := make(map[uint32]SysReg, int(sysRegCount))
	for r := SysReg(1); r < sysRegCount; r++ {
		m[sysRegTable[r].enc.Key()] = r
	}
	return m
}

// Valid reports whether r names a modelled register.
func (r SysReg) Valid() bool { return r > SysRegInvalid && r < sysRegCount }

func (r SysReg) String() string {
	if !r.Valid() {
		return fmt.Sprintf("SysReg(%d)", uint16(r))
	}
	return sysRegTable[r].name
}

// Enc returns the register's MSR/MRS encoding.
func (r SysReg) Enc() SysRegEnc {
	if !r.Valid() {
		return SysRegEnc{}
	}
	return sysRegTable[r].enc
}

// MinEL returns the lowest exception level that may access the register
// without trapping (ignoring hypervisor-configured traps).
func (r SysReg) MinEL() EL {
	if !r.Valid() {
		return EL2
	}
	return sysRegTable[r].el
}

// ReadOnly reports whether writes to the register are architecturally
// undefined.
func (r SysReg) ReadOnly() bool {
	return r.Valid() && sysRegTable[r].ro
}

// LookupSysReg resolves an MSR/MRS encoding to a modelled register.
// The boolean is false for encodings outside the modelled set.
func LookupSysReg(enc SysRegEnc) (SysReg, bool) {
	r, ok := sysRegByEnc[enc.Key()]
	return r, ok
}

// Stage1Regs lists the registers controlling stage-1 translation; writes to
// (reads from) these are trapped to EL2 when HCR_EL2.TVM (TRVM) is set.
// This is the register set LightZone locks for PAN-mode processes (§5.1.2).
var Stage1Regs = []SysReg{
	SCTLREL1, TTBR0EL1, TTBR1EL1, TCREL1, MAIREL1, AMAIREL1,
	CONTEXTIDREL1, AFSR0EL1, AFSR1EL1, ESREL1, FAREL1,
}

// IsStage1Reg reports whether r participates in stage-1 translation control.
func IsStage1Reg(r SysReg) bool {
	for _, s := range Stage1Regs {
		if s == r {
			return true
		}
	}
	return false
}

// GuestContextRegs is the EL1 register set a conventional hypervisor
// context-switches on every world switch between two VMs (or between a VM
// and a VHE host). Its size is what makes KVM hypercalls expensive on
// Carmel (Table 4: 28,580 cycles).
var GuestContextRegs = []SysReg{
	SCTLREL1, TTBR0EL1, TTBR1EL1, TCREL1, MAIREL1, AMAIREL1,
	CONTEXTIDREL1, VBAREL1, ESREL1, ELREL1, SPSREL1, FAREL1,
	AFSR0EL1, AFSR1EL1, PAREL1, CPACREL1, CNTKCTLEL1, CSSELREL1,
	SPEL0, SPEL1, TPIDREL0, TPIDRROEL0, TPIDREL1, MDSCREL1, FPCR, FPSR,
}

// LightZonePartialRegs is the reduced EL1 register set the Lowvisor
// context-switches when transferring between a guest kernel and its guest
// LightZone process (§5.2.2): the two share timers, counters, FP state and
// "a large portion of system registers", so only the registers that differ
// between the guest kernel's and the LightZone process's virtual
// environments are switched.
var LightZonePartialRegs = []SysReg{
	SCTLREL1, TTBR0EL1, TTBR1EL1, TCREL1, MAIREL1, VBAREL1, ESREL1,
	ELREL1, SPSREL1, FAREL1, CONTEXTIDREL1, CPACREL1, SPEL0, SPEL1,
	TPIDREL0, TPIDREL1,
}
