package arm64

import "fmt"

// Fixed instruction words.
const (
	WordNOP   uint32 = 0xD503201F
	WordISB   uint32 = 0xD5033FDF
	WordDSBSY uint32 = 0xD5033F9F
	WordDMBSY uint32 = 0xD5033FBF
	WordERET  uint32 = 0xD69F03E0
)

// InsnBytes is the fixed A64 instruction width.
const InsnBytes = 4

func reg(r uint8) uint32 { return uint32(r & 0x1F) }

// MOVZ encodes MOVZ Xd, #imm16, LSL #(hw*16).
func MOVZ(rd uint8, imm16 uint16, hw uint8) uint32 {
	return 0xD2800000 | uint32(hw&3)<<21 | uint32(imm16)<<5 | reg(rd)
}

// MOVK encodes MOVK Xd, #imm16, LSL #(hw*16).
func MOVK(rd uint8, imm16 uint16, hw uint8) uint32 {
	return 0xF2800000 | uint32(hw&3)<<21 | uint32(imm16)<<5 | reg(rd)
}

// MOVN encodes MOVN Xd, #imm16, LSL #(hw*16).
func MOVN(rd uint8, imm16 uint16, hw uint8) uint32 {
	return 0x92800000 | uint32(hw&3)<<21 | uint32(imm16)<<5 | reg(rd)
}

// MovImm64 returns the MOVZ/MOVK sequence materializing a 64-bit constant.
func MovImm64(rd uint8, v uint64) []uint32 {
	out := []uint32{MOVZ(rd, uint16(v), 0)}
	for hw := uint8(1); hw < 4; hw++ {
		if part := uint16(v >> (16 * hw)); part != 0 {
			out = append(out, MOVK(rd, part, hw))
		}
	}
	return out
}

// ADDImm encodes ADD Xd, Xn, #imm12 (optionally shifted left by 12).
func ADDImm(rd, rn uint8, imm12 uint16, sh bool) uint32 {
	w := 0x91000000 | uint32(imm12&0xFFF)<<10 | reg(rn)<<5 | reg(rd)
	if sh {
		w |= 1 << 22
	}
	return w
}

// SUBImm encodes SUB Xd, Xn, #imm12.
func SUBImm(rd, rn uint8, imm12 uint16, sh bool) uint32 {
	w := 0xD1000000 | uint32(imm12&0xFFF)<<10 | reg(rn)<<5 | reg(rd)
	if sh {
		w |= 1 << 22
	}
	return w
}

// SUBSImm encodes SUBS Xd, Xn, #imm12 (CMP when rd == XZR).
func SUBSImm(rd, rn uint8, imm12 uint16) uint32 {
	return 0xF1000000 | uint32(imm12&0xFFF)<<10 | reg(rn)<<5 | reg(rd)
}

// CMPImm encodes CMP Xn, #imm12.
func CMPImm(rn uint8, imm12 uint16) uint32 { return SUBSImm(XZR, rn, imm12) }

// ADR encodes ADR Xd, <label> with a byte offset in [-1MB, 1MB).
func ADR(rd uint8, off int64) uint32 {
	u := uint32(off) & 0x1FFFFF
	return 0x10000000 | (u&3)<<29 | (u>>2)<<5 | reg(rd)
}

// ADDReg encodes ADD Xd, Xn, Xm.
func ADDReg(rd, rn, rm uint8) uint32 {
	return 0x8B000000 | reg(rm)<<16 | reg(rn)<<5 | reg(rd)
}

// ADDShifted encodes ADD Xd, Xn, Xm, LSL #amt.
func ADDShifted(rd, rn, rm, amt uint8) uint32 {
	return ADDReg(rd, rn, rm) | uint32(amt&0x3F)<<10
}

// SUBReg encodes SUB Xd, Xn, Xm.
func SUBReg(rd, rn, rm uint8) uint32 {
	return 0xCB000000 | reg(rm)<<16 | reg(rn)<<5 | reg(rd)
}

// SUBSReg encodes SUBS Xd, Xn, Xm (CMP register when rd == XZR).
func SUBSReg(rd, rn, rm uint8) uint32 {
	return 0xEB000000 | reg(rm)<<16 | reg(rn)<<5 | reg(rd)
}

// CMPReg encodes CMP Xn, Xm.
func CMPReg(rn, rm uint8) uint32 { return SUBSReg(XZR, rn, rm) }

// ANDReg encodes AND Xd, Xn, Xm.
func ANDReg(rd, rn, rm uint8) uint32 {
	return 0x8A000000 | reg(rm)<<16 | reg(rn)<<5 | reg(rd)
}

// ORRReg encodes ORR Xd, Xn, Xm (MOV Xd, Xm when rn == XZR).
func ORRReg(rd, rn, rm uint8) uint32 {
	return 0xAA000000 | reg(rm)<<16 | reg(rn)<<5 | reg(rd)
}

// MOVReg encodes MOV Xd, Xm as ORR Xd, XZR, Xm.
func MOVReg(rd, rm uint8) uint32 { return ORRReg(rd, XZR, rm) }

// EORReg encodes EOR Xd, Xn, Xm.
func EORReg(rd, rn, rm uint8) uint32 {
	return 0xCA000000 | reg(rm)<<16 | reg(rn)<<5 | reg(rd)
}

// ORRShifted encodes ORR Xd, Xn, Xm, LSL #amt.
func ORRShifted(rd, rn, rm, amt uint8) uint32 {
	return ORRReg(rd, rn, rm) | uint32(amt&0x3F)<<10
}

// UBFM encodes UBFM Xd, Xn, #immr, #imms (64-bit): the unsigned bitfield
// move underlying LSL/LSR by immediate.
func UBFM(rd, rn, immr, imms uint8) uint32 {
	return 0xD3400000 | uint32(immr&0x3F)<<16 | uint32(imms&0x3F)<<10 | reg(rn)<<5 | reg(rd)
}

// LSLImm encodes LSL Xd, Xn, #shift as UBFM.
func LSLImm(rd, rn, shift uint8) uint32 {
	shift &= 63
	return UBFM(rd, rn, 64-shift, 63-shift)
}

// LSRImm encodes LSR Xd, Xn, #shift as UBFM.
func LSRImm(rd, rn, shift uint8) uint32 {
	return UBFM(rd, rn, shift&63, 63)
}

// LSLV encodes LSLV Xd, Xn, Xm.
func LSLV(rd, rn, rm uint8) uint32 {
	return 0x9AC02000 | reg(rm)<<16 | reg(rn)<<5 | reg(rd)
}

// LSRV encodes LSRV Xd, Xn, Xm.
func LSRV(rd, rn, rm uint8) uint32 {
	return 0x9AC02400 | reg(rm)<<16 | reg(rn)<<5 | reg(rd)
}

// UDIV encodes UDIV Xd, Xn, Xm.
func UDIV(rd, rn, rm uint8) uint32 {
	return 0x9AC00800 | reg(rm)<<16 | reg(rn)<<5 | reg(rd)
}

// MADD encodes MADD Xd, Xn, Xm, Xa (MUL when ra == XZR).
func MADD(rd, rn, rm, ra uint8) uint32 {
	return 0x9B000000 | reg(rm)<<16 | reg(ra)<<10 | reg(rn)<<5 | reg(rd)
}

// MUL encodes MUL Xd, Xn, Xm.
func MUL(rd, rn, rm uint8) uint32 { return MADD(rd, rn, rm, XZR) }

// B encodes an unconditional branch with a byte offset.
func B(off int64) uint32 { return 0x14000000 | uint32(off>>2)&0x03FFFFFF }

// BL encodes a branch-with-link with a byte offset.
func BL(off int64) uint32 { return 0x94000000 | uint32(off>>2)&0x03FFFFFF }

// BCond encodes B.<cond> with a byte offset.
func BCond(cond uint8, off int64) uint32 {
	return 0x54000000 | (uint32(off>>2)&0x7FFFF)<<5 | uint32(cond&0xF)
}

// CBZ encodes CBZ Xt, <label>.
func CBZ(rt uint8, off int64) uint32 {
	return 0xB4000000 | (uint32(off>>2)&0x7FFFF)<<5 | reg(rt)
}

// CBNZ encodes CBNZ Xt, <label>.
func CBNZ(rt uint8, off int64) uint32 {
	return 0xB5000000 | (uint32(off>>2)&0x7FFFF)<<5 | reg(rt)
}

// BR encodes BR Xn.
func BR(rn uint8) uint32 { return 0xD61F0000 | reg(rn)<<5 }

// BLR encodes BLR Xn.
func BLR(rn uint8) uint32 { return 0xD63F0000 | reg(rn)<<5 }

// RET encodes RET Xn (conventionally X30).
func RET(rn uint8) uint32 { return 0xD65F0000 | reg(rn)<<5 }

// LDRImm encodes LDR Xt, [Xn, #off] with off a multiple of the access size.
// size is log2 of the access width in bytes (3 = 64-bit, 2 = 32-bit, 0 = byte).
func LDRImm(rt, rn uint8, off uint16, size uint8) uint32 {
	imm12 := uint32(off) >> size
	return uint32(size&3)<<30 | 0x39400000 | (imm12&0xFFF)<<10 | reg(rn)<<5 | reg(rt)
}

// STRImm encodes STR Xt, [Xn, #off].
func STRImm(rt, rn uint8, off uint16, size uint8) uint32 {
	imm12 := uint32(off) >> size
	return uint32(size&3)<<30 | 0x39000000 | (imm12&0xFFF)<<10 | reg(rn)<<5 | reg(rt)
}

// LDUR encodes LDUR Xt, [Xn, #simm9] (unscaled).
func LDUR(rt, rn uint8, simm9 int16, size uint8) uint32 {
	return uint32(size&3)<<30 | 0x38400000 | (uint32(simm9)&0x1FF)<<12 | reg(rn)<<5 | reg(rt)
}

// STUR encodes STUR Xt, [Xn, #simm9] (unscaled).
func STUR(rt, rn uint8, simm9 int16, size uint8) uint32 {
	return uint32(size&3)<<30 | 0x38000000 | (uint32(simm9)&0x1FF)<<12 | reg(rn)<<5 | reg(rt)
}

// LDTR encodes the unprivileged load LDTR Xt, [Xn, #simm9]. At EL1 it
// performs the access with EL0 permissions, ignoring PAN — which is why the
// paper's sanitizer forbids it for PAN-isolated processes (Table 3).
func LDTR(rt, rn uint8, simm9 int16, size uint8) uint32 {
	return uint32(size&3)<<30 | 0x38400800 | (uint32(simm9)&0x1FF)<<12 | reg(rn)<<5 | reg(rt)
}

// STTR encodes the unprivileged store STTR Xt, [Xn, #simm9].
func STTR(rt, rn uint8, simm9 int16, size uint8) uint32 {
	return uint32(size&3)<<30 | 0x38000800 | (uint32(simm9)&0x1FF)<<12 | reg(rn)<<5 | reg(rt)
}

// LDP encodes LDP Xt, Xt2, [Xn, #off] (64-bit signed offset, off a
// multiple of 8 in [-512, 504]).
func LDP(rt, rt2, rn uint8, off int16) uint32 {
	imm7 := uint32(off/8) & 0x7F
	return 0xA9400000 | imm7<<15 | reg(rt2)<<10 | reg(rn)<<5 | reg(rt)
}

// STP encodes STP Xt, Xt2, [Xn, #off].
func STP(rt, rt2, rn uint8, off int16) uint32 {
	imm7 := uint32(off/8) & 0x7F
	return 0xA9000000 | imm7<<15 | reg(rt2)<<10 | reg(rn)<<5 | reg(rt)
}

// LDRReg encodes LDR Xt, [Xn, Xm] (register offset, LSL #0).
func LDRReg(rt, rn, rm uint8, size uint8) uint32 {
	return uint32(size&3)<<30 | 0x38606800 | reg(rm)<<16 | reg(rn)<<5 | reg(rt)
}

// STRReg encodes STR Xt, [Xn, Xm] (register offset, LSL #0).
func STRReg(rt, rn, rm uint8, size uint8) uint32 {
	return uint32(size&3)<<30 | 0x38206800 | reg(rm)<<16 | reg(rn)<<5 | reg(rt)
}

// CSEL encodes CSEL Xd, Xn, Xm, <cond>.
func CSEL(rd, rn, rm, cond uint8) uint32 {
	return 0x9A800000 | reg(rm)<<16 | uint32(cond&0xF)<<12 | reg(rn)<<5 | reg(rd)
}

// CSINC encodes CSINC Xd, Xn, Xm, <cond> (CSET when rn == rm == XZR with
// the inverted condition).
func CSINC(rd, rn, rm, cond uint8) uint32 {
	return 0x9A800400 | reg(rm)<<16 | uint32(cond&0xF)<<12 | reg(rn)<<5 | reg(rd)
}

// SVC encodes SVC #imm16 (supervisor call).
func SVC(imm16 uint16) uint32 { return 0xD4000001 | uint32(imm16)<<5 }

// HVC encodes HVC #imm16 (hypervisor call).
func HVC(imm16 uint16) uint32 { return 0xD4000002 | uint32(imm16)<<5 }

// SMC encodes SMC #imm16 (secure monitor call; always sensitive).
func SMC(imm16 uint16) uint32 { return 0xD4000003 | uint32(imm16)<<5 }

// MSR encodes MSR <sysreg>, Xt.
func MSR(r SysReg, rt uint8) uint32 {
	e := r.Enc()
	return sysWord(0, e) | reg(rt)
}

// MRS encodes MRS Xt, <sysreg>.
func MRS(rt uint8, r SysReg) uint32 {
	e := r.Enc()
	return sysWord(1, e) | reg(rt)
}

// PSTATE field op1/op2 selectors for MSR (immediate).
const (
	PStateFieldPANOp1 = 0
	PStateFieldPANOp2 = 4 // paper Table 3: op2 == PAN
	PStateFieldSPSel1 = 0
	PStateFieldSPSel2 = 5
	PStateFieldUAOOp1 = 0
	PStateFieldUAOOp2 = 3
)

// MSRPan encodes MSR PAN, #imm — the PAN-based domain switch instruction
// (set_pan in the paper's Listing 1).
func MSRPan(imm uint8) uint32 {
	e := SysRegEnc{Op0: 0, Op1: PStateFieldPANOp1, CRn: 4, CRm: imm & 0xF, Op2: PStateFieldPANOp2}
	return sysWord(0, e) | reg(XZR)
}

// MSRPStateImm encodes a generic MSR <pstatefield>, #imm.
func MSRPStateImm(op1, op2, imm uint8) uint32 {
	e := SysRegEnc{Op0: 0, Op1: op1 & 7, CRn: 4, CRm: imm & 0xF, Op2: op2 & 7}
	return sysWord(0, e) | reg(XZR)
}

// SYSInsn encodes a SYS instruction (op0 == 0b01): the AT/DC/IC/TLBI space.
func SYSInsn(op1, crn, crm, op2, rt uint8) uint32 {
	e := SysRegEnc{Op0: 1, Op1: op1, CRn: crn, CRm: crm, Op2: op2}
	return sysWord(0, e) | reg(rt)
}

// TLBIVMALLE1 encodes TLBI VMALLE1 (CRn=8), a sensitive instruction.
func TLBIVMALLE1() uint32 { return SYSInsn(0, 8, 7, 0, XZR) }

// ATS1E1R encodes AT S1E1R, Xt (CRn=7): address translation, the op0=0b01
// CRn=7 row of Table 3.
func ATS1E1R(rt uint8) uint32 { return SYSInsn(0, 7, 8, 0, rt) }

// sysWord builds a word in the system-instruction space. l is the L bit
// (bit 21): 1 for MRS/SYSL.
func sysWord(l uint32, e SysRegEnc) uint32 {
	return 0xD5000000 | (l&1)<<21 | uint32(e.Op0&3)<<19 | uint32(e.Op1&7)<<16 |
		uint32(e.CRn&0xF)<<12 | uint32(e.CRm&0xF)<<8 | uint32(e.Op2&7)<<5
}

// SysEncOf extracts the (op0,op1,CRn,CRm,op2) fields from a word in the
// system-instruction space.
func SysEncOf(word uint32) SysRegEnc {
	return SysRegEnc{
		Op0: uint8(word >> 19 & 3),
		Op1: uint8(word >> 16 & 7),
		CRn: uint8(word >> 12 & 0xF),
		CRm: uint8(word >> 8 & 0xF),
		Op2: uint8(word >> 5 & 7),
	}
}

func checkBranchRange(off int64, bits uint) error {
	limit := int64(1) << (bits + 1) // offsets are in words, encoded /4
	if off < -limit || off >= limit || off&3 != 0 {
		return fmt.Errorf("branch offset %d out of range for %d-bit field", off, bits)
	}
	return nil
}
