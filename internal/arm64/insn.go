package arm64

// Op identifies a decoded A64 instruction form.
type Op uint8

// Decoded instruction forms. The subset covers what LightZone's call gates,
// trap stubs, sanitizer, penetration-test attack programs and demo
// applications need.
const (
	OpUnknown Op = iota

	// Data processing, immediate.
	OpMOVZ
	OpMOVK
	OpMOVN
	OpAddImm
	OpSubImm
	OpADR

	// Data processing, register.
	OpAddReg
	OpSubReg
	OpAndReg
	OpOrrReg
	OpEorReg
	OpLSLV
	OpLSRV
	OpMAdd
	OpUDiv

	// Branches.
	OpB
	OpBL
	OpBCond
	OpCBZ
	OpCBNZ
	OpBR
	OpBLR
	OpRET

	// Loads and stores.
	OpLdrImm
	OpStrImm
	OpLdur
	OpStur
	OpLdtr // unprivileged load (sensitive, paper Table 3)
	OpSttr // unprivileged store (sensitive, paper Table 3)
	OpLdp  // load pair (64-bit, signed offset)
	OpStp  // store pair
	OpLdrReg
	OpStrReg

	// Conditional select.
	OpCSel
	OpCSInc

	// Bitfield.
	OpUBFM

	// Exception generation and return.
	OpSVC
	OpHVC
	OpSMC
	OpERET

	// Hints and barriers.
	OpNOP
	OpISB
	OpDSB
	OpDMB

	// System-register and system instructions.
	OpMSRReg // MSR <sysreg>, Xt
	OpMRS    // MRS Xt, <sysreg>
	OpMSRImm // MSR <pstatefield>, #imm (op0=0b00, CRn=0b0100)
	OpSYS    // SYS (op0=0b01): cache maintenance, AT, TLBI space
	OpSYSL   // SYSL

	// NumOps bounds the Op space; Op doubles as the dense index into the
	// interpreter's per-form handler table, so a decoded Insn carries its
	// dispatch slot and never needs re-classification.
	NumOps
)

var opNames = map[Op]string{
	OpUnknown: "unknown", OpMOVZ: "movz", OpMOVK: "movk", OpMOVN: "movn",
	OpAddImm: "add(imm)", OpSubImm: "sub(imm)", OpADR: "adr",
	OpAddReg: "add(reg)", OpSubReg: "sub(reg)", OpAndReg: "and",
	OpOrrReg: "orr", OpEorReg: "eor", OpLSLV: "lslv", OpLSRV: "lsrv",
	OpMAdd: "madd", OpUDiv: "udiv",
	OpB: "b", OpBL: "bl", OpBCond: "b.cond", OpCBZ: "cbz", OpCBNZ: "cbnz",
	OpBR: "br", OpBLR: "blr", OpRET: "ret",
	OpLdrImm: "ldr", OpStrImm: "str", OpLdur: "ldur", OpStur: "stur",
	OpLdtr: "ldtr", OpSttr: "sttr", OpLdp: "ldp", OpStp: "stp",
	OpLdrReg: "ldr(reg)", OpStrReg: "str(reg)",
	OpCSel: "csel", OpCSInc: "csinc", OpUBFM: "ubfm",
	OpSVC: "svc", OpHVC: "hvc", OpSMC: "smc", OpERET: "eret",
	OpNOP: "nop", OpISB: "isb", OpDSB: "dsb", OpDMB: "dmb",
	OpMSRReg: "msr", OpMRS: "mrs", OpMSRImm: "msr(imm)",
	OpSYS: "sys", OpSYSL: "sysl",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return "op?"
}

// IsBranch reports whether the op redirects control flow.
func (o Op) IsBranch() bool {
	switch o {
	case OpB, OpBL, OpBCond, OpCBZ, OpCBNZ, OpBR, OpBLR, OpRET:
		return true
	}
	return false
}

// Terminates reports whether the op ends a straight-line decoded block:
// control flow may leave the fall-through path (branches, exception
// generation and return) or architectural state affecting fetch may change
// (system-register writes, TLBI/AT, undecodable words). The decoded-block
// cache never extends a block past a terminator.
func (o Op) Terminates() bool {
	switch o {
	case OpB, OpBL, OpBCond, OpCBZ, OpCBNZ, OpBR, OpBLR, OpRET,
		OpSVC, OpHVC, OpSMC, OpERET,
		OpMSRReg, OpMRS, OpMSRImm, OpSYS, OpSYSL,
		OpUnknown:
		return true
	}
	return false
}

// IsSystemSpace reports whether the instruction word lives in the A64
// system-instruction encoding space (bits 31:22 == 0b1101010100), the space
// the paper's Table 3 sanitizer rules pattern-match.
func IsSystemSpace(word uint32) bool {
	return word>>22 == 0b1101010100
}

// Condition codes for B.cond.
const (
	CondEQ = 0x0
	CondNE = 0x1
	CondCS = 0x2
	CondCC = 0x3
	CondMI = 0x4
	CondPL = 0x5
	CondVS = 0x6
	CondVC = 0x7
	CondHI = 0x8
	CondLS = 0x9
	CondGE = 0xA
	CondLT = 0xB
	CondGT = 0xC
	CondLE = 0xD
	CondAL = 0xE
)

// XZR is the zero-register number; depending on context, register 31 is the
// zero register or the stack pointer. The subset uses it as XZR everywhere
// except load/store base registers, where it selects SP (as in real A64).
const XZR = 31

// Insn is a decoded instruction.
type Insn struct {
	Op       Op
	Rd       uint8
	Rn       uint8
	Rm       uint8
	Ra       uint8
	Rt       uint8
	Rt2      uint8
	Imm      int64 // immediate value or branch/page offset in bytes
	Cond     uint8
	Size     uint8 // load/store access size, log2 bytes (0..3)
	ShiftAmt uint8
	SetFlags bool
	SF       bool // 64-bit operation
	Sys      SysRegEnc
	Raw      uint32
}
