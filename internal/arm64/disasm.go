package arm64

import (
	"fmt"
	"strings"
)

var condNames = [16]string{
	"eq", "ne", "cs", "cc", "mi", "pl", "vs", "vc",
	"hi", "ls", "ge", "lt", "gt", "le", "al", "nv",
}

func regName(r uint8) string {
	if r == XZR {
		return "xzr"
	}
	return fmt.Sprintf("x%d", r)
}

func regOrSP(r uint8) string {
	if r == 31 {
		return "sp"
	}
	return fmt.Sprintf("x%d", r)
}

func sizeSuffix(size uint8) string {
	switch size {
	case 0:
		return "b"
	case 1:
		return "h"
	case 2:
		return "w" // 32-bit register form, rendered as a suffix here
	default:
		return ""
	}
}

// Disassemble renders an instruction word as assembly-like text. It is a
// diagnostic aid (violation messages, trace dumps), not a round-trippable
// syntax.
func Disassemble(word uint32) string {
	in := Decode(word)
	switch in.Op {
	case OpNOP, OpISB, OpERET:
		return in.Op.String()
	case OpDSB:
		return "dsb sy"
	case OpDMB:
		return "dmb sy"
	case OpMOVZ, OpMOVN, OpMOVK:
		return fmt.Sprintf("%s %s, #%#x, lsl #%d", in.Op, regName(in.Rd), in.Imm, in.ShiftAmt)
	case OpADR:
		return fmt.Sprintf("adr %s, .%+d", regName(in.Rd), in.Imm)
	case OpAddImm, OpSubImm:
		op := "add"
		if in.Op == OpSubImm {
			op = "sub"
		}
		if in.SetFlags {
			if in.Rd == XZR {
				return fmt.Sprintf("cmp %s, #%d", regName(in.Rn), in.Imm)
			}
			op += "s"
		}
		return fmt.Sprintf("%s %s, %s, #%d", op, regName(in.Rd), regOrSP(in.Rn), in.Imm)
	case OpAddReg, OpSubReg:
		op := "add"
		if in.Op == OpSubReg {
			op = "sub"
		}
		if in.SetFlags {
			if in.Rd == XZR {
				return fmt.Sprintf("cmp %s, %s", regName(in.Rn), regName(in.Rm))
			}
			op += "s"
		}
		if in.ShiftAmt != 0 {
			return fmt.Sprintf("%s %s, %s, %s, lsl #%d", op, regName(in.Rd), regName(in.Rn), regName(in.Rm), in.ShiftAmt)
		}
		return fmt.Sprintf("%s %s, %s, %s", op, regName(in.Rd), regName(in.Rn), regName(in.Rm))
	case OpAndReg, OpOrrReg, OpEorReg:
		op := map[Op]string{OpAndReg: "and", OpOrrReg: "orr", OpEorReg: "eor"}[in.Op]
		if in.Op == OpOrrReg && in.Rn == XZR && in.ShiftAmt == 0 {
			return fmt.Sprintf("mov %s, %s", regName(in.Rd), regName(in.Rm))
		}
		if in.ShiftAmt != 0 {
			return fmt.Sprintf("%s %s, %s, %s, lsl #%d", op, regName(in.Rd), regName(in.Rn), regName(in.Rm), in.ShiftAmt)
		}
		return fmt.Sprintf("%s %s, %s, %s", op, regName(in.Rd), regName(in.Rn), regName(in.Rm))
	case OpLSLV, OpLSRV, OpUDiv:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, regName(in.Rd), regName(in.Rn), regName(in.Rm))
	case OpUBFM:
		// Render the standard aliases: immr/imms carry the field positions
		// (decode puts immr in ShiftAmt and imms in Imm).
		immr, imms := uint64(in.ShiftAmt), uint64(in.Imm)
		switch {
		case imms == 63:
			return fmt.Sprintf("lsr %s, %s, #%d", regName(in.Rd), regName(in.Rn), immr)
		case immr == (imms+1)&63:
			return fmt.Sprintf("lsl %s, %s, #%d", regName(in.Rd), regName(in.Rn), 63-imms)
		case imms >= immr:
			return fmt.Sprintf("ubfx %s, %s, #%d, #%d", regName(in.Rd), regName(in.Rn), immr, imms-immr+1)
		}
		return fmt.Sprintf("ubfm %s, %s, #%d, #%d", regName(in.Rd), regName(in.Rn), immr, imms)
	case OpMAdd:
		if in.Ra == XZR {
			return fmt.Sprintf("mul %s, %s, %s", regName(in.Rd), regName(in.Rn), regName(in.Rm))
		}
		return fmt.Sprintf("madd %s, %s, %s, %s", regName(in.Rd), regName(in.Rn), regName(in.Rm), regName(in.Ra))
	case OpCSel, OpCSInc:
		return fmt.Sprintf("%s %s, %s, %s, %s", in.Op, regName(in.Rd), regName(in.Rn), regName(in.Rm), condNames[in.Cond])
	case OpB, OpBL:
		return fmt.Sprintf("%s .%+d", in.Op, in.Imm)
	case OpBCond:
		return fmt.Sprintf("b.%s .%+d", condNames[in.Cond], in.Imm)
	case OpCBZ, OpCBNZ:
		return fmt.Sprintf("%s %s, .%+d", in.Op, regName(in.Rt), in.Imm)
	case OpBR, OpBLR, OpRET:
		return fmt.Sprintf("%s %s", in.Op, regName(in.Rn))
	case OpLdrImm, OpStrImm:
		op := "ldr"
		if in.Op == OpStrImm {
			op = "str"
		}
		if s := sizeSuffix(in.Size); s != "" && in.Size < 2 {
			op += s
		}
		return fmt.Sprintf("%s %s, [%s, #%d]", op, regName(in.Rt), regOrSP(in.Rn), in.Imm)
	case OpLdur, OpStur, OpLdtr, OpSttr:
		return fmt.Sprintf("%s %s, [%s, #%d]", in.Op, regName(in.Rt), regOrSP(in.Rn), in.Imm)
	case OpLdrReg, OpStrReg:
		op := "ldr"
		if in.Op == OpStrReg {
			op = "str"
		}
		return fmt.Sprintf("%s %s, [%s, %s]", op, regName(in.Rt), regOrSP(in.Rn), regName(in.Rm))
	case OpLdp, OpStp:
		return fmt.Sprintf("%s %s, %s, [%s, #%d]", in.Op, regName(in.Rt), regName(in.Rt2), regOrSP(in.Rn), in.Imm)
	case OpSVC, OpHVC, OpSMC:
		return fmt.Sprintf("%s #%#x", in.Op, in.Imm)
	case OpMSRImm:
		field := fmt.Sprintf("s0_%d_c4_c%d_%d", in.Sys.Op1, in.Sys.CRm, in.Sys.Op2)
		if in.Sys.Op1 == PStateFieldPANOp1 && in.Sys.Op2 == PStateFieldPANOp2 {
			field = "pan"
		}
		return fmt.Sprintf("msr %s, #%d", field, in.Sys.CRm&1)
	case OpMSRReg, OpMRS:
		name := sysEncName(in.Sys)
		if in.Op == OpMRS {
			return fmt.Sprintf("mrs %s, %s", regName(in.Rt), name)
		}
		return fmt.Sprintf("msr %s, %s", name, regName(in.Rt))
	case OpSYS, OpSYSL:
		return fmt.Sprintf("%s #%d, c%d, c%d, #%d, %s", in.Op, in.Sys.Op1, in.Sys.CRn, in.Sys.CRm, in.Sys.Op2, regName(in.Rt))
	default:
		return fmt.Sprintf(".inst %#08x", word)
	}
}

func sysEncName(enc SysRegEnc) string {
	if r, ok := LookupSysReg(enc); ok {
		return strings.ToLower(r.String())
	}
	return fmt.Sprintf("s%d_%d_c%d_c%d_%d", enc.Op0, enc.Op1, enc.CRn, enc.CRm, enc.Op2)
}

// DisassembleAll renders a code block, one instruction per line, with word
// offsets.
func DisassembleAll(words []uint32) string {
	var b strings.Builder
	for i, w := range words {
		fmt.Fprintf(&b, "%4x: %08x  %s\n", i*InsnBytes, w, Disassemble(w))
	}
	return b.String()
}
