// Package arm64 defines the simulated ARMv8-A (A64) architecture substrate
// used throughout the LightZone reproduction: exception levels, PSTATE
// fields, system-register identifiers with their MSR/MRS encodings,
// a compact but faithfully encoded subset of the A64 instruction set
// (builder and decoder), and per-platform cycle cost profiles calibrated
// against the paper's Table 4 measurements on NVIDIA Carmel and Amlogic
// Cortex-A55 SoCs.
//
// The instruction encodings follow the real ARMv8 bit layouts wherever the
// paper's mechanisms depend on them. In particular, the system-instruction
// space (bits 31:22 == 0b1101010100) is encoded and decoded with full
// op0/op1/CRn/CRm/op2 fidelity because the sensitive-instruction sanitizer
// of LightZone (paper Table 3) is specified as bit-pattern rules over that
// space.
package arm64
