package arm64

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestDisassembleKnownForms(t *testing.T) {
	tests := map[uint32]string{
		WordNOP:                "nop",
		WordERET:               "eret",
		WordISB:                "isb",
		WordDSBSY:              "dsb sy",
		MOVZ(1, 0x42, 1):       "movz x1, #0x42, lsl #16",
		ADDImm(1, 2, 7, false): "add x1, x2, #7",
		CMPImm(3, 9):           "cmp x3, #9",
		CMPReg(3, 4):           "cmp x3, x4",
		MOVReg(5, 6):           "mov x5, x6",
		ADDShifted(1, 2, 3, 4): "add x1, x2, x3, lsl #4",
		MUL(1, 2, 3):           "mul x1, x2, x3",
		CSEL(1, 2, 3, CondEQ):  "csel x1, x2, x3, eq",
		B(16):                  "b .+16",
		BCond(CondNE, -8):      "b.ne .-8",
		CBZ(7, 12):             "cbz x7, .+12",
		RET(30):                "ret x30",
		LDRImm(1, 2, 16, 3):    "ldr x1, [x2, #16]",
		LDRImm(1, 2, 3, 0):     "ldrb x1, [x2, #3]",
		STRImm(1, 31, 8, 3):    "str x1, [sp, #8]",
		LDTR(1, 2, 4, 3):       "ldtr x1, [x2, #4]",
		LDP(1, 2, 3, 16):       "ldp x1, x2, [x3, #16]",
		LDRReg(1, 2, 3, 3):     "ldr x1, [x2, x3]",
		SVC(0x42):              "svc #0x42",
		HVC(1):                 "hvc #0x1",
		MSRPan(1):              "msr pan, #1",
		MSR(TTBR0EL1, 5):       "msr ttbr0_el1, x5",
		MRS(9, ESREL1):         "mrs x9, esr_el1",
		ADR(2, -4):             "adr x2, .-4",
	}
	for word, want := range tests {
		if got := Disassemble(word); got != want {
			t.Errorf("Disassemble(%#08x) = %q, want %q", word, got, want)
		}
	}
}

func TestDisassembleUnknown(t *testing.T) {
	if got := Disassemble(0); !strings.HasPrefix(got, ".inst") {
		t.Errorf("unknown word = %q", got)
	}
}

// Property: Disassemble never panics and never returns an empty string.
func TestDisassembleTotal(t *testing.T) {
	f := func(word uint32) bool {
		return Disassemble(word) != ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}

func TestDisassembleAllGateCodeReadable(t *testing.T) {
	a := NewAsm()
	a.MovImm(16, 0xFFFF8000_00340000)
	a.Emit(LDRImm(17, 16, 8, 3))
	a.Emit(MSR(TTBR0EL1, 17))
	a.Emit(WordISB)
	a.Emit(RET(30))
	words, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	text := DisassembleAll(words)
	for _, want := range []string{"msr ttbr0_el1, x17", "isb", "ret x30"} {
		if !strings.Contains(text, want) {
			t.Errorf("listing missing %q:\n%s", want, text)
		}
	}
}
