package arm64

import (
	"math/rand"
	"strings"
	"testing"
)

// rtCase is one encoder form: gen draws random operands and returns the
// encoded word plus the Op it must decode to; re re-encodes the decoded
// instruction through the same encoder. The property is
// re(Decode(gen())) == gen() for every draw: decoding loses nothing the
// encoder can express, and disassembly renders every encodable word.
type rtCase struct {
	name string
	gen  func(r *rand.Rand) (uint32, Op)
	re   func(in Insn) uint32
}

func reg31(r *rand.Rand) uint8   { return uint8(r.Intn(32)) }
func imm16r(r *rand.Rand) uint16 { return uint16(r.Intn(1 << 16)) }

// branchOff draws a word-aligned byte offset fitting a bits-wide word field.
func branchOff(r *rand.Rand, bits uint) int64 {
	span := int64(1) << bits
	return (r.Int63n(2*span) - span) * 4
}

func roundTripCases() []rtCase {
	fixed := func(word uint32) func(*rand.Rand) (uint32, Op) {
		op := Decode(word).Op
		return func(*rand.Rand) (uint32, Op) { return word, op }
	}
	raw := func(in Insn) uint32 { return in.Raw }
	return []rtCase{
		{"nop", fixed(WordNOP), raw},
		{"isb", fixed(WordISB), raw},
		{"dsb", fixed(WordDSBSY), raw},
		{"dmb", fixed(WordDMBSY), raw},
		{"eret", fixed(WordERET), raw},
		{"movz", func(r *rand.Rand) (uint32, Op) {
			return MOVZ(reg31(r), imm16r(r), uint8(r.Intn(4))), OpMOVZ
		}, func(in Insn) uint32 { return MOVZ(in.Rd, uint16(in.Imm), in.ShiftAmt/16) }},
		{"movk", func(r *rand.Rand) (uint32, Op) {
			return MOVK(reg31(r), imm16r(r), uint8(r.Intn(4))), OpMOVK
		}, func(in Insn) uint32 { return MOVK(in.Rd, uint16(in.Imm), in.ShiftAmt/16) }},
		{"movn", func(r *rand.Rand) (uint32, Op) {
			return MOVN(reg31(r), imm16r(r), uint8(r.Intn(4))), OpMOVN
		}, func(in Insn) uint32 { return MOVN(in.Rd, uint16(in.Imm), in.ShiftAmt/16) }},
		{"add-imm", func(r *rand.Rand) (uint32, Op) {
			// A shifted zero re-encodes as the unshifted zero; draw non-zero.
			return ADDImm(reg31(r), reg31(r), uint16(1+r.Intn(0xFFF)), r.Intn(2) == 1), OpAddImm
		}, reAddSubImm},
		{"sub-imm", func(r *rand.Rand) (uint32, Op) {
			return SUBImm(reg31(r), reg31(r), uint16(1+r.Intn(0xFFF)), r.Intn(2) == 1), OpSubImm
		}, reAddSubImm},
		{"subs-imm", func(r *rand.Rand) (uint32, Op) {
			return SUBSImm(reg31(r), reg31(r), uint16(r.Intn(0x1000))), OpSubImm
		}, func(in Insn) uint32 { return SUBSImm(in.Rd, in.Rn, uint16(in.Imm)) }},
		{"cmp-imm", func(r *rand.Rand) (uint32, Op) {
			return CMPImm(reg31(r), uint16(r.Intn(0x1000))), OpSubImm
		}, func(in Insn) uint32 { return CMPImm(in.Rn, uint16(in.Imm)) }},
		{"adr", func(r *rand.Rand) (uint32, Op) {
			return ADR(reg31(r), r.Int63n(2<<20)-(1<<20)), OpADR
		}, func(in Insn) uint32 { return ADR(in.Rd, in.Imm) }},
		{"add-reg", func(r *rand.Rand) (uint32, Op) {
			return ADDReg(reg31(r), reg31(r), reg31(r)), OpAddReg
		}, func(in Insn) uint32 { return ADDShifted(in.Rd, in.Rn, in.Rm, in.ShiftAmt) }},
		{"add-shifted", func(r *rand.Rand) (uint32, Op) {
			return ADDShifted(reg31(r), reg31(r), reg31(r), uint8(r.Intn(64))), OpAddReg
		}, func(in Insn) uint32 { return ADDShifted(in.Rd, in.Rn, in.Rm, in.ShiftAmt) }},
		{"sub-reg", func(r *rand.Rand) (uint32, Op) {
			return SUBReg(reg31(r), reg31(r), reg31(r)), OpSubReg
		}, func(in Insn) uint32 { return SUBReg(in.Rd, in.Rn, in.Rm) }},
		{"subs-reg", func(r *rand.Rand) (uint32, Op) {
			return SUBSReg(reg31(r), reg31(r), reg31(r)), OpSubReg
		}, func(in Insn) uint32 { return SUBSReg(in.Rd, in.Rn, in.Rm) }},
		{"cmp-reg", func(r *rand.Rand) (uint32, Op) {
			return CMPReg(reg31(r), reg31(r)), OpSubReg
		}, func(in Insn) uint32 { return CMPReg(in.Rn, in.Rm) }},
		{"and-reg", func(r *rand.Rand) (uint32, Op) {
			return ANDReg(reg31(r), reg31(r), reg31(r)), OpAndReg
		}, func(in Insn) uint32 { return ANDReg(in.Rd, in.Rn, in.Rm) }},
		{"orr-reg", func(r *rand.Rand) (uint32, Op) {
			return ORRReg(reg31(r), reg31(r), reg31(r)), OpOrrReg
		}, func(in Insn) uint32 { return ORRShifted(in.Rd, in.Rn, in.Rm, in.ShiftAmt) }},
		{"orr-shifted", func(r *rand.Rand) (uint32, Op) {
			return ORRShifted(reg31(r), reg31(r), reg31(r), uint8(r.Intn(64))), OpOrrReg
		}, func(in Insn) uint32 { return ORRShifted(in.Rd, in.Rn, in.Rm, in.ShiftAmt) }},
		{"mov-reg", func(r *rand.Rand) (uint32, Op) {
			return MOVReg(reg31(r), reg31(r)), OpOrrReg
		}, func(in Insn) uint32 { return MOVReg(in.Rd, in.Rm) }},
		{"eor-reg", func(r *rand.Rand) (uint32, Op) {
			return EORReg(reg31(r), reg31(r), reg31(r)), OpEorReg
		}, func(in Insn) uint32 { return EORReg(in.Rd, in.Rn, in.Rm) }},
		{"ubfm", func(r *rand.Rand) (uint32, Op) {
			return UBFM(reg31(r), reg31(r), uint8(r.Intn(64)), uint8(r.Intn(64))), OpUBFM
		}, reUBFM},
		{"lsl-imm", func(r *rand.Rand) (uint32, Op) {
			return LSLImm(reg31(r), reg31(r), uint8(r.Intn(64))), OpUBFM
		}, reUBFM},
		{"lsr-imm", func(r *rand.Rand) (uint32, Op) {
			return LSRImm(reg31(r), reg31(r), uint8(r.Intn(64))), OpUBFM
		}, reUBFM},
		{"lslv", func(r *rand.Rand) (uint32, Op) {
			return LSLV(reg31(r), reg31(r), reg31(r)), OpLSLV
		}, func(in Insn) uint32 { return LSLV(in.Rd, in.Rn, in.Rm) }},
		{"lsrv", func(r *rand.Rand) (uint32, Op) {
			return LSRV(reg31(r), reg31(r), reg31(r)), OpLSRV
		}, func(in Insn) uint32 { return LSRV(in.Rd, in.Rn, in.Rm) }},
		{"udiv", func(r *rand.Rand) (uint32, Op) {
			return UDIV(reg31(r), reg31(r), reg31(r)), OpUDiv
		}, func(in Insn) uint32 { return UDIV(in.Rd, in.Rn, in.Rm) }},
		{"madd", func(r *rand.Rand) (uint32, Op) {
			return MADD(reg31(r), reg31(r), reg31(r), reg31(r)), OpMAdd
		}, func(in Insn) uint32 { return MADD(in.Rd, in.Rn, in.Rm, in.Ra) }},
		{"mul", func(r *rand.Rand) (uint32, Op) {
			return MUL(reg31(r), reg31(r), reg31(r)), OpMAdd
		}, func(in Insn) uint32 { return MADD(in.Rd, in.Rn, in.Rm, in.Ra) }},
		{"b", func(r *rand.Rand) (uint32, Op) {
			return B(branchOff(r, 24)), OpB
		}, func(in Insn) uint32 { return B(in.Imm) }},
		{"bl", func(r *rand.Rand) (uint32, Op) {
			return BL(branchOff(r, 24)), OpBL
		}, func(in Insn) uint32 { return BL(in.Imm) }},
		{"b-cond", func(r *rand.Rand) (uint32, Op) {
			return BCond(uint8(r.Intn(16)), branchOff(r, 17)), OpBCond
		}, func(in Insn) uint32 { return BCond(in.Cond, in.Imm) }},
		{"cbz", func(r *rand.Rand) (uint32, Op) {
			return CBZ(reg31(r), branchOff(r, 17)), OpCBZ
		}, func(in Insn) uint32 { return CBZ(in.Rt, in.Imm) }},
		{"cbnz", func(r *rand.Rand) (uint32, Op) {
			return CBNZ(reg31(r), branchOff(r, 17)), OpCBNZ
		}, func(in Insn) uint32 { return CBNZ(in.Rt, in.Imm) }},
		{"br", func(r *rand.Rand) (uint32, Op) {
			return BR(reg31(r)), OpBR
		}, func(in Insn) uint32 { return BR(in.Rn) }},
		{"blr", func(r *rand.Rand) (uint32, Op) {
			return BLR(reg31(r)), OpBLR
		}, func(in Insn) uint32 { return BLR(in.Rn) }},
		{"ret", func(r *rand.Rand) (uint32, Op) {
			return RET(reg31(r)), OpRET
		}, func(in Insn) uint32 { return RET(in.Rn) }},
		{"ldr-imm", func(r *rand.Rand) (uint32, Op) {
			size := uint8(r.Intn(4))
			return LDRImm(reg31(r), reg31(r), uint16(r.Intn(0x1000))<<size, size), OpLdrImm
		}, func(in Insn) uint32 { return LDRImm(in.Rt, in.Rn, uint16(in.Imm), in.Size) }},
		{"str-imm", func(r *rand.Rand) (uint32, Op) {
			size := uint8(r.Intn(4))
			return STRImm(reg31(r), reg31(r), uint16(r.Intn(0x1000))<<size, size), OpStrImm
		}, func(in Insn) uint32 { return STRImm(in.Rt, in.Rn, uint16(in.Imm), in.Size) }},
		{"ldur", func(r *rand.Rand) (uint32, Op) {
			return LDUR(reg31(r), reg31(r), int16(r.Intn(512)-256), uint8(r.Intn(4))), OpLdur
		}, func(in Insn) uint32 { return LDUR(in.Rt, in.Rn, int16(in.Imm), in.Size) }},
		{"stur", func(r *rand.Rand) (uint32, Op) {
			return STUR(reg31(r), reg31(r), int16(r.Intn(512)-256), uint8(r.Intn(4))), OpStur
		}, func(in Insn) uint32 { return STUR(in.Rt, in.Rn, int16(in.Imm), in.Size) }},
		{"ldtr", func(r *rand.Rand) (uint32, Op) {
			return LDTR(reg31(r), reg31(r), int16(r.Intn(512)-256), uint8(r.Intn(4))), OpLdtr
		}, func(in Insn) uint32 { return LDTR(in.Rt, in.Rn, int16(in.Imm), in.Size) }},
		{"sttr", func(r *rand.Rand) (uint32, Op) {
			return STTR(reg31(r), reg31(r), int16(r.Intn(512)-256), uint8(r.Intn(4))), OpSttr
		}, func(in Insn) uint32 { return STTR(in.Rt, in.Rn, int16(in.Imm), in.Size) }},
		{"ldp", func(r *rand.Rand) (uint32, Op) {
			return LDP(reg31(r), reg31(r), reg31(r), int16(r.Intn(128)-64)*8), OpLdp
		}, func(in Insn) uint32 { return LDP(in.Rt, in.Rt2, in.Rn, int16(in.Imm)) }},
		{"stp", func(r *rand.Rand) (uint32, Op) {
			return STP(reg31(r), reg31(r), reg31(r), int16(r.Intn(128)-64)*8), OpStp
		}, func(in Insn) uint32 { return STP(in.Rt, in.Rt2, in.Rn, int16(in.Imm)) }},
		{"ldr-reg", func(r *rand.Rand) (uint32, Op) {
			return LDRReg(reg31(r), reg31(r), reg31(r), uint8(r.Intn(4))), OpLdrReg
		}, func(in Insn) uint32 { return LDRReg(in.Rt, in.Rn, in.Rm, in.Size) }},
		{"str-reg", func(r *rand.Rand) (uint32, Op) {
			return STRReg(reg31(r), reg31(r), reg31(r), uint8(r.Intn(4))), OpStrReg
		}, func(in Insn) uint32 { return STRReg(in.Rt, in.Rn, in.Rm, in.Size) }},
		{"csel", func(r *rand.Rand) (uint32, Op) {
			return CSEL(reg31(r), reg31(r), reg31(r), uint8(r.Intn(16))), OpCSel
		}, func(in Insn) uint32 { return CSEL(in.Rd, in.Rn, in.Rm, in.Cond) }},
		{"csinc", func(r *rand.Rand) (uint32, Op) {
			return CSINC(reg31(r), reg31(r), reg31(r), uint8(r.Intn(16))), OpCSInc
		}, func(in Insn) uint32 { return CSINC(in.Rd, in.Rn, in.Rm, in.Cond) }},
		{"svc", func(r *rand.Rand) (uint32, Op) {
			return SVC(imm16r(r)), OpSVC
		}, func(in Insn) uint32 { return SVC(uint16(in.Imm)) }},
		{"hvc", func(r *rand.Rand) (uint32, Op) {
			return HVC(imm16r(r)), OpHVC
		}, func(in Insn) uint32 { return HVC(uint16(in.Imm)) }},
		{"smc", func(r *rand.Rand) (uint32, Op) {
			return SMC(imm16r(r)), OpSMC
		}, func(in Insn) uint32 { return SMC(uint16(in.Imm)) }},
		{"msr-pan", func(r *rand.Rand) (uint32, Op) {
			return MSRPan(uint8(r.Intn(2))), OpMSRImm
		}, func(in Insn) uint32 { return MSRPStateImm(in.Sys.Op1, in.Sys.Op2, uint8(in.Imm)) }},
		{"msr-pstate", func(r *rand.Rand) (uint32, Op) {
			return MSRPStateImm(PStateFieldUAOOp1, PStateFieldUAOOp2, uint8(r.Intn(16))), OpMSRImm
		}, func(in Insn) uint32 { return MSRPStateImm(in.Sys.Op1, in.Sys.Op2, uint8(in.Imm)) }},
		{"sys", func(r *rand.Rand) (uint32, Op) {
			return SYSInsn(uint8(r.Intn(8)), uint8(7+r.Intn(2)), uint8(r.Intn(16)), uint8(r.Intn(8)), reg31(r)), OpSYS
		}, func(in Insn) uint32 { return SYSInsn(in.Sys.Op1, in.Sys.CRn, in.Sys.CRm, in.Sys.Op2, in.Rt) }},
		{"tlbi-vmalle1", fixed(TLBIVMALLE1()), func(in Insn) uint32 {
			return SYSInsn(in.Sys.Op1, in.Sys.CRn, in.Sys.CRm, in.Sys.Op2, in.Rt)
		}},
		{"at-s1e1r", func(r *rand.Rand) (uint32, Op) {
			return ATS1E1R(reg31(r)), OpSYS
		}, func(in Insn) uint32 { return SYSInsn(in.Sys.Op1, in.Sys.CRn, in.Sys.CRm, in.Sys.Op2, in.Rt) }},
	}
}

func reAddSubImm(in Insn) uint32 {
	imm, sh := in.Imm, false
	if imm > 0xFFF {
		imm, sh = imm>>12, true
	}
	if in.Op == OpSubImm {
		return SUBImm(in.Rd, in.Rn, uint16(imm), sh)
	}
	return ADDImm(in.Rd, in.Rn, uint16(imm), sh)
}

func reUBFM(in Insn) uint32 { return UBFM(in.Rd, in.Rn, in.ShiftAmt, uint8(in.Imm)) }

// TestEncodeDecodeDisassembleRoundTrip drives every encoder form with
// deterministic random operands and proves the full loop: the word decodes
// to the right Op, re-encoding the decoded fields reproduces the word
// bit-for-bit, and the disassembler renders it (never the .inst fallback).
func TestEncodeDecodeDisassembleRoundTrip(t *testing.T) {
	for _, tc := range roundTripCases() {
		t.Run(tc.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(int64(len(tc.name)) * 1234567))
			for i := 0; i < 500; i++ {
				word, wantOp := tc.gen(r)
				in := Decode(word)
				if in.Op != wantOp {
					t.Fatalf("draw %d: %#08x decodes to %v, want %v", i, word, in.Op, wantOp)
				}
				if in.Raw != word {
					t.Fatalf("draw %d: Raw = %#08x, want %#08x", i, in.Raw, word)
				}
				if got := tc.re(in); got != word {
					t.Fatalf("draw %d: re-encode of %#08x (%v) gives %#08x", i, word, in.Op, got)
				}
				dis := Disassemble(word)
				if dis == "" || strings.HasPrefix(dis, ".inst") {
					t.Fatalf("draw %d: %#08x (%v) disassembles to %q", i, word, in.Op, dis)
				}
			}
		})
	}
}

// reencodeInsn rebuilds the instruction word from a decoded Insn's fields
// using the package encoders, for every accepted Op. The SetFlags variants
// the encoder surface doesn't name (ADDS immediate/register, ANDS) are the
// base encoding with the S/opc bits set.
func reencodeInsn(in Insn) (uint32, bool) {
	setS := func(w uint32) uint32 {
		if in.SetFlags {
			w |= 1 << 29
		}
		return w
	}
	switch in.Op {
	case OpNOP:
		return WordNOP, true
	case OpISB:
		return WordISB, true
	case OpDSB:
		return WordDSBSY, true
	case OpDMB:
		return WordDMBSY, true
	case OpERET:
		return WordERET, true
	case OpMOVZ:
		return MOVZ(in.Rd, uint16(in.Imm), in.ShiftAmt/16), true
	case OpMOVK:
		return MOVK(in.Rd, uint16(in.Imm), in.ShiftAmt/16), true
	case OpMOVN:
		return MOVN(in.Rd, uint16(in.Imm), in.ShiftAmt/16), true
	case OpAddImm, OpSubImm:
		return setS(reAddSubImm(in)), true
	case OpADR:
		return ADR(in.Rd, in.Imm), true
	case OpAddReg:
		return setS(ADDShifted(in.Rd, in.Rn, in.Rm, in.ShiftAmt)), true
	case OpSubReg:
		return setS(SUBReg(in.Rd, in.Rn, in.Rm) | uint32(in.ShiftAmt&0x3F)<<10), true
	case OpAndReg:
		w := ANDReg(in.Rd, in.Rn, in.Rm) | uint32(in.ShiftAmt&0x3F)<<10
		if in.SetFlags {
			w |= 3 << 29 // opc 00 (AND) -> 11 (ANDS)
		}
		return w, true
	case OpOrrReg:
		return ORRShifted(in.Rd, in.Rn, in.Rm, in.ShiftAmt), true
	case OpEorReg:
		return EORReg(in.Rd, in.Rn, in.Rm) | uint32(in.ShiftAmt&0x3F)<<10, true
	case OpLSLV:
		return LSLV(in.Rd, in.Rn, in.Rm), true
	case OpLSRV:
		return LSRV(in.Rd, in.Rn, in.Rm), true
	case OpUDiv:
		return UDIV(in.Rd, in.Rn, in.Rm), true
	case OpMAdd:
		return MADD(in.Rd, in.Rn, in.Rm, in.Ra), true
	case OpUBFM:
		return UBFM(in.Rd, in.Rn, in.ShiftAmt, uint8(in.Imm)), true
	case OpB:
		return B(in.Imm), true
	case OpBL:
		return BL(in.Imm), true
	case OpBCond:
		return BCond(in.Cond, in.Imm), true
	case OpCBZ:
		return CBZ(in.Rt, in.Imm), true
	case OpCBNZ:
		return CBNZ(in.Rt, in.Imm), true
	case OpBR:
		return BR(in.Rn), true
	case OpBLR:
		return BLR(in.Rn), true
	case OpRET:
		return RET(in.Rn), true
	case OpLdrImm:
		return LDRImm(in.Rt, in.Rn, uint16(in.Imm), in.Size), true
	case OpStrImm:
		return STRImm(in.Rt, in.Rn, uint16(in.Imm), in.Size), true
	case OpLdur:
		return LDUR(in.Rt, in.Rn, int16(in.Imm), in.Size), true
	case OpStur:
		return STUR(in.Rt, in.Rn, int16(in.Imm), in.Size), true
	case OpLdtr:
		return LDTR(in.Rt, in.Rn, int16(in.Imm), in.Size), true
	case OpSttr:
		return STTR(in.Rt, in.Rn, int16(in.Imm), in.Size), true
	case OpLdp:
		return LDP(in.Rt, in.Rt2, in.Rn, int16(in.Imm)), true
	case OpStp:
		return STP(in.Rt, in.Rt2, in.Rn, int16(in.Imm)), true
	case OpLdrReg:
		return LDRReg(in.Rt, in.Rn, in.Rm, in.Size), true
	case OpStrReg:
		return STRReg(in.Rt, in.Rn, in.Rm, in.Size), true
	case OpCSel:
		return CSEL(in.Rd, in.Rn, in.Rm, in.Cond), true
	case OpCSInc:
		return CSINC(in.Rd, in.Rn, in.Rm, in.Cond), true
	case OpSVC:
		return SVC(uint16(in.Imm)), true
	case OpHVC:
		return HVC(uint16(in.Imm)), true
	case OpSMC:
		return SMC(uint16(in.Imm)), true
	case OpMSRReg, OpMSRImm, OpSYS:
		return sysWord(0, in.Sys) | reg(in.Rt), true
	case OpMRS, OpSYSL:
		return sysWord(1, in.Sys) | reg(in.Rt), true
	}
	return 0, false
}

// FuzzDecode drives the decoder with raw 32-bit words. Three properties:
// Decode and Disassemble never panic, Raw always carries the input word,
// and every word the decoder accepts (Op != OpUnknown) re-encodes from its
// decoded fields to the identical word — i.e. the decoder records every bit
// it accepts, and rejects encodings the interpreter would misexecute.
func FuzzDecode(f *testing.F) {
	for _, tc := range roundTripCases() {
		r := rand.New(rand.NewSource(99))
		w, _ := tc.gen(r)
		f.Add(w)
	}
	// Edges: all-zero, all-ones, and near-miss words around the subset's
	// dispatch boundaries (32-bit forms, shifted registers, LDRSW space).
	for _, w := range []uint32{
		0, ^uint32(0),
		0x0B000000, // 32-bit ADD (sf=0)
		0x8B801000, // ADD with ASR shift type
		0xB8000000, // 32-bit STR space
		0xF9800000, // opc=1x load/store (LDRSW/PRFM space)
		0xD5004000, // MSR imm shape with Rt != 31
		0xD61F0001, // BR with op4 bits set
	} {
		f.Add(w)
	}
	f.Fuzz(func(t *testing.T, word uint32) {
		in := Decode(word)
		if in.Raw != word {
			t.Fatalf("Decode(%#08x).Raw = %#08x", word, in.Raw)
		}
		dis := Disassemble(word)
		if dis == "" {
			t.Fatalf("Disassemble(%#08x) is empty", word)
		}
		if in.Op == OpUnknown {
			return
		}
		re, ok := reencodeInsn(in)
		if !ok {
			t.Fatalf("accepted op %v (%#08x) has no re-encoder", in.Op, word)
		}
		if re != word {
			t.Fatalf("decode→encode not identity: %#08x decodes to %v (%+v), re-encodes to %#08x",
				word, in.Op, in, re)
		}
		if strings.HasPrefix(dis, ".inst") {
			t.Errorf("accepted word %#08x (%v) disassembles to fallback %q", word, in.Op, dis)
		}
	})
}

// TestMSRMRSRoundTripAllSysRegs covers the MSR/MRS pair for every modelled
// system register: decode recovers the exact (op0,op1,CRn,CRm,op2) tuple and
// the L bit separates the two forms.
func TestMSRMRSRoundTripAllSysRegs(t *testing.T) {
	for sr := SysReg(1); int(sr) < NumSysRegs; sr++ {
		if !sr.Valid() {
			continue
		}
		rt := uint8(int(sr) % 31)
		msr := Decode(MSR(sr, rt))
		if msr.Op != OpMSRReg || msr.Sys != sr.Enc() || msr.Rt != rt {
			t.Errorf("%v: MSR decodes to %+v", sr, msr)
		}
		mrs := Decode(MRS(rt, sr))
		if mrs.Op != OpMRS || mrs.Sys != sr.Enc() || mrs.Rt != rt {
			t.Errorf("%v: MRS decodes to %+v", sr, mrs)
		}
		if MSR(sr, rt) == MRS(rt, sr) {
			t.Errorf("%v: MSR and MRS encode identically", sr)
		}
	}
}
