package core

import (
	"testing"

	"lightzone/internal/arm64"
	"lightzone/internal/kernel"
	"lightzone/internal/mem"
)

// TestPerThreadDomains exercises §4.1's security goal — "Threads in a
// process are assigned specific access permissions to protected memory
// domains" — across real scheduler interleavings: the main thread lives in
// domain 1, a spawned thread enters domain 2, the round-robin scheduler
// switches between them repeatedly, and each thread's TTBR0 (its domain)
// must be preserved across every context switch. Both threads hammer their
// own domain; any leakage of the wrong TTBR0 would fault as a cross-domain
// violation.
func TestPerThreadDomains(t *testing.T) {
	r := newRig(t)
	const (
		dom1      = uint64(0x4100_0000)
		dom2      = uint64(0x4200_0000)
		stackBase = uint64(0x4800_0000)
		rounds    = 40 // far beyond the scheduling quantum
	)
	a := arm64.NewAsm()
	svcCall(a, SysLZEnter, 1, uint64(SanTTBR))
	hvcCall(a, kernel.SysMmap, dom1, mem.PageSize, uint64(kernel.ProtRead|kernel.ProtWrite))
	hvcCall(a, kernel.SysMmap, dom2, mem.PageSize, uint64(kernel.ProtRead|kernel.ProtWrite))
	hvcCall(a, kernel.SysMmap, stackBase, 4*mem.PageSize, uint64(kernel.ProtRead|kernel.ProtWrite))
	hvcCall(a, SysLZAlloc) // 1
	hvcCall(a, SysLZAlloc) // 2
	hvcCall(a, SysLZMapGatePgt, 1, 0)
	hvcCall(a, SysLZMapGatePgt, 2, 1)
	hvcCall(a, SysLZProt, dom1, mem.PageSize, 1, PermRead|PermWrite)
	hvcCall(a, SysLZProt, dom2, mem.PageSize, 2, PermRead|PermWrite)

	// Spawn the second thread at "worker" with its own stack.
	a.ADR(10, "worker")
	a.Emit(arm64.MOVReg(0, 10))
	a.MovImm(1, stackBase+4*mem.PageSize-64)
	a.MovImm(8, kernel.SysClone)
	a.Emit(arm64.HVC(HVCSyscall))

	// Main thread: enter domain 1, then loop writing its own domain with
	// frequent yields so the scheduler interleaves the threads.
	e0 := EmitGateSwitch(a, 0, "main")
	a.MovImm(5, dom1)
	a.MovImm(11, rounds)
	a.Label("main_loop")
	a.MovImm(2, 0x1111)
	a.Emit(arm64.STRImm(2, 5, 0, 3))
	a.Emit(arm64.LDRImm(19, 5, 0, 3))
	a.MovImm(8, kernel.SysSchedYield)
	a.Emit(arm64.HVC(HVCSyscall))
	a.Emit(arm64.LDRImm(19, 5, 0, 3)) // after resume: domain must be back
	a.Emit(arm64.SUBSImm(11, 11, 1))
	a.BCond(arm64.CondNE, "main_loop")
	// Wait for the worker's completion flag.
	a.MovImm(6, uint64(kernel.DataBase))
	a.Label("main_wait")
	a.Emit(arm64.LDRImm(12, 6, 0, 3))
	a.CBNZ(12, "main_done")
	a.MovImm(8, kernel.SysSchedYield)
	a.Emit(arm64.HVC(HVCSyscall))
	a.B("main_wait")
	a.Label("main_done")
	hvcCall(a, kernel.SysExit, 77)

	// Worker thread: enter domain 2 and do the same.
	a.Label("worker")
	e1 := EmitGateSwitch(a, 1, "worker_gate")
	a.MovImm(5, dom2)
	a.MovImm(11, rounds)
	a.Label("worker_loop")
	a.MovImm(2, 0x2222)
	a.Emit(arm64.STRImm(2, 5, 0, 3))
	a.Emit(arm64.LDRImm(20, 5, 0, 3))
	a.MovImm(8, kernel.SysSchedYield)
	a.Emit(arm64.HVC(HVCSyscall))
	a.Emit(arm64.LDRImm(20, 5, 0, 3))
	a.Emit(arm64.SUBSImm(11, 11, 1))
	a.BCond(arm64.CondNE, "worker_loop")
	// Set the completion flag (the data page is unprotected: visible in
	// every domain table).
	a.MovImm(6, uint64(kernel.DataBase))
	a.MovImm(2, 1)
	a.Emit(arm64.STRImm(2, 6, 0, 3))
	a.MovImm(8, kernel.SysExit)
	a.MovImm(0, 0)
	a.Emit(arm64.HVC(HVCSyscall))

	off0, err := a.Offset(e0)
	if err != nil {
		t.Fatal(err)
	}
	off1, err := a.Offset(e1)
	if err != nil {
		t.Fatal(err)
	}
	p := r.run(t, a, []GateEntry{
		{GateID: 0, Entry: uint64(off0)},
		{GateID: 1, Entry: uint64(off1)},
	})
	if p.Killed {
		t.Fatalf("killed: %s", p.KillMsg)
	}
	if p.ExitCode != 77 {
		t.Errorf("exit = %d", p.ExitCode)
	}
	if r.m.Host.SchedEvents < 10 {
		t.Errorf("only %d scheduling events: threads did not interleave", r.m.Host.SchedEvents)
	}
	lp, _ := r.lz.ProcState(p)
	if lp.Violations != 0 {
		t.Errorf("violations = %d: a thread leaked into the wrong domain", lp.Violations)
	}
}

// TestThreadCannotReachSiblingDomain: with the same two-thread layout, the
// worker maliciously touches the main thread's domain and must die without
// taking the whole run's integrity down (the process is terminated — the
// paper's policy — but the host and the test harness stay consistent).
func TestThreadCannotReachSiblingDomain(t *testing.T) {
	r := newRig(t)
	const (
		dom1      = uint64(0x4100_0000)
		dom2      = uint64(0x4200_0000)
		stackBase = uint64(0x4800_0000)
	)
	a := arm64.NewAsm()
	svcCall(a, SysLZEnter, 1, uint64(SanTTBR))
	hvcCall(a, kernel.SysMmap, dom1, mem.PageSize, uint64(kernel.ProtRead|kernel.ProtWrite))
	hvcCall(a, kernel.SysMmap, dom2, mem.PageSize, uint64(kernel.ProtRead|kernel.ProtWrite))
	hvcCall(a, kernel.SysMmap, stackBase, 2*mem.PageSize, uint64(kernel.ProtRead|kernel.ProtWrite))
	hvcCall(a, SysLZAlloc)
	hvcCall(a, SysLZAlloc)
	hvcCall(a, SysLZMapGatePgt, 1, 0)
	hvcCall(a, SysLZMapGatePgt, 2, 1)
	hvcCall(a, SysLZProt, dom1, mem.PageSize, 1, PermRead|PermWrite)
	hvcCall(a, SysLZProt, dom2, mem.PageSize, 2, PermRead|PermWrite)
	a.ADR(10, "rogue")
	a.Emit(arm64.MOVReg(0, 10))
	a.MovImm(1, stackBase+2*mem.PageSize-64)
	a.MovImm(8, kernel.SysClone)
	a.Emit(arm64.HVC(HVCSyscall))
	// Main spins until terminated with the process.
	a.Label("spin")
	a.MovImm(8, kernel.SysSchedYield)
	a.Emit(arm64.HVC(HVCSyscall))
	a.B("spin")
	// Rogue worker: enters domain 2, then reads domain 1.
	a.Label("rogue")
	e1 := EmitGateSwitch(a, 1, "rogue_gate")
	a.MovImm(5, dom1)
	a.Emit(arm64.LDRImm(9, 5, 0, 3))
	hvcCall(a, kernel.SysExit, 0)
	off1, err := a.Offset(e1)
	if err != nil {
		t.Fatal(err)
	}
	p := r.run(t, a, []GateEntry{{GateID: 1, Entry: uint64(off1)}})
	if !p.Killed {
		t.Fatal("rogue thread's cross-domain read survived")
	}
}
