package core

import (
	"fmt"
	"math/rand"
	"testing"

	"lightzone/internal/arm64"
	"lightzone/internal/hyp"
	"lightzone/internal/kernel"
	"lightzone/internal/mem"
)

// TestRandomizedIsolationPrograms generates random-but-well-formed
// LightZone programs: D TTBR domains plus a PAN region, followed by a
// random sequence of operations. Legal sequences must complete; the first
// illegal operation must terminate the process. This is the §7.2 "random
// illegal memory access program" generalized into a property test.
func TestRandomizedIsolationPrograms(t *testing.T) {
	const (
		domains    = 8
		regionBase = uint64(0x5000_0000)
		stride     = uint64(0x1_0000)
		panBase    = uint64(0x6000_0000)
	)
	for seed := int64(1); seed <= 24; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			m := hyp.NewMachine(arm64.ProfileCortexA55(), 512<<20)
			lz := New(m.Hyp)
			lz.Install(m.Host)

			a := arm64.NewAsm()
			svcCall(a, SysLZEnter, 1, uint64(SanTTBR))
			hvcCall(a, kernel.SysMmap, regionBase, uint64(domains)*stride, uint64(kernel.ProtRead|kernel.ProtWrite))
			hvcCall(a, kernel.SysMmap, panBase, mem.PageSize, uint64(kernel.ProtRead|kernel.ProtWrite))
			for d := 0; d < domains; d++ {
				hvcCall(a, SysLZAlloc)
				hvcCall(a, SysLZMapGatePgt, uint64(d+1), uint64(d))
				hvcCall(a, SysLZProt, regionBase+uint64(d)*stride, mem.PageSize, uint64(d+1), PermRead|PermWrite)
			}
			hvcCall(a, SysLZProt, panBase, mem.PageSize, 0, PermRead|PermWrite|PermUser)
			a.MovImm(5, regionBase)

			var entries []GateEntry
			current := -1 // domain the thread is in (-1: base table)
			panOpen := false
			expectKill := ""
			nextGate := domains // fresh gate per switch site (one gate, one entry)
			nOps := 6 + rng.Intn(10)
			for i := 0; i < nOps && expectKill == ""; i++ {
				switch rng.Intn(5) {
				case 0: // legal gate switch through a per-site gate
					d := rng.Intn(domains)
					gate := nextGate
					nextGate++
					hvcCall(a, SysLZMapGatePgt, uint64(d+1), uint64(gate))
					label := fmt.Sprintf("op%d", i)
					entry := EmitGateSwitch(a, gate, label)
					off, err := a.Offset(entry)
					if err != nil {
						t.Fatal(err)
					}
					entries = append(entries, GateEntry{GateID: gate, Entry: uint64(off)})
					current = d
				case 1: // access current domain (legal only when inside one)
					if current < 0 {
						continue
					}
					a.MovImm(12, uint64(current))
					a.Emit(arm64.ADDShifted(13, 5, 12, 16))
					a.Emit(arm64.LDRImm(9, 13, 0, 3))
				case 2: // cross-domain access: illegal once inside a domain
					d := rng.Intn(domains)
					if current < 0 || d == current {
						continue
					}
					a.MovImm(12, uint64(d))
					a.Emit(arm64.ADDShifted(13, 5, 12, 16))
					a.Emit(arm64.LDRImm(9, 13, 0, 3))
					expectKill = "not mapped by current page table"
				case 3: // PAN open-access-close (legal)
					a.Emit(arm64.MSRPan(0))
					a.MovImm(13, panBase)
					a.Emit(arm64.LDRImm(9, 13, 0, 3))
					a.Emit(arm64.MSRPan(1))
					panOpen = false
				case 4: // PAN access without opening: illegal
					if panOpen {
						continue
					}
					a.Emit(arm64.MSRPan(1))
					a.MovImm(13, panBase)
					a.Emit(arm64.LDRImm(9, 13, 0, 3))
					expectKill = "PAN-protected"
				}
			}
			hvcCall(a, kernel.SysExit, 11)

			words, err := a.Assemble()
			if err != nil {
				t.Fatal(err)
			}
			p, err := m.Host.CreateProcess("stress", kernel.Program{Text: words})
			if err != nil {
				t.Fatal(err)
			}
			resolved := make([]GateEntry, len(entries))
			for i, e := range entries {
				resolved[i] = GateEntry{GateID: e.GateID, Entry: uint64(kernel.TextBase) + e.Entry}
			}
			lz.RegisterGateEntries(p, resolved)
			if err := m.RunHostProcess(p, 2_000_000); err != nil {
				t.Fatal(err)
			}

			if expectKill == "" {
				if p.Killed {
					t.Fatalf("legal sequence killed: %s", p.KillMsg)
				}
				if p.ExitCode != 11 {
					t.Errorf("exit = %d", p.ExitCode)
				}
			} else {
				if !p.Killed {
					t.Fatalf("illegal sequence survived (expected %q)", expectKill)
				}
			}
		})
	}
}
