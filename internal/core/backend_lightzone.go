package core

import (
	"lightzone/internal/cpu"
	"lightzone/internal/kernel"
	"lightzone/internal/mem"
)

func init() {
	RegisterBackend("lightzone", func() Backend { return lightzoneBackend{} })
}

// lightzoneBackend is the paper's substrate: per-domain stage-1 page
// tables selected by TTBR0 writes inside TTBR1-mapped secure call gates
// (GateTab/TTBRTab two-phase validation), with PAN-based domains as the
// single-table fast path. The implementation lives on LZProc (lzproc.go,
// gate.go, fault.go) exactly as before the Backend split; this type is the
// thin dispatch shim that makes the default substrate swappable.
type lightzoneBackend struct{}

func (lightzoneBackend) Name() string { return "lightzone" }

func (lightzoneBackend) Install(lp *LZProc) error { return lp.installGates() }

func (lightzoneBackend) Alloc(lp *LZProc) (int, error) { return lp.Alloc() }

func (lightzoneBackend) Free(lp *LZProc, domain int) error { return lp.Free(domain) }

func (lightzoneBackend) Prot(lp *LZProc, addr mem.VA, length uint64, domain, perm int) error {
	return lp.Prot(addr, length, domain, perm)
}

func (lightzoneBackend) MapGatePgt(lp *LZProc, pgt, gate int) error {
	return lp.MapGatePgt(pgt, gate)
}

func (lightzoneBackend) HandleFault(k *kernel.Kernel, t *kernel.Thread, lp *LZProc, s cpu.Syndrome) error {
	return lp.lz.handleLZFault(k, t, lp, s)
}

func (lightzoneBackend) HandleHVC(k *kernel.Kernel, t *kernel.Thread, lp *LZProc, s cpu.Syndrome) (bool, error) {
	return false, nil
}
