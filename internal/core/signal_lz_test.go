package core

import (
	"testing"

	"lightzone/internal/arm64"
	"lightzone/internal/kernel"
	"lightzone/internal/mem"
)

// TestSignalContextCarriesTTBR0AndPAN verifies the paper's §6 kernel
// patch: "PAN and TTBR0 are added in the signal contexts of the kernel for
// correct signal handling." A LightZone thread switches into a protected
// domain and drops PAN; a signal handler runs, switches state arbitrarily,
// and rt_sigreturn must restore both the domain (TTBR0) and PAN.
func TestSignalContextCarriesTTBR0AndPAN(t *testing.T) {
	r := newRig(t)
	const (
		data = uint64(0x4100_0000)
		key  = uint64(0x4300_0000)
	)
	a := arm64.NewAsm()
	svcCall(a, SysLZEnter, 1, uint64(SanTTBR))
	hvcCall(a, kernel.SysMmap, data, mem.PageSize, uint64(kernel.ProtRead|kernel.ProtWrite))
	hvcCall(a, kernel.SysMmap, key, mem.PageSize, uint64(kernel.ProtRead|kernel.ProtWrite))
	hvcCall(a, SysLZAlloc)
	a.Emit(arm64.MOVReg(21, 0))
	a.Emit(arm64.MOVReg(0, 21))
	a.MovImm(1, 0)
	a.MovImm(8, SysLZMapGatePgt)
	a.Emit(arm64.HVC(HVCSyscall))
	a.MovImm(0, data)
	a.MovImm(1, mem.PageSize)
	a.Emit(arm64.MOVReg(2, 21))
	a.MovImm(3, PermRead|PermWrite)
	a.MovImm(8, SysLZProt)
	a.Emit(arm64.HVC(HVCSyscall))
	hvcCall(a, SysLZProt, key, mem.PageSize, 0, PermRead|PermWrite|PermUser)

	// Register the handler.
	a.ADR(1, "handler")
	a.MovImm(0, kernel.SIGUSR1)
	a.MovImm(8, kernel.SysSigaction)
	a.Emit(arm64.HVC(HVCSyscall))

	// Enter domain 1 and drop PAN; x19 holds a sentinel.
	entry := EmitGateSwitch(a, 0, "sig")
	EmitSetPAN(a, 0)
	a.MovImm(19, 7777)

	// raise(SIGUSR1): kill(getpid(), SIGUSR1).
	hvcCall(a, kernel.SysGetpid)
	a.Emit(arm64.MOVReg(20, 0))
	a.Emit(arm64.MOVReg(0, 20))
	a.MovImm(1, kernel.SIGUSR1)
	a.MovImm(8, kernel.SysKill)
	a.Emit(arm64.HVC(HVCSyscall))

	// After the handler returns: the domain must still be pgt 1 (the
	// protected data accessible) and PAN must still be clear (the key
	// accessible), and x19 must be restored.
	a.MovImm(1, data)
	a.MovImm(2, 1234)
	a.Emit(arm64.STRImm(2, 1, 0, 3)) // faults dead if TTBR0 lost
	a.MovImm(3, key)
	a.Emit(arm64.LDRImm(4, 3, 0, 3)) // faults dead if PAN restored wrong
	hvcCall(a, kernel.SysExit, 60)

	a.Label("handler")
	a.MovImm(19, 1) // clobber the sentinel
	EmitSetPAN(a, 1)
	a.MovImm(8, kernel.SysSigreturn)
	a.Emit(arm64.HVC(HVCSyscall))

	off, err := a.Offset(entry)
	if err != nil {
		t.Fatal(err)
	}
	p := r.run(t, a, []GateEntry{{GateID: 0, Entry: uint64(off)}})
	if p.Killed {
		t.Fatalf("killed: %s", p.KillMsg)
	}
	if p.ExitCode != 60 {
		t.Errorf("exit = %d", p.ExitCode)
	}
	if got := r.m.CPU.R(19); got != 7777 {
		t.Errorf("x19 = %d, want 7777 (restored by sigreturn)", got)
	}
}
