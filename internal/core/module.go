// Package core implements LightZone itself: the kernel module that places
// ARM64 processes in the kernel mode (EL1) of their own virtual machines
// and provides TTBR0-based scalable and PAN-based efficient in-process
// isolation (paper §4-§6), including the TTBR1-mapped secure call gate,
// the sensitive-instruction sanitizer with W xor X and break-before-make
// enforcement, the fake-physical-address randomization layer, the trap
// forwarding paths for host and guest LightZone processes, and the
// Lowvisor for software nested virtualization.
package core

import (
	"fmt"

	"lightzone/internal/arm64"
	"lightzone/internal/cpu"
	"lightzone/internal/hyp"
	"lightzone/internal/kernel"
	"lightzone/internal/mem"
	"lightzone/internal/trace"
)

// LightZone API syscall numbers (module-owned; outside the Linux range).
const (
	SysLZEnter      = 460
	SysLZAlloc      = 461
	SysLZFree       = 462
	SysLZProt       = 463
	SysLZMapGatePgt = 464
)

// Opts are module-level configuration and ablation switches.
type Opts struct {
	// IdentityPhys disables the fake-physical randomization layer (the
	// paper's "intuitive" stage-2 translation, §5.1.2).
	IdentityPhys bool
	// DisableEagerS2 disables eager stage-2 mapping during stage-1
	// faults (§5.2), forcing the back-to-back fault pattern.
	DisableEagerS2 bool
}

// LightZone is the kernel module (and, in guest mode, the guest kernel
// module collaborating with the Lowvisor).
type LightZone struct {
	Hyp  *hyp.Hypervisor
	Opts Opts
	// Trace, when set, records the module's activity (nil-safe).
	Trace *trace.Recorder
	// GuestMode marks the module instance loaded inside a guest kernel:
	// hypervisor-privileged operations are redirected through the
	// NEVE-style shared page instead of trapping (§5.2.2).
	GuestMode bool

	// Observer, when set, is invoked after every security-state mutation
	// chokepoint (lz_enter, lz_prot, lz_alloc, lz_free, lz_map_gate_pgt,
	// sanitizer admission, W-xor-X flips) with the event name and the
	// affected process. The -invariants mode hangs the static verifier
	// here. Observers must be observation-only: the hook runs outside the
	// cycle model and must not mutate machine state.
	Observer func(event string, lp *LZProc)

	// backend is the isolation substrate new processes enter with
	// (SetBackend swaps it; the default is the paper's lightzone).
	backend Backend

	procs          map[int]*LZProc
	pendingEntries map[int][]GateEntry
}

var _ kernel.Module = (*LightZone)(nil)

// New creates a LightZone module instance bound to the hypervisor.
func New(h *hyp.Hypervisor) *LightZone {
	return &LightZone{
		Hyp:            h,
		backend:        lightzoneBackend{},
		procs:          make(map[int]*LZProc),
		pendingEntries: make(map[int][]GateEntry),
	}
}

// Install loads the module into a kernel (Module hook) — the host kernel
// for host LightZone processes, or a guest kernel (with GuestMode set and
// the Lowvisor installed in the hypervisor) for guest processes.
func (lz *LightZone) Install(k *kernel.Kernel) {
	k.Module = lz
}

// RegisterGateEntries records the statically allocated legitimate entries
// of a program's call-gate uses (§6.2: entries are compile-time constants;
// the trusted loader hands them to the module before lz_enter).
func (lz *LightZone) RegisterGateEntries(p *kernel.Process, entries []GateEntry) {
	lz.pendingEntries[p.PID] = append(lz.pendingEntries[p.PID], entries...)
}

// ProcState returns the per-process LightZone state.
func (lz *LightZone) ProcState(p *kernel.Process) (*LZProc, bool) {
	lp, ok := lz.procs[p.PID]
	return lp, ok
}

// Syscall implements kernel.Module: the module-owned syscall numbers.
func (lz *LightZone) Syscall(k *kernel.Kernel, t *kernel.Thread, num int, args [6]uint64) (uint64, bool, error) {
	switch num {
	case SysLZEnter:
		ret, err := lz.enter(k, t, args[0] != 0, SanPolicy(args[1]))
		return ret, true, err
	case SysLZAlloc, SysLZFree, SysLZProt, SysLZMapGatePgt:
		lp, ok := t.Proc.LZ.(*LZProc)
		if !ok {
			return lzErr(), true, nil
		}
		switch num {
		case SysLZAlloc:
			id, err := lp.backend.Alloc(lp)
			if err != nil {
				return lzErr(), true, nil
			}
			_ = err
			return uint64(id), true, nil
		case SysLZFree:
			if err := lp.backend.Free(lp, int(int64(args[0]))); err != nil {
				return lzErr(), true, nil
			}
			return 0, true, nil
		case SysLZProt:
			perm := int(args[3])
			pgt := int(int64(args[2]))
			if err := lp.backend.Prot(lp, mem.VA(args[0]), args[1], pgt, perm); err != nil {
				return lzErr(), true, nil
			}
			return 0, true, nil
		case SysLZMapGatePgt:
			if err := lp.backend.MapGatePgt(lp, int(int64(args[0])), int(int64(args[1]))); err != nil {
				return lzErr(), true, nil
			}
			return 0, true, nil
		}
	}
	return 0, false, nil
}

func lzErr() uint64 { return ^uint64(0) } // -1

// observe fires the Observer hook (nil-safe).
func (lz *LightZone) observe(event string, lp *LZProc) {
	if lz.Observer != nil {
		lz.Observer(event, lp)
	}
}

// enter implements lz_enter: a one-way ticket into the per-process virtual
// environment (Table 2). The calling thread's process is wrapped in a new
// VM; its address space is duplicated into a kernel-mode base page table
// behind the fake-physical layer; the trap stub and call gates are
// installed in the TTBR1 range; and the thread resumes in EL1.
func (lz *LightZone) enter(k *kernel.Kernel, t *kernel.Thread, allowScalable bool, policy SanPolicy) (uint64, error) {
	p := t.Proc
	if p.LZ != nil {
		return lzErr(), nil
	}
	vm, err := lz.Hyp.NewVM(fmt.Sprintf("lz-%s-%d", p.Name, p.PID), false)
	if err != nil {
		return 0, err
	}
	lp := &LZProc{
		lz:            lz,
		kern:          k,
		proc:          p,
		vm:            vm,
		backend:       lz.backend,
		allowScalable: allowScalable,
		policy:        policy,
		fake:          NewFakePhys(lz.Opts.IdentityPhys),
		pgts:          make(map[int]*DomainPGT),
		byRoot:        make(map[mem.PA]*DomainPGT),
		gateEntries:   make(map[int]uint64),
		gatePgt:       make(map[int]int),
		protected:     make(map[mem.VA]*protInfo),
		exec:          make(map[mem.VA]execState),
	}
	for _, e := range lz.pendingEntries[p.PID] {
		lp.gateEntries[e.GateID] = e.Entry
	}

	// TTBR1 table: stub, gates, GateTab, TTBRTab.
	ttbr1, err := mem.NewStage1(k.PM, 0)
	if err != nil {
		return 0, err
	}
	ttbr1.OnAllocTable = lp.s2MapTable
	lp.s2MapTable(ttbr1.Root())
	lp.ttbr1 = ttbr1
	lp.ttbr1Val = cpu.MakeTTBR(uint64(ttbr1.Root()), 0)
	if err := lp.installStub(); err != nil {
		return 0, err
	}
	if err := lp.backend.Install(lp); err != nil {
		return 0, err
	}

	// Base page table (id 0): duplicate the kernel-managed address
	// space with kernel-mode permission translation (§5.1.2). Executable
	// pages stay PXN until the sanitizer clears them on first execution.
	base, err := lp.newPGT()
	if err != nil {
		return 0, err
	}
	var dupErr error
	if err := p.AS.S1.Visit(func(va mem.VA, kdesc uint64, size uint64) bool {
		attrs := translateAttrs(kdesc) | mem.AttrPXN
		pa := mem.PA(kdesc & mem.OAMask)
		if dupErr = lp.mapIntoPGT(base, va, pa, size, attrs); dupErr != nil {
			return false
		}
		k.CPU.Charge(4 * k.Prof.MemAccessCost) // duplication cost per page
		return true
	}); err != nil {
		return 0, err
	}
	if dupErr != nil {
		return 0, dupErr
	}
	if err := lp.writeTTBRTab(0, base.TTBR()); err != nil {
		return 0, err
	}

	// Keep duplicated tables synchronized with kernel unmaps and
	// protection changes (§5.1.2).
	p.AS.UnmapNotify = func(va mem.VA) { lp.syncUnmap(va) }
	p.AS.ProtNotify = func(va mem.VA) { lp.syncProt(va) }

	// World configuration: kernel mode of a separate VM, trap stub at
	// VBAR_EL1, sensitive features disabled via HCR_EL2 (§5.1.1). For
	// PAN-only processes, stage-1 control registers are locked with
	// TVM/TRVM; TTBR-mode processes keep them untrapped (the sanitizer
	// and stage-2 carry the security argument, §5.1.2/§6.3).
	hcr := cpu.HCRVM | cpu.HCRTSC | cpu.HCRTTLB | cpu.HCRTACR | cpu.HCRIMO
	if !allowScalable {
		hcr |= cpu.HCRTVM | cpu.HCRTRVM
	}
	lp.world = kernel.World{
		HCR:         hcr,
		VTTBR:       vm.VTTBR(),
		EL:          arm64.EL1,
		EmulatedEL1: true,
		VBAR:        uint64(stubVA),
		TTBR1:       lp.ttbr1Val,
		SCTLR:       cpu.SCTLRM,
	}

	// Apply the world to the live vCPU and rewrite the trap return state
	// so the lz_enter syscall returns into EL1.
	c := k.CPU
	lp.outerVTTBR = c.Sys(arm64.VTTBREL2)
	lz.applyWorldReg(k, arm64.HCREL2, hcr)
	lz.applyWorldReg(k, arm64.VTTBREL2, vm.VTTBR())
	c.SetSys(arm64.VBAREL1, uint64(stubVA))
	c.SetSys(arm64.TTBR1EL1, lp.ttbr1Val)
	c.SetSys(arm64.TTBR0EL1, base.TTBR())
	c.SetSys(arm64.SCTLREL1, cpu.SCTLRM)
	c.EmulatedEL1 = true

	spsrReg := arm64.SPSREL2
	if k.EL == arm64.EL1 {
		spsrReg = arm64.SPSREL1
	}
	spsr := c.Sys(spsrReg)
	spsr = spsr&^arm64.PStateELMask&^arm64.PStateSPSel | arm64.PStateForEL(arm64.EL1)
	c.SetSys(spsrReg, spsr)

	t.Ctx.TTBR0 = base.TTBR()
	t.Ctx.TTBR1 = lp.ttbr1Val
	t.Ctx.VBAR = uint64(stubVA)
	t.Ctx.PState = t.Ctx.PState&^arm64.PStateELMask | arm64.PStateForEL(arm64.EL1)

	p.LZ = lp
	lz.procs[p.PID] = lp
	c.Charge(k.Prof.HypDispatchCost) // VM creation path
	lz.Trace.Record(c.Cycles, trace.KindEnter, p.PID, "scalable=%v policy=%v vmid=%d", allowScalable, policy, vm.VMID)
	// Domain switches are emulated MSR TTBR0_EL1 instructions; observe
	// them for the trace timeline.
	if lz.Trace != nil {
		c.OnTTBR0Write = func(old, new uint64) {
			lz.Trace.Record(c.Cycles, trace.KindDomainSwitch, p.PID, "ttbr0 %#x -> %#x", old, new)
		}
	}
	lz.observe("lz_enter", lp)
	return 0, nil
}

// applyWorldReg writes an EL2 control register: directly (with the retain
// filter) for a host module, or via the NEVE-style shared page for a guest
// module — a memory write instead of a trap to the Lowvisor (§5.2.2).
func (lz *LightZone) applyWorldReg(k *kernel.Kernel, r arm64.SysReg, v uint64) {
	if lz.GuestMode {
		k.CPU.Charge(2 * k.Prof.MemAccessCost)
		k.CPU.SetSys(r, v)
		return
	}
	lz.Hyp.WriteWorldReg(r, v)
}

// syncUnmap mirrors a kernel unmap into every LightZone table and the
// stage-2 fake layer.
func (lp *LZProc) syncUnmap(va mem.VA) {
	// Resolve the fake page before tearing down stage-1.
	if res, err := lp.pgts[0].S1.Walk(va); err == nil && res.Found {
		fk := mem.IPA(res.Desc & mem.OAMask)
		if real, ok := lp.fake.RealOf(fk); ok {
			_, _ = lp.vm.S2.Unmap(fk)
			lp.fake.Drop(real)
		}
	}
	lp.unmapEverywhere(va)
	delete(lp.protected, va)
	delete(lp.exec, va)
}

// syncProt withdraws a page from every LightZone table after the kernel
// changed its protection; the next access demand-maps it with the new
// attributes (and re-sanitizes executable pages).
func (lp *LZProc) syncProt(va mem.VA) {
	base := mem.PageAlignDown(va)
	lp.unmapEverywhere(base)
	delete(lp.exec, base)
}

// HandleExit implements kernel.Module: traps from host LightZone
// processes arriving at the host kernel (EL2).
func (lz *LightZone) HandleExit(k *kernel.Kernel, t *kernel.Thread, exit cpu.Exit) (bool, error) {
	lp, ok := t.Proc.LZ.(*LZProc)
	if !ok {
		return false, nil
	}
	return true, lz.dispatch(k, t, lp, exit)
}

// dispatch is the shared trap handler for host and guest LightZone
// processes (the Lowvisor routes guest traps here after its partial
// context switch).
func (lz *LightZone) dispatch(k *kernel.Kernel, t *kernel.Thread, lp *LZProc, exit cpu.Exit) error {
	lp.Traps++
	c := k.CPU
	s := exit.Syndrome
	lz.Trace.Record(c.Cycles, trace.KindTrap, t.Proc.PID, "%v imm=%#x pc=%#x", s.Class, s.Imm, s.PC)
	switch s.Class {
	case cpu.ECHVC:
		switch s.Imm {
		case HVCSyscall:
			return lz.handleSyscall(k, t, lp, false)
		case HVCForwardSync:
			return lz.handleForwardedSync(k, t, lp)
		case HVCForwardIRQ:
			lp.chargeModuleEntry(k)
			lp.chargeModuleExit(k)
			return c.ERET()
		case HVCViolation:
			lp.violation(t, fmt.Sprintf("call gate check failed (pc=%#x)", s.PC))
			return nil
		default:
			// Backend-private entry paths (e.g. the granule backend's
			// realm-style domain switch) get first refusal.
			if handled, err := lp.backend.HandleHVC(k, t, lp, s); handled {
				return err
			}
			lp.violation(t, fmt.Sprintf("unknown hvc #%#x", s.Imm))
			return nil
		}
	case cpu.ECMSRTrap:
		reg, _ := arm64.LookupSysReg(s.SysEnc)
		lp.violation(t, fmt.Sprintf("trapped sensitive system access to %v at %#x", reg, s.PC))
		return nil
	case cpu.ECSMC:
		lp.violation(t, fmt.Sprintf("smc at %#x", s.PC))
		return nil
	case cpu.ECIRQ:
		lp.chargeModuleEntry(k)
		lp.chargeModuleExit(k)
		return c.ERET()
	case cpu.ECDataAbortLower, cpu.ECDataAbortSame, cpu.ECInsAbortLower, cpu.ECInsAbortSame:
		if s.Stage == 2 {
			return lz.handleStage2Fault(k, t, lp, s)
		}
		// Stage-1 aborts reach EL1 (the stub) first; arriving here
		// directly means a stub fetch failed — fatal.
		lp.violation(t, fmt.Sprintf("unexpected stage-1 abort at EL2: %v", s.VA))
		return nil
	default:
		lp.violation(t, fmt.Sprintf("unhandled trap class %v", s.Class))
		return nil
	}
}

// chargeModuleEntry models the module's trap entry: pt_regs via the shared
// page, syndrome read, dispatch, and the forwarding layer. By default
// HCR_EL2 and VTTBR_EL2 retain their values across the trap (§5.2.1); the
// DisableRetainRegs ablation restores the conventional behaviour of
// switching both to host values on entry and back on exit — on Carmel that
// alone costs ~2,700 cycles per trap.
func (lp *LZProc) chargeModuleEntry(k *kernel.Kernel) {
	c := k.CPU
	if lp.lz.Hyp.Opts.DisableRetainRegs && k.EL == arm64.EL2 {
		hcr, vttbr := c.Sys(arm64.HCREL2), c.Sys(arm64.VTTBREL2)
		c.WriteSysReg(arm64.HCREL2, cpu.HCRE2H) // host configuration
		c.WriteSysReg(arm64.VTTBREL2, 0)
		c.SetSys(arm64.HCREL2, hcr) // values restored on exit below
		c.SetSys(arm64.VTTBREL2, vttbr)
		lp.pendingWorldRestore = true
	}
	c.Charge(16 * k.Prof.MemAccessCost)
	if k.EL == arm64.EL2 {
		c.ReadSysReg(arm64.ESREL2)
	} else {
		c.ReadSysReg(arm64.ESREL1)
	}
	c.Charge(k.Prof.HandlerDispatchCost + k.Prof.ModuleForwardCost)
}

func (lp *LZProc) chargeModuleExit(k *kernel.Kernel) {
	c := k.CPU
	if lp.pendingWorldRestore {
		lp.pendingWorldRestore = false
		c.WriteSysReg(arm64.HCREL2, c.Sys(arm64.HCREL2))
		c.WriteSysReg(arm64.VTTBREL2, c.Sys(arm64.VTTBREL2))
	}
	c.Charge(16 * k.Prof.MemAccessCost)
}

// handleSyscall services a syscall from a LightZone process (either the
// API library's direct HVC fast path, or a raw SVC forwarded by the stub).
func (lz *LightZone) handleSyscall(k *kernel.Kernel, t *kernel.Thread, lp *LZProc, forwarded bool) error {
	lp.chargeModuleEntry(k)
	k.Syscalls++
	c := k.CPU
	num := int(c.R(8))
	lz.Trace.Record(c.Cycles, trace.KindSyscall, t.Proc.PID, "nr=%d forwarded=%v", num, forwarded)
	args := [6]uint64{c.R(0), c.R(1), c.R(2), c.R(3), c.R(4), c.R(5)}
	ret, err := k.DoSyscall(t, num, args)
	if err != nil {
		return err
	}
	c.SetR(0, ret)
	if t.Proc.Exited || t.State == kernel.ThreadExited {
		return nil
	}
	k.CheckSignals(t) // signal contexts carry TTBR0 and PAN (§6)
	lp.chargeModuleExit(k)
	return c.ERET()
}

// handleForwardedSync reconstructs the original EL1 exception from the
// banked ESR_EL1/FAR_EL1 and dispatches it.
func (lz *LightZone) handleForwardedSync(k *kernel.Kernel, t *kernel.Thread, lp *LZProc) error {
	c := k.CPU
	orig := cpu.UnpackESR(c.ReadSysReg(arm64.ESREL1), c.ReadSysReg(arm64.FAREL1))
	switch orig.Class {
	case cpu.ECSVC:
		return lz.handleSyscall(k, t, lp, true)
	case cpu.ECDataAbortSame, cpu.ECDataAbortLower, cpu.ECInsAbortSame, cpu.ECInsAbortLower:
		return lp.backend.HandleFault(k, t, lp, orig)
	case cpu.ECUnknown:
		lp.violation(t, fmt.Sprintf("undefined instruction at %#x", c.Sys(arm64.ELREL1)))
		return nil
	default:
		lp.violation(t, fmt.Sprintf("unexpected forwarded exception %v", orig.Class))
		return nil
	}
}

// handleStage2Fault services a stage-2 abort from a LightZone process: a
// fake IPA with no mapping. With eager stage-2 mapping this only happens
// under the DisableEagerS2 ablation or for genuinely illegal accesses.
func (lz *LightZone) handleStage2Fault(k *kernel.Kernel, t *kernel.Thread, lp *LZProc, s cpu.Syndrome) error {
	lp.chargeModuleEntry(k)
	page := s.IPA &^ mem.IPA(mem.PageMask)
	real, ok := lp.fake.RealOf(page)
	if !ok {
		// Interior page of a 2MB fake block.
		blockFk := s.IPA &^ mem.IPA(mem.HugePageMask)
		if blockReal, blockOK := lp.fake.RealOf(blockFk); blockOK {
			real = blockReal + mem.PA(page-blockFk)
			ok = true
		}
	}
	if !ok {
		lp.violation(t, fmt.Sprintf("stage-2 abort on unknown fake address %v", s.IPA))
		return nil
	}
	if err := lp.s2MapData(page, real); err != nil {
		return err
	}
	lp.chargeModuleExit(k)
	return k.CPU.ERET()
}

// violation terminates a compromised process (§4.2: "we detect
// unauthorized access to protected memory domains and terminate the
// compromised process").
func (lp *LZProc) violation(t *kernel.Thread, msg string) {
	lp.Violations++
	lp.lz.Trace.Record(lp.kern.CPU.Cycles, trace.KindViolation, t.Proc.PID, "%s", msg)
	t.Proc.Kill("lightzone violation: " + msg)
}

// EnterProcess places p's main thread into LightZone directly, without the
// lz_enter syscall round trip. It exists for setup-style tooling (memory
// overhead accounting, examples that drive the module from Go); emulated
// applications use the SysLZEnter syscall.
func (lz *LightZone) EnterProcess(k *kernel.Kernel, p *kernel.Process, allowScalable bool, policy SanPolicy) (*LZProc, error) {
	if _, err := lz.enter(k, p.MainThread(), allowScalable, policy); err != nil {
		return nil, err
	}
	lp, ok := p.LZ.(*LZProc)
	if !ok {
		return nil, fmt.Errorf("enter failed for pid %d", p.PID)
	}
	return lp, nil
}
