package core

import "lightzone/internal/mem"

// FakePhys implements the fake-physical-address randomization layer of
// §5.1.2: a one-to-one mapping between real physical pages and sequentially
// allocated fake physical pages. The stage-1 page tables of a TTBR-mode
// LightZone process map virtual addresses to fake addresses, and the
// process's stage-2 table maps fake addresses to real ones, so a process
// that reads its own PTEs (which stage-2 exposes read-only) learns nothing
// about real DRAM layout — closing the Rowhammer-assistance channel the
// paper describes.
type FakePhys struct {
	// Identity disables the layer (the paper's "intuitive" translation,
	// kept as an ablation).
	Identity bool

	next     uint64
	realToFk map[mem.PA]mem.IPA
	fkToReal map[mem.IPA]mem.PA
}

// FakeBase is the start of the fake physical region. The paper's example
// allocates fake pages sequentially from small addresses (0x1000, 0x2000,
// ...); here the sequence starts in a high IPA region disjoint from real
// physical memory, because the process's stage-2 table must simultaneously
// identity-map its stage-1 table frames (read-only) at their real
// addresses — the two ranges must not collide.
const FakeBase = uint64(1) << 34 // 16GB, well above modelled DRAM, < 2^39 IPA

// NewFakePhys creates an empty mapping. Fake pages are allocated
// sequentially: the first fault gets FakeBase+0x1000, the second
// FakeBase+0x2000, ... (cf. the paper's 0x1000/0x2000 example).
func NewFakePhys(identity bool) *FakePhys {
	return &FakePhys{
		Identity: identity,
		next:     FakeBase + 0x1000,
		realToFk: make(map[mem.PA]mem.IPA),
		fkToReal: make(map[mem.IPA]mem.PA),
	}
}

// FakeOf returns the fake page for a real page, allocating sequentially on
// first use. Real and fake addresses are page-aligned.
func (f *FakePhys) FakeOf(pa mem.PA) mem.IPA {
	if f.Identity {
		return mem.IPA(pa)
	}
	base := pa &^ mem.PA(mem.PageMask)
	if fk, ok := f.realToFk[base]; ok {
		return fk
	}
	fk := mem.IPA(f.next)
	f.next += mem.PageSize
	f.realToFk[base] = fk
	f.fkToReal[fk] = base
	return fk
}

// FakeOfBlock allocates a 2MB-aligned fake region for a 2MB real block
// (huge-page mappings, §9.3).
func (f *FakePhys) FakeOfBlock(pa mem.PA) mem.IPA {
	if f.Identity {
		return mem.IPA(pa)
	}
	base := pa &^ mem.PA(mem.HugePageMask)
	if fk, ok := f.realToFk[base]; ok {
		return fk
	}
	// Align the sequential allocator up to a 2MB boundary.
	next := (f.next + mem.HugePageMask) &^ uint64(mem.HugePageMask)
	fk := mem.IPA(next)
	f.next = next + mem.HugePageSize
	f.realToFk[base] = fk
	f.fkToReal[fk] = base
	return fk
}

// RealOf resolves a fake page back to its real page.
func (f *FakePhys) RealOf(fk mem.IPA) (mem.PA, bool) {
	if f.Identity {
		return mem.PA(fk), true
	}
	pa, ok := f.fkToReal[fk&^mem.IPA(mem.PageMask)]
	return pa, ok
}

// Len returns the number of live translations.
func (f *FakePhys) Len() int { return len(f.realToFk) }

// Drop removes the mapping for a real page (page freed/unmapped).
func (f *FakePhys) Drop(pa mem.PA) {
	base := pa &^ mem.PA(mem.PageMask)
	if fk, ok := f.realToFk[base]; ok {
		delete(f.realToFk, base)
		delete(f.fkToReal, fk)
	}
}

// Clone duplicates the translation state for a forked process: same
// sequential-allocation cursor, same real<->fake pairs, so the child's
// future allocations reproduce exactly what a cold-booted twin would hand
// out.
func (f *FakePhys) Clone() *FakePhys {
	f2 := &FakePhys{
		Identity: f.Identity,
		next:     f.next,
		realToFk: make(map[mem.PA]mem.IPA, len(f.realToFk)),
		fkToReal: make(map[mem.IPA]mem.PA, len(f.fkToReal)),
	}
	for pa, fk := range f.realToFk {
		f2.realToFk[pa] = fk
	}
	for fk, pa := range f.fkToReal {
		f2.fkToReal[fk] = pa
	}
	return f2
}
