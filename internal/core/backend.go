package core

import (
	"fmt"
	"sort"

	"lightzone/internal/cpu"
	"lightzone/internal/kernel"
	"lightzone/internal/mem"
)

// Backend is one isolation substrate behind the LightZone module API. The
// module owns everything substrate-invariant — entering the per-process VM,
// the TTBR1 trap stub, syscall forwarding, demand paging, the sanitizer and
// W-xor-X machinery, observer chokepoints — while the backend owns how
// domains are named, how memory is attached to them (lz_prot), how the
// running context switches between them, and how a cross-domain access is
// classified when it faults:
//
//   - lightzone: the paper's TTBR0-switch substrate — per-domain stage-1
//     tables, TTBR1-mapped secure call gates, GateTab/TTBRTab validation.
//   - overlay: a Complets/FEAT_S1POE-style permission-overlay substrate —
//     one table, per-domain PTE keys, domain entry is an untrapped POR_EL1
//     write, cross-domain access faults at the overlay check.
//   - granule: a NanoZone/CCA-style delegated-granule substrate — zone
//     memory is delegated and assigned granule by granule, domain entry is
//     a realm-style trap into the module, cross-domain access is classified
//     against granule ownership before any stage-1 repair is considered.
//
// Backends must preserve the module's observer-event vocabulary (lz_alloc,
// lz_prot, lz_free, ...) so chokepoint verification and trace tooling work
// unchanged across substrates.
type Backend interface {
	// Name is the registry key ("lightzone", "overlay", "granule").
	Name() string
	// Install sets up the backend's per-process structures at lz_enter
	// time (after the trap stub, before the base table is populated).
	Install(lp *LZProc) error
	// Alloc implements lz_alloc: create a new domain and return its id.
	Alloc(lp *LZProc) (int, error)
	// Free implements lz_free: destroy a domain.
	Free(lp *LZProc, domain int) error
	// Prot implements lz_prot: attach a region to a domain.
	Prot(lp *LZProc, addr mem.VA, length uint64, domain, perm int) error
	// MapGatePgt implements lz_map_gate_pgt where the backend has call
	// gates; gateless backends return an error.
	MapGatePgt(lp *LZProc, pgt, gate int) error
	// HandleFault services a forwarded stage-1 fault, classifying it
	// under the backend's protection model before (or instead of) the
	// substrate-invariant demand-paging path.
	HandleFault(k *kernel.Kernel, t *kernel.Thread, lp *LZProc, s cpu.Syndrome) error
	// HandleHVC gets first refusal on hypervisor-call immediates the
	// shared dispatcher does not recognize (backend-private entry paths).
	// It returns handled=false to fall through to the violation path.
	HandleHVC(k *kernel.Kernel, t *kernel.Thread, lp *LZProc, s cpu.Syndrome) (bool, error)
}

// backendFactories is the registry of isolation substrates, populated by
// init() in each backend's file.
var backendFactories = map[string]func() Backend{}

// RegisterBackend adds a backend constructor to the registry.
func RegisterBackend(name string, factory func() Backend) {
	if _, dup := backendFactories[name]; dup {
		panic("core: duplicate backend " + name)
	}
	backendFactories[name] = factory
}

// Backends returns the registered backend names, sorted.
func Backends() []string {
	out := make([]string, 0, len(backendFactories))
	for name := range backendFactories {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// NewBackend constructs a registered backend by name.
func NewBackend(name string) (Backend, error) {
	factory, ok := backendFactories[name]
	if !ok {
		return nil, fmt.Errorf("unknown isolation backend %q (have %v)", name, Backends())
	}
	return factory(), nil
}

// SetBackend selects the isolation substrate for processes that enter
// after the call. Live processes keep the backend they entered with.
func (lz *LightZone) SetBackend(name string) error {
	b, err := NewBackend(name)
	if err != nil {
		return err
	}
	lz.backend = b
	return nil
}

// BackendName returns the module's selected substrate name.
func (lz *LightZone) BackendName() string { return lz.backend.Name() }

// Backend returns the substrate the process entered with.
func (lp *LZProc) Backend() Backend { return lp.backend }

// BackendName returns the name of the substrate the process entered with.
func (lp *LZProc) BackendName() string { return lp.backend.Name() }
