package core

import (
	"sort"

	"lightzone/internal/mem"
)

// Introspection accessors for the static verifier (internal/verify) and
// inspection tooling. Everything here is observation-only: no cycle charges,
// no TLB probes, no demand mapping — reading a machine through this API
// leaves its measured state bit-identical.

// StubBase returns the TTBR1 VA of the trap-forwarding vector page.
func StubBase() uint64 { return uint64(stubVA) }

// GateTabBase returns the TTBR1 VA of GateTab[0].
func GateTabBase() uint64 { return uint64(gateTabVA) }

// TTBRTabBase returns the TTBR1 VA of TTBRTab[0].
func TTBRTabBase() uint64 { return uint64(ttbrTabVA) }

// GateCodeWords returns the canonical instruction words of the call gate
// for a gate id — the sequence installGates writes. Verifiers compare the
// installed slot bytes against this ground truth.
func GateCodeWords(gateID int) ([]uint32, error) { return buildGateCode(gateID) }

// Procs returns every live LightZone process, sorted by PID so audits are
// deterministic.
func (lz *LightZone) Procs() []*LZProc {
	out := make([]*LZProc, 0, len(lz.procs))
	for _, lp := range lz.procs {
		out = append(out, lp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].proc.PID < out[j].proc.PID })
	return out
}

// PID returns the process identifier.
func (lp *LZProc) PID() int { return lp.proc.PID }

// Name returns the process name.
func (lp *LZProc) Name() string { return lp.proc.Name }

// AllowScalable reports whether lz_enter enabled TTBR-based isolation.
func (lp *LZProc) AllowScalable() bool { return lp.allowScalable }

// PageTableIDs returns the live domain page-table ids in ascending order.
func (lp *LZProc) PageTableIDs() []int {
	ids := make([]int, 0, len(lp.pgts))
	for id := range lp.pgts {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// TTBR1Table returns the process's TTBR1 stage-1 table (stub, gates,
// GateTab, TTBRTab).
func (lp *LZProc) TTBR1Table() *mem.Stage1 { return lp.ttbr1 }

// TTBR1Val returns the TTBR1_EL1 value installed for the process.
func (lp *LZProc) TTBR1Val() uint64 { return lp.ttbr1Val }

// Fake returns the fake-physical translation layer.
func (lp *LZProc) Fake() *FakePhys { return lp.fake }

// GateInfo describes one registered call gate.
type GateInfo struct {
	ID    int
	Entry uint64 // legitimate return address (GateTab ENTRY)
	PGTID int    // page table the gate switches to
}

// ExecCleanPages returns the page bases currently in the sanitized-
// executable state, ascending. These are exactly the pages the runtime
// proved free of Table 3 instructions; the verifier re-proves the claim.
func (lp *LZProc) ExecCleanPages() []mem.VA {
	var out []mem.VA
	for va, st := range lp.exec {
		if st == execClean {
			out = append(out, va)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
