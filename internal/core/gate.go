package core

import (
	"fmt"
	"sort"

	"lightzone/internal/arm64"
	"lightzone/internal/mem"
)

// Hypervisor-call immediates used by the LightZone user-space API library
// and the trap stub.
const (
	// HVCSyscall is the API library's syscall fast path: arguments in
	// x0..x5, number in x8, a single HVC straight to the kernel module
	// (no EL1 self-trap).
	HVCSyscall = 0x4C00
	// HVCForwardSync is issued by the VBAR_EL1 trap stub to forward an
	// exception (raw SVC, stage-1 page fault, undefined instruction)
	// that hardware delivered to the process's own kernel mode.
	HVCForwardSync = 0x4C01
	// HVCForwardIRQ forwards an interrupt.
	HVCForwardIRQ = 0x4C02
	// HVCViolation reports a failed call-gate check (illegal TTBR0 or
	// entry); the module terminates the process.
	HVCViolation = 0x4C03
)

// gateVA returns the TTBR1 virtual address of gate i's code block.
func gateVA(i int) uint64 { return uint64(gateCodeVA) + uint64(i)*gateSlotLen }

// gateTabEntryVA returns the TTBR1 VA of GateTab[i] (16 bytes per entry).
func gateTabEntryVA(i int) uint64 { return uint64(gateTabVA) + uint64(i)*16 }

// MaxGates bounds call-gate identifiers. One GateTab page holds 256
// entries; gates and their code pages are allocated on registration.
const MaxGates = 1024

// buildGateCode assembles the secure call gate for a specific gate id
// (Figure 2). The gate is TTBR1-mapped so its integrity does not depend on
// the attacker-influenced TTBR0. Phase ① looks up GateTab/TTBRTab and
// installs the new TTBR0; phase ② re-queries both tables and compares the
// in-register TTBR0 and link register against them, catching arbitrary
// updates, then returns through an indirect jump to the validated entry.
func buildGateCode(gateID int) ([]uint32, error) {
	if gateID < 0 || gateID >= MaxGates {
		return nil, fmt.Errorf("gate id %d out of range [0, %d)", gateID, MaxGates)
	}
	a := arm64.NewAsm()
	base := gateVA(gateID)
	// adrTo emits ADR rd, <absolute target> using the gate's fixed
	// load address (gates live at fixed TTBR1 addresses).
	adrTo := func(rd uint8, target uint64) {
		a.Emit(arm64.ADR(rd, int64(target)-int64(base)-int64(a.Len())))
	}
	// ① switch phase
	adrTo(16, gateTabEntryVA(gateID))       // x16 = &GateTab[gateID]
	a.Emit(arm64.LDRImm(17, 16, 8, 3))      // x17 = PGTID
	adrTo(18, uint64(ttbrTabVA))            // x18 = TTBRTab base
	a.Emit(arm64.ADDShifted(18, 18, 17, 3)) // x18 = &TTBRTab[PGTID]
	a.Emit(arm64.LDRImm(17, 18, 0, 3))      // x17 = new TTBR0
	a.Emit(arm64.MSR(arm64.TTBR0EL1, 17))
	a.Emit(arm64.WordISB)
	// ② check phase: no indirect jump between MSR and RET, so the check
	// always executes once TTBR0 changed. Every address used below is
	// re-materialized PC-relatively from the gate's own (TTBR1-protected)
	// code — an attacker who jumps into the middle of the gate with
	// crafted registers cannot redirect the re-queries to memory it
	// controls (the gate id is a constant, so its range is validated at
	// gate-construction time).
	adrTo(16, gateTabEntryVA(gateID))  // requery GateTab from scratch
	a.Emit(arm64.LDRImm(19, 16, 0, 3)) // re-read ENTRY
	a.Emit(arm64.CMPReg(30, 19))       // link register must be the entry
	a.BCond(arm64.CondNE, "fail")
	a.Emit(arm64.LDRImm(17, 16, 8, 3))      // re-read PGTID
	adrTo(18, uint64(ttbrTabVA))            // rebuild &TTBRTab[PGTID]
	a.Emit(arm64.ADDShifted(18, 18, 17, 3)) // &TTBRTab[PGTID]
	a.Emit(arm64.MRS(19, arm64.TTBR0EL1))   // in-register TTBR0
	a.Emit(arm64.LDRImm(20, 18, 0, 3))      // re-read TTBRTab[PGTID]
	a.Emit(arm64.CMPReg(19, 20))
	a.BCond(arm64.CondNE, "fail")
	a.Emit(arm64.RET(30))
	a.Label("fail")
	a.Emit(arm64.HVC(HVCViolation))
	words, err := a.Assemble()
	if err != nil {
		return nil, err
	}
	if len(words)*arm64.InsnBytes > gateSlotLen {
		return nil, fmt.Errorf("gate code exceeds slot: %d bytes", len(words)*arm64.InsnBytes)
	}
	return words, nil
}

// EmitGateSwitch expands the lz_switch_to_ttbr_gate(gate) macro into an
// application program: load the gate address, set the link register to the
// legitimate entry (the address immediately after the macro), and jump to
// the gate. label must be unique within the assembly. It returns the label
// whose resolved address is the gate's ENTRY, to be registered in GateTab.
func EmitGateSwitch(a *arm64.Asm, gateID int, label string) string {
	entry := "lz_entry_" + label
	a.MovImm(17, gateVA(gateID))
	a.ADR(30, entry)
	a.Emit(arm64.BR(17))
	a.Label(entry)
	return entry
}

// EmitSetPAN expands set_pan(v) (Listing 1): a single MSR PAN immediate.
func EmitSetPAN(a *arm64.Asm, v uint8) {
	a.Emit(arm64.MSRPan(v))
}

// installGates writes the gate code blocks and GateTab for the registered
// entries, and maps the stub/gate/table pages into the process's TTBR1
// table. Called from lz_enter.
func (lp *LZProc) installGates() error {
	pm := lp.kern.PM

	// GateTab page (256 entries suffice per page; allocate enough pages
	// for the registered ids).
	maxID := 0
	for id := range lp.gateEntries {
		if id > maxID {
			maxID = id
		}
	}
	if maxID >= MaxGates {
		return fmt.Errorf("gate id %d exceeds MaxGates", maxID)
	}
	gateTabPages := maxID*16/mem.PageSize + 1
	gateCodePages := maxID*gateSlotLen/mem.PageSize + 1

	first := true
	for pg := 0; pg < gateTabPages; pg++ {
		pa, err := pm.AllocFrame()
		if err != nil {
			return err
		}
		if first {
			lp.gateTabPA = pa
			first = false
		}
		if err := lp.mapTTBR1Page(gateTabVA+mem.VA(pg*mem.PageSize), pa, mem.AttrAPRO|mem.AttrPXN|mem.AttrUXN); err != nil {
			return err
		}
	}
	first = true
	for pg := 0; pg < gateCodePages; pg++ {
		pa, err := pm.AllocFrame()
		if err != nil {
			return err
		}
		if first {
			lp.gateCode = pa
			first = false
		}
		lp.gatePages++
		if err := lp.mapTTBR1Page(gateCodeVA+mem.VA(pg*mem.PageSize), pa, mem.AttrAPRO|mem.AttrUXN); err != nil {
			return err
		}
	}

	for id, entry := range lp.gateEntries {
		words, err := buildGateCode(id)
		if err != nil {
			return err
		}
		off := mem.PA(id * gateSlotLen)
		if err := pm.Write(lp.gateCode+off, arm64.WordsToBytes(words)); err != nil {
			return err
		}
		if err := pm.WriteU64(lp.gateTabPA+mem.PA(id*16), entry); err != nil {
			return err
		}
		// PGTID defaults to 0 (the base table) until lz_map_gate_pgt.
		if err := pm.WriteU64(lp.gateTabPA+mem.PA(id*16+8), 0); err != nil {
			return err
		}
	}
	return nil
}

// MapGatePgt implements lz_map_gate_pgt (Table 2): associate a call gate
// with the stage-1 page table it switches to.
func (lp *LZProc) MapGatePgt(pgt, gate int) error {
	if _, ok := lp.gateEntries[gate]; !ok {
		return fmt.Errorf("lz_map_gate_pgt: gate %d not registered", gate)
	}
	d, ok := lp.pgts[pgt]
	if !ok {
		return fmt.Errorf("lz_map_gate_pgt: no page table %d", pgt)
	}
	lp.gatePgt[gate] = pgt
	if err := lp.kern.PM.WriteU64(lp.gateTabPA+mem.PA(gate*16+8), uint64(pgt)); err != nil {
		return err
	}
	// Make sure TTBRTab carries the table's TTBR value.
	if err := lp.writeTTBRTab(pgt, d.TTBR()); err != nil {
		return err
	}
	// The gate code bytes are unchanged but the tables they consult are
	// not; drop any cached decode of the slot so the remap is never served
	// from pre-remap pipeline state (host cache only, no TLB effect).
	lp.kern.CPU.InvalidateCode(mem.VA(gateVA(gate)))
	lp.traceCodeInval(mem.VA(gateVA(gate)), "lz_map_gate_pgt remap")
	lp.kern.CPU.Charge(2 * lp.kern.Prof.MemAccessCost)
	lp.lz.observe("lz_map_gate_pgt", lp)
	return nil
}

// writeTTBRTab stores the TTBR value for a page-table id, allocating and
// mapping TTBRTab pages on demand (512 ids per page; the 2^16 id space
// spans 128 pages, allocated sparsely). Ids outside [0, MaxPageTables) are
// rejected outright: the table's TTBR1 window is exactly 512KB, and an id
// past it would silently map frames over whatever the layout places next —
// the failure mode of the pre-free-list monotonic id allocator.
func (lp *LZProc) writeTTBRTab(pgtID int, ttbr uint64) error {
	if pgtID < 0 || pgtID >= MaxPageTables {
		return fmt.Errorf("ttbrtab: page-table id %d outside the %d-entry window", pgtID, MaxPageTables)
	}
	page := pgtID / 512
	for len(lp.ttbrTabPA) <= page {
		pa, err := lp.kern.PM.AllocFrame()
		if err != nil {
			return err
		}
		idx := len(lp.ttbrTabPA)
		if err := lp.mapTTBR1Page(ttbrTabVA+mem.VA(idx*mem.PageSize), pa, mem.AttrAPRO|mem.AttrPXN|mem.AttrUXN); err != nil {
			return err
		}
		lp.ttbrTabPA = append(lp.ttbrTabPA, pa)
	}
	return lp.kern.PM.WriteU64(lp.ttbrTabPA[page]+mem.PA(pgtID%512*8), ttbr)
}

// mapTTBR1Page maps a kernel-owned page into the process's TTBR1 table
// (global mapping) and exposes it through stage-2. The attribute set keeps
// these pages read-only to the process; only the gate code page is
// executable.
func (lp *LZProc) mapTTBR1Page(va mem.VA, pa mem.PA, attrs uint64) error {
	fk := lp.fake.FakeOf(pa)
	if err := lp.ttbr1.Map(va, mem.PA(fk), attrs); err != nil {
		return err
	}
	// Read-only at stage-2: the process must never write gate state.
	return lp.vm.S2.Map(fk, pa, mem.S2APRead)
}

// GateCodeBase returns the virtual address of gate slot 0; generated
// programs compute gate addresses as GateCodeBase() + id*GateSlotLen.
func GateCodeBase() uint64 { return uint64(gateCodeVA) }

// GateSlotLen is the byte size of one call-gate slot.
const GateSlotLen = gateSlotLen

// Gates returns the registered call gates in id order (observation-only;
// lives here because gate state is confined to this file).
func (lp *LZProc) Gates() []GateInfo {
	out := make([]GateInfo, 0, len(lp.gateEntries))
	for id, entry := range lp.gateEntries {
		out = append(out, GateInfo{ID: id, Entry: entry, PGTID: lp.gatePgt[id]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// GateTabPA returns the physical base of the first GateTab page.
func (lp *LZProc) GateTabPA() mem.PA { return lp.gateTabPA }

// GateCodePA returns the physical base of the first gate code page.
func (lp *LZProc) GateCodePA() mem.PA { return lp.gateCode }

// TTBRTabPages returns the physical frames backing TTBRTab, in page order.
func (lp *LZProc) TTBRTabPages() []mem.PA {
	out := make([]mem.PA, len(lp.ttbrTabPA))
	copy(out, lp.ttbrTabPA)
	return out
}

// GateListing disassembles the generated call gate for a gate id — the
// security-critical code sequence of §6.2, for inspection and debugging.
func GateListing(gateID int) (string, error) {
	words, err := buildGateCode(gateID)
	if err != nil {
		return "", err
	}
	return arm64.DisassembleAll(words), nil
}

// cloneGateState copies the call-gate machinery's state into a forked
// process clone. The gate code, GateTab, and TTBRTab frames live in (COW
// shared) physical memory; only the Go-side bookkeeping moves. Confined to
// this file by tools/lint.
func (lp *LZProc) cloneGateState(lp2 *LZProc) {
	lp2.gateTabPA = lp.gateTabPA
	lp2.gateCode = lp.gateCode
	lp2.gatePages = lp.gatePages
	lp2.ttbrTabPA = append([]mem.PA(nil), lp.ttbrTabPA...)
	lp2.gatePgt = make(map[int]int, len(lp.gatePgt))
	for gate, pgt := range lp.gatePgt {
		lp2.gatePgt[gate] = pgt
	}
}
