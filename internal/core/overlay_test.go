package core

import (
	"strings"
	"testing"

	"lightzone/internal/arm64"
	"lightzone/internal/kernel"
	"lightzone/internal/mem"
)

// TestMultiTableOverlays reproduces §6.1's JIT scenario: the same domain
// page attached to two page tables with different permission overlays —
// writable (not executable) via table 1, executable (not writable) via
// table 2 — so the process can flip between "generate" and "run" views by
// switching TTBR0, never holding W and X simultaneously.
func TestMultiTableOverlays(t *testing.T) {
	r := newRig(t)
	const jit = uint64(0x4900_0000)
	a := arm64.NewAsm()
	svcCall(a, SysLZEnter, 1, uint64(SanTTBR))
	hvcCall(a, kernel.SysMmap, jit, mem.PageSize, uint64(kernel.ProtRead|kernel.ProtWrite|kernel.ProtExec))
	hvcCall(a, SysLZAlloc) // 1: the writer view
	hvcCall(a, SysLZAlloc) // 2: the executor view
	hvcCall(a, SysLZMapGatePgt, 1, 0)
	hvcCall(a, SysLZMapGatePgt, 2, 1)
	hvcCall(a, SysLZProt, jit, mem.PageSize, 1, PermRead|PermWrite)
	hvcCall(a, SysLZProt, jit, mem.PageSize, 2, PermRead|PermExec)

	// Writer view: generate {movz x0,#33; ret}.
	e0 := EmitGateSwitch(a, 0, "writer")
	a.MovImm(1, jit)
	a.MovImm(2, uint64(arm64.MOVZ(0, 33, 0)))
	a.Emit(arm64.STRImm(2, 1, 0, 2))
	a.MovImm(2, uint64(arm64.RET(30)))
	a.Emit(arm64.STRImm(2, 1, 4, 2))

	// Executor view: run it.
	e1 := EmitGateSwitch(a, 1, "executor")
	a.MovImm(16, jit)
	a.Emit(arm64.BLR(16))
	a.Emit(arm64.MOVReg(19, 0))
	hvcCall(a, kernel.SysExit, 0)

	off0, err := a.Offset(e0)
	if err != nil {
		t.Fatal(err)
	}
	off1, err := a.Offset(e1)
	if err != nil {
		t.Fatal(err)
	}
	p := r.run(t, a, []GateEntry{
		{GateID: 0, Entry: uint64(off0)},
		{GateID: 1, Entry: uint64(off1)},
	})
	if p.Killed {
		t.Fatalf("killed: %s", p.KillMsg)
	}
	if r.m.CPU.R(19) != 33 {
		t.Errorf("generated function returned %d", r.m.CPU.R(19))
	}
}

// TestOverlayViewsEnforced: writing through the executor view (which lacks
// PermWrite) must terminate the process, and executing through the writer
// view (which lacks PermExec) must too. Gates: 0 -> writer table (seed
// site), 1 -> executor table, 2 -> writer table (attack site).
func TestOverlayViewsEnforced(t *testing.T) {
	const jit = uint64(0x4900_0000)
	for _, tc := range []struct {
		name       string
		attackGate int
		attack     func(a *arm64.Asm)
		expect     string
	}{
		{"write via exec view", 1, func(a *arm64.Asm) {
			a.MovImm(1, jit)
			a.MovImm(2, 7)
			a.Emit(arm64.STRImm(2, 1, 0, 3))
		}, "read-only domain page"},
		{"exec via write view", 2, func(a *arm64.Asm) {
			a.MovImm(16, jit)
			a.Emit(arm64.BLR(16))
		}, "execution of non-executable"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r := newRig(t)
			a := arm64.NewAsm()
			svcCall(a, SysLZEnter, 1, uint64(SanTTBR))
			hvcCall(a, kernel.SysMmap, jit, mem.PageSize, uint64(kernel.ProtRead|kernel.ProtWrite|kernel.ProtExec))
			hvcCall(a, SysLZAlloc) // 1: writer
			hvcCall(a, SysLZAlloc) // 2: executor
			hvcCall(a, SysLZMapGatePgt, 1, 0)
			hvcCall(a, SysLZMapGatePgt, 2, 1)
			hvcCall(a, SysLZMapGatePgt, 1, 2)
			hvcCall(a, SysLZProt, jit, mem.PageSize, 1, PermRead|PermWrite)
			hvcCall(a, SysLZProt, jit, mem.PageSize, 2, PermRead|PermExec)
			// Seed benign content through the writer view.
			e0 := EmitGateSwitch(a, 0, "seed")
			a.MovImm(1, jit)
			a.MovImm(2, uint64(arm64.RET(30)))
			a.Emit(arm64.STRImm(2, 1, 0, 2))
			// Attack through the selected view.
			e1 := EmitGateSwitch(a, tc.attackGate, "atk")
			tc.attack(a)
			hvcCall(a, kernel.SysExit, 0)

			off0, err := a.Offset(e0)
			if err != nil {
				t.Fatal(err)
			}
			off1, err := a.Offset(e1)
			if err != nil {
				t.Fatal(err)
			}
			p := r.run(t, a, []GateEntry{
				{GateID: 0, Entry: uint64(off0)},
				{GateID: tc.attackGate, Entry: uint64(off1)},
			})
			if !p.Killed || !strings.Contains(p.KillMsg, tc.expect) {
				t.Errorf("killed=%v msg=%q want %q", p.Killed, p.KillMsg, tc.expect)
			}
		})
	}
}

// TestDualViewTOCTTOUBlocked is the regression test for the multi-view
// sanitizer bypass: execute a benign page through the executor view, write
// a sensitive instruction through the WRITER view (a different page table
// — no fault on the executable alias in a naive design), then execute
// again. Break-before-make across all views forces re-sanitization.
func TestDualViewTOCTTOUBlocked(t *testing.T) {
	r := newRig(t)
	const jit = uint64(0x4900_0000)
	a := arm64.NewAsm()
	svcCall(a, SysLZEnter, 1, uint64(SanTTBR))
	hvcCall(a, kernel.SysMmap, jit, mem.PageSize, uint64(kernel.ProtRead|kernel.ProtWrite|kernel.ProtExec))
	hvcCall(a, SysLZAlloc) // 1: writer
	hvcCall(a, SysLZAlloc) // 2: executor
	hvcCall(a, SysLZMapGatePgt, 1, 0)
	hvcCall(a, SysLZMapGatePgt, 2, 1)
	hvcCall(a, SysLZMapGatePgt, 1, 2)
	hvcCall(a, SysLZMapGatePgt, 2, 3)
	hvcCall(a, SysLZProt, jit, mem.PageSize, 1, PermRead|PermWrite)
	hvcCall(a, SysLZProt, jit, mem.PageSize, 2, PermRead|PermExec)

	e0 := EmitGateSwitch(a, 0, "w1")
	a.MovImm(1, jit)
	a.MovImm(2, uint64(arm64.RET(30)))
	a.Emit(arm64.STRImm(2, 1, 0, 2)) // benign
	e1 := EmitGateSwitch(a, 1, "x1")
	a.MovImm(16, jit)
	a.Emit(arm64.BLR(16)) // sanitized + executed
	e2 := EmitGateSwitch(a, 2, "w2")
	a.MovImm(1, jit)
	a.MovImm(2, uint64(arm64.MSR(arm64.TTBR0EL1, 9))) // inject via writer view
	a.Emit(arm64.STRImm(2, 1, 0, 2))
	e3 := EmitGateSwitch(a, 3, "x2") // a fresh gate for the second executor site
	a.MovImm(16, jit)
	a.Emit(arm64.BLR(16)) // must die in re-sanitization
	hvcCall(a, kernel.SysExit, 0)

	offs := make(map[string]uint64)
	for _, l := range []string{e0, e1, e2, e3} {
		off, err := a.Offset(l)
		if err != nil {
			t.Fatal(err)
		}
		offs[l] = uint64(off)
	}
	p := r.run(t, a, []GateEntry{
		{GateID: 0, Entry: offs[e0]},
		{GateID: 1, Entry: offs[e1]},
		{GateID: 2, Entry: offs[e2]},
		{GateID: 3, Entry: offs[e3]},
	})
	if !p.Killed || !strings.Contains(p.KillMsg, "sanitizer") {
		t.Fatalf("dual-view TOCTTOU injection not caught by the sanitizer: killed=%v msg=%q", p.Killed, p.KillMsg)
	}
}
