package core

import (
	"fmt"

	"lightzone/internal/arm64"
	"lightzone/internal/cpu"
	"lightzone/internal/kernel"
	"lightzone/internal/mem"
	"lightzone/internal/trace"
)

// HVCGranuleEnter is the granule backend's domain-entry hypervisor call:
// realm-style, the zone id travels in x0 and the module installs the zone's
// translation regime on the application's behalf. There is no call gate —
// the trap boundary itself is the gate.
const HVCGranuleEnter = 0x4C04

func init() {
	RegisterBackend("granule", func() Backend { return granuleBackend{} })
}

// granuleState is the granule backend's per-process delegation tracking.
// It is backend-private: tools/lint confines every access to this file.
type granuleState struct {
	// owner maps a delegated real frame to the zone it is assigned to —
	// the granule state table an RMM would keep.
	owner map[mem.PA]int
	// delegated marks frames that have left the "normal world" pool.
	delegated map[mem.PA]bool
}

// granuleBackend is a NanoZone/CCA-style substrate: each zone is a realm
// with its own stage-1 table, zone memory transitions through explicit
// delegation states (undelegated -> delegated -> assigned-to-zone) one
// granule at a time, and domain entry is a trap into the module
// (HVCGranuleEnter) that installs the zone's table — the most expensive
// switch of the three backends, paying a full trap round trip plus a
// realm-entry dispatch. Cross-zone access is classified against the
// granule ownership table before any stage-1 repair is considered, so a
// foreign access is a granule protection fault even where plain demand
// paging would otherwise have patched the translation.
type granuleBackend struct{}

func (granuleBackend) Name() string { return "granule" }

func (granuleBackend) Install(lp *LZProc) error {
	lp.gran = &granuleState{
		owner:     make(map[mem.PA]int),
		delegated: make(map[mem.PA]bool),
	}
	return nil
}

// Alloc implements lz_alloc as realm creation: a fresh stage-1 table
// populated like a lightzone domain table, plus a realm-descriptor setup
// charge at hypervisor-dispatch cost. No TTBRTab entry exists — only the
// module (the RMM stand-in) ever installs a zone's TTBR.
func (granuleBackend) Alloc(lp *LZProc) (int, error) {
	d, err := lp.newPGT()
	if err != nil {
		return -1, err
	}
	if err := lp.populatePGT(d); err != nil {
		return -1, err
	}
	lp.kern.CPU.Charge(lp.kern.Prof.HypDispatchCost) // realm-descriptor creation
	lp.lz.observe("lz_alloc", lp)
	return d.ID, nil
}

// Free implements lz_free: destroy a zone, undelegating its granules back
// to the shared pool.
func (granuleBackend) Free(lp *LZProc, zone int) error {
	d, ok := lp.pgts[zone]
	if !ok || zone == 0 {
		return fmt.Errorf("lz_free: bad zone %d", zone)
	}
	if cur, ok := lp.currentPGT(); ok && cur == d {
		return fmt.Errorf("lz_free: zone %d is active", zone)
	}
	st := lp.gran
	for pa, z := range st.owner {
		if z != zone {
			continue
		}
		delete(st.owner, pa)
		delete(st.delegated, pa)
	}
	for va, info := range lp.protected {
		delete(info.pgts, zone)
		if len(info.pgts) == 0 {
			delete(lp.protected, va)
		}
	}
	delete(lp.byRoot, d.S1.Root())
	delete(lp.pgts, zone)
	// Mirror the lightzone teardown: the ASID goes back to the kernel
	// allocator (scoped shootdown included) and the zone id to the free
	// list, so realm churn can't exhaust either space.
	lp.kern.FreeASID(lp.vm.VMID, d.S1.ASID())
	lp.freePGT = append(lp.freePGT, zone)
	d.S1.Free()
	lp.lz.observe("lz_free", lp)
	return nil
}

// Prot implements lz_prot as granule delegation: each frame of the region
// is delegated out of the shared pool and assigned to the zone, then mapped
// only in the zone's table. Delegation and assignment are separate
// RMM-style operations, so the cost model charges two trap round trips per
// granule — the most expensive lz_prot of the three backends.
func (granuleBackend) Prot(lp *LZProc, addr mem.VA, length uint64, zone, perm int) error {
	st := lp.gran
	if uint64(addr)&mem.PageMask != 0 {
		return fmt.Errorf("lz_prot: unaligned address %v", addr)
	}
	if length == 0 || mem.IsTTBR1(addr) {
		return fmt.Errorf("lz_prot: bad region")
	}
	d, ok := lp.pgts[zone]
	if !ok || zone == 0 {
		return fmt.Errorf("lz_prot: no zone %d", zone)
	}
	if perm&PermUser != 0 {
		// Zone memory is owned by exactly one realm; the
		// mapped-everywhere PAN-domain shape contradicts delegation.
		return fmt.Errorf("lz_prot: granule zones cannot hold PAN (PermUser) domains")
	}
	end := addr + mem.VA(mem.PageAlignUp(length))
	for va := addr; va < end; {
		pa, kdesc, size, err := lp.kernelFrame(va)
		if err != nil {
			return err
		}
		base := va
		if size == mem.HugePageSize {
			base = mem.VA(uint64(va) &^ uint64(mem.HugePageMask))
		}
		if owner, owned := st.owner[pa]; owned && owner != zone {
			return fmt.Errorf("lz_prot: granule %v already assigned to zone %d", pa, owner)
		}
		st.delegated[pa] = true
		st.owner[pa] = zone
		attrs := overlayAttrs(kdesc, perm) | mem.AttrNG
		lp.unmapEverywhere(base)
		lp.traceCodeInval(base, "lz_prot granule delegate+assign")
		if err := lp.mapIntoPGT(d, base, pa, size, attrs); err != nil {
			return err
		}
		lp.protected[base] = &protInfo{pgts: map[int]int{zone: perm}, perm: perm}
		// Delegate + assign: two RMI-style round trips per granule.
		lp.kern.CPU.Charge(2 * lp.kern.Prof.HypDispatchCost)
		va = base + mem.VA(size)
	}
	lp.lz.observe("lz_prot", lp)
	return nil
}

func (granuleBackend) MapGatePgt(lp *LZProc, pgt, gate int) error {
	return fmt.Errorf("lz_map_gate_pgt: the granule backend has no call gates")
}

// HandleFault consults the granule ownership table before the
// substrate-invariant fault path: an access whose backing frame is assigned
// to a zone other than the current one is a granule protection fault, full
// stop — demand paging never repairs it.
func (granuleBackend) HandleFault(k *kernel.Kernel, t *kernel.Thread, lp *LZProc, s cpu.Syndrome) error {
	st := lp.gran
	if mem.ValidVA(s.VA) && !mem.IsTTBR1(s.VA) {
		// Observation-only resolve of the backing frame: no demand
		// mapping, no charges — undelegated or unmapped pages fall
		// through to the shared path untouched.
		if res, err := lp.proc.AS.S1.Walk(s.VA); err == nil && res.Found {
			pa := res.PA &^ mem.PA(mem.PageMask)
			if res.BlockShift == mem.HugePageShift {
				pa = res.PA &^ mem.PA(mem.HugePageMask)
			}
			if owner, owned := st.owner[pa]; owned {
				cur, haveCur := lp.currentPGT()
				if !haveCur || cur.ID != owner {
					lp.chargeModuleEntry(k)
					k.PageFaults++
					lp.lz.Trace.Record(k.CPU.Cycles, trace.KindPageFault, t.Proc.PID, "%v %v at %v", s.Kind, s.Access, s.VA)
					from := -1
					if haveCur {
						from = cur.ID
					}
					lp.violation(t, fmt.Sprintf("granule protection fault: %v of granule %v assigned to zone %d, accessed from zone %d", s.Access, pa, owner, from))
					return nil
				}
			}
		}
	}
	return lp.lz.handleLZFault(k, t, lp, s)
}

// HandleHVC services HVCGranuleEnter: the realm-style domain switch. The
// zone id arrives in x0; the module validates it and installs the zone's
// stage-1 table, charging a realm-entry dispatch on top of the trap round
// trip.
func (granuleBackend) HandleHVC(k *kernel.Kernel, t *kernel.Thread, lp *LZProc, s cpu.Syndrome) (bool, error) {
	if s.Imm != HVCGranuleEnter {
		return false, nil
	}
	lp.chargeModuleEntry(k)
	c := k.CPU
	zone := int(int64(c.R(0)))
	d, ok := lp.pgts[zone]
	if !ok {
		lp.violation(t, fmt.Sprintf("granule enter: no zone %d", zone))
		return true, nil
	}
	old := c.Sys(arm64.TTBR0EL1)
	c.SetSys(arm64.TTBR0EL1, d.TTBR())
	t.Ctx.TTBR0 = d.TTBR()
	// SetSys bypasses the emulated-MSR path, so record the switch directly.
	lp.lz.Trace.Record(c.Cycles, trace.KindDomainSwitch, t.Proc.PID, "ttbr0 %#x -> %#x (granule enter zone %d)", old, d.TTBR(), zone)
	c.Charge(k.Prof.HypDispatchCost) // realm entry
	lp.chargeModuleExit(k)
	return true, c.ERET()
}

// EmitGranuleEnter expands the granule backend's domain-switch primitive
// into an application program: zone id in x0, then the realm-entry trap.
func EmitGranuleEnter(a *arm64.Asm) {
	a.Emit(arm64.HVC(HVCGranuleEnter))
}

// GranuleOwners returns a copy of the real-frame -> owning-zone table (nil
// for other backends). The granule-state audit cross-checks it against the
// mappings actually installed in each zone's table.
func (lp *LZProc) GranuleOwners() map[mem.PA]int {
	if lp.gran == nil {
		return nil
	}
	out := make(map[mem.PA]int, len(lp.gran.owner))
	for pa, zone := range lp.gran.owner {
		out[pa] = zone
	}
	return out
}

// cloneGranuleState deep-copies the granule backend's delegation tracking
// into a forked process clone (no-op for processes on other backends).
// Confined to this file by tools/lint.
func (lp *LZProc) cloneGranuleState(lp2 *LZProc) {
	if lp.gran == nil {
		return
	}
	st2 := &granuleState{
		owner:     make(map[mem.PA]int, len(lp.gran.owner)),
		delegated: make(map[mem.PA]bool, len(lp.gran.delegated)),
	}
	for pa, zone := range lp.gran.owner {
		st2.owner[pa] = zone
	}
	for pa := range lp.gran.delegated {
		st2.delegated[pa] = true
	}
	lp2.gran = st2
}
