package core

import (
	"testing"

	"lightzone/internal/arm64"
	"lightzone/internal/kernel"
	"lightzone/internal/mem"
)

// TestProtMapGateAndFreeBumpCodeEpochs drives the module API directly and
// checks that every mapping-mutation path advances the code-generation
// epochs, so decoded blocks can never be replayed across an lz_prot
// permission change, a gate remap, or a page-table free.
func TestProtMapGateAndFreeBumpCodeEpochs(t *testing.T) {
	r := newRig(t)
	const regionBase = mem.VA(0x4400_0000)
	region := kernel.VMA{
		Start: regionBase, End: regionBase + mem.VA(4*mem.PageSize),
		Prot: kernel.ProtRead | kernel.ProtWrite, Name: "domains",
	}
	p, err := r.m.Host.CreateProcess("epoch", kernel.Program{Extra: []kernel.VMA{region}})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AS.EnsureMapped(region.Start, 4*mem.PageSize); err != nil {
		t.Fatal(err)
	}
	r.lz.RegisterGateEntries(p, []GateEntry{{GateID: 0, Entry: uint64(kernel.TextBase)}})
	lp, err := r.lz.EnterProcess(r.m.Host, p, true, SanTTBR)
	if err != nil {
		t.Fatal(err)
	}
	stats := r.m.CPU.Stats

	id, err := lp.Alloc()
	if err != nil {
		t.Fatal(err)
	}

	before := stats.CodeInvalidations
	if err := lp.Prot(regionBase, mem.PageSize, id, PermRead|PermWrite); err != nil {
		t.Fatal(err)
	}
	if stats.CodeInvalidations == before {
		t.Error("lz_prot did not bump code epochs")
	}

	before = stats.CodeInvalidations
	if err := lp.MapGatePgt(id, 0); err != nil {
		t.Fatal(err)
	}
	if stats.CodeInvalidations == before {
		t.Error("lz_map_gate_pgt did not bump code epochs")
	}

	before = stats.CodeInvalidations
	if err := lp.Free(id); err != nil {
		t.Fatal(err)
	}
	if stats.CodeInvalidations == before {
		t.Error("lz_free (ASID recycle) did not bump code epochs")
	}
}

// TestMunmapRemapExecutesNewCode is the benign counterpart of the TOCTTOU
// injection pentest: a page is executed (sanitized, decoded, cached),
// unmapped, remapped at the same address and filled with different code.
// The second execution must observe the new instructions — the address
// space change flows through InvalidateVMID, which wholesale-bumps the
// epochs.
func TestMunmapRemapExecutesNewCode(t *testing.T) {
	r := newRig(t)
	const scratch = uint64(0x4300_0000)
	writeFn := func(a *arm64.Asm, ret uint16) {
		a.MovImm(1, scratch)
		a.MovImm(2, uint64(arm64.MOVZ(0, ret, 0)))
		a.Emit(arm64.STRImm(2, 1, 0, 2))
		a.MovImm(2, uint64(arm64.RET(30)))
		a.Emit(arm64.STRImm(2, 1, 4, 2))
		a.Emit(arm64.MOVReg(16, 1))
		a.Emit(arm64.BLR(16))
	}
	a := arm64.NewAsm()
	svcCall(a, SysLZEnter, 1, uint64(SanTTBR))
	hvcCall(a, kernel.SysMmap, scratch, mem.PageSize, uint64(kernel.ProtRead|kernel.ProtWrite|kernel.ProtExec))
	writeFn(a, 1)
	a.Emit(arm64.MOVReg(19, 0)) // x19 = 1 from the first version
	hvcCall(a, kernel.SysMunmap, scratch, mem.PageSize)
	hvcCall(a, kernel.SysMmap, scratch, mem.PageSize, uint64(kernel.ProtRead|kernel.ProtWrite|kernel.ProtExec))
	writeFn(a, 2)
	// Exit with the second version's return value.
	a.Emit(arm64.MOVReg(0, 0))
	a.MovImm(8, kernel.SysExit)
	a.Emit(arm64.HVC(HVCSyscall))
	p := r.run(t, a, nil)
	if p.Killed {
		t.Fatalf("killed: %s", p.KillMsg)
	}
	if p.ExitCode != 2 {
		t.Errorf("exit code %d, want 2 (stale decoded code executed after munmap/remap)", p.ExitCode)
	}
	if r.m.CPU.Stats.CodeInvalidations == 0 {
		t.Error("no code invalidations recorded across munmap/remap")
	}
}
