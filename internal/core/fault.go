package core

import (
	"fmt"

	"lightzone/internal/cpu"
	"lightzone/internal/kernel"
	"lightzone/internal/mem"
	"lightzone/internal/trace"
)

// handleLZFault services a forwarded stage-1 fault from a LightZone
// process. This is where the module enforces in-process isolation: demand
// pages unprotected memory into every domain table, runs the sanitizer on
// first execution (W xor X + break-before-make, §6.3), and terminates the
// process on unauthorized access to protected domains.
func (lz *LightZone) handleLZFault(k *kernel.Kernel, t *kernel.Thread, lp *LZProc, s cpu.Syndrome) error {
	lp.chargeModuleEntry(k)
	k.PageFaults++
	c := k.CPU
	va := s.VA
	lz.Trace.Record(c.Cycles, trace.KindPageFault, t.Proc.PID, "%v %v at %v", s.Kind, s.Access, va)

	if mem.IsTTBR1(va) {
		lp.violation(t, fmt.Sprintf("%v access (%v fault) to LightZone-reserved range at %v", s.Access, s.Kind, va))
		return nil
	}
	if !mem.ValidVA(va) {
		lp.violation(t, fmt.Sprintf("non-canonical access at %v", va))
		return nil
	}

	// Resolve the kernel view of the page. A VA with no kernel VMA is a
	// plain segfault-equivalent violation.
	vma := lp.proc.AS.FindVMA(va)
	if vma == nil {
		lp.violation(t, fmt.Sprintf("access to unmapped %v (no VMA)", va))
		return nil
	}
	pa, kdesc, size, err := lp.kernelFrame(va)
	if err != nil {
		return err
	}
	base := mem.PageAlignDown(va)
	if size == mem.HugePageSize {
		base = mem.VA(uint64(va) &^ uint64(mem.HugePageMask))
	}

	cur, haveCur := lp.currentPGT()
	info := lp.protected[base]

	// Execution faults flow through the sanitizer under every policy.
	if s.Access == mem.AccessExec {
		return lz.handleExecFault(k, t, lp, base, pa, size, vma, info, cur)
	}

	if info != nil {
		// The page belongs to a protected domain.
		if info.user {
			// PAN-protected: the page is mapped user in every table;
			// a fault means PAN was set — unauthorized access (§7.2).
			lp.violation(t, fmt.Sprintf("PAN-protected domain %v accessed with PAN set (%v)", base, s.Access))
			return nil
		}
		if !haveCur {
			lp.violation(t, "unrecognized TTBR0 value")
			return nil
		}
		perm, mapped := info.pgts[cur.ID]
		if !mapped {
			lp.violation(t, fmt.Sprintf("domain page %v not mapped by current page table %d", base, cur.ID))
			return nil
		}
		if s.Access == mem.AccessWrite && perm&PermWrite == 0 {
			lp.violation(t, fmt.Sprintf("write to read-only domain page %v", base))
			return nil
		}
		if s.Access == mem.AccessWrite && lp.exec[base] == execClean {
			// W-xor-X flip on a protected multi-view page: while the
			// page was sanitized-executable, every view was read-only;
			// a legitimate write withdraws execute rights everywhere
			// (break-before-make) and restores the per-view write
			// permissions.
			lp.unmapEverywhere(base)
			lp.traceCodeInval(base, "wx flip to writable (protected views)")
			c.Charge(k.Prof.DSBCost)
			if err := lp.remapProtected(base, pa, size, kdesc, info, false); err != nil {
				return err
			}
			lp.exec[base] = execDirty
			c.Charge(6 * k.Prof.MemAccessCost)
			lz.observe("wx-flip", lp)
			lp.chargeModuleExit(k)
			return c.ERET()
		}
		// Mapped and permitted yet faulting: stale TLB state; flush.
		c.TLB.InvalidateVA(lp.vm.VMID, base)
		lp.chargeModuleExit(k)
		return c.ERET()
	}

	// Unprotected page: W xor X write-back transition, or plain demand
	// paging into every table as a global mapping.
	if st, tracked := lp.exec[base]; tracked && st == execClean && s.Access == mem.AccessWrite {
		return lz.handleWXWriteFault(k, t, lp, base, pa, size, vma, kdesc)
	}
	if s.Access == mem.AccessWrite && (vma.Prot&kernel.ProtWrite == 0 || kdesc&mem.AttrAPRO != 0) {
		lp.violation(t, fmt.Sprintf("write to read-only page %v", base))
		return nil
	}
	if s.Kind == mem.FaultPermission {
		// A permission fault on an unprotected page that is not a
		// W-xor-X transition cannot be repaired by remapping: it is an
		// unprivileged-override access (LDTR/STTR) hitting a kernel
		// page, or similar. Terminate rather than loop.
		lp.violation(t, fmt.Sprintf("%v permission fault on %v", s.Access, base))
		return nil
	}

	attrs := translateAttrs(kdesc) | mem.AttrPXN // PXN until sanitized
	if err := lp.mapUnprotected(base, pa, size, attrs); err != nil {
		return err
	}
	if !lz.Opts.DisableEagerS2 {
		// Eager stage-2 mapping already performed inside mapIntoPGT;
		// charge the combined-fault saving model's map cost only.
		c.Charge(int64(4) * k.Prof.TLBWalkPerLevel)
	}
	c.Charge(6 * k.Prof.MemAccessCost) // PTE writes
	lp.chargeModuleExit(k)
	return c.ERET()
}

// handleExecFault makes a page executable after sanitization: the page is
// scanned for sensitive instructions (Table 3) and mapped execute-only
// (never writable-and-executable), enforcing W xor X (§6.3).
func (lz *LightZone) handleExecFault(k *kernel.Kernel, t *kernel.Thread, lp *LZProc, base mem.VA, pa mem.PA, size uint64, vma *kernel.VMA, info *protInfo, cur *DomainPGT) error {
	c := k.CPU

	execAllowed := vma.Prot&kernel.ProtExec != 0
	if info != nil {
		if info.user {
			execAllowed = execAllowed && info.perm&PermExec != 0
		} else if cur != nil {
			perm, mapped := info.pgts[cur.ID]
			execAllowed = execAllowed && mapped && perm&PermExec != 0
		} else {
			execAllowed = false
		}
	}
	if !execAllowed {
		lp.violation(t, fmt.Sprintf("execution of non-executable page %v", base))
		return nil
	}

	// Break-before-make: unmap any writable mapping before sanitizing so
	// no store can race the check (TOCTTOU defence).
	lp.unmapEverywhere(base)
	lp.traceCodeInval(base, "break-before-make for sanitize")
	c.Charge(k.Prof.DSBCost)

	data := make([]byte, size)
	if err := k.PM.Read(pa, data); err != nil {
		return err
	}
	c.Charge(SanitizeCost(k.Prof, int(size)))
	lz.Trace.Record(c.Cycles, trace.KindSanitize, t.Proc.PID, "page %v (%d bytes, policy %v)", base, size, lp.policy)
	if v := SanitizePage(data, lp.policy); v != nil {
		lp.violation(t, fmt.Sprintf("sanitizer: %v in page %v", v, base))
		return nil
	}

	// Map executable and not writable (W xor X), globally for
	// unprotected pages or into the owning tables for protected ones.
	kres, err := lp.proc.AS.S1.Walk(base)
	if err != nil || !kres.Found {
		return fmt.Errorf("kernel mapping lost for %v: %w", base, err)
	}
	attrs := translateAttrs(kres.Desc)
	attrs &^= mem.AttrPXN
	attrs |= mem.AttrAPRO // never writable while executable
	if info == nil {
		if err := lp.mapUnprotected(base, pa, size, attrs); err != nil {
			return err
		}
	} else {
		attrs |= mem.AttrSWLZProt
		if info.user {
			attrs |= mem.AttrAPUser
			if err := lp.mapUnprotected(base, pa, size, attrs); err != nil {
				return err
			}
		} else {
			// Per-view mapping: execute rights only in the tables whose
			// overlay grants PermExec; all views read-only while the
			// page is executable (W xor X across aliases).
			if err := lp.remapProtected(base, pa, size, kres.Desc, info, true); err != nil {
				return err
			}
		}
	}
	lp.exec[base] = execClean
	c.Charge(6 * k.Prof.MemAccessCost)
	lz.observe("sanitize-exec", lp)
	lp.chargeModuleExit(k)
	return c.ERET()
}

// handleWXWriteFault flips a sanitized-executable page back to writable
// (and non-executable) when the application legitimately writes to it
// (JIT-style flows). Break-before-make plus TLB invalidation guarantee no
// stale executable mapping survives.
func (lz *LightZone) handleWXWriteFault(k *kernel.Kernel, t *kernel.Thread, lp *LZProc, base mem.VA, pa mem.PA, size uint64, vma *kernel.VMA, kdesc uint64) error {
	c := k.CPU
	if vma.Prot&kernel.ProtWrite == 0 || kdesc&mem.AttrAPRO != 0 {
		lp.violation(t, fmt.Sprintf("write to read-only executable page %v", base))
		return nil
	}
	lp.unmapEverywhere(base) // break
	lp.traceCodeInval(base, "wx flip to writable")
	c.Charge(k.Prof.DSBCost)
	lz.Trace.Record(c.Cycles, trace.KindWXFlip, t.Proc.PID, "page %v executable -> writable", base)
	attrs := translateAttrs(kdesc) | mem.AttrPXN // make: writable, not executable
	attrs &^= mem.AttrAPRO
	if err := lp.mapUnprotected(base, pa, size, attrs); err != nil {
		return err
	}
	lp.exec[base] = execDirty
	c.Charge(6 * k.Prof.MemAccessCost)
	lz.observe("wx-flip", lp)
	lp.chargeModuleExit(k)
	return c.ERET()
}
