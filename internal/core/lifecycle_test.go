package core

import (
	"strings"
	"testing"

	"lightzone/internal/arm64"
	"lightzone/internal/kernel"
	"lightzone/internal/mem"
)

// TestJITWriteExecCycle exercises the benign W-xor-X flow (§6.1: "JIT code
// pages can switch between writable and executable permissions"): write a
// function, execute it, rewrite it with different benign code, execute
// again. Every transition flows through break-before-make and
// re-sanitization and must succeed.
func TestJITWriteExecCycle(t *testing.T) {
	r := newRig(t)
	const jit = uint64(0x4600_0000)
	a := arm64.NewAsm()
	svcCall(a, SysLZEnter, 1, uint64(SanTTBR))
	hvcCall(a, kernel.SysMmap, jit, mem.PageSize, uint64(kernel.ProtRead|kernel.ProtWrite|kernel.ProtExec))
	// Generation 1: f() { return 11 }.
	a.MovImm(1, jit)
	a.MovImm(2, uint64(arm64.MOVZ(0, 11, 0)))
	a.Emit(arm64.STRImm(2, 1, 0, 2))
	a.MovImm(2, uint64(arm64.RET(30)))
	a.Emit(arm64.STRImm(2, 1, 4, 2))
	a.Emit(arm64.MOVReg(16, 1))
	a.Emit(arm64.BLR(16))
	a.Emit(arm64.MOVReg(19, 0)) // x19 = 11
	// Generation 2: f() { return 22 } — the write flips the page back to
	// W (not X), the call flips it to X (not W) after re-sanitizing.
	a.MovImm(1, jit)
	a.MovImm(2, uint64(arm64.MOVZ(0, 22, 0)))
	a.Emit(arm64.STRImm(2, 1, 0, 2))
	a.Emit(arm64.MOVReg(16, 1))
	a.Emit(arm64.BLR(16))
	a.Emit(arm64.MOVReg(20, 0)) // x20 = 22
	hvcCall(a, kernel.SysExit, 0)
	p := r.run(t, a, nil)
	if p.Killed {
		t.Fatalf("killed: %s", p.KillMsg)
	}
	if r.m.CPU.R(19) != 11 || r.m.CPU.R(20) != 22 {
		t.Errorf("jit generations returned %d, %d", r.m.CPU.R(19), r.m.CPU.R(20))
	}
	lp, _ := r.lz.ProcState(p)
	if lp.Violations != 0 {
		t.Errorf("violations = %d", lp.Violations)
	}
}

// TestFreePageTableLifecycle: lz_free destroys a table; the freed id is
// rejected afterwards, the base table (0) and the active table are
// protected from freeing.
func TestFreePageTableLifecycle(t *testing.T) {
	r := newRig(t)
	const data = uint64(0x4100_0000)
	a := arm64.NewAsm()
	svcCall(a, SysLZEnter, 1, uint64(SanTTBR))
	hvcCall(a, kernel.SysMmap, data, mem.PageSize, uint64(kernel.ProtRead|kernel.ProtWrite))
	hvcCall(a, SysLZAlloc) // -> 1
	hvcCall(a, SysLZAlloc) // -> 2
	hvcCall(a, SysLZFree, 2)
	a.Emit(arm64.MOVReg(19, 0))                            // 0 on success
	hvcCall(a, SysLZFree, 2)                               // double free
	a.Emit(arm64.MOVReg(20, 0))                            // -1
	hvcCall(a, SysLZFree, 0)                               // base table
	a.Emit(arm64.MOVReg(21, 0))                            // -1
	hvcCall(a, SysLZProt, data, mem.PageSize, 2, PermRead) // freed table
	a.Emit(arm64.MOVReg(22, 0))                            // -1
	hvcCall(a, kernel.SysExit, 0)
	p := r.run(t, a, nil)
	if p.Killed {
		t.Fatalf("killed: %s", p.KillMsg)
	}
	c := r.m.CPU
	if int64(c.R(19)) != 0 {
		t.Errorf("free(2) = %d", int64(c.R(19)))
	}
	for reg, what := range map[uint8]string{20: "double free", 21: "free base", 22: "prot freed"} {
		if int64(c.R(reg)) != -1 {
			t.Errorf("%s returned %d, want -1", what, int64(c.R(reg)))
		}
	}
	lp, _ := r.lz.ProcState(p)
	if lp.NumPageTables() != 2 { // base + pgt1
		t.Errorf("tables = %d", lp.NumPageTables())
	}
}

// TestFreeActiveTableRejected: the currently installed table cannot be
// freed out from under the thread.
func TestFreeActiveTableRejected(t *testing.T) {
	r := newRig(t)
	a := arm64.NewAsm()
	svcCall(a, SysLZEnter, 1, uint64(SanTTBR))
	hvcCall(a, SysLZAlloc) // -> 1
	a.Emit(arm64.MOVReg(0, 0))
	a.MovImm(1, 0)
	a.MovImm(8, SysLZMapGatePgt)
	a.Emit(arm64.HVC(HVCSyscall))
	entry := EmitGateSwitch(a, 0, "act") // now running on pgt 1
	hvcCall(a, SysLZFree, 1)
	a.Emit(arm64.MOVReg(19, 0)) // must be -1
	hvcCall(a, kernel.SysExit, 0)
	off, err := a.Offset(entry)
	if err != nil {
		t.Fatal(err)
	}
	p := r.run(t, a, []GateEntry{{GateID: 0, Entry: uint64(off)}})
	if p.Killed {
		t.Fatalf("killed: %s", p.KillMsg)
	}
	if int64(r.m.CPU.R(19)) != -1 {
		t.Errorf("freeing the active table returned %d", int64(r.m.CPU.R(19)))
	}
}

// TestHugePageDomain: a 2MB huge-page region protected as one domain,
// accessed through its gate (the §9.3 NVM configuration).
func TestHugePageDomain(t *testing.T) {
	r := newRig(t)
	const buf = uint64(0x8000_0000) // 2MB aligned
	words, entries := func() ([]uint32, []GateEntry) {
		a := arm64.NewAsm()
		svcCall(a, SysLZEnter, 1, uint64(SanTTBR))
		hvcCall(a, SysLZAlloc)
		a.Emit(arm64.MOVReg(0, 0))
		a.MovImm(1, 0)
		a.MovImm(8, SysLZMapGatePgt)
		a.Emit(arm64.HVC(HVCSyscall))
		hvcCall(a, SysLZProt, buf, mem.HugePageSize, 1, PermRead|PermWrite)
		entry := EmitGateSwitch(a, 0, "huge")
		a.MovImm(1, buf+0x123000) // deep inside the 2MB block
		a.MovImm(2, 0x77)
		a.Emit(arm64.STRImm(2, 1, 0, 3))
		a.Emit(arm64.LDRImm(19, 1, 0, 3))
		hvcCall(a, kernel.SysExit, 0)
		off, err := a.Offset(entry)
		if err != nil {
			t.Fatal(err)
		}
		w, err := a.Assemble()
		if err != nil {
			t.Fatal(err)
		}
		return w, []GateEntry{{GateID: 0, Entry: uint64(kernel.TextBase) + uint64(off)}}
	}()
	p, err := r.m.Host.CreateProcess("huge", kernel.Program{Text: words, Extra: []kernel.VMA{{
		Start: mem.VA(buf), End: mem.VA(buf + mem.HugePageSize),
		Prot: kernel.ProtRead | kernel.ProtWrite, Name: "nvm", Huge: true,
	}}})
	if err != nil {
		t.Fatal(err)
	}
	r.lz.RegisterGateEntries(p, entries)
	if err := r.m.RunHostProcess(p, 1_000_000); err != nil {
		t.Fatal(err)
	}
	if p.Killed {
		t.Fatalf("killed: %s", p.KillMsg)
	}
	if r.m.CPU.R(19) != 0x77 {
		t.Errorf("huge-page readback = %#x", r.m.CPU.R(19))
	}
}

// TestIdentityPhysAblation: with the fake-physical layer disabled, the
// system still works (the "intuitive" translation) — and the stage-1 PTEs
// now contain real physical addresses, which is exactly the leak the
// randomization layer closes.
func TestIdentityPhysAblation(t *testing.T) {
	r := newRig(t)
	r.lz.Opts.IdentityPhys = true
	a := arm64.NewAsm()
	svcCall(a, SysLZEnter, 1, uint64(SanTTBR))
	a.MovImm(1, uint64(kernel.DataBase))
	a.MovImm(2, 5)
	a.Emit(arm64.STRImm(2, 1, 0, 3))
	hvcCall(a, kernel.SysExit, 0)
	p := r.run(t, a, nil)
	if p.Killed {
		t.Fatalf("killed: %s", p.KillMsg)
	}
	lp, _ := r.lz.ProcState(p)
	base, _ := lp.PageTable(0)
	res, err := base.S1.Walk(kernel.DataBase)
	if err != nil || !res.Found {
		t.Fatalf("walk: %+v %v", res, err)
	}
	kres, _ := p.AS.S1.Walk(kernel.DataBase)
	if res.Desc&mem.OAMask != kres.Desc&mem.OAMask {
		t.Error("identity mode should expose the real physical address")
	}
}

// TestFakePhysHidesRealAddresses is the converse: with the layer on, the
// LightZone PTE's output address differs from the kernel's real frame and
// lies in the fake region.
func TestFakePhysHidesRealAddresses(t *testing.T) {
	r := newRig(t)
	a := arm64.NewAsm()
	svcCall(a, SysLZEnter, 1, uint64(SanTTBR))
	a.MovImm(1, uint64(kernel.DataBase))
	a.MovImm(2, 5)
	a.Emit(arm64.STRImm(2, 1, 0, 3))
	hvcCall(a, kernel.SysExit, 0)
	p := r.run(t, a, nil)
	if p.Killed {
		t.Fatalf("killed: %s", p.KillMsg)
	}
	lp, _ := r.lz.ProcState(p)
	base, _ := lp.PageTable(0)
	res, err := base.S1.Walk(kernel.DataBase)
	if err != nil || !res.Found {
		t.Fatalf("walk: %+v %v", res, err)
	}
	kres, _ := p.AS.S1.Walk(kernel.DataBase)
	fakeOA := res.Desc & mem.OAMask
	if fakeOA == kres.Desc&mem.OAMask {
		t.Error("fake layer leaked the real physical address")
	}
	if fakeOA < FakeBase {
		t.Errorf("fake OA %#x below FakeBase %#x", fakeOA, FakeBase)
	}
}

// TestMunmapSynchronizesLZTables: §5.1.2 "when the kernel unmaps a page,
// related stage-1 and stage-2 PTEs are zeroed" — after munmap, a LightZone
// access to the page is a violation, not a stale-mapping success.
func TestMunmapSynchronizesLZTables(t *testing.T) {
	r := newRig(t)
	const addr = uint64(0x4700_0000)
	a := arm64.NewAsm()
	svcCall(a, SysLZEnter, 1, uint64(SanTTBR))
	hvcCall(a, kernel.SysMmap, addr, mem.PageSize, uint64(kernel.ProtRead|kernel.ProtWrite))
	a.MovImm(1, addr)
	a.MovImm(2, 9)
	a.Emit(arm64.STRImm(2, 1, 0, 3)) // fault in: mapped in LZ tables
	hvcCall(a, kernel.SysMunmap, addr, mem.PageSize)
	a.MovImm(1, addr)
	a.Emit(arm64.LDRImm(3, 1, 0, 3)) // must now be fatal
	hvcCall(a, kernel.SysExit, 0)
	p := r.run(t, a, nil)
	if !p.Killed || !strings.Contains(p.KillMsg, "no VMA") {
		t.Errorf("killed=%v msg=%q", p.Killed, p.KillMsg)
	}
}

// TestDisableEagerS2FunctionalEquivalence: the ablation produces the same
// results, just slower (back-to-back faults).
func TestDisableEagerS2FunctionalEquivalence(t *testing.T) {
	r := newRig(t)
	r.lz.Opts.DisableEagerS2 = true
	a := arm64.NewAsm()
	svcCall(a, SysLZEnter, 1, uint64(SanTTBR))
	a.MovImm(1, uint64(kernel.DataBase))
	a.MovImm(2, 0x55)
	a.Emit(arm64.STRImm(2, 1, 0, 3))
	a.Emit(arm64.LDRImm(19, 1, 0, 3))
	hvcCall(a, kernel.SysExit, 0)
	p := r.run(t, a, nil)
	if p.Killed {
		t.Fatalf("killed: %s", p.KillMsg)
	}
	if r.m.CPU.R(19) != 0x55 {
		t.Errorf("readback = %#x", r.m.CPU.R(19))
	}
}

// TestMprotectSynchronizesLZTables: §5.1.2 synchronization extends to
// protection changes — after mprotect removes write permission, a
// LightZone write must be blocked even though the page was mapped
// writable in the duplicated tables before the call.
func TestMprotectSynchronizesLZTables(t *testing.T) {
	r := newRig(t)
	const addr = uint64(0x4A00_0000)
	a := arm64.NewAsm()
	svcCall(a, SysLZEnter, 1, uint64(SanTTBR))
	hvcCall(a, kernel.SysMmap, addr, mem.PageSize, uint64(kernel.ProtRead|kernel.ProtWrite))
	a.MovImm(1, addr)
	a.MovImm(2, 1)
	a.Emit(arm64.STRImm(2, 1, 0, 3)) // writable: maps W into LZ tables
	hvcCall(a, kernel.SysMprotect, addr, mem.PageSize, uint64(kernel.ProtRead))
	a.MovImm(1, addr)
	a.Emit(arm64.LDRImm(3, 1, 0, 3)) // read still fine
	a.Emit(arm64.STRImm(2, 1, 0, 3)) // write must now die
	hvcCall(a, kernel.SysExit, 0)
	p := r.run(t, a, nil)
	if !p.Killed || !strings.Contains(p.KillMsg, "read-only") {
		t.Errorf("killed=%v msg=%q", p.Killed, p.KillMsg)
	}
}
