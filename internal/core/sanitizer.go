package core

import (
	"fmt"

	"lightzone/internal/arm64"
)

// SanPolicy selects the sensitive-instruction sanitization policy — the
// insn_san argument of lz_enter (Table 2), corresponding to the two columns
// of the paper's Table 3.
type SanPolicy uint8

// Sanitization policies.
const (
	// SanNone disables sanitization (insecure; for ablation only).
	SanNone SanPolicy = iota
	// SanTTBR is column ① of Table 3: the policy for processes allowed
	// to use scalable TTBR-based isolation. Unprivileged loads/stores
	// are permitted (PAN is not load-bearing); TTBR0 writes are allowed
	// only inside the TTBR1-mapped call gate, never in application pages.
	SanTTBR
	// SanPAN is column ② of Table 3: the policy for PAN-isolated
	// processes. Unprivileged loads/stores are forbidden (they bypass
	// PAN); all stage-1 register access is forbidden.
	SanPAN
	// SanOverlay is the overlay backend's policy: SanTTBR's rules, except
	// the domain switch is an untrapped POR_EL1 write in application code
	// rather than a TTBR0 write inside a call gate — so POR_EL1 access is
	// admitted and TTBR0 access stays forbidden everywhere (the backend
	// has no gates for it to be legal in).
	SanOverlay
)

func (p SanPolicy) String() string {
	switch p {
	case SanNone:
		return "none"
	case SanTTBR:
		return "ttbr"
	case SanPAN:
		return "pan"
	case SanOverlay:
		return "overlay"
	default:
		return fmt.Sprintf("san(%d)", uint8(p))
	}
}

// Violation describes a sensitive instruction found by the sanitizer.
type Violation struct {
	Offset int // byte offset within the scanned region
	Word   uint32
	Reason string
}

func (v *Violation) Error() string {
	return fmt.Sprintf("sensitive instruction %#08x (%s) at offset %#x: %s",
		v.Word, arm64.Disassemble(v.Word), v.Offset, v.Reason)
}

// nzcvFPTargets are the op0=0b11, CRn=4 registers Table 3 exempts.
var nzcvFPTargets = map[uint32]bool{
	arm64.NZCV.Enc().Key(): true,
	arm64.FPCR.Enc().Key(): true,
	arm64.FPSR.Enc().Key(): true,
}

var (
	ttbr0Key  = arm64.TTBR0EL1.Enc().Key()
	porEL1Key = arm64.POREL1.Enc().Key()
)

// CheckWord classifies one instruction word under a policy. It returns a
// non-empty reason string when the word is sensitive and must not appear in
// application executable pages. The rules implement the paper's Table 3;
// instruction forms the table leaves unspecified default to deny (an
// unrecognized system-space word cannot be proven harmless).
func CheckWord(word uint32, policy SanPolicy) string {
	if policy == SanNone {
		return ""
	}
	in := arm64.Decode(word)

	// Exception generation and return: ERET is forbidden under both
	// policies (Table 3 row 1).
	if in.Op == arm64.OpERET {
		return "eret"
	}
	// SMC would escape to firmware; HCR_EL2.TSC traps it, but the
	// sanitizer rejects it outright as defence in depth.
	if in.Op == arm64.OpSMC {
		return "smc"
	}

	// Unprivileged load/store: allowed under ①, forbidden under ② (they
	// perform EL0-permission accesses, bypassing PAN).
	if in.Op == arm64.OpLdtr || in.Op == arm64.OpSttr {
		if policy == SanPAN {
			return "unprivileged load/store bypasses PAN"
		}
		return ""
	}

	if !arm64.IsSystemSpace(word) {
		return ""
	}
	enc := arm64.SysEncOf(word)
	key := enc.Key()
	switch enc.Op0 {
	case 0:
		if enc.CRn != 4 {
			return "" // hint/barrier space (NOP, ISB, DSB, DMB)
		}
		// MSR (immediate): only the PAN field is permitted
		// (op2 != NZCV && op2 != PAN -> forbidden; NZCV has no
		// MSR-immediate form, so only PAN survives).
		if enc.Op2 == arm64.PStateFieldPANOp2 && enc.Op1 == arm64.PStateFieldPANOp1 {
			return ""
		}
		return "msr-immediate to non-PAN pstate field"
	case 1:
		// SYS/SYSL space. Table 3 forbids CRn=7 (address translation);
		// CRn=8 (TLB maintenance) is hypervisor-trapped but rejected
		// here too; everything else is deny-by-default.
		switch enc.CRn {
		case 7:
			return "address-translation/cache op (op0=01, CRn=7)"
		case 8:
			return "tlb maintenance"
		default:
			return "unclassified sys op"
		}
	case 2:
		return "debug-register access"
	case 3:
		if enc.CRn == 4 {
			if nzcvFPTargets[key] {
				return ""
			}
			return "system access to non-NZCV/FPCR/FPSR CRn=4 register"
		}
		if enc.Op1 == 3 {
			return "" // EL0-accessible registers (TPIDR_EL0, counters)
		}
		if key == ttbr0Key {
			// TTBR0_EL1: permitted only inside the call gate, which
			// is TTBR1-mapped and never passes through the
			// sanitizer. In application pages it is forbidden under
			// both policies.
			return "ttbr0 access outside call gate"
		}
		if key == porEL1Key && policy == SanOverlay {
			// POR_EL1 is the overlay backend's domain-switch register;
			// SanOverlay admits it in application code (the switch is
			// deliberately untrapped). Every other policy keeps the
			// generic deny below.
			return ""
		}
		return "privileged system-register access"
	}
	return "unclassified system instruction"
}

// sanitize scans data's instruction words under the policy, collecting up
// to max violations (max < 0 collects all).
func sanitize(data []byte, policy SanPolicy, max int) []Violation {
	var found []Violation
	words := arm64.BytesToWords(data)
	for i, w := range words {
		if reason := CheckWord(w, policy); reason != "" {
			found = append(found, Violation{Offset: i * arm64.InsnBytes, Word: w, Reason: reason})
			if max >= 0 && len(found) >= max {
				break
			}
		}
	}
	return found
}

// SanitizePage scans a page's instruction words under the policy. It
// returns the first violation found, or nil. This is the check LightZone
// runs on every executable page before making it executable, under W xor X
// and break-before-make so a sanitized page cannot be modified afterwards
// (TOCTTOU defence, §6.3). The runtime only needs a yes/no answer, so it
// stops at the first hit; auditors wanting the full list use SanitizeAll.
func SanitizePage(data []byte, policy SanPolicy) *Violation {
	if found := sanitize(data, policy, 1); len(found) > 0 {
		return &found[0]
	}
	return nil
}

// SanitizeAll scans a region and returns every violation, in address order.
// The static verifier uses it so a single audit reports complete findings
// instead of the runtime's first-hit short-circuit.
func SanitizeAll(data []byte, policy SanPolicy) []Violation {
	return sanitize(data, policy, -1)
}

// SanitizeCost returns the modelled cycle cost of scanning n bytes
// (sequential read + classify per word).
func SanitizeCost(prof *arm64.Profile, n int) int64 {
	words := int64(n / arm64.InsnBytes)
	return words * (prof.InsnCost*2 + prof.MemAccessCost/2)
}
