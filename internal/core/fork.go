package core

import (
	"lightzone/internal/hyp"
	"lightzone/internal/kernel"
	"lightzone/internal/mem"
)

// Fork clones the module for a forked machine: hyp2 and k2 are the forked
// hypervisor and process-owning kernel (the host kernel, or a guest VM's
// kernel). Every per-process LZProc is deep-cloned and re-attached to its
// forked process and VM by id, with the kernel's unmap/prot notifications
// re-wired onto the clone. The Trace recorder and Observer hook are left
// unset — both are observation-only attachments the caller re-arms if it
// wants them; neither affects digest-visible state.
func (lz *LightZone) Fork(hyp2 *hyp.Hypervisor, k2 *kernel.Kernel) *LightZone {
	lz2 := &LightZone{
		Hyp:            hyp2,
		Opts:           lz.Opts,
		GuestMode:      lz.GuestMode,
		backend:        lz.backend,
		procs:          make(map[int]*LZProc, len(lz.procs)),
		pendingEntries: make(map[int][]GateEntry, len(lz.pendingEntries)),
	}
	for pid, entries := range lz.pendingEntries {
		lz2.pendingEntries[pid] = append([]GateEntry(nil), entries...)
	}
	for pid, lp := range lz.procs {
		lz2.procs[pid] = lp.cloneFor(lz2, k2)
	}
	return lz2
}

// cloneFor deep-copies one process's LightZone state for a forked machine.
// The stage-1 domain tables, TTBR1 table, gate pages, and stage-2 fake layer
// all live in copy-on-write shared frames; what moves here is the Go-side
// bookkeeping, with every table's alloc hook and the process's kernel
// notifications re-wired onto the clone so future faults mutate only the
// child.
func (lp *LZProc) cloneFor(lz2 *LightZone, k2 *kernel.Kernel) *LZProc {
	p2, ok := k2.Process(lp.proc.PID)
	if !ok {
		panic("core: forked kernel lost a LightZone process")
	}
	vm2, ok := lz2.Hyp.VMByID(lp.vm.VMID)
	if !ok {
		panic("core: forked hypervisor lost a LightZone VM")
	}
	lp2 := &LZProc{
		lz:                  lz2,
		kern:                k2,
		proc:                p2,
		vm:                  vm2,
		backend:             lp.backend,
		allowScalable:       lp.allowScalable,
		policy:              lp.policy,
		fake:                lp.fake.Clone(),
		pgts:                make(map[int]*DomainPGT, len(lp.pgts)),
		byRoot:              make(map[mem.PA]*DomainPGT, len(lp.byRoot)),
		nextPGT:             lp.nextPGT,
		freePGT:             append([]int(nil), lp.freePGT...),
		maxDomains:          lp.maxDomains,
		ttbr1Val:            lp.ttbr1Val,
		gateEntries:         make(map[int]uint64, len(lp.gateEntries)),
		protected:           make(map[mem.VA]*protInfo, len(lp.protected)),
		exec:                make(map[mem.VA]execState, len(lp.exec)),
		world:               lp.world,
		lastSchedSeen:       lp.lastSchedSeen,
		outerVTTBR:          lp.outerVTTBR,
		pendingWorldRestore: lp.pendingWorldRestore,
		Traps:               lp.Traps,
		Violations:          lp.Violations,
	}
	pm2 := k2.PM
	lp2.ttbr1 = lp.ttbr1.CloneFor(pm2)
	lp2.ttbr1.OnAllocTable = lp2.s2MapTable
	for id, d := range lp.pgts {
		d2 := &DomainPGT{ID: d.ID, S1: d.S1.CloneFor(pm2)}
		d2.S1.OnAllocTable = lp2.s2MapTable
		lp2.pgts[id] = d2
		lp2.byRoot[d2.S1.Root()] = d2
	}
	for gate, entry := range lp.gateEntries {
		lp2.gateEntries[gate] = entry
	}
	for va, info := range lp.protected {
		pi := &protInfo{pgts: make(map[int]int, len(info.pgts)), user: info.user, perm: info.perm}
		for pgt, perm := range info.pgts {
			pi.pgts[pgt] = perm
		}
		lp2.protected[va] = pi
	}
	for va, st := range lp.exec {
		lp2.exec[va] = st
	}
	lp.cloneGateState(lp2)
	lp.cloneOverlayState(lp2)
	lp.cloneGranuleState(lp2)

	p2.LZ = lp2
	p2.AS.UnmapNotify = func(va mem.VA) { lp2.syncUnmap(va) }
	p2.AS.ProtNotify = func(va mem.VA) { lp2.syncProt(va) }
	return lp2
}
