package core

import (
	"fmt"

	"lightzone/internal/arm64"
	"lightzone/internal/cpu"
	"lightzone/internal/hyp"
	"lightzone/internal/kernel"
	"lightzone/internal/mem"
	"lightzone/internal/trace"
)

// lz_prot permission bits (Table 2: readable, writable, executable, user).
const (
	PermRead  = 1 << 0
	PermWrite = 1 << 1
	PermExec  = 1 << 2
	// PermUser marks the region a PAN-protected domain: its PTEs carry
	// the user bit (and the global bit) in every page table, so access
	// is gated solely by PSTATE.PAN (§6.1, Listing 1 line 7).
	PermUser = 1 << 3
)

// PGTAll attaches a region to every page table of the process (used
// together with PermUser).
const PGTAll = -1

// TTBR1-range layout of the LightZone-owned mappings for each process.
// The gate code and its two validation tables are laid out within ±1MB of
// each other so the gate can address GateTab/TTBRTab with single PC-relative
// ADR instructions (keeping the secure gate short, which matters for the
// Table 5 switch costs).
const (
	stubVA      = mem.TTBR1Base               // trap-forwarding vector page
	gateCodeVA  = mem.TTBR1Base + 0x0030_0000 // call gate code blocks (256KB)
	gateTabVA   = mem.TTBR1Base + 0x0034_0000 // GateTab (read-only)
	ttbrTabVA   = mem.TTBR1Base + 0x0034_8000 // TTBRTab (read-only, 512KB max)
	gateSlotLen = 128                         // bytes per call gate
)

// MaxPageTables is the paper's scalability claim: 2^16 isolation domains.
const MaxPageTables = 1 << 16

// DomainPGT is one LightZone stage-1 page table (one isolation domain view).
type DomainPGT struct {
	ID int
	S1 *mem.Stage1
}

// TTBR returns the TTBR0 value selecting this table.
func (d *DomainPGT) TTBR() uint64 {
	return cpu.MakeTTBR(uint64(d.S1.Root()), d.S1.ASID())
}

type execState uint8

const (
	execNone  execState = iota // not yet executable
	execClean                  // sanitized, mapped X, not W
	execDirty                  // mapped W (writable), not X
)

type protInfo struct {
	pgts map[int]int // pgt id -> perm overlay
	user bool        // PAN-protected
	perm int
}

// GateEntry is a statically allocated legitimate entry: the address
// immediately after an lz_switch_to_ttbr_gate expansion (§6.2).
type GateEntry struct {
	GateID int
	Entry  uint64
}

// LZProc is the kernel module's per-process state for one LightZone
// (kernel-mode) process.
type LZProc struct {
	lz   *LightZone
	kern *kernel.Kernel
	proc *kernel.Process
	vm   *hyp.VM

	// backend is the isolation substrate the process entered with; the
	// module routes lifecycle syscalls, backend-private HVCs and fault
	// classification through it.
	backend Backend
	// okeys is overlay-backend state (nil elsewhere; backend_overlay.go).
	okeys *overlayState
	// gran is granule-backend state (nil elsewhere; backend_granule.go).
	gran *granuleState

	allowScalable bool
	policy        SanPolicy
	fake          *FakePhys

	pgts    map[int]*DomainPGT
	byRoot  map[mem.PA]*DomainPGT
	nextPGT int
	freePGT []int // recycled domain ids, LIFO (see newPGT)
	// maxDomains caps live domain ids below MaxPageTables when set
	// (NR_LZID regime knob: the reference lzko module ships 128 where the
	// paper claims 2^16). 0 means the paper default.
	maxDomains int
	ttbr1      *mem.Stage1
	ttbr1Val   uint64

	// Kernel-managed read-only tables backing the call gate (§6.2).
	gateTabPA mem.PA
	ttbrTabPA []mem.PA // demand-allocated pages of the TTBR table
	gateCode  mem.PA   // gate code page(s)
	gatePages int

	gateEntries map[int]uint64 // gate id -> ENTRY VA
	gatePgt     map[int]int    // gate id -> PGTID

	protected map[mem.VA]*protInfo
	exec      map[mem.VA]execState

	world kernel.World

	// lastSchedSeen drives the shared pt_regs relookup cost (§8.1).
	lastSchedSeen int64
	// outerVTTBR is the enclosing guest VM's VTTBR for guest LightZone
	// processes (the Lowvisor switches between it and the LZ VM's).
	outerVTTBR uint64
	// pendingWorldRestore marks a conventional (ablated) trap entry that
	// must rewrite HCR_EL2/VTTBR_EL2 on the way out.
	pendingWorldRestore bool

	// Stats.
	Traps      int64
	Violations int64
}

// World exposes the process world configuration to kernel.worldFor.
func (lp *LZProc) World() *kernel.World { return &lp.world }

// VM returns the per-process virtual machine.
func (lp *LZProc) VM() *hyp.VM { return lp.vm }

// Policy returns the sanitization policy.
func (lp *LZProc) Policy() SanPolicy { return lp.policy }

// PageTable returns domain page table id, if allocated.
func (lp *LZProc) PageTable(id int) (*DomainPGT, bool) {
	d, ok := lp.pgts[id]
	return d, ok
}

// NumPageTables returns the number of live domain page tables.
func (lp *LZProc) NumPageTables() int { return len(lp.pgts) }

// DomainLimit returns the effective cap on live domain page tables.
func (lp *LZProc) DomainLimit() int {
	if lp.maxDomains > 0 {
		return lp.maxDomains
	}
	return MaxPageTables
}

// SetDomainLimit caps the number of domain page tables this process may
// hold live — the NR_LZID regime knob (128 in the reference lzko module,
// 2^16 in the paper). 0 restores the paper default. The limit bounds both
// the live count and the id space, so the TTBRTab footprint of a capped
// process stays at ceil(limit/512) pages no matter how much churn it sees.
func (lp *LZProc) SetDomainLimit(n int) error {
	if n < 0 || n > MaxPageTables {
		return fmt.Errorf("domain limit %d out of range [0, %d]", n, MaxPageTables)
	}
	if n != 0 && len(lp.pgts) > n {
		return fmt.Errorf("domain limit %d below %d live page tables", n, len(lp.pgts))
	}
	lp.maxDomains = n
	return nil
}

// PGTIDHighWater returns the number of distinct domain ids ever handed out
// (the id counter's high-water mark). With free-list recycling this stays
// within one of the peak live count regardless of alloc/free churn; before
// the fix it grew monotonically and eventually walked the TTBRTab off its
// 512KB window.
func (lp *LZProc) PGTIDHighWater() int { return lp.nextPGT }

// FreePGTIDs returns the number of recycled domain ids currently parked on
// the free list.
func (lp *LZProc) FreePGTIDs() int { return len(lp.freePGT) }

// PageTableBytes sums stage-1 and stage-2 table memory for the process —
// the paper's page-table memory overhead metric.
func (lp *LZProc) PageTableBytes() uint64 {
	total := lp.vm.S2.TableBytes() + lp.ttbr1.TableBytes()
	for _, d := range lp.pgts {
		total += d.S1.TableBytes()
	}
	return total
}

// currentPGT resolves the domain table selected by the vCPU's TTBR0.
func (lp *LZProc) currentPGT() (*DomainPGT, bool) {
	root := mem.PA(cpu.TTBRRoot(lp.kern.CPU.Sys(arm64.TTBR0EL1)))
	d, ok := lp.byRoot[root]
	return d, ok
}

// s2MapTable identity-maps a stage-1 table frame read-only in the
// process's stage-2 ("stage-1 page tables are read-only in stage-2
// mapping", §5.1.2).
func (lp *LZProc) s2MapTable(pa mem.PA) {
	if err := lp.vm.S2.Map(mem.IPA(pa), pa, mem.S2APRead); err != nil {
		// Table frames are kernel-allocated; failure is a simulator bug.
		panic(fmt.Sprintf("lightzone: stage-2 table map: %v", err))
	}
}

// s2MapData maps a fake page to its real frame in stage-2 with RW access
// (stage-1 attributes enforce read-only and execute permissions).
func (lp *LZProc) s2MapData(fake mem.IPA, real mem.PA) error {
	return lp.vm.S2.Map(fake, real, mem.S2APRead|mem.S2APWrite)
}

// newPGT allocates a stage-1 domain table wired for stage-2 table
// mirroring. Domain ids are recycled LIFO through the free list: a freed
// id's TTBRTab slot is rewritten in place on reuse, so the table never
// grows past ceil(limit/512) pages and the gate's PC-relative addressing
// of a slot stays valid across any amount of alloc/free churn.
func (lp *LZProc) newPGT() (*DomainPGT, error) {
	limit := lp.DomainLimit()
	if len(lp.pgts) >= limit {
		return nil, fmt.Errorf("page table limit (%d) reached", limit)
	}
	if len(lp.freePGT) == 0 && lp.nextPGT >= limit {
		// Unreachable while Free recycles every id (live < limit implies
		// a parked id), but kept as a hard stop against id-space walk-off:
		// handing out an id ≥ limit would index writeTTBRTab past the
		// window the regime promised.
		return nil, fmt.Errorf("page table id space (%d) exhausted with %d live", limit, len(lp.pgts))
	}
	s1, err := mem.NewStage1(lp.kern.PM, lp.kern.AllocASID())
	if err != nil {
		return nil, err
	}
	s1.OnAllocTable = lp.s2MapTable
	lp.s2MapTable(s1.Root())
	id := lp.nextPGT
	if n := len(lp.freePGT); n > 0 {
		id = lp.freePGT[n-1]
		lp.freePGT = lp.freePGT[:n-1]
	} else {
		lp.nextPGT++
	}
	d := &DomainPGT{ID: id, S1: s1}
	lp.pgts[d.ID] = d
	lp.byRoot[s1.Root()] = d
	return d, nil
}

// translateAttrs converts a kernel-managed PTE attribute set (a user-mode
// process mapping) into the equivalent LightZone kernel-mode mapping:
// permissions for user-mode execution now apply to kernel mode — UXN
// becomes PXN, user pages become kernel pages (§5.1.2). Unprotected pages
// are global (nG clear) so they stay TLB-resident across domain switches.
func translateAttrs(kdesc uint64) uint64 {
	attrs := uint64(mem.AttrUXN) // nothing runs at EL0 inside the VM
	if kdesc&mem.AttrUXN != 0 {
		attrs |= mem.AttrPXN
	}
	if kdesc&mem.AttrAPRO != 0 {
		attrs |= mem.AttrAPRO
	}
	return attrs
}

// mapIntoPGT installs a page (or 2MB block) into one domain table, routing
// the output address through the fake-physical layer and eagerly mapping
// stage-2 (§5.2: eager stage-2 mapping avoids back-to-back faults).
func (lp *LZProc) mapIntoPGT(d *DomainPGT, va mem.VA, realPA mem.PA, size uint64, attrs uint64) error {
	if size == mem.HugePageSize {
		fk := lp.fake.FakeOfBlock(realPA)
		if err := d.S1.MapBlock(va, mem.PA(fk), attrs); err != nil {
			return err
		}
		if lp.lz.Opts.DisableEagerS2 {
			return nil // ablation: stage-2 populated on its own fault
		}
		return lp.vm.S2.MapBlock(fk, realPA, mem.S2APRead|mem.S2APWrite)
	}
	fk := lp.fake.FakeOf(realPA)
	if err := d.S1.Map(va, mem.PA(fk), attrs); err != nil {
		return err
	}
	if lp.lz.Opts.DisableEagerS2 {
		return nil
	}
	return lp.s2MapData(fk, realPA)
}

// mapUnprotected installs an unprotected page into every domain table as a
// global mapping.
func (lp *LZProc) mapUnprotected(va mem.VA, realPA mem.PA, size uint64, attrs uint64) error {
	for _, d := range lp.pgts {
		if err := lp.mapIntoPGT(d, va, realPA, size, attrs); err != nil {
			return err
		}
	}
	return nil
}

// unmapEverywhere removes va from every domain table and flushes the TLB
// entries for it.
func (lp *LZProc) unmapEverywhere(va mem.VA) {
	for _, d := range lp.pgts {
		_, _ = d.S1.Unmap(va)
	}
	lp.kern.CPU.TLB.InvalidateVA(lp.vm.VMID, va)
}

// traceCodeInval records a decoded-code invalidation for a page whose
// mapping or contents changed; the epoch bump itself rides on the TLB
// invalidation (or InvalidateCode) performed by the caller.
func (lp *LZProc) traceCodeInval(va mem.VA, why string) {
	lp.lz.Trace.Record(lp.kern.CPU.Cycles, trace.KindCodeInval, lp.proc.PID, "page %v: %s", va, why)
}

// kernelFrame resolves the real frame backing va in the kernel-managed
// table, faulting it in on demand.
func (lp *LZProc) kernelFrame(va mem.VA) (mem.PA, uint64, uint64, error) {
	as := lp.proc.AS
	res, err := as.S1.Walk(va)
	if err != nil {
		return 0, 0, 0, err
	}
	if !res.Found {
		ok, err := as.DemandMap(va)
		if err != nil || !ok {
			return 0, 0, 0, fmt.Errorf("no kernel mapping for %v: %w", va, err)
		}
		res, err = as.S1.Walk(va)
		if err != nil || !res.Found {
			return 0, 0, 0, fmt.Errorf("demand map lost %v", va)
		}
	}
	size := uint64(mem.PageSize)
	pa := res.PA &^ mem.PA(mem.PageMask)
	if res.BlockShift == mem.HugePageShift {
		size = mem.HugePageSize
		pa = res.PA &^ mem.PA(mem.HugePageMask)
	}
	return pa, res.Desc, size, nil
}

// Prot implements lz_prot (Table 2): attach [addr, addr+len) to page table
// pgt with a permission overlay. perm&PermUser attaches to all tables as
// PAN-protected user pages. During later faults, protected pages receive
// the least permission by intersecting the overlay with the kernel VMA.
func (lp *LZProc) Prot(addr mem.VA, length uint64, pgt int, perm int) error {
	if uint64(addr)&mem.PageMask != 0 {
		return fmt.Errorf("lz_prot: unaligned address %v", addr)
	}
	if length == 0 || mem.IsTTBR1(addr) {
		return fmt.Errorf("lz_prot: bad region")
	}
	if perm&PermUser == 0 {
		if _, ok := lp.pgts[pgt]; !ok {
			return fmt.Errorf("lz_prot: no page table %d", pgt)
		}
		if !lp.allowScalable && pgt != 0 {
			return fmt.Errorf("lz_prot: scalable isolation not enabled")
		}
	}
	end := addr + mem.VA(mem.PageAlignUp(length))
	for va := addr; va < end; {
		pa, kdesc, size, err := lp.kernelFrame(va)
		if err != nil {
			return err
		}
		base := va
		if size == mem.HugePageSize {
			base = mem.VA(uint64(va) &^ uint64(mem.HugePageMask))
		}

		attrs := overlayAttrs(kdesc, perm)
		info := lp.protected[base]
		switch {
		case perm&PermUser != 0:
			// PAN domain: user+global bits in every table (§6.1).
			lp.unmapEverywhere(base)
			lp.traceCodeInval(base, "lz_prot PAN-domain remap")
			info = &protInfo{pgts: map[int]int{}, perm: perm, user: true}
			for id := range lp.pgts {
				info.pgts[id] = perm
			}
			if err := lp.mapUnprotected(base, pa, size, attrs); err != nil {
				return err
			}
		case info != nil && !info.user:
			// Already protected: attach to an additional page table,
			// possibly with a different permission overlay — "pages
			// belonging to the same domain can be mapped by multiple
			// page tables, allowing different permission overlays. For
			// example, JIT code pages can switch between writable and
			// executable permissions via two page tables" (§6.1).
			info.pgts[pgt] = perm
			attrs |= mem.AttrNG
			if err := lp.mapIntoPGT(lp.pgts[pgt], base, pa, size, attrs); err != nil {
				return err
			}
			lp.kern.CPU.TLB.InvalidateVA(lp.vm.VMID, base)
			lp.traceCodeInval(base, "lz_prot overlay attach")
		default:
			// First protection of the page: withdraw it from every
			// table, then attach it to the target one.
			lp.unmapEverywhere(base)
			lp.traceCodeInval(base, "lz_prot first protection")
			info = &protInfo{pgts: map[int]int{pgt: perm}, perm: perm}
			attrs |= mem.AttrNG // protected pages are ASID-private
			if err := lp.mapIntoPGT(lp.pgts[pgt], base, pa, size, attrs); err != nil {
				return err
			}
		}
		lp.protected[base] = info
		lp.kern.CPU.Charge(4 * lp.kern.Prof.MemAccessCost) // PTE rewrite cost
		va = base + mem.VA(size)
	}
	lp.lz.observe("lz_prot", lp)
	return nil
}

// overlayAttrs computes stage-1 attributes for a protected page: the
// overlay permissions intersected with the kernel's own mapping. Execute
// permission is never granted here — pages are mapped PXN until the
// sanitizer clears them on the first instruction fault (§6.3), including
// protected pages, so no view can run unchecked code.
func overlayAttrs(kdesc uint64, perm int) uint64 {
	attrs := uint64(mem.AttrUXN | mem.AttrSWLZProt | mem.AttrPXN)
	if perm&PermWrite == 0 || kdesc&mem.AttrAPRO != 0 {
		attrs |= mem.AttrAPRO
	}
	if perm&PermUser != 0 {
		attrs |= mem.AttrAPUser // PAN-gated
	}
	return attrs
}

// remapProtected reinstalls a protected multi-view page into every table
// listed in info, honouring each view's permission overlay. In executable
// state (exec=true) views with PermExec get X and every view is read-only;
// in writable state no view is executable and write permissions follow the
// overlays.
func (lp *LZProc) remapProtected(base mem.VA, pa mem.PA, size uint64, kdesc uint64, info *protInfo, exec bool) error {
	for id, perm := range info.pgts {
		attrs := uint64(mem.AttrUXN | mem.AttrSWLZProt | mem.AttrNG | mem.AttrPXN)
		if exec {
			attrs |= mem.AttrAPRO
			if perm&PermExec != 0 {
				attrs &^= mem.AttrPXN
			}
		} else if perm&PermWrite == 0 || kdesc&mem.AttrAPRO != 0 {
			attrs |= mem.AttrAPRO
		}
		if err := lp.mapIntoPGT(lp.pgts[id], base, pa, size, attrs); err != nil {
			return err
		}
	}
	return nil
}

// AttachToNewPGT propagates PAN-protected (user) pages into a freshly
// allocated table so PermUser regions stay visible in all tables.
func (lp *LZProc) attachUserPagesTo(d *DomainPGT) error {
	for va, info := range lp.protected {
		if !info.user {
			continue
		}
		pa, kdesc, size, err := lp.kernelFrame(va)
		if err != nil {
			return err
		}
		if err := lp.mapIntoPGT(d, va, pa, size, overlayAttrs(kdesc, info.perm)); err != nil {
			return err
		}
		info.pgts[d.ID] = info.perm
	}
	return nil
}

// Alloc implements lz_alloc: allocate a stage-1 page table that maps all
// unprotected memory (copied from the base table) plus the PAN-protected
// user pages, propagate the TTBR1-visible TTBRTab entry, and return its
// identifier (§6.1: "Each page table of a LightZone process can map all
// unprotected memory").
func (lp *LZProc) Alloc() (int, error) {
	if !lp.allowScalable {
		return -1, fmt.Errorf("lz_alloc: scalable isolation not enabled (lz_enter allow_scalable=false)")
	}
	d, err := lp.newPGT()
	if err != nil {
		return -1, err
	}
	if err := lp.populatePGT(d); err != nil {
		return -1, err
	}
	if err := lp.writeTTBRTab(d.ID, d.TTBR()); err != nil {
		return -1, err
	}
	lp.kern.CPU.Charge(lp.kern.Prof.HandlerDispatchCost)
	lp.lz.observe("lz_alloc", lp)
	return d.ID, nil
}

// populatePGT fills a fresh domain table: the unprotected (global)
// mappings are copied from the base table — pages attached to protected
// domains carry the software marker and are skipped — and the
// PAN-protected user pages are re-attached. Shared by the lightzone and
// granule backends, which differ only in what they charge and publish
// around the copy.
func (lp *LZProc) populatePGT(d *DomainPGT) error {
	base := lp.pgts[0]
	var copyErr error
	if err := base.S1.Visit(func(va mem.VA, desc uint64, size uint64) bool {
		if desc&mem.AttrSWLZProt != 0 {
			return true
		}
		attrs := desc &^ mem.OAMask &^ (mem.DescValid | mem.DescTable | mem.AttrAF)
		if size == mem.HugePageSize {
			copyErr = d.S1.MapBlock(va, mem.PA(desc&mem.OAMask), attrs)
		} else {
			copyErr = d.S1.Map(va, mem.PA(desc&mem.OAMask), attrs)
		}
		lp.kern.CPU.Charge(2 * lp.kern.Prof.MemAccessCost)
		return copyErr == nil
	}); err != nil {
		return err
	}
	if copyErr != nil {
		return copyErr
	}
	return lp.attachUserPagesTo(d)
}

// Free implements lz_free: destroy a page table. The base table (0) and
// the currently installed table cannot be freed.
func (lp *LZProc) Free(pgt int) error {
	d, ok := lp.pgts[pgt]
	if !ok || pgt == 0 {
		return fmt.Errorf("lz_free: bad page table %d", pgt)
	}
	if cur, ok := lp.currentPGT(); ok && cur == d {
		return fmt.Errorf("lz_free: page table %d is active", pgt)
	}
	for va, info := range lp.protected {
		delete(info.pgts, pgt)
		if len(info.pgts) == 0 {
			delete(lp.protected, va)
		}
	}
	delete(lp.byRoot, d.S1.Root())
	delete(lp.pgts, pgt)
	// Return the ASID to the kernel allocator (which performs the scoped
	// TLB shootdown) and the domain id to the free list, so sustained
	// alloc/free churn can never exhaust either space.
	lp.kern.FreeASID(lp.vm.VMID, d.S1.ASID())
	lp.freePGT = append(lp.freePGT, pgt)
	if err := lp.writeTTBRTab(pgt, 0); err != nil {
		return err
	}
	d.S1.Free()
	lp.lz.observe("lz_free", lp)
	return nil
}
