package core

import (
	"testing"
	"testing/quick"

	"lightzone/internal/arm64"
)

// TestSanitizerTable3Matrix exercises every row of the paper's Table 3
// under both policies: ① (TTBR) and ② (PAN).
func TestSanitizerTable3Matrix(t *testing.T) {
	tests := []struct {
		name      string
		word      uint32
		allowTTBR bool
		allowPAN  bool
	}{
		// Exception generation and return.
		{"eret", arm64.WordERET, false, false},
		{"smc", arm64.SMC(0), false, false},
		{"svc allowed", arm64.SVC(0), true, true},
		{"hvc allowed (api library)", arm64.HVC(HVCSyscall), true, true},

		// Unprivileged load/store: LDTR[B/SB/H/SH/SW], STTR[B/H].
		{"ldtr 64", arm64.LDTR(0, 1, 0, 3), true, false},
		{"ldtrb", arm64.LDTR(0, 1, 0, 0), true, false},
		{"ldtrh", arm64.LDTR(0, 1, 4, 1), true, false},
		{"sttr 64", arm64.STTR(0, 1, 0, 3), true, false},
		{"sttrb", arm64.STTR(0, 1, 0, 0), true, false},

		// System: op0=0b00 && CRn=0b0100 && op2==PAN -> allowed.
		{"msr pan #0", arm64.MSRPan(0), true, true},
		{"msr pan #1", arm64.MSRPan(1), true, true},
		// op0=0b00 && CRn=0b0100 && op2 not PAN -> forbidden.
		{"msr spsel", arm64.MSRPStateImm(arm64.PStateFieldSPSel1, arm64.PStateFieldSPSel2, 1), false, false},
		{"msr uao", arm64.MSRPStateImm(arm64.PStateFieldUAOOp1, arm64.PStateFieldUAOOp2, 1), false, false},
		// op0=0b00, CRn!=4: hints and barriers are fine.
		{"nop", arm64.WordNOP, true, true},
		{"isb", arm64.WordISB, true, true},
		{"dsb", arm64.WordDSBSY, true, true},
		{"dmb", arm64.WordDMBSY, true, true},

		// op0=0b01 && CRn=7: address translation — forbidden.
		{"at s1e1r", arm64.ATS1E1R(0), false, false},
		// TLB maintenance (CRn=8): forbidden (hypervisor-trapped too).
		{"tlbi vmalle1", arm64.TLBIVMALLE1(), false, false},
		// Other SYS space: deny by default.
		{"sys crn5", arm64.SYSInsn(0, 5, 0, 0, 0), false, false},

		// op0=0b11 && CRn=4 && target NZCV/FPCR/FPSR -> allowed.
		{"mrs nzcv", arm64.MRS(0, arm64.NZCV), true, true},
		{"msr nzcv", arm64.MSR(arm64.NZCV, 0), true, true},
		{"msr fpcr", arm64.MSR(arm64.FPCR, 0), true, true},
		{"mrs fpsr", arm64.MRS(0, arm64.FPSR), true, true},
		// op0=0b11 && CRn=4 && other target -> forbidden (SP_EL0 is
		// CRn=4).
		{"msr sp_el0", arm64.MSR(arm64.SPEL0, 0), false, false},
		{"msr elr_el1", arm64.MSR(arm64.ELREL1, 0), false, false},
		{"msr spsr_el1", arm64.MSR(arm64.SPSREL1, 0), false, false},

		// op0=0b11, CRn!=4, op1==3: EL0 registers allowed.
		{"mrs tpidr_el0", arm64.MRS(0, arm64.TPIDREL0), true, true},
		{"msr tpidr_el0", arm64.MSR(arm64.TPIDREL0, 0), true, true},
		{"mrs cntvct_el0", arm64.MRS(0, arm64.CNTVCTEL0), true, true},

		// op0=0b11, CRn!=4, op1!=3, target not TTBR0 -> forbidden.
		{"msr sctlr_el1", arm64.MSR(arm64.SCTLREL1, 0), false, false},
		{"msr vbar_el1", arm64.MSR(arm64.VBAREL1, 0), false, false},
		{"msr ttbr1_el1", arm64.MSR(arm64.TTBR1EL1, 0), false, false},
		{"mrs far_el1", arm64.MRS(0, arm64.FAREL1), false, false},
		{"msr tcr_el1", arm64.MSR(arm64.TCREL1, 0), false, false},
		{"mrs midr_el1", arm64.MRS(0, arm64.MIDREL1), false, false},

		// TTBR0_EL1: only legal inside the call gate; in application
		// pages (which is what the sanitizer scans) it is forbidden
		// under both policies.
		{"msr ttbr0_el1", arm64.MSR(arm64.TTBR0EL1, 0), false, false},
		{"mrs ttbr0_el1", arm64.MRS(0, arm64.TTBR0EL1), false, false},

		// op0=0b10 (debug): deny.
		{"msr mdscr_el1", arm64.MSR(arm64.MDSCREL1, 0), false, false},

		// Plain computation and memory never trip the sanitizer.
		{"add", arm64.ADDImm(0, 1, 4, false), true, true},
		{"ldr", arm64.LDRImm(0, 1, 0, 3), true, true},
		{"str", arm64.STRImm(0, 1, 0, 3), true, true},
		{"b", arm64.B(8), true, true},
		{"br", arm64.BR(17), true, true},
		{"ret", arm64.RET(30), true, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			gotTTBR := CheckWord(tt.word, SanTTBR) == ""
			gotPAN := CheckWord(tt.word, SanPAN) == ""
			if gotTTBR != tt.allowTTBR {
				t.Errorf("policy ① (TTBR): allowed=%v, want %v (reason %q)",
					gotTTBR, tt.allowTTBR, CheckWord(tt.word, SanTTBR))
			}
			if gotPAN != tt.allowPAN {
				t.Errorf("policy ② (PAN): allowed=%v, want %v (reason %q)",
					gotPAN, tt.allowPAN, CheckWord(tt.word, SanPAN))
			}
		})
	}
}

// Property: SanNone admits everything; SanPAN is at least as strict as
// SanTTBR on the system-instruction space rows that differ only by the
// unprivileged-access rule.
func TestSanitizerPolicyProperties(t *testing.T) {
	f := func(word uint32) bool {
		if CheckWord(word, SanNone) != "" {
			return false // SanNone must never flag
		}
		// Anything SanTTBR rejects, SanPAN rejects too, except nothing:
		// policy ② is a superset of ①'s rejections.
		if CheckWord(word, SanTTBR) != "" && CheckWord(word, SanPAN) == "" {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30000}); err != nil {
		t.Error(err)
	}
}

func TestSanitizePageFindsFirstViolation(t *testing.T) {
	words := []uint32{
		arm64.WordNOP,
		arm64.ADDImm(0, 0, 1, false),
		arm64.TLBIVMALLE1(), // offset 8
		arm64.WordERET,      // offset 12 (not reported; first wins)
	}
	v := SanitizePage(arm64.WordsToBytes(words), SanTTBR)
	if v == nil {
		t.Fatal("no violation found")
	}
	if v.Offset != 8 {
		t.Errorf("offset = %#x, want 0x8", v.Offset)
	}
	if v.Word != arm64.TLBIVMALLE1() {
		t.Errorf("word = %#08x", v.Word)
	}
	if v.Error() == "" {
		t.Error("empty error text")
	}
}

func TestSanitizePageCleanAndEmpty(t *testing.T) {
	if v := SanitizePage(nil, SanTTBR); v != nil {
		t.Errorf("empty page flagged: %v", v)
	}
	clean := arm64.WordsToBytes([]uint32{arm64.WordNOP, arm64.RET(30)})
	if v := SanitizePage(clean, SanPAN); v != nil {
		t.Errorf("clean page flagged: %v", v)
	}
	// SanNone admits a dirty page.
	dirty := arm64.WordsToBytes([]uint32{arm64.WordERET})
	if v := SanitizePage(dirty, SanNone); v != nil {
		t.Errorf("SanNone flagged: %v", v)
	}
}

func TestSanitizeCostScalesWithSize(t *testing.T) {
	prof := arm64.ProfileCortexA55()
	small := SanitizeCost(prof, 4096)
	large := SanitizeCost(prof, 2*1024*1024)
	if small <= 0 || large <= small {
		t.Errorf("costs: 4KB=%d 2MB=%d", small, large)
	}
}

func TestGateCodePassesItsOwnSanitizerExemption(t *testing.T) {
	// The gate contains MSR/MRS TTBR0_EL1 — sensitive by Table 3 — which
	// is exactly why gates live in the TTBR1 range outside the
	// sanitizer's reach. Verify the gate code would indeed be rejected
	// if an application shipped it (defence-in-depth sanity).
	words, err := buildGateCode(0)
	if err != nil {
		t.Fatal(err)
	}
	if v := SanitizePage(arm64.WordsToBytes(words), SanTTBR); v == nil {
		t.Error("gate code unexpectedly passes the application-page sanitizer")
	}
}

func TestStubPageSensitive(t *testing.T) {
	// The trap stub contains ERET — also only safe because it is
	// TTBR1-mapped, kernel-provided code.
	if v := SanitizePage(buildStubPage(), SanTTBR); v == nil {
		t.Error("stub page unexpectedly passes the sanitizer")
	}
}

func TestPolicyStrings(t *testing.T) {
	for p, want := range map[SanPolicy]string{
		SanNone: "none", SanTTBR: "ttbr", SanPAN: "pan",
	} {
		if p.String() != want {
			t.Errorf("%d.String() = %q", p, p.String())
		}
	}
}
